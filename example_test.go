package millipede_test

import (
	"fmt"

	millipede "repro"
)

// The smallest end-to-end use: run one BMLA benchmark on the Millipede
// processor and inspect the verified measurement.
func ExampleRunBenchmark() {
	cfg := millipede.DefaultConfig()
	res, err := millipede.RunBenchmark(millipede.ArchMillipede, "variance", cfg, 64)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Bench, res.Time > 0, res.Insts > 0)
	// Output: variance true true
}

// Compare two architectures on the same verified workload.
func ExampleRunBenchmark_comparison() {
	cfg := millipede.DefaultConfig()
	a, _ := millipede.RunBenchmark(millipede.ArchGPGPU, "count", cfg, 128)
	b, _ := millipede.RunBenchmark(millipede.ArchMillipede, "count", cfg, 128)
	fmt.Println("millipede at least as fast:", b.Time <= a.Time)
	// Output: millipede at least as fast: true
}

// RunReduced returns the benchmark's actual application output after the
// host-side final Reduce: for count, a histogram covering every record.
func ExampleRunReduced() {
	cfg := millipede.DefaultConfig()
	_, out, err := millipede.RunReduced(millipede.ArchMillipede, "count", cfg, 32)
	if err != nil {
		panic(err)
	}
	var total uint32
	for _, v := range out[:32] {
		total += v
	}
	fmt.Println(total == uint32(32*cfg.Threads()))
	// Output: true
}

// Assemble compiles a kernel in the repository's assembly dialect; the
// program reports its encoded footprint against the 4 KB broadcast budget.
func ExampleAssemble() {
	prog, err := millipede.Assemble("demo", `
		csrr r1, tid
		slli r2, r1, 2
		sw   r1, 0(r2)
		halt
	`)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(prog.Insts), "instructions")
	// Output: 4 instructions
}

// The experiment registry is the uniform way to reproduce any table or
// figure of the paper's evaluation: look the experiment up by name, run it
// at a chosen scale, and render the result.
func ExampleRunExperiment() {
	cfg := millipede.DefaultConfig()
	res, err := millipede.RunExperiment("timeline", cfg, millipede.WithScale(0.02))
	if err != nil {
		panic(err)
	}
	found := false
	for _, e := range millipede.Experiments() {
		if e.Name == "timeline" {
			found = true
		}
	}
	fmt.Println(found, len(res.Figures) == 1, len(res.Render()) > 0)
	// Output: true true true
}

// Run options layer observability onto a run without touching Config: here
// a bounded trace sink captures the event stream for Chrome-trace export.
func ExampleWithTraceSink() {
	cfg := millipede.DefaultConfig()
	l := millipede.NewTraceLog(4096)
	_, err := millipede.RunBenchmark(millipede.ArchMillipede, "count", cfg, 64,
		millipede.WithTraceSink(l), millipede.WithTraceCorelet(0))
	if err != nil {
		panic(err)
	}
	data, err := l.ChromeJSON(1e12 / cfg.ComputeHz)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(l.Events()) > 0, len(data) > 0)
	// Output: true true
}

// Reproduce a paper figure at reduced scale and render it as a table.
func ExampleFigure7() {
	cfg := millipede.DefaultConfig()
	fig, err := millipede.Figure7(cfg, 0.02)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(fig.Rows) == 8, len(fig.Series) == 5)
	// Output: true true
}
