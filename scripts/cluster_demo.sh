#!/usr/bin/env bash
# cluster_demo.sh — end-to-end smoke of the millid cluster topology.
#
# Builds millid and milliload, starts a shared result store, two worker
# nodes mounting it, and the consistent-hash router in front, then checks
# the cluster-wide caching guarantee: an identical request POSTed directly
# to both worker nodes simulates exactly once — the second node serves it
# from the store tier (sims_run 0, cache_shared_hits 1 on /metrics) with a
# byte-identical result body. The router must route the same request to one
# node, and milliload must emit an SLA report with nonzero latency
# percentiles against the cluster. Everything is torn down with SIGTERM.
# Used by `make cluster-demo` and the CI smoke step.
set -euo pipefail

PORT_STORE="${MILLID_STORE_PORT:-18278}"
PORT_A="${MILLID_A_PORT:-18281}"
PORT_B="${MILLID_B_PORT:-18282}"
PORT_RT="${MILLID_ROUTER_PORT:-18277}"
STORE="http://localhost:$PORT_STORE"
NODE_A="http://localhost:$PORT_A"
NODE_B="http://localhost:$PORT_B"
ROUTER="http://localhost:$PORT_RT"

DIR="$(mktemp -d)"
LOG_STORE="$DIR/store.log" LOG_A="$DIR/a.log" LOG_B="$DIR/b.log" LOG_RT="$DIR/router.log"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    [[ -n "$pid" ]] && kill -9 "$pid" 2>/dev/null || true
  done
  rm -rf "$DIR"
}
trap cleanup EXIT

fail() {
  echo "cluster-demo: FAIL: $*" >&2
  for f in "$LOG_STORE" "$LOG_A" "$LOG_B" "$LOG_RT"; do
    [[ -f "$f" ]] && { echo "--- $f ---" >&2; cat "$f" >&2; }
  done
  exit 1
}

wait_healthy() { # url name
  for _ in $(seq 1 100); do
    curl -fsS "$1/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  fail "$2 never became healthy on $1"
}

# metric_value <base> <name>: extract a scalar from the JSON /metrics body.
metric_value() {
  curl -fsS "$1/metrics" | tr -d ' \n' \
    | sed -n "s/.*\"name\":\"$2\",\"kind\":\"[a-z]*\",\"value\":\([0-9.e+-]*\).*/\1/p"
}

go build -o "$DIR/millid" ./cmd/millid
go build -o "$DIR/milliload" ./cmd/milliload

"$DIR/millid" -role=store -addr ":$PORT_STORE" >"$LOG_STORE" 2>&1 &
PIDS+=($!)
wait_healthy "$STORE" "store"

"$DIR/millid" -addr ":$PORT_A" -store "$STORE" >"$LOG_A" 2>&1 &
PID_A=$!; PIDS+=($PID_A)
"$DIR/millid" -addr ":$PORT_B" -store "$STORE" >"$LOG_B" 2>&1 &
PIDS+=($!)
wait_healthy "$NODE_A" "worker A"
wait_healthy "$NODE_B" "worker B"

"$DIR/millid" -role=router -addr ":$PORT_RT" -nodes "$NODE_A,$NODE_B" \
  -health-interval 500ms >"$LOG_RT" 2>&1 &
PIDS+=($!)
wait_healthy "$ROUTER" "router"
echo "cluster-demo: store + 2 workers + router up"

# --- Cluster-wide cache hit: POST the identical request to BOTH workers. ---
REQ='{"experiment":"ablation","scale":0.25}'

submit_and_wait() { # base -> echoes job id
  local id status
  id="$(curl -fsS -d "$REQ" "$1/v1/jobs" | sed -n 's/.*"id": "\([0-9a-f]*\)".*/\1/p')"
  [[ -n "$id" ]] || fail "POST to $1 returned no id"
  for _ in $(seq 1 600); do
    status="$(curl -fsS "$1/v1/jobs/$id" | sed -n 's/.*"status": "\([a-z]*\)".*/\1/p')"
    [[ "$status" == "done" ]] && { echo "$id"; return 0; }
    [[ "$status" == "failed" ]] && fail "job $id failed on $1"
    sleep 0.2
  done
  fail "job $id stuck on $1"
}

ID_A="$(submit_and_wait "$NODE_A")"
ID_B="$(submit_and_wait "$NODE_B")"
[[ "$ID_A" == "$ID_B" ]] || fail "nodes assigned different ids: $ID_A vs $ID_B"

[[ "$(metric_value "$NODE_A" server.sims_run)" == "1" ]] \
  || fail "worker A should have simulated once (sims_run=$(metric_value "$NODE_A" server.sims_run))"
[[ "$(metric_value "$NODE_B" server.sims_run)" == "0" ]] \
  || fail "worker B re-simulated a store-cached result (sims_run=$(metric_value "$NODE_B" server.sims_run))"
[[ "$(metric_value "$NODE_B" server.cache_shared_hits)" == "1" ]] \
  || fail "worker B did not hit the store tier (cache_shared_hits=$(metric_value "$NODE_B" server.cache_shared_hits))"

R_A="$(curl -fsS "$NODE_A/v1/jobs/$ID_A/result")"
R_B="$(curl -fsS "$NODE_B/v1/jobs/$ID_B/result")"
[[ "$R_A" == "$R_B" ]] || fail "result bodies differ across nodes"
echo "cluster-demo: store-tier hit verified (1 simulation, byte-identical bodies on both nodes)"

# --- Router consistency: the same request through the front tier dedups. ---
RT_ID="$(curl -fsS -d "$REQ" "$ROUTER/v1/jobs" | sed -n 's/.*"id": "\([0-9a-f]*\)".*/\1/p')"
[[ "$RT_ID" == "$ID_A" ]] || fail "router assigned a different id: $RT_ID vs $ID_A"
curl -fsS "$ROUTER/v1/jobs/$RT_ID/result" | grep -q 'Barrier ablation' \
  || fail "router-proxied result lacks the ablation figure"
echo "cluster-demo: router routes the identical request onto the same job"

# --- milliload smoke: a short SLA report against the cluster. ---
SLA="$("$DIR/milliload" -target "$ROUTER" -metrics "$NODE_A,$NODE_B" \
  -experiment ablation -scale 0.02 -distinct 2 -rates 4 -duration 2s)"
echo "$SLA"
echo "$SLA" | grep -q 'SLA report' || fail "milliload emitted no SLA report"
# Row "4rps": col 2 = offered_rps, 3 = achieved_rps, 4 = p50_ms, 5 = p99_ms.
P50="$(echo "$SLA" | awk '/^4rps/ {print $4}')"
P99="$(echo "$SLA" | awk '/^4rps/ {print $5}')"
echo "$SLA" | awk '/^4rps/ {found=1; exit !($4 > 0 && $5 > 0)} END {if (!found) exit 1}' \
  || fail "SLA report p50/p99 are zero or missing (p50=$P50 p99=$P99)"
echo "cluster-demo: milliload SLA report OK (p50=${P50}ms p99=${P99}ms)"

# --- Teardown: drain a worker, the router notices, SIGTERM everything. ---
kill -TERM "$PID_A"
for _ in $(seq 1 100); do
  kill -0 "$PID_A" 2>/dev/null || break
  sleep 0.1
done
kill -0 "$PID_A" 2>/dev/null && fail "worker A did not exit after SIGTERM"
grep -q "drained cleanly" "$LOG_A" || fail "worker A log lacks the graceful-drain line"

for pid in "${PIDS[@]}"; do
  kill -TERM "$pid" 2>/dev/null || true
done
for pid in "${PIDS[@]}"; do
  for _ in $(seq 1 100); do
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
  done
done
PIDS=()

echo "cluster-demo: PASS"
