#!/usr/bin/env bash
# serve_demo.sh — end-to-end smoke of the millid simulation service.
#
# Builds millid, starts it on a scratch port, lists the registry, submits a
# count-kernel job (the barrier ablation) twice — the second POST must be a
# cache hit that triggers no new simulation — fetches the result, checks the
# server metrics, and drains the daemon with SIGTERM. Exits nonzero on any
# deviation. Used by `make serve-demo` and the CI smoke step.
set -euo pipefail

PORT="${MILLID_PORT:-18177}"
BASE="http://localhost:$PORT"
BIN="$(mktemp -d)/millid"
LOG="$(mktemp)"

cleanup() {
  if [[ -n "${MILLID_PID:-}" ]] && kill -0 "$MILLID_PID" 2>/dev/null; then
    kill -9 "$MILLID_PID" 2>/dev/null || true
  fi
  rm -rf "$(dirname "$BIN")" "$LOG"
}
trap cleanup EXIT

fail() { echo "serve-demo: FAIL: $*" >&2; echo "--- millid log ---" >&2; cat "$LOG" >&2; exit 1; }

go build -o "$BIN" ./cmd/millid
"$BIN" -addr ":$PORT" >"$LOG" 2>&1 &
MILLID_PID=$!

for _ in $(seq 1 100); do
  if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
  kill -0 "$MILLID_PID" 2>/dev/null || fail "millid exited during startup"
  sleep 0.1
done
curl -fsS "$BASE/healthz" >/dev/null || fail "millid never became healthy on $BASE"

echo "serve-demo: registry:"
LISTING="$(curl -fsS "$BASE/v1/experiments")"
echo "$LISTING" | grep -q '"ablation"' || fail "registry listing is missing the ablation experiment"
N_EXP="$(echo "$LISTING" | grep -c '"name"')"
echo "serve-demo: $N_EXP experiments registered"

REQ='{"experiment":"ablation","scale":0.25}'
SUBMIT="$(curl -fsS -d "$REQ" "$BASE/v1/jobs")"
ID="$(echo "$SUBMIT" | sed -n 's/.*"id": "\([0-9a-f]*\)".*/\1/p')"
[[ -n "$ID" ]] || fail "POST /v1/jobs returned no id: $SUBMIT"
echo "serve-demo: submitted job $ID"

STATUS=""
for _ in $(seq 1 600); do
  STATUS="$(curl -fsS "$BASE/v1/jobs/$ID" | sed -n 's/.*"status": "\([a-z]*\)".*/\1/p')"
  [[ "$STATUS" == "done" || "$STATUS" == "failed" ]] && break
  sleep 0.2
done
[[ "$STATUS" == "done" ]] || fail "job $ID ended in status '$STATUS'"

RESULT1="$(curl -fsS "$BASE/v1/jobs/$ID/result")"
echo "$RESULT1" | grep -q 'Barrier ablation' || fail "result body lacks the ablation figure"

# The identical request again: must dedup onto the same id, hit the cache,
# and run no second simulation.
curl -fsS -d "$REQ" "$BASE/v1/jobs" | grep -q "\"id\": \"$ID\"" || fail "repeat POST got a different job id"
RESULT2="$(curl -fsS "$BASE/v1/jobs/$ID/result")"
[[ "$RESULT1" == "$RESULT2" ]] || fail "result bodies differ between fetches"

METRICS="$(curl -fsS "$BASE/metrics")"
echo "$METRICS" | tr -d ' \n' | grep -q '"name":"server.sims_run","kind":"counter","value":1' \
  || fail "expected exactly one simulation; metrics: $METRICS"
echo "$METRICS" | tr -d ' \n' | grep -Eq '"name":"server.cache_hits","kind":"counter","value":[1-9]' \
  || fail "repeat POST did not count as a cache hit; metrics: $METRICS"
echo "serve-demo: repeat POST was a cache hit (1 simulation, byte-identical bodies)"

kill -TERM "$MILLID_PID"
for _ in $(seq 1 100); do
  kill -0 "$MILLID_PID" 2>/dev/null || break
  sleep 0.1
done
kill -0 "$MILLID_PID" 2>/dev/null && fail "millid did not exit after SIGTERM"
MILLID_PID=""
grep -q "drained cleanly" "$LOG" || fail "millid log lacks the graceful-drain line"

echo "serve-demo: PASS"
