// Package millipede is the public API of this repository: a Go
// reproduction of "Millipede: Die-Stacked Memory Optimizations for Big Data
// Machine Learning Analytics" (Nitin, Thottethodi, Vijaykumar; IPDPS 2018).
//
// The package wraps a cycle-level processing-near-memory simulation stack —
// die-stacked DRAM with an FR-FCFS controller, MIMD corelets, Millipede's
// row-oriented flow-controlled prefetch buffer, GPGPU/VWS SIMT models, a
// conventional multicore, the eight BMLA benchmarks of the paper's Table
// II, and the harness that regenerates every table and figure of the
// paper's evaluation.
//
// Quick start:
//
//	cfg := millipede.DefaultConfig()
//	res, err := millipede.RunBenchmark(millipede.ArchMillipede, "kmeans", cfg, 512)
//	fmt.Println(res.Time, res.Energy.TotalJ())
//
// Reproduce any of the paper's tables and figures through the experiment
// registry:
//
//	for _, e := range millipede.Experiments() {
//		fmt.Println(e.Name, "—", e.Description)
//	}
//	res, err := millipede.RunExperiment("fig3", cfg, millipede.WithScale(0.25))
//	fmt.Print(res.Render())
//
// # Configuration vs run options
//
// The API splits "what hardware" from "how to run it". Config (a struct)
// describes the simulated machine — Table III's geometry, clocks, and
// memory parameters — and is passed by value so a caller can adjust fields.
// RunOption functional options describe per-run concerns that leave the
// hardware untouched: input scale (WithScale), dataset seed (WithSeed),
// event tracing (WithTraceSink), and cycle-domain timeline sampling
// (WithTimeline). Options compose, and each entry point accepts only the
// options that are meaningful for it (the rest are ignored).
//
// Every RunBenchmark result is verified against a host-side golden
// MapReduce reference before it is returned; a timing number can never come
// from a functionally wrong simulation. Observability — the Result.Metrics
// snapshot, timelines, and traces — reads counters the models maintain
// anyway, so enabling it never changes simulated timing.
package millipede

import (
	"context"
	"sync"

	"repro/internal/arch"
	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/harness"
	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/node"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Config is the Table III hardware configuration shared by all PNM
// architecture models. Obtain one from DefaultConfig and adjust fields.
type Config = arch.Params

// DefaultConfig returns the paper's Table III configuration: 32 corelets x
// 4 contexts at 700 MHz, 16-entry prefetch buffer, 4 KB local memories,
// one 128-bit 1.2 GHz die-stacked DRAM channel with 2 KB rows.
func DefaultConfig() Config { return arch.Default() }

// EnergyParams are the per-event energy constants of the GPUWattch-analog
// model.
type EnergyParams = energy.Params

// DefaultEnergy returns the calibrated energy constants (6 pJ/bit
// die-stacked streaming, 70 pJ/bit off-chip).
func DefaultEnergy() EnergyParams { return energy.Default() }

// Architecture identifiers accepted by RunBenchmark.
const (
	ArchMillipede     = harness.ArchMillipede     // row-oriented, flow-controlled prefetch
	ArchMillipedeNoFC = harness.ArchMillipedeNoFC // ablation: no flow control
	ArchMillipedeRM   = harness.ArchMillipedeRM   // with compute-memory rate matching
	ArchSSMC          = harness.ArchSSMC          // plain sea-of-simple-cores + block prefetch
	ArchGPGPU         = harness.ArchGPGPU         // 32-wide SIMT SM + block prefetch
	ArchVWS           = harness.ArchVWS           // variable warp sizing (4-wide)
	ArchVWSRow        = harness.ArchVWSRow        // VWS + Millipede's row prefetch
	ArchMulticore     = harness.ArchMulticore     // conventional 8-core Xeon-like system
)

// Architectures lists the PNM architecture identifiers.
func Architectures() []string { return harness.Architectures() }

// benchNames caches the benchmark name list: the set is fixed at compile
// time, so there is no reason to re-walk workloads.All() on every call.
var benchNames struct {
	once  sync.Once
	names []string
}

// Benchmarks lists the eight BMLA benchmark names in the paper's Table IV
// order. The returned slice is a fresh copy each call.
func Benchmarks() []string {
	benchNames.once.Do(func() {
		for _, b := range workloads.All() {
			benchNames.names = append(benchNames.names, b.Name())
		}
	})
	return append([]string(nil), benchNames.names...)
}

// Result is one verified {architecture x benchmark} measurement. Its
// Metrics field is the uniform registry snapshot of every component
// counter; Timeline carries the cycle-sampled series when WithTimeline was
// used.
type Result = harness.RunResult

// Figure is a reproduced table or figure.
type Figure = harness.Figure

// MetricsSnapshot is the sorted, named sample set every Result carries.
type MetricsSnapshot = metrics.Snapshot

// Timeline is a cycle-domain gauge sampler's output (see WithTimeline).
type Timeline = metrics.Timeline

// TraceLog is a bounded in-memory event log for WithTraceSink; render it
// with Render or export it with ChromeJSON.
type TraceLog = trace.Log

// NewTraceLog returns a trace log retaining at most max events.
func NewTraceLog(max int) *TraceLog { return trace.NewLog(max) }

// RunOption is a per-run functional option. Options configure how one run
// or experiment executes (input scale, seed, observability sinks) without
// touching the Config hardware description.
type RunOption func(*runConfig)

type runConfig struct {
	scale         float64
	seed          uint64
	trace         *trace.Log
	traceCorelet  int
	timelineEvery uint64
	hostBW        float64
}

func applyOptions(opts []RunOption) runConfig {
	var rc runConfig
	for _, o := range opts {
		o(&rc)
	}
	return rc
}

// WithScale multiplies every benchmark's default input size in experiments
// (RunExperiment); 1.0 is paper scale. Ignored by fixed-record entry points.
func WithScale(scale float64) RunOption { return func(rc *runConfig) { rc.scale = scale } }

// WithSeed overrides the dataset seed (default: the canonical experiment
// seed). The golden-reference verification uses the same seed, so any seed
// still yields a verified run.
func WithSeed(seed uint64) RunOption { return func(rc *runConfig) { rc.seed = seed } }

// WithTraceSink records the event stream of one corelet plus the prefetch
// buffer, memory fabric, and DFS controller into l (millipede-family
// architectures only). Combine with WithTraceCorelet to pick the corelet.
func WithTraceSink(l *TraceLog) RunOption { return func(rc *runConfig) { rc.trace = l } }

// WithTraceCorelet selects which corelet WithTraceSink follows (default 0).
func WithTraceCorelet(id int) RunOption { return func(rc *runConfig) { rc.traceCorelet = id } }

// WithTimeline samples observability gauges (prefetch occupancy, row hit
// rate, queue depth, compute clock) every everyNCycles compute cycles into
// Result.Timeline (millipede-family architectures only).
func WithTimeline(everyNCycles uint64) RunOption {
	return func(rc *runConfig) { rc.timelineEvery = everyNCycles }
}

// WithHostBandwidth sets the host-link bandwidth in GB/s assumed by the
// residency experiment (default 16).
func WithHostBandwidth(gbs float64) RunOption { return func(rc *runConfig) { rc.hostBW = gbs } }

func (rc runConfig) harnessOptions() harness.Options {
	return harness.Options{
		Seed:          rc.seed,
		Trace:         rc.trace,
		TraceCorelet:  rc.traceCorelet,
		TimelineEvery: rc.timelineEvery,
	}
}

// RunBenchmark executes the named BMLA benchmark on the named architecture
// with recordsPerThread records per hardware thread, verifies the simulated
// live state against the golden MapReduce reference, and returns timing,
// energy, and characterization metrics. Options: WithSeed, WithTraceSink,
// WithTraceCorelet, WithTimeline.
func RunBenchmark(archName, bench string, cfg Config, recordsPerThread int, opts ...RunOption) (Result, error) {
	res, _, err := RunReduced(archName, bench, cfg, recordsPerThread, opts...)
	return res, err
}

// ExperimentInfo names and describes one registered experiment.
type ExperimentInfo = harness.ExperimentInfo

// ExperimentResult is the uniform output of RunExperiment: zero or more
// figures plus optional free text; Render prints it as milliexp does.
type ExperimentResult = harness.ExperimentResult

// Experiments lists every registered experiment — the paper's tables and
// figures plus this repository's studies — in presentation order.
func Experiments() []ExperimentInfo { return harness.Experiments() }

// RunExperiment runs the named experiment (see Experiments for the list).
// Options: WithScale, WithHostBandwidth (residency), WithTimeline
// (timeline).
func RunExperiment(name string, cfg Config, opts ...RunOption) (ExperimentResult, error) {
	return RunExperimentContext(context.Background(), name, cfg, opts...)
}

// RunExperimentContext is RunExperiment with explicit cancellation: when ctx
// is cancelled (or its deadline passes) the experiment's sweep stops claiming
// further simulations and returns ctx.Err() instead of running to
// completion. In-flight cycle loops still finish — cancellation is checked
// between runs, never inside the deterministic hot path.
func RunExperimentContext(ctx context.Context, name string, cfg Config, opts ...RunOption) (ExperimentResult, error) {
	rc := applyOptions(opts)
	return harness.RunExperiment(ctx, name, cfg, harness.ExpOptions{
		Scale:            rc.scale,
		HostBandwidthGBs: rc.hostBW,
		TimelineEvery:    rc.timelineEvery,
	})
}

// oneFigure dispatches a single-figure experiment through the registry —
// the pre-registry figure functions below are one-line wrappers over it.
func oneFigure(name string, cfg Config, scale float64) (*Figure, error) {
	res, err := RunExperiment(name, cfg, WithScale(scale))
	if err != nil {
		return nil, err
	}
	return res.Figures[0], nil
}

// Figure3 reproduces the paper's Figure 3 (performance normalized to
// GPGPU). scale multiplies each benchmark's default input size; 1.0 is the
// paper-scale run used by cmd/milliexp, smaller values are proportionally
// faster.
func Figure3(cfg Config, scale float64) (*Figure, error) { return oneFigure("fig3", cfg, scale) }

// Figure4 reproduces Figure 4 (energy normalized to GPGPU); the second
// figure carries the core/DRAM/leakage breakdown.
func Figure4(cfg Config, scale float64) (*Figure, *Figure, error) {
	res, err := RunExperiment("fig4", cfg, WithScale(scale))
	if err != nil {
		return nil, nil, err
	}
	return res.Figures[0], res.Figures[1], nil
}

// Figure5 reproduces Figure 5 (Millipede node vs conventional multicore).
func Figure5(cfg Config, scale float64) (*Figure, error) { return oneFigure("fig5", cfg, scale) }

// Figure6 reproduces Figure 6 (speedup vs system size).
func Figure6(cfg Config, scale float64) (*Figure, error) { return oneFigure("fig6", cfg, scale) }

// Figure7 reproduces Figure 7 (speedup vs prefetch buffer count).
func Figure7(cfg Config, scale float64) (*Figure, error) { return oneFigure("fig7", cfg, scale) }

// ChannelSweep measures Millipede across 1/2/4 die-stack memory channels on
// every benchmark, normalized to the single-channel configuration.
func ChannelSweep(cfg Config, scale float64) (*Figure, error) {
	return oneFigure("channels", cfg, scale)
}

// TableIV reproduces Table IV (benchmark characteristics).
func TableIV(cfg Config, scale float64) (*Figure, error) { return oneFigure("table4", cfg, scale) }

// TableIII renders the hardware configuration.
func TableIII(cfg Config) string {
	res, err := RunExperiment("table3", cfg)
	if err != nil {
		return "" // unreachable: table3 renders without simulating
	}
	return res.Text
}

// TableII renders the application-behavior summary.
func TableII() string {
	res, err := RunExperiment("table2", cfg0())
	if err != nil {
		return "" // unreachable: table2 renders without simulating
	}
	return res.Text
}

// cfg0 is the config passed to experiments that ignore it.
func cfg0() Config { return DefaultConfig() }

// Program is an assembled kernel.
type Program = isa.Program

// Assemble translates kernel assembly source (see internal/asm for the
// dialect) into a program runnable on any of the architecture models.
func Assemble(name, src string) (*Program, error) { return asm.Assemble(name, src) }

// RunReduced is RunBenchmark plus the host-side final Reduce over the
// verified per-thread live states — the benchmark's actual output (e.g.,
// kmeans' per-centroid counts and coordinate sums). The meaning of each
// output word is benchmark-specific; see internal/workloads.
func RunReduced(archName, bench string, cfg Config, recordsPerThread int, opts ...RunOption) (Result, []uint32, error) {
	b, err := workloads.ByName(bench)
	if err != nil {
		return Result{}, nil, err
	}
	return harness.RunWith(archName, b, cfg, recordsPerThread, applyOptions(opts).harnessOptions())
}

// BarrierAblation reproduces the paper's Section IV-C software-barrier
// discussion on the count benchmark: hardware flow control vs no flow
// control vs software barriers at record and Map-task granularity.
func BarrierAblation(cfg Config, scale float64) (*Figure, error) {
	return oneFigure("ablation", cfg, scale)
}

// CharacteristicsStudy quantifies the paper's first contribution (Sections
// III-C/III-D): the compact, row-dense count benchmark versus the
// non-compact join anti-benchmark on the same Millipede processor. Note the
// scale here is applied as given; the registry's "characteristics"
// experiment divides its scale by 4 first (milliexp's historical default).
func CharacteristicsStudy(cfg Config, scale float64) (*Figure, error) {
	return harness.CharacteristicsStudy(context.Background(), cfg, scale, 0)
}

// WarpWidthSweep examines the VWS design space: performance at warp widths
// 4..32 on the branchy benchmarks, the paper's "VWS always chooses 4-wide
// warps" observation.
func WarpWidthSweep(cfg Config, scale float64) (*Figure, error) {
	return oneFigure("warpwidth", cfg, scale)
}

// ResidencyStudy quantifies Section IV-E: the cost of per-run host copy-in
// versus kernel time, and the data-reuse count after which residency makes
// it negligible.
func ResidencyStudy(cfg Config, hostBandwidthGBs, scale float64) (*Figure, error) {
	res, err := RunExperiment("residency", cfg, WithScale(scale), WithHostBandwidth(hostBandwidthGBs))
	if err != nil {
		return nil, err
	}
	return res.Figures[0], nil
}

// KMeansIteration runs one k-means MapReduction on Millipede with the given
// centroids and returns the updated centroids — chain it for full iterative
// k-means over the resident dataset.
func KMeansIteration(cfg Config, centroids [][]float32, recordsPerThread int) ([][]float32, Result, error) {
	return harness.KMeansIteration(cfg, centroids, recordsPerThread)
}

// CentroidShift is the mean Euclidean distance between two centroid sets.
func CentroidShift(a, b [][]float32) float64 { return harness.CentroidShift(a, b) }

// NodeResult is a full multi-processor Millipede node run.
type NodeResult = node.Result

// RunNode simulates a full Millipede node: `processors` Millipede
// processors (each with its own die-stacked channel) execute independent
// shards concurrently, and the host performs the per-node Reduce. The
// result's Time is the measured makespan including cross-processor load
// imbalance. Options: WithSeed.
func RunNode(bench string, cfg Config, processors, recordsPerThread int, opts ...RunOption) (NodeResult, error) {
	b, err := workloads.ByName(bench)
	if err != nil {
		return NodeResult{}, err
	}
	seed := applyOptions(opts).seed
	if seed == 0 {
		seed = harness.Seed
	}
	return node.Run(cfg, energy.Default(), b, processors, recordsPerThread, seed)
}

// DFSSample is one rate-matching controller decision (compute cycle and
// the frequency chosen).
type DFSSample = core.DFSSample

// RateTrace runs a benchmark on rate-matched Millipede and returns the DFS
// clock trajectory (frequency changes only) with the verified measurement.
func RateTrace(bench string, cfg Config, recordsPerThread int) ([]DFSSample, Result, error) {
	b, err := workloads.ByName(bench)
	if err != nil {
		return nil, Result{}, err
	}
	return harness.RateTrace(b, cfg, recordsPerThread)
}
