// Package millipede is the public API of this repository: a Go
// reproduction of "Millipede: Die-Stacked Memory Optimizations for Big Data
// Machine Learning Analytics" (Nitin, Thottethodi, Vijaykumar; IPDPS 2018).
//
// The package wraps a cycle-level processing-near-memory simulation stack —
// die-stacked DRAM with an FR-FCFS controller, MIMD corelets, Millipede's
// row-oriented flow-controlled prefetch buffer, GPGPU/VWS SIMT models, a
// conventional multicore, the eight BMLA benchmarks of the paper's Table
// II, and the harness that regenerates every table and figure of the
// paper's evaluation.
//
// Quick start:
//
//	cfg := millipede.DefaultConfig()
//	res, err := millipede.RunBenchmark(millipede.ArchMillipede, "kmeans", cfg, 512)
//	fmt.Println(res.Time, res.Energy.TotalJ())
//
// Reproduce a figure:
//
//	fig, err := millipede.Figure3(cfg, 1.0)
//	fmt.Print(fig.Render())
//
// Every RunBenchmark result is verified against a host-side golden
// MapReduce reference before it is returned; a timing number can never come
// from a functionally wrong simulation.
package millipede

import (
	"repro/internal/arch"
	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/harness"
	"repro/internal/isa"
	"repro/internal/node"
	"repro/internal/workloads"
)

// Config is the Table III hardware configuration shared by all PNM
// architecture models. Obtain one from DefaultConfig and adjust fields.
type Config = arch.Params

// DefaultConfig returns the paper's Table III configuration: 32 corelets x
// 4 contexts at 700 MHz, 16-entry prefetch buffer, 4 KB local memories,
// one 128-bit 1.2 GHz die-stacked DRAM channel with 2 KB rows.
func DefaultConfig() Config { return arch.Default() }

// EnergyParams are the per-event energy constants of the GPUWattch-analog
// model.
type EnergyParams = energy.Params

// DefaultEnergy returns the calibrated energy constants (6 pJ/bit
// die-stacked streaming, 70 pJ/bit off-chip).
func DefaultEnergy() EnergyParams { return energy.Default() }

// Architecture identifiers accepted by RunBenchmark.
const (
	ArchMillipede     = harness.ArchMillipede     // row-oriented, flow-controlled prefetch
	ArchMillipedeNoFC = harness.ArchMillipedeNoFC // ablation: no flow control
	ArchMillipedeRM   = harness.ArchMillipedeRM   // with compute-memory rate matching
	ArchSSMC          = harness.ArchSSMC          // plain sea-of-simple-cores + block prefetch
	ArchGPGPU         = harness.ArchGPGPU         // 32-wide SIMT SM + block prefetch
	ArchVWS           = harness.ArchVWS           // variable warp sizing (4-wide)
	ArchVWSRow        = harness.ArchVWSRow        // VWS + Millipede's row prefetch
	ArchMulticore     = harness.ArchMulticore     // conventional 8-core Xeon-like system
)

// Architectures lists the PNM architecture identifiers.
func Architectures() []string { return harness.Architectures() }

// Benchmarks lists the eight BMLA benchmark names in the paper's Table IV
// order.
func Benchmarks() []string {
	var out []string
	for _, b := range workloads.All() {
		out = append(out, b.Name())
	}
	return out
}

// Result is one verified {architecture x benchmark} measurement.
type Result = harness.RunResult

// Figure is a reproduced table or figure.
type Figure = harness.Figure

// RunBenchmark executes the named BMLA benchmark on the named architecture
// with recordsPerThread records per hardware thread, verifies the simulated
// live state against the golden MapReduce reference, and returns timing,
// energy, and characterization metrics.
func RunBenchmark(archName, bench string, cfg Config, recordsPerThread int) (Result, error) {
	b, err := workloads.ByName(bench)
	if err != nil {
		return Result{}, err
	}
	return harness.Run(archName, b, cfg, recordsPerThread)
}

// Figure3 reproduces the paper's Figure 3 (performance normalized to
// GPGPU). scale multiplies each benchmark's default input size; 1.0 is the
// paper-scale run used by cmd/milliexp, smaller values are proportionally
// faster.
func Figure3(cfg Config, scale float64) (*Figure, error) { return harness.Fig3(cfg, scale) }

// Figure4 reproduces Figure 4 (energy normalized to GPGPU); the second
// figure carries the core/DRAM/leakage breakdown.
func Figure4(cfg Config, scale float64) (*Figure, *Figure, error) { return harness.Fig4(cfg, scale) }

// Figure5 reproduces Figure 5 (Millipede node vs conventional multicore).
func Figure5(cfg Config, scale float64) (*Figure, error) { return harness.Fig5(cfg, scale) }

// Figure6 reproduces Figure 6 (speedup vs system size).
func Figure6(cfg Config, scale float64) (*Figure, error) { return harness.Fig6(cfg, scale) }

// Figure7 reproduces Figure 7 (speedup vs prefetch buffer count).
func Figure7(cfg Config, scale float64) (*Figure, error) { return harness.Fig7(cfg, scale) }

// ChannelSweep measures Millipede across 1/2/4 die-stack memory channels on
// every benchmark, normalized to the single-channel configuration.
func ChannelSweep(cfg Config, scale float64) (*Figure, error) {
	return harness.ChannelSweep(cfg, scale)
}

// TableIV reproduces Table IV (benchmark characteristics).
func TableIV(cfg Config, scale float64) (*Figure, error) { return harness.TableIV(cfg, scale) }

// TableIII renders the hardware configuration.
func TableIII(cfg Config) string { return harness.TableIII(cfg) }

// TableII renders the application-behavior summary.
func TableII() string { return harness.TableII() }

// Program is an assembled kernel.
type Program = isa.Program

// Assemble translates kernel assembly source (see internal/asm for the
// dialect) into a program runnable on any of the architecture models.
func Assemble(name, src string) (*Program, error) { return asm.Assemble(name, src) }

// RunReduced is RunBenchmark plus the host-side final Reduce over the
// verified per-thread live states — the benchmark's actual output (e.g.,
// kmeans' per-centroid counts and coordinate sums). The meaning of each
// output word is benchmark-specific; see internal/workloads.
func RunReduced(archName, bench string, cfg Config, recordsPerThread int) (Result, []uint32, error) {
	b, err := workloads.ByName(bench)
	if err != nil {
		return Result{}, nil, err
	}
	return harness.RunReduced(archName, b, cfg, recordsPerThread)
}

// BarrierAblation reproduces the paper's Section IV-C software-barrier
// discussion on the count benchmark: hardware flow control vs no flow
// control vs software barriers at record and Map-task granularity.
func BarrierAblation(cfg Config, scale float64) (*Figure, error) {
	return harness.BarrierAblation(cfg, scale)
}

// CharacteristicsStudy quantifies the paper's first contribution (Sections
// III-C/III-D): the compact, row-dense count benchmark versus the
// non-compact join anti-benchmark on the same Millipede processor.
func CharacteristicsStudy(cfg Config, scale float64) (*Figure, error) {
	return harness.CharacteristicsStudy(cfg, scale)
}

// WarpWidthSweep examines the VWS design space: performance at warp widths
// 4..32 on the branchy benchmarks, the paper's "VWS always chooses 4-wide
// warps" observation.
func WarpWidthSweep(cfg Config, scale float64) (*Figure, error) {
	return harness.WarpWidthSweep(cfg, scale)
}

// ResidencyStudy quantifies Section IV-E: the cost of per-run host copy-in
// versus kernel time, and the data-reuse count after which residency makes
// it negligible.
func ResidencyStudy(cfg Config, hostBandwidthGBs, scale float64) (*Figure, error) {
	return harness.ResidencyStudy(cfg, hostBandwidthGBs, scale)
}

// KMeansIteration runs one k-means MapReduction on Millipede with the given
// centroids and returns the updated centroids — chain it for full iterative
// k-means over the resident dataset.
func KMeansIteration(cfg Config, centroids [][]float32, recordsPerThread int) ([][]float32, Result, error) {
	return harness.KMeansIteration(cfg, centroids, recordsPerThread)
}

// CentroidShift is the mean Euclidean distance between two centroid sets.
func CentroidShift(a, b [][]float32) float64 { return harness.CentroidShift(a, b) }

// NodeResult is a full multi-processor Millipede node run.
type NodeResult = node.Result

// RunNode simulates a full Millipede node: `processors` Millipede
// processors (each with its own die-stacked channel) execute independent
// shards concurrently, and the host performs the per-node Reduce. The
// result's Time is the measured makespan including cross-processor load
// imbalance.
func RunNode(bench string, cfg Config, processors, recordsPerThread int) (NodeResult, error) {
	b, err := workloads.ByName(bench)
	if err != nil {
		return NodeResult{}, err
	}
	return node.Run(cfg, energy.Default(), b, processors, recordsPerThread, harness.Seed)
}

// DFSSample is one rate-matching controller decision (compute cycle and
// the frequency chosen).
type DFSSample = core.DFSSample

// RateTrace runs a benchmark on rate-matched Millipede and returns the DFS
// clock trajectory (frequency changes only) with the verified measurement.
func RateTrace(bench string, cfg Config, recordsPerThread int) ([]DFSSample, Result, error) {
	b, err := workloads.ByName(bench)
	if err != nil {
		return nil, Result{}, err
	}
	return harness.RateTrace(b, cfg, recordsPerThread)
}
