# Convenience targets for the Millipede reproduction.

GO ?= go

.PHONY: all build test check bench benchjson bench-diff bench-diff-par bench-diff-noskip trace-demo serve-demo cluster-demo

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-merge gate: static analysis plus the race detector over
# the concurrent packages (the figure harness fans runs out over a worker
# pool; sim, prefetch, corelet, mem, memctrl, and stack carry the
# determinism-critical hot paths, now including the barrier-batched parallel
# cycle engine; the serving layer — jobs, rescache, server, router, sla — is
# concurrent by construction; datagen and workloads carry the streaming
# dataset contract). The run includes the standing gates:
#   TestParallelismBitIdentical — every worker count must produce
#     byte-identical metric snapshots and reduces (the parallel engine is a
#     speed knob, never a model change);
#   TestCycleLoopAllocFree — the steady-state cycle loop must make zero heap
#     allocations on every architecture (allocs_per_run/bytes_per_run in
#     BENCH_*.json track the same number per entry);
#   TestStreamingEquivalentToOneShot — any chunking of a dataset Source is
#     byte-identical to a one-shot materialization;
#   TestStreamingConstantMemory — folding an 800x dataset through bounded
#     buffers must not grow the heap (streamed inputs are O(chunk), never
#     O(records)).
#
# The harness race suite runs ~10 minutes of simulation wall time on its
# own (the alloc-free and bit-identity gates each replay full benchmark
# sweeps), which sits right at go test's default 10-minute kill timer —
# give it explicit headroom so a loaded machine doesn't flake the gate.
check:
	$(GO) vet ./...
	$(GO) test -race -timeout 30m ./internal/harness ./internal/sim ./internal/prefetch \
		./internal/corelet ./internal/mem ./internal/memctrl ./internal/stack \
		./internal/datagen ./internal/workloads \
		./internal/jobs ./internal/rescache ./internal/server ./internal/router ./internal/sla

bench:
	$(GO) test -bench=. -benchmem

# benchjson regenerates the benchmark-trajectory snapshot (see
# EXPERIMENTS.md, "Benchmark trajectory").
benchjson:
	$(GO) run ./cmd/milliexp -benchjson BENCH_4.json

# bench-diff is the determinism gate: re-measure and fail unless every
# records/sim_cycles/sim_picos/insts field is bit-identical to the
# committed baseline. A timing-neutral change must pass this unchanged.
BENCH_BASE ?= BENCH_4.json
bench-diff:
	$(GO) run ./cmd/milliexp -benchdiff $(BENCH_BASE)

# bench-diff-par re-runs the same gate through the parallel cycle engine:
# the determinism fields must be bit-identical to the serial baseline at any
# worker count, or a cross-shard effect escaped the batch barrier.
PAR ?= 4
bench-diff-par:
	$(GO) run ./cmd/milliexp -benchdiff $(BENCH_BASE) -parallelism $(PAR)

# bench-diff-noskip replays every clock edge (quiescence time skipping off)
# and diffs against the same baseline: the fast-forward path must be
# bit-identical to the edge-by-edge engine, or a skip window elided an edge
# that could have done work.
bench-diff-noskip:
	$(GO) run ./cmd/milliexp -benchdiff $(BENCH_BASE) -skip=off

# serve-demo smoke-tests the millid simulation service end to end over real
# HTTP: start the daemon, list the registry, run a count-kernel job twice
# (the repeat must be a cache hit with no second simulation), and drain it
# with SIGTERM. CI runs this alongside bench-diff.
serve-demo:
	bash scripts/serve_demo.sh

# cluster-demo smoke-tests the cluster topology: a shared result store, two
# worker nodes mounting it, and the consistent-hash router in front. It
# verifies the cluster-wide caching guarantee (an identical request POSTed
# to both workers simulates exactly once — the second node hits the store
# tier) and runs a short milliload SLA report through the router.
cluster-demo:
	bash scripts/cluster_demo.sh

# trace-demo writes a Chrome trace-event capture of a bandwidth-contested
# count run; open trace.json in ui.perfetto.dev or chrome://tracing.
trace-demo:
	$(GO) run ./cmd/millisim -arch millipede -bench count -records 2048 -trace-out trace.json
