// Benchmarks that regenerate each of the paper's tables and figures under
// `go test -bench`. Each iteration reproduces the full experiment at a
// reduced input scale and reports its headline numbers as custom metrics
// (geomean speedups, energy ratios), so `go test -bench=. -benchmem`
// doubles as a quick end-to-end reproduction check. cmd/milliexp runs the
// same experiments at paper scale.
package millipede

import (
	"context"
	"testing"

	"repro/internal/arch"
	"repro/internal/harness"
	"repro/internal/workloads"
)

// benchScale trades fidelity for wall time in `go test -bench`.
const benchScale = 0.04

func BenchmarkTableIV(b *testing.B) {
	p := arch.Default()
	for i := 0; i < b.N; i++ {
		f, err := harness.TableIV(context.Background(), p, benchScale, 0)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range f.Rows {
			if r.Bench == "count" {
				b.ReportMetric(r.Values["insts/word"], "count-insts/word")
				b.ReportMetric(r.Values["ssmc-row-miss"], "count-ssmc-rowmiss")
			}
		}
	}
}

func BenchmarkFig3Performance(b *testing.B) {
	p := arch.Default()
	for i := 0; i < b.N; i++ {
		f, err := harness.Fig3(context.Background(), p, benchScale, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.Geomean[harness.ArchMillipede], "millipede-vs-gpgpu")
		b.ReportMetric(f.Geomean[harness.ArchMillipede]/f.Geomean[harness.ArchSSMC], "millipede-vs-ssmc")
		b.ReportMetric(f.Geomean[harness.ArchVWS], "vws-vs-gpgpu")
	}
}

func BenchmarkFig4Energy(b *testing.B) {
	p := arch.Default()
	for i := 0; i < b.N; i++ {
		f, _, err := harness.Fig4(context.Background(), p, benchScale, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.Geomean[harness.ArchMillipedeRM], "millipede-energy-vs-gpgpu")
		b.ReportMetric(f.Geomean[harness.ArchMillipedeRM]/f.Geomean[harness.ArchSSMC], "millipede-energy-vs-ssmc")
	}
}

func BenchmarkFig5Multicore(b *testing.B) {
	p := arch.Default()
	for i := 0; i < b.N; i++ {
		f, err := harness.Fig5(context.Background(), p, benchScale, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.Geomean["speedup"], "node-speedup")
		b.ReportMetric(f.Geomean["energy-improvement"], "node-energy-improvement")
	}
}

func BenchmarkFig6SystemSize(b *testing.B) {
	p := arch.Default()
	for i := 0; i < b.N; i++ {
		f, err := harness.Fig6(context.Background(), p, benchScale, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.Geomean["millipede-64"]/f.Geomean["ssmc-64"], "millipede-vs-ssmc-at-64")
	}
}

func BenchmarkChannelSweep(b *testing.B) {
	p := arch.Default()
	for i := 0; i < b.N; i++ {
		f, err := harness.ChannelSweep(context.Background(), p, benchScale, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.Geomean["2-ch"], "speedup-2ch-vs-1ch")
		b.ReportMetric(f.Geomean["4-ch"], "speedup-4ch-vs-1ch")
	}
}

func BenchmarkFig7PrefetchBuffers(b *testing.B) {
	p := arch.Default()
	for i := 0; i < b.N; i++ {
		f, err := harness.Fig7(context.Background(), p, benchScale, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.Geomean["16-buffers"], "speedup-16-vs-2-buffers")
		b.ReportMetric(f.Geomean["32-buffers"]/f.Geomean["16-buffers"], "leveloff-32-vs-16")
	}
}

// BenchmarkSimulatorThroughput measures the simulator itself: simulated
// input words per second of wall time for the Millipede model.
func BenchmarkSimulatorThroughput(b *testing.B) {
	p := arch.Default()
	w := workloads.CountBench()
	const records = 1024
	words := float64(p.Threads() * w.StreamWords(records))
	for i := 0; i < b.N; i++ {
		if _, err := harness.Run(harness.ArchMillipede, w, p, records); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(words*float64(b.N)/b.Elapsed().Seconds(), "words/s")
}

// Per-architecture single-benchmark microbenches, useful for profiling the
// models.
func benchOne(b *testing.B, archName, bench string) {
	b.Helper()
	p := arch.Default()
	w, err := workloads.ByName(bench)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := harness.Run(archName, w, p, 256); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMillipedeKMeans(b *testing.B) { benchOne(b, harness.ArchMillipede, "kmeans") }
func BenchmarkSSMCKMeans(b *testing.B)      { benchOne(b, harness.ArchSSMC, "kmeans") }
func BenchmarkGPGPUKMeans(b *testing.B)     { benchOne(b, harness.ArchGPGPU, "kmeans") }
func BenchmarkVWSKMeans(b *testing.B)       { benchOne(b, harness.ArchVWS, "kmeans") }
func BenchmarkMillipedeNBayes(b *testing.B) { benchOne(b, harness.ArchMillipede, "nbayes") }

func BenchmarkBarrierAblation(b *testing.B) {
	p := arch.Default()
	for i := 0; i < b.N; i++ {
		f, err := harness.BarrierAblation(context.Background(), p, benchScale, 0)
		if err != nil {
			b.Fatal(err)
		}
		v := f.Rows[0].Values
		b.ReportMetric(v["no-flow-control"], "no-flow-control-vs-millipede")
		b.ReportMetric(v["barrier-every-1"], "record-barriers-vs-millipede")
	}
}

func BenchmarkCharacteristicsStudy(b *testing.B) {
	p := arch.Default()
	for i := 0; i < b.N; i++ {
		f, err := harness.CharacteristicsStudy(context.Background(), p, 0.01, 0)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range f.Rows {
			if r.Bench == "join" {
				b.ReportMetric(r.Values["dram-amplification"], "join-dram-amplification")
			}
		}
	}
}
