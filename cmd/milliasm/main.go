// Command milliasm is the kernel developer tool: it assembles kernel
// source, prints the disassembly with resolved labels, reports the encoded
// code footprint against the paper's 4 KB code-broadcast budget, and can
// dump the control-flow graph and SIMT reconvergence points the divergence
// stacks use.
//
// Usage:
//
//	milliasm [-cfg] [-builtin count] [file.s]
//
// With -builtin NAME it inspects one of the eight built-in BMLA kernels;
// otherwise it reads the given source file (or stdin).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/workloads"
)

func main() {
	log.SetFlags(0)
	showCFG := flag.Bool("cfg", false, "dump basic blocks and reconvergence points")
	builtin := flag.String("builtin", "", "inspect a built-in kernel (count, sample, variance, nbayes, classify, kmeans, pca, gda)")
	out := flag.String("o", "", "write the binary encoding to this file")
	dec := flag.String("d", "", "decode a binary program file instead of assembling")
	flag.Parse()

	var prog *isa.Program
	var k *kernels.Kernel
	switch {
	case *dec != "":
		b, err := os.ReadFile(*dec)
		if err != nil {
			log.Fatal(err)
		}
		prog, err = isa.DecodeProgram(*dec, b)
		if err != nil {
			log.Fatal(err)
		}
	case *builtin != "":
		b, err := workloads.ByName(*builtin)
		if err != nil {
			log.Fatal(err)
		}
		k = b.K
		prog = k.Prog
	case flag.NArg() == 1:
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		prog, err = asm.Assemble(flag.Arg(0), string(src))
		if err != nil {
			log.Fatal(err)
		}
	default:
		src, err := io.ReadAll(os.Stdin)
		if err != nil {
			log.Fatal(err)
		}
		prog, err = asm.Assemble("stdin", string(src))
		if err != nil {
			log.Fatal(err)
		}
	}

	if *out != "" {
		if err := os.WriteFile(*out, isa.EncodeProgram(prog), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d bytes to %s\n", isa.EncodedBytes(prog), *out)
	}
	fmt.Printf("kernel %s: %d instructions, %d B encoded (4 KB broadcast budget: %s)\n",
		prog.Name, len(prog.Insts), isa.EncodedBytes(prog), budget(isa.EncodedBytes(prog)))
	if k != nil {
		fmt.Printf("record %d words, live state %d words/thread, %d constant words\n",
			k.RecordWords, k.StateWords, len(k.Consts))
	}
	fmt.Println()
	fmt.Print(prog.Disassemble())

	if *showCFG {
		g := asm.BuildCFG(prog)
		ipdom := asm.PostDominators(g)
		fmt.Println("\nbasic blocks:")
		for i, b := range g.Blocks {
			d := "exit"
			if ipdom[i] >= 0 && ipdom[i] < len(g.Blocks) {
				d = fmt.Sprintf("B%d", ipdom[i])
			}
			fmt.Printf("  B%-3d insts [%d,%d)  succs %v  ipdom %s\n", i, b.Start, b.End, b.Succs, d)
		}
		if len(prog.ReconvPC) > 0 {
			fmt.Println("\nSIMT reconvergence points (branch pc -> reconverge pc):")
			var pcs []int
			for pc := range prog.ReconvPC {
				pcs = append(pcs, pc)
			}
			sort.Ints(pcs)
			for _, pc := range pcs {
				fmt.Printf("  %4d -> %d\n", pc, prog.ReconvPC[pc])
			}
		}
	}
}

func budget(n int) string {
	if n <= 4096 {
		return "ok"
	}
	return "EXCEEDED"
}
