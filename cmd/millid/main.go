// Command millid serves the experiment registry over HTTP: a job-queued,
// result-cached simulation service. Every experiment milliexp can run is
// reachable as a POST /v1/jobs request; deterministic simulation makes the
// SHA-256 of the canonical request both the job id and the result-cache key,
// so repeated or concurrent identical requests simulate once and share
// byte-identical result bodies.
//
// Usage:
//
//	millid [-addr :8177] [-workers 0] [-queue 0] [-cache 256]
//	       [-timeout 15m] [-drain-timeout 1m]
//
// Quick start:
//
//	millid &
//	curl localhost:8177/v1/experiments
//	curl -d '{"experiment":"ablation","scale":0.25}' localhost:8177/v1/jobs
//	curl localhost:8177/v1/jobs/<id>          # poll until "done"
//	curl localhost:8177/v1/jobs/<id>/result
//	curl localhost:8177/metrics               # queue depth, cache hit rate
//
// On SIGTERM/SIGINT the daemon drains gracefully: intake stops (POST returns
// 503, /healthz degrades), queued and in-flight jobs run to completion while
// GET routes keep serving, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/arch"
	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", ":8177", "listen address")
	workers := flag.Int("workers", 0, "simulation worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "job queue capacity (0 = 4x workers)")
	cacheEntries := flag.Int("cache", 256, "result cache entries (LRU)")
	timeout := flag.Duration("timeout", 15*time.Minute, "default per-job timeout (0 = none; requests may set timeout_ms)")
	drainTimeout := flag.Duration("drain-timeout", time.Minute, "how long to wait for in-flight jobs on shutdown")
	flag.Parse()

	srv := server.New(arch.Default(), server.Options{
		Workers:        *workers,
		QueueCapacity:  *queue,
		CacheEntries:   *cacheEntries,
		DefaultTimeout: *timeout,
	})
	hs := &http.Server{Addr: *addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		log.Printf("millid: signal received; draining (intake closed, waiting up to %s for jobs)", *drainTimeout)
		dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Drain(dctx); err != nil {
			log.Printf("millid: drain incomplete: %v", err)
		} else {
			log.Printf("millid: drained cleanly")
		}
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		hs.Shutdown(sctx)
	}()

	log.Printf("millid: serving the experiment registry on %s", *addr)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("millid: %v", err)
	}
	<-drained
	log.Print(srv.Metrics().Render())
}
