// Command millid serves the experiment registry over HTTP: a job-queued,
// result-cached simulation service that scales from one daemon to a
// cluster. Every experiment milliexp can run is reachable as a
// POST /v1/jobs request; deterministic simulation makes the SHA-256 of the
// canonical request both the job id and the result-cache key, so repeated
// or concurrent identical requests simulate once and share byte-identical
// result bodies.
//
// The daemon runs one of three roles:
//
//	-role=worker (default)  the simulation node: job queue + worker pool +
//	                        local LRU result cache; -store attaches the
//	                        shared result tier so results computed anywhere
//	                        in the cluster are hits here too
//	-role=store             the shared result tier: a memcache-style
//	                        in-memory store speaking GET/PUT/LEASE
//	-role=router            the front tier: consistent-hash routing of jobs
//	                        across -nodes, with health checks and bounded
//	                        retry — identical requests always land on the
//	                        same worker
//
// Single-daemon quick start:
//
//	millid &
//	curl localhost:8177/v1/experiments
//	curl -d '{"experiment":"ablation","scale":0.25}' localhost:8177/v1/jobs
//	curl localhost:8177/v1/jobs/<id>          # poll until "done"
//	curl localhost:8177/v1/jobs/<id>/result
//	curl localhost:8177/metrics               # queue depth, cache hit rate
//
// Cluster quick start (see also `make cluster-demo`):
//
//	millid -role=store  -addr :8178 &
//	millid -addr :8181 -store http://localhost:8178 &
//	millid -addr :8182 -store http://localhost:8178 &
//	millid -role=router -addr :8177 -nodes http://localhost:8181,http://localhost:8182 &
//	milliload -target http://localhost:8177 -rates 4,8 -duration 3s
//
// On SIGTERM/SIGINT a worker drains gracefully: intake stops (POST returns
// 503, /healthz degrades — which also tells the router to stop routing
// here), queued and in-flight jobs run until done or until -drain-timeout
// cancels their contexts, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	_ "net/http/pprof" // debug mux, served only when -pprof is set
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/arch"
	"repro/internal/rescache"
	"repro/internal/router"
	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	role := flag.String("role", "worker", "daemon role: worker, store, or router")
	addr := flag.String("addr", ":8177", "listen address")
	// Worker flags.
	workers := flag.Int("workers", 0, "worker: simulation worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "worker: job queue capacity (0 = 4x workers)")
	cacheEntries := flag.Int("cache", 256, "worker: local result cache entries (LRU)")
	storeURL := flag.String("store", "", "worker: base URL of the shared result store (millid -role=store); empty = local cache only")
	timeout := flag.Duration("timeout", 15*time.Minute, "worker: default per-job timeout (0 = none; requests may set timeout_ms)")
	parallelism := flag.Int("parallelism", 1, "worker: default cycle-engine worker count per simulation (1 = serial; jobs may set \"parallelism\"; any value is bit-identical)")
	skip := flag.String("skip", "on", "worker: default engine quiescence time skipping, on or off (jobs may set \"skip\"; bit-identical either way)")
	drainTimeout := flag.Duration("drain-timeout", time.Minute, "worker: how long to wait for in-flight jobs on shutdown before cancelling them")
	// Store flags.
	storeEntries := flag.Int("store-entries", 4096, "store: result entries (LRU)")
	leaseTTL := flag.Duration("lease-ttl", 30*time.Second, "store: fill-lease lifetime")
	// Router flags.
	nodes := flag.String("nodes", "", "router: comma-separated worker base URLs")
	replicas := flag.Int("replicas", 64, "router: consistent-hash virtual replicas per node")
	healthEvery := flag.Duration("health-interval", 2*time.Second, "router: node health-check period")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty = disabled")
	flag.Parse()

	if *pprofAddr != "" {
		// The blank net/http/pprof import registers its handlers on the
		// default mux, which nothing else in millid uses; expose it only on
		// the operator-chosen address, separate from the API listener.
		go func() {
			log.Printf("millid: pprof debug server on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("millid: pprof server: %v", err)
			}
		}()
	}

	if *skip != "on" && *skip != "off" {
		log.Fatalf("millid: bad -skip %q (want on or off)", *skip)
	}
	switch *role {
	case "worker":
		runWorker(*addr, *workers, *queue, *cacheEntries, *storeURL, *timeout, *drainTimeout, *parallelism, *skip == "off")
	case "store":
		runStore(*addr, *storeEntries, *leaseTTL)
	case "router":
		runRouter(*addr, *nodes, *replicas, *healthEvery)
	default:
		log.Fatalf("millid: unknown -role %q (worker, store, or router)", *role)
	}
}

// serve runs hs until a signal arrives, then calls shutdown (which must
// stop the listener, e.g. via hs.Shutdown).
func serve(hs *http.Server, what string, shutdown func(ctx context.Context)) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	finished := make(chan struct{})
	go func() {
		defer close(finished)
		<-ctx.Done()
		shutdown(context.Background())
	}()

	log.Printf("millid: serving %s on %s", what, hs.Addr)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("millid: %v", err)
	}
	<-finished
}

func runWorker(addr string, workers, queue, cacheEntries int, storeURL string, timeout, drainTimeout time.Duration, parallelism int, noskip bool) {
	o := server.Options{
		Workers:        workers,
		QueueCapacity:  queue,
		CacheEntries:   cacheEntries,
		DefaultTimeout: timeout,
		Parallelism:    parallelism,
		NoSkip:         noskip,
	}
	if storeURL != "" {
		o.Shared = rescache.NewHTTPTier(storeURL, nil)
		log.Printf("millid: shared result tier at %s", storeURL)
	}
	srv := server.New(arch.Default(), o)
	hs := &http.Server{Addr: addr, Handler: srv}
	serve(hs, "the experiment registry", func(ctx context.Context) {
		log.Printf("millid: signal received; draining (intake closed, waiting up to %s for jobs)", drainTimeout)
		dctx, cancel := context.WithTimeout(ctx, drainTimeout)
		defer cancel()
		if err := srv.Drain(dctx); err != nil {
			log.Printf("millid: drain timed out; cancelled remaining jobs: %v", err)
		} else {
			log.Printf("millid: drained cleanly")
		}
		sctx, scancel := context.WithTimeout(ctx, 5*time.Second)
		defer scancel()
		hs.Shutdown(sctx)
	})
	log.Print(srv.Metrics().Render())
}

func runStore(addr string, entries int, leaseTTL time.Duration) {
	st := rescache.NewStore(entries, leaseTTL)
	hs := &http.Server{Addr: addr, Handler: st.Handler()}
	serve(hs, "the shared result store", func(ctx context.Context) {
		log.Printf("millid: signal received; store shutting down")
		sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		defer cancel()
		hs.Shutdown(sctx)
	})
	log.Print(st.Registry().Snapshot().Render())
}

func runRouter(addr, nodeList string, replicas int, healthEvery time.Duration) {
	var nodes []string
	for _, n := range strings.Split(nodeList, ",") {
		if n = strings.TrimSpace(n); n != "" {
			nodes = append(nodes, n)
		}
	}
	if len(nodes) == 0 {
		log.Fatal("millid: -role=router requires -nodes")
	}
	rt := router.New(router.Options{
		Nodes:          nodes,
		Replicas:       replicas,
		Base:           arch.Default(),
		HealthInterval: healthEvery,
	})
	defer rt.Close()
	hs := &http.Server{Addr: addr, Handler: rt}
	log.Printf("millid: routing across %d nodes: %s", len(nodes), strings.Join(nodes, ", "))
	serve(hs, "the cluster router", func(ctx context.Context) {
		log.Printf("millid: signal received; router shutting down")
		sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		defer cancel()
		hs.Shutdown(sctx)
	})
	log.Print(rt.Metrics().Render())
}
