// Command millisim runs one {architecture x benchmark} simulation and
// prints its verified measurements.
//
// Usage:
//
//	millisim [-arch millipede] [-bench kmeans] [-records 512] [-corelets 32] [-buffers 16]
//	millisim -trace-out trace.json [-arch millipede] [-bench count] ...
//
// -trace-out records the run's event stream (corelet 0's instructions,
// prefetch/flow-control/starve/evict events, memory issues and row
// open/close, DFS clock steps) and writes it as Chrome trace-event JSON,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Every run is checked against the golden MapReduce reference; a reported
// time can never come from a functionally wrong execution.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	millipede "repro"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/harness"
	"repro/internal/kernels"
	"repro/internal/layout"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	log.SetFlags(0)
	archName := flag.String("arch", millipede.ArchMillipede,
		"architecture: "+strings.Join(append(millipede.Architectures(), millipede.ArchMulticore), ", "))
	bench := flag.String("bench", "kmeans", "benchmark: "+strings.Join(millipede.Benchmarks(), ", "))
	records := flag.Int("records", 0, "records per hardware thread (0 = benchmark default)")
	traceN := flag.Int("trace", 0, "print the first N trace events (millipede only)")
	traceOut := flag.String("trace-out", "", "write the run's event stream as Chrome trace-event JSON to this path (millipede family only)")
	corelets := flag.Int("corelets", 32, "corelets/lanes per processor")
	buffers := flag.Int("buffers", 16, "prefetch buffer entries")
	channels := flag.Int("channels", 0, "die-stack memory channels (0 = geometry default)")
	stackMode := flag.String("stack", "", "die-stack capacity discipline: memory, hwcache, memcache (empty = all-resident pass-through)")
	stackBytes := flag.Int("stack-bytes", 0, "die-stack capacity in bytes (0 = holds the whole dataset)")
	backingLatency := flag.Int("backing-latency", 0, "planar backing store latency in channel cycles (0 = default)")
	flag.Parse()

	cfg := millipede.DefaultConfig().WithSize(*corelets)
	cfg.PrefetchEntries = *buffers
	if *channels > 0 {
		cfg.Channels = *channels
	}
	cfg.StackMode = *stackMode
	cfg.StackBytes = *stackBytes
	cfg.BackingLatency = *backingLatency
	n := *records
	if n == 0 {
		n = 512
	}
	if *traceN > 0 {
		if *archName != millipede.ArchMillipede {
			log.Fatal("-trace is only supported for -arch millipede")
		}
		if err := runTraced(cfg, *bench, n, *traceN); err != nil {
			log.Fatal(err)
		}
		return
	}
	var opts []millipede.RunOption
	var traceLog *millipede.TraceLog
	if *traceOut != "" {
		switch *archName {
		case millipede.ArchMillipede, millipede.ArchMillipedeNoFC, millipede.ArchMillipedeRM:
		default:
			log.Fatal("-trace-out is only supported for the millipede-family architectures")
		}
		traceLog = millipede.NewTraceLog(1 << 20)
		opts = append(opts, millipede.WithTraceSink(traceLog))
	}
	res, err := millipede.RunBenchmark(*archName, *bench, cfg, n, opts...)
	if err != nil {
		log.Fatal(err)
	}
	if traceLog != nil {
		data, err := traceLog.ChromeJSON(1e12 / cfg.ComputeHz)
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*traceOut, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d events, %d dropped at the %d-event cap)\n",
			*traceOut, len(traceLog.Events()), traceLog.Dropped(), 1<<20)
	}
	fmt.Printf("architecture        %s\n", res.Arch)
	fmt.Printf("benchmark           %s\n", res.Bench)
	fmt.Printf("input words         %d (%d records/thread x %d threads)\n", res.Words, n, cfg.Threads())
	fmt.Printf("simulated time      %.3f us\n", float64(res.Time)/1e6)
	fmt.Printf("instructions        %d (%.2f per input word)\n", res.Insts, res.InstsPerWord)
	fmt.Printf("branches/inst       %.4f\n", res.BranchesPerInst)
	fmt.Printf("DRAM row miss rate  %.3f\n", res.RowMissRate)
	fmt.Printf("DRAM bytes read     %d (%.2f GB/s)\n", res.DRAMBytes, float64(res.DRAMBytes)/float64(res.Time)*1000)
	fmt.Printf("mem channels        %d\n", cfg.Channels)
	fmt.Printf("mem stall cycles    %d (max queue occupancy %d, rejected %d)\n",
		res.MemStallCycles, res.MemMaxOccupancy, res.MemRejected)
	if st := res.Stack; st.Mode != "" {
		fmt.Printf("stack discipline    %s (%d B resident)\n", st.Mode, st.ResidentBytes)
		fmt.Printf("stack hit rate      %.3f (%d of %d accesses served in-stack)\n",
			st.HitRate(), st.StackServed, st.Accesses)
		fmt.Printf("backing traffic     %d reads / %d writes (%d B read, %d B written)\n",
			st.Backing.Reads, st.Backing.Writes, st.Backing.BytesRead, st.Backing.BytesWritten)
		if st.Writebacks > 0 || st.Evictions > 0 {
			fmt.Printf("cache churn         %d evictions, %d writebacks, %d MSHR joins\n",
				st.Evictions, st.Writebacks, st.MSHRJoins)
		}
	}
	fmt.Printf("final clock         %.0f MHz\n", res.FinalHz/1e6)
	fmt.Printf("energy              %.3f uJ (core %.3f / dram %.3f / leak %.3f)\n",
		res.Energy.TotalPJ()/1e6, res.Energy.CorePJ/1e6, res.Energy.DRAMPJ/1e6, res.Energy.LeakPJ/1e6)
	fmt.Println("golden check        PASS (enforced)")
}

// runTraced executes the benchmark on Millipede with event tracing of
// corelet 0 and the prefetch buffer, printing the first n events.
func runTraced(cfg millipede.Config, bench string, records, n int) error {
	b, err := workloads.ByName(bench)
	if err != nil {
		return err
	}
	lay := layout.Layout{RowBytes: cfg.DRAM.RowBytes, Corelets: cfg.Corelets,
		Contexts: cfg.Contexts, Interleave: layout.Slab}
	sl, err := kernels.LocalState(b.K, cfg.LocalBytes, cfg.Contexts)
	if err != nil {
		return err
	}
	args := kernels.ArgsAndConsts(b.K, lay.Walk(), sl, records)
	pr, err := core.NewProcessor(cfg, energy.Default(), core.Launch{
		Prog: b.K.Prog, Interleave: layout.Slab,
		Sources: b.Sources(cfg.Threads(), records, harness.Seed), Args: args,
	})
	if err != nil {
		return err
	}
	l := trace.NewLog(n)
	pr.EnableTrace(l, 0)
	if _, err := pr.Run(0); err != nil {
		return err
	}
	fmt.Print(l.Render())
	return nil
}
