// Command milliexp regenerates every table and figure of the paper's
// evaluation (Section VI) and prints them as text tables. The experiment
// set comes from the millipede.Experiments registry; -list prints the
// registered names and descriptions, and an unknown -only name exits
// nonzero with the same listing. Ctrl-C (or SIGTERM) cancels the sweep
// in flight.
//
// Usage:
//
//	milliexp -list
//	milliexp [-scale 1.0] [-only fig3,fig4,timeline,...]
//	milliexp -benchjson BENCH_2.json [-benchbase BENCH_1.json] [-benchscale 0.25]
//	milliexp -benchdiff BENCH_1.json [-benchjson BENCH_2.json]
//
// scale multiplies each benchmark's default input size; 1.0 is the
// paper-scale run recorded in EXPERIMENTS.md.
//
// -benchjson records the simulator's own throughput (simulated cycles and
// instructions per wall-clock second for every architecture x benchmark,
// plus the wall time of a full Figure 3 reproduction) into the named
// BENCH_*.json file; -benchbase additionally prints a speedup comparison
// against a previously recorded file. See EXPERIMENTS.md, "Benchmark
// trajectory".
//
// -benchdiff is the determinism gate: it re-collects at the baseline's
// scale and exits nonzero unless every entry's records, sim_cycles,
// sim_picos, and insts are bit-identical to the baseline file.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	millipede "repro"
	"repro/internal/benchreport"
	_ "repro/internal/sla" // registers the serving-layer "sla" experiment
)

// printRegistry writes one line per registered experiment.
func printRegistry() {
	for _, e := range millipede.Experiments() {
		fmt.Printf("  %-16s %s\n", e.Name, e.Description)
	}
}

func main() {
	log.SetFlags(0)
	scale := flag.Float64("scale", 1.0, "input-size multiplier")
	list := flag.Bool("list", false, "print the experiment registry (names and descriptions) and exit")
	only := flag.String("only", "", "comma-separated subset of registered experiments (see -list)")
	benchJSON := flag.String("benchjson", "", "measure simulator throughput and write a BENCH_*.json report to this path (skips figures)")
	benchBase := flag.String("benchbase", "", "previous BENCH_*.json to compare the new report against")
	benchScale := flag.Float64("benchscale", benchreport.DefaultScale, "input scale for -benchjson throughput runs")
	benchDiff := flag.String("benchdiff", "", "determinism gate: collect a fresh report and exit nonzero unless its records/sim_cycles/sim_picos/insts are bit-identical to this baseline BENCH_*.json (skips figures)")
	parallelism := flag.Int("parallelism", 1, "intra-run worker count for the deterministic parallel cycle engine (1 = serial; any value is bit-identical)")
	skip := flag.String("skip", "on", "engine quiescence time skipping, on or off (bit-identical either way; off replays every clock edge)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (after the run) to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatalf("memprofile: %v", err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatalf("memprofile: %v", err)
			}
		}()
	}

	if *skip != "on" && *skip != "off" {
		log.Fatalf("bad -skip %q (want on or off)", *skip)
	}
	noskip := *skip == "off"

	if *list {
		printRegistry()
		return
	}
	if *benchJSON != "" || *benchDiff != "" {
		runBenchReport(*benchJSON, *benchBase, *benchDiff, *benchScale, *parallelism, noskip)
		return
	}

	registered := millipede.Experiments()
	names := map[string]bool{}
	for _, e := range registered {
		names[e.Name] = true
	}
	want := map[string]bool{}
	if *only != "" {
		for _, s := range strings.Split(*only, ",") {
			name := strings.TrimSpace(s)
			if !names[name] {
				fmt.Printf("unknown experiment %q; registered experiments:\n", name)
				printRegistry()
				os.Exit(1)
			}
			want[name] = true
		}
	}
	sel := func(name string) bool { return len(want) == 0 || want[name] }
	cfg := millipede.DefaultConfig()
	cfg.Parallelism = *parallelism
	cfg.NoSkip = noskip

	// Ctrl-C / SIGTERM cancels the sweep in flight: the context reaches
	// every figure's worker pool through RunExperimentContext.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	for _, e := range registered {
		if !sel(e.Name) {
			continue
		}
		t0 := time.Now()
		res, err := millipede.RunExperimentContext(ctx, e.Name, cfg, millipede.WithScale(*scale))
		if err != nil {
			if errors.Is(err, context.Canceled) {
				log.Fatalf("%s: interrupted", e.Name)
			}
			log.Fatalf("%s: %v", e.Name, err)
		}
		fmt.Print(res.Render())
		switch e.Name {
		case "table2", "table3":
			// Tables render instantly; no wall-time footer (historical
			// output format).
			fmt.Println()
		default:
			fmt.Printf("(%s wall time: %s)\n\n", e.Name, time.Since(t0).Round(time.Millisecond))
		}
	}
}

// runBenchReport measures simulator throughput over Figure 3's workload set
// and writes the BENCH_*.json trajectory point and/or runs the determinism
// gate against a baseline report.
func runBenchReport(path, basePath, diffPath string, scale float64, parallelism int, noskip bool) {
	cfg := millipede.DefaultConfig()
	cfg.Parallelism = parallelism
	cfg.NoSkip = noskip
	if diffPath != "" {
		base, err := benchreport.Read(diffPath)
		if err != nil {
			log.Fatalf("benchdiff: %v", err)
		}
		// Diff at the baseline's own scale so the record counts line up.
		scale = base.Scale
		t0 := time.Now()
		rep, err := benchreport.Collect(cfg, benchreport.Fig3Archs(), scale)
		if err != nil {
			log.Fatalf("benchdiff: %v", err)
		}
		if path != "" {
			if err := rep.Write(path); err != nil {
				log.Fatalf("benchdiff: %v", err)
			}
			fmt.Printf("wrote %s\n", path)
		}
		diffs := benchreport.DiffDeterminism(base, rep)
		if len(diffs) > 0 {
			for _, d := range diffs {
				fmt.Println(d)
			}
			log.Fatalf("benchdiff: %d determinism mismatches against %s", len(diffs), diffPath)
		}
		fmt.Printf("benchdiff: %d entries bit-identical to %s on %v (collected in %s)\n",
			len(rep.Entries), diffPath, benchreport.DeterminismFields,
			time.Since(t0).Round(time.Millisecond))
		return
	}
	t0 := time.Now()
	rep, err := benchreport.Collect(cfg, benchreport.Fig3Archs(), scale)
	if err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	if err := rep.Write(path); err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	fmt.Printf("wrote %s (%d entries, collected in %s)\n", path, len(rep.Entries),
		time.Since(t0).Round(time.Millisecond))
	fmt.Printf("geomean simulated cycles/sec: %.0f; fig3 wall time: %.2fs\n",
		rep.GeomeanCyclesPerSec["all"], rep.Fig3WallSeconds)
	if basePath != "" {
		base, err := benchreport.Read(basePath)
		if err != nil {
			log.Fatalf("benchbase: %v", err)
		}
		fmt.Printf("\ncomparison against %s:\n%s", basePath, benchreport.Compare(base, rep))
	}
}
