// Command milliexp regenerates every table and figure of the paper's
// evaluation (Section VI) and prints them as text tables.
//
// Usage:
//
//	milliexp [-scale 1.0] [-only fig3,fig4,fig5,fig6,fig7,table2,table3,table4,channels]
//	milliexp -benchjson BENCH_2.json [-benchbase BENCH_1.json] [-benchscale 0.25]
//	milliexp -benchdiff BENCH_1.json [-benchjson BENCH_2.json]
//
// scale multiplies each benchmark's default input size; 1.0 is the
// paper-scale run recorded in EXPERIMENTS.md.
//
// -benchjson records the simulator's own throughput (simulated cycles and
// instructions per wall-clock second for every architecture x benchmark,
// plus the wall time of a full Figure 3 reproduction) into the named
// BENCH_*.json file; -benchbase additionally prints a speedup comparison
// against a previously recorded file. See EXPERIMENTS.md, "Benchmark
// trajectory".
//
// -benchdiff is the determinism gate: it re-collects at the baseline's
// scale and exits nonzero unless every entry's records, sim_cycles,
// sim_picos, and insts are bit-identical to the baseline file.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	millipede "repro"
	"repro/internal/benchreport"
)

func main() {
	log.SetFlags(0)
	scale := flag.Float64("scale", 1.0, "input-size multiplier")
	only := flag.String("only", "", "comma-separated subset (fig3..fig7, table2, table3, table4, ablation, characteristics, warpwidth, residency, channels, node)")
	benchJSON := flag.String("benchjson", "", "measure simulator throughput and write a BENCH_*.json report to this path (skips figures)")
	benchBase := flag.String("benchbase", "", "previous BENCH_*.json to compare the new report against")
	benchScale := flag.Float64("benchscale", benchreport.DefaultScale, "input scale for -benchjson throughput runs")
	benchDiff := flag.String("benchdiff", "", "determinism gate: collect a fresh report and exit nonzero unless its records/sim_cycles/sim_picos/insts are bit-identical to this baseline BENCH_*.json (skips figures)")
	flag.Parse()

	if *benchJSON != "" || *benchDiff != "" {
		runBenchReport(*benchJSON, *benchBase, *benchDiff, *benchScale)
		return
	}

	want := map[string]bool{}
	if *only != "" {
		for _, s := range strings.Split(*only, ",") {
			want[strings.TrimSpace(s)] = true
		}
	}
	sel := func(name string) bool { return len(want) == 0 || want[name] }
	cfg := millipede.DefaultConfig()

	if sel("table3") {
		fmt.Println(millipede.TableIII(cfg))
	}
	if sel("table2") {
		fmt.Println(millipede.TableII())
	}
	run := func(name string, f func() (*millipede.Figure, error)) {
		if !sel(name) {
			return
		}
		t0 := time.Now()
		fig, err := f()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Print(fig.Render())
		fmt.Printf("(%s wall time: %s)\n\n", name, time.Since(t0).Round(time.Millisecond))
	}
	run("table4", func() (*millipede.Figure, error) { return millipede.TableIV(cfg, *scale) })
	run("fig3", func() (*millipede.Figure, error) { return millipede.Figure3(cfg, *scale) })
	if sel("fig4") {
		t0 := time.Now()
		fig, parts, err := millipede.Figure4(cfg, *scale)
		if err != nil {
			log.Fatalf("fig4: %v", err)
		}
		fmt.Print(fig.Render())
		fmt.Print(parts.Render())
		fmt.Printf("(fig4 wall time: %s)\n\n", time.Since(t0).Round(time.Millisecond))
	}
	run("fig5", func() (*millipede.Figure, error) { return millipede.Figure5(cfg, *scale) })
	run("fig6", func() (*millipede.Figure, error) { return millipede.Figure6(cfg, *scale) })
	run("fig7", func() (*millipede.Figure, error) { return millipede.Figure7(cfg, *scale) })
	run("ablation", func() (*millipede.Figure, error) { return millipede.BarrierAblation(cfg, *scale) })
	run("characteristics", func() (*millipede.Figure, error) { return millipede.CharacteristicsStudy(cfg, *scale/4) })
	run("warpwidth", func() (*millipede.Figure, error) { return millipede.WarpWidthSweep(cfg, *scale) })
	run("channels", func() (*millipede.Figure, error) { return millipede.ChannelSweep(cfg, *scale) })
	run("residency", func() (*millipede.Figure, error) { return millipede.ResidencyStudy(cfg, 16, *scale) })
	if sel("node") {
		t0 := time.Now()
		r, err := millipede.RunNode("count", cfg, 8, 1024)
		if err != nil {
			log.Fatalf("node: %v", err)
		}
		fmt.Printf("Measured 8-processor node run (count, 1024 records/thread):\n")
		fmt.Printf("  makespan %.1f us, load imbalance %.1f%%, energy %.1f uJ\n",
			float64(r.Time)/1e6, r.Imbalance()*100, r.Energy.TotalPJ()/1e6)
		fmt.Printf("(node wall time: %s)\n\n", time.Since(t0).Round(time.Millisecond))
	}
}

// runBenchReport measures simulator throughput over Figure 3's workload set
// and writes the BENCH_*.json trajectory point and/or runs the determinism
// gate against a baseline report.
func runBenchReport(path, basePath, diffPath string, scale float64) {
	cfg := millipede.DefaultConfig()
	if diffPath != "" {
		base, err := benchreport.Read(diffPath)
		if err != nil {
			log.Fatalf("benchdiff: %v", err)
		}
		// Diff at the baseline's own scale so the record counts line up.
		scale = base.Scale
		t0 := time.Now()
		rep, err := benchreport.Collect(cfg, benchreport.Fig3Archs(), scale)
		if err != nil {
			log.Fatalf("benchdiff: %v", err)
		}
		if path != "" {
			if err := rep.Write(path); err != nil {
				log.Fatalf("benchdiff: %v", err)
			}
			fmt.Printf("wrote %s\n", path)
		}
		diffs := benchreport.DiffDeterminism(base, rep)
		if len(diffs) > 0 {
			for _, d := range diffs {
				fmt.Println(d)
			}
			log.Fatalf("benchdiff: %d determinism mismatches against %s", len(diffs), diffPath)
		}
		fmt.Printf("benchdiff: %d entries bit-identical to %s on %v (collected in %s)\n",
			len(rep.Entries), diffPath, benchreport.DeterminismFields,
			time.Since(t0).Round(time.Millisecond))
		return
	}
	t0 := time.Now()
	rep, err := benchreport.Collect(cfg, benchreport.Fig3Archs(), scale)
	if err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	if err := rep.Write(path); err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	fmt.Printf("wrote %s (%d entries, collected in %s)\n", path, len(rep.Entries),
		time.Since(t0).Round(time.Millisecond))
	fmt.Printf("geomean simulated cycles/sec: %.0f; fig3 wall time: %.2fs\n",
		rep.GeomeanCyclesPerSec["all"], rep.Fig3WallSeconds)
	if basePath != "" {
		base, err := benchreport.Read(basePath)
		if err != nil {
			log.Fatalf("benchbase: %v", err)
		}
		fmt.Printf("\ncomparison against %s:\n%s", basePath, benchreport.Compare(base, rep))
	}
}
