// Command milliexp regenerates every table and figure of the paper's
// evaluation (Section VI) and prints them as text tables. The experiment
// set comes from the millipede.Experiments registry; run with an unknown
// -only name to see the registered names and descriptions.
//
// Usage:
//
//	milliexp [-scale 1.0] [-only fig3,fig4,timeline,...]
//	milliexp -benchjson BENCH_2.json [-benchbase BENCH_1.json] [-benchscale 0.25]
//	milliexp -benchdiff BENCH_1.json [-benchjson BENCH_2.json]
//
// scale multiplies each benchmark's default input size; 1.0 is the
// paper-scale run recorded in EXPERIMENTS.md.
//
// -benchjson records the simulator's own throughput (simulated cycles and
// instructions per wall-clock second for every architecture x benchmark,
// plus the wall time of a full Figure 3 reproduction) into the named
// BENCH_*.json file; -benchbase additionally prints a speedup comparison
// against a previously recorded file. See EXPERIMENTS.md, "Benchmark
// trajectory".
//
// -benchdiff is the determinism gate: it re-collects at the baseline's
// scale and exits nonzero unless every entry's records, sim_cycles,
// sim_picos, and insts are bit-identical to the baseline file.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	millipede "repro"
	"repro/internal/benchreport"
)

func main() {
	log.SetFlags(0)
	scale := flag.Float64("scale", 1.0, "input-size multiplier")
	only := flag.String("only", "", "comma-separated subset of registered experiments (fig3..fig7, table2, table3, table4, ablation, characteristics, warpwidth, residency, channels, node, timeline)")
	benchJSON := flag.String("benchjson", "", "measure simulator throughput and write a BENCH_*.json report to this path (skips figures)")
	benchBase := flag.String("benchbase", "", "previous BENCH_*.json to compare the new report against")
	benchScale := flag.Float64("benchscale", benchreport.DefaultScale, "input scale for -benchjson throughput runs")
	benchDiff := flag.String("benchdiff", "", "determinism gate: collect a fresh report and exit nonzero unless its records/sim_cycles/sim_picos/insts are bit-identical to this baseline BENCH_*.json (skips figures)")
	flag.Parse()

	if *benchJSON != "" || *benchDiff != "" {
		runBenchReport(*benchJSON, *benchBase, *benchDiff, *benchScale)
		return
	}

	want := map[string]bool{}
	if *only != "" {
		for _, s := range strings.Split(*only, ",") {
			want[strings.TrimSpace(s)] = true
		}
	}
	sel := func(name string) bool { return len(want) == 0 || want[name] }
	cfg := millipede.DefaultConfig()

	registered := millipede.Experiments()
	matched := 0
	for _, e := range registered {
		if !sel(e.Name) {
			continue
		}
		matched++
		t0 := time.Now()
		res, err := millipede.RunExperiment(e.Name, cfg, millipede.WithScale(*scale))
		if err != nil {
			log.Fatalf("%s: %v", e.Name, err)
		}
		fmt.Print(res.Render())
		switch e.Name {
		case "table2", "table3":
			// Tables render instantly; no wall-time footer (historical
			// output format).
			fmt.Println()
		default:
			fmt.Printf("(%s wall time: %s)\n\n", e.Name, time.Since(t0).Round(time.Millisecond))
		}
	}
	if matched == 0 {
		fmt.Printf("no experiment matches -only %q; registered experiments:\n", *only)
		for _, e := range registered {
			fmt.Printf("  %-16s %s\n", e.Name, e.Description)
		}
	}
}

// runBenchReport measures simulator throughput over Figure 3's workload set
// and writes the BENCH_*.json trajectory point and/or runs the determinism
// gate against a baseline report.
func runBenchReport(path, basePath, diffPath string, scale float64) {
	cfg := millipede.DefaultConfig()
	if diffPath != "" {
		base, err := benchreport.Read(diffPath)
		if err != nil {
			log.Fatalf("benchdiff: %v", err)
		}
		// Diff at the baseline's own scale so the record counts line up.
		scale = base.Scale
		t0 := time.Now()
		rep, err := benchreport.Collect(cfg, benchreport.Fig3Archs(), scale)
		if err != nil {
			log.Fatalf("benchdiff: %v", err)
		}
		if path != "" {
			if err := rep.Write(path); err != nil {
				log.Fatalf("benchdiff: %v", err)
			}
			fmt.Printf("wrote %s\n", path)
		}
		diffs := benchreport.DiffDeterminism(base, rep)
		if len(diffs) > 0 {
			for _, d := range diffs {
				fmt.Println(d)
			}
			log.Fatalf("benchdiff: %d determinism mismatches against %s", len(diffs), diffPath)
		}
		fmt.Printf("benchdiff: %d entries bit-identical to %s on %v (collected in %s)\n",
			len(rep.Entries), diffPath, benchreport.DeterminismFields,
			time.Since(t0).Round(time.Millisecond))
		return
	}
	t0 := time.Now()
	rep, err := benchreport.Collect(cfg, benchreport.Fig3Archs(), scale)
	if err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	if err := rep.Write(path); err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	fmt.Printf("wrote %s (%d entries, collected in %s)\n", path, len(rep.Entries),
		time.Since(t0).Round(time.Millisecond))
	fmt.Printf("geomean simulated cycles/sec: %.0f; fig3 wall time: %.2fs\n",
		rep.GeomeanCyclesPerSec["all"], rep.Fig3WallSeconds)
	if basePath != "" {
		base, err := benchreport.Read(basePath)
		if err != nil {
			log.Fatalf("benchbase: %v", err)
		}
		fmt.Printf("\ncomparison against %s:\n%s", basePath, benchreport.Compare(base, rep))
	}
}
