// Command milliload is the built-in deterministic load generator for the
// millid simulation service, and the tool that renders its SLA report:
// sustained req/s, p50/p99 job latency (client-observed and from the
// serving nodes' jobs histograms), and per-tier cache hit rate, per offered
// load step — the response-time-vs-offered-load framing the die-stacked
// serving literature uses.
//
// The request stream is deterministic: a seeded xorshift PRNG picks each
// request from -distinct canonical variants of one experiment, so two runs
// with the same flags offer byte-identical request sequences (what the
// cluster does with them — hit, join, or simulate — is the thing being
// measured).
//
// Usage:
//
//	milliload [-target http://localhost:8177] [-experiment ablation]
//	          [-scale 0.02] [-distinct 4] [-rates 4,8,16] [-duration 5s]
//	          [-seed 1] [-metrics url1,url2,...]
//
// -target may be a worker or the cluster router; -metrics names the worker
// /metrics endpoints to aggregate for the histogram/cache columns (default:
// the target itself).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/datagen"
	"repro/internal/harness"
	"repro/internal/metrics"
)

func main() {
	log.SetFlags(0)
	target := flag.String("target", "http://localhost:8177", "base URL of a millid worker or router")
	experiment := flag.String("experiment", "ablation", "experiment to load the service with")
	scale := flag.Float64("scale", 0.02, "base input scale; variant i runs at scale*(i+1)")
	distinct := flag.Int("distinct", 4, "number of distinct request variants (cache working set)")
	rates := flag.String("rates", "4,8,16", "comma-separated offered loads (requests/second), one report row each")
	duration := flag.Duration("duration", 5*time.Second, "offered-load duration per step")
	seed := flag.Uint64("seed", 1, "request-sequence seed")
	metricsURLs := flag.String("metrics", "", "comma-separated worker /metrics base URLs to aggregate (default: target)")
	flag.Parse()

	var offered []float64
	for _, s := range strings.Split(*rates, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil || r <= 0 {
			log.Fatalf("milliload: bad -rates entry %q", s)
		}
		offered = append(offered, r)
	}
	scrape := []string{*target}
	if *metricsURLs != "" {
		scrape = nil
		for _, u := range strings.Split(*metricsURLs, ",") {
			if u = strings.TrimSpace(u); u != "" {
				scrape = append(scrape, u)
			}
		}
	}

	gen := &loadgen{
		client:     &http.Client{Timeout: 30 * time.Second},
		target:     *target,
		experiment: *experiment,
		scale:      *scale,
		distinct:   *distinct,
		scrape:     scrape,
	}
	fig := &harness.Figure{
		Name: fmt.Sprintf("Serving SLA report: %s x%d variants against %s", *experiment, *distinct, *target),
		Series: []string{"offered_rps", "achieved_rps", "p50_ms", "p99_ms",
			"hist_p50_ms", "hist_p99_ms", "hit_rate", "shared_frac", "sims", "errors"},
	}
	for step, rate := range offered {
		row, err := gen.runStep(rate, *duration, datagen.NewRNG(*seed+uint64(step)))
		if err != nil {
			log.Fatalf("milliload: step %g req/s: %v", rate, err)
		}
		fig.Rows = append(fig.Rows, row)
	}
	fmt.Print(fig.Render())
	fmt.Println("p50/p99 are client-observed submit-to-done latencies; hist_* come from the")
	fmt.Println("worker jobs histograms (power-of-two-ms buckets, upper-edge estimate);")
	fmt.Println("hit_rate combines the local LRU and the shared store tier, shared_frac is")
	fmt.Println("the shared tier's share of all hits; sims and errors are step totals.")
	os.Exit(0)
}

type loadgen struct {
	client     *http.Client
	target     string
	experiment string
	scale      float64
	distinct   int
	scrape     []string
}

// body renders request variant i (deterministic canonical form).
func (g *loadgen) body(i int) []byte {
	return []byte(fmt.Sprintf(`{"experiment":%q,"scale":%g}`, g.experiment, g.scale*float64(i+1)))
}

// runStep offers `rate` req/s for d and reports one SLA row.
func (g *loadgen) runStep(rate float64, d time.Duration, rng *datagen.RNG) (harness.Row, error) {
	before, err := g.aggregate()
	if err != nil {
		return harness.Row{}, fmt.Errorf("scraping metrics: %w", err)
	}

	interval := time.Duration(float64(time.Second) / rate)
	deadline := time.Now().Add(d)
	var (
		mu        sync.Mutex
		latencies []float64
		errs      int
		wg        sync.WaitGroup
	)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	t0 := time.Now()
	n := 0
	for time.Now().Before(deadline) {
		variant := rng.Intn(g.distinct)
		wg.Add(1)
		n++
		go func() {
			defer wg.Done()
			lat, err := g.oneRequest(variant)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs++
				return
			}
			latencies = append(latencies, lat)
		}()
		<-tick.C
	}
	wg.Wait()
	elapsed := time.Since(t0).Seconds()

	after, err := g.aggregate()
	if err != nil {
		return harness.Row{}, fmt.Errorf("scraping metrics: %w", err)
	}
	delta := metrics.Diff(after, before)

	sort.Float64s(latencies)
	hits := delta.Value("server.cache_hits")
	shared := delta.Value("server.cache_shared_hits")
	misses := delta.Value("server.cache_misses")
	hitRate := 0.0
	if t := hits + shared + misses; t > 0 {
		hitRate = (hits + shared) / t
	}
	sharedFrac := 0.0
	if hits+shared > 0 {
		sharedFrac = shared / (hits + shared)
	}
	waitH, _ := delta.Get("server.job_wait_ms")
	runH, _ := delta.Get("server.job_run_ms")
	histLat := addBuckets(waitH.Buckets, runH.Buckets)

	row := harness.Row{Bench: fmt.Sprintf("%grps", rate), Values: map[string]float64{
		"offered_rps":  rate,
		"achieved_rps": float64(len(latencies)) / elapsed,
		"p50_ms":       percentile(latencies, 0.50),
		"p99_ms":       percentile(latencies, 0.99),
		"hist_p50_ms":  metrics.Pow2BucketPercentile(histLat, 0.50),
		"hist_p99_ms":  metrics.Pow2BucketPercentile(histLat, 0.99),
		"hit_rate":     hitRate,
		"shared_frac":  sharedFrac,
		"sims":         delta.Value("server.sims_run"),
		"errors":       float64(errs),
	}}
	return row, nil
}

// oneRequest submits one job and follows it to a terminal state, returning
// the submit-to-done latency in milliseconds.
func (g *loadgen) oneRequest(variant int) (float64, error) {
	t0 := time.Now()
	resp, err := g.client.Post(g.target+"/v1/jobs", "application/json", bytes.NewReader(g.body(variant)))
	if err != nil {
		return 0, err
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return 0, fmt.Errorf("POST /v1/jobs: %s", resp.Status)
	}
	var sb struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}
	if err := json.Unmarshal(data, &sb); err != nil {
		return 0, err
	}
	for sb.Status != "done" && sb.Status != "failed" {
		time.Sleep(5 * time.Millisecond)
		resp, err := g.client.Get(g.target + "/v1/jobs/" + sb.ID)
		if err != nil {
			return 0, err
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if err != nil {
			return 0, err
		}
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("GET /v1/jobs/%s: %s", sb.ID, resp.Status)
		}
		if err := json.Unmarshal(data, &sb); err != nil {
			return 0, err
		}
	}
	if sb.Status != "done" {
		return 0, fmt.Errorf("job %s failed", sb.ID)
	}
	return float64(time.Since(t0)) / float64(time.Millisecond), nil
}

// aggregate scrapes every metrics endpoint and sums the samples (counters
// and histograms add across nodes; gauges add too, which is the right
// fan-in for depths and entry counts).
func (g *loadgen) aggregate() (metrics.Snapshot, error) {
	var out metrics.Snapshot
	for _, base := range g.scrape {
		resp, err := g.client.Get(base + "/metrics")
		if err != nil {
			return out, err
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
		resp.Body.Close()
		if err != nil {
			return out, err
		}
		if resp.StatusCode != http.StatusOK {
			return out, fmt.Errorf("GET %s/metrics: %s", base, resp.Status)
		}
		var samples []struct {
			Name    string   `json:"name"`
			Kind    string   `json:"kind"`
			Value   *float64 `json:"value"`
			Buckets []uint64 `json:"buckets"`
		}
		if err := json.Unmarshal(data, &samples); err != nil {
			return out, err
		}
		for _, s := range samples {
			sm := metrics.Sample{Name: s.Name}
			switch s.Kind {
			case "counter":
				sm.Kind = metrics.Counter
			case "histogram":
				sm.Kind = metrics.Histogram
			default:
				sm.Kind = metrics.Gauge
			}
			if prev, ok := out.Get(s.Name); ok {
				if sm.Kind == metrics.Histogram {
					sm.Buckets = addBuckets(prev.Buckets, s.Buckets)
				} else if s.Value != nil {
					sm.Value = prev.Value + *s.Value
				}
			} else {
				sm.Buckets = s.Buckets
				if s.Value != nil {
					sm.Value = *s.Value
				}
			}
			out.Put(sm)
		}
	}
	return out, nil
}

func addBuckets(a, b []uint64) []uint64 {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make([]uint64, n)
	for i := range out {
		if i < len(a) {
			out[i] += a[i]
		}
		if i < len(b) {
			out[i] += b[i]
		}
	}
	return out
}

// percentile returns the q-quantile of sorted xs in the same unit (ms), 0
// if empty.
func percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	i := int(q*float64(len(xs))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(xs) {
		i = len(xs) - 1
	}
	return xs[i]
}
