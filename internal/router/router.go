// Package router is the cluster front tier of the millid simulation
// service: a consistent-hashing reverse proxy that spreads jobs across N
// worker nodes. The routing key is the job's deterministic content-hash id
// (server.CanonicalID), so identical requests always land on the same node
// — that node's singleflight and local LRU then collapse them onto one
// simulation, and the shared store tier makes the result a hit on every
// other node too.
//
// The ring hashes each node under a fixed number of virtual replicas, so
// membership changes (SetNodes) move only the keys owned by the changed
// nodes; results for moved keys survive in the shared store. A background
// probe marks nodes unhealthy on failed /healthz checks (a draining node's
// 503 counts as unhealthy, which is how a node leaves gracefully: drain it
// and the router stops routing to it). Requests to a failed node are
// retried on the ring's successor nodes with bounded backoff.
package router

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/arch"
	"repro/internal/metrics"
	"repro/internal/server"
)

// hash64 maps s onto the ring's key space.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Ring is a consistent-hash ring of node URLs with virtual replicas.
type Ring struct {
	replicas int
	nodes    []string
	hashes   []uint64 // sorted ring positions
	owner    []int    // owner[i] = index into nodes for hashes[i]
}

// NewRing places each node at replicas positions (replicas <= 0 defaults to
// 64 — enough that removing one of a handful of nodes moves close to the
// ideal 1/N of the key space).
func NewRing(nodes []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = 64
	}
	r := &Ring{replicas: replicas, nodes: append([]string(nil), nodes...)}
	type point struct {
		h     uint64
		owner int
	}
	points := make([]point, 0, len(nodes)*replicas)
	for i, n := range r.nodes {
		for v := 0; v < replicas; v++ {
			points = append(points, point{hash64(fmt.Sprintf("%s#%d", n, v)), i})
		}
	}
	sort.Slice(points, func(i, j int) bool { return points[i].h < points[j].h })
	r.hashes = make([]uint64, len(points))
	r.owner = make([]int, len(points))
	for i, p := range points {
		r.hashes[i] = p.h
		r.owner[i] = p.owner
	}
	return r
}

// Nodes returns the ring's membership in construction order.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Lookup returns every node in preference order for key: the clockwise
// owner first, then each distinct successor — the retry order on node
// failure.
func (r *Ring) Lookup(key string) []string {
	if len(r.hashes) == 0 {
		return nil
	}
	h := hash64(key)
	start := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if start == len(r.hashes) {
		start = 0
	}
	out := make([]string, 0, len(r.nodes))
	seen := make(map[int]bool, len(r.nodes))
	for i := 0; i < len(r.hashes) && len(out) < len(r.nodes); i++ {
		o := r.owner[(start+i)%len(r.hashes)]
		if !seen[o] {
			seen[o] = true
			out = append(out, r.nodes[o])
		}
	}
	return out
}

// Options tunes a Router.
type Options struct {
	// Nodes are the worker base URLs (e.g. http://host:8177).
	Nodes []string
	// Replicas is the ring's virtual-replica count; 0 means 64.
	Replicas int
	// Base is the architecture configuration the workers serve on top of;
	// the router must canonicalize requests identically to compute the same
	// job ids. Workers and router must agree on it.
	Base arch.Params
	// HealthInterval is the /healthz probe period; 0 means 2s.
	HealthInterval time.Duration
	// RetryBackoff is the pause before the first retry, doubling per
	// attempt; 0 means 50ms.
	RetryBackoff time.Duration
	// MaxAttempts bounds how many nodes one request may try; 0 means every
	// node once.
	MaxAttempts int
	// Transport overrides the proxy transport (in-process tests and the SLA
	// experiment); nil uses http.DefaultTransport.
	Transport http.RoundTripper
}

// Router is the cluster front tier. Create with New; it is an http.Handler.
// Close stops the health probes.
type Router struct {
	base    arch.Params
	client  *http.Client
	backoff time.Duration
	maxTry  int

	mu      sync.Mutex
	ring    *Ring
	healthy map[string]bool

	stopOnce sync.Once
	stop     chan struct{}

	routed, retries, failovers, proxyErrors atomic.Uint64

	reg *metrics.Registry
	mux *http.ServeMux
}

// New returns a router over the given worker nodes and starts its health
// probe loop. Nodes start healthy; the first probe round corrects that
// within HealthInterval.
func New(o Options) *Router {
	if o.HealthInterval <= 0 {
		o.HealthInterval = 2 * time.Second
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 50 * time.Millisecond
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = len(o.Nodes)
	}
	rt := &Router{
		base:    o.Base,
		client:  &http.Client{Transport: o.Transport},
		backoff: o.RetryBackoff,
		maxTry:  o.MaxAttempts,
		ring:    NewRing(o.Nodes, o.Replicas),
		healthy: make(map[string]bool, len(o.Nodes)),
		stop:    make(chan struct{}),
		mux:     http.NewServeMux(),
	}
	for _, n := range o.Nodes {
		rt.healthy[n] = true
	}
	rt.reg = metrics.NewRegistry()
	rt.registerMetrics()

	rt.mux.HandleFunc("POST /v1/jobs", rt.handleSubmit)
	rt.mux.HandleFunc("GET /v1/jobs", rt.handleList)
	rt.mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		rt.forwardByKey(w, r, r.PathValue("id"), nil)
	})
	rt.mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		rt.forwardByKey(w, r, r.PathValue("id"), nil)
	})
	rt.mux.HandleFunc("GET /v1/experiments", func(w http.ResponseWriter, r *http.Request) {
		rt.forwardAny(w, r)
	})
	rt.mux.HandleFunc("GET /healthz", rt.handleHealth)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)

	go rt.healthLoop(o.HealthInterval)
	return rt
}

func (rt *Router) registerMetrics() {
	r := rt.reg
	r.Gauge("router.nodes", func() float64 {
		rt.mu.Lock()
		defer rt.mu.Unlock()
		return float64(len(rt.ring.nodes))
	})
	r.Gauge("router.nodes_healthy", func() float64 {
		rt.mu.Lock()
		defer rt.mu.Unlock()
		n := 0
		for _, ok := range rt.healthy {
			if ok {
				n++
			}
		}
		return float64(n)
	})
	r.Counter("router.requests_routed", rt.routed.Load)
	r.Counter("router.retries", rt.retries.Load)
	r.Counter("router.failovers", rt.failovers.Load)
	r.Counter("router.proxy_errors", rt.proxyErrors.Load)
}

func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

// Close stops the health probe loop (idempotent).
func (rt *Router) Close() { rt.stopOnce.Do(func() { close(rt.stop) }) }

// SetNodes replaces the membership: the ring is rebuilt so only keys owned
// by changed nodes move (their cached results survive in the shared store
// tier). Unknown nodes start healthy until the next probe round.
func (rt *Router) SetNodes(nodes []string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.ring = NewRing(nodes, rt.ring.replicas)
	healthy := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if h, ok := rt.healthy[n]; ok {
			healthy[n] = h
		} else {
			healthy[n] = true
		}
	}
	rt.healthy = healthy
}

// Metrics returns the router-level snapshot served at /metrics.
func (rt *Router) Metrics() metrics.Snapshot { return rt.reg.Snapshot() }

func (rt *Router) healthLoop(every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			rt.probe()
		}
	}
}

// probe marks each node healthy iff /healthz answers 200 (a draining node's
// 503 makes it leave the rotation).
func (rt *Router) probe() {
	rt.mu.Lock()
	nodes := rt.ring.Nodes()
	rt.mu.Unlock()
	for _, n := range nodes {
		ok := rt.probeNode(n)
		rt.mu.Lock()
		if _, known := rt.healthy[n]; known { // membership may have changed
			rt.healthy[n] = ok
		}
		rt.mu.Unlock()
	}
}

func (rt *Router) probeNode(node string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// prefer returns the candidate nodes for key in retry order: the ring's
// preference list with unhealthy nodes demoted to the tail (still tried
// last — with every node marked down, guessing beats refusing).
func (rt *Router) prefer(key string) []string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	pref := rt.ring.Lookup(key)
	up := make([]string, 0, len(pref))
	down := make([]string, 0, 1)
	for _, n := range pref {
		if rt.healthy[n] {
			up = append(up, n)
		} else {
			down = append(down, n)
		}
	}
	return append(up, down...)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	fmt.Fprintf(w, "{\n  \"error\": %q\n}\n", fmt.Sprintf(format, args...))
}

// handleSubmit canonicalizes the body to recover the deterministic job id
// and routes by it.
func (rt *Router) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "request body: %v", err)
		return
	}
	id, err := server.CanonicalID(rt.base, body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rt.forwardByKey(w, r, id, body)
}

// maxBodyBytes bounds a routed POST body.
const maxBodyBytes = 1 << 20

// forwardByKey proxies r to the key's preferred nodes, retrying transport
// failures and 5xx gateway-ish responses with exponential backoff.
func (rt *Router) forwardByKey(w http.ResponseWriter, r *http.Request, key string, body []byte) {
	nodes := rt.prefer(key)
	if len(nodes) == 0 {
		writeError(w, http.StatusServiceUnavailable, "no worker nodes configured")
		return
	}
	if len(nodes) > rt.maxTry {
		nodes = nodes[:rt.maxTry]
	}
	rt.routed.Add(1)
	var lastErr error
	for attempt, node := range nodes {
		if attempt > 0 {
			rt.retries.Add(1)
			select {
			case <-r.Context().Done():
				writeError(w, http.StatusGatewayTimeout, "client gone: %v", r.Context().Err())
				return
			case <-time.After(rt.backoff << (attempt - 1)):
			}
		}
		ok, err := rt.tryNode(w, r, node, body)
		if ok {
			if attempt > 0 {
				rt.failovers.Add(1)
			}
			return
		}
		lastErr = err
	}
	rt.proxyErrors.Add(1)
	writeError(w, http.StatusBadGateway, "all %d candidate nodes failed; last: %v", len(nodes), lastErr)
}

// tryNode forwards once. It reports done=true when a response was relayed
// to the client (including application errors like 429 — those are the
// node's answer, not a routing failure). Transport errors and 503s (a
// draining or overloaded node that another replica can serve) report
// done=false so the caller fails over.
func (rt *Router) tryNode(w http.ResponseWriter, r *http.Request, node string, body []byte) (done bool, err error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, node+r.URL.Path, rd)
	if err != nil {
		return false, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusServiceUnavailable {
		io.Copy(io.Discard, resp.Body)
		return false, fmt.Errorf("%s: %s", node, resp.Status)
	}
	relay(w, resp)
	return true, nil
}

func relay(w http.ResponseWriter, resp *http.Response) {
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// forwardAny proxies r to the first node that answers (health-ordered).
func (rt *Router) forwardAny(w http.ResponseWriter, r *http.Request) {
	rt.forwardByKey(w, r, "any:"+r.URL.Path, nil)
}

// handleList fans GET /v1/jobs out to every healthy node and merges the
// records, newest first (the per-node listings are already newest-first).
func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	rt.mu.Lock()
	nodes := rt.ring.Nodes()
	healthy := make(map[string]bool, len(rt.healthy))
	for n, h := range rt.healthy {
		healthy[n] = h
	}
	rt.mu.Unlock()

	type rec struct {
		raw         json.RawMessage
		submittedAt time.Time
	}
	var all []rec
	for _, n := range nodes {
		if !healthy[n] {
			continue
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, n+"/v1/jobs", nil)
		if err != nil {
			continue
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			continue
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, maxItemsBytes))
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		var raws []json.RawMessage
		if json.Unmarshal(data, &raws) != nil {
			continue
		}
		for _, raw := range raws {
			var meta struct {
				SubmittedAt time.Time `json:"submitted_at"`
			}
			json.Unmarshal(raw, &meta)
			all = append(all, rec{raw: raw, submittedAt: meta.SubmittedAt})
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].submittedAt.After(all[j].submittedAt) })
	out := make([]json.RawMessage, len(all))
	for i, a := range all {
		out[i] = a.raw
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}

// maxItemsBytes bounds one node's job-listing response in the fan-in.
const maxItemsBytes = 64 << 20

func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	rt.mu.Lock()
	up := 0
	total := len(rt.ring.nodes)
	for _, ok := range rt.healthy {
		if ok {
			up++
		}
	}
	rt.mu.Unlock()
	code := http.StatusOK
	status := "ok"
	if up == 0 {
		code = http.StatusServiceUnavailable
		status = "no healthy nodes"
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	fmt.Fprintf(w, "{\n  \"status\": %q,\n  \"nodes_healthy\": %s,\n  \"nodes\": %s\n}\n",
		status, strconv.Itoa(up), strconv.Itoa(total))
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	data, err := rt.reg.Snapshot().JSON()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}
