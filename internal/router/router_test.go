// Tests for the cluster front tier: ring determinism and bounded key
// movement, routing consistency over real HTTP backends, failover when the
// owning node dies, and health-probe gating of a draining node.
package router_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/router"
)

// TestRingStability: node assignment is a pure function of the membership —
// two rings built from the same nodes agree on every key — and every node
// owns a share of a modest key space.
func TestRingStability(t *testing.T) {
	nodes := []string{"http://a", "http://b", "http://c"}
	r1 := router.NewRing(nodes, 64)
	r2 := router.NewRing(nodes, 64)
	owned := map[string]int{}
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("job-%d", i)
		p1, p2 := r1.Lookup(key), r2.Lookup(key)
		if len(p1) != len(nodes) {
			t.Fatalf("Lookup(%q) returned %d nodes, want %d (full preference order)", key, len(p1), len(nodes))
		}
		for j := range p1 {
			if p1[j] != p2[j] {
				t.Fatalf("rings disagree on %q: %v vs %v", key, p1, p2)
			}
		}
		owned[p1[0]]++
	}
	for _, n := range nodes {
		if owned[n] == 0 {
			t.Errorf("node %s owns no keys out of 300 — ring badly skewed", n)
		}
	}
}

// TestRingBoundedMovement: removing one node moves only the keys it owned;
// every key owned by a surviving node keeps its owner.
func TestRingBoundedMovement(t *testing.T) {
	before := router.NewRing([]string{"http://a", "http://b", "http://c"}, 64)
	after := router.NewRing([]string{"http://a", "http://c"}, 64)
	moved := 0
	const keys = 600
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("job-%d", i)
		was, is := before.Lookup(key)[0], after.Lookup(key)[0]
		if was == "http://b" {
			moved++
			continue
		}
		if was != is {
			t.Fatalf("key %q moved from surviving node %s to %s", key, was, is)
		}
	}
	// b owned roughly a third; sanity-bound the churn well clear of "all".
	if moved == 0 || moved > keys/2 {
		t.Errorf("removed node owned %d/%d keys — outside the plausible 1/3 band", moved, keys)
	}
}

// fakeWorker is a minimal millid worker: it records the POST /v1/jobs bodies
// it receives and can be flipped to a draining /healthz.
type fakeWorker struct {
	mu       sync.Mutex
	posts    int
	draining atomic.Bool
	ts       *httptest.Server
}

func newFakeWorker(t *testing.T) *fakeWorker {
	f := &fakeWorker{}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		f.mu.Lock()
		f.posts++
		f.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, `{"id":"fake","status":"queued"}`)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if f.draining.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	})
	f.ts = httptest.NewServer(mux)
	t.Cleanup(f.ts.Close)
	return f
}

func (f *fakeWorker) postCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.posts
}

func postBody(t *testing.T, rt *router.Router, body string) int {
	t.Helper()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/jobs", bytes.NewReader([]byte(body)))
	req.Header.Set("Content-Type", "application/json")
	rt.ServeHTTP(rec, req)
	return rec.Code
}

// TestRoutingConsistencyAndFailover: identical requests land on one worker;
// when that worker dies the router fails the request over to the survivor.
func TestRoutingConsistencyAndFailover(t *testing.T) {
	a, b := newFakeWorker(t), newFakeWorker(t)
	rt := router.New(router.Options{
		Nodes:          []string{a.ts.URL, b.ts.URL},
		Base:           arch.Default(),
		HealthInterval: time.Hour, // keep probes out of this test
		RetryBackoff:   time.Millisecond,
	})
	defer rt.Close()

	const body = `{"experiment":"ablation","scale":0.04}`
	for i := 0; i < 3; i++ {
		if code := postBody(t, rt, body); code != http.StatusAccepted {
			t.Fatalf("POST %d: HTTP %d", i, code)
		}
	}
	ca, cb := a.postCount(), b.postCount()
	if ca+cb != 3 || (ca != 0 && cb != 0) {
		t.Fatalf("identical requests split %d/%d across workers, want all on one", ca, cb)
	}
	owner, survivor := a, b
	if cb > 0 {
		owner, survivor = b, a
	}

	owner.ts.Close() // the owning node dies
	if code := postBody(t, rt, body); code != http.StatusAccepted {
		t.Fatalf("POST after owner death: HTTP %d, want failover 202", code)
	}
	if got := survivor.postCount(); got != 1 {
		t.Fatalf("survivor received %d posts after failover, want 1", got)
	}
	if v := rt.Metrics().Value("router.failovers"); v != 1 {
		t.Errorf("router.failovers = %g, want 1", v)
	}
	// A garbage body never reaches a worker: the router canonicalizes first.
	if code := postBody(t, rt, `{"experiment":"nope"}`); code != http.StatusBadRequest {
		t.Errorf("unknown experiment: HTTP %d, want 400", code)
	}
}

// TestHealthProbeGatesDrainingNode: a node answering /healthz with 503 is
// taken out of the rotation within a probe period.
func TestHealthProbeGatesDrainingNode(t *testing.T) {
	a, b := newFakeWorker(t), newFakeWorker(t)
	rt := router.New(router.Options{
		Nodes:          []string{a.ts.URL, b.ts.URL},
		Base:           arch.Default(),
		HealthInterval: 5 * time.Millisecond,
		RetryBackoff:   time.Millisecond,
	})
	defer rt.Close()

	a.draining.Store(true)
	deadline := time.Now().Add(5 * time.Second)
	for rt.Metrics().Value("router.nodes_healthy") != 1 {
		if time.Now().After(deadline) {
			t.Fatal("draining node was never marked unhealthy")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Every key now prefers the healthy node.
	for i := 0; i < 4; i++ {
		body := fmt.Sprintf(`{"experiment":"ablation","scale":0.0%d}`, i+1)
		if code := postBody(t, rt, body); code != http.StatusAccepted {
			t.Fatalf("POST %d with draining node: HTTP %d", i, code)
		}
	}
	if got := a.postCount(); got != 0 {
		t.Errorf("draining node still received %d posts", got)
	}
	if got := b.postCount(); got != 4 {
		t.Errorf("healthy node received %d posts, want 4", got)
	}
	// The router's own health answers 200 while any node is up.
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("router /healthz = %d with one healthy node, want 200", rec.Code)
	}
	var hb struct {
		NodesHealthy int `json:"nodes_healthy"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &hb); err != nil || hb.NodesHealthy != 1 {
		t.Errorf("router /healthz body %q (err %v), want nodes_healthy 1", rec.Body.String(), err)
	}
}
