package stats

import (
	"math"
	"testing"
)

func TestGeomean(t *testing.T) {
	if Geomean(nil) != 0 {
		t.Error("empty geomean")
	}
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Errorf("geomean = %v", g)
	}
	defer func() {
		if recover() == nil {
			t.Error("non-positive value accepted")
		}
	}()
	Geomean([]float64{1, 0})
}

func TestMeanMedian(t *testing.T) {
	if Mean(nil) != 0 || Median(nil) != 0 {
		t.Error("empty inputs")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("mean")
	}
	if Median([]float64{3, 1, 2}) != 2 {
		t.Error("odd median")
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Error("even median")
	}
}

func TestMonotoneUp(t *testing.T) {
	if !MonotoneUp([]float64{1, 2, 3}, 0) {
		t.Error("strictly increasing rejected")
	}
	if !MonotoneUp([]float64{1, 0.96, 3}, 0.05) {
		t.Error("within-tolerance dip rejected")
	}
	if MonotoneUp([]float64{1, 0.5}, 0.05) {
		t.Error("large dip accepted")
	}
	if !MonotoneUp(nil, 0) || !MonotoneUp([]float64{5}, 0) {
		t.Error("trivial cases")
	}
}
