// Package stats provides the small numeric helpers the harness uses to
// aggregate and present results.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Geomean returns the geometric mean of positive values; it returns 0 for
// an empty slice and panics on non-positive inputs (a normalized speedup of
// zero indicates a harness bug).
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: non-positive value %v in geomean", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median returns the median (0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	n := len(ys)
	if n%2 == 1 {
		return ys[n/2]
	}
	return (ys[n/2-1] + ys[n/2]) / 2
}

// MonotoneUp reports whether xs is non-decreasing within tolerance tol
// (relative): xs[i+1] >= xs[i]*(1-tol).
func MonotoneUp(xs []float64, tol float64) bool {
	for i := 0; i+1 < len(xs); i++ {
		if xs[i+1] < xs[i]*(1-tol) {
			return false
		}
	}
	return true
}
