package corelet

import (
	"fmt"

	"repro/internal/isa"
)

// Corelet is a single corelet, backed by a one-corelet Cluster. Processors
// build whole Clusters directly; this wrapper keeps the original
// one-object-per-corelet API for unit tests and small harnesses.
type Corelet struct {
	cl *Cluster
}

// New builds one corelet, decoding prog against lat privately.
func New(ids IDs, prog *isa.Program, localBytes int, lat Latencies, port GlobalPort, read Reader) (*Corelet, error) {
	code, err := Decode(prog, lat)
	if err != nil {
		return nil, err
	}
	return NewDecoded(ids, code, localBytes, lat, port, read)
}

// NewDecoded builds one corelet over a shared predecoded code image. The
// IDs place the corelet inside its (possibly larger) processor for CSR
// purposes.
func NewDecoded(ids IDs, code *Code, localBytes int, lat Latencies, port GlobalPort, read Reader) (*Corelet, error) {
	if ids.NumCorelets <= 0 || ids.Corelet < 0 || ids.Corelet >= ids.NumCorelets {
		return nil, fmt.Errorf("corelet: bad IDs %+v", ids)
	}
	cl, err := NewCluster(Config{
		Corelets:   1,
		Contexts:   ids.NumContexts,
		LocalBytes: localBytes,
		Latencies:  lat,
	}, code, []GlobalPort{port}, read)
	if err != nil {
		return nil, err
	}
	cl.coreletBase = ids.Corelet
	cl.numCore = ids.NumCorelets
	return &Corelet{cl: cl}, nil
}

// Tick advances the corelet one compute cycle.
func (c *Corelet) Tick() { c.cl.TickCore(0) }

// Halted reports whether all contexts have executed HALT.
func (c *Corelet) Halted() bool { return c.cl.CoreHalted(0) }

// Stats returns the corelet's execution counters.
func (c *Corelet) Stats() Stats { return c.cl.Stats() }

// WriteLocal stores a word into local memory (host-side, at launch).
func (c *Corelet) WriteLocal(addr uint32, v uint32) { c.cl.WriteLocal(0, addr, v) }

// ReadLocal fetches a word of local memory (host-side, after the run).
func (c *Corelet) ReadLocal(addr uint32) uint32 { return c.cl.ReadLocal(0, addr) }

// SetBarrier installs the processor-wide barrier coordinator.
func (c *Corelet) SetBarrier(f BarrierFunc) { c.cl.SetBarrier(f) }

// SetTracer installs an instruction-issue observer (nil = off).
func (c *Corelet) SetTracer(t Tracer) { c.cl.SetTracer(0, t) }
