package corelet

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
)

// alwaysHit is a GlobalPort where every read completes immediately.
type alwaysHit struct{ reads []uint32 }

func (p *alwaysHit) Read(ctx int, addr uint32, ready func()) Status {
	p.reads = append(p.reads, addr)
	return Done
}

// slowPort makes every read Pending and wakes waiters on demand.
type slowPort struct{ wake []func() }

func (p *slowPort) Read(ctx int, addr uint32, ready func()) Status {
	p.wake = append(p.wake, ready)
	return Pending
}

// retryOnce bounces the first attempt of each address, then hits.
type retryOnce struct{ seen map[uint32]bool }

func (p *retryOnce) Read(ctx int, addr uint32, ready func()) Status {
	if p.seen == nil {
		p.seen = map[uint32]bool{}
	}
	if !p.seen[addr] {
		p.seen[addr] = true
		return Retry
	}
	return Done
}

func flatMem(words map[uint32]uint32) Reader {
	return func(addr uint32) uint32 { return words[addr] }
}

func build(t *testing.T, src string) *isa.Program {
	t.Helper()
	p, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func newCorelet(t *testing.T, prog *isa.Program, contexts int, port GlobalPort, read Reader) *Corelet {
	t.Helper()
	c, err := New(IDs{Corelet: 2, NumCorelets: 8, NumContexts: contexts}, prog, 4096, DefaultLatencies(), port, read)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func run(c *Corelet, maxTicks int) int {
	for i := 0; i < maxTicks; i++ {
		if c.Halted() {
			return i
		}
		c.Tick()
	}
	return maxTicks
}

func TestNewValidation(t *testing.T) {
	prog := build(t, "halt")
	port := &alwaysHit{}
	rd := flatMem(nil)
	if _, err := New(IDs{NumContexts: 4}, nil, 4096, DefaultLatencies(), port, rd); err == nil {
		t.Error("nil program accepted")
	}
	if _, err := New(IDs{NumContexts: 4}, prog, 0, DefaultLatencies(), port, rd); err == nil {
		t.Error("zero local accepted")
	}
	if _, err := New(IDs{NumContexts: 0}, prog, 4096, DefaultLatencies(), port, rd); err == nil {
		t.Error("zero contexts accepted")
	}
	if _, err := New(IDs{NumContexts: 4}, prog, 4096, DefaultLatencies(), nil, rd); err == nil {
		t.Error("nil port accepted")
	}
}

func TestStraightLineArithmetic(t *testing.T) {
	// Each context computes 6*7 and stores it to local[ctx*4].
	prog := build(t, `
		csrr r1, contextid
		slli r1, r1, 2      ; byte offset
		li   r2, 6
		li   r3, 7
		mul  r4, r2, r3
		sw   r4, 0(r1)
		halt
	`)
	c := newCorelet(t, prog, 4, &alwaysHit{}, flatMem(nil))
	if run(c, 1000) >= 1000 {
		t.Fatal("did not halt")
	}
	for ctx := 0; ctx < 4; ctx++ {
		if got := c.ReadLocal(uint32(ctx * 4)); got != 42 {
			t.Errorf("ctx %d result = %d", ctx, got)
		}
	}
	s := c.Stats()
	if s.Instructions != 4*7 {
		t.Errorf("instructions = %d, want 28", s.Instructions)
	}
}

func TestCSRValues(t *testing.T) {
	prog := build(t, `
		csrr r1, coreletid
		csrr r2, ncorelets
		csrr r3, ncontexts
		csrr r4, tid
		csrr r5, nthreads
		csrr r6, contextid
		sw   r1, 0(r0)
		sw   r2, 4(r0)
		sw   r3, 8(r0)
		sw   r5, 12(r0)
		halt
	`)
	c := newCorelet(t, prog, 1, &alwaysHit{}, flatMem(nil))
	run(c, 100)
	if c.ReadLocal(0) != 2 || c.ReadLocal(4) != 8 || c.ReadLocal(8) != 1 || c.ReadLocal(12) != 8 {
		t.Errorf("CSRs = %d %d %d %d", c.ReadLocal(0), c.ReadLocal(4), c.ReadLocal(8), c.ReadLocal(12))
	}
}

func TestLoopAndBranchStats(t *testing.T) {
	prog := build(t, `
		li r1, 10
		li r2, 0
	loop:
		add  r2, r2, r1
		addi r1, r1, -1
		bnez r1, loop
		sw   r2, 0(r0)
		halt
	`)
	c := newCorelet(t, prog, 1, &alwaysHit{}, flatMem(nil))
	run(c, 1000)
	if got := c.ReadLocal(0); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
	s := c.Stats()
	if s.CondBranches != 10 || s.TakenCond != 9 {
		t.Errorf("branches = %d taken = %d, want 10/9", s.CondBranches, s.TakenCond)
	}
}

func TestGlobalLoadHit(t *testing.T) {
	prog := build(t, `
		li  r1, 0x1000
		ldg r2, 4(r1)
		sw  r2, 0(r0)
		halt
	`)
	port := &alwaysHit{}
	c := newCorelet(t, prog, 1, port, flatMem(map[uint32]uint32{0x1004: 99}))
	run(c, 100)
	if c.ReadLocal(0) != 99 {
		t.Errorf("loaded %d", c.ReadLocal(0))
	}
	if len(port.reads) != 1 || port.reads[0] != 0x1004 {
		t.Errorf("port reads = %v", port.reads)
	}
	if c.Stats().GlobalReads != 1 {
		t.Errorf("GlobalReads = %d", c.Stats().GlobalReads)
	}
}

func TestGlobalLoadPendingBlocksContext(t *testing.T) {
	prog := build(t, `
		li  r1, 0
		ldg r2, 0(r1)
		sw  r2, 0(r0)
		halt
	`)
	port := &slowPort{}
	c := newCorelet(t, prog, 1, port, flatMem(map[uint32]uint32{0: 7}))
	for i := 0; i < 20; i++ {
		c.Tick()
	}
	if c.Halted() {
		t.Fatal("halted while load outstanding")
	}
	if c.Stats().IdleCycles == 0 {
		t.Error("no idle cycles while blocked")
	}
	port.wake[0]()
	run(c, 100)
	if !c.Halted() || c.ReadLocal(0) != 7 {
		t.Errorf("halted=%v local=%d", c.Halted(), c.ReadLocal(0))
	}
}

func TestMultithreadingHidesMemoryLatency(t *testing.T) {
	// With one context blocked on memory, other contexts keep issuing.
	prog := build(t, `
		csrr r1, contextid
		bnez r1, compute
		li   r3, 0
		ldg  r2, 0(r3)     ; ctx 0 blocks here
		j    fin
	compute:
		li  r4, 100
	cl:	addi r4, r4, -1
		bnez r4, cl
	fin:
		halt
	`)
	port := &slowPort{}
	c := newCorelet(t, prog, 4, port, flatMem(nil))
	for i := 0; i < 2000 && !c.Halted(); i++ {
		c.Tick()
		if len(port.wake) > 0 && i == 1500 {
			port.wake[0]()
		}
	}
	if !c.Halted() {
		t.Fatal("did not halt")
	}
	s := c.Stats()
	// ~3 contexts x ~204 instructions dominate; busy cycles must be far
	// above idle-only execution.
	if s.BusyCycles < 500 {
		t.Errorf("busy cycles = %d; multithreading did not overlap", s.BusyCycles)
	}
}

func TestRetryReissues(t *testing.T) {
	prog := build(t, `
		li  r1, 0
		ldg r2, 0(r1)
		sw  r2, 0(r0)
		halt
	`)
	c := newCorelet(t, prog, 1, &retryOnce{}, flatMem(map[uint32]uint32{0: 5}))
	run(c, 100)
	if !c.Halted() || c.ReadLocal(0) != 5 {
		t.Errorf("halted=%v val=%d", c.Halted(), c.ReadLocal(0))
	}
	if c.Stats().RetryCycles != 1 {
		t.Errorf("RetryCycles = %d", c.Stats().RetryCycles)
	}
}

func TestR0IsHardwiredZero(t *testing.T) {
	prog := build(t, `
		li  r0, 42
		sw  r0, 0(r0)
		halt
	`)
	c := newCorelet(t, prog, 1, &alwaysHit{}, flatMem(nil))
	run(c, 100)
	if c.ReadLocal(0) != 0 {
		t.Errorf("r0 = %d after write", c.ReadLocal(0))
	}
}

func TestCallRet(t *testing.T) {
	prog := build(t, `
		li   r1, 5
		call double
		sw   r1, 0(r0)
		halt
	double:
		add  r1, r1, r1
		ret
	`)
	c := newCorelet(t, prog, 1, &alwaysHit{}, flatMem(nil))
	run(c, 100)
	if c.ReadLocal(0) != 10 {
		t.Errorf("call/ret result = %d", c.ReadLocal(0))
	}
}

func TestFloatPath(t *testing.T) {
	prog := build(t, `
		lif   r1, 2.0
		lif   r2, 0.5
		fmul  r3, r1, r2      ; 1.0
		fadd  r3, r3, r1      ; 3.0
		fsqrt r4, r1
		fmul  r4, r4, r4      ; ~2.0
		fsub  r4, r4, r1      ; ~0
		sw    r3, 0(r0)
		halt
	`)
	c := newCorelet(t, prog, 1, &alwaysHit{}, flatMem(nil))
	run(c, 200)
	if isa.F32(c.ReadLocal(0)) != 3.0 {
		t.Errorf("float result = %v", isa.F32(c.ReadLocal(0)))
	}
}

func TestLocalOutOfBoundsPanics(t *testing.T) {
	prog := build(t, `
		li r1, 1<<20
		lw r2, 0(r1)
		halt
	`)
	c := newCorelet(t, prog, 1, &alwaysHit{}, flatMem(nil))
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	run(c, 10)
}

func TestSTGPanics(t *testing.T) {
	prog := &isa.Program{Name: "stg", Insts: []isa.Inst{{Op: isa.STG}, {Op: isa.HALT}}}
	c := newCorelet(t, prog, 1, &alwaysHit{}, flatMem(nil))
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	run(c, 10)
}

func TestIndirectLocalAccess(t *testing.T) {
	// The irregular-access pattern of BMLAs: counter[bin]++ with a
	// data-dependent bin.
	prog := build(t, `
		li  r1, 3          ; bin
		slli r2, r1, 2
		lw  r3, 64(r2)
		addi r3, r3, 1
		sw  r3, 64(r2)
		halt
	`)
	c := newCorelet(t, prog, 1, &alwaysHit{}, flatMem(nil))
	c.WriteLocal(64+12, 41)
	run(c, 100)
	if got := c.ReadLocal(64 + 12); got != 42 {
		t.Errorf("counter = %d", got)
	}
}

func TestTakenBranchCostsBubble(t *testing.T) {
	// A tight taken-branch loop on one context must accumulate idle cycles
	// from refetch bubbles.
	prog := build(t, `
		li r1, 50
	l:	addi r1, r1, -1
		bnez r1, l
		halt
	`)
	c := newCorelet(t, prog, 1, &alwaysHit{}, flatMem(nil))
	ticks := run(c, 10000)
	s := c.Stats()
	if uint64(ticks) <= s.Instructions {
		t.Errorf("ticks %d <= instructions %d; no branch bubbles", ticks, s.Instructions)
	}
}

func TestStreamWalkerLDS(t *testing.T) {
	// lds must walk: stride 8 bytes, chunk of 2 words, then a +16 fixup.
	prog := build(t, `
		li  r1, 0          ; stream address
		li  r4, 8          ; stride
		li  r5, 16         ; row fixup
		li  r6, 2          ; chunk words
		mv  r7, r6
		lds r11
		lds r12
		lds r13
		sw  r11, 0(r0)
		sw  r12, 4(r0)
		sw  r13, 8(r0)
		sw  r1, 12(r0)     ; final walker address
		halt
	`)
	mem := map[uint32]uint32{0: 100, 8: 200, 32: 300}
	c := newCorelet(t, prog, 1, &alwaysHit{}, flatMem(mem))
	run(c, 200)
	// Addresses: 0, 8 (chunk ends: +8 stride then +16 fixup -> 32), 32.
	if c.ReadLocal(0) != 100 || c.ReadLocal(4) != 200 || c.ReadLocal(8) != 300 {
		t.Errorf("lds values = %d %d %d", c.ReadLocal(0), c.ReadLocal(4), c.ReadLocal(8))
	}
	// After the third lds: 32+8=40, countdown 1.
	if c.ReadLocal(12) != 40 {
		t.Errorf("walker address = %d, want 40", c.ReadLocal(12))
	}
}

func TestLDSRetryDoesNotAdvanceWalker(t *testing.T) {
	prog := build(t, `
		li  r1, 0
		li  r4, 4
		li  r5, 0
		li  r6, 16
		mv  r7, r6
		lds r11
		sw  r11, 0(r0)
		sw  r1, 4(r0)
		halt
	`)
	c := newCorelet(t, prog, 1, &retryOnce{}, flatMem(map[uint32]uint32{0: 55}))
	run(c, 100)
	if c.ReadLocal(0) != 55 {
		t.Errorf("lds after retry = %d", c.ReadLocal(0))
	}
	if c.ReadLocal(4) != 4 {
		t.Errorf("walker advanced %d times (addr %d), want exactly once", c.ReadLocal(4)/4, c.ReadLocal(4))
	}
}

func TestBarrierNoCoordinatorIsNop(t *testing.T) {
	prog := build(t, `
		bar
		li r1, 7
		sw r1, 0(r0)
		halt
	`)
	c := newCorelet(t, prog, 2, &alwaysHit{}, flatMem(nil))
	run(c, 100)
	if !c.Halted() || c.ReadLocal(0) != 7 {
		t.Error("bar without coordinator should be a no-op")
	}
}

func TestBarrierBlocksUntilRelease(t *testing.T) {
	prog := build(t, `
		bar
		li r1, 1
		sw r1, 0(r0)
		halt
	`)
	c := newCorelet(t, prog, 1, &alwaysHit{}, flatMem(nil))
	var releases []func()
	c.SetBarrier(func(r func()) { releases = append(releases, r) })
	for i := 0; i < 50; i++ {
		c.Tick()
	}
	if c.Halted() {
		t.Fatal("halted while barrier outstanding")
	}
	if len(releases) != 1 {
		t.Fatalf("barrier arrivals = %d", len(releases))
	}
	releases[0]()
	run(c, 100)
	if !c.Halted() || c.ReadLocal(0) != 1 {
		t.Error("did not finish after barrier release")
	}
}
