package corelet

import "repro/internal/metrics"

// RegisterStats publishes the execution counters of the Stats returned by
// get under prefix (e.g. "corelet"). get is evaluated only at snapshot
// time, so processors pass a closure aggregating over their corelets. The
// issue-class mix is published as a histogram indexed by isa.Class.
func RegisterStats(r *metrics.Registry, prefix string, get func() Stats) {
	r.Counter(prefix+".instructions", func() uint64 { return get().Instructions })
	r.Counter(prefix+".cond_branches", func() uint64 { return get().CondBranches })
	r.Counter(prefix+".taken_cond", func() uint64 { return get().TakenCond })
	r.Counter(prefix+".local_access", func() uint64 { return get().LocalAccess })
	r.Counter(prefix+".global_reads", func() uint64 { return get().GlobalReads })
	r.Counter(prefix+".idle_cycles", func() uint64 { return get().IdleCycles })
	r.Counter(prefix+".busy_cycles", func() uint64 { return get().BusyCycles })
	r.Counter(prefix+".retry_cycles", func() uint64 { return get().RetryCycles })
	r.Histogram(prefix+".class_mix", func() []uint64 {
		h := get().ClassCounts
		return h[:]
	})
}

// Add accumulates o into s — how a processor folds per-corelet counters
// into its aggregate.
func (s *Stats) Add(o Stats) {
	s.Instructions += o.Instructions
	s.CondBranches += o.CondBranches
	s.TakenCond += o.TakenCond
	s.LocalAccess += o.LocalAccess
	s.GlobalReads += o.GlobalReads
	s.IdleCycles += o.IdleCycles
	s.BusyCycles += o.BusyCycles
	s.RetryCycles += o.RetryCycles
	for i := range s.ClassCounts {
		s.ClassCounts[i] += o.ClassCounts[i]
	}
}
