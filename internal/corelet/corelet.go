// Package corelet models the simple MIMD cores of the paper's SSMC skeleton
// (Section IV-A): single-issue, in-order pipelines with 4-way hardware
// multithreading to cover short hazards, a small register file per context,
// a 4 KB corelet-local memory holding kernel arguments and the partially
// reduced live state, and an L1 I-cache fed by a one-time code broadcast.
//
// The corelet is memory-system agnostic: LDG timing goes through a
// GlobalPort, which the Millipede processor backs with the shared row
// prefetch buffer and the SSMC processor backs with a per-core L1 D-cache.
// Functional data always comes from the Reader (the DRAM word store), so
// results are identical across architectures by construction.
//
// A processor's corelets live together in a Cluster: every hot word of
// per-corelet state (PCs, register files, ready bitmaps, issue cooldowns,
// local memories) is an entry in a structure-of-arrays image indexed by
// (corelet, context), swept in corelet order once per cycle. The interpreter
// runs over a predecoded Code image shared read-only by the whole cluster
// (the paper's one-time code broadcast): each instruction carries its class
// and issue latency resolved at decode time and the datapath is evaluated in
// a single dispatch switch, so the steady-state cycle loop performs no table
// lookups, no per-corelet virtual calls, and no allocations.
package corelet

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/isa"
	"repro/internal/sim"
)

// Status of a timing access to the global memory system.
type Status int

const (
	// Done: data available this cycle (hit).
	Done Status = iota
	// Pending: the context must sleep; the ready callback wakes it.
	Pending
	// Retry: structural stall (queue full); re-issue next cycle.
	Retry
)

// GlobalPort is the timing interface to die-stacked memory.
type GlobalPort interface {
	// Read models the timing of a global load by context ctx at addr.
	// ready is invoked when a Pending access completes.
	Read(ctx int, addr uint32, ready func()) Status
}

// Reader supplies functional data for global loads.
type Reader func(addr uint32) uint32

// Tracer observes every issued instruction when installed (nil = off).
type Tracer func(cycle int64, ctx int, pc int, in isa.Inst)

// BarrierFunc coordinates a processor-wide software barrier: the corelet
// calls it when a context executes BAR, passing the callback that releases
// the context once every participant has arrived. A nil coordinator makes
// BAR a no-op.
type BarrierFunc func(release func())

// Latencies in corelet cycles per instruction class; these are the simple
// energy-efficient pipeline depths the paper assumes, covered by 4-way
// multithreading.
type Latencies struct {
	ALU, Mul, Div, FPU, FDiv, Local, GlobalHit, TakenBranch int
}

// DefaultLatencies returns the model defaults.
func DefaultLatencies() Latencies {
	return Latencies{ALU: 1, Mul: 3, Div: 12, FPU: 4, FDiv: 14, Local: 2, GlobalHit: 2, TakenBranch: 2}
}

// Stats counts per-corelet execution events (the raw material for Table IV
// and the energy model).
type Stats struct {
	Instructions uint64
	CondBranches uint64
	TakenCond    uint64
	LocalAccess  uint64
	GlobalReads  uint64
	IdleCycles   uint64 // ticks with no ready context (memory stall / drained)
	BusyCycles   uint64 // ticks that issued an instruction
	RetryCycles  uint64 // structural stalls on the global port
	ClassCounts  [10]uint64
}

// dinst is one predecoded instruction: the hot fields of isa.Inst plus the
// class and issue latency resolved at decode time, packed to 16 bytes so the
// fetch is a single shift-indexed load with no dependent table lookups.
type dinst struct {
	op           isa.Op
	class        isa.Class
	rd, rs1, rs2 uint8
	_            uint8
	lat          uint16
	imm          int32
	_            uint32 // pad to 16 bytes: power-of-two stride for ops[pc]
}

// Code is a program predecoded against one latency configuration. A
// processor decodes its kernel once and shares the image read-only across
// all its corelets (the paper's one-time code broadcast), keeping the
// interpreter's instruction fetches within one small array.
type Code struct {
	prog *isa.Program
	ops  []dinst
	// takenLat and hitLat are the two latencies the decoded lat field cannot
	// carry (they depend on the dynamic outcome, not the opcode).
	takenLat int64
	hitLat   int64
	// hasBAR records whether the program contains a barrier. A barrier
	// release can wake contexts of corelets later in the same sweep, an
	// effect the phase-split parallel tick cannot reproduce, so clusters
	// running a BAR program always tick serially (see Tick).
	hasBAR bool
}

// Decode predecodes prog against lat. The result is immutable and safe to
// share across corelets and worker goroutines.
func Decode(prog *isa.Program, lat Latencies) (*Code, error) {
	if prog == nil || len(prog.Insts) == 0 {
		return nil, fmt.Errorf("corelet: empty program")
	}
	code := &Code{
		prog:     prog,
		ops:      make([]dinst, len(prog.Insts)),
		takenLat: int64(lat.TakenBranch),
		hitLat:   int64(lat.GlobalHit),
	}
	for i, in := range prog.Insts {
		class := isa.Classify(in.Op)
		l := latencyFor(lat, class)
		if in.Op == isa.LDG || in.Op == isa.LDS {
			l = lat.GlobalHit
		}
		if l < 0 || l > math.MaxUint16 {
			return nil, fmt.Errorf("corelet: latency %d for %v out of range", l, in.Op)
		}
		if in.Op == isa.BAR {
			code.hasBAR = true
		}
		code.ops[i] = dinst{
			op:    in.Op,
			class: class,
			rd:    in.Rd & (isa.NumRegs - 1),
			rs1:   in.Rs1 & (isa.NumRegs - 1),
			rs2:   in.Rs2 & (isa.NumRegs - 1),
			lat:   uint16(l),
			imm:   in.Imm,
		}
	}
	return code, nil
}

// Program returns the source program the code was decoded from.
func (cd *Code) Program() *isa.Program { return cd.prog }

func latencyFor(l Latencies, class isa.Class) int {
	switch class {
	case isa.ClassMul:
		return l.Mul
	case isa.ClassDiv:
		return l.Div
	case isa.ClassFPU:
		return l.FPU
	case isa.ClassFDiv:
		return l.FDiv
	case isa.ClassLocalMem:
		return l.Local
	default:
		return l.ALU
	}
}

// IDs carries the CSR-visible identity of a corelet within its processor.
type IDs struct {
	Corelet, NumCorelets, NumContexts int
}

// shardStats is one worker shard's private slice of the cluster counters.
// Every counter is a commutative sum, so aggregating over any fixed shard
// partition yields byte-identical totals regardless of worker count. The
// pad keeps concurrent shards off each other's cache lines.
type shardStats struct {
	condBranches uint64
	takenCond    uint64
	idleCycles   uint64
	retryCycles  uint64
	// classCounts is sized to 16 so the (4-bit) class index needs no bounds
	// check on the hot path.
	classCounts [16]uint64
	// parked holds the shard's cross-shard effects of the current cycle:
	// contexts whose chosen instruction touches shared state (the memory
	// port, the barrier, the cluster halt set), recorded during the parallel
	// private phase and executed serially at the batch barrier. Capacity is
	// the shard's corelet count (one issue per corelet per cycle), so the
	// append never allocates.
	parked []parkRec
	_      [64]byte
}

// parkRec identifies one deferred shared-state instruction: context k of
// corelet c chose it at corelet-local cycle cyc.
type parkRec struct {
	c, k int32
	cyc  int64
}

// Config sizes a Cluster.
type Config struct {
	// Corelets and Contexts give the cluster geometry (Table III: 32x4).
	Corelets, Contexts int
	// LocalBytes is each corelet's local SRAM size.
	LocalBytes int
	// Latencies configures issue latencies (must match the Code's decode).
	Latencies Latencies
	// Shards is the number of independent stats accumulators (>= the worker
	// count the cluster will ever be ticked with); 0 means 1.
	Shards int
}

// ctxHot is one context's scheduler-visible state: the program counter and
// the cycle at which the context may issue again, packed so a corelet's
// contexts (4 by default) share one cache line and the issue-scan read and
// the retire-time writes touch the same line.
type ctxHot struct {
	pc      int32
	_       uint32
	readyAt int64
}

// coreHot is one corelet's scheduler header: the runnable-context bitmap,
// the corelet-local cycle count (the multicore model ticks cores unevenly),
// the round-robin pointer, and the halted-context count, packed into half a
// cache line.
type coreHot struct {
	ready  uint64 // bitmap of runnable contexts (waiting/halted bits clear)
	cycle  int64
	rr     int32
	haltCt int32
	// earliest is a lower bound on the next cycle any runnable context can
	// issue, recorded when a scan comes up empty; until then the per-cycle
	// scan is skipped outright. Wakes reset it to zero (a woken context is
	// issueable immediately).
	earliest int64
}

// Cluster is a processor's full set of corelets in structure-of-arrays
// form, indexed by ctx = corelet*Contexts + context. One Tick sweeps every
// live corelet in registration order, which keeps shared-port access order
// — and therefore timing — identical to the per-corelet object model it
// replaces.
type Cluster struct {
	code *Code
	ops  []dinst // == code.ops, one indexed load off the cluster
	// Hot state, SoA: per-context and per-corelet headers plus the packed
	// register files.
	ctxs  []ctxHot
	cores []coreHot
	regs  []uint32 // register files, NumRegs words per context
	wakes []func() // prebuilt wake callbacks handed to the memory system
	// active is the bitmap of corelets with at least one non-halted context;
	// the sweep walks its set bits via TrailingZeros64, so fully finished
	// corelets cost nothing.
	active      []uint64
	haltedCores int

	nctx       int
	ncore      int
	localWords int
	locals     []uint32 // corelet-local SRAMs, localWords each
	ports      []GlobalPort
	read       Reader
	lat        Latencies
	ctxMask    uint64
	// coreletBase and numCore define the CSR-visible processor geometry:
	// a standalone Corelet wrapper is a 1-corelet cluster positioned at
	// coreletBase within a numCore-corelet processor.
	coreletBase int
	numCore     int
	barrier     BarrierFunc
	tracers     []Tracer // nil until SetTracer; indexed by corelet
	shards      []shardStats
	// Intra-cycle parallelism (SetWorkers). shardLo[s]..shardLo[s+1] is the
	// contiguous corelet range owned by worker shard s; tickShard is the
	// bound method dispatched to the pool each cycle (stored so the
	// steady-state loop allocates nothing); parking is true only during the
	// parallel private phase, telling exec to defer shared-state ops.
	pool      *sim.Pool
	shardLo   []int
	tickShard func(shard int)
	parking   bool
}

// NewCluster builds the corelets of one processor over a shared predecoded
// code image. ports supplies each corelet's timing port (len must equal
// cfg.Corelets); read supplies functional data for global loads.
func NewCluster(cfg Config, code *Code, ports []GlobalPort, read Reader) (*Cluster, error) {
	switch {
	case code == nil || len(code.ops) == 0:
		return nil, fmt.Errorf("corelet: empty program")
	case cfg.Corelets <= 0:
		return nil, fmt.Errorf("corelet: bad corelet count %d", cfg.Corelets)
	case cfg.Contexts <= 0 || cfg.Contexts > 64:
		return nil, fmt.Errorf("corelet: bad context count %d", cfg.Contexts)
	case cfg.LocalBytes <= 0 || cfg.LocalBytes%4 != 0:
		return nil, fmt.Errorf("corelet: bad local memory size %d", cfg.LocalBytes)
	case len(ports) != cfg.Corelets:
		return nil, fmt.Errorf("corelet: %d ports for %d corelets", len(ports), cfg.Corelets)
	case read == nil:
		return nil, fmt.Errorf("corelet: nil reader")
	}
	for _, p := range ports {
		if p == nil {
			return nil, fmt.Errorf("corelet: nil port")
		}
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = 1
	}
	nc, nk := cfg.Corelets, cfg.Contexts
	cl := &Cluster{
		code:       code,
		ops:        code.ops,
		ctxs:       make([]ctxHot, nc*nk),
		cores:      make([]coreHot, nc),
		regs:       make([]uint32, nc*nk*isa.NumRegs),
		wakes:      make([]func(), nc*nk),
		active:     make([]uint64, (nc+63)/64),
		nctx:       nk,
		ncore:      nc,
		localWords: cfg.LocalBytes / 4,
		locals:     make([]uint32, nc*cfg.LocalBytes/4),
		ports:      append([]GlobalPort(nil), ports...),
		read:       read,
		lat:        cfg.Latencies,
		ctxMask:    uint64(1)<<uint(nk) - 1,
		numCore:    nc,
		shards:     make([]shardStats, shards),
	}
	for c := 0; c < nc; c++ {
		cl.cores[c].ready = cl.ctxMask
		cl.active[c/64] |= 1 << uint(c%64)
		for k := 0; k < nk; k++ {
			idx := c*nk + k
			bit := uint64(1) << uint(k)
			cc := c
			cl.wakes[idx] = func() {
				cl.cores[cc].ready |= bit
				cl.cores[cc].earliest = 0
				cl.ctxs[idx].readyAt = 0 // wakes in the memory domain; issue next tick
			}
		}
	}
	return cl, nil
}

// Corelets returns the cluster geometry.
func (cl *Cluster) Corelets() int { return cl.ncore }

// Contexts returns the context count per corelet.
func (cl *Cluster) Contexts() int { return cl.nctx }

// Code returns the shared predecoded program.
func (cl *Cluster) Code() *Code { return cl.code }

// SetBarrier installs the processor-wide barrier coordinator.
func (cl *Cluster) SetBarrier(f BarrierFunc) { cl.barrier = f }

// SetTracer installs an instruction-issue observer on one corelet.
func (cl *Cluster) SetTracer(corelet int, t Tracer) {
	if cl.tracers == nil {
		cl.tracers = make([]Tracer, cl.ncore)
	}
	cl.tracers[corelet] = t
}

// SetWorkers enables the deterministically parallel tick: the per-cycle
// corelet sweep is split into pool.Workers() contiguous corelet ranges, one
// per worker shard. Each shard executes its corelets' private instructions
// and parks instructions that touch shared state (global loads, barriers,
// halts); the parked instructions then run serially at the batch barrier in
// ascending corelet order — exactly the order the serial sweep would have
// executed them — so results are bit-identical for every worker count.
//
// The cluster's Config.Shards must be at least pool.Workers(). Pass nil to
// restore the serial tick. Clusters whose program contains BAR, or with a
// tracer installed, tick serially regardless (see Tick).
func (cl *Cluster) SetWorkers(pool *sim.Pool) {
	if pool == nil {
		cl.pool, cl.shardLo, cl.tickShard = nil, nil, nil
		return
	}
	w := pool.Workers()
	if w > len(cl.shards) {
		panic(fmt.Sprintf("corelet: %d workers but only %d stat shards", w, len(cl.shards)))
	}
	cl.pool = pool
	cl.tickShard = cl.runShard
	// Contiguous split of the corelet range, remainder to the low shards.
	cl.shardLo = make([]int, w+1)
	base, rem := cl.ncore/w, cl.ncore%w
	for s := 0; s < w; s++ {
		cl.shardLo[s+1] = cl.shardLo[s] + base
		if s < rem {
			cl.shardLo[s+1]++
		}
	}
	for s := 0; s < w; s++ {
		n := cl.shardLo[s+1] - cl.shardLo[s]
		if cap(cl.shards[s].parked) < n {
			cl.shards[s].parked = make([]parkRec, 0, n)
		}
	}
}

// runShard is the parallel private phase for one worker shard: it ticks the
// shard's live corelets in ascending order, with stats and parked effects
// confined to the shard's private accumulator.
func (cl *Cluster) runShard(s int) {
	st := &cl.shards[s]
	for c, hi := cl.shardLo[s], cl.shardLo[s+1]; c < hi; c++ {
		if cl.active[c/64]>>uint(c%64)&1 != 0 {
			cl.tickCore(c, st)
		}
	}
}

// Halted reports whether every context of every corelet has executed HALT.
func (cl *Cluster) Halted() bool { return cl.haltedCores == cl.ncore }

// CoreHalted reports whether every context of corelet c has halted.
func (cl *Cluster) CoreHalted(c int) bool { return int(cl.cores[c].haltCt) == cl.nctx }

// WriteLocal stores a word into a corelet's local memory (host-side, at
// launch).
func (cl *Cluster) WriteLocal(c int, addr uint32, v uint32) {
	cl.locals[c*cl.localWords+cl.localIndex(c, addr)] = v
}

// ReadLocal fetches a word of a corelet's local memory (host-side, for the
// final Reduce that drains the partially-reduced live state, Section IV-D).
func (cl *Cluster) ReadLocal(c int, addr uint32) uint32 {
	return cl.locals[c*cl.localWords+cl.localIndex(c, addr)]
}

// LocalWords returns the local memory size in words.
func (cl *Cluster) LocalWords() int { return cl.localWords }

// localIndex is kept small enough to inline on the LW/SW hot path; the
// cold fault diagnostics live in localFault (panicking via a deferred-format
// value keeps the fast path under the inlining budget).
func (cl *Cluster) localIndex(c int, addr uint32) int {
	i := int(addr >> 2)
	if addr&3 != 0 || i >= cl.localWords {
		panic(localFault{c: c, addr: addr, words: cl.localWords})
	}
	return i
}

// localFault is the panic value for an out-of-contract local access; the
// message is formatted lazily so localIndex stays inlinable.
type localFault struct {
	c     int
	addr  uint32
	words int
}

func (f localFault) String() string {
	if f.addr%4 != 0 {
		return fmt.Sprintf("corelet %d: unaligned local access %#x (pc trace in kernel)", f.c, f.addr)
	}
	return fmt.Sprintf("corelet %d: local access %#x beyond %d-word local memory", f.c, f.addr, f.words)
}

func (cl *Cluster) csr(c, ctx int, n int32) uint32 {
	switch n {
	case isa.CSRCoreletID:
		return uint32(cl.coreletBase + c)
	case isa.CSRContextID:
		return uint32(ctx)
	case isa.CSRNumCorelet:
		return uint32(cl.numCore)
	case isa.CSRNumContext:
		return uint32(cl.nctx)
	case isa.CSRThreadID:
		return uint32((cl.coreletBase+c)*cl.nctx + ctx)
	case isa.CSRNumThreads:
		return uint32(cl.numCore * cl.nctx)
	}
	panic(fmt.Sprintf("corelet: unknown CSR %d", n))
}

// Stats aggregates the cluster's execution counters. The aggregates that are
// fully determined by per-class counts are derived here rather than
// maintained with separate increments on the interpret hot path: every
// issued instruction bumps exactly one ClassCounts bucket (retries bump
// none), so Instructions and BusyCycles are the bucket sum, and
// GlobalReads/LocalAccess are the global/local-memory buckets (STG is
// rejected, so the global bucket is pure loads).
func (cl *Cluster) Stats() Stats {
	var s Stats
	for i := range cl.shards {
		sh := &cl.shards[i]
		s.CondBranches += sh.condBranches
		s.TakenCond += sh.takenCond
		s.IdleCycles += sh.idleCycles
		s.RetryCycles += sh.retryCycles
		for k := range s.ClassCounts {
			s.ClassCounts[k] += sh.classCounts[k]
		}
	}
	for _, n := range s.ClassCounts {
		s.Instructions += n
	}
	s.BusyCycles = s.Instructions
	s.GlobalReads = s.ClassCounts[isa.ClassGlobalMem]
	s.LocalAccess = s.ClassCounts[isa.ClassLocalMem]
	return s
}

// Tick advances every live corelet one compute cycle: each issues at most
// one instruction from its next ready context in round-robin order. Halted
// corelets are skipped via the active bitmap.
//
// With SetWorkers the sweep runs as a two-phase batch: a parallel private
// phase over contiguous corelet ranges, then a serial drain of parked
// shared-state instructions in ascending corelet order (the canonical order
// of the serial sweep), so output is bit-identical for any worker count.
// Two configurations cannot be phase-split and fall back to the serial
// sweep: programs containing BAR (a barrier release mid-sweep wakes later
// corelets within the same cycle) and clusters with a tracer installed (the
// trace must interleave in issue order).
func (cl *Cluster) Tick() {
	if cl.pool != nil && !cl.code.hasBAR && cl.tracers == nil {
		cl.parking = true
		cl.pool.Run(cl.tickShard)
		cl.parking = false
		// Drain in shard order = ascending corelet order. Stats from the
		// drained instructions land in shard 0; every counter is a
		// commutative sum, so placement does not affect totals.
		st := &cl.shards[0]
		for s := range cl.shardLo[:len(cl.shardLo)-1] {
			sh := &cl.shards[s]
			for i := range sh.parked {
				p := &sh.parked[i]
				cl.exec(int(p.c), int(p.k), p.cyc, st)
			}
			sh.parked = sh.parked[:0]
		}
		return
	}
	st := &cl.shards[0]
	for w, word := range cl.active {
		base := w * 64
		for word != 0 {
			c := base + bits.TrailingZeros64(word)
			word &= word - 1
			cl.tickCore(c, st)
		}
	}
}

// TickCore advances a single corelet one cycle (the multicore model hands
// each core several issue slots per system cycle; a mid-cycle halt still
// burns its remaining slots as idle, as the object-per-core model did).
func (cl *Cluster) TickCore(c int) { cl.tickCore(c, &cl.shards[0]) }

// NeverTicks is the NextWorkTicks sentinel: every runnable context is
// blocked awaiting a memory wake, so only another domain's tick can create
// work.
const NeverTicks = int64(1<<63 - 1)

// NextWorkTicks returns the number of cluster ticks from now until the
// earliest tick at which any active corelet could issue: 1 means the very
// next tick (busy), NeverTicks means every context is parked on a wake.
// The bound is exact given the scheduler headers: a corelet cannot issue
// before cores[c].earliest, and wakes (which reset earliest) only run from
// memory-domain work ticks, which end any skip window.
func (cl *Cluster) NextWorkTicks() int64 {
	w := NeverTicks
	for wi, word := range cl.active {
		base := wi * 64
		for word != 0 {
			c := base + bits.TrailingZeros64(word)
			word &= word - 1
			hd := &cl.cores[c]
			if hd.ready == 0 {
				continue
			}
			e := hd.earliest - hd.cycle
			if e <= 1 {
				return 1
			}
			if e < w {
				w = e
			}
		}
	}
	return w
}

// SkipTicks replays n dead cluster ticks: every active corelet's cycle
// counter advances and each elided corelet-tick counts as an idle cycle,
// exactly as tickCore's dead paths would have tallied. Stats land in shard
// 0; every counter is a commutative sum, so placement matches Tick's
// drain convention.
func (cl *Cluster) SkipTicks(n int64) {
	na := 0
	for wi, word := range cl.active {
		base := wi * 64
		for word != 0 {
			c := base + bits.TrailingZeros64(word)
			word &= word - 1
			cl.cores[c].cycle += n
			na++
		}
	}
	cl.shards[0].idleCycles += uint64(n) * uint64(na)
}

// CoreNextIssueDelta returns, for one corelet, the distance in corelet
// cycles from its current cycle to the earliest cycle it could issue:
// NeverTicks when no context is runnable, otherwise earliest-cycle (which
// may be <= 0 when it could issue on its very next cycle). The multicore
// model, which ticks cores unevenly, derives its quiescence window from it.
func (cl *Cluster) CoreNextIssueDelta(c int) int64 {
	hd := &cl.cores[c]
	if hd.ready == 0 {
		return NeverTicks
	}
	return hd.earliest - hd.cycle
}

// SkipCoreTicks replays n dead cycles on a single corelet (the multicore
// model's per-core slots), advancing its cycle counter and idle tally.
func (cl *Cluster) SkipCoreTicks(c int, n int64) {
	cl.cores[c].cycle += n
	cl.shards[0].idleCycles += uint64(n)
}

func (cl *Cluster) tickCore(c int, st *shardStats) {
	hd := &cl.cores[c]
	hd.cycle++
	cyc := hd.cycle
	m := hd.ready
	if m == 0 {
		st.idleCycles++
		return
	}
	if hd.earliest > cyc {
		// Every runnable context is still covering issue latency; the scan
		// below cannot succeed before earliest, and wakes reset it.
		st.idleCycles++
		return
	}
	n := cl.nctx
	if n == 4 {
		// Default geometry: a four-probe circular scan beats the bitmap
		// segment walk, and the fixed-size array view drops bounds checks.
		ctxs := (*[4]ctxHot)(cl.ctxs[c*4:])
		k := int(hd.rr+1) & 3
		if m == 15 && ctxs[k].readyAt <= cyc {
			// Streaming steady state: all four contexts runnable and the
			// round-robin successor ready — no bit tests, one probe.
			hd.rr = int32(k)
			cl.exec(c, k, cyc, st)
			return
		}
		low := int64(math.MaxInt64)
		for i := 0; i < 4; i++ {
			if m>>uint(k)&1 != 0 {
				if r := ctxs[k].readyAt; r <= cyc {
					hd.rr = int32(k)
					cl.exec(c, k, cyc, st)
					return
				} else if r < low {
					low = r
				}
			}
			k = (k + 1) & 3
		}
		hd.earliest = low
		st.idleCycles++
		return
	}
	start := int(hd.rr) + 1
	if start >= n {
		start = 0
	}
	// Circular scan from start as two bitmap segments: [start..n-1], then
	// [0..start-1]. Each probe pops the lowest set bit, so only runnable
	// contexts are touched.
	ctxs := cl.ctxs[c*n : c*n+n]
	low := int64(math.MaxInt64)
	for seg := m >> uint(start) << uint(start); seg != 0; seg &= seg - 1 {
		k := bits.TrailingZeros64(seg)
		if r := ctxs[k].readyAt; r <= cyc {
			hd.rr = int32(k)
			cl.exec(c, k, cyc, st)
			return
		} else if r < low {
			low = r
		}
	}
	for seg := m & (1<<uint(start) - 1); seg != 0; seg &= seg - 1 {
		k := bits.TrailingZeros64(seg)
		if r := ctxs[k].readyAt; r <= cyc {
			hd.rr = int32(k)
			cl.exec(c, k, cyc, st)
			return
		} else if r < low {
			low = r
		}
	}
	hd.earliest = low
	st.idleCycles++
}

// advanceStream steps the hardware stream walker (isa.LDS semantics).
func advanceStream(regs *[isa.NumRegs]uint32) {
	regs[isa.StreamAddr] += regs[isa.StreamStride]
	regs[isa.StreamCount]--
	if regs[isa.StreamCount] == 0 {
		regs[isa.StreamAddr] += regs[isa.StreamFix]
		regs[isa.StreamCount] = regs[isa.StreamChunk]
	}
}

// exec interprets one instruction for context k of corelet c. The datapath,
// branch conditions, and special cases all live in one switch over the
// predecoded opcode, so each instruction costs a single dispatch; class
// counting and issue latency come from the decoded fields.
func (cl *Cluster) exec(c, k int, cyc int64, st *shardStats) {
	idx := c*cl.nctx + k
	ct := &cl.ctxs[idx]
	pc := ct.pc
	in := &cl.ops[pc]
	if cl.tracers != nil {
		if t := cl.tracers[c]; t != nil {
			t(cyc, k, int(pc), cl.code.prog.Insts[pc])
		}
	}
	// Register indices are masked to the register-file size (already
	// guaranteed by Decode), which lets the compiler elide bounds checks.
	regs := (*[isa.NumRegs]uint32)(cl.regs[idx*isa.NumRegs:])
	a := regs[in.rs1&31]
	b := regs[in.rs2&31]
	var v uint32

	switch in.op {
	case isa.NOP:
		v = 0
	case isa.HALT:
		// Halting mutates the cluster-wide active set; during the parallel
		// private phase it is parked and applied at the batch barrier.
		if cl.parking {
			st.parked = append(st.parked, parkRec{c: int32(c), k: int32(k), cyc: cyc})
			return
		}
		st.classCounts[in.class&15]++
		hd := &cl.cores[c]
		hd.ready &^= 1 << uint(k)
		hd.haltCt++
		if int(hd.haltCt) == cl.nctx {
			cl.active[c/64] &^= 1 << uint(c%64)
			cl.haltedCores++
		}
		return
	case isa.ADD:
		v = a + b
	case isa.SUB:
		v = a - b
	case isa.MUL:
		v = uint32(int32(a) * int32(b))
	case isa.DIV:
		ia, ib := int32(a), int32(b)
		switch {
		case ib == 0:
			v = ^uint32(0) // RISC-V semantics: -1 on divide by zero
		case ia == math.MinInt32 && ib == -1:
			v = a // overflow: result = dividend
		default:
			v = uint32(ia / ib)
		}
	case isa.REM:
		ia, ib := int32(a), int32(b)
		switch {
		case ib == 0:
			v = a
		case ia == math.MinInt32 && ib == -1:
			v = 0
		default:
			v = uint32(ia % ib)
		}
	case isa.AND:
		v = a & b
	case isa.OR:
		v = a | b
	case isa.XOR:
		v = a ^ b
	case isa.SLL:
		v = a << (b & 31)
	case isa.SRL:
		v = a >> (b & 31)
	case isa.SRA:
		v = uint32(int32(a) >> (b & 31))
	case isa.SLT:
		if int32(a) < int32(b) {
			v = 1
		}
	case isa.SLTU:
		if a < b {
			v = 1
		}
	case isa.MIN:
		v = b
		if int32(a) < int32(b) {
			v = a
		}
	case isa.MAX:
		v = b
		if int32(a) > int32(b) {
			v = a
		}
	case isa.ADDI:
		v = uint32(int32(a) + in.imm)
	case isa.ANDI:
		v = a & uint32(in.imm)
	case isa.ORI:
		v = a | uint32(in.imm)
	case isa.XORI:
		v = a ^ uint32(in.imm)
	case isa.SLLI:
		v = a << (uint32(in.imm) & 31)
	case isa.SRLI:
		v = a >> (uint32(in.imm) & 31)
	case isa.SRAI:
		v = uint32(int32(a) >> (uint32(in.imm) & 31))
	case isa.SLTI:
		if int32(a) < in.imm {
			v = 1
		}
	case isa.LUI:
		v = uint32(in.imm) << 12
	case isa.FADD:
		v = isa.Bits(isa.F32(a) + isa.F32(b))
	case isa.FSUB:
		v = isa.Bits(isa.F32(a) - isa.F32(b))
	case isa.FMUL:
		v = isa.Bits(isa.F32(a) * isa.F32(b))
	case isa.FDIV:
		v = isa.Bits(isa.F32(a) / isa.F32(b))
	case isa.FSQRT:
		v = isa.Bits(float32(math.Sqrt(float64(isa.F32(a)))))
	case isa.FMIN:
		v = isa.Bits(float32(math.Min(float64(isa.F32(a)), float64(isa.F32(b)))))
	case isa.FMAX:
		v = isa.Bits(float32(math.Max(float64(isa.F32(a)), float64(isa.F32(b)))))
	case isa.FLT:
		if isa.F32(a) < isa.F32(b) {
			v = 1
		}
	case isa.FLE:
		if isa.F32(a) <= isa.F32(b) {
			v = 1
		}
	case isa.FEQ:
		if isa.F32(a) == isa.F32(b) {
			v = 1
		}
	case isa.CVTIF:
		v = isa.Bits(float32(int32(a)))
	case isa.CVTFI:
		v = uint32(int32(isa.F32(a)))
	case isa.LW:
		addr := uint32(int32(a) + in.imm)
		v = cl.locals[c*cl.localWords+cl.localIndex(c, addr)]
	case isa.SW:
		addr := uint32(int32(a) + in.imm)
		cl.locals[c*cl.localWords+cl.localIndex(c, addr)] = b
		st.classCounts[in.class&15]++
		ct.pc = pc + 1
		ct.readyAt = cyc + int64(in.lat)
		return
	case isa.LDG, isa.LDS:
		// A global load's timing is resolved before the instruction
		// retires: on Retry the context stays put and re-issues the same
		// instruction next cycle; on Pending it sleeps until the memory
		// system's callback.
		// The port is shared with every corelet on the channel, and access
		// order is timing-visible; during the parallel private phase global
		// loads are parked and re-executed serially in canonical order.
		if cl.parking {
			st.parked = append(st.parked, parkRec{c: int32(c), k: int32(k), cyc: cyc})
			return
		}
		addr := uint32(int32(a) + in.imm)
		if in.op == isa.LDS {
			addr = regs[isa.StreamAddr]
		}
		stl := cl.ports[c].Read(k, addr, cl.wakes[idx])
		switch stl {
		case Retry:
			st.retryCycles++
			return // PC unchanged; retry next cycle
		case Pending:
			cl.cores[c].ready &^= 1 << uint(k)
		}
		if in.rd != 0 {
			regs[in.rd&31] = cl.read(addr)
		}
		if in.op == isa.LDS {
			advanceStream(regs)
		}
		st.classCounts[in.class&15]++
		ct.pc = pc + 1
		if stl == Done {
			ct.readyAt = cyc + int64(in.lat)
		}
		return
	case isa.STG:
		// The PNM execution model keeps live state in local memory
		// (Section III-B); a global store in a kernel is a porting bug,
		// surfaced loudly rather than silently mis-timed.
		panic("corelet: STG not supported by the PNM kernels (live state must stay in local memory)")
	case isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLTU, isa.BGEU:
		st.condBranches++
		var taken bool
		switch in.op {
		case isa.BEQ:
			taken = a == b
		case isa.BNE:
			taken = a != b
		case isa.BLT:
			taken = int32(a) < int32(b)
		case isa.BGE:
			taken = int32(a) >= int32(b)
		case isa.BLTU:
			taken = a < b
		default: // BGEU
			taken = a >= b
		}
		st.classCounts[in.class&15]++
		if taken {
			st.takenCond++
			ct.pc = in.imm
			ct.readyAt = cyc + cl.code.takenLat
			return
		}
		ct.pc = pc + 1
		ct.readyAt = cyc + int64(in.lat)
		return
	case isa.J:
		st.classCounts[in.class&15]++
		ct.pc = in.imm
		ct.readyAt = cyc + cl.code.takenLat
		return
	case isa.JAL:
		st.classCounts[in.class&15]++
		if in.rd != 0 {
			regs[in.rd&31] = uint32(pc + 1)
		}
		ct.pc = in.imm
		ct.readyAt = cyc + cl.code.takenLat
		return
	case isa.JR:
		st.classCounts[in.class&15]++
		ct.pc = int32(a)
		ct.readyAt = cyc + cl.code.takenLat
		return
	case isa.CSRR:
		v = cl.csr(c, k, in.imm)
	case isa.BAR:
		// Unreachable when parallel (hasBAR forces the serial sweep), but the
		// park keeps exec safe under any future caller.
		if cl.parking {
			st.parked = append(st.parked, parkRec{c: int32(c), k: int32(k), cyc: cyc})
			return
		}
		if cl.barrier != nil {
			st.classCounts[in.class&15]++
			ct.pc = pc + 1
			cl.cores[c].ready &^= 1 << uint(k)
			cl.barrier(cl.wakes[idx])
			return
		}
		// No coordinator installed: BAR is a no-op that writes no register.
		st.classCounts[in.class&15]++
		ct.pc = pc + 1
		ct.readyAt = cyc + int64(in.lat)
		return
	default:
		panic(fmt.Sprintf("corelet: unhandled op %v at pc %d", in.op, pc))
	}
	// Unconditional writeback: rd==0 means "discard", which the tail models
	// by letting the store land in r0 and re-zeroing it — two cheap stores
	// instead of a data-dependent branch on the hot path.
	regs[in.rd&31] = v
	regs[0] = 0
	st.classCounts[in.class&15]++
	ct.pc = pc + 1
	ct.readyAt = cyc + int64(in.lat)
}
