// Package corelet models the simple MIMD cores of the paper's SSMC skeleton
// (Section IV-A): single-issue, in-order pipelines with 4-way hardware
// multithreading to cover short hazards, a small register file per context,
// a 4 KB corelet-local memory holding kernel arguments and the partially
// reduced live state, and an L1 I-cache fed by a one-time code broadcast.
//
// The corelet is memory-system agnostic: LDG timing goes through a
// GlobalPort, which the Millipede processor backs with the shared row
// prefetch buffer and the SSMC processor backs with a per-core L1 D-cache.
// Functional data always comes from the Reader (the DRAM word store), so
// results are identical across architectures by construction.
package corelet

import (
	"fmt"

	"repro/internal/isa"
)

// Status of a timing access to the global memory system.
type Status int

const (
	// Done: data available this cycle (hit).
	Done Status = iota
	// Pending: the context must sleep; the ready callback wakes it.
	Pending
	// Retry: structural stall (queue full); re-issue next cycle.
	Retry
)

// GlobalPort is the timing interface to die-stacked memory.
type GlobalPort interface {
	// Read models the timing of a global load by context ctx at addr.
	// ready is invoked when a Pending access completes.
	Read(ctx int, addr uint32, ready func()) Status
}

// Reader supplies functional data for global loads.
type Reader func(addr uint32) uint32

// Tracer observes every issued instruction when installed (nil = off).
type Tracer func(cycle int64, ctx int, pc int, in isa.Inst)

// BarrierFunc coordinates a processor-wide software barrier: the corelet
// calls it when a context executes BAR, passing the callback that releases
// the context once every participant has arrived. A nil coordinator makes
// BAR a no-op.
type BarrierFunc func(release func())

// Latencies in corelet cycles per instruction class; these are the simple
// energy-efficient pipeline depths the paper assumes, covered by 4-way
// multithreading.
type Latencies struct {
	ALU, Mul, Div, FPU, FDiv, Local, GlobalHit, TakenBranch int
}

// DefaultLatencies returns the model defaults.
func DefaultLatencies() Latencies {
	return Latencies{ALU: 1, Mul: 3, Div: 12, FPU: 4, FDiv: 14, Local: 2, GlobalHit: 2, TakenBranch: 2}
}

// Stats counts per-corelet execution events (the raw material for Table IV
// and the energy model).
type Stats struct {
	Instructions uint64
	CondBranches uint64
	TakenCond    uint64
	LocalAccess  uint64
	GlobalReads  uint64
	IdleCycles   uint64 // ticks with no ready context (memory stall / drained)
	BusyCycles   uint64 // ticks that issued an instruction
	RetryCycles  uint64 // structural stalls on the global port
	ClassCounts  [10]uint64
}

type ctxState int

const (
	ctxReady ctxState = iota
	ctxWaitMem
	ctxHalted
)

type context struct {
	pc   int
	regs [isa.NumRegs]uint32
	// wake marks the context ready; built once at construction so the hot
	// global-load path hands the memory system a callback without
	// allocating a closure per access.
	wake func()
}

// sched is the scheduler-visible state of one context. It lives in a compact
// array parallel to contexts so the round-robin issue scan touches one cache
// line per corelet instead of one line per (much larger) context.
type sched struct {
	state   ctxState
	readyAt int64 // cycle at which the context may issue again
}

// IDs carries the CSR-visible identity of a corelet within its processor.
type IDs struct {
	Corelet, NumCorelets, NumContexts int
}

// Corelet is one simple MIMD core.
type Corelet struct {
	ids      IDs
	prog     *isa.Program
	insts    []isa.Inst // == prog.Insts, cached to skip a dependent load per fetch
	local    []uint32
	lat      Latencies
	port     GlobalPort
	read     Reader
	contexts []context
	sched    []sched
	barrier  BarrierFunc
	tracer   Tracer
	rr       int // round-robin pointer
	cycle    int64
	halted   int
	// ready counts contexts in ctxReady state (regardless of readyAt), so a
	// fully stalled or drained corelet ticks without scanning its contexts.
	ready int
	// latTab maps isa.Class to issue latency (built from lat at New), so
	// the per-instruction latency pick is one indexed load.
	latTab [10]int
	stats  Stats
}

// New builds a corelet with the given local memory size in bytes. Kernel
// arguments should be written into local memory via WriteLocal before Start.
func New(ids IDs, prog *isa.Program, localBytes int, lat Latencies, port GlobalPort, read Reader) (*Corelet, error) {
	switch {
	case prog == nil || len(prog.Insts) == 0:
		return nil, fmt.Errorf("corelet: empty program")
	case localBytes <= 0 || localBytes%4 != 0:
		return nil, fmt.Errorf("corelet: bad local memory size %d", localBytes)
	case ids.NumContexts <= 0:
		return nil, fmt.Errorf("corelet: bad context count %d", ids.NumContexts)
	case port == nil || read == nil:
		return nil, fmt.Errorf("corelet: nil port or reader")
	}
	c := &Corelet{
		ids:      ids,
		prog:     prog,
		insts:    prog.Insts,
		local:    make([]uint32, localBytes/4),
		lat:      lat,
		port:     port,
		read:     read,
		contexts: make([]context, ids.NumContexts),
		sched:    make([]sched, ids.NumContexts),
	}
	c.ready = len(c.contexts)
	for i := range c.contexts {
		s := &c.sched[i]
		c.contexts[i].wake = func() {
			if s.state != ctxReady {
				s.state = ctxReady
				c.ready++
			}
			s.readyAt = 0 // wakes in the memory domain; issue at next corelet tick
		}
	}
	for cl := range c.latTab {
		c.latTab[cl] = latencyFor(lat, isa.Class(cl))
	}
	return c, nil
}

func latencyFor(l Latencies, class isa.Class) int {
	switch class {
	case isa.ClassMul:
		return l.Mul
	case isa.ClassDiv:
		return l.Div
	case isa.ClassFPU:
		return l.FPU
	case isa.ClassFDiv:
		return l.FDiv
	case isa.ClassLocalMem:
		return l.Local
	default:
		return l.ALU
	}
}

// Stats returns a copy of the counters. The aggregate counters that are fully
// determined by per-class counts are derived here rather than maintained with
// separate increments on the interpret hot path: every issued instruction
// bumps exactly one ClassCounts bucket (retries bump none), so Instructions
// and BusyCycles are the bucket sum, and GlobalReads/LocalAccess are the
// global/local-memory buckets (STG is rejected, so the global bucket is pure
// loads).
func (c *Corelet) Stats() Stats {
	s := c.stats
	for _, n := range s.ClassCounts {
		s.Instructions += n
	}
	s.BusyCycles = s.Instructions
	s.GlobalReads = s.ClassCounts[isa.ClassGlobalMem]
	s.LocalAccess = s.ClassCounts[isa.ClassLocalMem]
	return s
}

// SetBarrier installs the processor-wide barrier coordinator.
func (c *Corelet) SetBarrier(f BarrierFunc) { c.barrier = f }

// SetTracer installs an instruction-issue observer.
func (c *Corelet) SetTracer(t Tracer) { c.tracer = t }

// Halted reports whether every context has executed HALT.
func (c *Corelet) Halted() bool { return c.halted == len(c.contexts) }

// WriteLocal stores a word into corelet-local memory (host-side, at launch).
func (c *Corelet) WriteLocal(addr uint32, v uint32) {
	c.local[c.localIndex(addr)] = v
}

// ReadLocal fetches a word of local memory (host-side, for the final
// Reduce that drains the partially-reduced live state, Section IV-D).
func (c *Corelet) ReadLocal(addr uint32) uint32 {
	return c.local[c.localIndex(addr)]
}

// LocalWords returns the local memory size in words.
func (c *Corelet) LocalWords() int { return len(c.local) }

func (c *Corelet) localIndex(addr uint32) int {
	if addr%4 != 0 {
		panic(fmt.Sprintf("corelet %d: unaligned local access %#x (pc trace in kernel)", c.ids.Corelet, addr))
	}
	i := int(addr / 4)
	if i >= len(c.local) {
		panic(fmt.Sprintf("corelet %d: local access %#x beyond %d-word local memory", c.ids.Corelet, addr, len(c.local)))
	}
	return i
}

func (c *Corelet) csr(ctx int, n int32) uint32 {
	switch n {
	case isa.CSRCoreletID:
		return uint32(c.ids.Corelet)
	case isa.CSRContextID:
		return uint32(ctx)
	case isa.CSRNumCorelet:
		return uint32(c.ids.NumCorelets)
	case isa.CSRNumContext:
		return uint32(c.ids.NumContexts)
	case isa.CSRThreadID:
		return uint32(c.ids.Corelet*c.ids.NumContexts + ctx)
	case isa.CSRNumThreads:
		return uint32(c.ids.NumCorelets * c.ids.NumContexts)
	}
	panic(fmt.Sprintf("corelet: unknown CSR %d", n))
}

func (c *Corelet) setReg(ctx *context, rd uint8, v uint32) {
	if rd != 0 {
		ctx.regs[rd] = v
	}
}

// Tick advances the corelet one cycle: at most one instruction issues from
// the next ready context in round-robin order.
func (c *Corelet) Tick() {
	c.cycle++
	if c.ready == 0 {
		c.stats.IdleCycles++
		return
	}
	n := len(c.sched)
	id := c.rr + 1
	for i := 0; i < n; i++ {
		if id >= n {
			id -= n
		}
		s := &c.sched[id]
		if s.state != ctxReady || s.readyAt > c.cycle {
			id++
			continue
		}
		c.rr = id
		c.execute(id, &c.contexts[id], s)
		return
	}
	c.stats.IdleCycles++
}

// advanceStream steps the hardware stream walker (isa.LDS semantics).
func advanceStream(regs *[isa.NumRegs]uint32) {
	regs[isa.StreamAddr] += regs[isa.StreamStride]
	regs[isa.StreamCount]--
	if regs[isa.StreamCount] == 0 {
		regs[isa.StreamAddr] += regs[isa.StreamFix]
		regs[isa.StreamCount] = regs[isa.StreamChunk]
	}
}

func (c *Corelet) latencyOf(class isa.Class) int { return c.latTab[class] }

func (c *Corelet) execute(id int, ctx *context, s *sched) {
	in := &c.insts[ctx.pc]
	class := isa.Classify(in.Op)
	if c.tracer != nil {
		c.tracer(c.cycle, id, ctx.pc, *in)
	}

	// A global load's timing is resolved before the instruction retires:
	// on Retry the context stays put and re-issues the same instruction
	// next cycle; on Pending it sleeps until the memory system's callback.
	// Dispatch switches directly on the opcode (not a compare chain) so the
	// compiler can emit a jump table.
	switch in.Op {
	case isa.LDG, isa.LDS:
		addr := uint32(int32(ctx.regs[in.Rs1]) + in.Imm)
		if in.Op == isa.LDS {
			addr = ctx.regs[isa.StreamAddr]
		}
		st := c.port.Read(id, addr, ctx.wake)
		switch st {
		case Retry:
			c.stats.RetryCycles++
			return // PC unchanged; retry next cycle
		case Pending:
			s.state = ctxWaitMem
			c.ready--
		}
		c.setReg(ctx, in.Rd, c.read(addr))
		if in.Op == isa.LDS {
			advanceStream(&ctx.regs)
		}
		c.stats.ClassCounts[class]++
		ctx.pc++
		if st == Done {
			s.readyAt = c.cycle + int64(c.lat.GlobalHit)
		}
		return
	}

	c.stats.ClassCounts[class]++
	lat := c.latTab[class]

	switch in.Op {
	case isa.HALT:
		s.state = ctxHalted
		c.halted++
		c.ready--
		return
	case isa.BAR:
		if c.barrier != nil {
			ctx.pc++
			s.state = ctxWaitMem
			c.ready--
			c.barrier(ctx.wake)
			return
		}
		// No coordinator installed: BAR is a no-op.
	case isa.CSRR:
		c.setReg(ctx, in.Rd, c.csr(id, in.Imm))
	case isa.LW:
		addr := uint32(int32(ctx.regs[in.Rs1]) + in.Imm)
		c.setReg(ctx, in.Rd, c.local[c.localIndex(addr)])
	case isa.SW:
		addr := uint32(int32(ctx.regs[in.Rs1]) + in.Imm)
		c.local[c.localIndex(addr)] = ctx.regs[in.Rs2]
	case isa.STG:
		// The PNM execution model keeps live state in local memory
		// (Section III-B); a global store in a kernel is a porting bug,
		// surfaced loudly rather than silently mis-timed.
		panic("corelet: STG not supported by the PNM kernels (live state must stay in local memory)")
	case isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLTU, isa.BGEU:
		c.stats.CondBranches++
		taken, _ := isa.EvalBranch(in.Op, ctx.regs[in.Rs1], ctx.regs[in.Rs2])
		if taken {
			c.stats.TakenCond++
			ctx.pc = int(in.Imm)
			s.readyAt = c.cycle + int64(c.lat.TakenBranch)
			return
		}
	case isa.J:
		ctx.pc = int(in.Imm)
		s.readyAt = c.cycle + int64(c.lat.TakenBranch)
		return
	case isa.JAL:
		c.setReg(ctx, in.Rd, uint32(ctx.pc+1))
		ctx.pc = int(in.Imm)
		s.readyAt = c.cycle + int64(c.lat.TakenBranch)
		return
	case isa.JR:
		ctx.pc = int(ctx.regs[in.Rs1])
		s.readyAt = c.cycle + int64(c.lat.TakenBranch)
		return
	default:
		b := ctx.regs[in.Rs2]
		v, ok := isa.EvalALUOp(in.Op, in.Imm, ctx.regs[in.Rs1], b)
		if !ok {
			panic(fmt.Sprintf("corelet: unhandled op %v at pc %d", in.Op, ctx.pc))
		}
		c.setReg(ctx, in.Rd, v)
	}
	ctx.pc++
	s.readyAt = c.cycle + int64(lat)
}
