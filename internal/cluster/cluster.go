// Package cluster models the datacenter level of the paper's execution
// model (Sections III-A and IV-D): input data is sharded across a cluster
// of PNM nodes; each node's Millipede processors run Map + partial Reduce,
// the host CPU performs the per-node Reduce over its processors' corelet
// states, and a cross-cluster tree Reduce combines the node results over
// the network. The paper's sanity argument — Map of tens of millions of
// records takes seconds, the per-node Reduce hundreds of microseconds, and
// the global Reduce across thousands of nodes tens of milliseconds, so
// communication support inside the PNM processors "may not be worth it" —
// is reproduced here from measured per-processor simulation rates.
package cluster

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Config describes the cluster.
type Config struct {
	Nodes             int     // e.g. 5000
	ProcessorsPerNode int     // 32
	HostHz            float64 // per-node host CPU clock for the node Reduce
	// Network parameters for the cross-cluster tree Reduce.
	NetLatency      sim.Time // per-hop latency
	NetBandwidthBps float64  // per-link bandwidth, bits per second
}

// DefaultConfig returns the paper's Section IV-D example: 5000 nodes of 32
// processors, a 3.6 GHz host, and a 10 GbE-class network.
func DefaultConfig() Config {
	return Config{
		Nodes:             5000,
		ProcessorsPerNode: 32,
		HostHz:            3.6e9,
		NetLatency:        10 * sim.Microsecond,
		NetBandwidthBps:   10e9,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Nodes <= 0 || c.ProcessorsPerNode <= 0:
		return fmt.Errorf("cluster: bad geometry")
	case c.HostHz <= 0 || c.NetBandwidthBps <= 0 || c.NetLatency < 0:
		return fmt.Errorf("cluster: bad host/network parameters")
	}
	return nil
}

// Phases is the per-phase time breakdown of one cluster MapReduction.
type Phases struct {
	// Map is the per-node Map + partial Reduce time (all processors run
	// in parallel; per-node input divides across them).
	Map sim.Time
	// NodeReduce is the host's pass over its processors' partial states.
	NodeReduce sim.Time
	// GlobalReduce is the cross-cluster tree reduction of node results.
	GlobalReduce sim.Time
}

// Total returns the end-to-end time.
func (p Phases) Total() sim.Time { return p.Map + p.NodeReduce + p.GlobalReduce }

// Estimate derives the phase times for a MapReduction processing
// wordsPerNode input words on every node, given a measured per-processor
// throughput (input words per second, from the cycle-level simulation) and
// the benchmark's reduced-state footprint.
//
// The per-node Reduce streams threadsPerProcessor x processors partial
// states of stateWords words through the host at one word per cycle; the
// global Reduce is a binary tree of ceil(log2(nodes)) rounds, each paying
// one network hop plus the state transfer.
func Estimate(c Config, wordsPerSecPerProcessor float64, wordsPerNode int64, stateWords, threadsPerProcessor int) (Phases, error) {
	if err := c.Validate(); err != nil {
		return Phases{}, err
	}
	if wordsPerSecPerProcessor <= 0 || wordsPerNode <= 0 || stateWords <= 0 || threadsPerProcessor <= 0 {
		return Phases{}, fmt.Errorf("cluster: non-positive workload parameters")
	}
	var p Phases
	perProc := float64(wordsPerNode) / float64(c.ProcessorsPerNode)
	p.Map = sim.Time(perProc / wordsPerSecPerProcessor * 1e12)

	hostWords := float64(stateWords * threadsPerProcessor * c.ProcessorsPerNode)
	p.NodeReduce = sim.Time(hostWords / c.HostHz * 1e12)

	rounds := int(math.Ceil(math.Log2(float64(c.Nodes))))
	if c.Nodes == 1 {
		rounds = 0
	}
	perRound := float64(c.NetLatency) + float64(stateWords*32)/c.NetBandwidthBps*1e12 +
		float64(stateWords)/c.HostHz*1e12 // merge cost at the receiver
	p.GlobalReduce = sim.Time(float64(rounds) * perRound)
	return p, nil
}
