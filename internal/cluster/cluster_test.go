package cluster_test

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/cluster"
	"repro/internal/harness"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func TestValidate(t *testing.T) {
	if err := cluster.DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := cluster.DefaultConfig()
	bad.Nodes = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := cluster.Estimate(cluster.DefaultConfig(), 0, 1, 1, 1); err == nil {
		t.Error("zero rate accepted")
	}
}

// TestPaperSection4DOrdering reproduces the paper's cost-structure
// argument with a measured per-processor rate: for tens of millions of
// records per node, Map >> GlobalReduce > NodeReduce, with the node Reduce
// in the sub-millisecond range and the global Reduce in the milliseconds —
// so PNM-internal communication support "may not be worth it".
func TestPaperSection4DOrdering(t *testing.T) {
	p := arch.Default()
	b := workloads.CountBench()
	r, err := harness.Run(harness.ArchMillipede, b, p, 1024)
	if err != nil {
		t.Fatal(err)
	}
	rate := float64(r.Words) / (float64(r.Time) / 1e12) // words/s per processor

	c := cluster.DefaultConfig()
	// A full die-stacked memory of input per node (Table III: 4 GB = 1 G
	// words) — the Spark-like resident dataset of Section IV-E.
	const wordsPerNode = 1_000_000_000
	ph, err := cluster.Estimate(c, rate, wordsPerNode, b.K.StateWords, p.Threads())
	if err != nil {
		t.Fatal(err)
	}
	if !(ph.Map > ph.GlobalReduce && ph.GlobalReduce > ph.NodeReduce) {
		t.Errorf("cost ordering broken: map=%v global=%v node=%v", ph.Map, ph.GlobalReduce, ph.NodeReduce)
	}
	if ph.NodeReduce > sim.Millisecond {
		t.Errorf("node reduce %v, paper says hundreds of microseconds", ph.NodeReduce)
	}
	if ph.GlobalReduce > 100*sim.Millisecond {
		t.Errorf("global reduce %v, paper says tens of milliseconds", ph.GlobalReduce)
	}
	if ph.Total() <= ph.Map {
		t.Error("total not cumulative")
	}
	frac := float64(ph.NodeReduce+ph.GlobalReduce) / float64(ph.Total())
	if frac > 0.05 {
		t.Errorf("reduce phases are %.1f%% of total; paper argues they are negligible", frac*100)
	}
}

func TestSingleNodeNoGlobalReduce(t *testing.T) {
	c := cluster.DefaultConfig()
	c.Nodes = 1
	ph, err := cluster.Estimate(c, 1e9, 1_000_000, 64, 128)
	if err != nil {
		t.Fatal(err)
	}
	if ph.GlobalReduce != 0 {
		t.Errorf("single node global reduce = %v", ph.GlobalReduce)
	}
}

func TestScalingInNodes(t *testing.T) {
	small, _ := cluster.Estimate(cluster.Config{Nodes: 8, ProcessorsPerNode: 32, HostHz: 3.6e9,
		NetLatency: 10 * sim.Microsecond, NetBandwidthBps: 10e9}, 1e9, 1_000_000, 64, 128)
	big, _ := cluster.Estimate(cluster.Config{Nodes: 4096, ProcessorsPerNode: 32, HostHz: 3.6e9,
		NetLatency: 10 * sim.Microsecond, NetBandwidthBps: 10e9}, 1e9, 1_000_000, 64, 128)
	if big.GlobalReduce <= small.GlobalReduce {
		t.Error("global reduce not growing with node count")
	}
	// Logarithmic: 4096 nodes is 12 rounds vs 3 — a 4x ratio, not 512x.
	if big.GlobalReduce > small.GlobalReduce*8 {
		t.Errorf("global reduce not logarithmic: %v vs %v", big.GlobalReduce, small.GlobalReduce)
	}
}
