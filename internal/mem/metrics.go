package mem

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/metrics"
)

// RegisterMetrics publishes the fabric's counters: the aggregate controller
// stats under "mem", the aggregate row-buffer/bandwidth stats under "dram",
// and per-channel issue counters and peak occupancy under "mem.ch<i>". All
// getters are lazy — nothing is aggregated until snapshot time, so
// registration never perturbs timing.
func (s *System) RegisterMetrics(r *metrics.Registry) {
	memctrl.RegisterStats(r, "mem", s.CtlStats)
	dram.RegisterStats(r, "dram", s.DRAMStats)
	r.Gauge("mem.channels", func() float64 { return float64(s.n) })
	r.Gauge("mem.queue_depth", func() float64 { return float64(s.Pending()) })
	for i := range s.chans {
		i := i
		r.Counter(fmt.Sprintf("mem.ch%d.issued", i), func() uint64 {
			return s.ChannelCtlStats(i).Issued
		})
		r.Gauge(fmt.Sprintf("mem.ch%d.max_occupancy", i), func() float64 {
			return float64(s.ChannelCtlStats(i).MaxOccupancy)
		})
	}
}
