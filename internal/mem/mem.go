// Package mem provides the unified memory-port fabric shared by every
// processor model. Clients (the Millipede prefetch buffer, the cache MSHR
// fill path, the SIMT and multicore hierarchies) speak only the Port
// interface; System implements it as N address-interleaved channels, each an
// FR-FCFS memctrl.Controller over its own dram.DRAM bank set.
//
// The paper simulates one of the die-stacked part's 32 channels (Table III);
// real HMC/HBM stacks expose many vaults/channels, and how bandwidth scales
// with channel count is the first-class knob for die-stacked PNM studies
// (see DESIGN.md §7 on compute-boundedness). Interleaving is row-granular:
// consecutive 2 KB rows rotate across channels, so a row-sized prefetch
// lands wholly in one channel while a streaming scan engages all of them.
//
// With one channel the System is a strict pass-through around the single
// controller — same objects, same tick order, no request rewriting — so the
// 1-channel configuration is cycle-identical (and therefore bit-identical in
// benchmark output) to the pre-fabric direct path.
package mem

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/sim"
)

// Request is one request from a processor-side client. Done is called
// exactly once, on the channel-clock tick at which the last data beat has
// arrived, with the completion cycle and whether the access hit an open row.
// Write marks a store; the DRAM fabric times reads and writes identically
// (the modeled part's read/write turnaround is symmetric) so the System
// ignores it, but hierarchy backends (internal/stack) use it to track line
// dirtiness and writeback traffic. The BMLA kernels themselves never write
// DRAM — live state is on-processor — so on kernel runs it stays false.
type Request struct {
	Addr  uint32
	Bytes int
	Write bool
	Done  func(cycle int64, rowHit bool)
}

// Port is the memory fabric as seen by a client: enqueue a request (false
// means the target queue is full — retry later, modeling a stall), tick once
// per channel clock, and report idleness for drain loops. Both *System and
// *cache.Cache (fronting a Port) implement it.
type Port interface {
	Enqueue(Request) bool
	Tick()
	Idle() bool
}

// TraceEvent identifies a fabric trace event (see SetTracer).
type TraceEvent uint8

// Fabric trace events.
const (
	TraceIssue    TraceEvent = iota // controller dispatched a request to DRAM
	TraceReject                     // enqueue attempt found the queue full
	TraceRowOpen                    // bank activate
	TraceRowClose                   // bank precharge
)

// Tracer observes fabric events. For TraceIssue/TraceReject, addr is the
// channel-local byte address; for TraceRowOpen/TraceRowClose, bank and row
// identify the row buffer that changed state. Hooks run inline on the
// channel clock and must not re-enter the fabric.
type Tracer func(ch int, ev TraceEvent, addr uint32, bank int, row int64)

type channel struct {
	d   *dram.DRAM
	ctl *memctrl.Controller
}

// System is the multi-channel die-stacked memory system: N interleaved
// channels plus the functional word store for the input dataset. It is
// driven by Tick once per channel clock cycle (all channels share the
// channel clock, as the stack's vaults do).
type System struct {
	p        dram.Params
	n        int
	rowBytes int64
	chans    []channel
	store    *dram.DRAM
	// Intra-cycle parallelism (SetWorkers): pool shards the Harvest sweep
	// across channels; harvest is the bound method dispatched each cycle so
	// the steady-state tick allocates nothing.
	pool    *sim.Pool
	harvest func(shard int)
}

// New builds a system of the given channel count, each channel an FR-FCFS
// controller of the given queue depth, backing capacityBytes of addressable
// data.
func New(p dram.Params, channels, depth, capacityBytes int) (*System, error) {
	if channels <= 0 {
		return nil, fmt.Errorf("mem: bad channel count %d", channels)
	}
	store, err := dram.New(p, capacityBytes)
	if err != nil {
		return nil, err
	}
	s := &System{p: p, n: channels, rowBytes: int64(p.RowBytes), store: store}
	for i := 0; i < channels; i++ {
		d := store
		if channels > 1 {
			// Per-channel DRAMs are timing-only: the functional words live
			// in s.store, so the channel banks carry zero capacity.
			if d, err = dram.New(p, 0); err != nil {
				return nil, err
			}
		}
		ctl, err := memctrl.New(d, depth)
		if err != nil {
			return nil, err
		}
		s.chans = append(s.chans, channel{d: d, ctl: ctl})
	}
	return s, nil
}

// Channels returns the channel count.
func (s *System) Channels() int { return s.n }

// Route maps a global byte address to its channel and channel-local byte
// address. Rows interleave round-robin across channels; the local address
// renumbers the channel's rows densely so per-channel bank interleave
// (row % banks) is not aliased by the channel stride.
func (s *System) Route(addr uint32) (ch int, local uint32) {
	if s.n == 1 {
		return 0, addr
	}
	row := int64(addr) / s.rowBytes
	return int(row % int64(s.n)),
		uint32((row/int64(s.n))*s.rowBytes + int64(addr)%s.rowBytes)
}

// Enqueue implements Port: it routes the request to the channel owning its
// row. With one channel it forwards the request untouched.
func (s *System) Enqueue(r Request) bool {
	if s.n == 1 {
		return s.chans[0].ctl.Enqueue(memctrl.Request{Addr: r.Addr, Bytes: r.Bytes, Done: r.Done})
	}
	if int64(r.Addr)%s.rowBytes+int64(r.Bytes) > s.rowBytes {
		// All model request streams are row-contained (2 KB row prefetches,
		// 64 B slabs, 128 B lines); a crossing request would silently get
		// one channel's timing for another channel's data.
		panic(fmt.Sprintf("mem: request %#x+%d crosses a row boundary", r.Addr, r.Bytes))
	}
	ch, local := s.Route(r.Addr)
	return s.chans[ch].ctl.Enqueue(memctrl.Request{Addr: local, Bytes: r.Bytes, Done: r.Done})
}

// SetWorkers shards the multi-channel tick across pool. Only the Harvest
// sweep — which touches controller-private state — runs on the workers;
// Deliver (client callbacks, which may re-enter Enqueue on any channel) and
// Issue always run serially in ascending channel order at the batch barrier,
// so results are bit-identical for every worker count. Pass nil to restore
// the serial tick. No effect on a 1-channel system, whose tick is already a
// single controller.
func (s *System) SetWorkers(pool *sim.Pool) {
	s.pool = pool
	s.harvest = nil
	if pool != nil {
		s.harvest = func(shard int) {
			for i := shard; i < len(s.chans); i += s.pool.Workers() {
				s.chans[i].ctl.Harvest()
			}
		}
	}
}

// Tick implements Port: it advances every channel one channel clock cycle.
//
// The schedule is harvest-all, deliver-all, issue-all: completions are first
// harvested on every channel (parallelizable — controller-private state
// only), then delivered and issued serially in ascending channel order. A
// delivery callback that re-enters Enqueue therefore always lands after
// every channel's harvest and before that channel's issue, regardless of
// which channel it came from — one canonical order, identical for any worker
// count. With one channel this collapses to the plain controller tick
// (harvest, deliver, issue on the same controller), which is cycle-identical
// to the historical inline path.
func (s *System) Tick() {
	if s.n == 1 {
		s.chans[0].ctl.Tick()
		return
	}
	if s.pool != nil {
		s.pool.Run(s.harvest)
	} else {
		for i := range s.chans {
			s.chans[i].ctl.Harvest()
		}
	}
	for i := range s.chans {
		s.chans[i].ctl.Deliver()
	}
	for i := range s.chans {
		s.chans[i].ctl.Issue()
	}
}

// Idle implements Port: true when no channel has queued or in-flight
// requests.
func (s *System) Idle() bool {
	for i := range s.chans {
		if !s.chans[i].ctl.Idle() {
			return false
		}
	}
	return true
}

// Pending returns the total number of queued (not yet issued) requests
// across channels.
func (s *System) Pending() int {
	n := 0
	for i := range s.chans {
		n += s.chans[i].ctl.Pending()
	}
	return n
}

// WouldAccept reports whether an Enqueue for addr would currently be
// accepted — the target channel's queue has room.
func (s *System) WouldAccept(addr uint32) bool {
	ch, _ := s.Route(addr)
	return s.chans[ch].ctl.WouldAccept()
}

// TallyRejects replays n elided rejected enqueues on addr's channel (see
// memctrl.Controller.TallyRejects).
func (s *System) TallyRejects(addr uint32, n uint64) {
	ch, _ := s.Route(addr)
	s.chans[ch].ctl.TallyRejects(n)
}

// NextWorkCycle returns the earliest future channel cycle at which any
// channel could change state — the min over the per-controller quiescence
// probes (all channels share the channel clock, so their cycle counters
// agree). memctrl.NeverCycle means the whole fabric is empty and only a new
// Enqueue can create work.
func (s *System) NextWorkCycle() int64 {
	w := memctrl.NeverCycle
	for i := range s.chans {
		c := s.chans[i].ctl.NextWorkCycle()
		if c < w {
			w = c
		}
	}
	return w
}

// SkipCycles replays n dead Ticks on every channel arithmetically.
func (s *System) SkipCycles(n int64) {
	for i := range s.chans {
		s.chans[i].ctl.SkipCycles(n)
	}
}

// Ticker adapts the System to the engine's clock-domain interface, including
// the quiescence protocol: the System's own cycle counts translate to edge
// times through the registered Domain (set Domain after sim.Engine.AddDomain
// returns). Both arch.Node and the multicore system register their memory
// clock through it.
type Ticker struct {
	Sys    *System
	Domain *sim.Domain
}

// Tick implements sim.Ticker.
func (t *Ticker) Tick(sim.Time) { t.Sys.Tick() }

// NextWork implements sim.NextWorker. The controller cycle counter equals
// the domain's tick count (one Tick per edge since reset), so cycle c maps
// to the domain's c'th rising edge.
func (t *Ticker) NextWork(sim.Time) sim.Time {
	c := t.Sys.NextWorkCycle()
	if c == memctrl.NeverCycle {
		return sim.Never
	}
	return t.Domain.TimeOfTick(uint64(c))
}

// SkipTicks implements sim.NextWorker.
func (t *Ticker) SkipTicks(n int64) { t.Sys.SkipCycles(n) }

// SetJitter threads the completion-jitter fault injection through every
// channel. Channel 0 uses the seed as given (so the single-channel system
// reproduces the direct controller's jitter stream exactly); later channels
// derive decorrelated streams from it.
func (s *System) SetJitter(max int64, seed uint64) {
	for i := range s.chans {
		s.chans[i].ctl.SetJitter(max, seed+uint64(i)*0x9E3779B97F4A7C15)
	}
}

// SetTracer installs an observer of fabric events on every channel; pass nil
// to disable.
func (s *System) SetTracer(t Tracer) {
	for i := range s.chans {
		if t == nil {
			s.chans[i].ctl.SetTracer(nil)
			s.chans[i].d.SetTracer(nil)
			continue
		}
		ch := i
		s.chans[i].ctl.SetTracer(func(ev memctrl.Event, addr uint32) {
			switch ev {
			case memctrl.EvIssue:
				t(ch, TraceIssue, addr, 0, 0)
			case memctrl.EvReject:
				t(ch, TraceReject, addr, 0, 0)
			}
		})
		s.chans[i].d.SetTracer(func(ev dram.Event, bank int, row int64) {
			switch ev {
			case dram.EvRowOpen:
				t(ch, TraceRowOpen, 0, bank, row)
			case dram.EvRowClose:
				t(ch, TraceRowClose, 0, bank, row)
			}
		})
	}
}

// --- Stats ---------------------------------------------------------------

// CtlStats returns the controller counters aggregated across channels
// (sums; MaxOccupancy is the max over channels).
func (s *System) CtlStats() memctrl.Stats {
	var agg memctrl.Stats
	for i := range s.chans {
		agg.Add(s.chans[i].ctl.Stats())
	}
	return agg
}

// DRAMStats returns the row-buffer and bandwidth counters aggregated across
// channels.
func (s *System) DRAMStats() dram.Stats {
	var agg dram.Stats
	for i := range s.chans {
		agg.Add(s.chans[i].d.Stats())
	}
	return agg
}

// RowMissRate returns the aggregate row-buffer miss rate.
func (s *System) RowMissRate() float64 { return s.DRAMStats().RowMissRate() }

// ChannelCtlStats returns channel i's controller counters.
func (s *System) ChannelCtlStats(i int) memctrl.Stats { return s.chans[i].ctl.Stats() }

// ChannelDRAMStats returns channel i's row-buffer counters.
func (s *System) ChannelDRAMStats(i int) dram.Stats { return s.chans[i].d.Stats() }

// --- Functional backing store --------------------------------------------

// Store returns the functional word store (the input dataset's home). With
// one channel it is also that channel's timing DRAM.
func (s *System) Store() *dram.DRAM { return s.store }

// ReadWord reads the word at byte address addr from the functional store.
func (s *System) ReadWord(addr uint32) uint32 { return s.store.ReadWord(addr) }

// WriteWord stores a word at byte address addr.
func (s *System) WriteWord(addr uint32, v uint32) { s.store.WriteWord(addr, v) }

// LoadWords bulk-copies the input dataset into memory starting at base.
func (s *System) LoadWords(base uint32, ws []uint32) { s.store.LoadWords(base, ws) }

// ReadRow copies the full row containing addr into dst.
func (s *System) ReadRow(addr uint32, dst []uint32) { s.store.ReadRow(addr, dst) }

// CapacityBytes returns the addressable backing-store size.
func (s *System) CapacityBytes() int { return s.store.CapacityBytes() }
