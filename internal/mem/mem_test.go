package mem

import (
	"testing"
	"testing/quick"

	"repro/internal/dram"
	"repro/internal/memctrl"
)

func params() dram.Params { return dram.DefaultParams() }

func newSys(t *testing.T, channels int) *System {
	t.Helper()
	s, err := New(params(), channels, 8, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func drain(t *testing.T, s *System, limit int) {
	t.Helper()
	for i := 0; i < limit; i++ {
		if s.Idle() {
			return
		}
		s.Tick()
	}
	t.Fatal("fabric never drained")
}

func TestNewValidates(t *testing.T) {
	if _, err := New(params(), 0, 8, 1024); err == nil {
		t.Error("zero channels accepted")
	}
	if _, err := New(params(), 1, 0, 1024); err == nil {
		t.Error("zero queue depth accepted")
	}
	if _, err := New(params(), 1, 8, -1); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestRouteInterleavesRows(t *testing.T) {
	s := newSys(t, 4)
	rb := uint32(params().RowBytes)
	for row := uint32(0); row < 16; row++ {
		for _, off := range []uint32{0, 64, rb - 4} {
			ch, local := s.Route(row*rb + off)
			if ch != int(row%4) {
				t.Fatalf("row %d routed to channel %d", row, ch)
			}
			// Dense local renumbering: channel-local row index is row/4,
			// offset within the row is preserved.
			if local != (row/4)*rb+off {
				t.Fatalf("row %d off %d: local addr %#x", row, off, local)
			}
		}
	}
}

func TestRouteSingleChannelIsIdentity(t *testing.T) {
	s := newSys(t, 1)
	for _, a := range []uint32{0, 1, 64, 4096, 1<<16 - 4} {
		if ch, local := s.Route(a); ch != 0 || local != a {
			t.Fatalf("Route(%#x) = %d, %#x", a, ch, local)
		}
	}
}

func TestRequestsCompleteOnAllChannels(t *testing.T) {
	s := newSys(t, 4)
	rb := uint32(params().RowBytes)
	done := make([]bool, 8)
	for i := range done {
		i := i
		if !s.Enqueue(Request{Addr: uint32(i) * rb, Bytes: 64,
			Done: func(int64, bool) { done[i] = true }}) {
			t.Fatalf("enqueue %d rejected", i)
		}
	}
	drain(t, s, 2000)
	for i, d := range done {
		if !d {
			t.Errorf("request %d never completed", i)
		}
	}
}

func TestRowCrossingPanicsMultiChannel(t *testing.T) {
	s := newSys(t, 2)
	defer func() {
		if recover() == nil {
			t.Error("row-crossing request accepted")
		}
	}()
	s.Enqueue(Request{Addr: uint32(params().RowBytes) - 4, Bytes: 64})
}

func TestStatsAggregateAcrossChannels(t *testing.T) {
	s := newSys(t, 2)
	rb := uint32(params().RowBytes)
	for i := 0; i < 4; i++ {
		s.Enqueue(Request{Addr: uint32(i) * rb, Bytes: 64})
	}
	drain(t, s, 2000)
	ctl := s.CtlStats()
	if got := s.ChannelCtlStats(0).Issued + s.ChannelCtlStats(1).Issued; ctl.Issued != got {
		t.Errorf("aggregate issued %d != channel sum %d", ctl.Issued, got)
	}
	if ctl.Issued != 4 {
		t.Errorf("issued = %d, want 4", ctl.Issued)
	}
	d := s.DRAMStats()
	if d.Requests != 4 || d.BytesRead != 4*64 {
		t.Errorf("dram stats = %+v", d)
	}
	if c0 := s.ChannelDRAMStats(0); c0.Requests != 2 {
		t.Errorf("channel 0 requests = %d, want 2 (even rows)", c0.Requests)
	}
	if s.RowMissRate() <= 0 {
		t.Error("cold accesses reported no row misses")
	}
}

func TestFunctionalStoreSharedAcrossChannels(t *testing.T) {
	s := newSys(t, 4)
	s.WriteWord(8192, 0xDEADBEEF)
	if s.ReadWord(8192) != 0xDEADBEEF {
		t.Error("word store roundtrip failed")
	}
	ws := []uint32{1, 2, 3, 4}
	s.LoadWords(4096, ws)
	row := make([]uint32, params().RowBytes/4)
	s.ReadRow(4096, row)
	for i, w := range ws {
		if row[i] != w {
			t.Fatalf("row[%d] = %d, want %d", i, row[i], w)
		}
	}
	if s.CapacityBytes() != 1<<16 {
		t.Errorf("capacity = %d", s.CapacityBytes())
	}
}

func TestJitterDecorrelatedPerChannel(t *testing.T) {
	// With jitter on, per-channel completion cycles for the same local access
	// pattern should differ between channels (decorrelated streams).
	s := newSys(t, 2)
	s.SetJitter(64, 7)
	rb := uint32(params().RowBytes)
	var cyc [2][]int64
	for i := 0; i < 8; i++ {
		ch := i % 2
		s.Enqueue(Request{Addr: uint32(i) * rb, Bytes: 64,
			Done: func(c int64, _ bool) { cyc[ch] = append(cyc[ch], c) }})
	}
	drain(t, s, 10000)
	same := true
	for i := range cyc[0] {
		if i < len(cyc[1]) && cyc[0][i] != cyc[1][i] {
			same = false
		}
	}
	if same {
		t.Error("jitter streams identical across channels")
	}
}

func TestTracerSeesIssueAndRowEvents(t *testing.T) {
	s := newSys(t, 2)
	counts := map[TraceEvent]int{}
	chans := map[int]bool{}
	s.SetTracer(func(ch int, ev TraceEvent, _ uint32, _ int, _ int64) {
		counts[ev]++
		chans[ch] = true
	})
	rb := uint32(params().RowBytes)
	for i := 0; i < 4; i++ {
		s.Enqueue(Request{Addr: uint32(i) * rb, Bytes: 64})
	}
	drain(t, s, 2000)
	if counts[TraceIssue] != 4 {
		t.Errorf("issue events = %d, want 4", counts[TraceIssue])
	}
	if counts[TraceRowOpen] != 4 {
		t.Errorf("row-open events = %d, want 4 (all cold)", counts[TraceRowOpen])
	}
	if !chans[0] || !chans[1] {
		t.Errorf("events not seen on both channels: %v", chans)
	}
	s.SetTracer(nil)
	s.Enqueue(Request{Addr: 0, Bytes: 64})
	drain(t, s, 2000)
	if counts[TraceIssue] != 4 {
		t.Error("tracer still firing after uninstall")
	}
}

// TestSingleChannelCycleIdentity is the fabric's core guarantee: a 1-channel
// System produces exactly the same (completion cycle, row hit) sequence as a
// bare FR-FCFS controller driven identically — the fabric adds no timing.
func TestSingleChannelCycleIdentity(t *testing.T) {
	type completion struct {
		cycle int64
		hit   bool
	}
	run := func(addrs []uint32, enq func(a uint32, done func(int64, bool)) bool, tick func(), idle func() bool) []completion {
		var out []completion
		i := 0
		for cycles := 0; cycles < 100000; cycles++ {
			for i < len(addrs) && enq(addrs[i], func(c int64, h bool) {
				out = append(out, completion{c, h})
			}) {
				i++
			}
			if i == len(addrs) && idle() {
				break
			}
			tick()
		}
		return out
	}
	f := func(seeds []uint16) bool {
		if len(seeds) == 0 {
			return true
		}
		if len(seeds) > 64 {
			seeds = seeds[:64]
		}
		addrs := make([]uint32, len(seeds))
		for i, v := range seeds {
			addrs[i] = (uint32(v) * 64) % (1 << 16) // 64B-aligned, row-contained
		}

		sys, err := New(params(), 1, 8, 1<<16)
		if err != nil {
			t.Fatal(err)
		}
		got := run(addrs,
			func(a uint32, done func(int64, bool)) bool {
				return sys.Enqueue(Request{Addr: a, Bytes: 64, Done: done})
			},
			sys.Tick, sys.Idle)

		d, err := dram.New(params(), 1<<16)
		if err != nil {
			t.Fatal(err)
		}
		ctl, err := memctrl.New(d, 8)
		if err != nil {
			t.Fatal(err)
		}
		want := run(addrs,
			func(a uint32, done func(int64, bool)) bool {
				return ctl.Enqueue(memctrl.Request{Addr: a, Bytes: 64, Done: done})
			},
			ctl.Tick, ctl.Idle)

		if len(got) != len(want) || len(got) != len(addrs) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
