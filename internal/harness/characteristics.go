package harness

import (
	"context"
	"fmt"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/energy"
	"repro/internal/kernels"
	"repro/internal/layout"
	"repro/internal/workloads"
)

// CharacteristicsStudy quantifies the paper's first contribution (Sections
// III-C/III-D): compactness and row-density are *necessary* for bandwidth-
// efficient PNM. It runs, on the same Millipede processor:
//
//   - count — compact and row-dense: the live state fits in local memory
//     and every streamed byte is used once;
//   - join — not compact: every input key rescans a second table larger
//     than the corelet-local memory, so the second operand is re-streamed
//     from DRAM on every record.
//
// Reported per workload: effective input throughput (input words per
// microsecond) and DRAM traffic amplification (DRAM bytes read per input
// byte). Join's amplification grows with the table size and its input
// throughput collapses — the paper's argument that such workloads
// "underutilize PNM's bandwidth" irrespective of the architecture.
func CharacteristicsStudy(ctx context.Context, p arch.Params, scale float64, seed uint64) (*Figure, error) {
	if seed == 0 {
		seed = Seed
	}
	f := &Figure{
		Name:   "Characteristics study (Sec. III-D): compact (count) vs non-compact (join) on Millipede",
		Series: []string{"input-words/us", "dram-amplification"},
	}

	// Compact baseline.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cb := workloads.CountBench()
	records := recordsFor(cb, scale)
	cr, err := runSeeded(ArchMillipede, cb, p, records, seed)
	if err != nil {
		return nil, err
	}
	f.Rows = append(f.Rows, Row{Bench: "count", Values: map[string]float64{
		"input-words/us":     float64(cr.Words) / (float64(cr.Time) / 1e6),
		"dram-amplification": float64(cr.DRAMBytes) / (float64(cr.Words) * 4),
	}})

	// Non-compact join: table of 2x the corelet-local memory.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tableWords := 2 * p.LocalBytes / 4
	jr, jWords, err := RunJoin(p, tableWords, records/8, seed)
	if err != nil {
		return nil, err
	}
	f.Rows = append(f.Rows, Row{Bench: "join", Values: map[string]float64{
		"input-words/us":     float64(jWords) / (float64(jr.Time) / 1e6),
		"dram-amplification": float64(jr.DRAM.BytesRead) / (float64(jWords) * 4),
	}})
	return f, nil
}

// RunJoin executes the Section III-D join anti-benchmark on Millipede: each
// of the threads' single-word keys is matched against a shared table of
// tableWords words (exceeding local memory). The result is verified against
// a host-side reference join.
func RunJoin(p arch.Params, tableWords, records int, seed uint64) (core.Result, uint64, error) {
	if seed == 0 {
		seed = Seed
	}
	k := kernels.Join(tableWords)
	lay := layout.Layout{
		RowBytes: p.DRAM.RowBytes, Corelets: p.Corelets, Contexts: p.Contexts,
		Interleave: layout.Slab,
	}
	if err := lay.Validate(); err != nil {
		return core.Result{}, 0, err
	}
	sl, err := kernels.LocalState(k, p.LocalBytes, p.Contexts)
	if err != nil {
		return core.Result{}, 0, err
	}

	// Keys and table share a small value domain so matches occur.
	rng := datagen.NewRNG(seed)
	table := make([]uint32, tableWords)
	for i := range table {
		table[i] = uint32(rng.Intn(1024))
	}
	streams := make([][]uint32, lay.Threads())
	for t := range streams {
		trng := datagen.NewRNG(seed + uint64(t) + 1)
		streams[t] = make([]uint32, records)
		for i := range streams[t] {
			streams[t][i] = uint32(trng.Intn(1024))
		}
	}

	args := kernels.ArgsAndConsts(k, lay.Walk(), sl, records)
	// K1 carries the table's byte address, known only after packing.
	tableBase := uint32(lay.RegionBytes(records))
	args[kernels.ArgK1] = tableBase

	pr, err := core.NewProcessor(p, energy.Default(), core.Launch{
		Prog: k.Prog, Interleave: layout.Slab, Streams: streams, Args: args, Table: table,
	})
	if err != nil {
		return core.Result{}, 0, err
	}
	if pr.TableBase() != tableBase {
		return core.Result{}, 0, fmt.Errorf("harness: table base mismatch: %d vs %d", pr.TableBase(), tableBase)
	}
	res, err := pr.Run(0)
	if err != nil {
		return core.Result{}, 0, err
	}

	// Verify matches/probes per thread against a reference join.
	counts := map[uint32]uint32{}
	for _, v := range table {
		counts[v]++
	}
	for c := 0; c < p.Corelets; c++ {
		for ctx := 0; ctx < p.Contexts; ctx++ {
			var want uint32
			for _, key := range streams[lay.ThreadID(c, ctx)] {
				want += counts[key]
			}
			base := sl.Base0 + uint32(ctx)*sl.ContextMult
			if got := pr.ReadState(c, base); got != want {
				return core.Result{}, 0, fmt.Errorf("harness: join mismatch at corelet %d ctx %d: %d vs %d", c, ctx, got, want)
			}
			if probes := pr.ReadState(c, base+4); probes != uint32(records) {
				return core.Result{}, 0, fmt.Errorf("harness: join probes %d, want %d", probes, records)
			}
		}
	}
	return res, uint64(lay.Threads() * records), nil
}
