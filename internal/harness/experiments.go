package harness

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/arch"
	"repro/internal/energy"
	"repro/internal/node"
	"repro/internal/workloads"
)

// ExperimentInfo describes one registered experiment.
type ExperimentInfo struct {
	Name        string
	Description string
	// Uses names the request options (beyond the architecture parameter
	// block) the experiment's run function actually reads — "scale",
	// "host_bandwidth_gbs", "timeline_every". The serving layer derives its
	// per-experiment parameter descriptors from it.
	Uses []string
}

// info builds an ExperimentInfo; uses lists the consumed request options.
func info(name, desc string, uses ...string) ExperimentInfo {
	return ExperimentInfo{Name: name, Description: desc, Uses: uses}
}

// ExpOptions tunes an experiment run. The zero value reproduces the
// historical cmd/milliexp defaults.
type ExpOptions struct {
	// Scale multiplies every benchmark's default input size; zero means 1.0.
	// The characteristics experiment runs at Scale/4 internally (its joins
	// square the work), matching milliexp's historical default.
	Scale float64
	// HostBandwidthGBs is the host-link bandwidth assumed by the residency
	// study; zero means 16 GB/s (PCIe-class).
	HostBandwidthGBs float64
	// TimelineEvery is the sampling period of the timeline experiment in
	// compute cycles; zero picks DefaultTimelineEvery.
	TimelineEvery uint64
	// Seed overrides the dataset seed of every run the experiment performs;
	// zero means the canonical Seed. Shard- and thread-level seeds are
	// derived from it (datagen.ThreadSeed, node.ShardSeed), so any base
	// value yields a valid, reproducible dataset.
	Seed uint64
	// ClusterNodes and ClusterProcs set the cluster experiment's geometry:
	// nodes in the simulated cluster and processors per node. Zero means the
	// historical 4-node, 1-processor-per-node setup. The total streamed work
	// is held constant, so growing the cluster shrinks each shard.
	ClusterNodes int
	ClusterProcs int
}

// seed resolves the dataset seed, mapping zero to the canonical Seed.
func (o ExpOptions) seed() uint64 {
	if o.Seed == 0 {
		return Seed
	}
	return o.Seed
}

func (o ExpOptions) withDefaults() ExpOptions {
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.HostBandwidthGBs == 0 {
		o.HostBandwidthGBs = 16
	}
	if o.TimelineEvery == 0 {
		o.TimelineEvery = DefaultTimelineEvery
	}
	if o.ClusterNodes == 0 {
		o.ClusterNodes = ClusterNodes
	}
	if o.ClusterProcs == 0 {
		o.ClusterProcs = 1
	}
	return o
}

// ExperimentResult is the uniform output of RunExperiment: zero or more
// figures plus optional free text (tables and the node study report).
type ExperimentResult struct {
	Figures []*Figure
	Text    string
}

// Render returns the result as the text milliexp prints: each figure's
// table, then the free text.
func (r ExperimentResult) Render() string {
	var sb strings.Builder
	for _, f := range r.Figures {
		sb.WriteString(f.Render())
	}
	if r.Text != "" {
		sb.WriteString(r.Text)
		if !strings.HasSuffix(r.Text, "\n") {
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

type expEntry struct {
	info ExperimentInfo
	run  func(ctx context.Context, p arch.Params, o ExpOptions) (ExperimentResult, error)
}

// oneFig adapts the harness's (Params, scale) figure functions to the
// registry's run signature.
func oneFig(f func(context.Context, arch.Params, float64, uint64) (*Figure, error)) func(context.Context, arch.Params, ExpOptions) (ExperimentResult, error) {
	return func(ctx context.Context, p arch.Params, o ExpOptions) (ExperimentResult, error) {
		fig, err := f(ctx, p, o.Scale, o.Seed)
		if err != nil {
			return ExperimentResult{}, err
		}
		return ExperimentResult{Figures: []*Figure{fig}}, nil
	}
}

// experiments is the registry, in milliexp's presentation order.
var experiments = []expEntry{
	{info("table3", "simulated configuration parameters (Table III)"),
		func(ctx context.Context, p arch.Params, o ExpOptions) (ExperimentResult, error) {
			return ExperimentResult{Text: TableIII(p)}, nil
		}},
	{info("table2", "benchmark characteristics (Table II)"),
		func(ctx context.Context, p arch.Params, o ExpOptions) (ExperimentResult, error) {
			return ExperimentResult{Text: TableII()}, nil
		}},
	{info("table4", "per-benchmark execution profile (Table IV)", "scale", "seed"), oneFig(TableIV)},
	{info("fig3", "throughput across PNM architectures (Figure 3)", "scale", "seed"), oneFig(Fig3)},
	{info("fig4", "energy totals and breakdown (Figure 4)", "scale", "seed"),
		func(ctx context.Context, p arch.Params, o ExpOptions) (ExperimentResult, error) {
			fig, parts, err := Fig4(ctx, p, o.Scale, o.Seed)
			if err != nil {
				return ExperimentResult{}, err
			}
			return ExperimentResult{Figures: []*Figure{fig, parts}}, nil
		}},
	{info("fig5", "node-level comparison vs a conventional multicore (Figure 5)", "scale", "seed"), oneFig(Fig5)},
	{info("fig6", "system-size scaling study (Figure 6)", "scale", "seed"), oneFig(Fig6)},
	{info("fig7", "rate-matching DFS study (Figure 7)", "scale", "seed"), oneFig(Fig7)},
	{info("ablation", "software-barrier interval ablation", "scale", "seed"), oneFig(BarrierAblation)},
	{info("characteristics", "join/table characteristics study (runs at Scale/4)", "scale", "seed"),
		func(ctx context.Context, p arch.Params, o ExpOptions) (ExperimentResult, error) {
			// Historical milliexp default: the characteristics study squares
			// the work per record, so it runs at a quarter of the scale.
			fig, err := CharacteristicsStudy(ctx, p, o.Scale/4, o.Seed)
			if err != nil {
				return ExperimentResult{}, err
			}
			return ExperimentResult{Figures: []*Figure{fig}}, nil
		}},
	{info("warpwidth", "VWS warp-width sweep", "scale", "seed"), oneFig(WarpWidthSweep)},
	{info("channels", "die-stacked channel-count sweep", "scale", "seed"), oneFig(ChannelSweep)},
	{info("residency", "dataset-residency study vs host-link bandwidth", "scale", "host_bandwidth_gbs", "seed"),
		func(ctx context.Context, p arch.Params, o ExpOptions) (ExperimentResult, error) {
			fig, err := ResidencyStudy(ctx, p, o.HostBandwidthGBs, o.Scale, o.Seed)
			if err != nil {
				return ExperimentResult{}, err
			}
			return ExperimentResult{Figures: []*Figure{fig}}, nil
		}},
	{info("node", "measured 8-processor node run (count benchmark)", "seed"),
		func(ctx context.Context, p arch.Params, o ExpOptions) (ExperimentResult, error) {
			if err := ctx.Err(); err != nil {
				return ExperimentResult{}, err
			}
			b, err := workloads.ByName("count")
			if err != nil {
				return ExperimentResult{}, err
			}
			r, err := node.Run(p, energy.Default(), b, 8, 1024, o.seed())
			if err != nil {
				return ExperimentResult{}, err
			}
			text := fmt.Sprintf("Measured 8-processor node run (count, 1024 records/thread):\n"+
				"  makespan %.1f us, load imbalance %.1f%%, energy %.1f uJ\n",
				float64(r.Time)/1e6, r.Imbalance()*100, r.Energy.TotalPJ()/1e6)
			return ExperimentResult{Text: text}, nil
		}},
	{info("timeline", "cycle-sampled observability timeline (prefetch occupancy, row hit rate, queue depth, DFS clock)", "scale", "timeline_every", "seed"),
		func(ctx context.Context, p arch.Params, o ExpOptions) (ExperimentResult, error) {
			fig, err := TimelineStudy(ctx, p, o.Scale, o.TimelineEvery, o.Seed)
			if err != nil {
				return ExperimentResult{}, err
			}
			return ExperimentResult{Figures: []*Figure{fig}}, nil
		}},
	{info("cluster", "cluster-scale MapReduce over streamed datasets: measured map/node-reduce/tree-reduce breakdown (Section IV-D)", "scale", "nodes", "processors", "seed"),
		func(ctx context.Context, p arch.Params, o ExpOptions) (ExperimentResult, error) {
			fig, text, err := ClusterStudy(ctx, p, o.Scale, o.Seed, o.ClusterNodes, o.ClusterProcs)
			if err != nil {
				return ExperimentResult{}, err
			}
			return ExperimentResult{Figures: []*Figure{fig}, Text: text}, nil
		}},
	{info("capacity", "die-stacked capacity study: stack as memory vs hardware cache vs memcache over a planar backing store, swept across dataset-to-stack ratios", "scale", "seed"),
		func(ctx context.Context, p arch.Params, o ExpOptions) (ExperimentResult, error) {
			fig, text, err := CapacityStudy(ctx, p, o.Scale, o.Seed)
			if err != nil {
				return ExperimentResult{}, err
			}
			return ExperimentResult{Figures: []*Figure{fig}, Text: text}, nil
		}},
}

// Register appends an experiment to the registry. It exists so packages
// layered above the harness (the serving-layer SLA study, future policy
// sweeps) can appear in Experiments()/RunExperiment alongside the
// built-ins. Call it from an init() — the registry is read without locking
// once the program is serving — and pick a name that is not taken: a
// duplicate panics at startup, when it is a programming error rather than
// a runtime condition.
func Register(info ExperimentInfo, run func(ctx context.Context, p arch.Params, o ExpOptions) (ExperimentResult, error)) {
	for _, e := range experiments {
		if e.info.Name == info.Name {
			panic(fmt.Sprintf("harness: duplicate experiment %q", info.Name))
		}
	}
	experiments = append(experiments, expEntry{info: info, run: run})
}

// Experiments lists every registered experiment in presentation order.
func Experiments() []ExperimentInfo {
	infos := make([]ExperimentInfo, len(experiments))
	for i, e := range experiments {
		infos[i] = e.info
	}
	return infos
}

// RunExperiment runs the named experiment with the given architecture
// parameters and options. Cancelling ctx makes the experiment return
// ctx.Err() instead of running its remaining simulations to completion
// (in-flight cycle loops still finish — cancellation is checked between
// runs, never inside the deterministic hot path).
func RunExperiment(ctx context.Context, name string, p arch.Params, o ExpOptions) (ExperimentResult, error) {
	for _, e := range experiments {
		if e.info.Name == name {
			if err := ctx.Err(); err != nil {
				return ExperimentResult{}, err
			}
			return e.run(ctx, p, o.withDefaults())
		}
	}
	return ExperimentResult{}, fmt.Errorf("harness: unknown experiment %q (see Experiments())", name)
}
