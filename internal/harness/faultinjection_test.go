package harness

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/layout"
	"repro/internal/workloads"
)

// TestPrefetchInvariantsUnderJitter runs every kernel on flow-controlled
// Millipede with deterministic DRAM completion jitter and checks the
// prefetch buffer's safety invariants: flow control must never evict a row
// whose consumers are still reading it (PrematureEvicts == 0), a DF counter
// can never exceed the corelet count (each corelet signals row completion
// once), and the buffer must drain completely (no lost waiters).
func TestPrefetchInvariantsUnderJitter(t *testing.T) {
	p := arch.Default()
	p.FlowControl = true
	for _, b := range workloads.All() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			records := 16
			l, lay, sl, err := buildLaunch(b, p, layout.Slab, records, Seed, false)
			if err != nil {
				t.Fatal(err)
			}
			pr, err := core.NewProcessor(p, energy.Default(), l)
			if err != nil {
				t.Fatal(err)
			}
			pr.InjectMemoryJitter(250, 42)
			if _, err := pr.Run(0); err != nil {
				t.Fatal(err)
			}

			// Jitter must not change results, only timing.
			got := workloads.ExtractStates(b, sl, lay, pr.ReadState)
			want := b.GoldenStatesStreamed(p.Threads(), records, Seed)
			for th := range want {
				for i := range want[th] {
					if got[th][i] != want[th][i] {
						t.Fatalf("functional mismatch under jitter at thread %d word %d", th, i)
					}
				}
			}

			buf := pr.PrefetchBuffer()
			if buf == nil {
				t.Fatal("millipede processor has no prefetch buffer")
			}
			s := buf.Stats()
			if s.PrematureEvicts != 0 {
				t.Errorf("PrematureEvicts = %d, want 0 (flow control must hold rows until consumed)", s.PrematureEvicts)
			}
			if s.MaxDF > uint64(p.Corelets) {
				t.Errorf("MaxDF = %d exceeds corelet count %d", s.MaxDF, p.Corelets)
			}
			if !buf.Done() {
				t.Error("buffer not drained after halt: lost waiters or stuck fetches")
			}
		})
	}
}
