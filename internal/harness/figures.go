package harness

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/arch"
	"repro/internal/stack"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Row is one benchmark's values across a figure's series.
type Row struct {
	Bench  string
	Values map[string]float64
}

// Figure is a reproduced table or figure: named series over the benchmark
// rows, plus a geomean row where meaningful.
type Figure struct {
	Name    string
	Series  []string // presentation order
	Rows    []Row
	Geomean map[string]float64
}

// Render prints the figure as an aligned text table.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Name)
	fmt.Fprintf(&b, "%-10s", "benchmark")
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %14s", s)
	}
	b.WriteString("\n")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%-10s", r.Bench)
		for _, s := range f.Series {
			fmt.Fprintf(&b, " %14.3f", r.Values[s])
		}
		b.WriteString("\n")
	}
	if len(f.Geomean) > 0 {
		fmt.Fprintf(&b, "%-10s", "geomean")
		for _, s := range f.Series {
			if v, ok := f.Geomean[s]; ok {
				fmt.Fprintf(&b, " %14.3f", v)
			} else {
				fmt.Fprintf(&b, " %14s", "-")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

func (f *Figure) geomeans() {
	f.Geomean = map[string]float64{}
	for _, s := range f.Series {
		var vs []float64
		ok := true
		for _, r := range f.Rows {
			v, has := r.Values[s]
			if !has || v <= 0 {
				ok = false
				break
			}
			vs = append(vs, v)
		}
		if ok && len(vs) > 0 {
			f.Geomean[s] = stats.Geomean(vs)
		}
	}
}

// runJobs executes fn(0..n-1) on at most GOMAXPROCS worker goroutines and
// returns the lowest-indexed error. The figure generators' runs are
// independent deterministic simulations, so they parallelize freely — but
// each simulation holds a full node (DRAM backing store included), so the
// pool bounds peak memory and scheduler pressure by the host's parallelism
// instead of the job count (a figure can fan out 48+ runs).
//
// Cancelling ctx stops workers from claiming further jobs; in-flight
// simulations finish (the cycle loop is not interruptible) and the sweep
// returns ctx.Err() instead of a complete figure.
func runJobs(ctx context.Context, n int, fn func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runAll executes the given architectures over all benchmarks at the given
// record scale, returning results[arch][bench].
func runAll(ctx context.Context, p arch.Params, archs []string, scale float64, seed uint64) (map[string]map[string]RunResult, error) {
	type job struct {
		a string
		b *workloads.Benchmark
	}
	var jobs []job
	for _, a := range archs {
		for _, b := range workloads.All() {
			jobs = append(jobs, job{a, b})
		}
	}
	res := make([]RunResult, len(jobs))
	err := runJobs(ctx, len(jobs), func(i int) error {
		j := jobs[i]
		r, err := runSeeded(j.a, j.b, p, recordsFor(j.b, scale), seed)
		if err != nil {
			return fmt.Errorf("%s/%s: %w", j.a, j.b.Name(), err)
		}
		res[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := map[string]map[string]RunResult{}
	for _, a := range archs {
		out[a] = map[string]RunResult{}
	}
	for i, j := range jobs {
		out[j.a][j.b.Name()] = res[i]
	}
	return out, nil
}

// Fig3 reproduces Figure 3: performance of each PNM architecture normalized
// to GPGPU-with-prefetch, benchmarks in the paper's order.
func Fig3(ctx context.Context, p arch.Params, scale float64, seed uint64) (*Figure, error) {
	archs := []string{ArchGPGPU, ArchVWS, ArchSSMC, ArchMillipedeNoFC, ArchVWSRow, ArchMillipede}
	res, err := runAll(ctx, p, archs, scale, seed)
	if err != nil {
		return nil, err
	}
	f := &Figure{Name: "Figure 3: performance normalized to GPGPU (higher is better)", Series: archs}
	for _, b := range workloads.All() {
		base := float64(res[ArchGPGPU][b.Name()].Time)
		row := Row{Bench: b.Name(), Values: map[string]float64{}}
		for _, a := range archs {
			row.Values[a] = base / float64(res[a][b.Name()].Time)
		}
		f.Rows = append(f.Rows, row)
	}
	f.geomeans()
	return f, nil
}

// Fig4 reproduces Figure 4: total energy normalized to GPGPU (lower is
// better), including the rate-matched Millipede variant. Component
// breakdowns are exposed via Fig4Breakdown.
func Fig4(ctx context.Context, p arch.Params, scale float64, seed uint64) (*Figure, *Figure, error) {
	archs := []string{ArchGPGPU, ArchVWS, ArchSSMC, ArchVWSRow, ArchMillipede, ArchMillipedeRM}
	res, err := runAll(ctx, p, archs, scale, seed)
	if err != nil {
		return nil, nil, err
	}
	f := &Figure{Name: "Figure 4: energy normalized to GPGPU (lower is better)", Series: archs}
	parts := &Figure{
		Name:   "Figure 4 (breakdown): core / dram / leak shares of each architecture's energy",
		Series: []string{},
	}
	for _, a := range archs {
		parts.Series = append(parts.Series, a+":core", a+":dram", a+":leak")
	}
	for _, b := range workloads.All() {
		base := res[ArchGPGPU][b.Name()].Energy.TotalPJ()
		row := Row{Bench: b.Name(), Values: map[string]float64{}}
		prow := Row{Bench: b.Name(), Values: map[string]float64{}}
		for _, a := range archs {
			e := res[a][b.Name()].Energy
			row.Values[a] = e.TotalPJ() / base
			prow.Values[a+":core"] = e.CorePJ / base
			prow.Values[a+":dram"] = e.DRAMPJ / base
			prow.Values[a+":leak"] = e.LeakPJ / base
		}
		f.Rows = append(f.Rows, row)
		parts.Rows = append(parts.Rows, prow)
	}
	f.geomeans()
	return f, parts, nil
}

// NodeProcessors is the node size of Section VI-C's comparison: the paper's
// Figure 5 pits a 32-processor Millipede node against one 8-core multicore.
const NodeProcessors = 32

// Fig5 reproduces Figure 5: full-node Millipede speedup and energy
// improvement over the conventional multicore.
func Fig5(ctx context.Context, p arch.Params, scale float64, seed uint64) (*Figure, error) {
	f := &Figure{Name: "Figure 5: 32-processor Millipede node vs conventional 8-core multicore",
		Series: []string{"speedup", "energy-improvement"}}
	benches := workloads.All()
	mps := make([]RunResult, len(benches))
	mcs := make([]RunResult, len(benches))
	err := runJobs(ctx, 2*len(benches), func(i int) error {
		b := benches[i/2]
		records := recordsFor(b, scale)
		if i%2 == 0 {
			r, err := runSeeded(ArchMillipede, b, p, records, seed)
			mps[i/2] = r
			return err
		}
		r, err := runSeeded(ArchMulticore, b, p, records, seed)
		mcs[i/2] = r
		return err
	})
	if err != nil {
		return nil, err
	}
	for i, b := range benches {
		mp, mc := mps[i], mcs[i]
		// Equal-total-input comparison: the multicore processed the same
		// records as ONE Millipede processor; the full node runs 32
		// processors in parallel while the multicore must serialize 32x
		// the work.
		speedup := float64(NodeProcessors) * float64(mc.Time) / float64(mp.Time)
		// Node energy = 32 x per-processor energy; multicore at 32x input
		// = 32 x measured energy, so the per-slice ratio stands.
		eImp := mc.Energy.TotalPJ() / mp.Energy.TotalPJ()
		f.Rows = append(f.Rows, Row{Bench: b.Name(), Values: map[string]float64{
			"speedup": speedup, "energy-improvement": eImp,
		}})
	}
	f.geomeans()
	return f, nil
}

// Fig6 reproduces Figure 6: performance versus system size (32 vs 64
// corelets/lanes/cores with doubled memory bandwidth), normalized to the
// 32-lane GPGPU. The 64-lane points double bandwidth the physical way — a
// second die-stack channel — and each also gets a "-wide" cross-check
// column that doubles the single channel's clock instead, the pre-fabric
// approximation; the two should land close together.
func Fig6(ctx context.Context, p arch.Params, scale float64, seed uint64) (*Figure, error) {
	sizes := []int{32, 64}
	archs := []string{ArchGPGPU, ArchSSMC, ArchMillipede}
	f := &Figure{Name: "Figure 6: speedup vs system size (normalized to 32-lane GPGPU)"}
	for _, n := range sizes {
		for _, a := range archs {
			f.Series = append(f.Series, fmt.Sprintf("%s-%d", a, n))
		}
	}
	for _, a := range archs {
		f.Series = append(f.Series, fmt.Sprintf("%s-64-wide", a))
	}
	type job struct {
		series  string
		params  arch.Params
		a       string
		b       *workloads.Benchmark
		records int
	}
	var jobs []job
	for _, n := range sizes {
		for _, b := range workloads.All() {
			// Equal total input across sizes: more lanes means fewer
			// records per thread, never below the minimum-records floor.
			records := recordsForSize(b, scale, n)
			for _, a := range archs {
				jobs = append(jobs, job{fmt.Sprintf("%s-%d", a, n), p.WithSize(n), a, b, records})
				if n == 64 {
					jobs = append(jobs, job{a + "-64-wide", p.WithSizeWidthScaled(n), a, b, records})
				}
			}
		}
	}
	res := make([]RunResult, len(jobs))
	err := runJobs(ctx, len(jobs), func(i int) error {
		j := jobs[i]
		r, err := runSeeded(j.a, j.b, j.params, j.records, seed)
		res[i] = r
		return err
	})
	if err != nil {
		return nil, err
	}
	base := map[string]float64{}
	rows := map[string]Row{}
	var order []string
	for i, j := range jobs {
		if _, ok := rows[j.b.Name()]; !ok {
			rows[j.b.Name()] = Row{Bench: j.b.Name(), Values: map[string]float64{}}
			order = append(order, j.b.Name())
		}
		if j.series == ArchGPGPU+"-32" {
			base[j.b.Name()] = float64(res[i].Time)
		}
		rows[j.b.Name()].Values[j.series] = float64(res[i].Time)
	}
	for _, name := range order {
		row := rows[name]
		for k, v := range row.Values {
			row.Values[k] = base[name] / v
		}
		f.Rows = append(f.Rows, row)
	}
	f.geomeans()
	return f, nil
}

// ChannelSweepChannelHz is the per-channel clock of the channel sweep:
// vault-grade 150 MHz channels (the examples/ratematch bandwidth-bound
// regime), so aggregate bandwidth genuinely scales with channel count. At
// the full 1.2 GHz Table III channel the model is compute-bound for all
// eight kernels (DESIGN.md §7) and the sweep would be flat.
const ChannelSweepChannelHz = 150e6

// ChannelSweep measures Millipede across 1/2/4 die-stack channels on every
// benchmark, normalized to the single-channel run. Memory-bound kernels
// (count, sample) gain the most from extra channels; compute-bound ones
// (kmeans, gda) barely move.
func ChannelSweep(ctx context.Context, p arch.Params, scale float64, seed uint64) (*Figure, error) {
	channels := []int{1, 2, 4}
	f := &Figure{Name: "Channel sweep: Millipede speedup vs die-stack channel count (150 MHz vault channels, normalized to 1 channel)"}
	for _, n := range channels {
		f.Series = append(f.Series, fmt.Sprintf("%d-ch", n))
	}
	benches := workloads.All()
	res := make([]RunResult, len(benches)*len(channels))
	err := runJobs(ctx, len(res), func(i int) error {
		b := benches[i/len(channels)]
		q := p
		q.ChannelHz = ChannelSweepChannelHz
		q.Channels = channels[i%len(channels)]
		r, err := runSeeded(ArchMillipede, b, q, recordsFor(b, scale), seed)
		res[i] = r
		return err
	})
	if err != nil {
		return nil, err
	}
	for bi, b := range benches {
		row := Row{Bench: b.Name(), Values: map[string]float64{}}
		base := float64(res[bi*len(channels)].Time)
		for ci, n := range channels {
			row.Values[fmt.Sprintf("%d-ch", n)] = base / float64(res[bi*len(channels)+ci].Time)
		}
		f.Rows = append(f.Rows, row)
	}
	f.geomeans()
	return f, nil
}

// Fig7 reproduces Figure 7: Millipede speedup versus prefetch-buffer entry
// count (2, 4, 8, 16, 32), normalized to 2 entries.
func Fig7(ctx context.Context, p arch.Params, scale float64, seed uint64) (*Figure, error) {
	counts := []int{2, 4, 8, 16, 32}
	f := &Figure{Name: "Figure 7: Millipede speedup vs prefetch buffer count (normalized to 2 buffers)"}
	for _, n := range counts {
		f.Series = append(f.Series, fmt.Sprintf("%d-buffers", n))
	}
	benches := workloads.All()
	res := make([]RunResult, len(benches)*len(counts))
	err := runJobs(ctx, len(res), func(i int) error {
		b := benches[i/len(counts)]
		q := p
		q.PrefetchEntries = counts[i%len(counts)]
		r, err := runSeeded(ArchMillipede, b, q, recordsFor(b, scale), seed)
		res[i] = r
		return err
	})
	if err != nil {
		return nil, err
	}
	for bi, b := range benches {
		row := Row{Bench: b.Name(), Values: map[string]float64{}}
		base := float64(res[bi*len(counts)].Time)
		for ci, n := range counts {
			row.Values[fmt.Sprintf("%d-buffers", n)] = base / float64(res[bi*len(counts)+ci].Time)
		}
		f.Rows = append(f.Rows, row)
	}
	f.geomeans()
	return f, nil
}

// TableIV reproduces Table IV: per-benchmark instructions per input word,
// branches per instruction, SSMC's DRAM row miss rate, and Millipede's
// rate-matched clock.
func TableIV(ctx context.Context, p arch.Params, scale float64, seed uint64) (*Figure, error) {
	f := &Figure{Name: "Table IV: benchmark parameters and characteristics",
		Series: []string{"insts/word", "branches/inst", "ssmc-row-miss", "rate-clock-MHz"}}
	benches := workloads.All()
	mps := make([]RunResult, len(benches))
	scs := make([]RunResult, len(benches))
	err := runJobs(ctx, 2*len(benches), func(i int) error {
		b := benches[i/2]
		records := recordsFor(b, scale)
		if i%2 == 0 {
			r, err := runSeeded(ArchMillipedeRM, b, p, records, seed)
			mps[i/2] = r
			return err
		}
		r, err := runSeeded(ArchSSMC, b, p, records, seed)
		scs[i/2] = r
		return err
	})
	if err != nil {
		return nil, err
	}
	for i, b := range benches {
		f.Rows = append(f.Rows, Row{Bench: b.Name(), Values: map[string]float64{
			"insts/word":     mps[i].InstsPerWord,
			"branches/inst":  mps[i].BranchesPerInst,
			"ssmc-row-miss":  scs[i].RowMissRate,
			"rate-clock-MHz": mps[i].FinalHz / 1e6,
		}})
	}
	return f, nil
}

// TableIII renders the hardware configuration.
func TableIII(p arch.Params) string {
	var b strings.Builder
	w := func(k string, v interface{}) { fmt.Fprintf(&b, "%-46s %v\n", k, v) }
	b.WriteString("Table III: hardware parameters\n")
	w("corelets/lanes/cores per processor/SM", p.Corelets)
	w("multithreading contexts", p.Contexts)
	w("compute clock (MHz)", p.ComputeHz/1e6)
	w("registers per corelet/lane/core", 32)
	w("local memory per corelet (B)", p.LocalBytes)
	w("prefetch buffer per corelet", fmt.Sprintf("%d x 64B", p.PrefetchEntries))
	w("SSMC L1D per core (B)", p.SSMCL1Bytes)
	w("GPGPU L1D per SM (B)", p.GPGPUL1Bytes)
	w("GPGPU shared memory per SM (B)", p.SharedMemBytes)
	w("channel clock (MHz)", p.ChannelHz/1e6)
	w("channel width (bits)", p.DRAM.ChannelBytes*8)
	w("die-stack channels (row-interleaved)", p.Channels)
	w("DRAM tCAS-tRP-tRCD-tRAS", fmt.Sprintf("%d-%d-%d-%d", p.DRAM.TCAS, p.DRAM.TRP, p.DRAM.TRCD, p.DRAM.TRAS))
	w("DRAM row size (B), banks/channel", fmt.Sprintf("%d, %d", p.DRAM.RowBytes, p.DRAM.Banks))
	w("memory controller", fmt.Sprintf("FR-FCFS (%d deep)", p.MemQueueDepth))
	// The capacity-discipline lines appear only when a discipline is
	// configured, so the paper's default table is unchanged.
	if p.StackMode != "" || p.StackBytes > 0 {
		mode := p.StackMode
		if mode == "" {
			mode = string(stack.ModeMemory)
		}
		w("die-stack capacity discipline", mode)
		w("die-stack capacity (B)", p.StackBytes)
		backing := "sized to dataset"
		if p.BackingBytes > 0 {
			backing = fmt.Sprintf("%d", p.BackingBytes)
		}
		w("planar backing capacity (B)", backing)
		lat := p.BackingLatency
		if lat == 0 {
			lat = stack.DefaultBackingLatency
		}
		w("planar backing latency (channel cycles)", lat)
	}
	return b.String()
}

// TableII renders the application-behavior summary.
func TableII() string {
	var b strings.Builder
	b.WriteString("Table II: summary of application behavior\n")
	fmt.Fprintf(&b, "%-10s %-14s %-12s %s\n", "benchmark", "record", "state words", "live state")
	rows := []struct{ name, rec, state string }{
		{"count", "rating (1w)", "dual-band bin counts"},
		{"sample", "rating (1w)", "per-bin count + ring + rejected"},
		{"variance", "rating (1w)", "per-bin count/sum/sumsq"},
		{"nbayes", "year+8 dims", "cond. probabilities + class counts"},
		{"classify", "8-dim point", "per-centroid counts"},
		{"kmeans", "8-dim point", "per-centroid counts + coord sums"},
		{"pca", "12-dim point", "mean + second-moment matrix"},
		{"gda", "label+14 dims", "class counts/means + pooled cov"},
	}
	for _, r := range rows {
		for _, w := range workloads.All() {
			if w.Name() == r.name {
				fmt.Fprintf(&b, "%-10s %-14s %-12d %s\n", r.name, r.rec, w.K.StateWords, r.state)
			}
		}
	}
	return b.String()
}

// SortRowsPaperOrder orders rows in the paper's Table IV order.
func SortRowsPaperOrder(rows []Row) {
	order := map[string]int{}
	for i, b := range workloads.All() {
		order[b.Name()] = i
	}
	sort.Slice(rows, func(i, j int) bool { return order[rows[i].Bench] < order[rows[j].Bench] })
}
