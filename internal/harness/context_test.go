package harness

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/arch"
)

// TestRunExperimentCancelled checks that a cancelled context short-circuits
// the registry before any simulation starts.
func TestRunExperimentCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range []string{"fig3", "ablation", "timeline", "node", "characteristics"} {
		_, err := RunExperiment(ctx, name, arch.Default(), ExpOptions{Scale: testScale})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s with cancelled ctx: got %v, want context.Canceled", name, err)
		}
	}
}

// TestRunJobsCancelMidSweep cancels the context from inside an early job and
// checks that the pool stops claiming work and reports ctx.Err() — the
// "cancelled sweeps return ctx.Err() instead of running to completion"
// contract of the figure generators.
func TestRunJobsCancelMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const n = 512
	var ran int64
	err := runJobs(ctx, n, func(i int) error {
		atomic.AddInt64(&ran, 1)
		if i == 0 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("runJobs: got %v, want context.Canceled", err)
	}
	if got := atomic.LoadInt64(&ran); got >= n {
		t.Fatalf("runJobs ran all %d jobs despite cancellation", got)
	}
}

// TestRunJobsErrorPriority: with an intact context the lowest-indexed job
// error is returned, as before the context plumbing.
func TestRunJobsErrorPriority(t *testing.T) {
	wantErr := errors.New("boom")
	err := runJobs(context.Background(), 8, func(i int) error {
		if i == 3 {
			return wantErr
		}
		return nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("runJobs: got %v, want %v", err, wantErr)
	}
}

// TestFig3Cancelled runs a real figure sweep under an already-cancelled
// context: the sweep must return ctx.Err() without producing a figure.
func TestFig3Cancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	f, err := Fig3(ctx, arch.Default(), testScale, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Fig3: got %v, want context.Canceled", err)
	}
	if f != nil {
		t.Fatalf("Fig3 returned a figure despite cancellation")
	}
}
