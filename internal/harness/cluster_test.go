package harness

import (
	"context"
	"strings"
	"testing"

	"repro/internal/arch"
)

// TestClusterStudySmall runs the full cluster experiment — measured rates,
// streamed Map at ClusterStreamFactor scale, per-node and tree Reduce with
// its built-in flat-reduction check — on a small processor geometry.
func TestClusterStudySmall(t *testing.T) {
	p := arch.Default()
	p.Corelets = 8
	p.Contexts = 2
	p.PrefetchEntries = 8

	fig, text, err := ClusterStudy(context.Background(), p, 0.02, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != len(clusterBenchNames) {
		t.Fatalf("figure has %d rows, want %d", len(fig.Rows), len(clusterBenchNames))
	}
	for _, row := range fig.Rows {
		for _, col := range fig.Series {
			v, ok := row.Values[col]
			if !ok {
				t.Errorf("%s: missing column %q", row.Bench, col)
				continue
			}
			if v <= 0 {
				t.Errorf("%s: %s = %g, want > 0", row.Bench, col, v)
			}
		}
		// Section IV-D's shape: Map dominates the reduces.
		if row.Values["map (ms)"]*1e3 <= row.Values["node-red (us)"] {
			t.Errorf("%s: map (%g ms) does not dominate node reduce (%g us)",
				row.Bench, row.Values["map (ms)"], row.Values["node-red (us)"])
		}
	}
	if !strings.Contains(text, "Extrapolation") {
		t.Error("text lacks the paper-scale extrapolation")
	}
	for _, name := range clusterBenchNames {
		if !strings.Contains(text, name) {
			t.Errorf("extrapolation text lacks benchmark %q", name)
		}
	}
}

// TestClusterStudyCancelled: a pre-cancelled context must abort the study.
func TestClusterStudyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := ClusterStudy(ctx, arch.Default(), 0.02, 0, 0, 0); err == nil {
		t.Fatal("cancelled context did not abort the cluster study")
	}
}
