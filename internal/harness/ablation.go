package harness

import (
	"context"
	"fmt"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/kernels"
	"repro/internal/layout"
	"repro/internal/workloads"
)

// BarrierAblation reproduces the paper's Section IV-C / VI-A discussion of
// software barriers as an alternative to hardware flow control, on the
// count benchmark (the most bandwidth-contested one):
//
//   - millipede:            hardware flow control (the paper's design)
//   - no-flow-control:      neither barriers nor flow control
//   - barrier-every-1:      a software barrier after every record — prevents
//     premature evictions but pushes MIMD toward SIMD-like lockstep
//   - barrier-every-512:    Map-task-granularity barriers (128 rows, far
//     beyond the 16-entry buffer) — "too infrequent to be effective",
//     behaving like no-flow-control
//
// Values are performance normalized to Millipede (higher is better).
func BarrierAblation(ctx context.Context, p arch.Params, scale float64, seed uint64) (*Figure, error) {
	if seed == 0 {
		seed = Seed
	}
	b := workloads.CountBench()
	records := recordsFor(b, scale)
	f := &Figure{
		Name:   "Barrier ablation (count): performance normalized to Millipede's hardware flow control",
		Series: []string{"millipede", "no-flow-control", "barrier-every-1", "barrier-every-512"},
	}
	row := Row{Bench: "count", Values: map[string]float64{}}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	base, err := runSeeded(ArchMillipede, b, p, records, seed)
	if err != nil {
		return nil, err
	}
	row.Values["millipede"] = 1.0
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	nofc, err := runSeeded(ArchMillipedeNoFC, b, p, records, seed)
	if err != nil {
		return nil, err
	}
	row.Values["no-flow-control"] = float64(base.Time) / float64(nofc.Time)

	for _, iv := range []int{1, 512} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		t, err := runBarrierVariant(p, b, iv, records, seed)
		if err != nil {
			return nil, err
		}
		row.Values[fmt.Sprintf("barrier-every-%d", iv)] = float64(base.Time) / float64(t)
	}
	f.Rows = append(f.Rows, row)
	return f, nil
}

// runBarrierVariant runs count-with-barriers on a no-flow-control Millipede
// processor and verifies the result against count's golden reference (the
// barrier must not change results).
func runBarrierVariant(p arch.Params, b *workloads.Benchmark, interval, records int, seed uint64) (int64, error) {
	q := p
	q.FlowControl = false
	k := kernels.CountBarrier(interval)
	lay := layout.Layout{
		RowBytes: q.DRAM.RowBytes, Corelets: q.Corelets, Contexts: q.Contexts,
		Interleave: layout.Slab,
	}
	if err := lay.Validate(); err != nil {
		return 0, err
	}
	sl, err := kernels.LocalState(k, q.LocalBytes, q.Contexts)
	if err != nil {
		return 0, err
	}
	args := kernels.ArgsAndConsts(k, lay.Walk(), sl, records)
	pr, err := core.NewProcessor(q, energy.Default(), core.Launch{
		Prog: k.Prog, Interleave: layout.Slab,
		Sources: b.Sources(q.Threads(), records, seed), Args: args,
	})
	if err != nil {
		return 0, err
	}
	r, err := pr.Run(0)
	if err != nil {
		return 0, err
	}
	got := workloads.ExtractStates(b, sl, lay, pr.ReadState)
	want := b.GoldenStatesStreamed(q.Threads(), records, seed)
	for th := range want {
		for i := range want[th] {
			if got[th][i] != want[th][i] {
				return 0, fmt.Errorf("harness: barrier variant changed results (thread %d word %d)", th, i)
			}
		}
	}
	return int64(r.Time), nil
}

// WarpWidthSweep examines Variable Warp Sizing's design space: the paper
// reports VWS "always chooses 4-wide warps" for BMLAs because their
// 70-/30+ data-dependent branches leave under 25% probability that even 4
// threads agree. The sweep runs the VWS organization at warp widths 4, 8,
// 16, and 32 (32 = one slice, the plain GPGPU front-end) on the branchy
// benchmarks and reports performance normalized to width 32.
func WarpWidthSweep(ctx context.Context, p arch.Params, scale float64, seed uint64) (*Figure, error) {
	widths := []int{4, 8, 16, 32}
	f := &Figure{Name: "VWS warp-width sweep: performance normalized to 32-wide (plain GPGPU front-end)"}
	for _, w := range widths {
		f.Series = append(f.Series, fmt.Sprintf("%d-wide", w))
	}
	for _, name := range []string{"count", "sample", "nbayes", "classify"} {
		b, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		records := recordsFor(b, scale)
		row := Row{Bench: name, Values: map[string]float64{}}
		times := map[int]float64{}
		for _, w := range widths {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			q := p
			q.VWSWarpWidth = w
			r, err := runSeeded(ArchVWS, b, q, records, seed)
			if err != nil {
				return nil, err
			}
			times[w] = float64(r.Time)
		}
		for _, w := range widths {
			row.Values[fmt.Sprintf("%d-wide", w)] = times[32] / times[w]
		}
		f.Rows = append(f.Rows, row)
	}
	f.geomeans()
	return f, nil
}

// ResidencyStudy quantifies Section IV-E's argument: if the host had to
// copy the input into die-stacked memory for every run, BMLAs would become
// host-channel-bound and die-stacking bandwidth would be irrelevant for
// *any* PNM architecture. The study compares one Millipede kernel execution
// against the modeled copy-in over a host channel (PCIe-class bandwidth)
// and reports the break-even reuse count — how many (chained) MapReductions
// must touch resident data before the copy-in amortizes to under 10% —
// the Spark-like residency the paper assumes.
func ResidencyStudy(ctx context.Context, p arch.Params, hostBandwidthGBs float64, scale float64, seed uint64) (*Figure, error) {
	if hostBandwidthGBs <= 0 {
		return nil, fmt.Errorf("harness: bad host bandwidth %g", hostBandwidthGBs)
	}
	f := &Figure{
		Name:   fmt.Sprintf("Residency study (Sec. IV-E): one-time copy-in over a %.0f GB/s host channel", hostBandwidthGBs),
		Series: []string{"kernel-us", "copyin-us", "copyin/kernel", "reuses-for-10pct"},
	}
	for _, name := range []string{"count", "nbayes", "gda"} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		b, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		records := recordsFor(b, scale)
		r, err := runSeeded(ArchMillipede, b, p, records, seed)
		if err != nil {
			return nil, err
		}
		kernelUS := float64(r.Time) / 1e6
		copyUS := float64(r.Words) * 4 / (hostBandwidthGBs * 1e9) * 1e6
		reuses := copyUS / (0.1 * kernelUS)
		if reuses < 1 {
			reuses = 1
		}
		f.Rows = append(f.Rows, Row{Bench: name, Values: map[string]float64{
			"kernel-us":        kernelUS,
			"copyin-us":        copyUS,
			"copyin/kernel":    copyUS / kernelUS,
			"reuses-for-10pct": reuses,
		}})
	}
	return f, nil
}
