package harness

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/workloads"
)

// TestParallelismBitIdentical is the parallel-engine determinism gate: the
// same experiment run serially and with 2 and 8 workers must produce
// byte-identical metric snapshots and identical host-side reduces, for every
// kernel on each cluster-based architecture family. The worker count is a
// simulator-speed knob only; any divergence means a cross-shard effect
// escaped the batch barrier.
func TestParallelismBitIdentical(t *testing.T) {
	p := arch.Default()
	for _, a := range []string{ArchMillipede, ArchMillipedeNoFC, ArchSSMC} {
		for _, b := range workloads.All() {
			ref, refRed, err := RunWith(a, b, p, 32, Options{Parallelism: 1})
			if err != nil {
				t.Fatalf("%s/%s serial: %v", a, b.Name(), err)
			}
			refTxt := ref.Metrics.Render()
			for _, par := range []int{2, 8} {
				got, gotRed, err := RunWith(a, b, p, 32, Options{Parallelism: par})
				if err != nil {
					t.Fatalf("%s/%s par=%d: %v", a, b.Name(), par, err)
				}
				if txt := got.Metrics.Render(); txt != refTxt {
					t.Errorf("%s/%s: snapshot at par=%d differs from serial\n--- serial\n%s--- par=%d\n%s",
						a, b.Name(), par, refTxt, par, txt)
				}
				if len(gotRed) != len(refRed) {
					t.Fatalf("%s/%s par=%d: reduce length %d != %d", a, b.Name(), par, len(gotRed), len(refRed))
				}
				for i := range refRed {
					if gotRed[i] != refRed[i] {
						t.Fatalf("%s/%s par=%d: reduce word %d = %#x, serial %#x",
							a, b.Name(), par, i, gotRed[i], refRed[i])
					}
				}
			}
		}
	}
}

// TestParallelismBarrierProgramsSerial checks that the multi-channel
// configuration — where the memory fabric's harvest phase also shards across
// the pool — stays bit-identical too.
func TestParallelismMultiChannel(t *testing.T) {
	p := arch.Default().WithSize(64) // 2 row-interleaved channels
	b := workloads.CountBench()
	ref, _, err := RunWith(ArchMillipede, b, p, 16, Options{Parallelism: 1})
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	for _, par := range []int{2, 8} {
		got, _, err := RunWith(ArchMillipede, b, p, 16, Options{Parallelism: par})
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		if got.Metrics.Render() != ref.Metrics.Render() {
			t.Errorf("multi-channel snapshot at par=%d differs from serial", par)
		}
	}
}
