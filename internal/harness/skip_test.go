package harness

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/workloads"
)

// TestSkipBitIdentical is the quiescence-skipping determinism gate: every
// architecture x kernel pair run with time skipping (the default) must
// produce a byte-identical metric snapshot, identical cycle/time totals, and
// an identical host-side reduce as the edge-by-edge run (NoSkip). Skipping
// is a simulator-speed knob only; any divergence means a skip window elided
// an edge that could have done work.
func TestSkipBitIdentical(t *testing.T) {
	p := arch.Default()
	archs := append(Architectures(), ArchMulticore)
	for _, a := range archs {
		for _, b := range workloads.All() {
			ref, refRed, err := RunWith(a, b, p, 32, Options{NoSkip: true})
			if err != nil {
				t.Fatalf("%s/%s noskip: %v", a, b.Name(), err)
			}
			got, gotRed, err := RunWith(a, b, p, 32, Options{})
			if err != nil {
				t.Fatalf("%s/%s skip: %v", a, b.Name(), err)
			}
			if got.Time != ref.Time || got.Cycles != ref.Cycles {
				t.Errorf("%s/%s: time/cycles %d/%d with skip, %d/%d without",
					a, b.Name(), got.Time, got.Cycles, ref.Time, ref.Cycles)
			}
			if txt, refTxt := got.Metrics.Render(), ref.Metrics.Render(); txt != refTxt {
				t.Errorf("%s/%s: snapshot with skip differs from edge-by-edge\n--- noskip\n%s--- skip\n%s",
					a, b.Name(), refTxt, txt)
			}
			if len(gotRed) != len(refRed) {
				t.Fatalf("%s/%s: reduce length %d != %d", a, b.Name(), len(gotRed), len(refRed))
			}
			for i := range refRed {
				if gotRed[i] != refRed[i] {
					t.Fatalf("%s/%s: reduce word %d = %#x, edge-by-edge %#x",
						a, b.Name(), i, gotRed[i], refRed[i])
				}
			}
		}
	}
}

// TestSkipParallelBitIdentical crosses the two speed knobs: skipping under
// the 4-worker barrier-batched engine must match the serial edge-by-edge
// run. The pool runs inside component Ticks while skip windows are agreed in
// the serial engine loop between them, so the shards see identical batch
// boundaries by construction — this pins that down.
func TestSkipParallelBitIdentical(t *testing.T) {
	p := arch.Default()
	b := workloads.CountBench()
	for _, a := range []string{ArchMillipede, ArchSSMC} {
		ref, _, err := RunWith(a, b, p, 32, Options{Parallelism: 1, NoSkip: true})
		if err != nil {
			t.Fatalf("%s serial noskip: %v", a, err)
		}
		got, _, err := RunWith(a, b, p, 32, Options{Parallelism: 4})
		if err != nil {
			t.Fatalf("%s par=4 skip: %v", a, err)
		}
		if got.Metrics.Render() != ref.Metrics.Render() {
			t.Errorf("%s: 4-worker skip snapshot differs from serial edge-by-edge", a)
		}
	}
}

// TestSkipPropertyRandomRuns samples random kernel x architecture x seed
// triples (testing/quick drives the selection) and requires byte-identical
// snapshots and tick counts between skip-on and skip-off runs. Random seeds
// exercise data-dependent control flow — different branch patterns, row
// crossings, and stall shapes — far off the golden-path configurations the
// table-driven gate covers.
func TestSkipPropertyRandomRuns(t *testing.T) {
	p := arch.Default()
	archs := append(Architectures(), ArchMulticore)
	all := workloads.All()
	f := func(ai, bi uint8, seed uint32) bool {
		a := archs[int(ai)%len(archs)]
		b := all[int(bi)%len(all)]
		o := Options{Seed: uint64(seed) + 1} // 0 means canonical; stay off it
		ref, _, err := RunWith(a, b, p, 16, Options{Seed: o.Seed, NoSkip: true})
		if err != nil {
			t.Logf("%s/%s seed=%d noskip: %v", a, b.Name(), o.Seed, err)
			return false
		}
		got, _, err := RunWith(a, b, p, 16, o)
		if err != nil {
			t.Logf("%s/%s seed=%d skip: %v", a, b.Name(), o.Seed, err)
			return false
		}
		if got.Cycles != ref.Cycles || got.Time != ref.Time ||
			got.Metrics.Render() != ref.Metrics.Render() {
			t.Logf("%s/%s seed=%d: skip-on diverges from skip-off", a, b.Name(), o.Seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
