// Package harness runs the paper's evaluation (Section VI): one function
// per table and figure, each returning structured rows that cmd/milliexp
// renders and bench_test.go regenerates under `go test -bench`.
//
// Every run is verified against the golden MapReduce reference before its
// timing or energy numbers are accepted, so a performance result can never
// come from a functionally wrong execution.
package harness

import (
	"fmt"
	"math"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/layout"
	"repro/internal/metrics"
	"repro/internal/multicore"
	"repro/internal/sim"
	"repro/internal/simt"
	"repro/internal/ssmc"
	"repro/internal/stack"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Architecture identifiers used across figures.
const (
	ArchMillipede     = "millipede"
	ArchMillipedeNoFC = "millipede-no-flow-control"
	ArchMillipedeRM   = "millipede-rate-match"
	ArchSSMC          = "ssmc"
	ArchGPGPU         = "gpgpu"
	ArchVWS           = "vws"
	ArchVWSRow        = "vws-row"
	ArchMulticore     = "multicore"
)

// Architectures lists the PNM architectures in Figure 3/4 presentation
// order.
func Architectures() []string {
	return []string{ArchGPGPU, ArchVWS, ArchSSMC, ArchMillipedeNoFC, ArchVWSRow, ArchMillipede, ArchMillipedeRM}
}

// RunResult is one {architecture x benchmark} measurement.
type RunResult struct {
	Arch, Bench     string
	Time            sim.Time
	Energy          energy.Breakdown
	Insts           uint64
	Words           uint64
	InstsPerWord    float64
	BranchesPerInst float64
	RowMissRate     float64
	DRAMBytes       uint64
	FinalHz         float64
	// Cycles is the number of compute-clock cycles the model simulated —
	// the numerator of the simulator-throughput metric recorded in
	// BENCH_*.json (simulated cycles per wall-clock second).
	Cycles uint64
	// Memory-controller contention counters, aggregated across channels:
	// ticks with waiting-but-unissuable requests, the deepest queue
	// occupancy seen on any channel, and enqueue attempts bounced off a
	// full queue.
	MemStallCycles  uint64
	MemMaxOccupancy int
	MemRejected     uint64
	// Metrics is the uniform registry snapshot of every component counter,
	// plus run-level ("run.*") and energy ("energy.*") samples the harness
	// adds. Populated by every architecture.
	Metrics metrics.Snapshot
	// Timeline holds the cycle-sampled gauge series when Options.TimelineEvery
	// was set (millipede-family architectures only); nil otherwise.
	Timeline *metrics.Timeline
	// CycleAllocs and CycleBytes count heap allocations made inside the
	// model's cycle loop (zero in steady state by design; benchreport
	// records them per run as the zero-alloc gate).
	CycleAllocs uint64
	CycleBytes  uint64
	// SkippedEdges and SkipWindows report the engine's quiescence
	// fast-forward activity (informational only: results are bit-identical
	// with skipping off).
	SkippedEdges uint64
	SkipWindows  uint64
	// Stack is the die-stacked capacity backend's counter block (hit rate,
	// backing traffic, writebacks); zero (Mode "") on the paper's
	// pass-through machine and on the multicore baseline, which has no die
	// stack at all.
	Stack stack.Stats
}

// setMemStats copies the controller counters out of a processor result.
func (r *RunResult) setMemStats(m core.MemStats) {
	r.MemStallCycles = m.StallCycles
	r.MemMaxOccupancy = m.MaxOccupancy
	r.MemRejected = m.Rejected
}

// Seed is the dataset seed used by all experiments.
const Seed = 20180521 // IPDPS 2018

// Options tunes one run without changing its architecture configuration.
// The zero value reproduces the historical behavior exactly.
type Options struct {
	// Seed overrides the dataset seed; zero means the canonical Seed.
	Seed uint64
	// Trace, when non-nil, receives the event stream of one corelet plus the
	// prefetch buffer and memory fabric (millipede-family architectures
	// only). TraceCorelet selects the traced corelet.
	Trace        *trace.Log
	TraceCorelet int
	// TimelineEvery enables the cycle-domain gauge sampler at the given
	// period (millipede-family architectures only); zero disables it.
	TimelineEvery uint64
	// Parallelism sets the worker count of the barrier-batched parallel
	// cycle engine (arch.Params.Parallelism); 0 keeps the configured value
	// (serial by default). Results are bit-identical for every value — this
	// is a simulator-speed knob, not a model parameter.
	Parallelism int
	// NoSkip disables the engine's quiescence time skipping
	// (arch.Params.NoSkip), forcing edge-by-edge dispatch. Like Parallelism
	// it is a simulator-speed knob: results are bit-identical either way.
	NoSkip bool
}

// WithParallelism returns Options running the parallel cycle engine with n
// workers.
func WithParallelism(n int) Options { return Options{Parallelism: n} }

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return Seed
	}
	return o.Seed
}

// Run executes benchmark b on the named architecture with per-thread record
// count records, verifies the live state against the golden reference, and
// returns the measurement.
func Run(archName string, b *workloads.Benchmark, p arch.Params, records int) (RunResult, error) {
	res, _, err := RunWith(archName, b, p, records, Options{})
	return res, err
}

// RunReduced is Run plus the host-side final Reduce over the verified
// per-thread live states (Section IV-D) — the benchmark's actual output.
func RunReduced(archName string, b *workloads.Benchmark, p arch.Params, records int) (RunResult, []uint32, error) {
	return RunWith(archName, b, p, records, Options{})
}

// runSeeded is Run with a dataset-seed override (zero means the canonical
// Seed); the figure generators thread ExpOptions.Seed through it.
func runSeeded(archName string, b *workloads.Benchmark, p arch.Params, records int, seed uint64) (RunResult, error) {
	res, _, err := RunWith(archName, b, p, records, Options{Seed: seed})
	return res, err
}

// attachMetrics stores the model's registry snapshot on the result after
// adding the run-level ("run.*") and energy ("energy.*") samples, so every
// RunResult carries one uniform snapshot regardless of architecture.
func (r *RunResult) attachMetrics(m metrics.Snapshot) {
	m.Put(metrics.Sample{Name: "run.time_ps", Kind: metrics.Counter, Value: float64(r.Time)})
	m.Put(metrics.Sample{Name: "run.cycles", Kind: metrics.Counter, Value: float64(r.Cycles)})
	m.Put(metrics.Sample{Name: "run.insts", Kind: metrics.Counter, Value: float64(r.Insts)})
	m.Put(metrics.Sample{Name: "run.final_hz", Kind: metrics.Gauge, Value: r.FinalHz})
	m.Put(metrics.Sample{Name: "energy.core_pj", Kind: metrics.Gauge, Value: r.Energy.CorePJ})
	m.Put(metrics.Sample{Name: "energy.dram_pj", Kind: metrics.Gauge, Value: r.Energy.DRAMPJ})
	m.Put(metrics.Sample{Name: "energy.leak_pj", Kind: metrics.Gauge, Value: r.Energy.LeakPJ})
	m.Put(metrics.Sample{Name: "energy.total_pj", Kind: metrics.Gauge, Value: r.Energy.TotalPJ()})
	r.Metrics = m
}

// RunWith is RunReduced with explicit Options (seed override, event trace,
// timeline sampling).
func RunWith(archName string, b *workloads.Benchmark, p arch.Params, records int, o Options) (RunResult, []uint32, error) {
	ep := energy.Default()
	seed := o.seed()
	if o.Parallelism > 0 {
		p.Parallelism = o.Parallelism
	}
	if o.NoSkip {
		p.NoSkip = true
	}
	res := RunResult{Arch: archName, Bench: b.Name()}
	res.Words = uint64(p.Threads()) * uint64(b.StreamWords(records))
	var states [][]uint32

	// The golden reference re-streams each thread's Source through a bounded
	// buffer, so verification (like the launch) never materializes a stream.
	verify := func(sl kernels.StateLayout, lay layout.Layout, read workloads.StateReader) error {
		got := workloads.ExtractStates(b, sl, lay, read)
		states = got
		want := b.GoldenStatesStreamed(p.Threads(), records, seed)
		for th := range want {
			for i := range want[th] {
				if got[th][i] != want[th][i] {
					return fmt.Errorf("harness: %s/%s functional mismatch at thread %d word %d",
						archName, b.Name(), th, i)
				}
			}
		}
		return nil
	}

	fail := func(err error) (RunResult, []uint32, error) { return res, nil, err }
	switch archName {
	case ArchMillipede, ArchMillipedeNoFC, ArchMillipedeRM:
		q := p
		q.FlowControl = archName != ArchMillipedeNoFC
		q.RateMatch = archName == ArchMillipedeRM
		l, lay, sl, err := buildLaunch(b, q, layout.Slab, records, seed, false)
		if err != nil {
			return fail(err)
		}
		pr, err := core.NewProcessor(q, ep, l)
		if err != nil {
			return fail(err)
		}
		if o.Trace != nil {
			pr.EnableTrace(o.Trace, o.TraceCorelet)
		}
		if o.TimelineEvery > 0 {
			pr.EnableTimeline(o.TimelineEvery)
		}
		r, err := pr.Run(0)
		if err != nil {
			return fail(err)
		}
		if err := verify(sl, lay, pr.ReadState); err != nil {
			return fail(err)
		}
		res.Time, res.Energy, res.FinalHz = r.Time, r.Energy, r.FinalHz
		res.Insts = r.Cores.Instructions
		res.Cycles = r.ComputeCycles
		res.BranchesPerInst = ratio(r.Cores.CondBranches, r.Cores.Instructions)
		res.RowMissRate = r.DRAM.RowMissRate()
		res.DRAMBytes = r.DRAM.BytesRead
		res.setMemStats(r.Mem)
		res.Stack = r.Stack
		res.CycleAllocs, res.CycleBytes = r.Allocs, r.AllocBytes
		res.SkippedEdges, res.SkipWindows = r.SkippedEdges, r.SkipWindows
		res.Timeline = r.Timeline
		res.attachMetrics(r.Metrics)

	case ArchSSMC:
		l, lay, sl, err := buildLaunch(b, p, layout.Slab, records, seed, false)
		if err != nil {
			return fail(err)
		}
		pr, err := ssmc.NewProcessor(p, ep, l)
		if err != nil {
			return fail(err)
		}
		r, err := pr.Run(0)
		if err != nil {
			return fail(err)
		}
		if err := verify(sl, lay, pr.ReadState); err != nil {
			return fail(err)
		}
		res.Time, res.Energy, res.FinalHz = r.Time, r.Energy, p.ComputeHz
		res.Insts = r.Cores.Instructions
		res.Cycles = r.ComputeCycles
		res.BranchesPerInst = ratio(r.Cores.CondBranches, r.Cores.Instructions)
		res.RowMissRate = r.DRAM.RowMissRate()
		res.DRAMBytes = r.DRAM.BytesRead
		res.setMemStats(r.Mem)
		res.Stack = r.Stack
		res.CycleAllocs, res.CycleBytes = r.Allocs, r.AllocBytes
		res.SkippedEdges, res.SkipWindows = r.SkippedEdges, r.SkipWindows
		res.attachMetrics(r.Metrics)

	case ArchGPGPU, ArchVWS, ArchVWSRow:
		v := simt.GPGPU
		if archName == ArchVWS {
			v = simt.VWS
		} else if archName == ArchVWSRow {
			v = simt.VWSRow
		}
		l, lay, sl, err := buildLaunch(b, p, layout.Word, records, seed, true)
		if err != nil {
			return fail(err)
		}
		m, err := simt.NewSM(p, ep, v, l)
		if err != nil {
			return fail(err)
		}
		r, err := m.Run(0)
		if err != nil {
			return fail(err)
		}
		if err := verify(sl, lay, m.ReadShared); err != nil {
			return fail(err)
		}
		res.Time, res.Energy, res.FinalHz = r.Time, r.Energy, p.ComputeHz
		res.Insts = r.SM.ThreadInsts
		res.Cycles = r.ComputeCycles
		res.BranchesPerInst = ratio(r.SM.CondBranches, r.SM.ThreadInsts)
		res.RowMissRate = r.DRAM.RowMissRate()
		res.DRAMBytes = r.DRAM.BytesRead
		res.setMemStats(r.Mem)
		res.Stack = r.Stack
		res.CycleAllocs, res.CycleBytes = r.Allocs, r.AllocBytes
		res.SkippedEdges, res.SkipWindows = r.SkippedEdges, r.SkipWindows
		res.attachMetrics(r.Metrics)

	case ArchMulticore:
		c := multicore.DefaultConfig()
		c.NoSkip = p.NoSkip
		// Same total input as a p-geometry PNM run: the node comparison
		// (Figure 5) scales per-processor results by the processor count.
		mcRecords := records * p.Threads() / c.Threads()
		lay := layout.Layout{
			RowBytes: c.DRAM.RowBytes, Corelets: c.Cores, Contexts: c.SMT,
			Interleave: layout.Split, StreamWords: b.StreamWords(mcRecords),
		}
		if err := lay.Validate(); err != nil {
			return fail(err)
		}
		sl, err := kernels.LocalState(b.K, c.LocalBytes, c.SMT)
		if err != nil {
			return fail(err)
		}
		args := kernels.ArgsAndConsts(b.K, lay.Walk(), sl, mcRecords)
		l := core.Launch{Prog: b.K.Prog, Interleave: layout.Split,
			Sources: b.Sources(c.Threads(), mcRecords, seed), Args: args}
		s, err := multicore.New(c, ep, l)
		if err != nil {
			return fail(err)
		}
		r, err := s.Run(0)
		if err != nil {
			return fail(err)
		}
		got := workloads.ExtractStates(b, sl, lay, s.ReadState)
		want := b.GoldenStatesStreamed(c.Threads(), mcRecords, seed)
		for th := range want {
			for i := range want[th] {
				if got[th][i] != want[th][i] {
					return fail(fmt.Errorf("harness: multicore/%s functional mismatch", b.Name()))
				}
			}
		}
		states = got
		res.Time, res.Energy, res.FinalHz = r.Time, r.Energy, c.ClockHz
		res.Insts = r.Cores.Instructions
		res.Cycles = r.ComputeCycles
		res.BranchesPerInst = ratio(r.Cores.CondBranches, r.Cores.Instructions)
		res.RowMissRate = r.DRAM.RowMissRate()
		res.DRAMBytes = r.DRAM.BytesRead
		res.setMemStats(r.Mem)
		res.CycleAllocs, res.CycleBytes = r.Allocs, r.AllocBytes
		res.SkippedEdges, res.SkipWindows = r.SkippedEdges, r.SkipWindows
		res.Words = uint64(c.Threads()) * uint64(b.StreamWords(mcRecords))
		res.attachMetrics(r.Metrics)

	default:
		return fail(fmt.Errorf("harness: unknown architecture %q", archName))
	}

	res.InstsPerWord = float64(res.Insts) / float64(res.Words)
	return res, b.Reduce(states), nil
}

// buildLaunch assembles a launch whose input is per-thread streaming
// Sources: the dataset is generated into the DRAM image through bounded
// buffers at processor-construction time and never exists as Go slices.
func buildLaunch(b *workloads.Benchmark, p arch.Params, il layout.Interleave, records int, seed uint64, shared bool) (core.Launch, layout.Layout, kernels.StateLayout, error) {
	lay := layout.Layout{
		RowBytes: p.DRAM.RowBytes, Corelets: p.Corelets, Contexts: p.Contexts,
		Interleave: il, StreamWords: b.StreamWords(records),
	}
	if err := lay.Validate(); err != nil {
		return core.Launch{}, lay, kernels.StateLayout{}, err
	}
	var sl kernels.StateLayout
	var err error
	if shared {
		sl, err = kernels.SharedState(b.K, p.SharedMemBytes, p.Corelets, p.Contexts)
	} else {
		sl, err = kernels.LocalState(b.K, p.LocalBytes, p.Contexts)
	}
	if err != nil {
		return core.Launch{}, lay, sl, err
	}
	args := kernels.ArgsAndConsts(b.K, lay.Walk(), sl, records)
	l := core.Launch{Prog: b.K.Prog, Interleave: il,
		Sources: b.Sources(p.Threads(), records, seed), Args: args}
	return l, lay, sl, nil
}

func ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// baseLanes is the paper's reference lane/corelet count (Table III); the
// system-size study (Figure 6) scales per-thread records relative to it so
// total input stays constant across sizes.
const baseLanes = 32

// RecordsFor returns the per-thread record count for benchmark b at the
// given input scale. Scale multiplies every benchmark's DefaultRecords;
// tests use small scales and cmd/milliexp uses >= 1.
func RecordsFor(b *workloads.Benchmark, scale float64) int {
	return recordsForSize(b, scale, baseLanes)
}

// recordsForSize is RecordsFor for a processor with lanes corelets/lanes:
// per-thread records shrink proportionally so the total input matches the
// 32-lane configuration. The minimum-records floor is applied after the
// size scaling — applying it before (as Fig6 once did by scaling
// RecordsFor's result) silently produced fewer than 4 records per thread
// at 64 lanes and small scales.
func recordsForSize(b *workloads.Benchmark, scale float64, lanes int) int {
	r := int(float64(b.DefaultRecords)*scale) * baseLanes / lanes
	if r < 4 {
		r = 4
	}
	return r
}

// recordsFor is the unexported alias used throughout the harness.
func recordsFor(b *workloads.Benchmark, scale float64) int {
	return RecordsFor(b, scale)
}

// RateTrace runs a benchmark on rate-matched Millipede and returns the DFS
// controller's clock trajectory alongside the measurement.
func RateTrace(b *workloads.Benchmark, p arch.Params, records int) ([]core.DFSSample, RunResult, error) {
	q := p
	q.RateMatch = true
	l, lay, sl, err := buildLaunch(b, q, layout.Slab, records, Seed, false)
	if err != nil {
		return nil, RunResult{}, err
	}
	pr, err := core.NewProcessor(q, energy.Default(), l)
	if err != nil {
		return nil, RunResult{}, err
	}
	r, err := pr.Run(0)
	if err != nil {
		return nil, RunResult{}, err
	}
	got := workloads.ExtractStates(b, sl, lay, pr.ReadState)
	want := b.GoldenStatesStreamed(q.Threads(), records, Seed)
	for th := range want {
		for i := range want[th] {
			if got[th][i] != want[th][i] {
				return nil, RunResult{}, fmt.Errorf("harness: rate-trace functional mismatch")
			}
		}
	}
	res := RunResult{
		Arch: ArchMillipedeRM, Bench: b.Name(), Time: r.Time, Energy: r.Energy,
		Insts: r.Cores.Instructions, Words: uint64(q.Threads()) * uint64(b.StreamWords(records)),
		FinalHz: r.FinalHz,
	}
	return pr.DFSTrace(), res, nil
}

// KMeansIteration runs one k-means MapReduction on Millipede with the given
// centroids and returns the next centroids (coordinate sums divided by
// counts; empty clusters keep their centroid) plus the verified run result.
// Chaining calls implements full iterative k-means over the resident
// dataset — the paper's "full application" framing.
func KMeansIteration(p arch.Params, cents [][]float32, records int) ([][]float32, RunResult, error) {
	b := workloads.KMeansBenchWith(cents)
	res, out, err := RunReduced(ArchMillipede, b, p, records)
	if err != nil {
		return nil, res, err
	}
	k, dims := len(cents), len(cents[0])
	next := make([][]float32, k)
	for c := 0; c < k; c++ {
		next[c] = make([]float32, dims)
		n := out[c]
		for d := 0; d < dims; d++ {
			if n == 0 {
				next[c][d] = cents[c][d]
				continue
			}
			next[c][d] = isa.F32(out[k+c*dims+d]) / float32(n)
		}
	}
	return next, res, nil
}

// CentroidShift returns the mean Euclidean distance between two centroid
// sets (the k-means convergence measure).
func CentroidShift(a, b [][]float32) float64 {
	var sum float64
	for c := range a {
		var d2 float64
		for d := range a[c] {
			diff := float64(a[c][d] - b[c][d])
			d2 += diff * diff
		}
		sum += math.Sqrt(d2)
	}
	return sum / float64(len(a))
}
