package harness

import (
	"context"
	"testing"

	"repro/internal/arch"
	"repro/internal/workloads"
)

// TestMultiChannelGoldenEquivalence runs every benchmark on the port-speaking
// architectures with 2- and 4-channel fabrics. Run verifies each execution
// against the golden MapReduce reference, and the host-side Reduce output
// must be bit-identical to the single-channel run: channel count is a timing
// knob, never a functional one.
func TestMultiChannelGoldenEquivalence(t *testing.T) {
	archs := []string{ArchMillipede, ArchSSMC, ArchGPGPU}
	benches := workloads.All()
	type job struct {
		a string
		b *workloads.Benchmark
	}
	var jobs []job
	for _, a := range archs {
		for _, b := range benches {
			jobs = append(jobs, job{a, b})
		}
	}
	err := runJobs(context.Background(), len(jobs), func(i int) error {
		j := jobs[i]
		records := recordsFor(j.b, testScale)
		var baseline []uint32
		for _, ch := range []int{1, 2, 4} {
			p := arch.Default()
			p.Channels = ch
			_, reduced, err := RunReduced(j.a, j.b, p, records)
			if err != nil {
				t.Errorf("%s/%s @ %d channels: %v", j.a, j.b.Name(), ch, err)
				return nil
			}
			if ch == 1 {
				baseline = reduced
				continue
			}
			if len(reduced) != len(baseline) {
				t.Errorf("%s/%s @ %d channels: reduce length %d != %d",
					j.a, j.b.Name(), ch, len(reduced), len(baseline))
				return nil
			}
			for k := range reduced {
				if reduced[k] != baseline[k] {
					t.Errorf("%s/%s @ %d channels: reduce word %d differs",
						j.a, j.b.Name(), ch, k)
					return nil
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestChannelSweepShape(t *testing.T) {
	f, err := ChannelSweep(context.Background(), arch.Default(), testScale, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) != len(workloads.All()) {
		t.Fatalf("rows = %d", len(f.Rows))
	}
	vals := map[string]map[string]float64{}
	for _, r := range f.Rows {
		vals[r.Bench] = r.Values
	}
	for b, v := range vals {
		if v["1-ch"] != 1.0 {
			t.Errorf("%s: 1-channel baseline not 1.0: %v", b, v["1-ch"])
		}
		// Extra channels add bandwidth; they must never slow a kernel down.
		if v["2-ch"] < 1.0 || v["4-ch"] < 1.0 {
			t.Errorf("%s: extra channels lost performance: %v", b, v)
		}
	}
	// The memory-bound streaming kernels gain more from channel bandwidth
	// than the compute-bound ones (paper §VI-B: count/sample saturate the
	// single channel, kmeans/gda are FLOP-limited).
	memBound := (vals["count"]["4-ch"] + vals["sample"]["4-ch"]) / 2
	cpuBound := (vals["kmeans"]["4-ch"] + vals["gda"]["4-ch"]) / 2
	if memBound < cpuBound*1.2 {
		t.Errorf("memory-bound kernels gained %.3f, not clearly above compute-bound %.3f", memBound, cpuBound)
	}
}
