package harness

import (
	"runtime/debug"
	"testing"

	"repro/internal/arch"
	"repro/internal/workloads"
)

// TestCycleLoopAllocFree is the zero-allocation gate for the cycle engine:
// after one warm-up run (which populates the freelists and grows every
// pre-sized buffer to its steady-state footprint), a second run of the same
// experiment must make zero heap allocations inside the cycle loop, for
// every kernel on every cluster/SIMT architecture. The counter comes from
// runtime.MemStats deltas around arch.Node.Run (see Node.RunAllocs), which
// counts every goroutine — so GC is paused during the measured run to keep
// runtime background work out of the ledger.
//
// A failure here means a hot-path allocation crept back in; find it with
//
//	go test ./internal/harness -run TestCycleLoopAllocFree \
//	    -memprofile mem.out -memprofilerate=1
//	go tool pprof -list <func> harness.test mem.out
func TestCycleLoopAllocFree(t *testing.T) {
	archs := []string{
		ArchMillipede, ArchMillipedeNoFC, ArchMillipedeRM,
		ArchSSMC, ArchGPGPU, ArchVWS, ArchVWSRow, ArchMulticore,
	}
	p := arch.Default()
	for _, a := range archs {
		for _, b := range workloads.All() {
			if _, err := Run(a, b, p, 128); err != nil {
				t.Fatalf("%s/%s warm-up: %v", a, b.Name(), err)
			}
			gc := debug.SetGCPercent(-1)
			r, err := Run(a, b, p, 128)
			debug.SetGCPercent(gc)
			if err != nil {
				t.Fatalf("%s/%s: %v", a, b.Name(), err)
			}
			if r.CycleAllocs != 0 {
				t.Errorf("%s/%s: %d heap allocations (%d bytes) in the cycle loop, want 0",
					a, b.Name(), r.CycleAllocs, r.CycleBytes)
			}
		}
	}
}
