package harness

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/arch"
	"repro/internal/stack"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// CapacityRatios are the nominal dataset-to-stack capacity ratios swept by
// the capacity study. Below 1.0 the dataset fits entirely in the stack;
// above it, an increasing fraction must live in the planar backing store.
var CapacityRatios = []float64{0.5, 1, 2, 4, 8}

// capacityModes is the presentation order of the three disciplines.
var capacityModes = []string{
	string(stack.ModeMemory),
	string(stack.ModeHWCache),
	string(stack.ModeMemCache),
}

// CapacityStudy asks the question the paper sidesteps by construction: what
// happens when the dataset does NOT fit in the die stack? Following
// Bakhshalipour et al.'s taxonomy, it runs every BMLA kernel on Millipede
// under the three capacity disciplines (stack-as-part-of-memory,
// stack-as-hardware-cache, stack-as-memcache) with the stack sized to each
// of CapacityRatios. Rows are bench@ratio, series are the modes, values are
// throughput in simulated Mwords/s; the text is the per-ratio geomean
// comparison with the winning discipline.
//
// Ratios are nominal: the stack size is derived from the kernel's streamed
// dataset size (threads x stream words x 4 B, row-rounded) and then rounded
// up to the HWCache set granule so all three modes see identical capacity.
func CapacityStudy(ctx context.Context, p arch.Params, scale float64, seed uint64) (*Figure, string, error) {
	benches := workloads.All()
	type job struct {
		b          *workloads.Benchmark
		ratio      float64
		mode       string
		records    int
		stackBytes int
	}
	var jobsL []job
	// The set granule keeps hwcache geometry exact (an integral number of
	// full sets) and is shared by all modes so capacities stay comparable.
	granule := stack.DefaultAssoc * p.DRAM.RowBytes
	for _, b := range benches {
		records := recordsFor(b, scale)
		datasetBytes := p.Threads() * b.StreamWords(records) * 4
		if r := datasetBytes % p.DRAM.RowBytes; r != 0 {
			datasetBytes += p.DRAM.RowBytes - r
		}
		for _, ratio := range CapacityRatios {
			sb := int(float64(datasetBytes) / ratio)
			if r := sb % granule; r != 0 {
				sb += granule - r
			}
			if sb < granule {
				sb = granule
			}
			for _, mode := range capacityModes {
				jobsL = append(jobsL, job{b: b, ratio: ratio, mode: mode,
					records: records, stackBytes: sb})
			}
		}
	}
	res := make([]RunResult, len(jobsL))
	err := runJobs(ctx, len(jobsL), func(i int) error {
		j := jobsL[i]
		q := p
		q.StackMode = j.mode
		q.StackBytes = j.stackBytes
		r, err := runSeeded(ArchMillipede, j.b, q, j.records, seed)
		if err != nil {
			return fmt.Errorf("capacity %s/%s@%gx: %w", j.mode, j.b.Name(), j.ratio, err)
		}
		res[i] = r
		return nil
	})
	if err != nil {
		return nil, "", err
	}

	fig := &Figure{
		Name:   "Capacity study: stack as memory / hwcache / memcache (Mwords/s, rows are bench@dataset-to-stack ratio)",
		Series: capacityModes,
	}
	rowOf := map[string]int{}
	perRatio := map[float64]map[string][]float64{} // ratio -> mode -> Mwords/s
	hitOf := map[float64]map[string][]float64{}    // ratio -> mode -> hit rate
	for i, j := range jobsL {
		label := fmt.Sprintf("%s@%gx", j.b.Name(), j.ratio)
		ri, ok := rowOf[label]
		if !ok {
			ri = len(fig.Rows)
			rowOf[label] = ri
			fig.Rows = append(fig.Rows, Row{Bench: label, Values: map[string]float64{}})
		}
		mw := float64(res[i].Words) / (float64(res[i].Time) / 1e12) / 1e6
		fig.Rows[ri].Values[j.mode] = mw
		if perRatio[j.ratio] == nil {
			perRatio[j.ratio] = map[string][]float64{}
			hitOf[j.ratio] = map[string][]float64{}
		}
		perRatio[j.ratio][j.mode] = append(perRatio[j.ratio][j.mode], mw)
		hr := 1.0 // pass-through: everything is stack-resident
		if s := res[i].Stack; s.Mode != "" {
			hr = s.HitRate()
		}
		hitOf[j.ratio][j.mode] = append(hitOf[j.ratio][j.mode], hr)
	}
	fig.geomeans()

	var sb strings.Builder
	sb.WriteString("Per-ratio geomean throughput (Mwords/s) across all kernels:\n")
	sb.WriteString(fmt.Sprintf("  %-8s %12s %12s %12s %12s\n", "ratio", "memory", "hwcache", "memcache", "best"))
	for _, ratio := range CapacityRatios {
		best, bestV := "", 0.0
		gm := map[string]float64{}
		for _, mode := range capacityModes {
			gm[mode] = stats.Geomean(perRatio[ratio][mode])
			if gm[mode] > bestV {
				best, bestV = mode, gm[mode]
			}
		}
		sb.WriteString(fmt.Sprintf("  %-8s %12.3f %12.3f %12.3f %12s\n",
			fmt.Sprintf("%gx", ratio),
			gm[string(stack.ModeMemory)], gm[string(stack.ModeHWCache)],
			gm[string(stack.ModeMemCache)], best))
	}
	sb.WriteString("Mean stack hit rate by ratio (memory / hwcache / memcache):\n")
	for _, ratio := range CapacityRatios {
		m := func(mode string) float64 {
			vs := hitOf[ratio][mode]
			var t float64
			for _, v := range vs {
				t += v
			}
			return t / float64(len(vs))
		}
		sb.WriteString(fmt.Sprintf("  %-8s %.3f / %.3f / %.3f\n", fmt.Sprintf("%gx", ratio),
			m(string(stack.ModeMemory)), m(string(stack.ModeHWCache)), m(string(stack.ModeMemCache))))
	}
	sb.WriteString(capacityVerdict(perRatio))
	return fig, sb.String(), nil
}

// capacityVerdict summarizes the discipline ranking and any crossover
// between the two caching disciplines across the swept ratios.
func capacityVerdict(perRatio map[float64]map[string][]float64) string {
	var sb strings.Builder
	prevBest := ""
	for _, ratio := range CapacityRatios {
		best, bestV := "", 0.0
		for _, mode := range capacityModes {
			if g := stats.Geomean(perRatio[ratio][mode]); g > bestV {
				best, bestV = mode, g
			}
		}
		if prevBest != "" && best != prevBest {
			sb.WriteString(fmt.Sprintf("Crossover: best discipline flips from %s to %s at ratio %gx.\n",
				prevBest, best, ratio))
		}
		prevBest = best
	}
	if sb.Len() == 0 {
		sb.WriteString(fmt.Sprintf("No overall crossover: %s wins at every swept ratio "+
			"(single-pass BMLA streams have no reuse for a cache to exploit).\n", prevBest))
	}
	return sb.String()
}
