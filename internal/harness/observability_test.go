package harness

import (
	"context"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/workloads"
)

// TestMetricsDeterminism is the observability-layer determinism gate: two
// identical runs must produce byte-identical metric snapshots for every
// kernel on each of the three main architecture families. Any nondeterminism
// introduced by the metrics layer (map iteration, timing perturbation from
// probes) shows up here immediately.
func TestMetricsDeterminism(t *testing.T) {
	p := arch.Default()
	for _, a := range []string{ArchMillipede, ArchSSMC, ArchGPGPU} {
		for _, b := range workloads.All() {
			r1, err := Run(a, b, p, 32)
			if err != nil {
				t.Fatalf("%s/%s: %v", a, b.Name(), err)
			}
			r2, err := Run(a, b, p, 32)
			if err != nil {
				t.Fatalf("%s/%s rerun: %v", a, b.Name(), err)
			}
			t1, t2 := r1.Metrics.Render(), r2.Metrics.Render()
			if t1 != t2 {
				t.Errorf("%s/%s: metric snapshots differ between identical runs\n--- run 1\n%s--- run 2\n%s",
					a, b.Name(), t1, t2)
			}
			j1, err := r1.Metrics.JSON()
			if err != nil {
				t.Fatalf("%s/%s: %v", a, b.Name(), err)
			}
			j2, _ := r2.Metrics.JSON()
			if string(j1) != string(j2) {
				t.Errorf("%s/%s: JSON snapshots differ between identical runs", a, b.Name())
			}
		}
	}
}

// TestMetricsPresence checks each architecture family registers the metric
// namespaces its components own, and that the run-level summary rows the
// harness injects are always present.
func TestMetricsPresence(t *testing.T) {
	p := arch.Default()
	b := workloads.CountBench()
	cases := []struct {
		arch string
		want []string
	}{
		{ArchMillipede, []string{"core.cycles", "corelet.instructions", "prefetch.prefetches", "mem.issued", "dram.requests"}},
		{ArchMillipedeRM, []string{"dfs.clock_hz", "dfs.steps_down"}},
		{ArchSSMC, []string{"cache.hits", "corelet.instructions", "dram.row_misses"}},
		{ArchGPGPU, []string{"simt.warp_insts", "cache.hits", "mem.stall_cycles"}},
		{ArchMulticore, []string{"l1.hits", "l2.hits", "corelet.instructions"}},
	}
	for _, c := range cases {
		res, err := Run(c.arch, b, p, 64)
		if err != nil {
			t.Fatalf("%s: %v", c.arch, err)
		}
		for _, name := range append([]string{"run.cycles", "run.insts", "run.time_ps", "energy.total_pj"}, c.want...) {
			if _, ok := res.Metrics.Get(name); !ok {
				t.Errorf("%s: metric %q missing from snapshot:\n%s", c.arch, name, res.Metrics.Render())
			}
		}
		if res.Metrics.Value("run.insts") != float64(res.Insts) {
			t.Errorf("%s: run.insts %v != result insts %d", c.arch, res.Metrics.Value("run.insts"), res.Insts)
		}
		if res.Metrics.Value("core.cycles") == 0 {
			t.Errorf("%s: core.cycles is zero", c.arch)
		}
	}
}

// TestRunWithTimeline verifies the cycle-domain sampler: strictly increasing
// aligned sample cycles and one value per registered probe.
func TestRunWithTimeline(t *testing.T) {
	p := arch.Default()
	b := workloads.CountBench()
	res, _, err := RunWith(ArchMillipedeRM, b, p, 256, Options{TimelineEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	tl := res.Timeline
	if tl == nil || tl.Len() == 0 {
		t.Fatal("timeline missing or empty")
	}
	names := tl.Names()
	for _, want := range []string{"prefetch-occupancy", "row-hit-rate", "queue-depth", "clock-mhz"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("timeline probe %q missing (have %v)", want, names)
		}
	}
	pts := tl.Points()
	for i, pt := range pts {
		if len(pt.Values) != len(names) {
			t.Fatalf("point %d has %d values for %d probes", i, len(pt.Values), len(names))
		}
		if pt.Cycle%tl.Every() != 0 {
			t.Errorf("point %d at cycle %d not aligned to %d", i, pt.Cycle, tl.Every())
		}
		if i > 0 && pt.Cycle <= pts[i-1].Cycle {
			t.Errorf("timeline cycles not strictly increasing at point %d", i)
		}
	}
	// Without the option, no sampler is attached and the hot loop stays bare.
	plain, _, err := RunWith(ArchMillipedeRM, b, p, 256, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Timeline != nil {
		t.Error("timeline attached without TimelineEvery option")
	}
	// Observability must not perturb the simulation.
	if plain.Time != res.Time || plain.Insts != res.Insts {
		t.Errorf("timeline sampling changed the run: time %d vs %d, insts %d vs %d",
			res.Time, plain.Time, res.Insts, plain.Insts)
	}
}

// TestTimelineStudyRenders exercises the registered timeline experiment
// end to end at a tiny scale.
func TestTimelineStudyRenders(t *testing.T) {
	fig, err := TimelineStudy(context.Background(), arch.Default(), 0.02, 256, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) == 0 {
		t.Fatal("timeline figure has no rows")
	}
	out := fig.Render()
	for _, want := range []string{"prefetch-occupancy", "clock-mhz", "@"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered timeline missing %q:\n%s", want, out)
		}
	}
}

// TestRunExperimentRegistry checks registry lookups and that every
// registered experiment is listed with a description.
func TestRunExperimentRegistry(t *testing.T) {
	infos := Experiments()
	if len(infos) < 14 {
		t.Fatalf("only %d experiments registered", len(infos))
	}
	seen := map[string]bool{}
	for _, e := range infos {
		if e.Name == "" || e.Description == "" {
			t.Errorf("experiment %+v missing name or description", e)
		}
		if seen[e.Name] {
			t.Errorf("duplicate experiment %q", e.Name)
		}
		seen[e.Name] = true
	}
	for _, want := range []string{"fig3", "fig4", "table2", "table3", "table4", "timeline", "node", "residency"} {
		if !seen[want] {
			t.Errorf("experiment %q not registered", want)
		}
	}
	if _, err := RunExperiment(context.Background(), "nope", arch.Default(), ExpOptions{}); err == nil {
		t.Error("unknown experiment accepted")
	}
	res, err := RunExperiment(context.Background(), "table2", arch.Default(), ExpOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Render(), "ISA") && res.Render() == "" {
		t.Errorf("table2 rendered empty")
	}
}
