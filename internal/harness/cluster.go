package harness

import (
	"context"
	"fmt"
	"runtime"
	"strings"

	"repro/internal/arch"
	"repro/internal/cluster"
	"repro/internal/isa"
	"repro/internal/mapreduce"
	"repro/internal/node"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// Cluster experiment geometry (Section IV-D). The study actually executes
// the full MapReduction — Map over every streamed record, per-node Reduce,
// tree Reduce — for ClusterNodes node shards, and then presents the
// measured per-processor rates through the paper's 5000-node example as an
// explicitly labeled extrapolation.
const (
	// ClusterNodes is the number of single-processor node shards whose Map
	// phases are simulated and whose datasets are streamed end to end.
	ClusterNodes = 4
	// ClusterStreamFactor multiplies the benchmark's default record count:
	// the cluster dataset is ClusterStreamFactor x the default per-processor
	// input, sharded across ClusterNodes nodes. 128 keeps the acceptance
	// floor (>= 100x) with a per-node Map of millions of words.
	ClusterStreamFactor = 128
)

// clusterBenchNames is the benchmark subset the cluster study runs: the
// cheapest and the three most expensive per-word kernels (Table IV order),
// covering integer-only and float32-heavy Reduce semantics.
var clusterBenchNames = []string{"count", "nbayes", "kmeans", "gda"}

// clusterPhases scales a measured per-processor rate through the network
// model for a cluster of nodes with procsPerNode processors per node, each
// processor mapping wordsPerProc input words.
func clusterPhases(nodes, procsPerNode int, rate float64, wordsPerProc int64, b *workloads.Benchmark, threads int) (cluster.Phases, error) {
	cfg := cluster.DefaultConfig()
	cfg.Nodes = nodes
	cfg.ProcessorsPerNode = procsPerNode
	return cluster.Estimate(cfg, rate, wordsPerProc*int64(procsPerNode), b.K.StateWords, threads)
}

// clusterMap executes the Map phase over the full-scale dataset: every
// (processor shard, thread) Source is streamed through the golden
// per-record Fold on a fixed worker pool (the deterministic parallel
// engine's pool), through bounded chunk buffers — memory stays constant in
// the record count. States land in disjoint slots, so the result is
// independent of the worker count.
func clusterMap(b *workloads.Benchmark, shards, threads, records int, seed uint64) [][][]uint32 {
	states := make([][][]uint32, shards)
	for si := range states {
		states[si] = make([][]uint32, threads)
	}
	total := shards * threads
	workers := runtime.GOMAXPROCS(0)
	if workers > total {
		workers = total
	}
	pool := sim.NewPool(workers)
	defer pool.Close()
	pool.Run(func(shard int) {
		for g := shard; g < total; g += workers {
			si, t := g/threads, g%threads
			src := b.Source(node.ShardSeed(seed, si), t, records)
			states[si][t] = b.GoldenSource(src)
		}
	})
	return states
}

// treeReduce merges node partial states pairwise in ceil(log2(n)) rounds —
// the shape of the cross-cluster network Reduce.
func treeReduce(job mapreduce.Job[[]uint32, []uint32], nodeStates [][]uint32) []uint32 {
	cur := nodeStates
	for len(cur) > 1 {
		next := make([][]uint32, 0, (len(cur)+1)/2)
		for i := 0; i < len(cur); i += 2 {
			merged := job.NewState()
			job.Merge(merged, cur[i])
			if i+1 < len(cur) {
				job.Merge(merged, cur[i+1])
			}
			next = append(next, merged)
		}
		cur = next
	}
	return cur[0]
}

// f32at reads state word i as the float32 it encodes.
func f32at(s []uint32, i int) float32 { return isa.F32(s[i]) }

// checkTreeVsFlat verifies the tree Reduce against the flat left-to-right
// reduction: integer-reduced words must match exactly; float32 words may
// differ by association order, so they are held to a tight relative bound.
func checkTreeVsFlat(b *workloads.Benchmark, tree, flat []uint32) error {
	for i := range flat {
		switch b.ReduceSpec[i] {
		case workloads.KindInt:
			if tree[i] != flat[i] {
				return fmt.Errorf("cluster %s: tree reduce int mismatch at word %d: %d != %d",
					b.Name(), i, tree[i], flat[i])
			}
		case workloads.KindF32:
			tv, fv := f32at(tree, i), f32at(flat, i)
			diff := tv - fv
			if diff < 0 {
				diff = -diff
			}
			mag := fv
			if mag < 0 {
				mag = -mag
			}
			if diff > 1e-3*(mag+1) {
				return fmt.Errorf("cluster %s: tree reduce f32 divergence at word %d: %g vs %g",
					b.Name(), i, tv, fv)
			}
		}
	}
	return nil
}

// ClusterStudy runs the cluster-scale MapReduce experiment: for each
// benchmark it (1) measures the per-processor Map rate from cycle-level
// simulations of every node shard at the default input size, (2) executes
// the Map phase over the full ClusterStreamFactor-scale dataset with
// clusterMap, spot-checking that chunked streaming matches a one-shot
// materialization on live data, (3) performs the per-node Reduce and the
// cross-node tree Reduce via mapreduce.Job, checking the tree against the
// flat reduction, and (4) converts the measured rates into the Section
// IV-D map / node-reduce / global-reduce breakdown through
// internal/cluster's network model. The figure reports the simulated
// nodes x procs cluster (default 4x1); the returned text extrapolates the
// same measured rates to the paper's 5000x32 example. The total streamed
// dataset is held constant, so a larger cluster maps a smaller shard per
// processor.
func ClusterStudy(ctx context.Context, p arch.Params, scale float64, seed uint64, nodes, procs int) (*Figure, string, error) {
	if seed == 0 {
		seed = Seed
	}
	if nodes <= 0 {
		nodes = ClusterNodes
	}
	if procs <= 0 {
		procs = 1
	}
	shards := nodes * procs
	f := &Figure{
		Name: fmt.Sprintf("Cluster-scale MapReduce: %d nodes x %d processors, dataset %dx the default per-processor input (Section IV-D)",
			nodes, procs, ClusterStreamFactor),
		Series: []string{"records (M)", "Mwords/s/proc", "map (ms)", "node-red (us)", "tree-red (us)", "total (ms)"},
	}
	paper := cluster.DefaultConfig()
	var text strings.Builder
	fmt.Fprintf(&text, "Extrapolation to the paper's example cluster (%d nodes x %d processors, same per-processor load, measured min rate):\n",
		paper.Nodes, paper.ProcessorsPerNode)

	threads := p.Threads()
	for _, name := range clusterBenchNames {
		if err := ctx.Err(); err != nil {
			return nil, "", err
		}
		b, err := workloads.ByName(name)
		if err != nil {
			return nil, "", err
		}
		simRecords := recordsFor(b, scale)
		perThread := simRecords * ClusterStreamFactor / shards
		if perThread < 1 {
			perThread = 1
		}
		wordsPerProc := int64(threads) * int64(perThread) * int64(b.K.RecordWords)

		// (1) Measure: cycle-level simulation of one processor per node at
		// the default input size, on that node's first data shard. The rate
		// is simulated input words per simulated second — deterministic,
		// unlike wall-clock throughput.
		rates := make([]float64, nodes)
		err = runJobs(ctx, nodes, func(ni int) error {
			res, _, err := RunWith(ArchMillipede, b, p, simRecords,
				Options{Seed: node.ShardSeed(seed, ni*procs)})
			if err != nil {
				return fmt.Errorf("cluster %s node %d: %w", name, ni, err)
			}
			rates[ni] = float64(res.Words) / (float64(res.Time) / 1e12)
			return nil
		})
		if err != nil {
			return nil, "", err
		}
		minRate := rates[0]
		for _, r := range rates[1:] {
			if r < minRate {
				minRate = r
			}
		}

		// (2) Map at cluster scale over bounded buffers.
		states := clusterMap(b, shards, threads, perThread, seed)

		// Spot-check on live data: thread 0 of node 0 recomputed from a
		// one-shot materialized stream must match the chunked fold.
		oneShot := b.GoldenThread(b.Source(node.ShardSeed(seed, 0), 0, perThread).Materialize(), perThread)
		for i, v := range oneShot {
			if states[0][0][i] != v {
				return nil, "", fmt.Errorf("cluster %s: chunked fold diverged from one-shot at word %d", name, i)
			}
		}

		// (3) Per-processor Reduce, a per-node merge of its processors'
		// states, then the cross-node tree Reduce. The single-processor
		// node skips the merge so its float association order — and thus
		// the historical 4x1 output — is preserved bit for bit.
		job := b.Job()
		shardStates := make([][]uint32, shards)
		for si := range shardStates {
			if shardStates[si], err = mapreduce.ReduceStates(job, states[si]); err != nil {
				return nil, "", err
			}
		}
		nodeStates := make([][]uint32, nodes)
		for ni := range nodeStates {
			if procs == 1 {
				nodeStates[ni] = shardStates[ni]
				continue
			}
			merged := job.NewState()
			for pi := 0; pi < procs; pi++ {
				job.Merge(merged, shardStates[ni*procs+pi])
			}
			nodeStates[ni] = merged
		}
		global := treeReduce(job, nodeStates)
		flat, err := mapreduce.ReduceStates(job, nodeStates)
		if err != nil {
			return nil, "", err
		}
		if err := checkTreeVsFlat(b, global, flat); err != nil {
			return nil, "", err
		}

		// (4) Time breakdown from the measured rates, at the simulated
		// cluster's geometry — exactly the data that was mapped above.
		ph, err := clusterPhases(nodes, procs, minRate, wordsPerProc, b, threads)
		if err != nil {
			return nil, "", err
		}
		f.Rows = append(f.Rows, Row{Bench: name, Values: map[string]float64{
			"records (M)":   float64(perThread) * float64(threads) * float64(shards) / 1e6,
			"Mwords/s/proc": minRate / 1e6,
			"map (ms)":      float64(ph.Map) / 1e9,
			"node-red (us)": float64(ph.NodeReduce) / 1e6,
			"tree-red (us)": float64(ph.GlobalReduce) / 1e6,
			"total (ms)":    float64(ph.Total()) / 1e9,
		}})

		// The paper-scale extrapolation keeps the per-processor load and
		// rate, widening the node to 32 processors and the tree to 5000
		// nodes (13 rounds).
		php, err := clusterPhases(paper.Nodes, paper.ProcessorsPerNode, minRate, wordsPerProc, b, threads)
		if err != nil {
			return nil, "", err
		}
		fmt.Fprintf(&text, "  %-8s map %8.3f ms   node-reduce %8.1f us   global-reduce %8.1f us\n",
			name, float64(php.Map)/1e9, float64(php.NodeReduce)/1e6, float64(php.GlobalReduce)/1e6)
	}
	text.WriteString("Sanity (Section IV-D): Map dominates end-to-end time; the tree Reduce costs tens of\n" +
		"network round-trips and the per-node host Reduce stays in the hundreds-of-microseconds\n" +
		"band — communication support inside the PNM processors \"may not be worth it\".\n")
	return f, text.String(), nil
}
