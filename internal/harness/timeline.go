package harness

import (
	"context"
	"fmt"

	"repro/internal/arch"
	"repro/internal/workloads"
)

// DefaultTimelineEvery is the timeline experiment's sampling period in
// compute cycles. 1024 keeps even a paper-scale run to a few thousand
// points before the sampler's adaptive decimation kicks in.
const DefaultTimelineEvery = 1024

// timelineRows is how many (downsampled) sample rows the rendered timeline
// figure shows; the full-resolution series stays on RunResult.Timeline.
const timelineRows = 32

// TimelineStudy runs the count benchmark on rate-matched Millipede with the
// cycle-domain gauge sampler enabled and renders the sampled series —
// prefetch-buffer occupancy, DRAM row hit rate, controller queue depth, and
// the DFS compute clock — as a figure whose rows are sample cycles. It is
// the simulator-side counterpart of the paper's Figure 2 motivation: row
// prefetch keeps the buffer occupied while rate matching walks the clock to
// the memory-bound operating point.
func TimelineStudy(ctx context.Context, p arch.Params, scale float64, everyCycles uint64, seed uint64) (*Figure, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if everyCycles == 0 {
		everyCycles = DefaultTimelineEvery
	}
	b, err := workloads.ByName("count")
	if err != nil {
		return nil, err
	}
	res, _, err := RunWith(ArchMillipedeRM, b, p, recordsFor(b, scale),
		Options{TimelineEvery: everyCycles, Seed: seed})
	if err != nil {
		return nil, err
	}
	tl := res.Timeline
	if tl == nil || tl.Len() == 0 {
		return nil, fmt.Errorf("harness: timeline study produced no samples (run shorter than %d cycles)", everyCycles)
	}
	pts := tl.Downsample(timelineRows)
	fig := &Figure{
		Name:   fmt.Sprintf("Observability timeline: count on %s (every %d cycles)", ArchMillipedeRM, tl.Every()),
		Series: tl.Names(),
	}
	for _, pt := range pts {
		row := Row{Bench: fmt.Sprintf("@%d", pt.Cycle), Values: map[string]float64{}}
		for i, name := range fig.Series {
			row.Values[name] = pt.Values[i]
		}
		fig.Rows = append(fig.Rows, row)
	}
	return fig, nil
}
