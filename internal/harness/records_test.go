package harness

import (
	"testing"

	"repro/internal/workloads"
)

// TestRecordsForSizeFloor is the regression test for the Fig6 record-count
// bug: the minimum-records floor must be applied after size scaling, so a
// 64-lane run at a tiny scale still processes at least 4 records per thread
// (the old code scaled RecordsFor's already-floored result and could return
// fewer, even 0).
func TestRecordsForSizeFloor(t *testing.T) {
	for _, b := range workloads.All() {
		for _, lanes := range []int{32, 64} {
			if r := recordsForSize(b, 0.001, lanes); r < 4 {
				t.Errorf("%s @ %d lanes: records = %d, want >= 4", b.Name(), lanes, r)
			}
		}
	}
}

// TestRecordsForSizeScaling checks equal-total-input scaling: away from the
// floor, doubling the lane count halves the per-thread records.
func TestRecordsForSizeScaling(t *testing.T) {
	for _, b := range workloads.All() {
		r32 := recordsForSize(b, 1.0, 32)
		r64 := recordsForSize(b, 1.0, 64)
		if r32 < 8 {
			continue // too close to the floor to check the ratio
		}
		if r64 != r32/2 {
			t.Errorf("%s: records(64) = %d, want %d (half of records(32) = %d)",
				b.Name(), r64, r32/2, r32)
		}
		if RecordsFor(b, 1.0) != r32 {
			t.Errorf("%s: RecordsFor disagrees with recordsForSize at 32 lanes", b.Name())
		}
	}
}
