package harness

import (
	"context"
	"testing"

	"repro/internal/arch"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// testScale keeps harness tests fast; the cmd/milliexp tool runs at >= 1.
const testScale = 0.04

func TestRunAllArchitecturesVerified(t *testing.T) {
	// Run itself verifies every result against the golden reference; this
	// test just exercises each architecture id once.
	p := arch.Default()
	b := workloads.CountBench()
	for _, a := range append(Architectures(), ArchMulticore) {
		if _, err := Run(a, b, p, 64); err != nil {
			t.Errorf("%s: %v", a, err)
		}
	}
	if _, err := Run("bogus", b, p, 8); err == nil {
		t.Error("unknown architecture accepted")
	}
}

func TestFig3Orderings(t *testing.T) {
	f, err := Fig3(context.Background(), arch.Default(), testScale, 0)
	if err != nil {
		t.Fatal(err)
	}
	byBench := map[string]map[string]float64{}
	for _, r := range f.Rows {
		byBench[r.Bench] = r.Values
	}
	// Headline: Millipede beats GPGPU-with-prefetch overall, decisively on
	// the branchy, bandwidth-contested benchmarks.
	if g := f.Geomean[ArchMillipede]; g < 1.10 {
		t.Errorf("Millipede geomean speedup over GPGPU = %.3f, want > 1.10", g)
	}
	for _, b := range []string{"count", "sample"} {
		v := byBench[b]
		if v[ArchMillipede] < 1.4 {
			t.Errorf("%s: Millipede %.2fx GPGPU, want > 1.4", b, v[ArchMillipede])
		}
		if v[ArchMillipede] <= v[ArchSSMC] {
			t.Errorf("%s: Millipede (%.2f) not above SSMC (%.2f)", b, v[ArchMillipede], v[ArchSSMC])
		}
		// Row-orientedness without flow control sits between SSMC and
		// full Millipede (Section VI-A).
		if v[ArchMillipedeNoFC] <= v[ArchSSMC]*0.98 || v[ArchMillipedeNoFC] > v[ArchMillipede] {
			t.Errorf("%s: no-flow-control %.2f not between SSMC %.2f and Millipede %.2f",
				b, v[ArchMillipedeNoFC], v[ArchSSMC], v[ArchMillipede])
		}
	}
	// VWS-row shows Millipede's generality on VWS (Section VI-A); at test
	// scale the effect is asserted on count, the most bandwidth-bound
	// benchmark.
	if v := byBench["count"]; v[ArchVWSRow] <= v[ArchVWS] {
		t.Errorf("count: VWS-row %.2f not above VWS %.2f", v[ArchVWSRow], v[ArchVWS])
	}
	// Millipede never loses badly anywhere.
	for _, r := range f.Rows {
		if r.Values[ArchMillipede] < 0.95 {
			t.Errorf("%s: Millipede %.2f below GPGPU", r.Bench, r.Values[ArchMillipede])
		}
	}
}

func TestFig4Energy(t *testing.T) {
	f, parts, err := Fig4(context.Background(), arch.Default(), testScale, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g := f.Geomean[ArchMillipede]; g >= 1.0 {
		t.Errorf("Millipede geomean energy vs GPGPU = %.3f, want < 1", g)
	}
	if f.Geomean[ArchMillipede] > f.Geomean[ArchSSMC] {
		t.Errorf("Millipede energy (%.3f) above SSMC (%.3f)",
			f.Geomean[ArchMillipede], f.Geomean[ArchSSMC])
	}
	// Breakdown shares must be positive and sum to the total.
	for i, r := range f.Rows {
		p := parts.Rows[i]
		for _, a := range f.Series {
			sum := p.Values[a+":core"] + p.Values[a+":dram"] + p.Values[a+":leak"]
			if diff := sum - r.Values[a]; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("%s/%s: breakdown sums to %.4f, total %.4f", r.Bench, a, sum, r.Values[a])
			}
		}
	}
}

func TestFig5NodeComparison(t *testing.T) {
	f, err := Fig5(context.Background(), arch.Default(), testScale, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range f.Rows {
		if r.Values["speedup"] < 3 {
			t.Errorf("%s: node speedup %.1f implausibly low", r.Bench, r.Values["speedup"])
		}
		if r.Values["energy-improvement"] < 3 {
			t.Errorf("%s: energy improvement %.1f implausibly low", r.Bench, r.Values["energy-improvement"])
		}
	}
	// The paper reports ~125x average energy-delay improvement; require at
	// least two orders of magnitude.
	var eds []float64
	for _, r := range f.Rows {
		eds = append(eds, r.Values["speedup"]*r.Values["energy-improvement"])
	}
	if g := stats.Geomean(eds); g < 100 {
		t.Errorf("energy-delay improvement geomean %.0f, want >= 100", g)
	}
}

func TestFig6ScalingTrend(t *testing.T) {
	f, err := Fig6(context.Background(), arch.Default(), testScale, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Millipede gains from doubling corelets + bandwidth.
	if f.Geomean["millipede-64"] <= f.Geomean["millipede-32"] {
		t.Errorf("millipede-64 (%.2f) not above millipede-32 (%.2f)",
			f.Geomean["millipede-64"], f.Geomean["millipede-32"])
	}
	// Millipede's advantage over SSMC grows with system size — more cores
	// stray more (Fig. 6) — while its advantage over GPGPU holds.
	ssmc32 := f.Geomean["millipede-32"] / f.Geomean["ssmc-32"]
	ssmc64 := f.Geomean["millipede-64"] / f.Geomean["ssmc-64"]
	if ssmc64 <= ssmc32 {
		t.Errorf("Millipede/SSMC advantage did not grow with size: %.3f -> %.3f", ssmc32, ssmc64)
	}
	adv32 := f.Geomean["millipede-32"] / f.Geomean["gpgpu-32"]
	adv64 := f.Geomean["millipede-64"] / f.Geomean["gpgpu-64"]
	if adv64 < adv32*0.9 {
		t.Errorf("Millipede/GPGPU advantage collapsed with size: %.3f -> %.3f", adv32, adv64)
	}
}

func TestFig7BufferSensitivity(t *testing.T) {
	f, err := Fig7(context.Background(), arch.Default(), testScale, 0)
	if err != nil {
		t.Fatal(err)
	}
	series := []string{"2-buffers", "4-buffers", "8-buffers", "16-buffers", "32-buffers"}
	for _, r := range f.Rows {
		var xs []float64
		for _, s := range series {
			xs = append(xs, r.Values[s])
		}
		if !stats.MonotoneUp(xs, 0.05) {
			t.Errorf("%s: speedup not monotone in buffer count: %v", r.Bench, xs)
		}
		// Performance levels off: 32 buffers gain little over 16.
		if r.Values["32-buffers"] > r.Values["16-buffers"]*1.25 {
			t.Errorf("%s: no leveling off between 16 and 32 buffers (%v)", r.Bench, xs)
		}
	}
}

func TestTableIVCharacteristics(t *testing.T) {
	// Straying (and hence SSMC's row-miss rate) needs run length to
	// develop; use a larger scale than the other tests.
	f, err := TableIV(context.Background(), arch.Default(), 0.12, 0)
	if err != nil {
		t.Fatal(err)
	}
	v := map[string]map[string]float64{}
	for _, r := range f.Rows {
		v[r.Bench] = r.Values
	}
	// Instructions per word rise toward the compute-heavy learners.
	if !(v["pca"]["insts/word"] > v["kmeans"]["insts/word"] &&
		v["gda"]["insts/word"] > v["kmeans"]["insts/word"] &&
		v["kmeans"]["insts/word"] > v["count"]["insts/word"]) {
		t.Errorf("insts/word ordering broken: %v", v)
	}
	// Branch frequency falls toward the right (Table IV's trend).
	if !(v["count"]["branches/inst"] > v["classify"]["branches/inst"] &&
		v["classify"]["branches/inst"] > v["gda"]["branches/inst"]*0.9) {
		t.Errorf("branch frequency ordering broken")
	}
	// SSMC strays hardest on the bursty, branch-skewed benchmarks.
	if v["count"]["ssmc-row-miss"] < 0.15 || v["sample"]["ssmc-row-miss"] < 0.15 {
		t.Errorf("SSMC row miss rates too low: count %.3f sample %.3f",
			v["count"]["ssmc-row-miss"], v["sample"]["ssmc-row-miss"])
	}
	for _, r := range f.Rows {
		mhz := r.Values["rate-clock-MHz"]
		if mhz < 175 || mhz > 700.5 {
			t.Errorf("%s: rate-matched clock %.0f MHz outside [175, 700]", r.Bench, mhz)
		}
	}
}

func TestTableRenderers(t *testing.T) {
	s := TableIII(arch.Default())
	if len(s) == 0 {
		t.Error("empty Table III")
	}
	if s2 := TableII(); len(s2) == 0 {
		t.Error("empty Table II")
	}
	f := &Figure{Name: "x", Series: []string{"a"}, Rows: []Row{{Bench: "b", Values: map[string]float64{"a": 1}}}}
	f.geomeans()
	if out := f.Render(); len(out) == 0 {
		t.Error("empty render")
	}
}

func TestBarrierAblation(t *testing.T) {
	f, err := BarrierAblation(context.Background(), arch.Default(), 0.12, 0)
	if err != nil {
		t.Fatal(err)
	}
	v := f.Rows[0].Values
	// Record-granularity barriers prevent evictions but serialize: slower
	// than hardware flow control.
	if v["barrier-every-1"] >= 1.0 {
		t.Errorf("per-record barriers (%.2f) not slower than flow control", v["barrier-every-1"])
	}
	// Coarse (Map-task-granularity) barriers are too infrequent: close to
	// no-flow-control (the paper's "performs similarly" claim).
	r := v["barrier-every-512"] / v["no-flow-control"]
	if r < 0.8 || r > 1.3 {
		t.Errorf("coarse barriers (%.2f) not similar to no-flow-control (%.2f)",
			v["barrier-every-512"], v["no-flow-control"])
	}
}

func TestCharacteristicsStudy(t *testing.T) {
	f, err := CharacteristicsStudy(context.Background(), arch.Default(), 0.02, 0)
	if err != nil {
		t.Fatal(err)
	}
	var count, join map[string]float64
	for _, r := range f.Rows {
		if r.Bench == "count" {
			count = r.Values
		} else {
			join = r.Values
		}
	}
	// Compact workloads read each input byte about once; the non-compact
	// join re-streams its table per record, amplifying DRAM traffic by
	// orders of magnitude and collapsing input throughput (Sec. III-D).
	if count["dram-amplification"] > 1.3 {
		t.Errorf("count amplification %.2f, want ~1", count["dram-amplification"])
	}
	if join["dram-amplification"] < 20 {
		t.Errorf("join amplification %.1f, want >> 1", join["dram-amplification"])
	}
	if join["input-words/us"] > count["input-words/us"]/20 {
		t.Errorf("join throughput %.1f not collapsed vs count %.1f",
			join["input-words/us"], count["input-words/us"])
	}
}

func TestWarpWidthSweep(t *testing.T) {
	f, err := WarpWidthSweep(context.Background(), arch.Default(), testScale, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's VWS picks 4-wide for BMLAs: narrow warps must win on the
	// branchy benchmarks.
	for _, r := range f.Rows {
		if r.Bench != "count" && r.Bench != "sample" {
			continue
		}
		if r.Values["4-wide"] < r.Values["32-wide"] {
			t.Errorf("%s: 4-wide (%.2f) lost to 32-wide", r.Bench, r.Values["4-wide"])
		}
	}
}

func TestResidencyStudy(t *testing.T) {
	f, err := ResidencyStudy(context.Background(), arch.Default(), 16, testScale, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ResidencyStudy(context.Background(), arch.Default(), 0, testScale, 0); err == nil {
		t.Error("zero bandwidth accepted")
	}
	for _, r := range f.Rows {
		if r.Values["copyin-us"] <= 0 || r.Values["kernel-us"] <= 0 {
			t.Errorf("%s: empty study row", r.Bench)
		}
		// The bandwidth-hungry count benchmark must need several reuses to
		// amortize its copy-in — residency matters (Sec. IV-E).
		if r.Bench == "count" && r.Values["reuses-for-10pct"] < 2 {
			t.Errorf("count amortizes instantly (%.1f reuses); study degenerate", r.Values["reuses-for-10pct"])
		}
	}
}

func TestKMeansIterationConverges(t *testing.T) {
	p := arch.Default()
	cents := workloads.KMeansCentroids()
	for c := range cents {
		for d := range cents[c] {
			cents[c][d] += 2.0
		}
	}
	var shifts []float64
	for it := 0; it < 3; it++ {
		next, res, err := KMeansIteration(p, cents, 48)
		if err != nil {
			t.Fatal(err)
		}
		if res.Time <= 0 {
			t.Fatal("empty result")
		}
		shifts = append(shifts, CentroidShift(cents, next))
		cents = next
	}
	if !(shifts[0] > shifts[1] && shifts[1] >= shifts[2]) {
		t.Errorf("k-means not converging: shifts %v", shifts)
	}
	if shifts[2] > 0.01 {
		t.Errorf("k-means did not settle: %v", shifts)
	}
}

func TestCentroidShift(t *testing.T) {
	a := [][]float32{{0, 0}, {1, 1}}
	b := [][]float32{{3, 4}, {1, 1}}
	if got := CentroidShift(a, b); got != 2.5 {
		t.Errorf("shift = %v, want 2.5", got)
	}
}
