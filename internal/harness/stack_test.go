package harness

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/stack"
	"repro/internal/workloads"
)

// smallParams is a cheap geometry for stack-mode property tests.
func smallParams(channels int) arch.Params {
	p := arch.Default()
	p.Corelets = 8
	p.Contexts = 2
	p.PrefetchEntries = 8
	p.Channels = channels
	return p
}

// TestStackMemoryPassThroughIdentical is the bit-identity property the whole
// capacity subsystem is gated on: StackMode "memory" with the stack sized to
// hold the dataset (StackBytes 0) must produce exactly the run the bare
// memory system produces — same simulated time, cycles, instructions, and
// memory counters — across random kernels, channel counts, and seeds.
func TestStackMemoryPassThroughIdentical(t *testing.T) {
	benches := workloads.All()
	channels := []int{1, 2, 4}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		b := benches[rng.Intn(len(benches))]
		p := smallParams(channels[rng.Intn(len(channels))])
		seed := rng.Uint64() | 1
		records := 16 + rng.Intn(32)

		base, err := runSeeded(ArchMillipede, b, p, records, seed)
		if err != nil {
			t.Fatal(err)
		}
		q := p
		q.StackMode = string(stack.ModeMemory)
		got, err := runSeeded(ArchMillipede, b, q, records, seed)
		if err != nil {
			t.Fatal(err)
		}
		if got.Time != base.Time || got.Cycles != base.Cycles || got.Insts != base.Insts {
			t.Fatalf("%s ch=%d seed=%d: pass-through diverged: time %d vs %d, cycles %d vs %d, insts %d vs %d",
				b.Name(), p.Channels, seed, got.Time, base.Time, got.Cycles, base.Cycles, got.Insts, base.Insts)
		}
		if got.DRAMBytes != base.DRAMBytes || got.RowMissRate != base.RowMissRate ||
			got.MemStallCycles != base.MemStallCycles || got.MemRejected != base.MemRejected ||
			got.FinalHz != base.FinalHz {
			t.Fatalf("%s ch=%d seed=%d: pass-through memory counters diverged", b.Name(), p.Channels, seed)
		}
		if got.Stack.Mode != "" {
			t.Fatalf("pass-through run reports stack stats %+v, want the bare system", got.Stack)
		}
	}
}

// TestHWCacheCompulsoryOnly: with the cache at least as large as the
// dataset, a run must see only compulsory misses — every miss fills a line
// that is never evicted, so evictions and writebacks stay zero and fills
// equal misses.
func TestHWCacheCompulsoryOnly(t *testing.T) {
	b, err := workloads.ByName("count")
	if err != nil {
		t.Fatal(err)
	}
	p := smallParams(1)
	records := 64
	datasetBytes := p.Threads() * b.StreamWords(records) * 4
	granule := stack.DefaultAssoc * p.DRAM.RowBytes
	sb := 2 * datasetBytes
	if r := sb % granule; r != 0 {
		sb += granule - r
	}
	p.StackMode = string(stack.ModeHWCache)
	p.StackBytes = sb

	res, err := runSeeded(ArchMillipede, b, p, records, Seed)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stack
	if s.Mode != string(stack.ModeHWCache) {
		t.Fatalf("run did not report hwcache stats: %+v", s)
	}
	if s.Misses == 0 {
		t.Fatal("cold cache saw no misses")
	}
	if s.Evictions != 0 || s.Writebacks != 0 {
		t.Fatalf("capacity >= dataset but saw %d evictions, %d writebacks", s.Evictions, s.Writebacks)
	}
	if s.Misses != s.Fills {
		t.Fatalf("misses %d != fills %d with no evictions", s.Misses, s.Fills)
	}
	if s.Backing.Reads != s.Misses {
		t.Fatalf("backing reads %d != primary misses %d", s.Backing.Reads, s.Misses)
	}
}

// TestCapacityStudySmall runs the full capacity experiment at a tiny scale:
// every bench@ratio row must carry a positive throughput for all three
// disciplines, and the text must include the per-ratio table and verdict.
func TestCapacityStudySmall(t *testing.T) {
	if testing.Short() {
		t.Skip("capacity study simulates 3 modes x 5 ratios x all kernels")
	}
	p := smallParams(2)
	fig, text, err := CapacityStudy(t.Context(), p, 0.02, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(workloads.All()) * len(CapacityRatios)
	if len(fig.Rows) != wantRows {
		t.Fatalf("figure has %d rows, want %d", len(fig.Rows), wantRows)
	}
	for _, row := range fig.Rows {
		for _, mode := range capacityModes {
			v, ok := row.Values[mode]
			if !ok || v <= 0 {
				t.Errorf("%s: %s throughput %g, want > 0", row.Bench, mode, v)
			}
		}
	}
	low := strings.ToLower(text)
	for _, want := range []string{"per-ratio geomean", "hit rate", "crossover"} {
		if !strings.Contains(low, want) {
			t.Errorf("capacity text lacks %q:\n%s", want, text)
		}
	}
}

// TestClusterStudyGeometry: a 2x2 cluster must run end to end — the per-node
// merge path that the default 1-processor geometry skips.
func TestClusterStudyGeometry(t *testing.T) {
	p := smallParams(1)
	fig, _, err := ClusterStudy(t.Context(), p, 0.02, 0, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != len(clusterBenchNames) {
		t.Fatalf("figure has %d rows, want %d", len(fig.Rows), len(clusterBenchNames))
	}
	if !strings.Contains(fig.Name, "2 nodes x 2 processors") {
		t.Errorf("figure name does not reflect the geometry: %q", fig.Name)
	}
}
