// Package jobs is the execution engine of the millid simulation service: a
// bounded FIFO job queue drained by a fixed worker pool. The pool applies
// the same discipline the figure harness uses for its sweeps — at most
// GOMAXPROCS concurrent simulations, because each one holds a full node
// (DRAM backing store included) — but adds the service-side concerns:
// backpressure (Submit rejects instead of blocking when the queue is full),
// per-job context timeouts, and a graceful drain that finishes every
// accepted job before shutdown.
//
// The pool never drops an accepted job: Submit either enqueues or returns
// ErrQueueFull immediately, so callers can map backpressure straight to an
// HTTP 429.
package jobs

import (
	"context"
	"errors"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

var (
	// ErrQueueFull is returned by Submit when the bounded queue is at
	// capacity — the service's backpressure signal.
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrClosed is returned by Submit after Close/Drain began.
	ErrClosed = errors.New("jobs: pool closed")
)

// Job is one unit of queued work.
type Job struct {
	// ID identifies the job in logs and stats; the pool treats it as opaque.
	ID string
	// Timeout bounds the job's execution from the moment a worker picks it
	// up; zero means no per-job timeout.
	Timeout time.Duration
	// Run executes the job. ctx carries the per-job timeout (and is already
	// expired if the pool is unwinding); Run is responsible for observing
	// it between units of work.
	Run func(ctx context.Context)
}

type queued struct {
	job      Job
	enqueued time.Time
}

// LatencyBuckets is the shared latency histogram layout: bucket i counts
// observations in [2^(i-1), 2^i) milliseconds (bucket 0 is <1 ms), and the
// last bucket is the overflow. Indexed like the memory controller's
// queue-latency histogram so renderers can treat them uniformly.
const LatencyBuckets = 16

type latencyHist struct {
	mu      sync.Mutex
	buckets [LatencyBuckets]uint64
}

func (h *latencyHist) observe(d time.Duration) {
	ms := d.Milliseconds()
	b := 0
	if ms > 0 {
		b = bits.Len64(uint64(ms))
	}
	if b >= LatencyBuckets {
		b = LatencyBuckets - 1
	}
	h.mu.Lock()
	h.buckets[b]++
	h.mu.Unlock()
}

func (h *latencyHist) snapshot() []uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]uint64, LatencyBuckets)
	copy(out, h.buckets[:])
	return out
}

// Pool is a bounded FIFO job queue with a fixed worker pool.
type Pool struct {
	ch      chan queued
	workers int

	// baseCtx parents every per-job context; Drain cancels it when its own
	// deadline expires, so a bounded drain can actually interrupt jobs
	// instead of abandoning them.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup

	submitted atomic.Uint64
	rejected  atomic.Uint64
	completed atomic.Uint64
	panicked  atomic.Uint64
	running   atomic.Int64

	waitHist latencyHist // enqueue -> worker pickup
	runHist  latencyHist // worker pickup -> Run return
}

// New starts a pool with the given worker count and queue capacity.
// workers <= 0 sizes the pool off GOMAXPROCS (the harness's bound: one
// simulation per host thread); capacity <= 0 defaults to 4x the worker
// count, enough to keep workers busy without letting latency under
// backpressure grow unbounded.
func New(workers, capacity int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if capacity <= 0 {
		capacity = 4 * workers
	}
	p := &Pool{ch: make(chan queued, capacity), workers: workers}
	p.baseCtx, p.baseCancel = context.WithCancel(context.Background())
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for q := range p.ch {
		p.waitHist.observe(time.Since(q.enqueued))
		// Per-job contexts derive from the pool context so a timed-out
		// Drain cancels every job still executing (and pre-expires the
		// contexts of jobs still queued).
		ctx := p.baseCtx
		cancel := context.CancelFunc(func() {})
		if q.job.Timeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, q.job.Timeout)
		}
		p.running.Add(1)
		t0 := time.Now()
		p.runJob(ctx, q.job)
		cancel()
		p.runHist.observe(time.Since(t0))
		p.running.Add(-1)
		p.completed.Add(1)
	}
}

// runJob executes one job, containing any panic so the worker survives and
// the pool's gauges stay balanced. A panicking job still counts as
// completed (with the panic recorded in Panicked) — the pool must never
// silently shrink because one simulation blew up.
func (p *Pool) runJob(ctx context.Context, j Job) {
	defer func() {
		if r := recover(); r != nil {
			p.panicked.Add(1)
		}
	}()
	j.Run(ctx)
}

// Submit enqueues j. It never blocks: a full queue returns ErrQueueFull and
// a closed pool returns ErrClosed.
func (p *Pool) Submit(j Job) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		p.rejected.Add(1)
		return ErrClosed
	}
	select {
	case p.ch <- queued{job: j, enqueued: time.Now()}:
		p.submitted.Add(1)
		return nil
	default:
		p.rejected.Add(1)
		return ErrQueueFull
	}
}

// Close stops intake. Queued and in-flight jobs still run to completion;
// use Drain to wait for them.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.closed {
		p.closed = true
		close(p.ch)
	}
}

// Drain closes the pool and waits until every accepted job has finished.
// If ctx ends first, Drain cancels the pool-level context — expiring the
// ctx of every running and still-queued job, so context-observing jobs wind
// down promptly — and returns ctx.Err() without waiting for them (a job
// that ignores its context keeps running in the background).
func (p *Pool) Drain(ctx context.Context) error {
	p.Close()
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		p.baseCancel()
		return ctx.Err()
	}
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Capacity returns the queue's bound.
func (p *Pool) Capacity() int { return cap(p.ch) }

// Depth returns the number of jobs waiting in the queue (excluding the ones
// a worker is already running).
func (p *Pool) Depth() int { return len(p.ch) }

// Running returns the number of jobs currently executing on a worker.
func (p *Pool) Running() int { return int(p.running.Load()) }

// Submitted returns the number of jobs accepted by Submit.
func (p *Pool) Submitted() uint64 { return p.submitted.Load() }

// Rejected returns the number of Submit calls bounced by backpressure or
// shutdown.
func (p *Pool) Rejected() uint64 { return p.rejected.Load() }

// Completed returns the number of jobs whose Run has returned (including
// panicked ones).
func (p *Pool) Completed() uint64 { return p.completed.Load() }

// Panicked returns the number of jobs whose Run panicked; each was
// recovered, counted as completed, and left its worker alive.
func (p *Pool) Panicked() uint64 { return p.panicked.Load() }

// WaitHistogram returns the enqueue-to-pickup latency histogram (bucket i
// counts waits in [2^(i-1), 2^i) ms; bucket 0 is <1 ms).
func (p *Pool) WaitHistogram() []uint64 { return p.waitHist.snapshot() }

// RunHistogram returns the pickup-to-completion latency histogram, bucketed
// like WaitHistogram.
func (p *Pool) RunHistogram() []uint64 { return p.runHist.snapshot() }
