package jobs

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestDefaults: workers sized off GOMAXPROCS, capacity off the worker count.
func TestDefaults(t *testing.T) {
	p := New(0, 0)
	defer p.Close()
	if got, want := p.Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("Workers() = %d, want GOMAXPROCS = %d", got, want)
	}
	if got, want := p.Capacity(), 4*p.Workers(); got != want {
		t.Errorf("Capacity() = %d, want %d", got, want)
	}
}

// TestFIFOOrder: with one worker, jobs complete in submission order.
func TestFIFOOrder(t *testing.T) {
	p := New(1, 16)
	gate := make(chan struct{})
	var mu sync.Mutex
	var order []int

	// First job blocks the only worker so the rest queue up in order.
	if err := p.Submit(Job{ID: "gate", Run: func(context.Context) { <-gate }}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		i := i
		if err := p.Submit(Job{Run: func(context.Context) {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}}); err != nil {
			t.Fatal(err)
		}
	}
	close(gate)
	if err := p.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("completion order %v is not FIFO", order)
		}
	}
}

// TestBackpressure: a full queue rejects with ErrQueueFull and counts the
// rejection; accepted jobs all complete.
func TestBackpressure(t *testing.T) {
	p := New(1, 2)
	gate := make(chan struct{})
	submit := func() error { return p.Submit(Job{Run: func(context.Context) { <-gate }}) }

	if err := submit(); err != nil { // runs on the worker
		t.Fatal(err)
	}
	// Wait until the worker picked the first job up, so the queue's two
	// slots are genuinely free.
	deadline := time.Now().Add(2 * time.Second)
	for p.Running() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up first job")
		}
		time.Sleep(time.Millisecond)
	}
	if err := submit(); err != nil {
		t.Fatal(err)
	}
	if err := submit(); err != nil {
		t.Fatal(err)
	}
	if err := submit(); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("4th submit: got %v, want ErrQueueFull", err)
	}
	if p.Rejected() != 1 {
		t.Fatalf("Rejected() = %d, want 1", p.Rejected())
	}
	close(gate)
	if err := p.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if p.Completed() != 3 {
		t.Fatalf("Completed() = %d, want 3", p.Completed())
	}
}

// TestPerJobTimeout: the ctx handed to Run expires after Job.Timeout.
func TestPerJobTimeout(t *testing.T) {
	p := New(1, 1)
	errc := make(chan error, 1)
	err := p.Submit(Job{Timeout: 10 * time.Millisecond, Run: func(ctx context.Context) {
		<-ctx.Done()
		errc <- ctx.Err()
	}})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("job ctx error = %v, want DeadlineExceeded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("job timeout never fired")
	}
	if err := p.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestDrainFinishesQueued: Drain completes every accepted job, and Submit
// after Close reports ErrClosed.
func TestDrainFinishesQueued(t *testing.T) {
	p := New(2, 32)
	var done sync.WaitGroup
	const n = 16
	done.Add(n)
	for i := 0; i < n; i++ {
		if err := p.Submit(Job{Run: func(context.Context) {
			time.Sleep(time.Millisecond)
			done.Done()
		}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	done.Wait() // Drain returning implies all Done() calls happened
	if p.Completed() != n {
		t.Fatalf("Completed() = %d, want %d", p.Completed(), n)
	}
	if err := p.Submit(Job{Run: func(context.Context) {}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after drain: got %v, want ErrClosed", err)
	}
}

// TestDrainDeadline: a Drain bounded by an already-expired context returns
// the context error while the stuck job keeps running.
func TestDrainDeadline(t *testing.T) {
	p := New(1, 1)
	gate := make(chan struct{})
	defer close(gate)
	if err := p.Submit(Job{Run: func(context.Context) { <-gate }}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.Drain(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Drain: got %v, want context.Canceled", err)
	}
}

// TestPanicSurvival: a panicking job is recovered, counted, and leaves its
// worker alive to run everything behind it.
func TestPanicSurvival(t *testing.T) {
	p := New(1, 16) // one worker: if the panic killed it, nothing else runs
	if err := p.Submit(Job{ID: "bomb", Run: func(context.Context) { panic("simulated blowup") }}); err != nil {
		t.Fatal(err)
	}
	const n = 8
	var ran sync.WaitGroup
	ran.Add(n)
	for i := 0; i < n; i++ {
		if err := p.Submit(Job{Run: func(context.Context) { ran.Done() }}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := p.Drain(ctx); err != nil {
		t.Fatalf("drain after panic: %v (worker died?)", err)
	}
	ran.Wait()
	if got := p.Panicked(); got != 1 {
		t.Errorf("Panicked() = %d, want 1", got)
	}
	if got := p.Completed(); got != n+1 {
		t.Errorf("Completed() = %d, want %d (panicked job still counts)", got, n+1)
	}
	if got := p.Running(); got != 0 {
		t.Errorf("Running() = %d after drain, want 0", got)
	}
}

// TestDrainTimeoutCancelsJobs: a Drain whose context expires cancels the
// pool-level context, so a context-observing job is interrupted and actually
// finishes (instead of running on in the background forever).
func TestDrainTimeoutCancelsJobs(t *testing.T) {
	p := New(1, 2)
	jobErr := make(chan error, 1)
	if err := p.Submit(Job{Run: func(ctx context.Context) {
		<-ctx.Done() // a well-behaved job: winds down when told
		jobErr <- ctx.Err()
	}}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := p.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain: got %v, want DeadlineExceeded", err)
	}
	select {
	case err := <-jobErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("job ctx error = %v, want Canceled (pool-level cancellation)", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("job was never interrupted by the drain timeout")
	}
	// The interrupted job still completes through the normal path.
	deadline := time.Now().Add(5 * time.Second)
	for p.Completed() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("Completed() = %d, want 1", p.Completed())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestLatencyHistograms: completed jobs land in the wait and run histograms.
func TestLatencyHistograms(t *testing.T) {
	p := New(1, 4)
	if err := p.Submit(Job{Run: func(context.Context) { time.Sleep(2 * time.Millisecond) }}); err != nil {
		t.Fatal(err)
	}
	if err := p.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	sum := func(h []uint64) (n uint64) {
		for _, v := range h {
			n += v
		}
		return
	}
	if got := sum(p.WaitHistogram()); got != 1 {
		t.Errorf("wait histogram total = %d, want 1", got)
	}
	if got := sum(p.RunHistogram()); got != 1 {
		t.Errorf("run histogram total = %d, want 1", got)
	}
}
