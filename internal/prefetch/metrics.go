package prefetch

import "repro/internal/metrics"

// RegisterMetrics publishes the buffer's event counters and occupancy under
// prefix (e.g. "prefetch"). Registration only stores closures over the
// buffer's plain stats fields; nothing is read until snapshot time.
func (b *Buffer) RegisterMetrics(r *metrics.Registry, prefix string) {
	r.Counter(prefix+".prefetches", func() uint64 { return b.stats.Prefetches })
	r.Counter(prefix+".demand_row_fetches", func() uint64 { return b.stats.DemandRowFetches })
	r.Counter(prefix+".premature_evicts", func() uint64 { return b.stats.PrematureEvicts })
	r.Counter(prefix+".flow_blocks", func() uint64 { return b.stats.FlowBlocks })
	r.Counter(prefix+".starved", func() uint64 { return b.stats.Starved })
	r.Counter(prefix+".ready_hits", func() uint64 { return b.stats.ReadyHits })
	r.Counter(prefix+".stash_hits", func() uint64 { return b.stats.StashHits })
	r.Counter(prefix+".trigger_clears", func() uint64 { return b.stats.TriggerClears })
	r.Counter(prefix+".fetch_rejects", func() uint64 { return b.stats.FetchRejects })
	r.Gauge(prefix+".max_df", func() float64 { return float64(b.stats.MaxDF) })
	r.Gauge(prefix+".occupancy", func() float64 { return float64(b.Occupancy()) })
}
