package prefetch

import (
	"math/rand"
	"testing"

	"repro/internal/mem"
)

// fakeMem is a stub mem.Port: it completes row fetches on demand, optionally
// with a bounded queue.
type fakeMem struct {
	pending []func(int64, bool)
	addrs   []uint32
	depth   int // 0 = unbounded
}

func (m *fakeMem) Enqueue(r mem.Request) bool {
	if m.depth > 0 && len(m.pending) >= m.depth {
		return false
	}
	m.addrs = append(m.addrs, r.Addr)
	m.pending = append(m.pending, r.Done)
	return true
}

func (m *fakeMem) Tick() {}

func (m *fakeMem) Idle() bool { return len(m.pending) == 0 }

// drainOne completes the oldest outstanding fetch.
func (m *fakeMem) drainOne() bool {
	if len(m.pending) == 0 {
		return false
	}
	f := m.pending[0]
	m.pending = m.pending[1:]
	f(0, false)
	return true
}

func (m *fakeMem) drainAll() {
	for m.drainOne() {
	}
}

func cfg4x4(flow bool) Config {
	// 4 entries, 4 corelets, 64-byte rows -> 4-word slabs.
	return Config{Entries: 4, Corelets: 4, RowBytes: 64, FlowControl: flow}
}

func newBuf(t *testing.T, cfg Config, m *fakeMem, rows int) *Buffer {
	t.Helper()
	b, err := New(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Start(0, rows*cfg.RowBytes); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestConfigValidate(t *testing.T) {
	good := Config{Entries: 16, Corelets: 32, RowBytes: 2048}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if good.SlabWords() != 16 {
		t.Errorf("slab words = %d", good.SlabWords())
	}
	bad := []Config{
		{Entries: 1, Corelets: 32, RowBytes: 2048},
		{Entries: 16, Corelets: 0, RowBytes: 2048},
		{Entries: 16, Corelets: 32, RowBytes: 0},
		{Entries: 16, Corelets: 32, RowBytes: 2046},
		{Entries: 16, Corelets: 3, RowBytes: 2048}, // 512 % 3 != 0
		{Entries: 16, Corelets: 2, RowBytes: 2048}, // 256-word slab > bitmap
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
	if _, err := New(good, nil); err == nil {
		t.Error("nil memory port accepted")
	}
}

func TestStartIssuesInitialPrefetches(t *testing.T) {
	m := &fakeMem{}
	newBuf(t, cfg4x4(true), m, 10)
	if len(m.addrs) != 4 {
		t.Fatalf("initial prefetches = %d, want 4", len(m.addrs))
	}
	for i, a := range m.addrs {
		if a != uint32(i*64) {
			t.Errorf("prefetch %d addr = %d, want %d", i, a, i*64)
		}
	}
}

func TestStartFewRowsThanEntries(t *testing.T) {
	m := &fakeMem{}
	b := newBuf(t, cfg4x4(true), m, 2)
	if len(m.addrs) != 2 {
		t.Errorf("prefetches = %d, want 2", len(m.addrs))
	}
	m.drainAll()
	if b.Stats().Prefetches != 2 {
		t.Errorf("stats.Prefetches = %d", b.Stats().Prefetches)
	}
}

func TestStartRejectsUnalignedBase(t *testing.T) {
	b, _ := New(cfg4x4(true), &fakeMem{})
	if err := b.Start(4, 640); err == nil {
		t.Error("unaligned base accepted")
	}
}

func TestAccessReadyAfterFill(t *testing.T) {
	m := &fakeMem{}
	b := newBuf(t, cfg4x4(true), m, 10)
	m.drainAll()
	if res := b.Access(0, 0, 0, nil); res != Ready {
		t.Errorf("access = %v, want Ready", res)
	}
	if b.Stats().ReadyHits != 1 {
		t.Errorf("ReadyHits = %d", b.Stats().ReadyHits)
	}
}

func TestAccessWaitsOnUnfilledEntry(t *testing.T) {
	m := &fakeMem{}
	b := newBuf(t, cfg4x4(true), m, 10)
	woken := false
	if res := b.Access(0, 0, 0, func() { woken = true }); res != Waiting {
		t.Fatalf("access = %v, want Waiting", res)
	}
	if woken {
		t.Fatal("callback before fill")
	}
	m.drainOne()
	if !woken {
		t.Error("callback did not fire on fill")
	}
	if b.Stats().Starved != 1 {
		t.Errorf("Starved = %d", b.Stats().Starved)
	}
}

// consumeRow has every corelet consume all its slab words of relative row r.
func consumeRow(b *Buffer, cfg Config, r int) {
	for c := 0; c < cfg.Corelets; c++ {
		for s := 0; s < cfg.SlabWords(); s++ {
			addr := uint32(r * cfg.RowBytes) // row base; word position irrelevant to entry lookup
			b.Access(c, s, addr, func() {})
		}
	}
}

func TestPFTTriggersNextPrefetch(t *testing.T) {
	m := &fakeMem{}
	cfg := cfg4x4(true)
	b := newBuf(t, cfg, m, 10)
	m.drainAll()
	// Consume row 0 completely: DF saturates; head (slot of row 4) = row 0's
	// slot. The first access that finds a set PFT bit triggers row 4.
	consumeRow(b, cfg, 0)
	if len(m.addrs) < 5 {
		t.Fatalf("no follow-on prefetch: addrs = %v", m.addrs)
	}
	if m.addrs[4] != 4*64 {
		t.Errorf("next prefetch addr = %d, want %d", m.addrs[4], 4*64)
	}
	if b.Stats().TriggerClears == 0 {
		t.Error("no PFT clears recorded")
	}
}

func TestFlowControlDefersTrigger(t *testing.T) {
	m := &fakeMem{}
	cfg := cfg4x4(true)
	b := newBuf(t, cfg, m, 20)
	m.drainAll()
	// Corelet 0 consumes its slabs of all 4 rows; other corelets idle.
	// Row 0's DF is unsaturated, so no prefetch beyond the initial 4 may
	// be issued.
	for r := 0; r < 4; r++ {
		for s := 0; s < cfg.SlabWords(); s++ {
			b.Access(0, s, uint32(r*cfg.RowBytes), nil)
		}
	}
	if len(m.addrs) != 4 {
		t.Fatalf("flow control failed: %d prefetches issued", len(m.addrs))
	}
	if b.Stats().FlowBlocks == 0 {
		t.Error("no flow blocks recorded")
	}
	if b.Stats().PrematureEvicts != 0 {
		t.Error("premature evictions under flow control")
	}
	// Leading corelet now waits on row 4.
	woken := false
	if res := b.Access(0, 0, uint32(4*cfg.RowBytes), func() { woken = true }); res != Waiting {
		t.Fatal("leader should wait on future row")
	}
	// Laggards consume row 0 -> head saturates. Then a demand access to an
	// entry with PFT set triggers row 4 and wakes the leader.
	for c := 1; c < cfg.Corelets; c++ {
		for s := 0; s < cfg.SlabWords(); s++ {
			b.Access(c, s, 0, nil)
		}
	}
	// Laggard touches row 3 (tail, PFT still set).
	b.Access(1, 0, uint32(3*cfg.RowBytes), nil)
	if len(m.addrs) != 5 {
		t.Fatalf("trigger after unblock: %d prefetches", len(m.addrs))
	}
	m.drainAll()
	if !woken {
		t.Error("future waiter not woken after allocation+fill")
	}
}

func TestNoFlowControlEvictsPrematurely(t *testing.T) {
	m := &fakeMem{}
	cfg := cfg4x4(false)
	b := newBuf(t, cfg, m, 20)
	m.drainAll()
	// Leader consumes rows 0..3 alone; each full consumption of the tail
	// triggers the next row, evicting unconsumed entries.
	for r := 0; r < 4; r++ {
		for s := 0; s < cfg.SlabWords(); s++ {
			b.Access(0, s, uint32(r*cfg.RowBytes), nil)
			m.drainAll()
		}
	}
	if b.Stats().PrematureEvicts == 0 {
		t.Error("expected premature evictions without flow control")
	}
	// A laggard now misses on row 0 and pays a demand row fetch.
	woken := false
	res := b.Access(1, 0, 0, func() { woken = true })
	if res != Waiting {
		t.Fatalf("laggard access = %v, want Waiting", res)
	}
	if b.Stats().DemandRowFetches != 1 {
		t.Errorf("DemandRowFetches = %d", b.Stats().DemandRowFetches)
	}
	m.drainAll()
	if !woken {
		t.Error("laggard never woken after demand fetch")
	}
}

func TestStaleFillForwardsToEvictedWaiters(t *testing.T) {
	m := &fakeMem{depth: 100}
	cfg := cfg4x4(false)
	b := newBuf(t, cfg, m, 20)
	// Do NOT drain: fills in flight. A waiter parks on row 0.
	woken := false
	b.Access(1, 0, 0, func() { woken = true })
	// Leader storms ahead, consuming rows as they fill, forcing row 0's
	// slot to be re-allocated while its fill is still outstanding.
	m.drainAll()
	for r := 0; r < 5; r++ {
		for s := 0; s < cfg.SlabWords(); s++ {
			b.Access(0, s, uint32(r*cfg.RowBytes), nil)
			m.drainAll()
		}
	}
	if !woken {
		t.Error("waiter on evicted row never woken")
	}
}

func TestPumpRetriesRejectedFetches(t *testing.T) {
	m := &fakeMem{depth: 2}
	cfg := cfg4x4(true)
	b := newBuf(t, cfg, m, 10) // wants 4 initial prefetches; 2 bounce
	if b.Stats().FetchRejects != 2 {
		t.Fatalf("FetchRejects = %d, want 2", b.Stats().FetchRejects)
	}
	m.drainAll()
	b.Pump()
	if len(m.pending) != 2 {
		t.Errorf("pump reissued %d fetches, want 2", len(m.pending))
	}
	m.drainAll()
	// All four rows now filled.
	for r := 0; r < 4; r++ {
		if res := b.Access(0, 0, uint32(r*cfg.RowBytes), nil); res != Ready {
			t.Errorf("row %d not ready after pump", r)
		}
	}
}

func TestOccupancy(t *testing.T) {
	m := &fakeMem{}
	cfg := cfg4x4(true)
	b := newBuf(t, cfg, m, 10)
	if b.Occupancy() != 0 {
		t.Errorf("occupancy before fills = %d", b.Occupancy())
	}
	m.drainAll()
	if b.Occupancy() != 4 {
		t.Errorf("occupancy after fills = %d, want 4", b.Occupancy())
	}
	consumeRow(b, cfg, 0) // consumes row 0, triggers row 4 (unfilled)
	if b.Occupancy() != 3 {
		t.Errorf("occupancy after consuming one row = %d, want 3", b.Occupancy())
	}
}

func TestEndOfStreamClearsPFTWithoutFetch(t *testing.T) {
	m := &fakeMem{}
	cfg := cfg4x4(true)
	b := newBuf(t, cfg, m, 4) // exactly Entries rows
	m.drainAll()
	for r := 0; r < 4; r++ {
		consumeRow(b, cfg, r)
	}
	if len(m.addrs) != 4 {
		t.Errorf("fetches = %d, want 4 (no prefetch past end)", len(m.addrs))
	}
	if !b.Done() {
		t.Error("buffer not Done after full consumption")
	}
}

func TestAccessOutsideRegionPanics(t *testing.T) {
	m := &fakeMem{}
	b := newBuf(t, cfg4x4(true), m, 4)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	b.Access(0, 0, uint32(100*64), nil)
}

// TestPropertyFlowControlNeverEvictsUnconsumed simulates 4 corelets x 4
// contexts walking their streams in random interleavings and asserts the
// paper's safety property: with flow control, no entry is ever re-allocated
// before every corelet consumed its slab, and every access is eventually
// served.
func TestPropertyFlowControlNeverEvictsUnconsumed(t *testing.T) {
	const rows = 40
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		m := &fakeMem{depth: 8}
		cfg := cfg4x4(true)
		b := newBuf(t, cfg, m, rows)

		// Each (corelet, slot) pair is an independent sequential consumer
		// of one word per row.
		type consumer struct {
			c, s    int
			row     int
			waiting bool
		}
		var cs []*consumer
		for c := 0; c < cfg.Corelets; c++ {
			for s := 0; s < cfg.SlabWords(); s++ {
				cs = append(cs, &consumer{c: c, s: s})
			}
		}
		steps := 0
		for {
			active := 0
			progressed := false
			for _, x := range cs {
				if x.row >= rows || x.waiting {
					if x.row < rows {
						active++
					}
					continue
				}
				active++
				if rng.Intn(3) == 0 {
					continue // simulate divergence: skip a turn
				}
				x.waiting = true
				xx := x
				res := b.Access(x.c, x.s, uint32(x.row*cfg.RowBytes), func() {
					xx.waiting = false
					xx.row++
				})
				if res == Ready {
					x.waiting = false
					x.row++
				}
				progressed = true
			}
			if active == 0 {
				break
			}
			if rng.Intn(2) == 0 {
				m.drainOne()
			}
			b.Pump()
			steps++
			if steps > 200000 {
				t.Fatalf("trial %d: no termination (deadlock?)", trial)
			}
			_ = progressed
		}
		m.drainAll()
		s := b.Stats()
		if s.PrematureEvicts != 0 {
			t.Fatalf("trial %d: %d premature evictions under flow control", trial, s.PrematureEvicts)
		}
		if s.DemandRowFetches != 0 {
			t.Fatalf("trial %d: %d demand fetches under flow control", trial, s.DemandRowFetches)
		}
		if s.Prefetches != rows {
			t.Fatalf("trial %d: prefetched %d rows, want %d", trial, s.Prefetches, rows)
		}
	}
}

// TestPropertyNoFlowControlStillCompletes checks liveness of the ablation:
// every consumer finishes even when premature evictions occur.
func TestPropertyNoFlowControlStillCompletes(t *testing.T) {
	const rows = 30
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(1000 + int64(trial)))
		m := &fakeMem{depth: 8}
		cfg := cfg4x4(false)
		b := newBuf(t, cfg, m, rows)
		type consumer struct {
			c, s    int
			row     int
			waiting bool
		}
		var cs []*consumer
		for c := 0; c < cfg.Corelets; c++ {
			for s := 0; s < cfg.SlabWords(); s++ {
				cs = append(cs, &consumer{c: c, s: s})
			}
		}
		steps := 0
		for {
			done := true
			for _, x := range cs {
				if x.row >= rows {
					continue
				}
				done = false
				if x.waiting {
					continue
				}
				// Corelet 0 races ahead (processes every turn); others
				// are slow, maximizing eviction pressure.
				if x.c != 0 && rng.Intn(4) != 0 {
					continue
				}
				x.waiting = true
				xx := x
				res := b.Access(x.c, x.s, uint32(x.row*cfg.RowBytes), func() {
					xx.waiting = false
					xx.row++
				})
				if res == Ready {
					x.waiting = false
					x.row++
				}
			}
			if done {
				break
			}
			m.drainOne()
			b.Pump()
			steps++
			if steps > 500000 {
				t.Fatalf("trial %d: no termination", trial)
			}
		}
	}
}
