// Package prefetch implements Millipede's row-oriented, flow-controlled,
// cross-corelet prefetch buffer — the paper's second and third contributions
// (Sections IV-B and IV-C).
//
// The buffer is a circular queue of row-sized entries shared by all corelets
// of one Millipede processor. Entire DRAM rows are prefetched sequentially;
// each entry is sliced into per-corelet slabs (e.g., 2 KB row / 32 corelets
// = 64 B = 16 words per slab), so a corelet only ever touches its own slice.
// Row r always occupies queue slot r mod Entries. Two pieces of per-entry
// state implement the paper's mechanisms:
//
//   - PFT (prefetch-trigger) bit: a full-empty bit set when an entry is
//     allocated. The first demand access to the tail entry that finds it set
//     triggers the prefetch of the next sequential row and clears it, so
//     redundant triggers are suppressed (like an MSHR).
//
//   - DF (demand-fetch) counter: counts corelets that have fully consumed
//     their slab of the entry. With flow control enabled, the head entry
//     that the next prefetch would re-allocate must have a saturated DF
//     counter (== corelet count); otherwise the trigger is deferred — the
//     PFT bit stays set and a later access retries (Figure 2's timeline).
//     When the head's DF saturates, the deferred trigger fires.
//
// With flow control disabled (the paper's Millipede-no-flow-control
// ablation), re-allocation proceeds unconditionally; a lagging corelet then
// misses on the prematurely evicted row and is exposed to die-stacked
// memory latency (Section IV-C): its slab is demand re-fetched at 64 B
// granularity, forwarded, and latched in a per-corelet snoop buffer rather
// than re-buffered in the queue. Data of an outstanding prefetch whose
// entry was re-allocated is likewise forwarded to its waiters.
//
// The buffer also exports the two occupancy signals the coarse-grain
// rate-matching controller (Section IV-F) feeds on: Starved events (a
// demand access had to wait on DRAM — memory-bound) and FlowBlocks events
// (flow control deferred a trigger — compute-bound).
package prefetch

import (
	"fmt"

	"repro/internal/mem"
)

// Config sizes a Buffer.
type Config struct {
	Entries     int  // circular-queue depth (16 in Table III)
	Corelets    int  // slabs per entry (32)
	RowBytes    int  // 2048
	FlowControl bool // the paper's DF-counter flow control
	// MaxWaiters pre-sizes each entry's wait-list (normally the processor's
	// total context count — every hardware thread can block on one entry).
	// Zero defaults to Corelets. Purely a steady-state-allocation hint;
	// lists grow past it if ever needed.
	MaxWaiters int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Entries < 2:
		return fmt.Errorf("prefetch: need >= 2 entries, got %d", c.Entries)
	case c.Corelets <= 0:
		return fmt.Errorf("prefetch: bad corelet count %d", c.Corelets)
	case c.RowBytes <= 0 || c.RowBytes%4 != 0:
		return fmt.Errorf("prefetch: bad row size %d", c.RowBytes)
	case (c.RowBytes/4)%c.Corelets != 0:
		return fmt.Errorf("prefetch: row of %d words not divisible into %d slabs", c.RowBytes/4, c.Corelets)
	case c.RowBytes/4/c.Corelets > 64:
		return fmt.Errorf("prefetch: slab of %d words exceeds 64-word consumption bitmap", c.RowBytes/4/c.Corelets)
	}
	return nil
}

// SlabWords returns words per corelet slab.
func (c Config) SlabWords() int { return c.RowBytes / 4 / c.Corelets }

// Result of an Access.
type Result int

const (
	// Ready: the word is in the buffer; the corelet proceeds this cycle.
	Ready Result = iota
	// Waiting: the word's row is in flight or not yet allocated; the
	// callback fires when the data is available.
	Waiting
)

// Stats counts buffer events.
type Stats struct {
	Prefetches       uint64 // sequential row prefetches issued
	DemandRowFetches uint64 // no-flow-control demand fetches after premature eviction
	PrematureEvicts  uint64 // re-allocations with unsaturated DF counters
	FlowBlocks       uint64 // triggers deferred by flow control
	Starved          uint64 // demand accesses that had to wait ("buffers empty")
	ReadyHits        uint64
	StashHits        uint64 // no-flow-control snoop-latch hits
	TriggerClears    uint64 // PFT bits cleared by successful triggers
	FetchRejects     uint64 // fetches bounced off a full controller queue
	MaxDF            uint64 // highest DF counter value ever observed (invariant: <= Corelets)
}

type waiter struct {
	corelet int
	slot    int
	cb      func()
}

type entry struct {
	row      int64 // -1 unallocated
	filled   bool
	pft      bool
	df       int
	consumed []uint64 // per-corelet bitmap of consumed slab words
	waiters  []waiter
}

func (e *entry) reset(row int64) {
	e.row = row
	e.filled = false
	e.pft = true
	e.df = 0
	for i := range e.consumed {
		e.consumed[i] = 0
	}
	e.waiters = e.waiters[:0]
}

// futureRow is one parked wait-list: corelets waiting on a row not currently
// resident in the queue.
type futureRow struct {
	row     int64
	waiters []waiter
}

// Buffer is the shared prefetch buffer of one Millipede processor.
type Buffer struct {
	cfg     Config
	port    mem.Port
	entries []entry
	// Input region, in rows.
	baseRow, rowCount int64
	rowBytes          int64
	// rowShift is log2(rowBytes) when the row size is a power of two (the
	// hardware case), letting Access turn the address-to-row division into a
	// shift; 0 means divide.
	rowShift uint
	// fullMask has one bit per slab word: the consumed bitmap value at which
	// a corelet's slab counts as fully consumed.
	fullMask uint64
	// nextRow is the next row index (relative to baseRow) to prefetch; the
	// tail entry holds nextRow-1 and the head (eviction candidate) slot is
	// nextRow mod Entries.
	nextRow int64
	// future holds corelets waiting on rows not currently resident: rows
	// beyond the window (flow-control back-pressure on leaders) or rows
	// evicted from under a pending fetch (no-flow-control mode). At most a
	// handful of rows are ever parked at once, so a linear scan beats a map;
	// the list is unordered (only keyed lookups, never iterated for effect).
	future []futureRow
	// waiterPool recycles detached future wait-list backing arrays, so the
	// park/serve cycle stops allocating once warm.
	waiterPool [][]waiter
	// inFlight marks outstanding fetches: key = row*256 + corelet for slab
	// demand fetches, row*256 + 255 for full-row prefetches. Bounded by
	// Entries outstanding row fetches + Corelets slab fetches, so a small
	// unordered slice replaces the map.
	inFlight []int64
	// pending are fetches bounced off a full controller queue, retried by
	// Pump (same key encoding as inFlight).
	pending []int64
	// prober is the port's optional stall-probe capability (mem.System has
	// it); nil keeps bounced fetches on the quiescence busy path.
	prober stallProber
	// ctxFree recycles fetch-context objects (see fetchCtx); pre-seeded to
	// the in-flight bound so steady-state issues allocate nothing.
	ctxFree []*fetchCtx
	// stash is the per-corelet snoop latch: without flow control, a
	// prematurely evicted row is demand re-fetched and forwarded rather
	// than re-buffered; each requesting corelet latches its slab of the
	// passing fill (64 B), so its subsequent words of that row hit the
	// latch instead of re-fetching (Section IV-C: lagging corelets are
	// "exposed to die-stacked memory latency").
	stash []int64
	stats Stats
	// trace observes buffer events when installed (nil = off): kind is
	// "prefetch", "flow-block", "starve", or "evict".
	trace func(kind string, row int64)
}

// New creates a buffer reading through the given memory port; Start must be
// called before use.
func New(cfg Config, port mem.Port) (*Buffer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if port == nil {
		return nil, fmt.Errorf("prefetch: nil memory port")
	}
	b := &Buffer{
		cfg:      cfg,
		port:     port,
		fullMask: uint64(1)<<uint(cfg.SlabWords()) - 1,
	}
	b.prober, _ = port.(stallProber)
	maxW := cfg.MaxWaiters
	if maxW <= 0 {
		maxW = cfg.Corelets
	}
	b.entries = make([]entry, cfg.Entries)
	for i := range b.entries {
		b.entries[i].row = -1
		b.entries[i].consumed = make([]uint64, cfg.Corelets)
		b.entries[i].waiters = make([]waiter, 0, maxW)
	}
	// Every (corelet, context) can park on at most one row, so the number
	// of simultaneously live wait-lists — resident entries plus parked
	// future rows — is bounded by Entries + Corelets lists in practice
	// (without flow control, lagging corelets spread across many rows).
	// Seed the pool past that so the cycle loop never allocates a list.
	nlists := cfg.Entries + cfg.Corelets
	b.future = make([]futureRow, 0, nlists)
	b.waiterPool = make([][]waiter, 0, 2*nlists)
	for i := 0; i < nlists; i++ {
		b.waiterPool = append(b.waiterPool, make([]waiter, 0, maxW))
	}
	b.stash = make([]int64, cfg.Corelets)
	for i := range b.stash {
		b.stash[i] = -1
	}
	bound := cfg.Entries + cfg.Corelets + 1
	b.inFlight = make([]int64, 0, bound)
	b.pending = make([]int64, 0, bound)
	b.ctxFree = make([]*fetchCtx, 0, bound)
	for i := 0; i < bound; i++ {
		b.ctxFree = append(b.ctxFree, newFetchCtx(b))
	}
	return b, nil
}

// fetchCtx carries the (row, who) identity of one outstanding fetch into the
// memory system's completion callback. The closure is built once per context
// and contexts recycle through ctxFree, so a fetch issue allocates nothing
// once the pool is warm (it is pre-seeded to the in-flight bound: Entries
// row fetches + Corelets slab fetches).
type fetchCtx struct {
	row  int64
	who  int
	done func(int64, bool)
}

func newFetchCtx(b *Buffer) *fetchCtx {
	c := &fetchCtx{}
	c.done = func(int64, bool) {
		b.arrive(c.row, c.who)
		b.ctxFree = append(b.ctxFree, c)
	}
	return c
}

// Stats returns a copy of the event counters.
func (b *Buffer) Stats() Stats { return b.stats }

// Config returns the buffer configuration.
func (b *Buffer) Config() Config { return b.cfg }

// SetTracer installs a buffer-event observer.
func (b *Buffer) SetTracer(t func(kind string, row int64)) { b.trace = t }

func (b *Buffer) emit(kind string, row int64) {
	if b.trace != nil {
		b.trace(kind, row)
	}
}

// Start begins streaming the input region [base, base+bytes) and issues the
// initial prefetches that fill the queue.
func (b *Buffer) Start(base uint32, bytes int) error {
	if int64(base)%int64(b.cfg.RowBytes) != 0 {
		return fmt.Errorf("prefetch: base %#x not row-aligned", base)
	}
	b.rowBytes = int64(b.cfg.RowBytes)
	b.rowShift = 0
	if b.rowBytes&(b.rowBytes-1) == 0 {
		for 1<<b.rowShift < b.rowBytes {
			b.rowShift++
		}
	}
	b.baseRow = int64(base) / b.rowBytes
	b.rowCount = (int64(bytes) + b.rowBytes - 1) / b.rowBytes
	b.nextRow = 0
	n := int64(b.cfg.Entries)
	if n > b.rowCount {
		n = b.rowCount
	}
	for i := int64(0); i < n; i++ {
		b.allocate()
	}
	return nil
}

// slotOf returns the circular-queue slot for relative row r.
func (b *Buffer) slotOf(r int64) int { return int(r % int64(b.cfg.Entries)) }

// futureIdx returns the index of row's parked wait-list, or -1.
func (b *Buffer) futureIdx(row int64) int {
	for i := range b.future {
		if b.future[i].row == row {
			return i
		}
	}
	return -1
}

// newWaiters returns an empty wait-list, reusing a pooled backing array.
func (b *Buffer) newWaiters() []waiter {
	if n := len(b.waiterPool); n > 0 {
		ws := b.waiterPool[n-1]
		b.waiterPool = b.waiterPool[:n-1]
		return ws
	}
	n := b.cfg.MaxWaiters
	if n <= 0 {
		n = b.cfg.Corelets
	}
	return make([]waiter, 0, n)
}

// recycle returns a detached wait-list's backing array to the pool. Callers
// must only recycle after they are done iterating the slice.
func (b *Buffer) recycle(ws []waiter) {
	if cap(ws) > 0 {
		b.waiterPool = append(b.waiterPool, ws[:0])
	}
}

// addFuture parks one waiter on a non-resident row.
func (b *Buffer) addFuture(row int64, w waiter) {
	if i := b.futureIdx(row); i >= 0 {
		b.future[i].waiters = append(b.future[i].waiters, w)
		return
	}
	b.future = append(b.future, futureRow{row: row, waiters: append(b.newWaiters(), w)})
}

// takeFuture detaches and returns row's parked wait-list (nil if none). The
// caller iterates it and then recycles it; detaching first keeps the list
// safe against b.future mutations from callbacks fired mid-iteration.
func (b *Buffer) takeFuture(row int64) []waiter {
	i := b.futureIdx(row)
	if i < 0 {
		return nil
	}
	ws := b.future[i].waiters
	last := len(b.future) - 1
	b.future[i] = b.future[last]
	b.future[last] = futureRow{}
	b.future = b.future[:last]
	return ws
}

// evictWaiters parks an entry's outstanding waiters in future; the data they
// asked for is forwarded when the row's in-flight (or Pump-pending) fetch
// arrives. Waiters exist only on unfilled entries, which by construction
// always have an in-flight or pending fetch.
func (b *Buffer) evictWaiters(e *entry) {
	if len(e.waiters) == 0 {
		return
	}
	if i := b.futureIdx(e.row); i >= 0 {
		b.future[i].waiters = append(b.future[i].waiters, e.waiters...)
	} else {
		b.future = append(b.future, futureRow{row: e.row, waiters: append(b.newWaiters(), e.waiters...)})
	}
	e.waiters = e.waiters[:0]
}

// allocate assigns nextRow to its slot and issues the fetch. The caller has
// already checked flow-control eligibility.
func (b *Buffer) allocate() {
	r := b.nextRow
	b.nextRow++
	e := &b.entries[b.slotOf(r)]
	if e.row >= 0 && e.df < b.cfg.Corelets {
		b.stats.PrematureEvicts++
		b.emit("evict", e.row)
		b.evictWaiters(e)
	}
	e.reset(r)
	b.adoptFuture(e)
	b.issueRow(r)
	b.stats.Prefetches++
	b.emit("prefetch", r)
}

const fullRowKey = 255

// issueRow sends the full-row prefetch for row, unless one is already
// outstanding; a rejection by the controller queues it for Pump.
func (b *Buffer) issueRow(row int64) { b.issue(row, fullRowKey) }

// issueSlab sends a 64 B demand fetch of corelet c's slab of row
// (no-flow-control laggard path).
func (b *Buffer) issueSlab(row int64, c int) { b.issue(row, c) }

func (b *Buffer) issue(row int64, who int) {
	key := row*256 + int64(who)
	for _, k := range b.inFlight {
		if k == key {
			return
		}
	}
	addr := uint32((b.baseRow + row) * b.rowBytes)
	bytes := b.cfg.RowBytes
	if who != fullRowKey {
		bytes = b.cfg.SlabWords() * 4
		addr += uint32(who * bytes)
	}
	n := len(b.ctxFree)
	if n == 0 {
		b.ctxFree = append(b.ctxFree, newFetchCtx(b))
		n = 1
	}
	c := b.ctxFree[n-1]
	b.ctxFree = b.ctxFree[:n-1]
	c.row, c.who = row, who
	ok := b.port.Enqueue(mem.Request{Addr: addr, Bytes: bytes, Done: c.done})
	if !ok {
		b.ctxFree = append(b.ctxFree, c)
		b.stats.FetchRejects++
		b.pending = append(b.pending, key)
		return
	}
	b.inFlight = append(b.inFlight, key)
}

// PumpPending returns the number of bounced fetches awaiting a Pump retry.
// The owning processor's quiescence probe treats any pending retry as work
// on its very next cycle.
func (b *Buffer) PumpPending() int { return len(b.pending) }

// stallProber is the optional port capability the quiescence fast-forward
// uses to prove a bounced fetch will bounce again: the target queue is
// still full, and only channel-domain work ticks (which end any skip
// window) can drain it.
type stallProber interface {
	WouldAccept(addr uint32) bool
	TallyRejects(addr uint32, n uint64)
}

// keyAddr recomputes the request address issue() built for a pending key.
func (b *Buffer) keyAddr(k int64) uint32 {
	row, who := k/256, int(k%256)
	addr := uint32((b.baseRow + row) * b.rowBytes)
	if who != fullRowKey {
		addr += uint32(who * b.cfg.SlabWords() * 4)
	}
	return addr
}

// PumpStalled reports whether every bounced fetch would provably bounce
// again this instant (its channel queue is still full). False when nothing
// is pending or the port cannot be probed.
func (b *Buffer) PumpStalled() bool {
	if b.prober == nil || len(b.pending) == 0 {
		return false
	}
	for _, k := range b.pending {
		if b.prober.WouldAccept(b.keyAddr(k)) {
			return false
		}
	}
	return true
}

// SkipPumpTicks replays n elided Pump calls taken under PumpStalled: per
// elided cycle every pending fetch re-issues and is rejected, so each
// tallies one fetch reject here and one enqueue reject on its channel —
// exactly Pump's per-cycle bookkeeping against a full queue, with the
// pending set, its order, and the context freelist left untouched.
func (b *Buffer) SkipPumpTicks(n int64) {
	if n <= 0 {
		return
	}
	for _, k := range b.pending {
		b.stats.FetchRejects += uint64(n)
		b.prober.TallyRejects(b.keyAddr(k), uint64(n))
	}
}

// Pump retries fetches that bounced off a full controller queue. The owning
// processor calls it once per cycle.
func (b *Buffer) Pump() {
	if len(b.pending) == 0 {
		return
	}
	keys := b.pending
	b.pending = b.pending[:0]
	for _, k := range keys {
		b.issue(k/256, int(k%256))
	}
}

// arrive completes a fetch. A full-row arrival fills the entry if the row
// still owns its slot and forwards to everyone parked on the row; a slab
// arrival latches into the requesting corelet's stash and wakes only its
// own waiters.
func (b *Buffer) arrive(row int64, who int) {
	key := row*256 + int64(who)
	for i, k := range b.inFlight {
		if k == key {
			last := len(b.inFlight) - 1
			b.inFlight[i] = b.inFlight[last]
			b.inFlight = b.inFlight[:last]
			break
		}
	}
	if who == fullRowKey {
		e := &b.entries[b.slotOf(row)]
		if e.row == row && !e.filled {
			e.filled = true
			ws := e.waiters
			e.waiters = e.waiters[:0]
			for _, w := range ws {
				b.consume(e, w.corelet, w.slot)
				if w.cb != nil {
					w.cb()
				}
			}
		}
		if ws := b.takeFuture(row); ws != nil {
			for _, w := range ws {
				b.stash[w.corelet] = row
				if w.cb != nil {
					w.cb()
				}
			}
			b.recycle(ws)
		}
		return
	}
	// Slab arrival: serve this corelet's waiters for the row, re-parking the
	// rest. The list is detached up front so callbacks are free to touch
	// b.future.
	ws := b.takeFuture(row)
	if ws == nil {
		return
	}
	rest := ws[:0]
	for _, w := range ws {
		if w.corelet == who {
			b.stash[who] = row
			if w.cb != nil {
				w.cb()
			}
		} else {
			rest = append(rest, w)
		}
	}
	if len(rest) == 0 {
		b.recycle(ws)
	} else {
		b.future = append(b.future, futureRow{row: row, waiters: rest})
	}
}

// consume marks one slab word consumed and maintains the DF counter; a head
// entry whose counter saturates fires any flow-control-deferred trigger.
func (b *Buffer) consume(e *entry, corelet, slot int) {
	bit := uint64(1) << uint(slot)
	if e.consumed[corelet]&bit != 0 {
		return
	}
	e.consumed[corelet] |= bit
	if e.consumed[corelet] == b.fullMask {
		e.df++
		if uint64(e.df) > b.stats.MaxDF {
			b.stats.MaxDF = uint64(e.df)
		}
		if b.cfg.FlowControl && e.df >= b.cfg.Corelets && b.slotOf(b.nextRow) == b.slotOf(e.row) {
			b.tryDeferredTrigger()
		}
	}
}

// headConsumed reports whether the entry the next prefetch would replace is
// fully consumed (DF saturated) or free.
func (b *Buffer) headConsumed() bool {
	e := &b.entries[b.slotOf(b.nextRow)]
	return e.row < 0 || e.df >= b.cfg.Corelets
}

// advance allocates the next prefetch if the stream is not exhausted and
// flow control permits.
func (b *Buffer) advance() (allocated, exhausted bool) {
	if b.nextRow >= b.rowCount {
		return false, true
	}
	if b.cfg.FlowControl && !b.headConsumed() {
		b.stats.FlowBlocks++
		b.emit("flow-block", b.nextRow)
		return false, false
	}
	b.allocate()
	return true, false
}

// tryDeferredTrigger fires a trigger that flow control deferred: while the
// stream is live the tail entry keeps its PFT bit set until its trigger
// succeeds, so once the head is consumed the window can advance. This is the
// paper's "later demand access to the tail issues the next prefetch", made
// robust for the case where the saturating consumption happened on a fill
// callback and no later tail access exists.
func (b *Buffer) tryDeferredTrigger() bool {
	if b.nextRow >= b.rowCount || b.nextRow == 0 {
		return false
	}
	tail := &b.entries[b.slotOf(b.nextRow-1)]
	if tail.row != b.nextRow-1 || !tail.pft {
		return false
	}
	if b.cfg.FlowControl && !b.headConsumed() {
		return false
	}
	b.allocate()
	tail.pft = false
	b.stats.TriggerClears++
	return true
}

// Access requests the word at byte address addr on behalf of corelet c; slot
// is the word's index within the corelet's slab (0..SlabWords-1), which the
// corelet model derives from its context and stream position. On Waiting,
// cb fires when the word becomes available (in the memory clock domain).
func (b *Buffer) Access(c int, slot int, addr uint32, cb func()) Result {
	var row int64
	if b.rowShift != 0 {
		row = int64(addr)>>b.rowShift - b.baseRow
	} else {
		row = int64(addr)/b.rowBytes - b.baseRow
	}
	if row < 0 || row >= b.rowCount {
		panic(fmt.Sprintf("prefetch: access %#x outside streamed region", addr))
	}
	e := &b.entries[b.slotOf(row)]
	if e.row == row {
		// First demand access to the tail entry triggers the next row's
		// prefetch (Section IV-C); flow control may defer it, leaving the
		// PFT bit set for a later retry. The allocation targets a
		// different slot (Entries >= 2), so e remains this row's entry.
		if e.pft && row == b.nextRow-1 {
			if allocated, exhausted := b.advance(); allocated || exhausted {
				e.pft = false
				b.stats.TriggerClears++
			}
		}
		if e.filled {
			b.consume(e, c, slot)
			b.stats.ReadyHits++
			return Ready
		}
		e.waiters = append(e.waiters, waiter{c, slot, cb})
		b.stats.Starved++
		return Waiting
	}
	if row >= b.nextRow {
		// A leading corelet ran past the prefetched window. Without flow
		// control the window simply chases the demand; with flow control
		// it advances only as far as consumed heads allow, and the corelet
		// parks until the row's future allocation.
		if b.cfg.FlowControl {
			for row >= b.nextRow && b.tryDeferredTrigger() {
			}
		} else {
			for row >= b.nextRow {
				b.allocate()
			}
		}
		if e := &b.entries[b.slotOf(row)]; e.row == row {
			if e.filled {
				b.consume(e, c, slot)
				b.stats.ReadyHits++
				return Ready
			}
			e.waiters = append(e.waiters, waiter{c, slot, cb})
			b.stats.Starved++
			return Waiting
		}
		b.addFuture(row, waiter{c, slot, cb})
		b.stats.Starved++
		return Waiting
	}
	// Lagging corelet: the row was prematurely evicted (only possible
	// without flow control). A demand re-fetch forwards the data without
	// re-buffering it — the corelet latches its slab from the passing
	// fill — so the laggard pays the DRAM latency the paper describes
	// without evicting rows other corelets are still consuming.
	if b.stash[c] == row {
		b.stats.StashHits++
		return Ready
	}
	b.stats.DemandRowFetches++
	b.addFuture(row, waiter{c, slot, cb})
	b.issueSlab(row, c)
	b.stats.Starved++
	return Waiting
}

// adoptFuture moves waiters of the row just tagged into the entry's wait
// list; they are served when the fill arrives.
func (b *Buffer) adoptFuture(e *entry) {
	if ws := b.takeFuture(e.row); ws != nil {
		e.waiters = append(e.waiters, ws...)
		b.recycle(ws)
	}
}

// Occupancy returns the number of allocated entries whose data is filled
// but not yet fully consumed — the "fullness" signal for rate matching.
func (b *Buffer) Occupancy() int {
	n := 0
	for i := range b.entries {
		e := &b.entries[i]
		if e.row >= 0 && e.filled && e.df < b.cfg.Corelets {
			n++
		}
	}
	return n
}

// Done reports whether the whole stream has been prefetched and no corelet
// is waiting on any row.
func (b *Buffer) Done() bool {
	if b.nextRow < b.rowCount {
		return false
	}
	for i := range b.entries {
		if len(b.entries[i].waiters) > 0 {
			return false
		}
	}
	return len(b.future) == 0
}
