package cache

import "repro/internal/metrics"

// RegisterStats publishes the cache counters of the Stats returned by get
// under prefix (e.g. "cache", "l1", "l2"). get is evaluated only at
// snapshot time, so it may aggregate across a processor's private caches.
func RegisterStats(r *metrics.Registry, prefix string, get func() Stats) {
	r.Counter(prefix+".hits", func() uint64 { return get().Hits })
	r.Counter(prefix+".misses", func() uint64 { return get().Misses })
	r.Counter(prefix+".mshr_merges", func() uint64 { return get().MSHRMerges })
	r.Counter(prefix+".prefetch_issue", func() uint64 { return get().PrefetchIssue })
	r.Counter(prefix+".prefetch_hits", func() uint64 { return get().PrefetchHits })
	r.Counter(prefix+".retries", func() uint64 { return get().Retries })
	r.Gauge(prefix+".hit_rate", func() float64 { return get().HitRate() })
	r.Gauge(prefix+".prefetch_accuracy", func() float64 {
		s := get()
		if s.PrefetchIssue == 0 {
			return 0
		}
		return float64(s.PrefetchHits) / float64(s.PrefetchIssue)
	})
}

// Add accumulates o into s — how a processor folds per-core cache counters
// into its aggregate.
func (s *Stats) Add(o Stats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.MSHRMerges += o.MSHRMerges
	s.PrefetchIssue += o.PrefetchIssue
	s.PrefetchHits += o.PrefetchHits
	s.Retries += o.Retries
}
