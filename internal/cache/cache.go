// Package cache models the set-associative caches used by the non-Millipede
// architectures: SSMC's 5 KB per-core L1 D-cache, the GPGPU SM's 32 KB L1
// D-cache, and the conventional multicore's 64 KB L1 / 1 MB L2 hierarchy
// (Table III). All of them apply sequential next-block prefetch to the input
// stream, the paper's "cache-block prefetch" baseline.
//
// The model is tag-only: hits and misses are tracked per line, fills arrive
// via the backing store's callback, and the functional data always comes
// from the DRAM word store (the input dataset is read-only during a kernel).
// Live state is modeled as cache-resident (the paper stipulates that BMLA
// live state "completely fits" in the small caches, Section V), so only the
// streaming input competes for lines here.
package cache

import (
	"fmt"
	"math/bits"

	"repro/internal/mem"
)

// Config sizes a cache.
type Config struct {
	SizeBytes int
	LineBytes int
	Assoc     int
	// PrefetchDepth is how many blocks ahead to prefetch;
	// 0 disables prefetching.
	PrefetchDepth int
	// PrefetchStrideBlocks is the distance between prefetched blocks in
	// units of blocks (0 or 1 = next-block). SSMC uses the row stride: a
	// core's slab recurs every DRAM row, so its stream prefetcher strides
	// by RowBytes/LineBytes blocks.
	PrefetchStrideBlocks int
	// HashSets XOR-folds high block bits into the set index, the standard
	// anti-aliasing hash for strided streams (a row-strided stream would
	// otherwise land in gcd(stride, sets) sets and thrash).
	HashSets bool
}

// Validate checks the configuration and returns the number of sets.
func (c Config) Validate() (sets int, err error) {
	if c.LineBytes <= 0 || c.SizeBytes <= 0 || c.Assoc <= 0 {
		return 0, fmt.Errorf("cache: non-positive geometry %+v", c)
	}
	lines := c.SizeBytes / c.LineBytes
	if lines == 0 || lines%c.Assoc != 0 {
		return 0, fmt.Errorf("cache: %d lines not divisible by assoc %d", lines, c.Assoc)
	}
	if c.PrefetchDepth < 0 {
		return 0, fmt.Errorf("cache: negative prefetch depth")
	}
	if c.PrefetchStrideBlocks < 0 {
		return 0, fmt.Errorf("cache: negative prefetch stride")
	}
	return lines / c.Assoc, nil
}

// Stats counts cache events.
type Stats struct {
	Hits          uint64
	Misses        uint64
	MSHRMerges    uint64 // demand accesses merged into an in-flight fill
	PrefetchIssue uint64
	PrefetchHits  uint64 // demand hits on lines brought in by prefetch
	Retries       uint64 // accesses bounced because backing was full
}

// HitRate returns hits/(hits+misses+merges).
func (s Stats) HitRate() float64 {
	t := s.Hits + s.Misses + s.MSHRMerges
	if t == 0 {
		return 0
	}
	return float64(s.Hits) / float64(t)
}

type line struct {
	tag        int64 // block id; -1 invalid
	lastUse    uint64
	prefetched bool // filled by prefetch, not yet demand-referenced
	inFlight   bool // fill requested but not arrived
}

// Cache is a single level. It is driven entirely by Access calls and fill
// callbacks; it has no clock of its own.
type Cache struct {
	cfg   Config
	sets  [][]line
	nsets int
	// lineShift/setMask fast-path blockOf and setOf when the line size and
	// set count are powers of two (the only geometries the models use);
	// -1/0 fall back to the general divide/modulo, computing identical
	// indices either way.
	lineShift int
	setMask   int64
	// lastWay[set] points at the line most recently returned by find in
	// that set (nil until its first hit) — a per-set MRU filter over the
	// way scan that survives many interleaved streams (a single global
	// entry thrashes when every context streams through its own lines).
	lastWay []*line
	backing mem.Port
	useTick uint64
	// mshr holds the in-flight fills (block id -> waiters). A linear-scan
	// slice, not a map: mshrMax is single-digit, and a map's delete/insert
	// churn allocates overflow buckets in the steady state.
	mshr []mshrEntry
	// limit of distinct in-flight fills (simple MSHR count).
	mshrMax int
	stats   Stats
	// nextPrefetch remembers a prefetch that bounced off a full backing
	// queue, retried on the next access.
	pendingPrefetch int64 // block id, -1 none
	// fillFree and wlistFree recycle the per-fill Done context and the MSHR
	// waiter lists so the steady-state access path allocates nothing.
	fillFree  []*fillCtx
	wlistFree [][]func()
	relayFree []*relayCtx
}

// mshrEntry is one in-flight fill and the demand accesses merged into it.
type mshrEntry struct {
	block   int64
	waiters []func()
}

// mshrFind returns the index of block's in-flight fill, or -1.
func (c *Cache) mshrFind(block int64) int {
	for i := range c.mshr {
		if c.mshr[i].block == block {
			return i
		}
	}
	return -1
}

// mshrDelete swap-removes entry i (no behavior depends on entry order).
func (c *Cache) mshrDelete(i int) {
	last := len(c.mshr) - 1
	c.mshr[i] = c.mshr[last]
	c.mshr[last] = mshrEntry{}
	c.mshr = c.mshr[:last]
}

// fillCtx carries one in-flight fill's completion state. Its done closure is
// built once and reused for every fill the context serves.
type fillCtx struct {
	c          *Cache
	block      int64
	prefetched bool
	done       func(int64, bool)
}

func (c *Cache) newFillCtx() *fillCtx {
	ctx := &fillCtx{c: c}
	ctx.done = func(int64, bool) {
		ctx.c.fill(ctx.block, ctx.prefetched)
		ctx.c.fillFree = append(ctx.c.fillFree, ctx)
	}
	return ctx
}

func (c *Cache) getFillCtx(block int64, prefetched bool) *fillCtx {
	n := len(c.fillFree)
	if n == 0 {
		c.fillFree = append(c.fillFree, c.newFillCtx())
		n = 1
	}
	ctx := c.fillFree[n-1]
	c.fillFree = c.fillFree[:n-1]
	ctx.block, ctx.prefetched = block, prefetched
	return ctx
}

// getWlist pops a recycled waiter list (fill returns them emptied).
func (c *Cache) getWlist() []func() {
	n := len(c.wlistFree)
	if n == 0 {
		return make([]func(), 0, 8)
	}
	w := c.wlistFree[n-1]
	c.wlistFree = c.wlistFree[:n-1]
	return w
}

// New builds a cache over the given backing memory port — the memory fabric
// itself, or a lower-level Cache. mshrMax bounds distinct outstanding fills
// (demand + prefetch).
func New(cfg Config, backing mem.Port, mshrMax int) (*Cache, error) {
	nsets, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	if backing == nil {
		return nil, fmt.Errorf("cache: nil backing")
	}
	if mshrMax <= 0 {
		return nil, fmt.Errorf("cache: bad mshrMax %d", mshrMax)
	}
	c := &Cache{
		cfg:             cfg,
		nsets:           nsets,
		backing:         backing,
		mshr:            make([]mshrEntry, 0, mshrMax),
		mshrMax:         mshrMax,
		pendingPrefetch: -1,
		lineShift:       -1,
	}
	c.lastWay = make([]*line, nsets)
	if cfg.LineBytes&(cfg.LineBytes-1) == 0 {
		c.lineShift = bits.TrailingZeros(uint(cfg.LineBytes))
	}
	if nsets&(nsets-1) == 0 {
		c.setMask = int64(nsets - 1)
	}
	c.fillFree = make([]*fillCtx, 0, mshrMax+1)
	for i := 0; i < mshrMax; i++ {
		c.fillFree = append(c.fillFree, c.newFillCtx())
	}
	c.wlistFree = make([][]func(), 0, mshrMax+1)
	for i := 0; i < mshrMax; i++ {
		c.wlistFree = append(c.wlistFree, make([]func(), 0, 8))
	}
	// Relay contexts are only used when this cache backs another cache
	// (mem.Port Enqueue); outstanding relays are bounded by the upstream
	// cache's MSHR count, for which our own mshrMax is a fair proxy.
	c.relayFree = make([]*relayCtx, 0, 4*mshrMax)
	for i := 0; i < 2*mshrMax; i++ {
		c.relayFree = append(c.relayFree, c.newRelayCtx())
	}
	c.sets = make([][]line, nsets)
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Assoc)
		for j := range c.sets[i] {
			c.sets[i][j].tag = -1
		}
	}
	return c, nil
}

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

func (c *Cache) blockOf(addr uint32) int64 {
	if c.lineShift >= 0 {
		return int64(addr >> uint(c.lineShift))
	}
	return int64(addr) / int64(c.cfg.LineBytes)
}

func (c *Cache) setOf(block int64) int {
	if c.cfg.HashSets {
		block ^= block >> 5
		block ^= block >> 10
	}
	if c.setMask != 0 {
		// Blocks are non-negative (32-bit addresses), so the masked index
		// equals the sign-fixed double modulo below.
		return int(block & c.setMask)
	}
	return int((block%int64(c.nsets) + int64(c.nsets)) % int64(c.nsets))
}

func (c *Cache) find(block int64) *line {
	// MRU shortcut: streaming kernels touch a line's 16 words back to back,
	// so each set's last-hit way answers most lookups without a way scan.
	// Lines live in fixed arrays (never reallocated) and the tag check
	// makes the shortcut self-validating across evictions.
	s := c.setOf(block)
	if ln := c.lastWay[s]; ln != nil && ln.tag == block {
		return ln
	}
	set := c.sets[s]
	for i := range set {
		if set[i].tag == block {
			c.lastWay[s] = &set[i]
			return &set[i]
		}
	}
	return nil
}

// victim returns an invalid line if the set has one, else the LRU line that
// is not mid-fill; nil if every line is mid-fill (access must retry).
func (c *Cache) victim(block int64) *line {
	set := c.sets[c.setOf(block)]
	var v *line
	for i := range set {
		ln := &set[i]
		if ln.inFlight {
			continue
		}
		if ln.tag == -1 {
			return ln
		}
		if v == nil || ln.lastUse < v.lastUse {
			v = ln
		}
	}
	return v
}

// Result of an Access.
type Result int

const (
	// Hit: data available now.
	Hit Result = iota
	// Miss: fill requested; onFill will be called when it arrives.
	Miss
	// Retry: the access could not be handled this cycle (backing queue or
	// MSHRs full); the caller must re-issue later. onFill is dropped.
	Retry
)

// Access performs a demand read of addr. On Miss the caller's onFill runs
// when the line arrives (in the backing's clock domain).
func (c *Cache) Access(addr uint32, onFill func()) Result {
	c.useTick++
	block := c.blockOf(addr)
	if ln := c.find(block); ln != nil && !ln.inFlight {
		ln.lastUse = c.useTick
		c.stats.Hits++
		if ln.prefetched {
			ln.prefetched = false
			c.stats.PrefetchHits++
		}
		c.maybePrefetch(block)
		return Hit
	}
	// In-flight fill for this block: merge.
	if i := c.mshrFind(block); i >= 0 {
		c.mshr[i].waiters = append(c.mshr[i].waiters, onFill)
		c.stats.MSHRMerges++
		return Miss
	}
	if len(c.mshr) >= c.mshrMax {
		c.stats.Retries++
		return Retry
	}
	ln := c.victim(block)
	if ln == nil {
		c.stats.Retries++
		return Retry
	}
	// Register the line and MSHR entry *before* calling the backing: a
	// lower-level cache hit completes synchronously, re-entering fill.
	saved := *ln
	ln.tag = block
	ln.inFlight = true
	ln.prefetched = false
	ln.lastUse = c.useTick
	wl := append(c.getWlist(), onFill)
	c.mshr = append(c.mshr, mshrEntry{block: block, waiters: wl})
	ctx := c.getFillCtx(block, false)
	fillAddr := uint32(block) * uint32(c.cfg.LineBytes)
	ok := c.backing.Enqueue(mem.Request{Addr: fillAddr, Bytes: c.cfg.LineBytes, Done: ctx.done})
	if !ok {
		*ln = saved
		if i := c.mshrFind(block); i >= 0 {
			c.mshrDelete(i)
		}
		c.wlistFree = append(c.wlistFree, wl[:0])
		c.fillFree = append(c.fillFree, ctx)
		c.stats.Retries++
		return Retry
	}
	c.stats.Misses++
	c.maybePrefetch(block)
	return Miss
}

// stallProber is the optional backing capability the quiescence
// fast-forward uses (mem.System implements it): probe whether an enqueue
// for addr would be accepted, and replay elided rejected attempts.
type stallProber interface {
	WouldAccept(addr uint32) bool
	TallyRejects(addr uint32, n uint64)
}

// WouldRetry reports whether an Access for addr would return Retry this
// instant, without touching any cache state. It mirrors Access's decision
// order: hit and MSHR-merge accesses do real work (false); a full MSHR
// table or a set with every line mid-fill retries (true); otherwise the
// access would attempt a fill, which retries only if the backing bounces —
// unknowable without a probe-capable backing, so that reports false (busy).
func (c *Cache) WouldRetry(addr uint32) bool {
	block := c.blockOf(addr)
	if ln := c.find(block); ln != nil && !ln.inFlight {
		return false
	}
	if c.mshrFind(block) >= 0 {
		return false
	}
	if len(c.mshr) >= c.mshrMax {
		return true
	}
	if c.victim(block) == nil {
		return true
	}
	p, ok := c.backing.(stallProber)
	return ok && !p.WouldAccept(uint32(block)*uint32(c.cfg.LineBytes))
}

// TallyRetries replays n elided Access attempts for addr inside a skip
// window, each of which provably returned Retry (WouldRetry held and no
// state changed in between): the use clock and retry counter advance per
// attempt, and a bounced fill attempt additionally tallies its reject on
// the backing — exactly Access's Retry bookkeeping, with the line array,
// MSHR table, and freelists net untouched.
func (c *Cache) TallyRetries(addr uint32, n uint64) {
	c.useTick += n
	c.stats.Retries += n
	if len(c.mshr) >= c.mshrMax || c.victim(c.blockOf(addr)) == nil {
		return
	}
	if p, ok := c.backing.(stallProber); ok {
		p.TallyRejects(uint32(c.blockOf(addr))*uint32(c.cfg.LineBytes), n)
	}
}

// fill completes a line fill and releases waiters.
func (c *Cache) fill(block int64, prefetched bool) {
	if ln := c.find(block); ln != nil {
		ln.inFlight = false
		ln.prefetched = prefetched
	}
	i := c.mshrFind(block)
	if i < 0 {
		return
	}
	waiters := c.mshr[i].waiters
	c.mshrDelete(i)
	for _, w := range waiters {
		if w != nil {
			w()
		}
	}
	c.wlistFree = append(c.wlistFree, waiters[:0])
}

// maybePrefetch issues sequential next-block prefetches after a demand
// reference to block.
func (c *Cache) maybePrefetch(block int64) {
	if c.cfg.PrefetchDepth == 0 {
		return
	}
	if c.pendingPrefetch >= 0 {
		p := c.pendingPrefetch
		c.pendingPrefetch = -1
		c.issuePrefetch(p)
	}
	stride := int64(c.cfg.PrefetchStrideBlocks)
	if stride == 0 {
		stride = 1
	}
	for d := 1; d <= c.cfg.PrefetchDepth; d++ {
		c.issuePrefetch(block + int64(d)*stride)
	}
}

func (c *Cache) issuePrefetch(block int64) {
	if c.find(block) != nil {
		return // present or already in flight
	}
	if c.mshrFind(block) >= 0 {
		return
	}
	if len(c.mshr) >= c.mshrMax {
		return // drop; demand stream will re-trigger
	}
	ln := c.victim(block)
	if ln == nil {
		return
	}
	// Evict the victim for the incoming prefetch before calling the
	// backing (see Access for the synchronous-completion ordering).
	saved := *ln
	ln.tag = block
	ln.inFlight = true
	ln.prefetched = false
	ln.lastUse = c.useTick
	wl := c.getWlist()
	c.mshr = append(c.mshr, mshrEntry{block: block, waiters: wl})
	ctx := c.getFillCtx(block, true)
	fillAddr := uint32(block) * uint32(c.cfg.LineBytes)
	ok := c.backing.Enqueue(mem.Request{Addr: fillAddr, Bytes: c.cfg.LineBytes, Done: ctx.done})
	if !ok {
		*ln = saved
		if i := c.mshrFind(block); i >= 0 {
			c.mshrDelete(i)
		}
		c.wlistFree = append(c.wlistFree, wl[:0])
		c.fillFree = append(c.fillFree, ctx)
		c.pendingPrefetch = block
		return
	}
	c.stats.PrefetchIssue++
}

// Contains reports whether block holding addr is resident and filled
// (for tests and assertions).
func (c *Cache) Contains(addr uint32) bool {
	ln := c.find(c.blockOf(addr))
	return ln != nil && !ln.inFlight
}

// relayCtx adapts one upstream mem.Request Done to this cache's onFill
// callback shape without allocating a fresh closure per request.
type relayCtx struct {
	c    *Cache
	done func(int64, bool)
	fn   func()
}

func (c *Cache) newRelayCtx() *relayCtx {
	ctx := &relayCtx{c: c}
	ctx.fn = func() {
		if ctx.done != nil {
			ctx.done(0, false)
		}
		ctx.done = nil
		ctx.c.relayFree = append(ctx.c.relayFree, ctx)
	}
	return ctx
}

func (c *Cache) getRelayCtx(done func(int64, bool)) *relayCtx {
	n := len(c.relayFree)
	if n == 0 {
		c.relayFree = append(c.relayFree, c.newRelayCtx())
		n = 1
	}
	ctx := c.relayFree[n-1]
	c.relayFree = c.relayFree[:n-1]
	ctx.done = done
	return ctx
}

// Enqueue implements mem.Port, allowing a Cache to back another Cache (the
// multicore's L1 -> L2). A hit returns data "immediately" (Done called
// synchronously with cycle 0 and rowHit true; the L1 model adds the L2 hit
// latency itself). A Retry maps to false, as a full controller queue would.
func (c *Cache) Enqueue(r mem.Request) bool {
	ctx := c.getRelayCtx(r.Done)
	res := c.Access(r.Addr, ctx.fn)
	switch res {
	case Hit:
		ctx.done = nil
		c.relayFree = append(c.relayFree, ctx)
		if r.Done != nil {
			r.Done(0, true)
		}
		return true
	case Miss:
		return true
	default:
		ctx.done = nil
		c.relayFree = append(c.relayFree, ctx)
		return false
	}
}

// Tick implements mem.Port. The cache has no clock of its own — fills
// arrive on the backing's clock — so it is a no-op.
func (c *Cache) Tick() {}

// Idle implements mem.Port: true when no fills are outstanding.
func (c *Cache) Idle() bool { return len(c.mshr) == 0 }
