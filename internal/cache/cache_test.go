package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

// fakeBacking is a stub mem.Port: it records fetches and completes them on
// demand.
type fakeBacking struct {
	pending []func(int64, bool)
	addrs   []uint32
	full    bool
}

func (b *fakeBacking) Enqueue(r mem.Request) bool {
	if b.full {
		return false
	}
	b.addrs = append(b.addrs, r.Addr)
	b.pending = append(b.pending, r.Done)
	return true
}

func (b *fakeBacking) Tick() {}

func (b *fakeBacking) Idle() bool { return len(b.pending) == 0 }

func (b *fakeBacking) drain() {
	p := b.pending
	b.pending = nil
	for _, f := range p {
		if f != nil {
			f(0, false)
		}
	}
}

func cfgNoPrefetch() Config {
	return Config{SizeBytes: 1024, LineBytes: 128, Assoc: 2, PrefetchDepth: 0}
}

func newCache(t *testing.T, cfg Config, b mem.Port) *Cache {
	t.Helper()
	c, err := New(cfg, b, 8)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	if _, err := (Config{SizeBytes: 1024, LineBytes: 128, Assoc: 2}).Validate(); err != nil {
		t.Error(err)
	}
	bad := []Config{
		{SizeBytes: 0, LineBytes: 128, Assoc: 2},
		{SizeBytes: 1024, LineBytes: 0, Assoc: 2},
		{SizeBytes: 1024, LineBytes: 128, Assoc: 0},
		{SizeBytes: 1024, LineBytes: 128, Assoc: 3}, // 8 lines % 3 != 0
		{SizeBytes: 64, LineBytes: 128, Assoc: 1},   // zero lines
		{SizeBytes: 1024, LineBytes: 128, Assoc: 2, PrefetchDepth: -1},
	}
	for i, c := range bad {
		if _, err := c.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
	if _, err := New(cfgNoPrefetch(), nil, 8); err == nil {
		t.Error("nil backing accepted")
	}
	if _, err := New(cfgNoPrefetch(), &fakeBacking{}, 0); err == nil {
		t.Error("mshrMax 0 accepted")
	}
}

func TestMissThenHit(t *testing.T) {
	b := &fakeBacking{}
	c := newCache(t, cfgNoPrefetch(), b)
	filled := false
	if res := c.Access(0, func() { filled = true }); res != Miss {
		t.Fatalf("cold access = %v, want Miss", res)
	}
	if filled {
		t.Error("fill callback ran before backing completed")
	}
	b.drain()
	if !filled {
		t.Error("fill callback did not run")
	}
	if res := c.Access(64, nil); res != Hit { // same 128B line
		t.Errorf("warm access = %v, want Hit", res)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestMSHRMerge(t *testing.T) {
	b := &fakeBacking{}
	c := newCache(t, cfgNoPrefetch(), b)
	n := 0
	c.Access(0, func() { n++ })
	if res := c.Access(4, func() { n++ }); res != Miss {
		t.Fatalf("second access to in-flight line = %v, want Miss (merge)", res)
	}
	if len(b.addrs) != 1 {
		t.Errorf("backing saw %d fetches, want 1", len(b.addrs))
	}
	b.drain()
	if n != 2 {
		t.Errorf("callbacks run = %d, want 2", n)
	}
	if c.Stats().MSHRMerges != 1 {
		t.Errorf("merges = %d", c.Stats().MSHRMerges)
	}
}

func TestLRUEviction(t *testing.T) {
	// 1 KB, 128 B lines, 2-way => 4 sets. Blocks 0, 4, 8 map to set 0.
	b := &fakeBacking{}
	c := newCache(t, cfgNoPrefetch(), b)
	c.Access(0*128, nil)
	c.Access(4*128, nil)
	b.drain()
	c.Access(0*128, nil) // touch block 0: block 4 is now LRU
	if res := c.Access(8*128, nil); res != Miss {
		t.Fatal("expected miss")
	}
	b.drain()
	if !c.Contains(0 * 128) {
		t.Error("MRU block 0 was evicted")
	}
	if c.Contains(4 * 128) {
		t.Error("LRU block 4 survived eviction")
	}
	if !c.Contains(8 * 128) {
		t.Error("new block 8 not resident")
	}
}

func TestRetryWhenBackingFull(t *testing.T) {
	b := &fakeBacking{full: true}
	c := newCache(t, cfgNoPrefetch(), b)
	if res := c.Access(0, nil); res != Retry {
		t.Errorf("access with full backing = %v, want Retry", res)
	}
	if c.Stats().Retries != 1 {
		t.Errorf("retries = %d", c.Stats().Retries)
	}
	b.full = false
	if res := c.Access(0, nil); res != Miss {
		t.Errorf("after backing frees = %v, want Miss", res)
	}
}

func TestRetryWhenMSHRsFull(t *testing.T) {
	b := &fakeBacking{}
	c, err := New(cfgNoPrefetch(), b, 1)
	if err != nil {
		t.Fatal(err)
	}
	c.Access(0, nil)
	if res := c.Access(1024, nil); res != Retry {
		t.Errorf("second distinct miss with 1 MSHR = %v, want Retry", res)
	}
	b.drain()
	if res := c.Access(1024, nil); res != Miss {
		t.Errorf("after drain = %v, want Miss", res)
	}
}

func TestSequentialPrefetch(t *testing.T) {
	b := &fakeBacking{}
	cfg := cfgNoPrefetch()
	cfg.PrefetchDepth = 1
	c := newCache(t, cfg, b)
	c.Access(0, nil) // miss block 0, prefetch block 1
	b.drain()
	if len(b.addrs) != 2 || b.addrs[1] != 128 {
		t.Fatalf("backing fetches = %v, want [0 128]", b.addrs)
	}
	if res := c.Access(128, nil); res != Hit {
		t.Errorf("prefetched block access = %v, want Hit", res)
	}
	s := c.Stats()
	if s.PrefetchIssue != 2 { // block 1 (from miss) and block 2 (from hit on 128)
		t.Errorf("prefetch issues = %d, want 2", s.PrefetchIssue)
	}
	if s.PrefetchHits != 1 {
		t.Errorf("prefetch hits = %d", s.PrefetchHits)
	}
}

func TestPrefetchBouncedIsRetried(t *testing.T) {
	b := &fakeBacking{}
	cfg := cfgNoPrefetch()
	cfg.PrefetchDepth = 1
	c := newCache(t, cfg, b)
	c.Access(0, nil)
	b.drain() // block 0 filled, block 1 prefetched
	b.full = true
	c.Access(128, nil) // hit block 1; prefetch of block 2 bounces
	b.full = false
	c.Access(132, nil) // hit block 1; pending prefetch retried
	found := false
	for _, a := range b.addrs {
		if a == 256 {
			found = true
		}
	}
	if !found {
		t.Errorf("bounced prefetch never retried: %v", b.addrs)
	}
}

func TestStreamHitRateWithPrefetch(t *testing.T) {
	// Stream 64 sequential words per block over 32 blocks; with depth-1
	// prefetch and immediate fills, everything after block 0 should hit.
	b := &fakeBacking{}
	cfg := Config{SizeBytes: 2048, LineBytes: 128, Assoc: 4, PrefetchDepth: 1}
	c := newCache(t, cfg, b)
	misses := 0
	for addr := uint32(0); addr < 32*128; addr += 4 {
		res := c.Access(addr, nil)
		b.drain() // backing is instantaneous
		if res == Miss {
			misses++
		}
	}
	if misses != 1 {
		t.Errorf("misses = %d, want 1 (cold block only)", misses)
	}
}

func TestCacheAsBackingForCache(t *testing.T) {
	// L1 over L2 over fake memory: L1 miss that hits in L2 completes
	// synchronously; both track stats.
	fm := &fakeBacking{}
	l2 := newCache(t, Config{SizeBytes: 4096, LineBytes: 128, Assoc: 4}, fm)
	l1 := newCache(t, Config{SizeBytes: 512, LineBytes: 128, Assoc: 2}, l2)
	done := 0
	l1.Access(0, func() { done++ })
	fm.drain()
	if done != 1 {
		t.Fatal("L1 fill via L2 did not complete")
	}
	// Evict block 0 from tiny L1 by filling its set (blocks 0,2,4 share set 0 of 2 sets... 512/128=4 lines, 2 sets).
	l1.Access(2*128, nil)
	l1.Access(4*128, nil)
	fm.drain()
	// Re-access block 0: L1 miss, L2 hit -> synchronous completion.
	hitDone := false
	res := l1.Access(0, func() { hitDone = true })
	if res != Miss || !hitDone {
		t.Errorf("L1 miss/L2 hit: res=%v done=%v, want Miss/true", res, hitDone)
	}
	if l2.Stats().Hits == 0 {
		t.Error("L2 recorded no hits")
	}
}

func TestHitRateStat(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Error("empty hit rate")
	}
	s.Hits, s.Misses, s.MSHRMerges = 6, 2, 2
	if s.HitRate() != 0.6 {
		t.Errorf("hit rate = %v", s.HitRate())
	}
}

// Property: a second access to any address immediately after its fill
// completes is always a hit, for arbitrary access sequences.
func TestPropertyFillThenHit(t *testing.T) {
	f := func(addrs []uint16) bool {
		b := &fakeBacking{}
		c, _ := New(Config{SizeBytes: 1024, LineBytes: 128, Assoc: 2, PrefetchDepth: 1}, b, 4)
		for _, a := range addrs {
			addr := uint32(a) * 4
			res := c.Access(addr, nil)
			b.drain()
			if res == Retry {
				continue
			}
			if c.Access(addr, nil) != Hit {
				return false
			}
			b.drain()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
