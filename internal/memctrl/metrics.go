package memctrl

import "repro/internal/metrics"

// RegisterStats publishes the controller counters of the Stats returned by
// get under prefix (e.g. "mem"). get is evaluated only at snapshot time, so
// it may aggregate across channels.
func RegisterStats(r *metrics.Registry, prefix string, get func() Stats) {
	r.Counter(prefix+".enqueued", func() uint64 { return get().Enqueued })
	r.Counter(prefix+".issued", func() uint64 { return get().Issued })
	r.Counter(prefix+".rejected", func() uint64 { return get().Rejected })
	r.Counter(prefix+".stall_cycles", func() uint64 { return get().StallCycles })
	r.Gauge(prefix+".max_occupancy", func() float64 { return float64(get().MaxOccupancy) })
	r.Histogram(prefix+".queue_lat", func() []uint64 {
		h := get().QueueLat
		return h[:]
	})
}
