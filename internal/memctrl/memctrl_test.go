package memctrl

import (
	"testing"

	"repro/internal/dram"
)

func newCtl(t *testing.T, depth int) *Controller {
	t.Helper()
	d, err := dram.New(dram.DefaultParams(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(d, depth)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewRejectsBadDepth(t *testing.T) {
	d, _ := dram.New(dram.DefaultParams(), 1<<12)
	if _, err := New(d, 0); err == nil {
		t.Error("depth 0 accepted")
	}
}

func TestEnqueueDepthLimit(t *testing.T) {
	c := newCtl(t, 2)
	ok1 := c.Enqueue(Request{Addr: 0, Bytes: 128})
	ok2 := c.Enqueue(Request{Addr: 128, Bytes: 128})
	ok3 := c.Enqueue(Request{Addr: 256, Bytes: 128})
	if !ok1 || !ok2 || ok3 {
		t.Errorf("enqueue results = %v %v %v, want true true false", ok1, ok2, ok3)
	}
	s := c.Stats()
	if s.Enqueued != 2 || s.Rejected != 1 || s.MaxOccupancy != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestSingleRequestCompletes(t *testing.T) {
	c := newCtl(t, 16)
	var doneCycle int64
	var hit bool
	completed := false
	c.Enqueue(Request{Addr: 0, Bytes: 128, Done: func(cy int64, h bool) {
		completed, doneCycle, hit = true, cy, h
	}})
	for i := 0; i < 100 && !completed; i++ {
		c.Tick()
	}
	if !completed {
		t.Fatal("request never completed")
	}
	if hit {
		t.Error("cold access reported row hit")
	}
	// Issued at cycle 1; DRAM: ACT+tRCD(9)+tCAS(9)+burst(8) => done 27,
	// delivered on the first tick at/after.
	if doneCycle < 27 || doneCycle > 28 {
		t.Errorf("done at cycle %d", doneCycle)
	}
	if !c.Idle() {
		t.Error("controller not idle after completion")
	}
}

func TestFRFCFSPrefersRowHit(t *testing.T) {
	c := newCtl(t, 16)
	var order []string
	mk := func(name string, addr uint32) Request {
		return Request{Addr: addr, Bytes: 128, Done: func(int64, bool) { order = append(order, name) }}
	}
	// Open row 0 in bank 0 first.
	c.Enqueue(mk("warm", 0))
	for i := 0; i < 40; i++ {
		c.Tick()
	}
	// Now: an older request to a *different row of bank 0* (miss) and a
	// younger one to the open row. FR-FCFS must issue the row hit first.
	c.Enqueue(mk("miss", 4*2048))
	c.Enqueue(mk("hit", 512))
	for i := 0; i < 200 && len(order) < 3; i++ {
		c.Tick()
	}
	if len(order) != 3 || order[1] != "hit" || order[2] != "miss" {
		t.Errorf("completion order = %v, want [warm hit miss]", order)
	}
}

func TestFCFSAmongMisses(t *testing.T) {
	c := newCtl(t, 16)
	var order []string
	mk := func(name string, addr uint32) Request {
		return Request{Addr: addr, Bytes: 128, Done: func(int64, bool) { order = append(order, name) }}
	}
	// Two conflicting rows in the same bank: oldest first.
	c.Enqueue(mk("a", 4*2048))
	c.Enqueue(mk("b", 8*2048))
	for i := 0; i < 300 && len(order) < 2; i++ {
		c.Tick()
	}
	if len(order) != 2 || order[0] != "a" {
		t.Errorf("order = %v, want a before b", order)
	}
}

func TestBankParallelIssue(t *testing.T) {
	// Requests to different banks issue on consecutive cycles and overlap.
	c := newCtl(t, 16)
	var times []int64
	for b := 0; b < 4; b++ {
		c.Enqueue(Request{Addr: uint32(b * 2048), Bytes: 128, Done: func(cy int64, _ bool) {
			times = append(times, cy)
		}})
	}
	for i := 0; i < 300 && len(times) < 4; i++ {
		c.Tick()
	}
	if len(times) != 4 {
		t.Fatalf("only %d completions", len(times))
	}
	span := times[3] - times[0]
	// Four fully-serial misses would span ~3*26 cycles; overlapped bursts
	// should complete within ~8 cycles of each other per burst.
	if span > 30 {
		t.Errorf("completions span %d cycles; banks not overlapping", span)
	}
}

func TestStallCyclesCounted(t *testing.T) {
	c := newCtl(t, 16)
	// Saturate bank 0 with a full-row burst, then queue another request to
	// the same bank: while the bank is busy, ticks count as stalls.
	c.Enqueue(Request{Addr: 0, Bytes: 2048})
	c.Tick() // issues
	c.Enqueue(Request{Addr: 4 * 2048, Bytes: 128})
	for i := 0; i < 50; i++ {
		c.Tick()
	}
	if c.Stats().StallCycles == 0 {
		t.Error("expected stall cycles while bank busy")
	}
}

func TestPendingAndCycle(t *testing.T) {
	c := newCtl(t, 16)
	c.Enqueue(Request{Addr: 0, Bytes: 128})
	c.Enqueue(Request{Addr: 4 * 2048, Bytes: 128})
	if c.Pending() != 2 {
		t.Errorf("pending = %d", c.Pending())
	}
	c.Tick()
	if c.Cycle() != 1 {
		t.Errorf("cycle = %d", c.Cycle())
	}
	if c.Pending() != 1 {
		t.Errorf("pending after issue = %d", c.Pending())
	}
}

func TestNilDoneCallback(t *testing.T) {
	c := newCtl(t, 16)
	c.Enqueue(Request{Addr: 0, Bytes: 128}) // no Done
	for i := 0; i < 100; i++ {
		c.Tick() // must not panic
	}
	if !c.Idle() {
		t.Error("not idle")
	}
}

func TestManyRequestsAllComplete(t *testing.T) {
	c := newCtl(t, 16)
	total, completed := 0, 0
	enqueue := func(addr uint32) {
		if c.Enqueue(Request{Addr: addr, Bytes: 128, Done: func(int64, bool) { completed++ }}) {
			total++
		}
	}
	next := uint32(0)
	for i := 0; i < 5000; i++ {
		if i%3 == 0 {
			enqueue(next % (1 << 20))
			next += 128
		}
		c.Tick()
	}
	for i := 0; i < 2000 && !c.Idle(); i++ {
		c.Tick()
	}
	if completed != total {
		t.Errorf("completed %d of %d", completed, total)
	}
	if got := c.Stats().Issued; got != uint64(total) {
		t.Errorf("issued = %d, want %d", got, total)
	}
}

func TestSequentialBlockStreamIsMostlyRowHits(t *testing.T) {
	// A single in-order block stream (GPGPU-like) should see ~1 miss per
	// 16 blocks of a row.
	c := newCtl(t, 16)
	addr := uint32(0)
	issued := 0
	for issued < 256 {
		if c.Enqueue(Request{Addr: addr, Bytes: 128}) {
			addr += 128
			issued++
		}
		c.Tick()
	}
	for !c.Idle() {
		c.Tick()
	}
	miss := c.D.Stats().RowMissRate()
	if miss > 0.08 {
		t.Errorf("sequential stream miss rate = %.3f, want <= 1/16", miss)
	}
}
