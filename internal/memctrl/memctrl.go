// Package memctrl implements the per-channel memory controller: a 16-deep
// FR-FCFS (first-ready, first-come-first-served) scheduler in front of the
// die-stacked DRAM channel (Table III). FR-FCFS prefers requests that hit
// the currently open row of a ready bank — the mechanism by which GPGPU's
// lockstep warps keep row locality while SSMC's strayed MIMD cores, whose
// 16-deep window rarely contains same-row requests, do not (Section II).
package memctrl

import (
	"fmt"
	"math/bits"

	"repro/internal/dram"
)

// Request is one read request from a processor-side client. The controller
// calls Done exactly once, on the channel-clock tick at which the last data
// beat has arrived.
type Request struct {
	Addr  uint32
	Bytes int
	// Done receives the completion cycle and whether the access hit an
	// open DRAM row. It runs in the memory clock domain.
	Done func(cycle int64, rowHit bool)
}

// queued requests stay in arrival order, which is what makes the single-pass
// FR-FCFS pick in Tick correct.
type queued struct {
	req Request
	at  int64 // enqueue cycle, for the queue-latency histogram
}

type inflight struct {
	doneAt int64
	hit    bool
	done   func(int64, bool)
}

// QueueLatBuckets is the number of power-of-two queue-latency histogram
// buckets; the last bucket absorbs everything >= 2^(QueueLatBuckets-2).
const QueueLatBuckets = 16

// Stats aggregates controller-level counters.
type Stats struct {
	Enqueued     uint64
	Issued       uint64
	Rejected     uint64 // enqueue attempts that found the queue full
	MaxOccupancy int
	// StallCycles counts ticks on which requests were waiting but none
	// could issue (banks busy), a contention indicator.
	StallCycles uint64
	// QueueLat is a power-of-two histogram of per-request queue residency:
	// channel cycles from Enqueue to FR-FCFS issue. Bucket 0 counts
	// zero-cycle issues, bucket i counts latencies in [2^(i-1), 2^i).
	QueueLat [QueueLatBuckets]uint64
}

// Add accumulates o into s, taking the max of MaxOccupancy. It is how a
// multi-channel memory system folds per-channel counters into an aggregate.
func (s *Stats) Add(o Stats) {
	s.Enqueued += o.Enqueued
	s.Issued += o.Issued
	s.Rejected += o.Rejected
	if o.MaxOccupancy > s.MaxOccupancy {
		s.MaxOccupancy = o.MaxOccupancy
	}
	s.StallCycles += o.StallCycles
	for i := range s.QueueLat {
		s.QueueLat[i] += o.QueueLat[i]
	}
}

// Controller schedules requests onto one DRAM channel. It is driven by
// Tick once per channel clock cycle.
type Controller struct {
	D     *dram.DRAM
	depth int
	queue []queued
	fly   []inflight
	// ready holds requests harvested (data arrived) but not yet delivered;
	// populated by Harvest, drained by Deliver.
	ready []inflight
	cycle int64
	// flyMin caches the earliest in-flight doneAt (NeverCycle when fly is
	// empty) so Harvest's sweep runs only on cycles with a completion due.
	flyMin int64
	// nextTry, when > cycle, records the min BankFreeAt found by an Issue
	// sweep that schedulable nothing: banks only change on this controller's
	// own Service calls, so the sweep provably fails until then. Enqueue and
	// a successful issue reset it to zero (unknown).
	nextTry int64
	stats   Stats
	// Fault injection: completion jitter (see SetJitter).
	jitterMax int64
	jitterRNG uint64
	tracer    func(ev Event, addr uint32)
}

// Event identifies a controller-level trace event (see SetTracer).
type Event uint8

// Controller trace events.
const (
	EvIssue  Event = iota // request dispatched to the DRAM channel
	EvReject              // enqueue attempt found the queue full
)

// SetTracer installs an observer of controller events. The hook runs inline
// on the channel clock; pass nil to disable. It must not re-enter the
// controller.
func (c *Controller) SetTracer(t func(ev Event, addr uint32)) { c.tracer = t }

// New returns a controller of the given queue depth over d.
func New(d *dram.DRAM, depth int) (*Controller, error) {
	if depth <= 0 {
		return nil, fmt.Errorf("memctrl: bad depth %d", depth)
	}
	// All three request lists are pre-sized so the steady-state tick
	// allocates nothing: the queue is bounded by depth, and the in-flight /
	// pending-delivery lists grow only if DRAM service overlap ever exceeds
	// twice the queue depth.
	return &Controller{
		D: d, depth: depth, flyMin: NeverCycle,
		queue: make([]queued, 0, depth),
		fly:   make([]inflight, 0, 2*depth),
		ready: make([]inflight, 0, 2*depth),
	}, nil
}

// Stats returns a copy of the counters.
func (c *Controller) Stats() Stats { return c.stats }

// SetJitter enables deterministic fault injection: every completed request
// is delayed by an extra 0..max channel cycles drawn from a seeded xorshift
// stream. It models transient service-time variation (refresh collisions,
// thermal throttling) and is used by robustness tests to check that the
// processor models' correctness and flow-control invariants are
// latency-independent.
func (c *Controller) SetJitter(max int64, seed uint64) {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	c.jitterMax = max
	c.jitterRNG = seed
}

func (c *Controller) jitter() int64 {
	if c.jitterMax <= 0 {
		return 0
	}
	c.jitterRNG ^= c.jitterRNG >> 12
	c.jitterRNG ^= c.jitterRNG << 25
	c.jitterRNG ^= c.jitterRNG >> 27
	return int64((c.jitterRNG * 0x2545F4914F6CDD1D) % uint64(c.jitterMax+1))
}

// Cycle returns the current channel cycle (number of Ticks so far).
func (c *Controller) Cycle() int64 { return c.cycle }

// Pending returns the number of queued (not yet issued) requests.
func (c *Controller) Pending() int { return len(c.queue) }

// Idle reports whether no requests are queued, in flight, or awaiting
// delivery.
func (c *Controller) Idle() bool {
	return len(c.queue) == 0 && len(c.fly) == 0 && len(c.ready) == 0
}

// NeverCycle is the NextWorkCycle sentinel for "no self-generated work":
// only a new Enqueue (from another clock domain's tick) can create any.
const NeverCycle = int64(1<<63 - 1)

// NextWorkCycle returns the earliest future channel cycle (the next Tick is
// Cycle()+1) at which Tick could change state, computed arithmetically from
// the timing counters: the earliest in-flight completion (Harvest) and the
// earliest cycle a queued request's bank frees up (Issue). Cycles strictly
// before it only advance the cycle counter and, when requests are queued,
// the StallCycles tally — exactly what SkipCycles replays. Returns
// NeverCycle when the controller is empty.
func (c *Controller) NextWorkCycle() int64 {
	if len(c.ready) > 0 {
		return c.cycle + 1
	}
	w := NeverCycle
	if len(c.fly) > 0 {
		if c.flyMin <= c.cycle+1 {
			return c.cycle + 1
		}
		w = c.flyMin
	}
	if len(c.queue) > 0 {
		if c.nextTry <= c.cycle {
			// No proven stall bound: a queued request may issue on the
			// very next cycle.
			return c.cycle + 1
		}
		if c.nextTry < w {
			w = c.nextTry
		}
	}
	return w
}

// SkipCycles replays n dead Ticks arithmetically: the cycle counter
// advances and, when requests are waiting unschedulable, each elided cycle
// counts as a stall, matching Issue's per-tick bookkeeping bit for bit.
func (c *Controller) SkipCycles(n int64) {
	c.cycle += n
	if len(c.queue) > 0 {
		c.stats.StallCycles += uint64(n)
	}
}

// WouldAccept reports whether Enqueue would currently accept a request.
// The quiescence fast-forward uses it to prove a client's bounced retry
// will bounce again: the queue only drains on this controller's own work
// ticks, which end any skip window.
func (c *Controller) WouldAccept() bool { return len(c.queue) < c.depth }

// TallyRejects replays n elided rejected Enqueue attempts (a stalled client
// retrying inside a skip window), matching Enqueue's full-queue bookkeeping.
func (c *Controller) TallyRejects(n uint64) { c.stats.Rejected += n }

// Enqueue adds a request; it returns false (and drops the request) when the
// queue is full, in which case the client must retry — processor models
// translate that into a stall.
func (c *Controller) Enqueue(r Request) bool {
	if len(c.queue) >= c.depth {
		c.stats.Rejected++
		if c.tracer != nil {
			c.tracer(EvReject, r.Addr)
		}
		return false
	}
	c.queue = append(c.queue, queued{req: r, at: c.cycle})
	c.nextTry = 0 // new arrival: the stall proof no longer covers the queue
	c.stats.Enqueued++
	if len(c.queue) > c.stats.MaxOccupancy {
		c.stats.MaxOccupancy = len(c.queue)
	}
	return true
}

// Tick advances the controller one channel cycle: it completes any requests
// whose data has fully arrived, then issues at most one request chosen by
// FR-FCFS (first ready row hit, else oldest ready).
//
// Tick is equivalent to Harvest(); Deliver(); Issue(). The split exists for
// the multi-channel fabric's batch-parallel schedule: Harvest touches only
// controller-private state and may run concurrently across channels, while
// Deliver (which runs client callbacks) and Issue are applied serially at
// the batch barrier in canonical channel order.
func (c *Controller) Tick() {
	c.Harvest()
	c.Deliver()
	c.Issue()
}

// Harvest advances the controller's cycle and moves every request whose data
// has fully arrived from the in-flight set to the pending-delivery list, in
// the same scan order Tick historically delivered them. No client callbacks
// run; Harvest only touches controller-private state.
func (c *Controller) Harvest() {
	c.cycle++
	if c.cycle < c.flyMin {
		return // nothing due: sweeping would move nothing
	}
	min := NeverCycle
	for i := 0; i < len(c.fly); {
		if c.fly[i].doneAt <= c.cycle {
			f := c.fly[i]
			c.fly[i] = c.fly[len(c.fly)-1]
			c.fly = c.fly[:len(c.fly)-1]
			c.ready = append(c.ready, f)
			continue
		}
		if c.fly[i].doneAt < min {
			min = c.fly[i].doneAt
		}
		i++
	}
	c.flyMin = min
}

// Deliver invokes the Done callback of every request harvested this cycle,
// in harvest order. Callbacks may re-enter Enqueue.
func (c *Controller) Deliver() {
	for i := range c.ready {
		f := &c.ready[i]
		if f.done != nil {
			f.done(c.cycle, f.hit)
		}
	}
	c.ready = c.ready[:0]
}

// Issue dispatches at most one queued request chosen by FR-FCFS (first ready
// row hit, else oldest ready).
func (c *Controller) Issue() {
	if len(c.queue) == 0 {
		return
	}
	// FR-FCFS pick, in one pass: the queue is kept in arrival order (append
	// on enqueue, order-preserving splice on issue), so the oldest ready
	// request is simply the first ready one; a ready row hit anywhere ahead
	// of it still wins.
	if c.nextTry > c.cycle {
		// The last sweep proved every queued request's bank busy until
		// nextTry, and banks haven't been touched since.
		c.stats.StallCycles++
		return
	}
	pick := -1
	firstReady := -1
	minFree := NeverCycle
	for i := range c.queue {
		q := &c.queue[i]
		if f := c.D.BankFreeAt(q.req.Addr); f > c.cycle {
			if f < minFree {
				minFree = f
			}
			continue
		}
		if c.D.IsRowHit(q.req.Addr) {
			pick = i
			break
		}
		if firstReady < 0 {
			firstReady = i
		}
	}
	if pick < 0 {
		pick = firstReady
	}
	if pick < 0 {
		c.nextTry = minFree
		c.stats.StallCycles++
		return
	}
	c.nextTry = 0
	q := c.queue[pick]
	c.queue = append(c.queue[:pick], c.queue[pick+1:]...)
	if b := bits.Len64(uint64(c.cycle - q.at)); b < QueueLatBuckets {
		c.stats.QueueLat[b]++
	} else {
		c.stats.QueueLat[QueueLatBuckets-1]++
	}
	if c.tracer != nil {
		c.tracer(EvIssue, q.req.Addr)
	}
	done, hit := c.D.Service(c.cycle, q.req.Addr, q.req.Bytes)
	at := done + c.jitter()
	c.fly = append(c.fly, inflight{doneAt: at, hit: hit, done: q.req.Done})
	if at < c.flyMin {
		c.flyMin = at
	}
	c.stats.Issued++
}
