package stack

import "repro/internal/metrics"

// RegisterMetrics publishes a backend's counters under "stack". All getters
// snapshot lazily through Backend.Stats, so registration never perturbs
// timing. The fabric inside the backend registers its own "mem"/"dram"
// probes separately (arch.Node keeps exposing the inner System).
func RegisterMetrics(r *metrics.Registry, b Backend) {
	r.Gauge("stack.hit_rate", func() float64 { return b.Stats().HitRate() })
	r.Gauge("stack.resident_bytes", func() float64 { return float64(b.Stats().ResidentBytes) })
	r.Counter("stack.accesses", func() uint64 { return b.Stats().Accesses })
	r.Counter("stack.served", func() uint64 { return b.Stats().StackServed })
	r.Counter("stack.backing_served", func() uint64 { return b.Stats().BackingServed })
	r.Counter("stack.misses", func() uint64 { return b.Stats().Misses })
	r.Counter("stack.mshr_joins", func() uint64 { return b.Stats().MSHRJoins })
	r.Counter("stack.fills", func() uint64 { return b.Stats().Fills })
	r.Counter("stack.evictions", func() uint64 { return b.Stats().Evictions })
	r.Counter("stack.writebacks", func() uint64 { return b.Stats().Writebacks })
	r.Counter("stack.rejected", func() uint64 { return b.Stats().Rejected })
	r.Counter("stack.backing.reads", func() uint64 { return b.Stats().Backing.Reads })
	r.Counter("stack.backing.writes", func() uint64 { return b.Stats().Backing.Writes })
	r.Counter("stack.backing.bytes_read", func() uint64 { return b.Stats().Backing.BytesRead })
	r.Counter("stack.backing.bytes_written", func() uint64 { return b.Stats().Backing.BytesWritten })
}
