package stack

import (
	"fmt"

	"repro/internal/mem"
)

// MemCache is the software-managed discipline in the style of memcached:
// the application keeps a key→location table, so every access pays a small
// constant software lookup and is then routed — hot pages are pinned in the
// stack and served by the stacked fabric, cold pages are served from the
// planar backing store at full latency. There are no tags and no
// fill-on-miss amplification: a cold access moves exactly the requested
// bytes. Pages are classified on first touch: while pinned capacity
// remains, a new page is pinned hot; afterwards it is cold forever (the
// simplest admission policy, and the right one for single-pass streams
// where no page is ever touched again).
//
// Writes to hot pages take fabric timing like reads; writes to cold pages
// are posted to the backing store and complete at the end of the lookup.
type MemCache struct {
	base
	pageBytes    int64
	pageBudget   int
	pinnedPages  int
	class        map[int64]uint8 // page -> pageHot / pageCold
	lookupCycles int64

	dq     []dqEntry
	dqHead int
}

const (
	pageHot  = 1
	pageCold = 2
)

type dqEntry struct {
	r       mem.Request
	readyAt int64
	hot     bool
}

// NewMemCache builds a hot/cold pinning backend with cfg.StackBytes of
// pinned capacity in cfg.PageBytes pages.
func NewMemCache(cfg Config, inner *mem.System) (*MemCache, error) {
	if cfg.PageBytes <= 0 {
		return nil, fmt.Errorf("stack: memcache needs PageBytes > 0 (got %d)", cfg.PageBytes)
	}
	if cfg.StackBytes < cfg.PageBytes {
		return nil, fmt.Errorf("stack: memcache needs StackBytes >= one %d B page (got %d)",
			cfg.PageBytes, cfg.StackBytes)
	}
	lookup := cfg.LookupCycles
	if lookup == 0 {
		lookup = DefaultLookupCycles
	}
	m := &MemCache{
		pageBytes:    int64(cfg.PageBytes),
		pageBudget:   cfg.StackBytes / cfg.PageBytes,
		class:        make(map[int64]uint8),
		lookupCycles: int64(lookup),
		dq:           make([]dqEntry, 0, delayQueueCap),
	}
	m.inner = inner
	m.bk = newBacking(cfg.Backing)
	m.st.Mode = string(ModeMemCache)
	return m, nil
}

// Mode implements Backend.
func (m *MemCache) Mode() Mode { return ModeMemCache }

// Stats implements Backend.
func (m *MemCache) Stats() Stats {
	s := m.st
	s.Backing = m.bk.stats
	s.ResidentBytes = uint64(m.pinnedPages) * uint64(m.pageBytes)
	return s
}

func (m *MemCache) dqLen() int { return len(m.dq) - m.dqHead }

// Enqueue implements mem.Port: classify the page, then park the request in
// the lookup pipeline for lookupCycles before routing it.
func (m *MemCache) Enqueue(r mem.Request) bool {
	if m.dqLen() >= delayQueueCap {
		m.st.Rejected++
		return false
	}
	page := int64(r.Addr) / m.pageBytes
	c := m.class[page]
	if c == 0 {
		if m.pinnedPages < m.pageBudget {
			c = pageHot
			m.pinnedPages++
		} else {
			c = pageCold
		}
		m.class[page] = c
	}
	hot := c == pageHot
	m.dq = append(m.dq, dqEntry{r: r, readyAt: m.bk.cycle + m.lookupCycles, hot: hot})
	m.st.Accesses++
	if hot {
		m.st.StackServed++
	} else {
		m.st.BackingServed++
	}
	return true
}

// WouldAccept mirrors Enqueue exactly (the skip-window contract): the only
// thing Enqueue checks is lookup-pipeline room.
func (m *MemCache) WouldAccept(addr uint32) bool { return m.dqLen() < delayQueueCap }

// TallyRejects implements the stall-prober stat hook.
func (m *MemCache) TallyRejects(addr uint32, n uint64) { m.st.Rejected += n }

// Tick: backing completions first, then drain lookups whose delay elapsed —
// hot ones toward the fabric, cold ones into the backing store (stopping at
// a full backing queue to preserve order) — then the fabric itself.
func (m *MemCache) Tick() {
	m.bk.tick()
	for m.dqHead < len(m.dq) {
		e := &m.dq[m.dqHead]
		if e.readyAt > m.bk.cycle {
			break
		}
		if e.hot {
			m.pushInner(e.r)
		} else if e.r.Write {
			m.bk.write(e.r.Bytes)
			if e.r.Done != nil {
				e.r.Done(m.bk.cycle, false)
			}
		} else {
			done := e.r.Done
			if !m.bk.read(e.r.Bytes, func(c int64) {
				if done != nil {
					done(c, false)
				}
			}) {
				break
			}
		}
		*e = dqEntry{}
		m.dqHead++
	}
	if m.dqHead == len(m.dq) {
		m.dq = m.dq[:0]
		m.dqHead = 0
	}
	m.drainPending()
	m.inner.Tick()
}

// Idle implements mem.Port.
func (m *MemCache) Idle() bool {
	return m.dqLen() == 0 && m.pendingLen() == 0 && m.bk.idle() && m.inner.Idle()
}

// NextWorkCycle reports the earliest cycle any stage changes state.
// Lookup readyAt values are nondecreasing in queue order, so the head is
// the earliest; a head blocked on a full backing queue degrades to
// tick-by-tick progress (conservative, still correct).
func (m *MemCache) NextWorkCycle() int64 {
	w := m.inner.NextWorkCycle()
	if b := m.bk.nextWorkCycle(); b < w {
		w = b
	}
	if m.pendingLen() > 0 {
		if c := m.bk.cycle + 1; c < w {
			w = c
		}
	}
	if m.dqLen() > 0 {
		c := m.dq[m.dqHead].readyAt
		if c <= m.bk.cycle {
			c = m.bk.cycle + 1
		}
		if c < w {
			w = c
		}
	}
	return w
}

// SkipCycles fast-forwards all stages across a quiescent window.
func (m *MemCache) SkipCycles(n int64) {
	m.bk.skip(n)
	m.inner.SkipCycles(n)
}
