// Package stack models the die stack as one level of a memory hierarchy
// instead of the whole memory. The paper stipulates that BMLA datasets fit
// in the stack; this package asks what happens when they do not, following
// the three disciplines of Bakhshalipour et al. ("Die-Stacked DRAM: Memory,
// Cache, or MemCache?"):
//
//   - Memory:   the stack is the fast part of a flat address space; addresses
//     below StackBytes hit the stacked DRAM fabric, the rest go straight to a
//     larger, slower planar backing store (OS/allocator placement, no tags).
//   - HWCache:  the stack is a hardware-managed, set-associative, writeback
//     DRAM cache in front of the backing store: misses fill a whole line at
//     backing latency/bandwidth, dirty victims are written back, and an
//     MSHR-style table merges requests to in-flight lines.
//   - MemCache: a software-managed cache in the style of memcached — pages are
//     classified hot or cold, hot pages are pinned in-stack, cold pages are
//     served from the backing store at full latency; every access pays a small
//     software lookup but there is no fill-on-miss amplification.
//
// All three conform to mem.Port plus the stall-prober and quiescence hooks
// the rest of the simulator relies on, so they drop in wherever a bare
// *mem.System does. The pass-through configuration (stack at least as large
// as the dataset, Memory mode) is not built from this package at all —
// arch.NewNode keeps the raw *mem.System on that path so the paper's
// machine stays bit-identical.
package stack

import (
	"fmt"

	"repro/internal/mem"
)

// Mode selects the capacity discipline.
type Mode string

const (
	// ModeMemory is the part-of-memory discipline (default).
	ModeMemory Mode = "memory"
	// ModeHWCache is the hardware-managed DRAM-cache discipline.
	ModeHWCache Mode = "hwcache"
	// ModeMemCache is the software-managed hot/cold pinning discipline.
	ModeMemCache Mode = "memcache"
)

// ParseMode maps the user-facing string (arch.Params.StackMode) to a Mode.
// The empty string means ModeMemory, the paper's machine.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", string(ModeMemory):
		return ModeMemory, nil
	case string(ModeHWCache):
		return ModeHWCache, nil
	case string(ModeMemCache):
		return ModeMemCache, nil
	}
	return "", fmt.Errorf("stack: unknown mode %q (want %q, %q, or %q)",
		s, ModeMemory, ModeHWCache, ModeMemCache)
}

// Defaults for the knobs that stay internal to the package. Only mode,
// stack capacity, and backing capacity/latency are exposed as arch.Params;
// the rest are structural properties of the modeled parts.
const (
	// DefaultBackingLatency is the planar access latency in channel cycles
	// (~100 ns at the 1.2 GHz channel clock: a full off-package DDR access).
	DefaultBackingLatency = 120
	// DefaultBackingBytesPerCycle pins the planar pin bandwidth at a quarter
	// of one stacked channel's 16 B/cycle — the "4-8x" bandwidth gap the
	// die-stacking literature assumes.
	DefaultBackingBytesPerCycle = 4
	// DefaultBackingOutstanding bounds in-flight planar reads (MC queue depth).
	DefaultBackingOutstanding = 8
	// DefaultAssoc is the HWCache associativity (Alloy-style DRAM caches are
	// direct-mapped; 8 ways is the tag-in-DRAM upper end).
	DefaultAssoc = 8
	// DefaultMSHRs bounds outstanding HWCache line fills.
	DefaultMSHRs = 8
	// DefaultLookupCycles is the MemCache software key-lookup cost charged to
	// every access before it is routed hot or cold.
	DefaultLookupCycles = 8
	// delayQueueCap bounds MemCache accesses inside the lookup pipeline.
	delayQueueCap = 64
)

// BackingParams sizes the shared planar backing-store model.
type BackingParams struct {
	LatencyCycles int // access latency in channel cycles (0 = default)
	BytesPerCycle int // pin bandwidth (0 = default)
	Outstanding   int // max in-flight reads (0 = default)
	CapacityBytes int // informational; 0 = sized to the dataset
}

func (p BackingParams) withDefaults() BackingParams {
	if p.LatencyCycles == 0 {
		p.LatencyCycles = DefaultBackingLatency
	}
	if p.BytesPerCycle == 0 {
		p.BytesPerCycle = DefaultBackingBytesPerCycle
	}
	if p.Outstanding == 0 {
		p.Outstanding = DefaultBackingOutstanding
	}
	return p
}

// Config sizes a backend. StackBytes is required; the granularities default
// to the stacked DRAM row size (callers pass it via LineBytes/PageBytes).
type Config struct {
	StackBytes   int
	LineBytes    int // HWCache line / fill granularity
	Assoc        int // HWCache ways (0 = DefaultAssoc)
	MSHRs        int // HWCache outstanding fills (0 = DefaultMSHRs)
	PageBytes    int // MemCache pinning granularity
	LookupCycles int // MemCache software lookup (0 = DefaultLookupCycles)
	Backing      BackingParams
}

// Stats is the uniform per-backend counter block. StackServed counts
// requests answered by the stacked fabric, BackingServed requests that paid
// planar latency; the remaining counters are mode-specific and stay zero
// where they do not apply.
type Stats struct {
	Mode          string
	Accesses      uint64
	StackServed   uint64
	BackingServed uint64
	Misses        uint64 // HWCache primary misses (== line fills started)
	MSHRJoins     uint64 // HWCache requests merged into an in-flight fill
	Fills         uint64 // HWCache lines installed
	Evictions     uint64 // HWCache valid victims replaced
	Writebacks    uint64 // HWCache dirty victims written to backing
	Rejected      uint64 // requests bounced at the backend's front door
	ResidentBytes uint64 // bytes currently held in-stack
	Backing       BackingStats
}

// HitRate is the fraction of accepted accesses served at stack speed.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.StackServed) / float64(s.Accesses)
}

// Backend is a mem.Port with the stall-prober contract (prefetch's skip
// windows elide retries only while WouldAccept stays false, so it must
// mirror Enqueue exactly), the quiescence hooks, and stats/metrics.
type Backend interface {
	mem.Port
	WouldAccept(addr uint32) bool
	TallyRejects(addr uint32, n uint64)
	NextWorkCycle() int64
	SkipCycles(n int64)
	Stats() Stats
	Mode() Mode
}

// New builds the backend for mode over the stacked fabric inner.
func New(mode Mode, cfg Config, inner *mem.System) (Backend, error) {
	switch mode {
	case ModeMemory:
		return NewMemory(cfg, inner)
	case ModeHWCache:
		return NewHWCache(cfg, inner)
	case ModeMemCache:
		return NewMemCache(cfg, inner)
	}
	return nil, fmt.Errorf("stack: unknown mode %q", mode)
}

// base carries the parts every backend shares: the stacked fabric, the
// backing store, and a FIFO of requests destined for the fabric that bounced
// off a full channel queue (retried in order each tick so fabric arrival
// order stays deterministic).
type base struct {
	inner *mem.System
	bk    *backing
	st    Stats

	pending  []mem.Request
	pendHead int
}

func (b *base) pushInner(r mem.Request) {
	b.pending = append(b.pending, r)
}

func (b *base) pendingLen() int { return len(b.pending) - b.pendHead }

// drainPending forwards queued fabric requests in order, stopping at the
// first rejection to preserve arrival order.
func (b *base) drainPending() {
	for b.pendHead < len(b.pending) {
		if !b.inner.Enqueue(b.pending[b.pendHead]) {
			return
		}
		b.pending[b.pendHead] = mem.Request{}
		b.pendHead++
	}
	b.pending = b.pending[:0]
	b.pendHead = 0
}
