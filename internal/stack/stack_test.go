package stack

import (
	"math/rand"
	"testing"

	"repro/internal/dram"
	"repro/internal/mem"
	"repro/internal/memctrl"
)

// newInner builds a small single-channel stacked fabric for backend tests.
func newInner(t *testing.T, capacityBytes int) *mem.System {
	t.Helper()
	s, err := mem.New(dram.DefaultParams(), 1, 8, capacityBytes)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// runUntilIdle ticks the backend until it drains, failing on a hang.
func runUntilIdle(t *testing.T, b Backend) {
	t.Helper()
	for i := 0; i < 100000; i++ {
		if b.Idle() {
			return
		}
		b.Tick()
	}
	t.Fatal("backend did not drain within 100k ticks")
}

// TestBackingTiming pins the planar model: completion = bus slot + latency,
// back-to-back reads serialize on the pin bandwidth while their latencies
// overlap, and the outstanding cap bounces further reads.
func TestBackingTiming(t *testing.T) {
	bk := newBacking(BackingParams{LatencyCycles: 10, BytesPerCycle: 4, Outstanding: 2})
	var done1, done2 int64
	if !bk.read(8, func(c int64) { done1 = c }) {
		t.Fatal("first read rejected")
	}
	if !bk.read(8, func(c int64) { done2 = c }) {
		t.Fatal("second read rejected")
	}
	if bk.read(4, func(int64) {}) {
		t.Fatal("third read accepted past the outstanding cap")
	}
	if bk.wouldAcceptRead() {
		t.Fatal("wouldAcceptRead true at the outstanding cap")
	}
	for i := 0; i < 40; i++ {
		bk.tick()
	}
	// 8 B at 4 B/cycle = 2 bus cycles: read 1 transfers cycles [0,2), done
	// at 2+10; read 2 transfers [2,4), done at 4+10.
	if done1 != 12 || done2 != 14 {
		t.Fatalf("completions at %d and %d, want 12 and 14", done1, done2)
	}
	if !bk.idle() {
		t.Fatal("backing not idle after deliveries")
	}
	if s := bk.stats; s.Reads != 2 || s.BytesRead != 16 || s.MaxInFlight != 2 {
		t.Fatalf("backing stats %+v", s)
	}
}

// TestMemoryPartition: the part-of-memory split routes by address — below
// the boundary at fabric speed, above it at planar latency.
func TestMemoryPartition(t *testing.T) {
	row := dram.DefaultParams().RowBytes
	inner := newInner(t, 2*row)
	m, err := NewMemory(Config{StackBytes: 2 * row,
		Backing: BackingParams{LatencyCycles: 100}}, inner)
	if err != nil {
		t.Fatal(err)
	}
	var fastAt, slowAt int64 = -1, -1
	if !m.Enqueue(mem.Request{Addr: 0, Bytes: 64, Done: func(c int64, _ bool) { fastAt = c }}) {
		t.Fatal("stack-side request rejected")
	}
	if !m.Enqueue(mem.Request{Addr: uint32(2 * row), Bytes: 64, Done: func(c int64, _ bool) { slowAt = c }}) {
		t.Fatal("planar-side request rejected")
	}
	runUntilIdle(t, m)
	if fastAt < 0 || slowAt < 0 {
		t.Fatalf("completions missing: fast=%d slow=%d", fastAt, slowAt)
	}
	if slowAt < 100 {
		t.Fatalf("planar-side completion at %d, want >= the 100-cycle backing latency", slowAt)
	}
	if fastAt >= slowAt {
		t.Fatalf("stack-side (%d) not faster than planar-side (%d)", fastAt, slowAt)
	}
	s := m.Stats()
	if s.StackServed != 1 || s.BackingServed != 1 || s.Accesses != 2 {
		t.Fatalf("stats %+v", s)
	}
	if s.ResidentBytes != uint64(2*row) {
		t.Fatalf("ResidentBytes %d, want %d", s.ResidentBytes, 2*row)
	}
}

// TestHWCacheMissFillHit: a cold line pays the planar fill and a re-access
// hits in-stack; requests to an in-flight line merge into its MSHR.
func TestHWCacheMissFillHit(t *testing.T) {
	row := dram.DefaultParams().RowBytes
	inner := newInner(t, 16*row)
	h, err := NewHWCache(Config{StackBytes: 4 * row, LineBytes: row, Assoc: 2, MSHRs: 2,
		Backing: BackingParams{LatencyCycles: 50}}, inner)
	if err != nil {
		t.Fatal(err)
	}
	var missAt, joinAt, hitAt int64 = -1, -1, -1
	if !h.Enqueue(mem.Request{Addr: 0, Bytes: 64, Done: func(c int64, _ bool) { missAt = c }}) {
		t.Fatal("primary miss rejected")
	}
	// Same line while the fill is in flight: must join, not start a second fill.
	if !h.Enqueue(mem.Request{Addr: 64, Bytes: 64, Done: func(c int64, _ bool) { joinAt = c }}) {
		t.Fatal("secondary miss rejected")
	}
	runUntilIdle(t, h)
	if missAt < 0 || joinAt < 0 {
		t.Fatalf("fill waiters not served: miss=%d join=%d", missAt, joinAt)
	}
	if missAt < 50 {
		t.Fatalf("miss completed at %d, before the 50-cycle fill", missAt)
	}
	if s := h.Stats(); s.Misses != 1 || s.MSHRJoins != 1 || s.Fills != 1 || s.Backing.Reads != 1 {
		t.Fatalf("stats after miss %+v", s)
	}
	if !h.Enqueue(mem.Request{Addr: 0, Bytes: 64, Done: func(c int64, _ bool) { hitAt = c }}) {
		t.Fatal("hit rejected")
	}
	runUntilIdle(t, h)
	s := h.Stats()
	if s.StackServed != 1 || s.Misses != 1 {
		t.Fatalf("hit not served in-stack: %+v", s)
	}
	if hitAt < 0 || hitAt-missAt >= 50 {
		t.Fatalf("hit at %d after miss at %d: did not run at stack speed", hitAt, missAt)
	}
	if s.ResidentBytes != uint64(row) {
		t.Fatalf("ResidentBytes %d, want one %d B line", s.ResidentBytes, row)
	}
}

// TestHWCacheEvictWriteback: filling a set past its ways evicts the LRU
// line, and a dirty victim posts a full-line writeback.
func TestHWCacheEvictWriteback(t *testing.T) {
	row := dram.DefaultParams().RowBytes
	inner := newInner(t, 16*row)
	// 4 lines, 2 ways -> 2 sets; even blocks all land in set 0.
	h, err := NewHWCache(Config{StackBytes: 4 * row, LineBytes: row, Assoc: 2, MSHRs: 4,
		Backing: BackingParams{LatencyCycles: 10}}, inner)
	if err != nil {
		t.Fatal(err)
	}
	fill := func(block int64, write bool) {
		t.Helper()
		if !h.Enqueue(mem.Request{Addr: uint32(block * int64(row)), Bytes: 64, Write: write,
			Done: func(int64, bool) {}}) {
			t.Fatalf("block %d rejected", block)
		}
		runUntilIdle(t, h)
	}
	fill(0, true) // dirty, becomes LRU
	fill(2, false)
	fill(4, false) // set 0 is full: evicts block 0
	s := h.Stats()
	if s.Evictions != 1 || s.Writebacks != 1 {
		t.Fatalf("want 1 eviction + 1 writeback of the dirty LRU line, got %+v", s)
	}
	if s.Backing.Writes != 1 || s.Backing.BytesWritten != uint64(row) {
		t.Fatalf("writeback traffic %+v, want one full %d B line", s.Backing, row)
	}
	// Block 2 was touched after block 0, so it must have survived.
	if !h.Enqueue(mem.Request{Addr: uint32(2 * row), Bytes: 64, Done: func(int64, bool) {}}) {
		t.Fatal("surviving block rejected")
	}
	runUntilIdle(t, h)
	if got := h.Stats(); got.Misses != 3 {
		t.Fatalf("re-access of block 2 missed (misses %d, want 3): LRU evicted the wrong way", got.Misses)
	}
}

// TestMemCacheHotCold: first touches pin pages while budget remains; later
// pages stay cold and pay planar latency (reads) or post (writes).
func TestMemCacheHotCold(t *testing.T) {
	row := dram.DefaultParams().RowBytes
	inner := newInner(t, 4*row)
	m, err := NewMemCache(Config{StackBytes: row, PageBytes: row, LookupCycles: 8,
		Backing: BackingParams{LatencyCycles: 100}}, inner)
	if err != nil {
		t.Fatal(err)
	}
	var hotAt, coldAt, coldWrAt int64 = -1, -1, -1
	if !m.Enqueue(mem.Request{Addr: 0, Bytes: 64, Done: func(c int64, _ bool) { hotAt = c }}) {
		t.Fatal("hot request rejected")
	}
	if !m.Enqueue(mem.Request{Addr: uint32(row), Bytes: 64, Done: func(c int64, _ bool) { coldAt = c }}) {
		t.Fatal("cold read rejected")
	}
	if !m.Enqueue(mem.Request{Addr: uint32(row), Bytes: 64, Write: true,
		Done: func(c int64, _ bool) { coldWrAt = c }}) {
		t.Fatal("cold write rejected")
	}
	runUntilIdle(t, m)
	if hotAt < 8 {
		t.Fatalf("hot completion at %d, before the 8-cycle lookup", hotAt)
	}
	if coldAt < 108 {
		t.Fatalf("cold read at %d, want >= lookup + 100-cycle backing latency", coldAt)
	}
	if hotAt >= coldAt {
		t.Fatalf("hot (%d) not faster than cold (%d)", hotAt, coldAt)
	}
	if coldWrAt < 0 || coldWrAt >= coldAt {
		t.Fatalf("cold write at %d, want posted completion before the cold read's %d", coldWrAt, coldAt)
	}
	s := m.Stats()
	if s.StackServed != 1 || s.BackingServed != 2 {
		t.Fatalf("stats %+v", s)
	}
	if s.Backing.Writes != 1 || s.ResidentBytes != uint64(row) {
		t.Fatalf("traffic/residency %+v", s)
	}
}

// TestMemoryPassThroughTiming: a Memory wrapper whose boundary covers the
// whole address space must be invisible — identical random request streams
// into a wrapped and a bare fabric complete on identical cycles with
// identical rowHit flags. This is the request-level half of the
// bit-identity guarantee; arch.NewNode additionally skips the wrapper
// entirely on this configuration.
func TestMemoryPassThroughTiming(t *testing.T) {
	row := dram.DefaultParams().RowBytes
	capacity := 8 * row
	bare := newInner(t, capacity)
	inner := newInner(t, capacity)
	m, err := NewMemory(Config{StackBytes: capacity}, inner)
	if err != nil {
		t.Fatal(err)
	}
	type comp struct {
		cycle  int64
		rowHit bool
	}
	var bareLog, wrapLog []comp
	rng := rand.New(rand.NewSource(3))
	cycle := int64(0)
	for i := 0; i < 3000; i++ {
		if rng.Intn(2) == 0 {
			addr := uint32(rng.Intn(capacity/64)) * 64
			r := mem.Request{Addr: addr, Bytes: 64}
			r.Done = func(c int64, hit bool) { bareLog = append(bareLog, comp{c, hit}) }
			ok1 := bare.Enqueue(r)
			r.Done = func(c int64, hit bool) { wrapLog = append(wrapLog, comp{c, hit}) }
			ok2 := m.Enqueue(r)
			if ok1 != ok2 {
				t.Fatalf("step %d: bare accepted=%v, wrapped accepted=%v", i, ok1, ok2)
			}
		} else {
			bare.Tick()
			m.Tick()
			cycle++
		}
	}
	for !bare.Idle() || !m.Idle() {
		bare.Tick()
		m.Tick()
	}
	if len(bareLog) == 0 || len(bareLog) != len(wrapLog) {
		t.Fatalf("completion counts differ: bare %d, wrapped %d", len(bareLog), len(wrapLog))
	}
	for i := range bareLog {
		if bareLog[i] != wrapLog[i] {
			t.Fatalf("completion %d differs: bare %+v, wrapped %+v", i, bareLog[i], wrapLog[i])
		}
	}
}

// TestWouldAcceptMirrorsEnqueue is the skip-window contract: on every backend
// and under random traffic, WouldAccept(addr) must predict Enqueue's answer
// exactly — prefetch elides retries only while WouldAccept stays false, so
// any divergence would make skip-on and skip-off runs differ.
func TestWouldAcceptMirrorsEnqueue(t *testing.T) {
	row := dram.DefaultParams().RowBytes
	build := func(mode Mode) Backend {
		inner := newInner(t, 16*row)
		b, err := New(mode, Config{StackBytes: 2 * row, LineBytes: row, Assoc: 2, MSHRs: 2,
			PageBytes: row, Backing: BackingParams{LatencyCycles: 30, Outstanding: 2}}, inner)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	for _, mode := range []Mode{ModeMemory, ModeHWCache, ModeMemCache} {
		b := build(mode)
		rng := rand.New(rand.NewSource(7))
		outstanding := 0
		for i := 0; i < 5000; i++ {
			if rng.Intn(3) > 0 && outstanding < 512 {
				addr := uint32(rng.Intn(16)) * uint32(row) / 2
				wa := b.WouldAccept(addr)
				ok := b.Enqueue(mem.Request{Addr: addr, Bytes: 64, Write: rng.Intn(8) == 0,
					Done: func(int64, bool) { outstanding-- }})
				if wa != ok {
					t.Fatalf("%s: step %d addr %d: WouldAccept=%v but Enqueue=%v", mode, i, addr, wa, ok)
				}
				if ok {
					outstanding++
				}
			} else {
				b.Tick()
			}
		}
		runUntilIdle(t, b)
		if outstanding != 0 {
			t.Fatalf("%s: %d requests never completed", mode, outstanding)
		}
	}
}

// TestNextWorkCycleNeverLate: after going idle with no clients, every
// backend must report NeverCycle; with work in flight it must report a
// cycle no later than the next observable state change.
func TestNextWorkCycleNeverLate(t *testing.T) {
	row := dram.DefaultParams().RowBytes
	inner := newInner(t, 4*row)
	m, err := NewMemory(Config{StackBytes: row,
		Backing: BackingParams{LatencyCycles: 20}}, inner)
	if err != nil {
		t.Fatal(err)
	}
	doneAt := int64(-1)
	m.Enqueue(mem.Request{Addr: uint32(row), Bytes: 4, Done: func(c int64, _ bool) { doneAt = c }})
	w := m.NextWorkCycle()
	if w == memctrl.NeverCycle {
		t.Fatal("work in flight but NextWorkCycle says never")
	}
	for c := int64(1); doneAt < 0 && c < 1000; c++ {
		m.Tick()
		if doneAt >= 0 && c < w {
			t.Fatalf("completion at cycle %d, earlier than NextWorkCycle %d", c, w)
		}
	}
	runUntilIdle(t, m)
	if m.NextWorkCycle() != memctrl.NeverCycle {
		t.Fatalf("idle backend reports next work at %d, want NeverCycle", m.NextWorkCycle())
	}
}
