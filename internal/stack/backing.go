package stack

import "repro/internal/memctrl"

// backing is the shared planar backing-store timing model: a fixed access
// latency plus a single pipelined pin-bandwidth channel. Reads occupy the
// bus for ceil(bytes/BytesPerCycle) cycles — slots serialize on busFree, so
// steady-state throughput is exactly the pin bandwidth while the latency of
// each access overlaps with its neighbours' transfers. Writes are posted:
// they reserve a bus slot and complete immediately (a write buffer is
// assumed), so only reads occupy the in-flight table.
//
// Determinism: the in-flight table is harvested with the same scan-and-swap
// scheme as memctrl, so completion order is a pure function of issue order,
// and all state advances only on tick / enqueue edges — skip windows stay
// provably safe.
type backing struct {
	p       BackingParams
	cycle   int64
	busFree int64

	fly    []backFlight
	flyMin int64
	ready  []backFlight

	stats BackingStats
}

type backFlight struct {
	doneAt int64
	done   func(cycle int64)
}

// BackingStats counts planar traffic.
type BackingStats struct {
	Reads        uint64
	Writes       uint64
	BytesRead    uint64
	BytesWritten uint64
	MaxInFlight  int
}

func newBacking(p BackingParams) *backing {
	p = p.withDefaults()
	return &backing{
		p:      p,
		flyMin: memctrl.NeverCycle,
		fly:    make([]backFlight, 0, p.Outstanding),
		ready:  make([]backFlight, 0, p.Outstanding),
	}
}

func (b *backing) transferCycles(bytes int) int64 {
	return int64((bytes + b.p.BytesPerCycle - 1) / b.p.BytesPerCycle)
}

func (b *backing) wouldAcceptRead() bool { return len(b.fly) < b.p.Outstanding }

// read schedules a planar read; done fires on the tick the data returns.
func (b *backing) read(bytes int, done func(cycle int64)) bool {
	if !b.wouldAcceptRead() {
		return false
	}
	start := b.cycle
	if b.busFree > start {
		start = b.busFree
	}
	b.busFree = start + b.transferCycles(bytes)
	at := b.busFree + int64(b.p.LatencyCycles)
	b.fly = append(b.fly, backFlight{doneAt: at, done: done})
	if at < b.flyMin {
		b.flyMin = at
	}
	if len(b.fly) > b.stats.MaxInFlight {
		b.stats.MaxInFlight = len(b.fly)
	}
	b.stats.Reads++
	b.stats.BytesRead += uint64(bytes)
	return true
}

// write posts a planar write: it consumes a bus slot but never blocks and
// never completes back to the caller.
func (b *backing) write(bytes int) {
	start := b.cycle
	if b.busFree > start {
		start = b.busFree
	}
	b.busFree = start + b.transferCycles(bytes)
	b.stats.Writes++
	b.stats.BytesWritten += uint64(bytes)
}

// tick advances one channel cycle and delivers due reads in a deterministic
// scan order (the same scan-and-swap harvest memctrl uses).
// Callbacks may re-enter read/write (e.g. an HWCache install posting a
// writeback); they act on the post-harvest state of the current cycle.
func (b *backing) tick() {
	b.cycle++
	if b.cycle < b.flyMin {
		return
	}
	min := int64(memctrl.NeverCycle)
	for i := 0; i < len(b.fly); {
		f := b.fly[i]
		if f.doneAt <= b.cycle {
			b.ready = append(b.ready, f)
			last := len(b.fly) - 1
			b.fly[i] = b.fly[last]
			b.fly[last] = backFlight{}
			b.fly = b.fly[:last]
			continue
		}
		if f.doneAt < min {
			min = f.doneAt
		}
		i++
	}
	b.flyMin = min
	for i := range b.ready {
		b.ready[i].done(b.cycle)
		b.ready[i] = backFlight{}
	}
	b.ready = b.ready[:0]
}

// nextWorkCycle reports the earliest future cycle on which the backing
// store changes state on its own (the soonest read completion).
func (b *backing) nextWorkCycle() int64 {
	if len(b.fly) == 0 {
		return memctrl.NeverCycle
	}
	if b.flyMin <= b.cycle+1 {
		return b.cycle + 1
	}
	return b.flyMin
}

// skip advances the cycle counter across a quiescent window.
func (b *backing) skip(n int64) { b.cycle += n }

func (b *backing) idle() bool { return len(b.fly) == 0 }
