package stack

import (
	"fmt"

	"repro/internal/mem"
)

// HWCache is the hardware-managed DRAM-cache discipline: the whole address
// space lives in the planar backing store and the stack caches it in
// row-sized lines (tags co-located with data, so a hit costs exactly one
// stacked-fabric access — the hit request is forwarded to the fabric
// unchanged). A primary miss allocates an MSHR, fills the full line from
// the backing store at planar latency/bandwidth, and only then serves the
// waiting requests from the stack; requests to a line already in flight
// merge into its MSHR. Victims are chosen invalid-first then LRU; dirty
// victims post a full-line writeback.
//
// The fill-then-serve ordering is the discipline's defining cost on
// streaming workloads: a single-pass kernel pays the planar transfer for
// every line and then the stacked row read on top, so with no reuse an
// HWCache is strictly slower than the part-of-memory split.
type HWCache struct {
	base
	lineBytes int64
	nsets     int64
	assoc     int
	sets      []hwLine // nsets*assoc, set-major
	valid     int      // lines currently valid
	useTick   uint64

	mshr    []hwMSHR
	mshrMax int
}

type hwLine struct {
	block   int64 // line-aligned address / lineBytes; -1 = invalid
	lastUse uint64
	dirty   bool
}

type hwMSHR struct {
	block   int64
	dirty   bool // a merged request wrote the line before it arrived
	waiters []mem.Request
}

// NewHWCache builds a set-associative writeback DRAM cache of
// cfg.StackBytes over the backing store, with cfg.LineBytes lines.
func NewHWCache(cfg Config, inner *mem.System) (*HWCache, error) {
	if cfg.LineBytes <= 0 {
		return nil, fmt.Errorf("stack: hwcache needs LineBytes > 0 (got %d)", cfg.LineBytes)
	}
	nlines := cfg.StackBytes / cfg.LineBytes
	if nlines < 1 {
		return nil, fmt.Errorf("stack: hwcache needs StackBytes >= one %d B line (got %d)",
			cfg.LineBytes, cfg.StackBytes)
	}
	assoc := cfg.Assoc
	if assoc == 0 {
		assoc = DefaultAssoc
	}
	if assoc > nlines {
		assoc = nlines
	}
	mshrMax := cfg.MSHRs
	if mshrMax == 0 {
		mshrMax = DefaultMSHRs
	}
	h := &HWCache{
		lineBytes: int64(cfg.LineBytes),
		nsets:     int64(nlines / assoc),
		assoc:     assoc,
		mshrMax:   mshrMax,
		mshr:      make([]hwMSHR, 0, mshrMax),
	}
	h.sets = make([]hwLine, int(h.nsets)*assoc)
	for i := range h.sets {
		h.sets[i].block = -1
	}
	h.inner = inner
	h.bk = newBacking(cfg.Backing)
	h.st.Mode = string(ModeHWCache)
	return h, nil
}

// Mode implements Backend.
func (h *HWCache) Mode() Mode { return ModeHWCache }

// Stats implements Backend.
func (h *HWCache) Stats() Stats {
	s := h.st
	s.Backing = h.bk.stats
	s.ResidentBytes = uint64(h.valid) * uint64(h.lineBytes)
	return s
}

// set returns the ways of the set holding block.
func (h *HWCache) set(block int64) []hwLine {
	i := int(block%h.nsets) * h.assoc
	return h.sets[i : i+h.assoc]
}

func findWay(set []hwLine, block int64) int {
	for i := range set {
		if set[i].block == block {
			return i
		}
	}
	return -1
}

func (h *HWCache) mshrFind(block int64) int {
	for i := range h.mshr {
		if h.mshr[i].block == block {
			return i
		}
	}
	return -1
}

// Enqueue implements mem.Port.
func (h *HWCache) Enqueue(r mem.Request) bool {
	block := int64(r.Addr) / h.lineBytes
	set := h.set(block)
	if w := findWay(set, block); w >= 0 {
		// Hit: tags ride with the data, so the access is one fabric request.
		if !h.inner.WouldAccept(r.Addr) {
			h.st.Rejected++
			return false
		}
		h.inner.Enqueue(r)
		h.useTick++
		set[w].lastUse = h.useTick
		if r.Write {
			set[w].dirty = true
		}
		h.st.Accesses++
		h.st.StackServed++
		return true
	}
	if mi := h.mshrFind(block); mi >= 0 {
		// Secondary miss: merge into the in-flight fill.
		h.mshr[mi].waiters = append(h.mshr[mi].waiters, r)
		if r.Write {
			h.mshr[mi].dirty = true
		}
		h.st.Accesses++
		h.st.MSHRJoins++
		return true
	}
	// Primary miss: needs both an MSHR slot and a backing read slot.
	if len(h.mshr) >= h.mshrMax || !h.bk.wouldAcceptRead() {
		h.st.Rejected++
		return false
	}
	e := hwMSHR{block: block, dirty: r.Write, waiters: make([]mem.Request, 1, 4)}
	e.waiters[0] = r
	h.mshr = append(h.mshr, e)
	h.bk.read(int(h.lineBytes), func(int64) { h.install(block) })
	h.st.Accesses++
	h.st.Misses++
	h.st.BackingServed++
	return true
}

// install runs when a line fill returns from the backing store: pick a
// victim, write back if dirty, install the tag, and release the MSHR's
// waiters toward the stacked fabric (they queue in arrival order; the
// fabric read is what finally completes each request).
func (h *HWCache) install(block int64) {
	set := h.set(block)
	victim := 0
	for i := range set {
		if set[i].block == -1 {
			victim = i
			break
		}
		if set[i].lastUse < set[victim].lastUse {
			victim = i
		}
	}
	if set[victim].block != -1 {
		h.st.Evictions++
		if set[victim].dirty {
			h.st.Writebacks++
			h.bk.write(int(h.lineBytes))
		}
	} else {
		h.valid++
	}
	mi := h.mshrFind(block)
	h.useTick++
	set[victim] = hwLine{block: block, lastUse: h.useTick, dirty: h.mshr[mi].dirty}
	h.st.Fills++
	for _, w := range h.mshr[mi].waiters {
		h.pushInner(w)
	}
	h.mshr[mi].waiters = nil
	last := len(h.mshr) - 1
	h.mshr[mi] = h.mshr[last]
	h.mshr[last] = hwMSHR{}
	h.mshr = h.mshr[:last]
}

// WouldAccept mirrors Enqueue exactly (the skip-window contract).
func (h *HWCache) WouldAccept(addr uint32) bool {
	block := int64(addr) / h.lineBytes
	if findWay(h.set(block), block) >= 0 {
		return h.inner.WouldAccept(addr)
	}
	if h.mshrFind(block) >= 0 {
		return true
	}
	return len(h.mshr) < h.mshrMax && h.bk.wouldAcceptRead()
}

// TallyRejects implements the stall-prober stat hook.
func (h *HWCache) TallyRejects(addr uint32, n uint64) { h.st.Rejected += n }

// Tick: backing completions (which install lines and release waiters), then
// the pending FIFO into the fabric, then the fabric itself.
func (h *HWCache) Tick() {
	h.bk.tick()
	h.drainPending()
	h.inner.Tick()
}

// Idle implements mem.Port.
func (h *HWCache) Idle() bool {
	return len(h.mshr) == 0 && h.pendingLen() == 0 && h.bk.idle() && h.inner.Idle()
}

// NextWorkCycle reports the earliest cycle any of the three stages (backing
// fill, pending drain, fabric) changes state.
func (h *HWCache) NextWorkCycle() int64 {
	w := h.inner.NextWorkCycle()
	if b := h.bk.nextWorkCycle(); b < w {
		w = b
	}
	if h.pendingLen() > 0 {
		if c := h.bk.cycle + 1; c < w {
			w = c
		}
	}
	return w
}

// SkipCycles fast-forwards all stages across a quiescent window.
func (h *HWCache) SkipCycles(n int64) {
	h.bk.skip(n)
	h.inner.SkipCycles(n)
}
