package stack

import (
	"repro/internal/memctrl"
	"repro/internal/sim"
)

// Ticker adapts a Backend to the engine's clock-domain interface, mirroring
// mem.Ticker: the backend (and the fabric inside it) ticks once per memory
// edge, so its cycle counters map straight onto the domain's tick count.
// Set Domain after sim.Engine.AddDomain returns.
type Ticker struct {
	B      Backend
	Domain *sim.Domain
}

// Tick implements sim.Ticker.
func (t *Ticker) Tick(sim.Time) { t.B.Tick() }

// NextWork implements sim.NextWorker.
func (t *Ticker) NextWork(sim.Time) sim.Time {
	c := t.B.NextWorkCycle()
	if c == memctrl.NeverCycle {
		return sim.Never
	}
	return t.Domain.TimeOfTick(uint64(c))
}

// SkipTicks implements sim.NextWorker.
func (t *Ticker) SkipTicks(n int64) { t.B.SkipCycles(n) }
