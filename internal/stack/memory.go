package stack

import (
	"fmt"

	"repro/internal/mem"
)

// Memory is the part-of-memory discipline: the flat address space is split
// at StackBytes. Requests below the boundary go to the stacked fabric with
// exactly the timing a bare mem.System would give them (the wrapper adds no
// cycles — the pass-through equivalence tests rely on this); requests at or
// above it are served by the planar backing store. There are no tags, no
// fills, and no migration: placement is the allocator's problem, which is
// precisely the discipline's weakness when the hot bytes land planar-side.
type Memory struct {
	base
	boundary int64
}

// NewMemory builds a partitioned-address-space backend with the first
// cfg.StackBytes bytes in-stack.
func NewMemory(cfg Config, inner *mem.System) (*Memory, error) {
	if cfg.StackBytes <= 0 {
		return nil, fmt.Errorf("stack: memory mode needs StackBytes > 0 (got %d)", cfg.StackBytes)
	}
	m := &Memory{boundary: int64(cfg.StackBytes)}
	m.inner = inner
	m.bk = newBacking(cfg.Backing)
	m.st.Mode = string(ModeMemory)
	m.st.ResidentBytes = uint64(cfg.StackBytes)
	return m, nil
}

// Mode implements Backend.
func (m *Memory) Mode() Mode { return ModeMemory }

// Stats implements Backend.
func (m *Memory) Stats() Stats {
	s := m.st
	s.Backing = m.bk.stats
	return s
}

// Enqueue implements mem.Port. Stack-side requests are forwarded unchanged;
// planar-side requests pay backing latency and report rowHit=false.
func (m *Memory) Enqueue(r mem.Request) bool {
	if int64(r.Addr) < m.boundary {
		if !m.inner.WouldAccept(r.Addr) {
			m.st.Rejected++
			return false
		}
		m.inner.Enqueue(r)
		m.st.Accesses++
		m.st.StackServed++
		return true
	}
	done := r.Done
	if !m.bk.read(r.Bytes, func(c int64) {
		if done != nil {
			done(c, false)
		}
	}) {
		m.st.Rejected++
		return false
	}
	m.st.Accesses++
	m.st.BackingServed++
	return true
}

// WouldAccept mirrors Enqueue exactly (the skip-window contract).
func (m *Memory) WouldAccept(addr uint32) bool {
	if int64(addr) < m.boundary {
		return m.inner.WouldAccept(addr)
	}
	return m.bk.wouldAcceptRead()
}

// TallyRejects implements the stall-prober stat hook.
func (m *Memory) TallyRejects(addr uint32, n uint64) { m.st.Rejected += n }

// Tick advances both sides one channel cycle.
func (m *Memory) Tick() {
	m.bk.tick()
	m.inner.Tick()
}

// Idle implements mem.Port.
func (m *Memory) Idle() bool { return m.bk.idle() && m.inner.Idle() }

// NextWorkCycle reports the earliest cycle either side changes state.
func (m *Memory) NextWorkCycle() int64 {
	w := m.inner.NextWorkCycle()
	if b := m.bk.nextWorkCycle(); b < w {
		w = b
	}
	return w
}

// SkipCycles fast-forwards both sides across a quiescent window.
func (m *Memory) SkipCycles(n int64) {
	m.bk.skip(n)
	m.inner.SkipCycles(n)
}
