// Package node simulates a full Millipede node: 32 Millipede processors,
// each with its own die-stacked DRAM channel (Table III: "1 of 32"
// processors/channels simulated in the paper; here the whole node is run).
// Processors are independent — BMLA MapReductions have no cross-processor
// communication until the per-node Reduce (Section IV-D) — so the node
// executes them concurrently on host goroutines and the node's runtime is
// the slowest processor's runtime plus the host Reduce.
//
// This upgrades the paper's Figure 5 comparison from an analytic 32x
// scaling of one processor to a measured multi-processor run, including the
// load imbalance across processors that the scaling argument ignores.
package node

import (
	"fmt"
	"sync"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/kernels"
	"repro/internal/layout"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// Result aggregates a node run.
type Result struct {
	// Time is the node makespan: the slowest processor's finish time.
	Time sim.Time
	// ProcessorTimes are the per-processor finish times (load imbalance).
	ProcessorTimes []sim.Time
	// Energy is summed over all processors.
	Energy energy.Breakdown
	// Output is the node-level reduced result over every processor's
	// corelet states.
	Output []uint32
	// Insts is the total instruction count.
	Insts uint64
}

// ShardSeed derives the dataset seed of processor (or node shard) pi from
// the run seed, so every layer that shards a dataset across processors
// agrees on which records each shard holds.
func ShardSeed(seed uint64, pi int) uint64 { return seed + uint64(pi)*1_000_003 }

// Run executes benchmark b over processors x (threads x records) input on a
// node of the given per-processor configuration. Each processor gets its
// own deterministic data shard; shards differ across processors, so the
// makespan reflects genuine cross-processor load imbalance.
func Run(p arch.Params, ep energy.Params, b *workloads.Benchmark, processors, records int, seed uint64) (Result, error) {
	if processors <= 0 {
		return Result{}, fmt.Errorf("node: bad processor count %d", processors)
	}
	lay := layout.Layout{
		RowBytes: p.DRAM.RowBytes, Corelets: p.Corelets, Contexts: p.Contexts,
		Interleave: layout.Slab,
	}
	if err := lay.Validate(); err != nil {
		return Result{}, err
	}
	sl, err := kernels.LocalState(b.K, p.LocalBytes, p.Contexts)
	if err != nil {
		return Result{}, err
	}
	args := kernels.ArgsAndConsts(b.K, lay.Walk(), sl, records)

	type shard struct {
		res    core.Result
		states [][]uint32
		err    error
	}
	shards := make([]shard, processors)
	var wg sync.WaitGroup
	for pi := 0; pi < processors; pi++ {
		wg.Add(1)
		go func(pi int) {
			defer wg.Done()
			// Shard pi gets its own stream family, streamed straight into
			// the processor's DRAM image.
			l := core.Launch{Prog: b.K.Prog, Interleave: layout.Slab,
				Sources: b.Sources(p.Threads(), records, ShardSeed(seed, pi)), Args: args}
			pr, err := core.NewProcessor(p, ep, l)
			if err != nil {
				shards[pi].err = err
				return
			}
			res, err := pr.Run(0)
			if err != nil {
				shards[pi].err = err
				return
			}
			shards[pi].res = res
			shards[pi].states = workloads.ExtractStates(b, sl, lay, pr.ReadState)
		}(pi)
	}
	wg.Wait()

	out := Result{ProcessorTimes: make([]sim.Time, processors)}
	var all [][]uint32
	for pi := range shards {
		s := &shards[pi]
		if s.err != nil {
			return Result{}, fmt.Errorf("node: processor %d: %w", pi, s.err)
		}
		// Verify each shard against its golden reference.
		want := b.GoldenStatesStreamed(p.Threads(), records, ShardSeed(seed, pi))
		for th := range want {
			for i := range want[th] {
				if s.states[th][i] != want[th][i] {
					return Result{}, fmt.Errorf("node: processor %d functional mismatch", pi)
				}
			}
		}
		out.ProcessorTimes[pi] = s.res.Time
		if s.res.Time > out.Time {
			out.Time = s.res.Time
		}
		out.Energy.Add(s.res.Energy)
		out.Insts += s.res.Cores.Instructions
		all = append(all, s.states...)
	}
	out.Output = b.Reduce(all)
	// Host per-node Reduce cost (Section IV-D: hundreds of microseconds
	// for 32 processors): model one pass over all partial states at one
	// word per host cycle at 3.6 GHz.
	hostWords := int64(len(all)) * int64(b.K.StateWords)
	out.Time += sim.Time(float64(hostWords) / 3.6e9 * 1e12)
	return out, nil
}

// Imbalance returns (max-min)/max of the per-processor finish times.
func (r Result) Imbalance() float64 {
	if len(r.ProcessorTimes) == 0 || r.Time == 0 {
		return 0
	}
	min := r.ProcessorTimes[0]
	for _, t := range r.ProcessorTimes {
		if t < min {
			min = t
		}
	}
	return float64(r.Time-min) / float64(r.Time)
}
