package node

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/energy"
	"repro/internal/workloads"
)

func testParams() arch.Params {
	p := arch.Default()
	p.Corelets = 8
	p.Contexts = 2
	p.PrefetchEntries = 8
	return p
}

func TestNodeRunsAndReduces(t *testing.T) {
	p := testParams()
	b := workloads.CountBench()
	const procs, records = 4, 64
	r, err := Run(p, energy.Default(), b, procs, records, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.ProcessorTimes) != procs {
		t.Fatalf("processor times = %d", len(r.ProcessorTimes))
	}
	for _, pt := range r.ProcessorTimes {
		if pt <= 0 || pt > r.Time {
			t.Errorf("processor time %d outside makespan %d", pt, r.Time)
		}
	}
	// All records must be accounted for in the node-level histogram.
	var total uint64
	for _, v := range r.Output[:32] {
		total += uint64(v)
	}
	want := uint64(procs * p.Threads() * records)
	if total != want {
		t.Errorf("node histogram total %d, want %d", total, want)
	}
	if r.Energy.TotalPJ() <= 0 || r.Insts == 0 {
		t.Error("empty node accounting")
	}
}

func TestNodeImbalanceMeasured(t *testing.T) {
	p := testParams()
	b := workloads.SampleBench() // bursty, data-dependent work
	r, err := Run(p, energy.Default(), b, 4, 256, 11)
	if err != nil {
		t.Fatal(err)
	}
	imb := r.Imbalance()
	if imb < 0 || imb >= 1 {
		t.Errorf("imbalance = %v", imb)
	}
	// Different shards must not be perfectly identical in runtime.
	if imb == 0 {
		t.Error("no cross-processor load imbalance on a bursty workload")
	}
}

func TestNodeDeterministic(t *testing.T) {
	p := testParams()
	b := workloads.VarianceBench()
	r1, err := Run(p, energy.Default(), b, 2, 32, 5)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(p, energy.Default(), b, 2, 32, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Time != r2.Time {
		t.Errorf("node runtime not deterministic: %d vs %d", r1.Time, r2.Time)
	}
	for i := range r1.Output {
		if r1.Output[i] != r2.Output[i] {
			t.Fatal("node output not deterministic")
		}
	}
}

func TestNodeRejectsBadConfig(t *testing.T) {
	if _, err := Run(testParams(), energy.Default(), workloads.CountBench(), 0, 8, 1); err == nil {
		t.Error("zero processors accepted")
	}
}
