// End-to-end suite for the millid simulation service: a real HTTP stack
// (httptest) over the real experiment registry, with a controllable fake
// simulation backend where the scenario needs precise scheduling (queue
// backpressure, timeouts, drain).
package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/harness"
	"repro/internal/rescache"
	"repro/internal/server"
)

func newTestServer(t *testing.T, o server.Options) (*server.Server, *httptest.Server) {
	t.Helper()
	s := server.New(arch.Default(), o)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func doJSON(t *testing.T, method, url string, body any) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

type statusBody struct {
	ID         string `json:"id"`
	Experiment string `json:"experiment"`
	Status     string `json:"status"`
	Error      string `json:"error"`
	Cached     bool   `json:"cached"`
	ResultURL  string `json:"result_url"`
}

func postJob(t *testing.T, ts *httptest.Server, req map[string]any) (int, statusBody) {
	t.Helper()
	code, data := doJSON(t, "POST", ts.URL+"/v1/jobs", req)
	var sb statusBody
	if code == http.StatusOK || code == http.StatusAccepted {
		if err := json.Unmarshal(data, &sb); err != nil {
			t.Fatalf("bad job response %q: %v", data, err)
		}
	}
	return code, sb
}

// waitStatus polls the job until it reaches a terminal state.
func waitStatus(t *testing.T, ts *httptest.Server, id string) statusBody {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		code, data := doJSON(t, "GET", ts.URL+"/v1/jobs/"+id, nil)
		if code != http.StatusOK {
			t.Fatalf("GET job %s: HTTP %d: %s", id, code, data)
		}
		var sb statusBody
		if err := json.Unmarshal(data, &sb); err != nil {
			t.Fatal(err)
		}
		if sb.Status == "done" || sb.Status == "failed" {
			return sb
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q", id, sb.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func metricValue(t *testing.T, ts *httptest.Server, name string) float64 {
	t.Helper()
	code, data := doJSON(t, "GET", ts.URL+"/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /metrics: HTTP %d", code)
	}
	var samples []struct {
		Name  string   `json:"name"`
		Value *float64 `json:"value"`
	}
	if err := json.Unmarshal(data, &samples); err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		if s.Name == name && s.Value != nil {
			return *s.Value
		}
	}
	t.Fatalf("metric %q missing from /metrics", name)
	return 0
}

// TestExperimentsListing: GET /v1/experiments mirrors the harness registry.
func TestExperimentsListing(t *testing.T) {
	_, ts := newTestServer(t, server.Options{})
	code, data := doJSON(t, "GET", ts.URL+"/v1/experiments", nil)
	if code != http.StatusOK {
		t.Fatalf("HTTP %d", code)
	}
	var got []struct{ Name, Description string }
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	want := harness.Experiments()
	if len(got) != len(want) {
		t.Fatalf("listing has %d experiments, registry has %d", len(got), len(want))
	}
	for i, e := range want {
		if got[i].Name != e.Name || got[i].Description != e.Description {
			t.Errorf("entry %d: got %+v, want %+v", i, got[i], e)
		}
	}
}

// TestJobLifecycleRealSimulation drives a real count-kernel job (the barrier
// ablation) through queued -> running -> done and checks the rendered result.
func TestJobLifecycleRealSimulation(t *testing.T) {
	_, ts := newTestServer(t, server.Options{})
	code, sb := postJob(t, ts, map[string]any{"experiment": "ablation", "scale": 0.05})
	if code != http.StatusAccepted {
		t.Fatalf("POST: HTTP %d", code)
	}
	if sb.ID == "" || sb.Status != "queued" {
		t.Fatalf("POST response %+v", sb)
	}
	final := waitStatus(t, ts, sb.ID)
	if final.Status != "done" || final.Cached {
		t.Fatalf("final status %+v, want fresh done", final)
	}
	code, data := doJSON(t, "GET", ts.URL+"/v1/jobs/"+sb.ID+"/result", nil)
	if code != http.StatusOK {
		t.Fatalf("GET result: HTTP %d: %s", code, data)
	}
	var res struct {
		ID         string `json:"id"`
		Experiment string `json:"experiment"`
		Figures    []struct {
			Name   string `json:"name"`
			Series []string
			Rows   []struct{ Bench string }
		} `json:"figures"`
		Render  string          `json:"render"`
		Metrics json.RawMessage `json:"metrics"`
	}
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if res.ID != sb.ID || res.Experiment != "ablation" {
		t.Fatalf("result identity %+v", res)
	}
	if len(res.Figures) != 1 || len(res.Figures[0].Rows) != 1 || res.Figures[0].Rows[0].Bench != "count" {
		t.Fatalf("unexpected figures %+v", res.Figures)
	}
	if !strings.Contains(res.Render, "Barrier ablation") {
		t.Fatalf("render missing figure header: %q", res.Render)
	}
	var snap []struct{ Name string }
	if err := json.Unmarshal(res.Metrics, &snap); err != nil {
		t.Fatalf("result metrics snapshot: %v", err)
	}
	if len(snap) == 0 {
		t.Fatal("result metrics snapshot empty")
	}
	if v := metricValue(t, ts, "server.sims_run"); v != 1 {
		t.Fatalf("server.sims_run = %g, want 1", v)
	}
}

// TestIdenticalConcurrentPosts is the acceptance scenario: identical
// concurrent POSTs collapse onto one job id, run the simulation exactly
// once, and every result fetch returns byte-identical bodies; the repeat
// POST afterwards is a cache hit visible in the server metrics snapshot.
func TestIdenticalConcurrentPosts(t *testing.T) {
	_, ts := newTestServer(t, server.Options{})
	req := map[string]any{"experiment": "ablation", "scale": 0.04}

	const n = 8
	ids := make([]string, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			defer wg.Done()
			code, sb := postJob(t, ts, req)
			if code != http.StatusAccepted && code != http.StatusOK {
				t.Errorf("POST %d: HTTP %d", i, code)
				return
			}
			ids[i] = sb.ID
		}()
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if ids[i] != ids[0] {
			t.Fatalf("identical requests got different ids: %s vs %s", ids[0], ids[i])
		}
	}
	waitStatus(t, ts, ids[0])

	// The repeat POST of the identical request is a cache hit: same id,
	// already done, no new simulation.
	code, sb := postJob(t, ts, req)
	if code != http.StatusOK || sb.ID != ids[0] || sb.Status != "done" {
		t.Fatalf("repeat POST: HTTP %d %+v", code, sb)
	}

	_, body1 := doJSON(t, "GET", ts.URL+"/v1/jobs/"+ids[0]+"/result", nil)
	_, body2 := doJSON(t, "GET", ts.URL+"/v1/jobs/"+ids[0]+"/result", nil)
	if !bytes.Equal(body1, body2) {
		t.Fatal("result bodies differ between fetches")
	}
	if len(body1) == 0 {
		t.Fatal("empty result body")
	}

	if v := metricValue(t, ts, "server.sims_run"); v != 1 {
		t.Fatalf("server.sims_run = %g, want exactly 1 simulation for %d identical posts", v, n+1)
	}
	if v := metricValue(t, ts, "server.cache_hits"); v < 1 {
		t.Fatalf("server.cache_hits = %g, want >= 1", v)
	}
}

// gateRunner is a fake simulation backend whose jobs block until released.
type gateRunner struct {
	mu      sync.Mutex
	started chan string   // job experiment names, in pickup order
	gate    chan struct{} // closed to release all blocked jobs
}

func newGateRunner() *gateRunner {
	return &gateRunner{started: make(chan string, 64), gate: make(chan struct{})}
}

func (g *gateRunner) run(ctx context.Context, req server.Request) (harness.ExperimentResult, error) {
	g.started <- req.Experiment
	select {
	case <-g.gate:
		return harness.ExperimentResult{Text: fmt.Sprintf("fake result scale=%g", req.Scale)}, nil
	case <-ctx.Done():
		return harness.ExperimentResult{}, ctx.Err()
	}
}

// TestQueueFullReturns429: with one worker and one queue slot, the third
// distinct job bounces with 429 and the rejection is counted.
func TestQueueFullReturns429(t *testing.T) {
	g := newGateRunner()
	_, ts := newTestServer(t, server.Options{Workers: 1, QueueCapacity: 1, Runner: g.run})

	mk := func(scale float64) map[string]any {
		return map[string]any{"experiment": "fig3", "scale": scale}
	}
	code, first := postJob(t, ts, mk(1))
	if code != http.StatusAccepted {
		t.Fatalf("POST 1: HTTP %d", code)
	}
	<-g.started // worker is now busy; the queue slot is free
	if code, _ := postJob(t, ts, mk(2)); code != http.StatusAccepted {
		t.Fatalf("POST 2: HTTP %d", code)
	}
	code, _ = postJob(t, ts, mk(3))
	if code != http.StatusTooManyRequests {
		t.Fatalf("POST 3: HTTP %d, want 429", code)
	}
	if v := metricValue(t, ts, "server.jobs_rejected"); v != 1 {
		t.Fatalf("server.jobs_rejected = %g, want 1", v)
	}
	close(g.gate)
	if sb := waitStatus(t, ts, first.ID); sb.Status != "done" {
		t.Fatalf("first job ended %+v", sb)
	}
}

// TestTimeoutFailsJob: a job whose timeout_ms elapses lands in the terminal
// failed state with the deadline error, and its result route reports the
// failure.
func TestTimeoutFailsJob(t *testing.T) {
	g := newGateRunner() // never released: the job can only end by timeout
	_, ts := newTestServer(t, server.Options{Runner: g.run})
	code, sb := postJob(t, ts, map[string]any{"experiment": "fig3", "timeout_ms": 25})
	if code != http.StatusAccepted {
		t.Fatalf("POST: HTTP %d", code)
	}
	final := waitStatus(t, ts, sb.ID)
	if final.Status != "failed" {
		t.Fatalf("status %+v, want failed", final)
	}
	if !strings.Contains(final.Error, context.DeadlineExceeded.Error()) {
		t.Fatalf("error %q does not mention the deadline", final.Error)
	}
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/jobs/"+sb.ID+"/result", nil); code != http.StatusInternalServerError {
		t.Fatalf("GET result of failed job: HTTP %d, want 500", code)
	}
	if v := metricValue(t, ts, "server.jobs_failed"); v != 1 {
		t.Fatalf("server.jobs_failed = %g, want 1", v)
	}
}

// TestRealTimeoutCancelsSweep runs a real figure sweep with a 1 ms budget:
// the context plumbed through harness.RunExperiment must cut the sweep short
// and surface ctx.Err() as the job failure.
func TestRealTimeoutCancelsSweep(t *testing.T) {
	_, ts := newTestServer(t, server.Options{})
	code, sb := postJob(t, ts, map[string]any{"experiment": "fig3", "scale": 0.25, "timeout_ms": 1})
	if code != http.StatusAccepted {
		t.Fatalf("POST: HTTP %d", code)
	}
	final := waitStatus(t, ts, sb.ID)
	if final.Status != "failed" || !strings.Contains(final.Error, context.DeadlineExceeded.Error()) {
		t.Fatalf("final %+v, want deadline-exceeded failure", final)
	}
}

// TestGracefulDrain: draining refuses new jobs and degrades /healthz but
// finishes the in-flight job, whose result stays fetchable.
func TestGracefulDrain(t *testing.T) {
	g := newGateRunner()
	s, ts := newTestServer(t, server.Options{Workers: 1, Runner: g.run})
	code, sb := postJob(t, ts, map[string]any{"experiment": "fig3"})
	if code != http.StatusAccepted {
		t.Fatalf("POST: HTTP %d", code)
	}
	<-g.started

	drainErr := make(chan error, 1)
	go func() { drainErr <- s.Drain(context.Background()) }()

	// Drain flips intake off before waiting on the pool.
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, _ := postJob(t, ts, map[string]any{"experiment": "fig3", "scale": 2})
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("POST during drain never returned 503")
		}
		time.Sleep(time.Millisecond)
	}
	if code, _ := doJSON(t, "GET", ts.URL+"/healthz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: HTTP %d, want 503", code)
	}

	close(g.gate) // let the in-flight job finish
	select {
	case err := <-drainErr:
		if err != nil {
			t.Fatalf("Drain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Drain never returned")
	}
	final := waitStatus(t, ts, sb.ID)
	if final.Status != "done" {
		t.Fatalf("in-flight job ended %+v, want done", final)
	}
	code, data := doJSON(t, "GET", ts.URL+"/v1/jobs/"+sb.ID+"/result", nil)
	if code != http.StatusOK || !bytes.Contains(data, []byte("fake result")) {
		t.Fatalf("result after drain: HTTP %d %s", code, data)
	}
}

// TestValidation covers the API's failure modes.
func TestValidation(t *testing.T) {
	g := newGateRunner()
	defer close(g.gate)
	_, ts := newTestServer(t, server.Options{Runner: g.run})

	for name, req := range map[string]map[string]any{
		"unknown experiment": {"experiment": "no-such"},
		"negative scale":     {"experiment": "fig3", "scale": -1},
		"negative timeout":   {"experiment": "fig3", "timeout_ms": -5},
		"bad parallelism":    {"experiment": "fig3", "parallelism": -2},
		"negative seed":      {"experiment": "fig3", "seed": -7},
		"bad skip":           {"experiment": "fig3", "skip": "sideways"},
		"unknown field":      {"experiment": "fig3", "bogus": true},
		"bad params":         {"experiment": "fig3", "params": map[string]any{"Corelets": -4}},
	} {
		if code, _ := postJob(t, ts, req); code != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", name, code)
		}
	}
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/jobs/deadbeef", nil); code != http.StatusNotFound {
		t.Errorf("unknown job: HTTP %d, want 404", code)
	}
	// Result of an unfinished job: 409.
	code, sb := postJob(t, ts, map[string]any{"experiment": "fig3"})
	if code != http.StatusAccepted {
		t.Fatalf("POST: HTTP %d", code)
	}
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/jobs/"+sb.ID+"/result", nil); code != http.StatusConflict {
		t.Errorf("result of unfinished job: HTTP %d, want 409", code)
	}
}

// TestParamsOverride: a params override changes the job id (different
// hardware, different result) while defaults stay canonical.
func TestParamsOverride(t *testing.T) {
	g := newGateRunner()
	defer close(g.gate)
	_, ts := newTestServer(t, server.Options{Runner: g.run})
	_, a := postJob(t, ts, map[string]any{"experiment": "fig3"})
	_, b := postJob(t, ts, map[string]any{"experiment": "fig3", "params": map[string]any{"Channels": 2}})
	_, c := postJob(t, ts, map[string]any{"experiment": "fig3", "scale": 1.0}) // == default scale
	if a.ID == b.ID {
		t.Fatal("params override did not change the job id")
	}
	if a.ID != c.ID {
		t.Fatal("explicit default scale changed the job id; canonicalization broken")
	}
}

// TestParallelismOperational: the engine worker count is an operational knob
// like timeout_ms — requests that differ only in parallelism (top-level or
// smuggled through params) share one job id, one simulation, and one cache
// entry, because every worker count produces bit-identical results.
func TestParallelismOperational(t *testing.T) {
	g := newGateRunner()
	defer close(g.gate)
	_, ts := newTestServer(t, server.Options{Runner: g.run})
	_, a := postJob(t, ts, map[string]any{"experiment": "fig3"})
	_, b := postJob(t, ts, map[string]any{"experiment": "fig3", "parallelism": 8})
	_, c := postJob(t, ts, map[string]any{"experiment": "fig3", "params": map[string]any{"Parallelism": 4}})
	if a.ID != b.ID {
		t.Fatal("top-level parallelism changed the job id; it must stay operational")
	}
	if a.ID != c.ID {
		t.Fatal("params.Parallelism changed the job id; canonicalization must strip it")
	}
}

// TestSkipOperational: quiescence time skipping is the other operational
// knob — requests that differ only in the skip setting (top-level or a
// NoSkip smuggled through params) share one job id and one cache entry,
// because skipping is bit-identical on or off.
func TestSkipOperational(t *testing.T) {
	g := newGateRunner()
	defer close(g.gate)
	_, ts := newTestServer(t, server.Options{Runner: g.run})
	_, a := postJob(t, ts, map[string]any{"experiment": "fig3"})
	_, b := postJob(t, ts, map[string]any{"experiment": "fig3", "skip": "off"})
	_, c := postJob(t, ts, map[string]any{"experiment": "fig3", "skip": "on"})
	_, d := postJob(t, ts, map[string]any{"experiment": "fig3", "params": map[string]any{"NoSkip": true}})
	if a.ID != b.ID || a.ID != c.ID {
		t.Fatal("skip setting changed the job id; it must stay operational")
	}
	if a.ID != d.ID {
		t.Fatal("params.NoSkip changed the job id; canonicalization must strip it")
	}
}

// TestSeedChangesJob: any seed is accepted now that the registry threads it
// through every experiment; a non-canonical seed is a different simulation
// (new job id), while an explicit canonical seed stays the default job.
func TestSeedChangesJob(t *testing.T) {
	g := newGateRunner()
	defer close(g.gate)
	_, ts := newTestServer(t, server.Options{Runner: g.run})
	code, a := postJob(t, ts, map[string]any{"experiment": "fig3"})
	if code != http.StatusAccepted {
		t.Fatalf("default job: HTTP %d", code)
	}
	code, b := postJob(t, ts, map[string]any{"experiment": "fig3", "seed": 7})
	if code != http.StatusAccepted {
		t.Fatalf("seed=7 job: HTTP %d, want 202", code)
	}
	_, c := postJob(t, ts, map[string]any{"experiment": "fig3", "seed": float64(harness.Seed)})
	if a.ID == b.ID {
		t.Fatal("non-canonical seed shares the default job id")
	}
	if a.ID != c.ID {
		t.Fatal("explicit canonical seed changed the job id; canonicalization broken")
	}
}

// TestDrainTimeout: Drain bounded by an expired context returns its error
// while the stuck job keeps the pool busy.
func TestDrainTimeout(t *testing.T) {
	g := newGateRunner()
	defer close(g.gate)
	s, ts := newTestServer(t, server.Options{Workers: 1, Runner: g.run})
	if code, _ := postJob(t, ts, map[string]any{"experiment": "fig3"}); code != http.StatusAccepted {
		t.Fatal("POST failed")
	}
	<-g.started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Drain: %v, want context.Canceled", err)
	}
}

// TestSharedTierClusterHit: two servers ("nodes") mounting one in-process
// store simulate an identical request exactly once — the second node serves
// it from the shared tier (sims_run 0, cache_shared_hits 1) with a
// byte-identical result body.
func TestSharedTierClusterHit(t *testing.T) {
	store := rescache.NewStore(16, time.Minute)
	var sims atomic.Int64
	runner := func(ctx context.Context, req server.Request) (harness.ExperimentResult, error) {
		sims.Add(1)
		return harness.ExperimentResult{Text: fmt.Sprintf("computed scale=%g", req.Scale)}, nil
	}
	_, tsA := newTestServer(t, server.Options{Workers: 1, Shared: store, Runner: runner})
	_, tsB := newTestServer(t, server.Options{Workers: 1, Shared: store, Runner: runner})

	req := map[string]any{"experiment": "ablation", "scale": 0.04}
	code, sb := postJob(t, tsA, req)
	if code != http.StatusAccepted {
		t.Fatalf("POST to node A: HTTP %d", code)
	}
	if st := waitStatus(t, tsA, sb.ID); st.Status != "done" {
		t.Fatalf("node A job: %+v", st)
	}
	_, bodyA := doJSON(t, "GET", tsA.URL+"/v1/jobs/"+sb.ID+"/result", nil)

	code, sb2 := postJob(t, tsB, req)
	if code != http.StatusAccepted {
		t.Fatalf("POST to node B: HTTP %d", code)
	}
	if sb2.ID != sb.ID {
		t.Fatalf("nodes disagree on the job id: %s vs %s", sb.ID, sb2.ID)
	}
	if st := waitStatus(t, tsB, sb2.ID); st.Status != "done" {
		t.Fatalf("node B job: %+v", st)
	}
	_, bodyB := doJSON(t, "GET", tsB.URL+"/v1/jobs/"+sb2.ID+"/result", nil)

	if got := sims.Load(); got != 1 {
		t.Fatalf("cluster simulated %d times, want exactly once", got)
	}
	if v := metricValue(t, tsB, "server.sims_run"); v != 0 {
		t.Errorf("node B server.sims_run = %g, want 0", v)
	}
	if v := metricValue(t, tsB, "server.cache_shared_hits"); v != 1 {
		t.Errorf("node B server.cache_shared_hits = %g, want 1", v)
	}
	if !bytes.Equal(bodyA, bodyB) {
		t.Error("result bodies differ across nodes for one job id")
	}
}

// TestPanickingSimulationFailsJob: a panic inside the simulation becomes a
// failed job record, and the server (its worker recovered) keeps serving.
func TestPanickingSimulationFailsJob(t *testing.T) {
	boom := func(ctx context.Context, req server.Request) (harness.ExperimentResult, error) {
		if req.Experiment == "fig3" {
			panic("simulated blowup")
		}
		return harness.ExperimentResult{Text: "ok"}, nil
	}
	_, ts := newTestServer(t, server.Options{Workers: 1, Runner: boom})
	code, sb := postJob(t, ts, map[string]any{"experiment": "fig3"})
	if code != http.StatusAccepted {
		t.Fatalf("POST: HTTP %d", code)
	}
	st := waitStatus(t, ts, sb.ID)
	if st.Status != "failed" || !strings.Contains(st.Error, "panicked") {
		t.Fatalf("job after panic: %+v, want failed with panic message", st)
	}
	// The worker survived: the next job runs normally.
	code, sb = postJob(t, ts, map[string]any{"experiment": "ablation", "scale": 0.04})
	if code != http.StatusAccepted {
		t.Fatalf("POST after panic: HTTP %d", code)
	}
	if st := waitStatus(t, ts, sb.ID); st.Status != "done" {
		t.Fatalf("job after panic: %+v, want done", st)
	}
}
