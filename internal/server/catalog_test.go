package server_test

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/arch"
	"repro/internal/harness"
	"repro/internal/server"
	"repro/internal/workloads"
)

type paramDesc struct {
	Name        string   `json:"name"`
	Type        string   `json:"type"`
	Default     any      `json:"default"`
	Min         *float64 `json:"min"`
	Max         *float64 `json:"max"`
	Description string   `json:"description"`
}

type expEntry struct {
	Name        string      `json:"name"`
	Description string      `json:"description"`
	Params      []paramDesc `json:"params"`
}

func getExperiments(t *testing.T, url string) []expEntry {
	t.Helper()
	code, data := doJSON(t, "GET", url+"/v1/experiments", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /v1/experiments: HTTP %d", code)
	}
	var out []expEntry
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

func descriptors(e expEntry) map[string]paramDesc {
	m := map[string]paramDesc{}
	for _, p := range e.Params {
		m[p.Name] = p
	}
	return m
}

// TestParamDescriptorShape: every experiment advertises the universal job
// fields, and the per-experiment options follow the registry's Uses lists.
func TestParamDescriptorShape(t *testing.T) {
	_, ts := newTestServer(t, server.Options{})
	entries := getExperiments(t, ts.URL)
	byName := map[string]expEntry{}
	for _, e := range entries {
		byName[e.Name] = e
	}

	for _, e := range entries {
		ds := descriptors(e)
		for _, universal := range []string{"params", "seed", "timeout_ms", "parallelism", "skip",
			"stack_mode", "stack_bytes", "backing_bytes", "backing_latency"} {
			if _, ok := ds[universal]; !ok {
				t.Errorf("%s: missing universal descriptor %q", e.Name, universal)
			}
		}
		if seed, ok := ds["seed"]; ok {
			if seed.Default != any(float64(harness.Seed)) {
				t.Errorf("%s: seed default must be the canonical seed, got %+v", e.Name, seed)
			}
			if seed.Min == nil || *seed.Min != 0 || seed.Max != nil {
				t.Errorf("%s: seed descriptor must accept any seed, got %+v", e.Name, seed)
			}
		}
	}

	for exp, want := range map[string][]string{
		"cluster":   {"scale", "nodes", "processors"},
		"capacity":  {"scale"},
		"fig3":      {"scale"},
		"residency": {"scale", "host_bandwidth_gbs"},
		"timeline":  {"scale", "timeline_every"},
	} {
		e, ok := byName[exp]
		if !ok {
			t.Fatalf("experiment %q missing from listing", exp)
		}
		ds := descriptors(e)
		for _, name := range want {
			if _, ok := ds[name]; !ok {
				t.Errorf("%s: missing descriptor %q", exp, name)
			}
		}
	}
	if ds := descriptors(byName["table3"]); len(ds) != 9 {
		t.Errorf("table3 reads no options, want only the 9 universal descriptors, got %d", len(ds))
	}
}

// TestParamDescriptorsMatchDecoder cross-checks every advertised bound
// against the live job decoder: a value just below Min (or above Max) must
// be rejected, the advertised default must be accepted, and a field no
// descriptor names must be rejected. The simulation backend is a fake, so
// accepted jobs cost nothing.
func TestParamDescriptorsMatchDecoder(t *testing.T) {
	_, ts := newTestServer(t, server.Options{
		Runner: func(ctx context.Context, req server.Request) (harness.ExperimentResult, error) {
			return harness.ExperimentResult{Text: "ok"}, nil
		},
	})
	post := func(body map[string]any) int {
		code, _ := doJSON(t, "POST", ts.URL+"/v1/jobs", body)
		return code
	}

	for _, e := range getExperiments(t, ts.URL) {
		for _, d := range e.Params {
			if d.Type == "object" {
				continue
			}
			if d.Type == "string" {
				// String options decode closed value sets: a made-up value
				// must be rejected, a documented one accepted.
				valid, ok := map[string]string{"skip": "off", "stack_mode": "memory"}[d.Name]
				if !ok {
					t.Errorf("%s: string descriptor %q has no known-good probe value", e.Name, d.Name)
					continue
				}
				if code := post(map[string]any{"experiment": e.Name, d.Name: "no-such-value"}); code != http.StatusBadRequest {
					t.Errorf("%s: %s=no-such-value accepted with HTTP %d", e.Name, d.Name, code)
				}
				if code := post(map[string]any{"experiment": e.Name, d.Name: valid}); code != http.StatusOK && code != http.StatusAccepted {
					t.Errorf("%s: %s=%s rejected with HTTP %d", e.Name, d.Name, valid, code)
				}
				continue
			}
			if d.Min != nil {
				if code := post(map[string]any{"experiment": e.Name, d.Name: *d.Min - 1}); code != http.StatusBadRequest {
					t.Errorf("%s: %s=%g (below min) accepted with HTTP %d", e.Name, d.Name, *d.Min-1, code)
				}
			}
			if d.Max != nil {
				if code := post(map[string]any{"experiment": e.Name, d.Name: *d.Max + 1}); code != http.StatusBadRequest {
					t.Errorf("%s: %s=%g (above max) accepted with HTTP %d", e.Name, d.Name, *d.Max+1, code)
				}
			}
			if d.Default == nil {
				t.Errorf("%s: %s: numeric descriptor without a default", e.Name, d.Name)
				continue
			}
			code := post(map[string]any{"experiment": e.Name, d.Name: d.Default})
			if code != http.StatusOK && code != http.StatusAccepted {
				t.Errorf("%s: %s=%v (the default) rejected with HTTP %d", e.Name, d.Name, d.Default, code)
			}
		}
		if code := post(map[string]any{"experiment": e.Name, "no_such_option": 1}); code != http.StatusBadRequest {
			t.Errorf("%s: undeclared field accepted with HTTP %d", e.Name, code)
		}
	}
}

// TestStackAndClusterDecoder pins the semantics of the new job fields: the
// stack knobs fold into the validated params block (so an incoherent
// combination is a 400, not a crash mid-simulation), the cluster geometry is
// bounded, and a different stack discipline is a different canonical job.
func TestStackAndClusterDecoder(t *testing.T) {
	_, ts := newTestServer(t, server.Options{
		Runner: func(ctx context.Context, req server.Request) (harness.ExperimentResult, error) {
			return harness.ExperimentResult{Text: "ok"}, nil
		},
	})
	post := func(body map[string]any) (int, string) {
		code, data := doJSON(t, "POST", ts.URL+"/v1/jobs", body)
		var st struct {
			ID string `json:"id"`
		}
		json.Unmarshal(data, &st)
		return code, st.ID
	}
	rowBytes := arch.Default().DRAM.RowBytes

	if code, _ := post(map[string]any{"experiment": "fig3", "stack_mode": "hwcache"}); code != http.StatusBadRequest {
		t.Errorf("hwcache without stack_bytes accepted with HTTP %d", code)
	}
	if code, _ := post(map[string]any{"experiment": "fig3", "stack_mode": "hwcache",
		"stack_bytes": 8 * rowBytes}); code != http.StatusAccepted && code != http.StatusOK {
		t.Errorf("hwcache with stack_bytes rejected with HTTP %d", code)
	}
	if code, _ := post(map[string]any{"experiment": "fig3", "stack_bytes": rowBytes + 1}); code != http.StatusBadRequest {
		t.Errorf("stack_bytes off the row grid accepted with HTTP %d", code)
	}
	if code, _ := post(map[string]any{"experiment": "cluster", "nodes": 65}); code != http.StatusBadRequest {
		t.Errorf("nodes=65 accepted with HTTP %d", code)
	}
	if code, _ := post(map[string]any{"experiment": "cluster", "nodes": 8, "processors": 2}); code != http.StatusAccepted && code != http.StatusOK {
		t.Errorf("nodes=8 processors=2 rejected with HTTP %d", code)
	}

	// A stack discipline changes what is simulated, so it must change the id.
	_, base := post(map[string]any{"experiment": "fig3"})
	_, mem := post(map[string]any{"experiment": "fig3", "stack_mode": "memory",
		"stack_bytes": 8 * rowBytes})
	_, hw := post(map[string]any{"experiment": "fig3", "stack_mode": "hwcache",
		"stack_bytes": 8 * rowBytes})
	if base == "" || mem == "" || hw == "" {
		t.Fatalf("missing job ids: %q %q %q", base, mem, hw)
	}
	if base == mem || mem == hw || base == hw {
		t.Errorf("stack disciplines share a job id: base=%s memory=%s hwcache=%s", base, mem, hw)
	}
}

// TestWorkloadsListing: GET /v1/workloads mirrors the benchmark registry,
// and the reduce word counts partition the state exactly.
func TestWorkloadsListing(t *testing.T) {
	_, ts := newTestServer(t, server.Options{})
	code, data := doJSON(t, "GET", ts.URL+"/v1/workloads", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /v1/workloads: HTTP %d", code)
	}
	var got []struct {
		Name            string `json:"name"`
		RecordWords     int    `json:"record_words"`
		StateWords      int    `json:"state_words"`
		DefaultRecords  int    `json:"default_records"`
		ReduceIntWords  int    `json:"reduce_int_words"`
		ReduceF32Words  int    `json:"reduce_f32_words"`
		ReduceKeepWords int    `json:"reduce_keep_words"`
	}
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	want := workloads.All()
	if len(got) != len(want) {
		t.Fatalf("listing has %d workloads, registry has %d", len(got), len(want))
	}
	for i, b := range want {
		g := got[i]
		if g.Name != b.Name() || g.RecordWords != b.K.RecordWords ||
			g.StateWords != b.K.StateWords || g.DefaultRecords != b.DefaultRecords {
			t.Errorf("%s: geometry mismatch: %+v", b.Name(), g)
		}
		if g.ReduceIntWords+g.ReduceF32Words+g.ReduceKeepWords != b.K.StateWords {
			t.Errorf("%s: reduce kinds sum to %d, state has %d words", b.Name(),
				g.ReduceIntWords+g.ReduceF32Words+g.ReduceKeepWords, b.K.StateWords)
		}
	}
}
