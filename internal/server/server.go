// Package server is the millid simulation service: a JSON HTTP API over the
// experiment registry that turns the simulator from a batch tool into a
// servable backend. Requests are simulation jobs — an experiment name plus
// architecture parameters, input scale, and seed — executed on a bounded
// worker pool (internal/jobs) and memoized in a content-addressed LRU result
// cache (internal/rescache). Because every simulation is deterministic, the
// SHA-256 of the canonical request doubles as the job id: identical requests
// share one job, one simulation, and byte-identical result bodies.
//
// Routes:
//
//	GET  /v1/experiments      registered experiments (name, description, and
//	                          parameter descriptors mirroring job validation)
//	GET  /v1/workloads        benchmark kernels (dataset + reduce geometry)
//	POST /v1/jobs             submit a job; returns its deterministic id
//	GET  /v1/jobs             all job records, most recent first
//	GET  /v1/jobs/{id}        job status
//	GET  /v1/jobs/{id}/result rendered ExperimentResult + metrics snapshot
//	GET  /healthz             liveness (503 while draining)
//	GET  /metrics             server-level metrics.Snapshot (queue depth,
//	                          cache hit rate, job latency histograms)
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/arch"
	"repro/internal/harness"
	"repro/internal/jobs"
	"repro/internal/metrics"
	"repro/internal/rescache"
)

// Request is the canonical, fully-normalized form of one simulation job. Its
// JSON encoding (fields in declaration order, defaults applied) is the
// content that gets hashed into the job id, so any two requests that would
// simulate the same thing collapse onto one id. The per-job timeout is
// deliberately NOT part of the canonical form: it bounds service-side
// execution without changing what is simulated.
type Request struct {
	Experiment       string      `json:"experiment"`
	Params           arch.Params `json:"params"`
	Scale            float64     `json:"scale"`
	Seed             uint64      `json:"seed"`
	HostBandwidthGBs float64     `json:"host_bandwidth_gbs"`
	TimelineEvery    uint64      `json:"timeline_every"`
	// Nodes and Processors are the cluster experiment's geometry (nodes in
	// the simulated cluster, processors per node). They are canonical — a
	// 8x2 cluster simulates different work than the default 4x1 — and
	// normalized to their defaults so equivalent requests share one id.
	Nodes      int `json:"nodes"`
	Processors int `json:"processors"`
}

// jobRequest is the POST /v1/jobs wire form. Params is decoded on top of the
// server's base configuration, so absent fields keep Table III defaults.
type jobRequest struct {
	Experiment       string          `json:"experiment"`
	Params           json.RawMessage `json:"params,omitempty"`
	Scale            float64         `json:"scale,omitempty"`
	Seed             uint64          `json:"seed,omitempty"`
	HostBandwidthGBs float64         `json:"host_bandwidth_gbs,omitempty"`
	TimelineEvery    uint64          `json:"timeline_every,omitempty"`
	TimeoutMS        int64           `json:"timeout_ms,omitempty"`
	// Parallelism picks the worker count of the deterministic parallel cycle
	// engine for this job (0 = the server default). Like timeout_ms it is an
	// operational knob, not part of the canonical form: every value produces
	// bit-identical results, so ids and cache entries are shared across
	// parallelism settings.
	Parallelism int `json:"parallelism,omitempty"`
	// Skip picks the engine's quiescence time skipping for this job: "on",
	// "off", or "" for the server default. Skipping is bit-identical either
	// way — a wall-clock knob like parallelism — so it too is stripped from
	// the canonical form; ids and cached bodies are shared across settings.
	Skip string `json:"skip,omitempty"`
	// Nodes and Processors set the cluster experiment's geometry (0 = the
	// historical 4 nodes x 1 processor). Unlike parallelism they change what
	// is simulated, so they are part of the canonical form.
	Nodes      int `json:"nodes,omitempty"`
	Processors int `json:"processors,omitempty"`
	// StackMode, StackBytes, BackingBytes, and BackingLatency are top-level
	// conveniences for the die-stacked capacity knobs: they are folded into
	// Params (overriding any value set there) and validated by
	// arch.Params.Validate, so "stack_mode": "hwcache" works without nesting
	// a params object.
	StackMode      string `json:"stack_mode,omitempty"`
	StackBytes     int    `json:"stack_bytes,omitempty"`
	BackingBytes   int    `json:"backing_bytes,omitempty"`
	BackingLatency int    `json:"backing_latency,omitempty"`
}

// Runner executes one canonical request. The default runner dispatches to
// harness.RunExperiment; tests substitute controllable fakes.
type Runner func(ctx context.Context, req Request) (harness.ExperimentResult, error)

// Options tunes a Server. The zero value is production-ready.
type Options struct {
	// Workers is the simulation worker pool size; 0 means GOMAXPROCS.
	Workers int
	// QueueCapacity bounds the job queue; 0 means 4x workers.
	QueueCapacity int
	// CacheEntries bounds the result cache; 0 means 256.
	CacheEntries int
	// DefaultTimeout bounds jobs that do not set timeout_ms; 0 means no
	// default bound.
	DefaultTimeout time.Duration
	// Shared mounts the cluster-wide result tier behind the local LRU (the
	// millid store daemon, via rescache.NewHTTPTier, or an in-process
	// rescache.Store); nil keeps the cache single-tier.
	Shared rescache.SharedTier
	// Parallelism is the default worker count of the deterministic parallel
	// cycle engine for jobs that do not set "parallelism" themselves (0 or 1
	// = serial). Results are bit-identical for every value.
	Parallelism int
	// NoSkip disables the engine's quiescence time skipping by default for
	// jobs that do not set "skip" themselves. Results are bit-identical
	// either way; skipping only changes wall-clock time.
	NoSkip bool
	// Runner overrides the simulation backend (tests); nil runs the real
	// experiment registry.
	Runner Runner
}

type jobStatus string

const (
	statusQueued  jobStatus = "queued"
	statusRunning jobStatus = "running"
	statusDone    jobStatus = "done"
	statusFailed  jobStatus = "failed"
)

type jobRecord struct {
	ID          string
	Req         Request
	Timeout     time.Duration
	Parallelism int  // effective engine worker count (operational, like Timeout)
	NoSkip      bool // effective time-skipping setting (operational, like Timeout)
	Status      jobStatus
	Error       string
	Cached      bool // satisfied from the result cache without simulating
	SubmittedAt time.Time
	StartedAt   time.Time
	FinishedAt  time.Time
	Result      []byte
	seq         uint64 // submission order, for the job listing
}

// Server implements the millid HTTP API. Create with New; it is an
// http.Handler.
type Server struct {
	base     arch.Params
	pool     *jobs.Pool
	cache    *rescache.Cache
	reg      *metrics.Registry
	run      Runner
	timeout  time.Duration
	par      int  // default cycle-engine parallelism for jobs that set none
	noskip   bool // default time-skipping off-switch for jobs that set none
	expNames map[string]bool

	mu       sync.Mutex
	jobsByID map[string]*jobRecord
	seq      uint64

	draining atomic.Bool
	sims     atomic.Uint64 // simulations actually executed (cache misses)
	done     atomic.Uint64
	failed   atomic.Uint64

	mux *http.ServeMux
}

// New returns a Server simulating on top of the base architecture
// configuration (request params are decoded over it, so absent fields keep
// its values).
func New(base arch.Params, o Options) *Server {
	cacheEntries := o.CacheEntries
	if cacheEntries <= 0 {
		cacheEntries = 256
	}
	s := &Server{
		base:     base,
		pool:     jobs.New(o.Workers, o.QueueCapacity),
		cache:    rescache.New(cacheEntries),
		run:      o.Runner,
		timeout:  o.DefaultTimeout,
		par:      o.Parallelism,
		noskip:   o.NoSkip,
		expNames: map[string]bool{},
		jobsByID: map[string]*jobRecord{},
		mux:      http.NewServeMux(),
	}
	if o.Shared != nil {
		s.cache.SetShared(o.Shared)
	}
	if s.run == nil {
		s.run = func(ctx context.Context, req Request) (harness.ExperimentResult, error) {
			return harness.RunExperiment(ctx, req.Experiment, req.Params, harness.ExpOptions{
				Scale:            req.Scale,
				HostBandwidthGBs: req.HostBandwidthGBs,
				TimelineEvery:    req.TimelineEvery,
				Seed:             req.Seed,
				ClusterNodes:     req.Nodes,
				ClusterProcs:     req.Processors,
			})
		}
	}
	for _, e := range harness.Experiments() {
		s.expNames[e.Name] = true
	}
	s.reg = metrics.NewRegistry()
	s.registerMetrics()

	s.mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Drain stops intake (POST /v1/jobs returns 503, /healthz degrades) and
// waits until every accepted job has finished or ctx is done. GET routes
// keep serving throughout, so clients can still collect results while the
// pool winds down.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	return s.pool.Drain(ctx)
}

// Metrics returns the server-level snapshot served at /metrics.
func (s *Server) Metrics() metrics.Snapshot { return s.reg.Snapshot() }

func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(data, '\n'))
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// normalize validates the wire request and produces its canonical form plus
// the operational knobs (timeout, engine parallelism, time skipping) that
// ride alongside it.
func (s *Server) normalize(jr jobRequest) (Request, time.Duration, int, bool, error) {
	return canonicalize(s.base, s.expNames, s.timeout, jr)
}

// CanonicalID returns the deterministic job id a millid node would assign to
// this POST /v1/jobs body over the given base parameters. The cluster router
// uses it as the consistent-hashing key, so a request lands on the same node
// that keys its job record and cache entry by it.
func CanonicalID(base arch.Params, body []byte) (string, error) {
	canonOnce.Do(func() {
		canonNames = map[string]bool{}
		for _, e := range harness.Experiments() {
			canonNames[e.Name] = true
		}
	})
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var jr jobRequest
	if err := dec.Decode(&jr); err != nil {
		return "", fmt.Errorf("bad request body: %w", err)
	}
	req, _, _, _, err := canonicalize(base, canonNames, 0, jr)
	if err != nil {
		return "", err
	}
	return rescache.Key(req)
}

var (
	canonOnce  sync.Once
	canonNames map[string]bool
)

// canonicalize validates one wire request against the experiment set and
// produces its canonical form over the base configuration.
func canonicalize(base arch.Params, expNames map[string]bool, defTimeout time.Duration, jr jobRequest) (Request, time.Duration, int, bool, error) {
	if !expNames[jr.Experiment] {
		return Request{}, 0, 0, false, fmt.Errorf("unknown experiment %q (see GET /v1/experiments)", jr.Experiment)
	}
	if jr.Scale < 0 || math.IsInf(jr.Scale, 0) {
		return Request{}, 0, 0, false, fmt.Errorf("bad scale %g", jr.Scale)
	}
	if jr.TimeoutMS < 0 {
		return Request{}, 0, 0, false, fmt.Errorf("bad timeout_ms %d", jr.TimeoutMS)
	}
	if jr.Parallelism < 0 {
		return Request{}, 0, 0, false, fmt.Errorf("bad parallelism %d", jr.Parallelism)
	}
	if jr.HostBandwidthGBs < 0 {
		return Request{}, 0, 0, false, fmt.Errorf("bad host_bandwidth_gbs %g", jr.HostBandwidthGBs)
	}
	if jr.Nodes < 0 || jr.Nodes > 64 {
		return Request{}, 0, 0, false, fmt.Errorf("bad nodes %d (want 0..64)", jr.Nodes)
	}
	if jr.Processors < 0 || jr.Processors > 32 {
		return Request{}, 0, 0, false, fmt.Errorf("bad processors %d (want 0..32)", jr.Processors)
	}
	p := base
	if len(jr.Params) > 0 {
		if err := json.Unmarshal(jr.Params, &p); err != nil {
			return Request{}, 0, 0, false, fmt.Errorf("bad params: %v", err)
		}
	}
	// The top-level stack knobs are conveniences over the same Params
	// fields; a set knob wins over the nested params value.
	stacked := jr.StackMode != "" || jr.StackBytes != 0 || jr.BackingBytes != 0 || jr.BackingLatency != 0
	if jr.StackMode != "" {
		p.StackMode = jr.StackMode
	}
	if jr.StackBytes != 0 {
		p.StackBytes = jr.StackBytes
	}
	if jr.BackingBytes != 0 {
		p.BackingBytes = jr.BackingBytes
	}
	if jr.BackingLatency != 0 {
		p.BackingLatency = jr.BackingLatency
	}
	if len(jr.Params) > 0 || stacked {
		if err := p.Validate(); err != nil {
			return Request{}, 0, 0, false, fmt.Errorf("bad params: %v", err)
		}
	}
	// Engine parallelism never changes what is simulated (results are
	// bit-identical at every worker count), so it is stripped from the
	// canonical form — identical simulations share one id and one cache
	// entry regardless of how many workers execute them. The top-level
	// field wins over a value smuggled in via params.
	par := p.Parallelism
	if jr.Parallelism > 0 {
		par = jr.Parallelism
	}
	p.Parallelism = 0
	// Quiescence time skipping is the same kind of knob: bit-identical on or
	// off, so "skip" is validated here and stripped from the canonical form.
	// The top-level field wins over a NoSkip smuggled in via params.
	noskip := p.NoSkip
	switch jr.Skip {
	case "":
	case "on":
		noskip = false
	case "off":
		noskip = true
	default:
		return Request{}, 0, 0, false, fmt.Errorf("bad skip %q (want \"on\" or \"off\")", jr.Skip)
	}
	p.NoSkip = false
	req := Request{
		Experiment:       jr.Experiment,
		Params:           p,
		Scale:            jr.Scale,
		Seed:             jr.Seed,
		HostBandwidthGBs: jr.HostBandwidthGBs,
		TimelineEvery:    jr.TimelineEvery,
		Nodes:            jr.Nodes,
		Processors:       jr.Processors,
	}
	// Apply the registry defaults so equivalent requests share one id.
	if req.Scale == 0 {
		req.Scale = 1
	}
	// Any seed is accepted: the registry threads it through every run
	// function (zero maps to the canonical seed, so historical job ids are
	// unchanged).
	if req.Seed == 0 {
		req.Seed = harness.Seed
	}
	if req.HostBandwidthGBs == 0 {
		req.HostBandwidthGBs = 16
	}
	if req.TimelineEvery == 0 {
		req.TimelineEvery = harness.DefaultTimelineEvery
	}
	if req.Nodes == 0 {
		req.Nodes = harness.ClusterNodes
	}
	if req.Processors == 0 {
		req.Processors = 1
	}
	timeout := defTimeout
	if jr.TimeoutMS > 0 {
		timeout = time.Duration(jr.TimeoutMS) * time.Millisecond
	}
	return req, timeout, par, noskip, nil
}

// statusBody is the job-status wire form (POST /v1/jobs, GET /v1/jobs/{id}).
type statusBody struct {
	ID          string     `json:"id"`
	Experiment  string     `json:"experiment"`
	Status      string     `json:"status"`
	Error       string     `json:"error,omitempty"`
	Cached      bool       `json:"cached"`
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	ResultURL   string     `json:"result_url,omitempty"`
}

// statusOf renders rec under s.mu.
func statusOf(rec *jobRecord) statusBody {
	b := statusBody{
		ID:          rec.ID,
		Experiment:  rec.Req.Experiment,
		Status:      string(rec.Status),
		Error:       rec.Error,
		Cached:      rec.Cached,
		SubmittedAt: rec.SubmittedAt,
	}
	if !rec.StartedAt.IsZero() {
		t := rec.StartedAt
		b.StartedAt = &t
	}
	if !rec.FinishedAt.IsZero() {
		t := rec.FinishedAt
		b.FinishedAt = &t
	}
	if rec.Status == statusDone {
		b.ResultURL = "/v1/jobs/" + rec.ID + "/result"
	}
	return b
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining: not accepting jobs")
		return
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var jr jobRequest
	if err := dec.Decode(&jr); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	req, timeout, par, noskip, err := s.normalize(jr)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if par == 0 {
		par = s.par
	}
	if jr.Skip == "" && !noskip {
		noskip = s.noskip
	}
	id, err := rescache.Key(req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}

	s.mu.Lock()
	rec, exists := s.jobsByID[id]
	if exists && rec.Status != statusFailed {
		// Deduplicated: the identical request is already queued, running, or
		// done. A done record's touch counts as a cache hit.
		if rec.Status == statusDone {
			s.cache.Get(id)
		}
		body := statusOf(rec)
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, body)
		return
	}
	// New id — or a retry of a failed job (timeouts are operational, not
	// deterministic, so a failed id may be resubmitted).
	if cached, ok := s.cache.Get(id); ok {
		s.seq++
		rec = &jobRecord{
			ID: id, Req: req, Status: statusDone, Cached: true,
			SubmittedAt: time.Now(), FinishedAt: time.Now(), Result: cached, seq: s.seq,
		}
		s.jobsByID[id] = rec
		s.done.Add(1)
		body := statusOf(rec)
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, body)
		return
	}
	s.seq++
	rec = &jobRecord{
		ID: id, Req: req, Timeout: timeout, Parallelism: par, NoSkip: noskip,
		Status: statusQueued, SubmittedAt: time.Now(), seq: s.seq,
	}
	s.jobsByID[id] = rec
	err = s.pool.Submit(jobs.Job{ID: id, Timeout: timeout, Run: func(ctx context.Context) { s.execute(ctx, id) }})
	if err != nil {
		delete(s.jobsByID, id)
		s.mu.Unlock()
		switch {
		case errors.Is(err, jobs.ErrQueueFull):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "queue full (%d queued, %d running)", s.pool.Depth(), s.pool.Running())
		case errors.Is(err, jobs.ErrClosed):
			writeError(w, http.StatusServiceUnavailable, "draining: not accepting jobs")
		default:
			writeError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	body := statusOf(rec)
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, body)
}

// execute runs one accepted job on a pool worker.
func (s *Server) execute(ctx context.Context, id string) {
	s.mu.Lock()
	rec, ok := s.jobsByID[id]
	if !ok { // unreachable: records outlive their queue entries
		s.mu.Unlock()
		return
	}
	rec.Status = statusRunning
	rec.StartedAt = time.Now()
	req := rec.Req
	par := rec.Parallelism
	noskip := rec.NoSkip
	s.mu.Unlock()

	// The engine worker count is applied to the run only — the canonical
	// request (and therefore the rendered result, which embeds it) stays
	// parallelism-free so cache bodies are byte-identical across settings.
	runReq := req
	runReq.Params.Parallelism = par
	runReq.Params.NoSkip = noskip

	// DoContext: if this job's ctx ends while an identical computation is in
	// flight (a resubmitted id joining its predecessor), the join detaches
	// instead of blocking past its deadline; the leader keeps simulating.
	// A panicking simulation is converted to a job failure here so the
	// record reaches a terminal state — the pool's recover is the backstop.
	body, cached, err := s.cache.DoContext(ctx, id, func() (out []byte, rerr error) {
		defer func() {
			if r := recover(); r != nil {
				out, rerr = nil, fmt.Errorf("simulation panicked: %v", r)
			}
		}()
		s.sims.Add(1)
		res, err := s.run(ctx, runReq)
		if err != nil {
			return nil, err
		}
		return renderResult(id, req, res)
	})

	s.mu.Lock()
	defer s.mu.Unlock()
	rec.FinishedAt = time.Now()
	if err != nil {
		rec.Status = statusFailed
		rec.Error = err.Error()
		s.failed.Add(1)
		return
	}
	rec.Status = statusDone
	rec.Cached = cached
	rec.Result = body
	s.done.Add(1)
}

// figureBody is the structured wire form of one harness.Figure. Row value
// maps marshal with sorted keys, so the encoding is deterministic.
type figureBody struct {
	Name    string             `json:"name"`
	Series  []string           `json:"series"`
	Rows    []rowBody          `json:"rows"`
	Geomean map[string]float64 `json:"geomean,omitempty"`
}

type rowBody struct {
	Bench  string             `json:"bench"`
	Values map[string]float64 `json:"values"`
}

// resultBody is the GET /v1/jobs/{id}/result wire form: the structured
// figures, the milliexp-style text rendering, and a metrics snapshot of the
// result's shape. Everything in it is deterministic — a cache hit and a
// fresh simulation of the same request produce byte-identical bodies.
type resultBody struct {
	ID         string          `json:"id"`
	Experiment string          `json:"experiment"`
	Request    Request         `json:"request"`
	Figures    []figureBody    `json:"figures,omitempty"`
	Text       string          `json:"text,omitempty"`
	Render     string          `json:"render"`
	Metrics    json.RawMessage `json:"metrics"`
}

// renderResult builds the stored result bytes for a completed experiment.
func renderResult(id string, req Request, res harness.ExperimentResult) ([]byte, error) {
	body := resultBody{ID: id, Experiment: req.Experiment, Request: req, Text: res.Text, Render: res.Render()}
	var rows, series int
	for _, f := range res.Figures {
		fb := figureBody{Name: f.Name, Series: f.Series, Geomean: f.Geomean}
		for _, r := range f.Rows {
			fb.Rows = append(fb.Rows, rowBody{Bench: r.Bench, Values: r.Values})
		}
		body.Figures = append(body.Figures, fb)
		rows += len(f.Rows)
		series += len(f.Series)
	}
	// The result-level metrics snapshot: deterministic shape samples only
	// (no wall-clock values — those live on the job status), so repeated
	// simulations of one request snapshot identically.
	var snap metrics.Snapshot
	snap.Put(metrics.Sample{Name: "result.figures", Kind: metrics.Gauge, Value: float64(len(res.Figures))})
	snap.Put(metrics.Sample{Name: "result.rows", Kind: metrics.Gauge, Value: float64(rows)})
	snap.Put(metrics.Sample{Name: "result.series", Kind: metrics.Gauge, Value: float64(series)})
	snap.Put(metrics.Sample{Name: "result.render_bytes", Kind: metrics.Gauge, Value: float64(len(body.Render))})
	mj, err := snap.JSON()
	if err != nil {
		return nil, err
	}
	body.Metrics = mj

	data, err := json.MarshalIndent(body, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	recs := make([]*jobRecord, 0, len(s.jobsByID))
	for _, rec := range s.jobsByID {
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].seq > recs[j].seq })
	out := make([]statusBody, len(recs))
	for i, rec := range recs {
		out[i] = statusOf(rec)
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) lookup(id string) (*jobRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.jobsByID[id]
	return rec, ok
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	s.mu.Lock()
	body := statusOf(rec)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	s.mu.Lock()
	status, errMsg, result := rec.Status, rec.Error, rec.Result
	s.mu.Unlock()
	switch status {
	case statusDone:
		w.Header().Set("Content-Type", "application/json")
		w.Write(result)
	case statusFailed:
		writeError(w, http.StatusInternalServerError, "job failed: %s", errMsg)
	default:
		writeJSON(w, http.StatusConflict, map[string]string{
			"status": string(status),
			"error":  "job not finished; poll GET /v1/jobs/{id}",
		})
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	data, err := s.reg.Snapshot().JSON()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}
