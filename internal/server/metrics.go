package server

// registerMetrics publishes the service-level counters through the
// simulator-wide metrics registry, following the same lazy-closure
// discipline as the component models: nothing is evaluated until a
// /metrics request snapshots the registry.
func (s *Server) registerMetrics() {
	r := s.reg
	r.Gauge("server.workers", func() float64 { return float64(s.pool.Workers()) })
	r.Gauge("server.engine_parallelism", func() float64 { return float64(s.par) })
	r.Gauge("server.engine_skip", func() float64 {
		if s.noskip {
			return 0
		}
		return 1
	})
	r.Gauge("server.queue_capacity", func() float64 { return float64(s.pool.Capacity()) })
	r.Gauge("server.queue_depth", func() float64 { return float64(s.pool.Depth()) })
	r.Gauge("server.jobs_running", func() float64 { return float64(s.pool.Running()) })
	r.Counter("server.jobs_submitted", s.pool.Submitted)
	r.Counter("server.jobs_rejected", s.pool.Rejected)
	r.Counter("server.jobs_done", s.done.Load)
	r.Counter("server.jobs_failed", s.failed.Load)
	r.Counter("server.jobs_panicked", s.pool.Panicked)
	r.Counter("server.sims_run", s.sims.Load)
	r.Counter("server.cache_hits", func() uint64 { return s.cache.Stats().Hits })
	r.Counter("server.cache_shared_hits", func() uint64 { return s.cache.Stats().SharedHits })
	r.Counter("server.cache_misses", func() uint64 { return s.cache.Stats().Misses })
	r.Counter("server.cache_evictions", func() uint64 { return s.cache.Stats().Evictions })
	r.Gauge("server.cache_entries", func() float64 { return float64(s.cache.Stats().Entries) })
	r.Gauge("server.cache_hit_rate", func() float64 { return s.cache.Stats().HitRate() })
	r.Gauge("server.draining", func() float64 {
		if s.draining.Load() {
			return 1
		}
		return 0
	})
	// Latency histograms share the memory controller's bucket layout:
	// bucket i counts [2^(i-1), 2^i) milliseconds, bucket 0 is <1 ms.
	r.Histogram("server.job_wait_ms", s.pool.WaitHistogram)
	r.Histogram("server.job_run_ms", s.pool.RunHistogram)
}
