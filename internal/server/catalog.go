// Catalog endpoints: the self-describing half of the millid API. GET
// /v1/experiments lists every registered experiment with machine-readable
// parameter descriptors derived from the same validation canonicalize runs
// on POST /v1/jobs — a value a descriptor allows is a value the job decoder
// accepts, and vice versa. GET /v1/workloads lists the benchmark kernels a
// request's scale multiplies, with their dataset and reduce geometry.
package server

import (
	"net/http"

	"repro/internal/harness"
	"repro/internal/workloads"
)

// paramDesc describes one POST /v1/jobs body field an experiment consumes.
// Bounds mirror canonicalize exactly: a request is rejected iff it violates
// a descriptor (Min/Max inclusive; absent means unbounded on that side).
type paramDesc struct {
	Name        string   `json:"name"`
	Type        string   `json:"type"` // "number", "integer", or "object"
	Default     any      `json:"default,omitempty"`
	Min         *float64 `json:"min,omitempty"`
	Max         *float64 `json:"max,omitempty"`
	Description string   `json:"description"`
}

func bound(v float64) *float64 { return &v }

// paramsFor derives an experiment's parameter descriptors: first the options
// its run function actually reads (ExperimentInfo.Uses), then the fields
// every job accepts — architecture overrides, the pinned seed, and the two
// operational knobs that never change what is simulated.
func paramsFor(uses []string) []paramDesc {
	var ps []paramDesc
	for _, u := range uses {
		switch u {
		case "scale":
			ps = append(ps, paramDesc{Name: "scale", Type: "number", Default: 1.0, Min: bound(0),
				Description: "input-size multiplier over each benchmark's default record count (0 = default 1)"})
		case "host_bandwidth_gbs":
			ps = append(ps, paramDesc{Name: "host_bandwidth_gbs", Type: "number", Default: 16.0, Min: bound(0),
				Description: "host-link bandwidth in GB/s assumed by the residency model (0 = default 16)"})
		case "timeline_every":
			ps = append(ps, paramDesc{Name: "timeline_every", Type: "integer",
				Default: float64(harness.DefaultTimelineEvery), Min: bound(0),
				Description: "timeline sampling period in compute cycles (0 = default)"})
		case "nodes":
			ps = append(ps, paramDesc{Name: "nodes", Type: "integer",
				Default: float64(harness.ClusterNodes), Min: bound(0), Max: bound(64),
				Description: "nodes in the simulated cluster (0 = default)"})
		case "processors":
			ps = append(ps, paramDesc{Name: "processors", Type: "integer",
				Default: 1.0, Min: bound(0), Max: bound(32),
				Description: "processors per cluster node (0 = default 1)"})
		}
	}
	return append(ps,
		paramDesc{Name: "params", Type: "object",
			Description: "architecture parameter overrides, decoded over the node's base configuration and validated like the milliexp flags"},
		paramDesc{Name: "stack_mode", Type: "string", Default: "",
			Description: "die-stack capacity discipline: \"memory\", \"hwcache\", or \"memcache\"; folds into params.StackMode (\"\" = all-resident pass-through)"},
		paramDesc{Name: "stack_bytes", Type: "integer", Default: 0.0, Min: bound(0),
			Description: "die-stack capacity in bytes, a multiple of the DRAM row size; folds into params.StackBytes (0 = holds the whole dataset)"},
		paramDesc{Name: "backing_bytes", Type: "integer", Default: 0.0, Min: bound(0),
			Description: "planar backing store capacity in bytes; folds into params.BackingBytes (0 = sized to the dataset)"},
		paramDesc{Name: "backing_latency", Type: "integer", Default: 0.0, Min: bound(0),
			Description: "planar backing store latency in channel cycles; folds into params.BackingLatency (0 = default)"},
		paramDesc{Name: "seed", Type: "integer", Default: float64(harness.Seed), Min: bound(0),
			Description: "dataset seed threaded through every run the experiment performs (0 = canonical)"},
		paramDesc{Name: "timeout_ms", Type: "integer", Default: 0.0, Min: bound(0),
			Description: "service-side execution bound; operational only, not part of the job id (0 = server default)"},
		paramDesc{Name: "parallelism", Type: "integer", Default: 0.0, Min: bound(0),
			Description: "cycle-engine worker count; results are bit-identical at every value (0 = server default)"},
		paramDesc{Name: "skip", Type: "string", Default: "",
			Description: "engine quiescence time skipping: \"on\" or \"off\"; bit-identical either way (\"\" = server default)"},
	)
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	// Name and Description predate the params descriptors and must keep
	// their shape: old clients decode exactly those two fields.
	type expBody struct {
		Name        string      `json:"name"`
		Description string      `json:"description"`
		Params      []paramDesc `json:"params"`
	}
	var out []expBody
	for _, e := range harness.Experiments() {
		out = append(out, expBody{e.Name, e.Description, paramsFor(e.Uses)})
	}
	writeJSON(w, http.StatusOK, out)
}

// workloadBody is one GET /v1/workloads entry: the dataset and reduce
// geometry of a benchmark kernel. The reduce word counts partition
// state_words by merge semantics (integer add / float32 add / per-thread
// only).
type workloadBody struct {
	Name            string `json:"name"`
	RecordWords     int    `json:"record_words"`
	StateWords      int    `json:"state_words"`
	DefaultRecords  int    `json:"default_records"`
	ReduceIntWords  int    `json:"reduce_int_words"`
	ReduceF32Words  int    `json:"reduce_f32_words"`
	ReduceKeepWords int    `json:"reduce_keep_words"`
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	var out []workloadBody
	for _, b := range workloads.All() {
		wb := workloadBody{
			Name:           b.Name(),
			RecordWords:    b.K.RecordWords,
			StateWords:     b.K.StateWords,
			DefaultRecords: b.DefaultRecords,
		}
		for _, k := range b.ReduceSpec {
			switch k {
			case workloads.KindInt:
				wb.ReduceIntWords++
			case workloads.KindF32:
				wb.ReduceF32Words++
			case workloads.KindKeep:
				wb.ReduceKeepWords++
			}
		}
		out = append(out, wb)
	}
	writeJSON(w, http.StatusOK, out)
}
