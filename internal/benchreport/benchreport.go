// Package benchreport measures the simulator's own throughput — how many
// simulated compute cycles and instructions each architecture model executes
// per wall-clock second — and records it as a BENCH_N.json file in the
// repository root. Every performance PR regenerates the file at the next N,
// so the sequence BENCH_1.json, BENCH_2.json, ... is the repo's benchmark
// trajectory: the geomean simulated-cycles/sec of each entry must not
// regress against its predecessor.
//
// Measurements run serially (one simulation at a time) so wall-clock numbers
// are not distorted by host scheduling; each run is still verified against
// the golden MapReduce reference by the harness, so a throughput number can
// never come from a functionally wrong simulation.
package benchreport

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"time"

	"repro/internal/arch"
	"repro/internal/harness"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// DefaultScale is the pinned input scale at which throughput is measured.
// It is large enough that each run is dominated by the cycle loop rather
// than setup, and small enough that a full collection stays under a few
// minutes of wall time.
const DefaultScale = 0.25

// SchemaVersion identifies the BENCH_*.json layout.
const SchemaVersion = 1

// Entry is one {architecture x benchmark} throughput measurement.
type Entry struct {
	Arch         string  `json:"arch"`
	Bench        string  `json:"bench"`
	Records      int     `json:"records"`      // per-thread input records
	SimCycles    uint64  `json:"sim_cycles"`   // compute-clock cycles simulated
	SimPicos     int64   `json:"sim_picos"`    // simulated time (ps)
	Insts        uint64  `json:"insts"`        // instructions executed
	WallSeconds  float64 `json:"wall_seconds"` // host wall time of the run
	CyclesPerSec float64 `json:"cycles_per_sec"`
	InstsPerSec  float64 `json:"insts_per_sec"`
	// Memory-fabric contention counters (informational — not part of the
	// determinism gate, so reports written before they existed still diff
	// clean).
	MemStallCycles  uint64 `json:"mem_stall_cycles,omitempty"`
	MemMaxOccupancy int    `json:"mem_max_occupancy,omitempty"`
	MemRejected     uint64 `json:"mem_rejected,omitempty"`
	// Heap allocations made inside the run's cycle loop (count and bytes).
	// The interpreter is designed to be allocation-free in steady state —
	// TestCycleLoopAllocFree gates it at zero — so a nonzero value here flags
	// a hot-path allocation that crept in. Informational, like the
	// mem_* counters: excluded from the determinism gate.
	AllocsPerRun uint64 `json:"allocs_per_run,omitempty"`
	BytesPerRun  uint64 `json:"bytes_per_run,omitempty"`
	// Quiescence fast-forward counters: clock edges the engine elided and the
	// skip windows they were elided in. Skipping is bit-identical on or off,
	// so these are informational, not part of the determinism gate; zero
	// means the run replayed every edge (skip off, or nothing to skip).
	SkippedEdges uint64 `json:"skipped_edges,omitempty"`
	SkipWindows  uint64 `json:"skip_windows,omitempty"`
	// Die-stacked capacity backend counters (internal/stack), present only
	// when the collection ran with a StackMode configured. Informational,
	// like the mem_* counters: excluded from the determinism gate, and absent
	// entirely on the default pass-through machine.
	StackMode          string  `json:"stack_mode,omitempty"`
	StackHitRate       float64 `json:"stack_hit_rate,omitempty"`
	StackBackingReads  uint64  `json:"stack_backing_reads,omitempty"`
	StackBackingWrites uint64  `json:"stack_backing_writes,omitempty"`
	StackWritebacks    uint64  `json:"stack_writebacks,omitempty"`
}

// DeterminismFields are the Entry fields that must be bit-identical between
// two reports collected at the same scale on a timing-neutral change.
var DeterminismFields = []string{"records", "sim_cycles", "sim_picos", "insts"}

// DiffDeterminism compares the determinism fields of cur against base,
// keyed by {arch, bench}, and returns one human-readable line per mismatch
// (including entries present in only one report). An empty slice means cur
// is bit-identical to base where it matters.
func DiffDeterminism(base, cur *Report) []string {
	type key struct{ a, b string }
	idx := map[key]Entry{}
	for _, e := range base.Entries {
		idx[key{e.Arch, e.Bench}] = e
	}
	var diffs []string
	seen := map[key]bool{}
	for _, e := range cur.Entries {
		k := key{e.Arch, e.Bench}
		seen[k] = true
		b, ok := idx[k]
		if !ok {
			diffs = append(diffs, fmt.Sprintf("%s/%s: missing from baseline", e.Arch, e.Bench))
			continue
		}
		chk := func(field string, want, got uint64) {
			if want != got {
				diffs = append(diffs, fmt.Sprintf("%s/%s: %s %d != baseline %d", e.Arch, e.Bench, field, got, want))
			}
		}
		chk("records", uint64(b.Records), uint64(e.Records))
		chk("sim_cycles", b.SimCycles, e.SimCycles)
		chk("sim_picos", uint64(b.SimPicos), uint64(e.SimPicos))
		chk("insts", b.Insts, e.Insts)
	}
	for _, e := range base.Entries {
		if !seen[key{e.Arch, e.Bench}] {
			diffs = append(diffs, fmt.Sprintf("%s/%s: missing from new report", e.Arch, e.Bench))
		}
	}
	return diffs
}

// Report is one recorded benchmark-trajectory point.
type Report struct {
	Schema    int     `json:"schema"`
	CreatedAt string  `json:"created_at"`
	GoVersion string  `json:"go_version"`
	GOOS      string  `json:"goos"`
	GOARCH    string  `json:"goarch"`
	NumCPU    int     `json:"num_cpu"`
	Scale     float64 `json:"scale"`
	// Parallelism is the worker count the runs were collected at (0 or 1 =
	// serial). Any value must produce bit-identical determinism fields; the
	// field records which configuration produced the wall-clock numbers.
	Parallelism int `json:"parallelism,omitempty"`
	// NoSkip records whether quiescence time skipping was disabled for the
	// collection. Like Parallelism it cannot change the determinism fields —
	// only the wall-clock numbers.
	NoSkip bool `json:"no_skip,omitempty"`
	// Fig3WallSeconds is the wall time of a full harness.Fig3 reproduction
	// at Scale — the end-to-end number a future PR has to beat.
	Fig3WallSeconds float64 `json:"fig3_wall_seconds"`
	Entries         []Entry `json:"entries"`
	// GeomeanCyclesPerSec maps each architecture to the geomean of its
	// per-benchmark simulated-cycles/sec, plus the cross-architecture
	// geomean under the key "all".
	GeomeanCyclesPerSec map[string]float64 `json:"geomean_cycles_per_sec"`
}

// Fig3Archs returns Figure 3's workload set: the six fixed-clock PNM
// architectures whose cycle loops this report tracks.
func Fig3Archs() []string {
	return []string{
		harness.ArchGPGPU, harness.ArchVWS, harness.ArchSSMC,
		harness.ArchMillipedeNoFC, harness.ArchVWSRow, harness.ArchMillipede,
	}
}

// Collect measures throughput for every architecture in archs over all
// benchmarks at the given scale, then times one full Fig3 reproduction.
func Collect(p arch.Params, archs []string, scale float64) (*Report, error) {
	r := &Report{
		Schema:      SchemaVersion,
		CreatedAt:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Scale:       scale,
		Parallelism: p.Parallelism,
		NoSkip:      p.NoSkip,
	}
	for _, a := range archs {
		for _, b := range workloads.All() {
			records := harness.RecordsFor(b, scale)
			// The cycle loop is allocation-free (TestCycleLoopAllocFree), so
			// GC has nothing productive to do during the timed run; pausing
			// it keeps runtime background work out of both the wall clock
			// and the allocs_per_run ledger. The blocking runtime.GC() also
			// drains any concurrent cycle already in flight — pausing alone
			// doesn't stop one, and its mark workers would otherwise charge
			// a few stray allocations to whichever entry they finish under.
			gc := debug.SetGCPercent(-1)
			runtime.GC()
			t0 := time.Now()
			res, err := harness.Run(a, b, p, records)
			wall := time.Since(t0).Seconds()
			debug.SetGCPercent(gc)
			if err != nil {
				return nil, fmt.Errorf("benchreport: %s/%s: %w", a, b.Name(), err)
			}
			e := Entry{
				Arch: a, Bench: b.Name(), Records: records,
				SimCycles: res.Cycles, SimPicos: int64(res.Time), Insts: res.Insts,
				WallSeconds:    wall,
				MemStallCycles: res.MemStallCycles, MemMaxOccupancy: res.MemMaxOccupancy,
				MemRejected:  res.MemRejected,
				AllocsPerRun: res.CycleAllocs, BytesPerRun: res.CycleBytes,
				SkippedEdges: res.SkippedEdges, SkipWindows: res.SkipWindows,
			}
			if res.Stack.Mode != "" {
				e.StackMode = res.Stack.Mode
				e.StackHitRate = res.Stack.HitRate()
				e.StackBackingReads = res.Stack.Backing.Reads
				e.StackBackingWrites = res.Stack.Backing.Writes
				e.StackWritebacks = res.Stack.Writebacks
			}
			if wall > 0 {
				e.CyclesPerSec = float64(res.Cycles) / wall
				e.InstsPerSec = float64(res.Insts) / wall
			}
			r.Entries = append(r.Entries, e)
		}
	}
	t0 := time.Now()
	if _, err := harness.Fig3(context.Background(), p, scale, 0); err != nil {
		return nil, fmt.Errorf("benchreport: fig3 timing run: %w", err)
	}
	r.Fig3WallSeconds = time.Since(t0).Seconds()
	r.computeGeomeans()
	return r, nil
}

func (r *Report) computeGeomeans() {
	byArch := map[string][]float64{}
	var all []float64
	for _, e := range r.Entries {
		if e.CyclesPerSec > 0 {
			byArch[e.Arch] = append(byArch[e.Arch], e.CyclesPerSec)
			all = append(all, e.CyclesPerSec)
		}
	}
	r.GeomeanCyclesPerSec = map[string]float64{}
	for a, vs := range byArch {
		r.GeomeanCyclesPerSec[a] = stats.Geomean(vs)
	}
	if len(all) > 0 {
		r.GeomeanCyclesPerSec["all"] = stats.Geomean(all)
	}
}

// Write stores the report as indented JSON at path.
func (r *Report) Write(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Read loads a report written by Write.
func Read(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("benchreport: %s: %w", path, err)
	}
	return &r, nil
}

// Compare renders a per-architecture speedup table of cur over prev
// (geomean simulated-cycles/sec ratios) plus the overall geomean and the
// Fig3 wall-time ratio. Ratios above 1.0 mean cur is faster.
func Compare(prev, cur *Report) string {
	var archs []string
	for a := range cur.GeomeanCyclesPerSec {
		if a != "all" {
			archs = append(archs, a)
		}
	}
	sort.Strings(archs)
	out := fmt.Sprintf("%-28s %16s %16s %8s\n", "architecture", "prev cycles/s", "cur cycles/s", "speedup")
	row := func(name string, p, c float64) {
		ratio := 0.0
		if p > 0 {
			ratio = c / p
		}
		out += fmt.Sprintf("%-28s %16.0f %16.0f %7.2fx\n", name, p, c, ratio)
	}
	for _, a := range archs {
		row(a, prev.GeomeanCyclesPerSec[a], cur.GeomeanCyclesPerSec[a])
	}
	row("geomean(all)", prev.GeomeanCyclesPerSec["all"], cur.GeomeanCyclesPerSec["all"])
	if prev.Fig3WallSeconds > 0 {
		out += fmt.Sprintf("%-28s %15.2fs %15.2fs %7.2fx\n", "fig3 wall time",
			prev.Fig3WallSeconds, cur.Fig3WallSeconds, prev.Fig3WallSeconds/cur.Fig3WallSeconds)
	}
	return out
}
