// Package multicore models the conventional Xeon-like system of the paper's
// Section VI-C comparison (Figure 5): 8 cores at 3.6 GHz with 4-way SMT and
// a 4-wide issue width, 64 KB L1 and 1 MB-per-core L2 caches, and off-chip
// DRAM at one quarter of the die-stacked bandwidth, charged at 70 pJ/bit.
//
// The core is an in-order-SMT approximation of the paper's out-of-order
// pipeline: each core cycle offers four issue slots filled from the four
// SMT contexts in round-robin order, and the non-blocking cache hierarchy
// supplies the memory-level parallelism an OoO window would. The paper
// itself flags this comparison as coarse — its point is the thread-count
// and off-chip-energy gap, which this model reproduces — while the
// controlled comparisons are the PNM ones.
package multicore

import (
	"fmt"
	"runtime"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/corelet"
	"repro/internal/dram"
	"repro/internal/energy"
	"repro/internal/layout"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Config is the conventional-multicore configuration.
type Config struct {
	Cores      int     // 8
	SMT        int     // 4
	IssueWidth int     // 4
	ClockHz    float64 // 3.6 GHz
	L1Bytes    int     // 64 KB
	L2Bytes    int     // 1 MB per core
	LineBytes  int     // 128
	L2Latency  int     // core cycles added to an L1 miss that hits in L2
	LocalBytes int     // live-state scratch (cache-resident state assumption)
	// Off-chip DRAM: one quarter of the die-stacked channel bandwidth.
	DRAM          dram.Params
	MemClockHz    float64
	MemQueueDepth int
	Latencies     corelet.Latencies
	// NoSkip disables the engine's quiescence time skipping (see
	// arch.Params.NoSkip): a speed knob, never a model change.
	NoSkip bool
}

// DefaultConfig returns the Section VI-C parameters.
func DefaultConfig() Config {
	d := dram.DefaultParams()
	d.ChannelBytes = 4 // quarter bandwidth at the same 1.2 GHz channel clock
	lat := corelet.DefaultLatencies()
	lat.GlobalHit = 3
	return Config{
		Cores:         8,
		SMT:           4,
		IssueWidth:    4,
		ClockHz:       3.6e9,
		L1Bytes:       65536,
		L2Bytes:       1 << 20,
		LineBytes:     128,
		L2Latency:     12,
		LocalBytes:    4096,
		DRAM:          d,
		MemClockHz:    1.2e9,
		MemQueueDepth: 32,
		Latencies:     lat,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Cores <= 0 || c.SMT <= 0 || c.IssueWidth <= 0:
		return fmt.Errorf("multicore: bad geometry")
	case c.ClockHz <= 0 || c.MemClockHz <= 0:
		return fmt.Errorf("multicore: bad clocks")
	case c.L1Bytes <= 0 || c.L2Bytes <= 0 || c.LineBytes <= 0:
		return fmt.Errorf("multicore: bad cache sizes")
	case c.MemQueueDepth <= 0:
		return fmt.Errorf("multicore: bad queue depth")
	}
	return c.DRAM.Validate()
}

// Threads returns the hardware thread count.
func (c Config) Threads() int { return c.Cores * c.SMT }

type delayed struct {
	due uint64
	fn  func()
}

// delayLine defers callbacks by core cycles, modeling L2 hit latency on top
// of the synchronous cache stack. It also owns the freelist of delayCtx
// records so the per-request Done plumbing allocates nothing in steady state.
type delayLine struct {
	now  uint64
	q    []delayed
	free []*delayCtx
}

// delayCtx carries one request's completion through the delay line. Both of
// its closures are built once at allocation and reused for every request the
// context serves.
type delayCtx struct {
	d     *delayLine
	delay int
	done  func(int64, bool)
	cycle int64
	hit   bool
	wrap  func(int64, bool) // handed to the inner port as Done
	fire  func()            // runs after the delay; recycles the ctx
}

func (d *delayLine) newCtx() *delayCtx {
	ctx := &delayCtx{d: d}
	ctx.wrap = func(cycle int64, hit bool) {
		ctx.cycle, ctx.hit = cycle, hit
		ctx.d.after(ctx.delay, ctx.fire)
	}
	ctx.fire = func() {
		if ctx.done != nil {
			ctx.done(ctx.cycle, ctx.hit)
		}
		ctx.done = nil
		ctx.d.free = append(ctx.d.free, ctx)
	}
	return ctx
}

func (d *delayLine) getCtx(delay int, done func(int64, bool)) *delayCtx {
	n := len(d.free)
	if n == 0 {
		d.free = append(d.free, d.newCtx())
		n = 1
	}
	ctx := d.free[n-1]
	d.free = d.free[:n-1]
	ctx.delay, ctx.done = delay, done
	return ctx
}

func (d *delayLine) putCtx(ctx *delayCtx) {
	ctx.done = nil
	d.free = append(d.free, ctx)
}

func (d *delayLine) after(cycles int, fn func()) {
	d.q = append(d.q, delayed{due: d.now + uint64(cycles), fn: fn})
}

func (d *delayLine) tick() {
	d.now++
	rest := d.q[:0]
	for _, e := range d.q {
		if e.due <= d.now {
			e.fn()
		} else {
			rest = append(rest, e)
		}
	}
	d.q = rest
}

// delayedPort adds a fixed completion delay to an inner memory port (the L2
// hit/fill latency on top of the synchronous cache stack).
type delayedPort struct {
	inner mem.Port
	d     *delayLine
	delay int
}

func (b delayedPort) Enqueue(r mem.Request) bool {
	ctx := b.d.getCtx(b.delay, r.Done)
	r.Done = ctx.wrap
	ok := b.inner.Enqueue(r)
	if !ok {
		b.d.putCtx(ctx)
	}
	return ok
}

func (b delayedPort) Tick() { b.inner.Tick() }

func (b delayedPort) Idle() bool { return b.inner.Idle() }

// Result aggregates one run.
type Result struct {
	Time          sim.Time
	ComputeCycles uint64
	Cores         corelet.Stats
	L1, L2        cache.Stats
	DRAM          core.DRAMStats
	Mem           core.MemStats
	Energy        energy.Breakdown
	Metrics       metrics.Snapshot
	// Allocs and AllocBytes count heap allocations made inside the run's
	// cycle loop (zero in steady state by design; see benchreport).
	Allocs     uint64
	AllocBytes uint64
	// SkippedEdges and SkipWindows report the quiescence fast-forward's
	// informational counters (results are bit-identical with skipping off).
	SkippedEdges uint64
	SkipWindows  uint64
}

// System is the 8-core conventional machine.
type System struct {
	C    Config
	EP   energy.Params
	eng  *sim.Engine
	msys *mem.System
	// cluster holds every core's hot state in one structure-of-arrays image.
	// The multicore clock hands each core IssueWidth issue slots per system
	// cycle, so the cores are ticked individually (TickCore) rather than as
	// a cluster sweep.
	cluster *corelet.Cluster
	// live is the active set of non-halted core indices, compacted in
	// registration order as cores halt (cores never un-halt).
	live     []int32
	l1s      []*cache.Cache
	l2s      []*cache.Cache
	delay    *delayLine
	lay      layout.Layout
	ticks    uint64
	coresDom *sim.Domain
	reg      *metrics.Registry
}

type port struct{ c *cache.Cache }

func (p port) Read(ctx int, addr uint32, ready func()) corelet.Status {
	switch p.c.Access(addr, ready) {
	case cache.Hit:
		return corelet.Done
	case cache.Miss:
		return corelet.Pending
	default:
		return corelet.Retry
	}
}

// New builds the system for one launch. The launch must use the Split
// layout (contiguous per-thread partitions — the natural MapReduce sharding
// for a cache hierarchy).
func New(c Config, ep energy.Params, l core.Launch) (*System, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if err := ep.Validate(); err != nil {
		return nil, err
	}
	if l.Prog == nil {
		return nil, fmt.Errorf("multicore: nil program")
	}
	if l.Interleave != layout.Split {
		return nil, fmt.Errorf("multicore: requires the Split layout")
	}
	streamWords, err := l.StreamLen()
	if err != nil {
		return nil, fmt.Errorf("multicore: %v", err)
	}
	lay := layout.Layout{
		RowBytes: c.DRAM.RowBytes, Corelets: c.Cores, Contexts: c.SMT,
		Interleave: layout.Split, StreamWords: streamWords,
	}
	if err := lay.Validate(); err != nil {
		return nil, err
	}
	flat, err := l.PackInput(lay)
	if err != nil {
		return nil, err
	}
	// Conventional off-chip DRAM: one channel (no die-stack vault fan-out).
	msys, err := mem.New(c.DRAM, 1, c.MemQueueDepth, len(flat)*4)
	if err != nil {
		return nil, err
	}
	msys.LoadWords(0, flat)
	s := &System{C: c, EP: ep, eng: sim.NewEngine(), msys: msys, lay: lay}
	s.delay = &delayLine{q: make([]delayed, 0, 256)}
	// Outstanding delayed completions are bounded by the L1s' collective
	// MSHR capacity; pre-seed past it so the cycle loop never grows the list.
	s.delay.free = make([]*delayCtx, 0, 32*c.Cores)
	for i := 0; i < 16*c.Cores; i++ {
		s.delay.free = append(s.delay.free, s.delay.newCtx())
	}

	read := func(addr uint32) uint32 { return msys.ReadWord(addr) }
	code, err := corelet.Decode(l.Prog, c.Latencies)
	if err != nil {
		return nil, err
	}
	ports := make([]corelet.GlobalPort, c.Cores)
	for i := 0; i < c.Cores; i++ {
		l2, err := cache.New(cache.Config{
			SizeBytes: c.L2Bytes, LineBytes: c.LineBytes, Assoc: 8, PrefetchDepth: 2,
		}, msys, 16)
		if err != nil {
			return nil, err
		}
		l1, err := cache.New(cache.Config{
			SizeBytes: c.L1Bytes, LineBytes: c.LineBytes, Assoc: 4, PrefetchDepth: 2,
		}, delayedPort{inner: l2, d: s.delay, delay: c.L2Latency}, 8)
		if err != nil {
			return nil, err
		}
		ports[i] = port{c: l1}
		s.l1s = append(s.l1s, l1)
		s.l2s = append(s.l2s, l2)
	}
	s.cluster, err = corelet.NewCluster(corelet.Config{
		Corelets:   c.Cores,
		Contexts:   c.SMT,
		LocalBytes: c.LocalBytes,
		Latencies:  c.Latencies,
	}, code, ports, read)
	if err != nil {
		return nil, err
	}
	for i := 0; i < c.Cores; i++ {
		for j, w := range l.Args {
			s.cluster.WriteLocal(i, uint32(j*4), w)
		}
		s.live = append(s.live, int32(i))
	}

	s.reg = metrics.NewRegistry()
	s.reg.Counter("core.cycles", func() uint64 { return s.ticks })
	corelet.RegisterStats(s.reg, "corelet", s.coreStats)
	cache.RegisterStats(s.reg, "l1", func() cache.Stats { return s.cacheStats(s.l1s) })
	cache.RegisterStats(s.reg, "l2", func() cache.Stats { return s.cacheStats(s.l2s) })
	msys.RegisterMetrics(s.reg)

	s.eng.SetSkip(!c.NoSkip)
	mt := &mem.Ticker{Sys: msys}
	memDom, err := s.eng.AddDomain("mem", sim.PeriodFromHz(c.MemClockHz), mt)
	if err != nil {
		return nil, err
	}
	mt.Domain = memDom
	s.coresDom, err = s.eng.AddDomain("cores", sim.PeriodFromHz(c.ClockHz), coresTicker{s})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// coresTicker registers the core clock with the engine, including the
// quiescence protocol (the System's exported method set stays the model
// API).
type coresTicker struct{ s *System }

func (t coresTicker) Tick(now sim.Time) { t.s.tick(now) }

// NextWork reports the earliest future core-clock tick at which the system
// tick could change state: the earliest delayed completion due to fire, or
// the earliest issue any live core's slots can reach. Each system tick
// hands a core IssueWidth corelet cycles, so a core with issue distance d
// (corelet cycles) first issues ceil(d/IssueWidth) system ticks from now.
func (t coresTicker) NextWork(sim.Time) sim.Time {
	s := t.s
	tk := int64(s.ticks)
	iw := int64(s.C.IssueWidth)
	w := int64(1<<63 - 1)
	for _, e := range s.delay.q {
		if due := int64(e.due); due < w {
			if due <= tk+1 {
				return s.coresDom.TimeOfTick(uint64(tk + 1))
			}
			w = due
		}
	}
	for _, co := range s.live {
		d := s.cluster.CoreNextIssueDelta(int(co))
		if d == corelet.NeverTicks {
			continue
		}
		if d <= iw {
			return s.coresDom.TimeOfTick(uint64(tk + 1))
		}
		if n := tk + (d+iw-1)/iw; n < w {
			w = n
		}
	}
	if w == 1<<63-1 {
		return sim.Never
	}
	return s.coresDom.TimeOfTick(uint64(w))
}

// SkipTicks replays n dead system ticks: the tick counter and delay-line
// clock advance, and every live core burns n*IssueWidth idle issue slots,
// exactly as the dispatched loop would have.
func (t coresTicker) SkipTicks(n int64) {
	s := t.s
	s.ticks += uint64(n)
	s.delay.now += uint64(n)
	slots := n * int64(s.C.IssueWidth)
	for _, co := range s.live {
		s.cluster.SkipCoreTicks(int(co), slots)
	}
}

// tick gives each core IssueWidth issue slots per cycle. A core that halts
// mid-cycle still receives its remaining slots (as with the full scan, which
// only checked Halted at the top of the cycle) and drops out the next cycle.
func (s *System) tick(sim.Time) {
	s.ticks++
	s.delay.tick()
	live := s.live
	n := 0
	for i, co := range live {
		for k := 0; k < s.C.IssueWidth; k++ {
			s.cluster.TickCore(int(co))
		}
		if !s.cluster.CoreHalted(int(co)) {
			if n != i {
				live[n] = co // only move on an actual halt
			}
			n++
		}
	}
	s.live = live[:n]
}

// Halted reports whether all cores finished.
func (s *System) Halted() bool { return len(s.live) == 0 }

// Run executes to completion.
func (s *System) Run(limit sim.Time) (Result, error) {
	if limit == 0 {
		limit = 10 * sim.Second
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m0, b0 := ms.Mallocs, ms.TotalAlloc
	t, err := s.eng.Run(limit, s.Halted)
	if err != nil {
		return Result{}, err
	}
	runtime.ReadMemStats(&ms)
	r := Result{Time: t, ComputeCycles: s.ticks}
	r.Allocs, r.AllocBytes = ms.Mallocs-m0, ms.TotalAlloc-b0
	r.SkippedEdges, r.SkipWindows = s.eng.SkippedEdges(), s.eng.SkipWindows()
	r.Cores = s.coreStats()
	r.L1 = s.cacheStats(s.l1s)
	r.L2 = s.cacheStats(s.l2s)
	ds := s.msys.DRAMStats()
	r.DRAM = core.DRAMStats{RowHits: ds.RowHits, RowMisses: ds.RowMisses, BytesRead: ds.BytesRead, Requests: ds.Requests}
	cs := s.msys.CtlStats()
	r.Mem = core.MemStats{StallCycles: cs.StallCycles, MaxOccupancy: cs.MaxOccupancy, Rejected: cs.Rejected}
	r.Energy = s.energyOf(r, t)
	r.Metrics = s.reg.Snapshot()
	return r, nil
}

// coreStats supplies the aggregate execution counters for the registry and
// the Result.
func (s *System) coreStats() corelet.Stats { return s.cluster.Stats() }

// cacheStats aggregates one cache level's counters.
func (s *System) cacheStats(level []*cache.Cache) cache.Stats {
	var agg cache.Stats
	for _, c := range level {
		agg.Add(c.Stats())
	}
	return agg
}

// ooIInstFactor is the per-instruction energy premium of a 4-wide
// out-of-order core (rename, wakeup/select, ROB, load-store queue) over the
// simple in-order corelet datapath — the "power-hungry superscalar cores"
// the paper contrasts against (Section V).
const oooInstFactor = 6.0

// leakMWPerOoOCore is leakage per big core in milliwatts.
const leakMWPerOoOCore = 25.0

func (s *System) energyOf(r Result, t sim.Time) energy.Breakdown {
	ep := s.EP
	var b energy.Breakdown
	b.CorePJ = float64(r.Cores.Instructions)*(ep.InstPJ+ep.IFetchMIMDPJ)*oooInstFactor +
		float64(r.Cores.LocalAccess+r.Cores.GlobalReads)*ep.L1LargePJ +
		float64(r.L2.Hits+r.L2.Misses)*ep.L2PJ +
		float64(r.Cores.IdleCycles)*ep.IdlePJ*oooInstFactor
	b.DRAMPJ = ep.OffChip(s.msys.DRAMStats().BytesRead)
	b.LeakPJ = leakMWPerOoOCore * float64(s.C.Cores) * 1e-3 * (float64(t) / 1e12) * 1e12
	return b
}

// ReadState reads a word of a core's local state after the run.
func (s *System) ReadState(coreID int, addr uint32) uint32 {
	return s.cluster.ReadLocal(coreID, addr)
}

// Layout returns the input layout.
func (s *System) Layout() layout.Layout { return s.lay }
