package multicore

import (
	"testing"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/kernels"
	"repro/internal/layout"
	"repro/internal/workloads"
)

func launchFor(t *testing.T, b *workloads.Benchmark, c Config, records int) (core.Launch, layout.Layout, kernels.StateLayout, [][]uint32) {
	t.Helper()
	streams := b.Streams(c.Threads(), records, 42)
	lay := layout.Layout{
		RowBytes: c.DRAM.RowBytes, Corelets: c.Cores, Contexts: c.SMT,
		Interleave: layout.Split, StreamWords: b.StreamWords(records),
	}
	if err := lay.Validate(); err != nil {
		t.Fatal(err)
	}
	sl, err := kernels.LocalState(b.K, c.LocalBytes, c.SMT)
	if err != nil {
		t.Fatal(err)
	}
	args := kernels.ArgsAndConsts(b.K, lay.Walk(), sl, records)
	return core.Launch{Prog: b.K.Prog, Interleave: layout.Split, Streams: streams, Args: args}, lay, sl, streams
}

func TestAllBenchmarksOnMulticore(t *testing.T) {
	c := DefaultConfig()
	for _, b := range workloads.All() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			records := 16
			l, lay, sl, streams := launchFor(t, b, c, records)
			s, err := New(c, energy.Default(), l)
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Run(0)
			if err != nil {
				t.Fatal(err)
			}
			got := workloads.ExtractStates(b, sl, lay, s.ReadState)
			want := b.GoldenStates(streams, records)
			for th := range want {
				for i := range want[th] {
					if got[th][i] != want[th][i] {
						t.Fatalf("%s: thread %d state[%d] = %#x, want %#x",
							b.Name(), th, i, got[th][i], want[th][i])
					}
				}
			}
			if res.Energy.TotalPJ() <= 0 || res.Cores.Instructions == 0 {
				t.Error("empty result")
			}
		})
	}
}

func TestSuperscalarIssuesFasterThanSingleIssue(t *testing.T) {
	b := workloads.VarianceBench()
	c := DefaultConfig()
	l, _, _, _ := launchFor(t, b, c, 256)
	s4, err := New(c, energy.Default(), l)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := s4.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	c1 := c
	c1.IssueWidth = 1
	s1, err := New(c1, energy.Default(), l)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := s1.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if r4.Time >= r1.Time {
		t.Errorf("4-wide (%d ps) not faster than 1-wide (%d ps)", r4.Time, r1.Time)
	}
}

func TestOffChipEnergyDominates(t *testing.T) {
	b := workloads.CountBench()
	c := DefaultConfig()
	l, _, _, _ := launchFor(t, b, c, 512)
	s, err := New(c, energy.Default(), l)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	// At 70 pJ/bit, the off-chip DRAM must be a large share for a
	// memory-bound benchmark.
	if res.Energy.DRAMPJ < res.Energy.CorePJ/4 {
		t.Errorf("off-chip DRAM energy %.0f implausibly small vs core %.0f",
			res.Energy.DRAMPJ, res.Energy.CorePJ)
	}
}

func TestValidation(t *testing.T) {
	c := DefaultConfig()
	b := workloads.CountBench()
	l, _, _, _ := launchFor(t, b, c, 8)
	if _, err := New(c, energy.Default(), core.Launch{Streams: l.Streams, Interleave: layout.Split}); err == nil {
		t.Error("nil program accepted")
	}
	bad := l
	bad.Interleave = layout.Slab
	if _, err := New(c, energy.Default(), bad); err == nil {
		t.Error("non-Split layout accepted")
	}
	cb := c
	cb.Cores = 0
	if _, err := New(cb, energy.Default(), l); err == nil {
		t.Error("bad config accepted")
	}
}

func TestDefaultConfigValid(t *testing.T) {
	c := DefaultConfig()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Threads() != 32 {
		t.Errorf("threads = %d, want 32", c.Threads())
	}
	// Quarter bandwidth: 4 B/cycle at the same channel clock.
	if c.DRAM.ChannelBytes != 4 {
		t.Errorf("channel bytes = %d", c.DRAM.ChannelBytes)
	}
}
