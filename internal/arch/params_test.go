package arch

import "testing"

func TestDefaultValidates(t *testing.T) {
	p := Default()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Corelets != 32 || p.Contexts != 4 || p.Threads() != 128 {
		t.Errorf("geometry: %d x %d", p.Corelets, p.Contexts)
	}
	if p.ComputeHz != 700e6 || p.ChannelHz != 1.2e9 {
		t.Error("Table III clocks wrong")
	}
	// Table III memory budget: Millipede 4 KB local + 1 KB prefetch slice
	// = SSMC 5 KB L1D per core.
	if p.LocalBytes+p.PrefetchEntries*64 != p.SSMCL1Bytes {
		t.Errorf("on-die memory budgets differ: %d vs %d",
			p.LocalBytes+p.PrefetchEntries*64, p.SSMCL1Bytes)
	}
	// GPGPU SM: 32 KB L1D + 128 KB shared = 160 KB = 32 x 5 KB.
	if p.GPGPUL1Bytes+p.SharedMemBytes != p.Corelets*p.SSMCL1Bytes {
		t.Error("GPGPU SM memory budget differs from SSMC processor budget")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mod := func(f func(*Params)) Params {
		p := Default()
		f(&p)
		return p
	}
	bad := []Params{
		mod(func(p *Params) { p.Corelets = 0 }),
		mod(func(p *Params) { p.ComputeHz = 0 }),
		mod(func(p *Params) { p.LocalBytes = 0 }),
		mod(func(p *Params) { p.PrefetchEntries = 1 }),
		mod(func(p *Params) { p.MemQueueDepth = 0 }),
		mod(func(p *Params) { p.Corelets = 33 }),
		mod(func(p *Params) { p.DRAM.Banks = 0 }),
		mod(func(p *Params) { p.Channels = 0 }),
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestWithSize(t *testing.T) {
	p := Default().WithSize(64)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Corelets != 64 {
		t.Errorf("corelets = %d", p.Corelets)
	}
	if p.Channels != 2 {
		t.Errorf("channels = %d, want 2 (bandwidth doubled by channel count)", p.Channels)
	}
	if p.ChannelHz != 1.2e9 {
		t.Errorf("channel clock changed: %g", p.ChannelHz)
	}
	if p.SharedMemBytes != 2*131072 || p.GPGPUL1Bytes != 2*32768 {
		t.Error("SM memories not scaled with lane count")
	}
}

func TestWithSizeWidthScaled(t *testing.T) {
	p := Default().WithSizeWidthScaled(64)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Channels != 1 {
		t.Errorf("channels = %d, want 1", p.Channels)
	}
	if p.ChannelHz != 2.4e9 {
		t.Errorf("bandwidth not doubled: %g", p.ChannelHz)
	}
}
