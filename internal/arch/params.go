// Package arch holds the Table III hardware configuration shared by every
// PNM architecture model (Millipede, SSMC, GPGPU, VWS) plus the shared
// node-level plumbing: the two clock domains, the die-stacked DRAM channel,
// and the FR-FCFS memory controller. Keeping the configuration in one place
// enforces the paper's methodology: all architectures get the same number of
// cores, the same on-processor-die memory budget (160 KB per processor),
// the same pipeline latencies, and identical die-stacking.
package arch

import (
	"fmt"

	"repro/internal/corelet"
	"repro/internal/dram"
	"repro/internal/stack"
)

// Params is the Table III configuration.
type Params struct {
	// Processor geometry (identical across PNM architectures).
	Corelets int // corelets / lanes / cores per processor or SM: 32
	Contexts int // hardware multithreading contexts / warps: 4

	// Clocks.
	ComputeHz float64 // 700 MHz nominal
	ChannelHz float64 // 1.2 GHz

	// Per-corelet resources (Millipede).
	LocalBytes      int // 4 KB local memory
	PrefetchEntries int // 16 row entries
	FlowControl     bool
	RateMatch       bool

	// SSMC.
	SSMCL1Bytes int // 5 KB per core (matches Millipede's 4 KB + 1 KB slice)
	// SSMCLineBytes is the SSMC L1D line size. Table III lists 128 B, but
	// under the interleaved layout a corelet's per-row slab is 64 B, so a
	// 128 B line would double-fetch the neighbouring core's slab from the
	// private caches; the model uses layout-matched 64 B lines (see
	// DESIGN.md substitutions).
	SSMCLineBytes  int
	CacheLineBytes int // 128 B (GPGPU L1D, multicore hierarchy)
	CacheAssoc     int
	PrefetchDepth  int // sequential cache-block prefetch depth

	// GPGPU SM.
	GPGPUL1Bytes   int // 32 KB
	SharedMemBytes int // 128 KB
	VWSWarpWidth   int // 4 (Variable Warp Sizing picks 4-wide for BMLAs)

	// Memory system.
	DRAM          dram.Params
	Channels      int // simulated die-stack channels (row-interleaved): 1
	MemQueueDepth int // FR-FCFS depth per channel: 16

	// Pipeline latencies (identical simple in-order pipelines everywhere).
	Latencies corelet.Latencies

	// Parallelism is the host-side worker count for the barrier-batched
	// parallel cycle engine (0 or 1 = serial). It is a simulator-speed knob,
	// not a model parameter: results are bit-identical for every value.
	// Cluster-based models (Millipede, SSMC) shard their per-cycle corelet
	// sweep across the workers; the SIMT and multicore models always tick
	// serially.
	Parallelism int

	// NoSkip disables the engine's quiescence time skipping, forcing
	// edge-by-edge dispatch. Like Parallelism it is a simulator-speed knob,
	// not a model parameter: results are bit-identical either way, skipping
	// is only a wall-clock optimization (and on by default).
	NoSkip bool

	// Rate matching (Section IV-F).
	DFSStepPct         float64 // 0.05
	DFSIntervalCycles  int     // compute cycles between controller updates
	DFSMinHz, DFSMaxHz float64

	// Die-stacked capacity discipline (internal/stack): how the stack
	// relates to a larger, slower planar backing store when the dataset
	// outgrows it. The zero value is the paper's machine — the stack IS the
	// memory and the dataset is entirely stack-resident (strict
	// pass-through, bit-identical to a bare fabric).
	StackMode      string // "", "memory", "hwcache", "memcache"
	StackBytes     int    // stack capacity in bytes (row multiple); 0 = unbounded
	BackingBytes   int    // planar backing capacity; 0 = sized to the dataset
	BackingLatency int    // planar access latency in channel cycles; 0 = default
}

// Default returns the paper's Table III configuration.
func Default() Params {
	return Params{
		Corelets:          32,
		Contexts:          4,
		ComputeHz:         700e6,
		ChannelHz:         1.2e9,
		LocalBytes:        4096,
		PrefetchEntries:   16,
		FlowControl:       true,
		RateMatch:         false,
		SSMCL1Bytes:       5120,
		SSMCLineBytes:     64,
		CacheLineBytes:    128,
		CacheAssoc:        4,
		PrefetchDepth:     2,
		GPGPUL1Bytes:      32768,
		SharedMemBytes:    131072,
		VWSWarpWidth:      4,
		DRAM:              dram.DefaultParams(),
		Channels:          1,
		MemQueueDepth:     16,
		Latencies:         corelet.DefaultLatencies(),
		DFSStepPct:        0.05,
		DFSIntervalCycles: 256,
		DFSMinHz:          175e6,
		DFSMaxHz:          700e6, // DFS cannot exceed nominal at fixed voltage
	}
}

// Validate checks internal consistency.
func (p Params) Validate() error {
	switch {
	case p.Corelets <= 0 || p.Contexts <= 0:
		return fmt.Errorf("arch: bad geometry %dx%d", p.Corelets, p.Contexts)
	case p.ComputeHz <= 0 || p.ChannelHz <= 0:
		return fmt.Errorf("arch: bad clocks")
	case p.LocalBytes <= 0 || p.SSMCL1Bytes <= 0 || p.GPGPUL1Bytes <= 0:
		return fmt.Errorf("arch: bad memory sizes")
	case p.PrefetchEntries < 2:
		return fmt.Errorf("arch: need >= 2 prefetch entries")
	case p.Channels <= 0:
		return fmt.Errorf("arch: bad channel count %d", p.Channels)
	case p.MemQueueDepth <= 0:
		return fmt.Errorf("arch: bad memory queue depth")
	case p.SSMCLineBytes <= 0 || p.CacheLineBytes <= 0:
		return fmt.Errorf("arch: bad cache line sizes")
	case p.Parallelism < 0:
		return fmt.Errorf("arch: bad parallelism %d", p.Parallelism)
	case p.DRAM.RowBytes/4%p.Corelets != 0:
		return fmt.Errorf("arch: row words %d not divisible by %d corelets", p.DRAM.RowBytes/4, p.Corelets)
	}
	if _, err := stack.ParseMode(p.StackMode); err != nil {
		return err
	}
	switch {
	case p.StackBytes < 0 || p.BackingBytes < 0 || p.BackingLatency < 0:
		return fmt.Errorf("arch: negative stack/backing sizing (stack %d B, backing %d B, latency %d)",
			p.StackBytes, p.BackingBytes, p.BackingLatency)
	case p.StackBytes > 0 && p.StackBytes%p.DRAM.RowBytes != 0:
		return fmt.Errorf("arch: stack bytes %d not a multiple of the %d B DRAM row",
			p.StackBytes, p.DRAM.RowBytes)
	case (p.StackMode == string(stack.ModeHWCache) || p.StackMode == string(stack.ModeMemCache)) && p.StackBytes == 0:
		return fmt.Errorf("arch: stack mode %q needs StackBytes > 0 (cache capacity)", p.StackMode)
	}
	return p.DRAM.Validate()
}

// Threads returns hardware threads per processor.
func (p Params) Threads() int { return p.Corelets * p.Contexts }

// WithSize returns a copy scaled to n corelets per processor with
// proportionally scaled memory bandwidth, as in the paper's system-size
// sensitivity study (Figure 6: 32 -> 64 cores, 2x bandwidth). Bandwidth
// scales the way a die-stacked part's does — by engaging more channels —
// so a 64-lane system gets 2 row-interleaved channels, each with Table III
// timing. corelets must be a multiple of 32.
func (p Params) WithSize(corelets int) Params {
	q := p
	q.Corelets = corelets
	scale := float64(corelets) / 32.0
	q.Channels = p.Channels * corelets / 32
	// Per-lane on-die memory budgets are held constant, so SM-wide
	// structures scale with the lane count.
	q.SharedMemBytes = int(float64(p.SharedMemBytes) * scale)
	q.GPGPUL1Bytes = int(float64(p.GPGPUL1Bytes) * scale)
	return q
}

// WithSizeWidthScaled is the pre-fabric scaling model, kept as a printed
// cross-check in Figure 6: instead of adding channels it doubles the single
// channel's clock, an idealization with no extra bank-level parallelism and
// no interleave effects.
func (p Params) WithSizeWidthScaled(corelets int) Params {
	q := p
	q.Corelets = corelets
	scale := float64(corelets) / 32.0
	q.ChannelHz = p.ChannelHz * scale
	q.SharedMemBytes = int(float64(p.SharedMemBytes) * scale)
	q.GPGPUL1Bytes = int(float64(p.GPGPUL1Bytes) * scale)
	return q
}
