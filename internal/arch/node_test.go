package arch

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
)

type fakeUnit struct {
	ticks  int
	target int
}

func (u *fakeUnit) Tick(sim.Time) { u.ticks++ }
func (u *fakeUnit) Halted() bool  { return u.ticks >= u.target }

func TestNodeLifecycle(t *testing.T) {
	n, err := NewNode(Default(), 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Run(0); err == nil {
		t.Error("Run without compute unit accepted")
	}
	u := &fakeUnit{target: 100}
	if err := n.AttachCompute(u); err != nil {
		t.Fatal(err)
	}
	if err := n.AttachCompute(u); err == nil {
		t.Error("double attach accepted")
	}
	now, err := n.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if u.ticks != 100 || now <= 0 {
		t.Errorf("ticks=%d now=%d", u.ticks, now)
	}
}

func TestNewNodeRejectsBadParams(t *testing.T) {
	p := Default()
	p.Corelets = 0
	if _, err := NewNode(p, 1024); err == nil {
		t.Error("bad params accepted")
	}
	p = Default()
	if _, err := NewNode(p, -1); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestRunTimeLimitDefault(t *testing.T) {
	n, _ := NewNode(Default(), 1024)
	u := &fakeUnit{target: 1 << 30} // never halts within limit
	_ = n.AttachCompute(u)
	if _, err := n.Run(100 * sim.Nanosecond); err == nil {
		t.Error("time limit not enforced")
	}
}

func TestNodeMemPort(t *testing.T) {
	n, _ := NewNode(Default(), 1<<16)
	done := false
	ok := n.Mem.Enqueue(mem.Request{Addr: 0, Bytes: 64,
		Done: func(int64, bool) { done = true }})
	if !ok {
		t.Fatal("enqueue rejected on empty queue")
	}
	for i := 0; i < 200 && !done; i++ {
		n.Mem.Tick()
	}
	if !done {
		t.Error("fetch never completed")
	}
	// Nil callback must not panic.
	n.Mem.Enqueue(mem.Request{Addr: 128, Bytes: 64})
	for i := 0; i < 200; i++ {
		n.Mem.Tick()
	}
	if !n.Mem.Idle() {
		t.Error("port not idle after drain")
	}
	// Jitter injection plumbs through.
	n.InjectMemoryJitter(50, 3)
	delayed := false
	n.Mem.Enqueue(mem.Request{Addr: 4096, Bytes: 64,
		Done: func(int64, bool) { delayed = true }})
	for i := 0; i < 500 && !delayed; i++ {
		n.Mem.Tick()
	}
	if !delayed {
		t.Error("jittered fetch never completed")
	}
}

func TestNodeMultiChannel(t *testing.T) {
	p := Default()
	p.Channels = 2
	n, err := NewNode(p, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if n.Mem.Channels() != 2 {
		t.Fatalf("channels = %d", n.Mem.Channels())
	}
	// Consecutive rows land on alternating channels.
	rb := uint32(p.DRAM.RowBytes)
	if ch, _ := n.Mem.Route(0); ch != 0 {
		t.Errorf("row 0 on channel %d", ch)
	}
	if ch, _ := n.Mem.Route(rb); ch != 1 {
		t.Errorf("row 1 on channel %d", ch)
	}
	done := 0
	for i := 0; i < 4; i++ {
		ok := n.Mem.Enqueue(mem.Request{Addr: uint32(i) * rb, Bytes: 64,
			Done: func(int64, bool) { done++ }})
		if !ok {
			t.Fatalf("enqueue %d rejected", i)
		}
	}
	for i := 0; i < 500 && done < 4; i++ {
		n.Mem.Tick()
	}
	if done != 4 {
		t.Errorf("completions = %d, want 4", done)
	}
}
