package arch

import (
	"testing"

	"repro/internal/sim"
)

type fakeUnit struct {
	ticks  int
	target int
}

func (u *fakeUnit) Tick(sim.Time) { u.ticks++ }
func (u *fakeUnit) Halted() bool  { return u.ticks >= u.target }

func TestNodeLifecycle(t *testing.T) {
	n, err := NewNode(Default(), 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Run(0); err == nil {
		t.Error("Run without compute unit accepted")
	}
	u := &fakeUnit{target: 100}
	if err := n.AttachCompute(u); err != nil {
		t.Fatal(err)
	}
	if err := n.AttachCompute(u); err == nil {
		t.Error("double attach accepted")
	}
	now, err := n.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if u.ticks != 100 || now <= 0 {
		t.Errorf("ticks=%d now=%d", u.ticks, now)
	}
}

func TestNewNodeRejectsBadParams(t *testing.T) {
	p := Default()
	p.Corelets = 0
	if _, err := NewNode(p, 1024); err == nil {
		t.Error("bad params accepted")
	}
	p = Default()
	if _, err := NewNode(p, -1); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestRunTimeLimitDefault(t *testing.T) {
	n, _ := NewNode(Default(), 1024)
	u := &fakeUnit{target: 1 << 30} // never halts within limit
	_ = n.AttachCompute(u)
	if _, err := n.Run(100 * sim.Nanosecond); err == nil {
		t.Error("time limit not enforced")
	}
}

func TestMemBacking(t *testing.T) {
	n, _ := NewNode(Default(), 1<<16)
	mb := MemBacking{Ctl: n.Ctl}
	done := false
	if !mb.Fetch(0, 64, func() { done = true }) {
		t.Fatal("fetch rejected on empty queue")
	}
	for i := 0; i < 200 && !done; i++ {
		n.Ctl.Tick()
	}
	if !done {
		t.Error("fetch never completed")
	}
	// Nil callback must not panic.
	mb.Fetch(128, 64, nil)
	for i := 0; i < 200; i++ {
		n.Ctl.Tick()
	}
	// Jitter injection plumbs through.
	n.InjectMemoryJitter(50, 3)
	delayed := false
	mb.Fetch(4096, 64, func() { delayed = true })
	for i := 0; i < 500 && !delayed; i++ {
		n.Ctl.Tick()
	}
	if !delayed {
		t.Error("jittered fetch never completed")
	}
}
