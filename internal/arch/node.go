package arch

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/sim"
)

// ComputeUnit is a processor model driven at the compute clock.
type ComputeUnit interface {
	Tick(now sim.Time)
	Halted() bool
}

// Node is one PNM node: the two clock domains, the die-stacked DRAM channel
// and its FR-FCFS controller. Every architecture model builds on it.
type Node struct {
	Params  Params
	Engine  *sim.Engine
	DRAM    *dram.DRAM
	Ctl     *memctrl.Controller
	Compute *sim.Domain
	Mem     *sim.Domain
	unit    ComputeUnit
}

// NewNode builds the memory side; AttachCompute must be called before Run.
func NewNode(p Params, capacityBytes int) (*Node, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	d, err := dram.New(p.DRAM, capacityBytes)
	if err != nil {
		return nil, err
	}
	ctl, err := memctrl.New(d, p.MemQueueDepth)
	if err != nil {
		return nil, err
	}
	n := &Node{Params: p, Engine: sim.NewEngine(), DRAM: d, Ctl: ctl}
	n.Mem, err = n.Engine.AddDomain("mem", sim.PeriodFromHz(p.ChannelHz),
		sim.TickFunc(func(sim.Time) { ctl.Tick() }))
	if err != nil {
		return nil, err
	}
	return n, nil
}

// InjectMemoryJitter enables deterministic DRAM completion jitter of up to
// max channel cycles (fault injection for robustness tests).
func (n *Node) InjectMemoryJitter(max int64, seed uint64) { n.Ctl.SetJitter(max, seed) }

// AttachCompute registers the processor on the compute clock.
func (n *Node) AttachCompute(unit ComputeUnit) error {
	if n.unit != nil {
		return fmt.Errorf("arch: compute unit already attached")
	}
	var err error
	n.Compute, err = n.Engine.AddDomain("compute", sim.PeriodFromHz(n.Params.ComputeHz), unit)
	if err != nil {
		return err
	}
	n.unit = unit
	return nil
}

// Run advances the simulation until the compute unit halts. The limit
// guards against kernel deadlocks in development; pass 0 for the default
// (10 simulated seconds).
func (n *Node) Run(limit sim.Time) (sim.Time, error) {
	if n.unit == nil {
		return 0, fmt.Errorf("arch: no compute unit attached")
	}
	if limit == 0 {
		limit = 10 * sim.Second
	}
	return n.Engine.Run(limit, n.unit.Halted)
}

// MemBacking adapts the FR-FCFS controller to the fetch interfaces used by
// caches (cache.Backing) and the prefetch buffer (prefetch.FetchFunc).
type MemBacking struct{ Ctl *memctrl.Controller }

// Fetch implements cache.Backing.
func (m MemBacking) Fetch(addr uint32, bytes int, done func()) bool {
	return m.Ctl.Enqueue(memctrl.Request{Addr: addr, Bytes: bytes, Done: func(int64, bool) {
		if done != nil {
			done()
		}
	}})
}
