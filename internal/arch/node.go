package arch

import (
	"fmt"
	"runtime"

	"repro/internal/dram"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stack"
)

// ComputeUnit is a processor model driven at the compute clock.
type ComputeUnit interface {
	Tick(now sim.Time)
	Halted() bool
}

// Node is one PNM node: the two clock domains and the die-stacked memory
// system (N row-interleaved channels, each an FR-FCFS controller over its
// own bank set). Every architecture model builds on it and reaches memory
// only through Mem's Port interface; DRAM is the functional word store
// behind the fabric.
type Node struct {
	Params Params
	Engine *sim.Engine
	Mem    *mem.System
	DRAM   *dram.DRAM // functional backing store (Mem.Store())
	// Port is the memory system as processor-side clients must see it. In
	// the paper's machine (the default) it is Mem itself; when Params selects
	// a die-stacked capacity discipline it is the internal/stack backend
	// wrapping Mem, and Stack is non-nil.
	Port      mem.Port
	Stack     stack.Backend
	Compute   *sim.Domain
	MemDomain *sim.Domain
	// Pool is the worker set of the barrier-batched parallel cycle engine,
	// non-nil when Params.Parallelism > 1. Processor models shard their
	// per-cycle sweep across it (corelet.Cluster.SetWorkers); the memory
	// fabric shards its multi-channel harvest. Run closes it on return,
	// after which any further ticks fall back to inline execution with
	// identical results.
	Pool *sim.Pool
	// RunAllocs and RunBytes are the heap allocations (count and bytes, from
	// runtime.MemStats, all goroutines) made inside the last Run's cycle
	// loop. The interpreter is designed to allocate nothing in steady state;
	// benchreport records these per run so a regression is visible in the
	// benchmark trajectory.
	RunAllocs uint64
	RunBytes  uint64
	// RunSkippedEdges and RunSkipWindows report how much of the last Run the
	// quiescence fast-forward elided (informational only: tick totals and
	// results are bit-identical with skipping on or off).
	RunSkippedEdges uint64
	RunSkipWindows  uint64
	unit            ComputeUnit
}

// NewNode builds the memory side; AttachCompute must be called before Run.
func NewNode(p Params, capacityBytes int) (*Node, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m, err := mem.New(p.DRAM, p.Channels, p.MemQueueDepth, capacityBytes)
	if err != nil {
		return nil, err
	}
	n := &Node{Params: p, Engine: sim.NewEngine(), Mem: m, DRAM: m.Store(), Port: m}
	n.Engine.SetSkip(!p.NoSkip)
	if p.Parallelism > 1 {
		n.Pool = sim.NewPool(p.Parallelism)
		m.SetWorkers(n.Pool)
	}
	// A capacity discipline wraps the fabric only when it changes behavior:
	// hwcache/memcache always do; memory mode only once the dataset spills
	// past the stack. The pass-through path below is byte-for-byte today's
	// machine — same objects, same ticker — so the paper's results stay
	// bit-identical by construction.
	mode, err := stack.ParseMode(p.StackMode)
	if err != nil {
		return nil, err
	}
	if mode != stack.ModeMemory || (p.StackBytes > 0 && p.StackBytes < capacityBytes) {
		if p.BackingBytes > 0 && p.BackingBytes < capacityBytes {
			return nil, fmt.Errorf("arch: dataset needs %d B but planar backing is %d B", capacityBytes, p.BackingBytes)
		}
		cfg := stack.Config{
			StackBytes: p.StackBytes,
			LineBytes:  p.DRAM.RowBytes,
			PageBytes:  p.DRAM.RowBytes,
			Backing: stack.BackingParams{
				LatencyCycles: p.BackingLatency,
				CapacityBytes: p.BackingBytes,
			},
		}
		n.Stack, err = stack.New(mode, cfg, m)
		if err != nil {
			return nil, err
		}
		n.Port = n.Stack
	}
	// The memory clock registers through a quiescence-aware ticker so the
	// engine sees the fabric's probes (a bare TickFunc would opt the domain
	// out of time skipping). The stack backend, when present, ticks the
	// fabric from inside its own Tick.
	if n.Stack != nil {
		st := &stack.Ticker{B: n.Stack}
		n.MemDomain, err = n.Engine.AddDomain("mem", sim.PeriodFromHz(p.ChannelHz), st)
		if err != nil {
			return nil, err
		}
		st.Domain = n.MemDomain
		return n, nil
	}
	mt := &mem.Ticker{Sys: m}
	n.MemDomain, err = n.Engine.AddDomain("mem", sim.PeriodFromHz(p.ChannelHz), mt)
	if err != nil {
		return nil, err
	}
	mt.Domain = n.MemDomain
	return n, nil
}

// InjectMemoryJitter enables deterministic DRAM completion jitter of up to
// max channel cycles on every channel (fault injection for robustness
// tests).
func (n *Node) InjectMemoryJitter(max int64, seed uint64) { n.Mem.SetJitter(max, seed) }

// AttachCompute registers the processor on the compute clock.
func (n *Node) AttachCompute(unit ComputeUnit) error {
	if n.unit != nil {
		return fmt.Errorf("arch: compute unit already attached")
	}
	var err error
	n.Compute, err = n.Engine.AddDomain("compute", sim.PeriodFromHz(n.Params.ComputeHz), unit)
	if err != nil {
		return err
	}
	n.unit = unit
	return nil
}

// Run advances the simulation until the compute unit halts. The limit
// guards against kernel deadlocks in development; pass 0 for the default
// (10 simulated seconds).
func (n *Node) Run(limit sim.Time) (sim.Time, error) {
	if n.unit == nil {
		return 0, fmt.Errorf("arch: no compute unit attached")
	}
	if limit == 0 {
		limit = 10 * sim.Second
	}
	if n.Pool != nil {
		// Release the workers when the run ends; post-Close ticks (e.g. a
		// host-side drain) execute inline with identical results.
		defer n.Pool.Close()
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m0, b0 := ms.Mallocs, ms.TotalAlloc
	t, err := n.Engine.Run(limit, n.unit.Halted)
	runtime.ReadMemStats(&ms)
	n.RunAllocs, n.RunBytes = ms.Mallocs-m0, ms.TotalAlloc-b0
	n.RunSkippedEdges, n.RunSkipWindows = n.Engine.SkippedEdges(), n.Engine.SkipWindows()
	return t, err
}
