package arch

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/mem"
	"repro/internal/sim"
)

// ComputeUnit is a processor model driven at the compute clock.
type ComputeUnit interface {
	Tick(now sim.Time)
	Halted() bool
}

// Node is one PNM node: the two clock domains and the die-stacked memory
// system (N row-interleaved channels, each an FR-FCFS controller over its
// own bank set). Every architecture model builds on it and reaches memory
// only through Mem's Port interface; DRAM is the functional word store
// behind the fabric.
type Node struct {
	Params    Params
	Engine    *sim.Engine
	Mem       *mem.System
	DRAM      *dram.DRAM // functional backing store (Mem.Store())
	Compute   *sim.Domain
	MemDomain *sim.Domain
	unit      ComputeUnit
}

// NewNode builds the memory side; AttachCompute must be called before Run.
func NewNode(p Params, capacityBytes int) (*Node, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m, err := mem.New(p.DRAM, p.Channels, p.MemQueueDepth, capacityBytes)
	if err != nil {
		return nil, err
	}
	n := &Node{Params: p, Engine: sim.NewEngine(), Mem: m, DRAM: m.Store()}
	n.MemDomain, err = n.Engine.AddDomain("mem", sim.PeriodFromHz(p.ChannelHz),
		sim.TickFunc(func(sim.Time) { m.Tick() }))
	if err != nil {
		return nil, err
	}
	return n, nil
}

// InjectMemoryJitter enables deterministic DRAM completion jitter of up to
// max channel cycles on every channel (fault injection for robustness
// tests).
func (n *Node) InjectMemoryJitter(max int64, seed uint64) { n.Mem.SetJitter(max, seed) }

// AttachCompute registers the processor on the compute clock.
func (n *Node) AttachCompute(unit ComputeUnit) error {
	if n.unit != nil {
		return fmt.Errorf("arch: compute unit already attached")
	}
	var err error
	n.Compute, err = n.Engine.AddDomain("compute", sim.PeriodFromHz(n.Params.ComputeHz), unit)
	if err != nil {
		return err
	}
	n.unit = unit
	return nil
}

// Run advances the simulation until the compute unit halts. The limit
// guards against kernel deadlocks in development; pass 0 for the default
// (10 simulated seconds).
func (n *Node) Run(limit sim.Time) (sim.Time, error) {
	if n.unit == nil {
		return 0, fmt.Errorf("arch: no compute unit attached")
	}
	if limit == 0 {
		limit = 10 * sim.Second
	}
	return n.Engine.Run(limit, n.unit.Halted)
}
