// Package sla registers the serving-layer SLA experiment: a measured
// response-time-vs-offered-load study of the millid cluster itself,
// following the SLA framing of "When to use 3D Die-Stacked Memory"
// (PAPERS.md) — except the system under test is our own serving layer
// rather than a memory system.
//
// The experiment assembles a complete in-process cluster — two worker nodes
// over the real experiment registry, one shared result store mounted behind
// each node's local LRU, and the consistent-hash router in front — wired
// together by an in-process HTTP transport (no sockets), then drives it
// closed-loop at increasing client concurrencies with a deterministic
// request mix. Each offered-load step reports sustained req/s, p50/p99
// submit-to-done latency (client-observed, plus the workers' jobs-histogram
// estimate), the per-tier cache hit rate, and how many simulations actually
// ran.
//
// Importing this package (cmd/milliexp does, blank) registers the "sla"
// experiment; it is not part of the BENCH determinism surface — wall-clock
// latencies vary run to run, while the cache/sims columns are exact.
package sla

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/arch"
	"repro/internal/datagen"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/rescache"
	"repro/internal/router"
	"repro/internal/server"
)

func init() {
	harness.Register(harness.ExperimentInfo{
		Name:        "sla",
		Description: "serving-layer SLA vs offered load (in-process cluster: router + 2 workers + shared store)",
		Uses:        []string{"scale"},
	}, run)
}

// Study shape: closed-loop client concurrency per step, requests per step,
// and the distinct request variants (the cache working set).
var (
	concurrencies = []int{1, 4, 8}
	requestsPer   = 24
	variants      = 3
)

const (
	nodeA     = "http://sla-node-a"
	nodeB     = "http://sla-node-b"
	routerURL = "http://sla-router"
)

func run(ctx context.Context, p arch.Params, o harness.ExpOptions) (harness.ExperimentResult, error) {
	store := rescache.NewStore(0, 0)
	mk := func() *server.Server {
		return server.New(p, server.Options{Workers: 2, QueueCapacity: 64, Shared: store})
	}
	srvA, srvB := mk(), mk()
	tr := &inprocTransport{handlers: map[string]http.Handler{nodeA: srvA, nodeB: srvB}}
	rt := router.New(router.Options{
		Nodes:          []string{nodeA, nodeB},
		Base:           p,
		Transport:      tr,
		HealthInterval: time.Minute, // nodes start healthy and never fail in-process
		RetryBackoff:   time.Millisecond,
	})
	tr.handlers[routerURL] = rt
	client := &http.Client{Transport: tr}
	defer func() {
		rt.Close()
		dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srvA.Drain(dctx)
		srvB.Drain(dctx)
	}()

	fig := &harness.Figure{
		Name: fmt.Sprintf("Serving SLA vs offered load (router + 2 workers + shared store, %d reqs/step, %d variants)", requestsPer, variants),
		Series: []string{"clients", "achieved_rps", "p50_ms", "p99_ms",
			"hist_p99_ms", "hit_rate", "shared_frac", "sims"},
	}
	// The request mix: `variants` distinct tiny jobs; the PRNG sequence (and
	// therefore every request body) is deterministic per step.
	scaleOf := func(v int) float64 { return 0.02 * float64(v+1) * o.Scale }
	for step, clients := range concurrencies {
		if err := ctx.Err(); err != nil {
			return harness.ExperimentResult{}, err
		}
		row, err := loadStep(client, srvA, srvB, clients, datagen.NewRNG(harness.Seed+uint64(step)), scaleOf)
		if err != nil {
			return harness.ExperimentResult{}, err
		}
		fig.Rows = append(fig.Rows, row)
	}
	text := "SLA study: each row offers " + fmt.Sprint(requestsPer) + " jobs from that many closed-loop clients\n" +
		"through the consistent-hash router; identical requests land on one node, so the\n" +
		"cluster simulates each variant once and serves the rest from the local LRU or\n" +
		"the shared store tier (hit_rate counts both, shared_frac is the store's share).\n" +
		"p50/p99 are client submit-to-done; hist_p99 is the workers' jobs-histogram\n" +
		"upper-edge estimate (wait+run, power-of-two-ms buckets).\n"
	return harness.ExperimentResult{Figures: []*harness.Figure{fig}, Text: text}, nil
}

// loadStep runs one closed-loop offered-load step and returns its SLA row.
func loadStep(client *http.Client, srvA, srvB *server.Server, clients int, rng *datagen.RNG, scaleOf func(int) float64) (harness.Row, error) {
	before := sum(srvA.Metrics(), srvB.Metrics())

	// Pre-draw the variant sequence so the request mix does not depend on
	// goroutine interleaving.
	seq := make([]int, requestsPer)
	for i := range seq {
		seq[i] = rng.Intn(variants)
	}
	var (
		next      atomic.Int64
		mu        sync.Mutex
		latencies []float64
		firstErr  error
		wg        sync.WaitGroup
	)
	t0 := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(seq) {
					return
				}
				lat, err := oneRequest(client, scaleOf(seq[i]))
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				latencies = append(latencies, lat)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(t0).Seconds()
	if firstErr != nil {
		return harness.Row{}, firstErr
	}

	delta := metrics.Diff(sum(srvA.Metrics(), srvB.Metrics()), before)
	hits := delta.Value("server.cache_hits")
	shared := delta.Value("server.cache_shared_hits")
	misses := delta.Value("server.cache_misses")
	hitRate, sharedFrac := 0.0, 0.0
	if t := hits + shared + misses; t > 0 {
		hitRate = (hits + shared) / t
	}
	if hits+shared > 0 {
		sharedFrac = shared / (hits + shared)
	}
	waitH, _ := delta.Get("server.job_wait_ms")
	runH, _ := delta.Get("server.job_run_ms")

	sort.Float64s(latencies)
	return harness.Row{Bench: fmt.Sprintf("%dcli", clients), Values: map[string]float64{
		"clients":      float64(clients),
		"achieved_rps": float64(len(latencies)) / elapsed,
		"p50_ms":       percentile(latencies, 0.50),
		"p99_ms":       percentile(latencies, 0.99),
		"hist_p99_ms":  metrics.Pow2BucketPercentile(addBuckets(waitH.Buckets, runH.Buckets), 0.99),
		"hit_rate":     hitRate,
		"shared_frac":  sharedFrac,
		"sims":         delta.Value("server.sims_run"),
	}}, nil
}

// oneRequest submits one job through the router and follows it to a
// terminal state; returns submit-to-done latency in ms.
func oneRequest(client *http.Client, scale float64) (float64, error) {
	body := fmt.Sprintf(`{"experiment":"ablation","scale":%g}`, scale)
	t0 := time.Now()
	resp, err := client.Post(routerURL+"/v1/jobs", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		return 0, err
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return 0, fmt.Errorf("sla: POST /v1/jobs: %s: %s", resp.Status, data)
	}
	var sb struct {
		ID     string `json:"id"`
		Status string `json:"status"`
		Error  string `json:"error"`
	}
	if err := json.Unmarshal(data, &sb); err != nil {
		return 0, err
	}
	for sb.Status != "done" && sb.Status != "failed" {
		time.Sleep(2 * time.Millisecond)
		resp, err := client.Get(routerURL + "/v1/jobs/" + sb.ID)
		if err != nil {
			return 0, err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return 0, err
		}
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("sla: GET job %s: %s", sb.ID, resp.Status)
		}
		if err := json.Unmarshal(data, &sb); err != nil {
			return 0, err
		}
	}
	if sb.Status != "done" {
		return 0, fmt.Errorf("sla: job %s failed: %s", sb.ID, sb.Error)
	}
	return float64(time.Since(t0)) / float64(time.Millisecond), nil
}

// sum merges two node snapshots by adding samples of the same name.
func sum(a, b metrics.Snapshot) metrics.Snapshot {
	out := a
	for _, sm := range b.Samples {
		if prev, ok := out.Get(sm.Name); ok {
			merged := metrics.Sample{Name: sm.Name, Kind: sm.Kind}
			if sm.Kind == metrics.Histogram {
				merged.Buckets = addBuckets(prev.Buckets, sm.Buckets)
			} else {
				merged.Value = prev.Value + sm.Value
			}
			out.Put(merged)
		} else {
			out.Put(sm)
		}
	}
	return out
}

func addBuckets(a, b []uint64) []uint64 {
	n := max(len(a), len(b))
	out := make([]uint64, n)
	for i := range out {
		if i < len(a) {
			out[i] += a[i]
		}
		if i < len(b) {
			out[i] += b[i]
		}
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	i := int(q*float64(len(xs))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(xs) {
		i = len(xs) - 1
	}
	return xs[i]
}

// inprocTransport dispatches requests to in-process handlers by origin —
// the whole cluster lives in one address space, so the SLA study measures
// the serving layer itself rather than loopback socket costs.
type inprocTransport struct {
	handlers map[string]http.Handler
}

func (t *inprocTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	h, ok := t.handlers[req.URL.Scheme+"://"+req.URL.Host]
	if !ok {
		return nil, fmt.Errorf("sla: no in-process handler for %s://%s", req.URL.Scheme, req.URL.Host)
	}
	rec := &recorder{hdr: make(http.Header)}
	h.ServeHTTP(rec, req)
	code := rec.code
	if code == 0 {
		code = http.StatusOK
	}
	return &http.Response{
		StatusCode: code,
		Status:     fmt.Sprintf("%d %s", code, http.StatusText(code)),
		Proto:      "HTTP/1.1",
		ProtoMajor: 1,
		ProtoMinor: 1,
		Header:     rec.hdr,
		Body:       io.NopCloser(bytes.NewReader(rec.body.Bytes())),
		Request:    req,
	}, nil
}

// recorder is a minimal in-memory http.ResponseWriter.
type recorder struct {
	code int
	hdr  http.Header
	body bytes.Buffer
}

func (r *recorder) Header() http.Header { return r.hdr }

func (r *recorder) WriteHeader(code int) {
	if r.code == 0 {
		r.code = code
	}
}

func (r *recorder) Write(p []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.body.Write(p)
}
