package sla

import (
	"context"
	"testing"

	"repro/internal/arch"
	"repro/internal/harness"
)

// TestSLAExperimentSmoke: the registered "sla" experiment assembles the
// in-process cluster and produces one well-formed row per offered-load step,
// with the cluster-wide invariant intact — each distinct request variant
// simulated at most once across both nodes and all steps.
func TestSLAExperimentSmoke(t *testing.T) {
	// Shrink the study so the smoke test stays fast; the package-level shape
	// is what milliexp runs.
	oldC, oldR := concurrencies, requestsPer
	concurrencies, requestsPer = []int{1, 2}, 6
	defer func() { concurrencies, requestsPer = oldC, oldR }()

	res, err := harness.RunExperiment(context.Background(), "sla", arch.Default(), harness.ExpOptions{Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Figures) != 1 {
		t.Fatalf("got %d figures, want 1", len(res.Figures))
	}
	fig := res.Figures[0]
	if len(fig.Rows) != len(concurrencies) {
		t.Fatalf("got %d rows, want %d", len(fig.Rows), len(concurrencies))
	}
	var totalSims float64
	for _, row := range fig.Rows {
		if row.Values["achieved_rps"] <= 0 {
			t.Errorf("row %s: achieved_rps = %g, want > 0", row.Bench, row.Values["achieved_rps"])
		}
		if row.Values["p50_ms"] <= 0 || row.Values["p99_ms"] < row.Values["p50_ms"] {
			t.Errorf("row %s: p50=%g p99=%g, want 0 < p50 <= p99", row.Bench, row.Values["p50_ms"], row.Values["p99_ms"])
		}
		if hr := row.Values["hit_rate"]; hr < 0 || hr > 1 {
			t.Errorf("row %s: hit_rate = %g outside [0,1]", row.Bench, hr)
		}
		totalSims += row.Values["sims"]
	}
	if totalSims < 1 || totalSims > float64(variants) {
		t.Errorf("total sims = %g, want within [1, %d] (each variant computed at most once)", totalSims, variants)
	}
	// Later steps mostly replay the working set: the cache must be doing
	// real work by the last step (repeats of 6 requests over <= 3 variants).
	last := fig.Rows[len(fig.Rows)-1]
	if last.Values["hit_rate"] <= 0 {
		t.Errorf("last step: hit_rate = %g, want > 0 (repeated variants must hit)", last.Values["hit_rate"])
	}
}
