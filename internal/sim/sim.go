// Package sim provides the discrete, multi-clock-domain simulation engine
// underlying every architecture model in this repository.
//
// The engine is deliberately small: simulated time is an int64 count of
// picoseconds, and each clocked component (a processor, a memory system)
// registers a Domain whose Tick method is invoked at every rising edge of
// its clock. Domains may have different periods — the paper's compute clock
// runs at 700 MHz while the die-stacked DRAM channel runs at 1.2 GHz — and a
// domain's period may change while the simulation runs, which is how the
// dynamic-frequency-scaling rate-matching controller (Section IV-F of the
// paper) is modeled.
package sim

import (
	"errors"
	"fmt"
)

// Time is a simulated timestamp or duration in picoseconds.
type Time int64

// Common clock periods used throughout the models.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// PeriodFromHz returns the clock period, in picoseconds, of a clock running
// at the given frequency in hertz. The result is rounded to the nearest
// picosecond; periods outside [1 ps, 1 s] — frequencies below 1 Hz or so far
// above 1 THz that the period rounds to zero — are rejected by Engine when
// the domain is registered.
func PeriodFromHz(hz float64) Time {
	if hz <= 0 {
		return 0
	}
	return Time(float64(Second)/hz + 0.5)
}

// HzFromPeriod is the inverse of PeriodFromHz.
func HzFromPeriod(p Time) float64 {
	if p <= 0 {
		return 0
	}
	return float64(Second) / float64(p)
}

// Ticker is a clocked component. Tick is called once per rising edge of the
// component's clock with the current simulated time.
type Ticker interface {
	Tick(now Time)
}

// TickFunc adapts a plain function to the Ticker interface.
type TickFunc func(now Time)

// Tick implements Ticker.
func (f TickFunc) Tick(now Time) { f(now) }

// Domain is one clock domain registered with an Engine.
type Domain struct {
	name   string
	period Time
	next   Time
	ticker Ticker
	ticks  uint64
}

// Name returns the domain's registration name.
func (d *Domain) Name() string { return d.name }

// Period returns the domain's current clock period in picoseconds.
func (d *Domain) Period() Time { return d.period }

// Frequency returns the domain's current clock frequency in hertz.
func (d *Domain) Frequency() float64 { return HzFromPeriod(d.period) }

// Ticks returns the number of rising edges the domain has seen so far.
func (d *Domain) Ticks() uint64 { return d.ticks }

// SetPeriod changes the domain's clock period. The change takes effect for
// the edge after the next one already scheduled, mimicking a PLL that
// relocks between cycles. Periods outside [1 ps, 1 s] are rejected.
func (d *Domain) SetPeriod(p Time) error {
	if p <= 0 {
		return fmt.Errorf("sim: domain %q: non-positive period %d", d.name, p)
	}
	if p > Second {
		return fmt.Errorf("sim: domain %q: period %d ps exceeds 1 s (frequency below 1 Hz)", d.name, p)
	}
	d.period = p
	return nil
}

// Engine drives a set of clock domains in global-time order. It is not safe
// for concurrent use; architecture models are single-goroutine by design so
// that simulations are deterministic and replayable.
type Engine struct {
	domains []*Domain
	now     Time
	stopped bool
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Stop requests that Run return after the tick currently being dispatched.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// ErrBadDomain is returned when a domain registration is invalid.
var ErrBadDomain = errors.New("sim: invalid domain")

// AddDomain registers a new clock domain with the given name, period (ps),
// and component. The first edge fires at t = period (not at t = 0), so all
// components observe a defined reset state before their first tick.
func (e *Engine) AddDomain(name string, period Time, t Ticker) (*Domain, error) {
	if period <= 0 {
		return nil, fmt.Errorf("%w: %q has non-positive period %d", ErrBadDomain, name, period)
	}
	if period > Second {
		return nil, fmt.Errorf("%w: %q has period %d ps exceeding 1 s (frequency below 1 Hz)", ErrBadDomain, name, period)
	}
	if t == nil {
		return nil, fmt.Errorf("%w: %q has nil ticker", ErrBadDomain, name)
	}
	for _, d := range e.domains {
		if d.name == name {
			return nil, fmt.Errorf("%w: duplicate name %q", ErrBadDomain, name)
		}
	}
	d := &Domain{name: name, period: period, next: e.now + period, ticker: t}
	e.domains = append(e.domains, d)
	return d, nil
}

// step dispatches the earliest pending edge. With the handful of domains the
// models use, a linear scan beats a heap. Ties are broken by registration
// order, which keeps runs deterministic.
func (e *Engine) step() bool {
	if len(e.domains) == 0 || e.stopped {
		return false
	}
	min := e.domains[0]
	for _, d := range e.domains[1:] {
		if d.next < min.next {
			min = d
		}
	}
	e.now = min.next
	min.ticks++
	min.ticker.Tick(e.now)
	// Schedule the following edge using the (possibly just-changed) period.
	min.next = e.now + min.period
	return true
}

// Run advances the simulation until done returns true (checked after every
// dispatched edge), Stop is called, or the time limit is exceeded. It
// returns the final simulated time and an error if the limit was hit.
func (e *Engine) Run(limit Time, done func() bool) (Time, error) {
	if done == nil {
		done = func() bool { return false }
	}
	if len(e.domains) == 2 {
		return e.run2(limit, done)
	}
	for !done() && !e.stopped {
		if limit > 0 && e.now >= limit {
			return e.now, fmt.Errorf("sim: time limit %d ps exceeded at t=%d", limit, e.now)
		}
		if !e.step() {
			break
		}
	}
	return e.now, nil
}

// run2 is Run specialized for the ubiquitous two-domain (memory + compute)
// configuration: instead of re-scanning the domain slice per edge it picks
// between the two pointers directly. The tie-break is identical to step()'s
// scan — the first-registered domain wins on equal edge times — and no model
// registers domains mid-run, so hoisting the pair is safe.
func (e *Engine) run2(limit Time, done func() bool) (Time, error) {
	d0, d1 := e.domains[0], e.domains[1]
	for !done() && !e.stopped {
		if limit > 0 && e.now >= limit {
			return e.now, fmt.Errorf("sim: time limit %d ps exceeded at t=%d", limit, e.now)
		}
		min := d0
		if d1.next < d0.next {
			min = d1
		}
		e.now = min.next
		min.ticks++
		min.ticker.Tick(e.now)
		min.next = e.now + min.period
	}
	return e.now, nil
}

// RunTicks advances the simulation by exactly n dispatched edges (across all
// domains), mainly for tests.
func (e *Engine) RunTicks(n int) Time {
	for i := 0; i < n; i++ {
		if !e.step() {
			break
		}
	}
	return e.now
}
