// Package sim provides the discrete, multi-clock-domain simulation engine
// underlying every architecture model in this repository.
//
// The engine is deliberately small: simulated time is an int64 count of
// picoseconds, and each clocked component (a processor, a memory system)
// registers a Domain whose Tick method is invoked at every rising edge of
// its clock. Domains may have different periods — the paper's compute clock
// runs at 700 MHz while the die-stacked DRAM channel runs at 1.2 GHz — and a
// domain's period may change while the simulation runs, which is how the
// dynamic-frequency-scaling rate-matching controller (Section IV-F of the
// paper) is modeled.
package sim

import (
	"errors"
	"fmt"
)

// Time is a simulated timestamp or duration in picoseconds.
type Time int64

// Common clock periods used throughout the models.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// PeriodFromHz returns the clock period, in picoseconds, of a clock running
// at the given frequency in hertz. The result is rounded to the nearest
// picosecond; periods outside [1 ps, 1 s] — frequencies below 1 Hz or so far
// above 1 THz that the period rounds to zero — are rejected by Engine when
// the domain is registered.
func PeriodFromHz(hz float64) Time {
	if hz <= 0 {
		return 0
	}
	return Time(float64(Second)/hz + 0.5)
}

// HzFromPeriod is the inverse of PeriodFromHz.
func HzFromPeriod(p Time) float64 {
	if p <= 0 {
		return 0
	}
	return float64(Second) / float64(p)
}

// Ticker is a clocked component. Tick is called once per rising edge of the
// component's clock with the current simulated time.
type Ticker interface {
	Tick(now Time)
}

// Never is the NextWork sentinel meaning "no self-generated future work":
// the component cannot change state until some other domain's tick feeds it
// an event (an enqueue, a wake, a delayed callback).
const Never Time = Time(1<<63 - 1)

// NextWorker is the optional quiescence protocol a Ticker implements to let
// the engine fast-forward over dead edges.
//
// NextWork returns the earliest future simulated time at which the
// component's Tick could change observable state beyond pure per-tick
// bookkeeping (cycle counters, idle/stall tallies). Returning any time at or
// before the component's next scheduled edge means "busy — dispatch me
// normally"; returning Never means "idle until an external event wakes me".
// NextWork must not mutate state: the engine may call it on every iteration.
//
// SkipTicks(n) advances the component's per-tick bookkeeping exactly as n
// consecutive dead Tick calls would have — same counters, same totals — so an
// elided stretch of edges is observationally identical to a dispatched one.
// The engine only calls it for stretches NextWork declared dead, and never
// concurrently with Tick.
type NextWorker interface {
	Ticker
	NextWork(now Time) Time
	SkipTicks(n int64)
}

// TickFunc adapts a plain function to the Ticker interface.
type TickFunc func(now Time)

// Tick implements Ticker.
func (f TickFunc) Tick(now Time) { f(now) }

// Domain is one clock domain registered with an Engine.
type Domain struct {
	name   string
	period Time
	next   Time
	ticker Ticker
	nw     NextWorker // non-nil when ticker supports quiescence skipping
	ticks  uint64
	// busy caches a NextWork answer of "may work at my very next edge".
	// Work cannot vanish without the domain ticking (cross-domain effects
	// only add work), so the flag stays valid — and trySkip need not re-poll
	// the domain — until its next edge dispatches, which clears it.
	busy bool
}

// Name returns the domain's registration name.
func (d *Domain) Name() string { return d.name }

// Period returns the domain's current clock period in picoseconds.
func (d *Domain) Period() Time { return d.period }

// Frequency returns the domain's current clock frequency in hertz.
func (d *Domain) Frequency() float64 { return HzFromPeriod(d.period) }

// Ticks returns the number of rising edges the domain has seen so far.
func (d *Domain) Ticks() uint64 { return d.ticks }

// TimeOfTick returns the simulated time of the domain's i'th rising edge,
// for i > Ticks(): the next scheduled edge is tick Ticks()+1, and later
// edges follow at the current period. Components that reason about future
// work in their own cycle counts use it to translate a cycle index into the
// NextWork time contract. The translation assumes the period holds until
// tick i, which the quiescence protocol guarantees across a skip window:
// periods only change from work ticks (the DFS controller), and a window by
// definition contains none.
func (d *Domain) TimeOfTick(i uint64) Time {
	return d.next + Time(i-d.ticks-1)*d.period
}

// SetPeriod changes the domain's clock period. The change takes effect for
// the edge after the next one already scheduled, mimicking a PLL that
// relocks between cycles. Periods outside [1 ps, 1 s] are rejected.
func (d *Domain) SetPeriod(p Time) error {
	if p <= 0 {
		return fmt.Errorf("sim: domain %q: non-positive period %d", d.name, p)
	}
	if p > Second {
		return fmt.Errorf("sim: domain %q: period %d ps exceeds 1 s (frequency below 1 Hz)", d.name, p)
	}
	d.period = p
	return nil
}

// Engine drives a set of clock domains in global-time order. It is not safe
// for concurrent use; architecture models are single-goroutine by design so
// that simulations are deterministic and replayable.
type Engine struct {
	domains []*Domain
	now     Time
	stopped bool
	// Quiescence skipping (on by default): when every domain's ticker
	// implements NextWorker and reports no possible work before some future
	// edge, Run elides the intervening dead edges arithmetically instead of
	// dispatching them. Purely a wall-clock optimization — tick totals,
	// tie-breaks, and per-period phases are preserved exactly.
	skip         bool
	skippedEdges uint64
	skipWindows  uint64
	// probeOrder is the domains re-ordered for trySkip's busy probe, with
	// the domain last found busy kept at the front (move-to-front). Probe
	// order is invisible to results — the window is a min over every
	// domain — but probing the habitually busy domain first means a busy
	// engine pays one cheap NextWork call per edge, not one per domain.
	probeOrder []*Domain
	// probeRest / probeBackoff implement exponential probe backoff: each
	// failed full probe doubles the number of subsequent probe-eligible
	// edges that run without probing (capped), and any successful skip
	// resets it. Workloads with no quiescence windows thus pay ~zero probe
	// overhead, while windowed workloads are discovered at most
	// probeRestMax edges late — results are identical either way, only the
	// wall-clock win from skipping changes.
	probeRest    int32
	probeBackoff int32
}

// probeRestMax caps the probe backoff: a quiescence window is entered at
// most this many edges late after a long busy stretch.
const probeRestMax = 16

// NewEngine returns an empty engine at time zero with quiescence skipping
// enabled.
func NewEngine() *Engine { return &Engine{skip: true} }

// SetSkip enables or disables quiescence time skipping. Disabled, the engine
// dispatches every edge; results are bit-identical either way.
func (e *Engine) SetSkip(on bool) { e.skip = on }

// SkipEnabled reports whether quiescence skipping is enabled.
func (e *Engine) SkipEnabled() bool { return e.skip }

// SkippedEdges returns the number of edges elided by quiescence skipping.
func (e *Engine) SkippedEdges() uint64 { return e.skippedEdges }

// SkipWindows returns the number of quiescent windows fast-forwarded.
func (e *Engine) SkipWindows() uint64 { return e.skipWindows }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Stop requests that Run return after the tick currently being dispatched.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// ErrBadDomain is returned when a domain registration is invalid.
var ErrBadDomain = errors.New("sim: invalid domain")

// AddDomain registers a new clock domain with the given name, period (ps),
// and component. The first edge fires at t = period (not at t = 0), so all
// components observe a defined reset state before their first tick.
func (e *Engine) AddDomain(name string, period Time, t Ticker) (*Domain, error) {
	if period <= 0 {
		return nil, fmt.Errorf("%w: %q has non-positive period %d", ErrBadDomain, name, period)
	}
	if period > Second {
		return nil, fmt.Errorf("%w: %q has period %d ps exceeding 1 s (frequency below 1 Hz)", ErrBadDomain, name, period)
	}
	if t == nil {
		return nil, fmt.Errorf("%w: %q has nil ticker", ErrBadDomain, name)
	}
	for _, d := range e.domains {
		if d.name == name {
			return nil, fmt.Errorf("%w: duplicate name %q", ErrBadDomain, name)
		}
	}
	d := &Domain{name: name, period: period, next: e.now + period, ticker: t}
	if nw, ok := t.(NextWorker); ok {
		d.nw = nw
	}
	e.domains = append(e.domains, d)
	// Keep the probe order in sync here so trySkip never allocates inside
	// the cycle loop (the loop is asserted allocation-free).
	e.probeOrder = append(e.probeOrder, d)
	return d, nil
}

// step dispatches the earliest pending edge. With the handful of domains the
// models use, a linear scan beats a heap. Ties are broken by registration
// order, which keeps runs deterministic.
func (e *Engine) step() bool {
	if len(e.domains) == 0 || e.stopped {
		return false
	}
	min := e.domains[0]
	for _, d := range e.domains[1:] {
		if d.next < min.next {
			min = d
		}
	}
	e.now = min.next
	min.ticks++
	min.busy = false
	min.ticker.Tick(e.now)
	// Schedule the following edge using the (possibly just-changed) period.
	min.next = e.now + min.period
	return true
}

// elide arithmetically dispatches every edge of d strictly before cut:
// the tick count advances, the ticker replays its per-tick bookkeeping via
// SkipTicks, and the next scheduled edge lands on exactly the phase the
// edge-by-edge loop would have reached. Returns the number of elided edges.
func (e *Engine) elide(d *Domain, cut Time) uint64 {
	if d.next >= cut {
		return 0
	}
	k := uint64((cut - d.next + d.period - 1) / d.period)
	d.ticks += k
	d.next += Time(k) * d.period
	d.nw.SkipTicks(int64(k))
	return k
}

// trySkip performs one quiescence fast-forward when every domain is
// provably dead until some future edge: it elides all edges strictly before
// the earliest possible work edge, leaving that edge to be dispatched live
// by the normal loop (preserving the registration-order tie-break among
// same-time edges). Skip windows are clamped to the run's time limit: the
// edge-by-edge loop dispatches the first edge at or past the limit and then
// errors with now at that edge, so when that edge falls inside a window the
// fast-forward elides up to and including it — exactly one domain's edge,
// the scan's tie-break winner — sets now to it, and returns true so the
// caller's limit check fires at the identical instant. In all other cases
// it returns false and the caller dispatches the next edge normally.
func (e *Engine) trySkip(limit Time) bool {
	// Cached-busy pass first: while any domain is known busy at its next
	// edge no window can open, and not a single NextWork call is spent.
	for _, d := range e.domains {
		if d.busy {
			return false
		}
	}
	if len(e.probeOrder) != len(e.domains) {
		e.probeOrder = append(e.probeOrder[:0], e.domains...)
	}
	// Earliest edge at which any domain could change state.
	work := Never
	for i, d := range e.probeOrder {
		if d.nw == nil {
			return false // non-participating ticker: treat as always busy
		}
		nw := d.nw.NextWork(e.now)
		if nw <= d.next {
			d.busy = true
			if i > 0 {
				copy(e.probeOrder[1:i+1], e.probeOrder[:i])
				e.probeOrder[0] = d
			}
			return false // may work at its very next edge
		}
		if nw >= Never {
			continue
		}
		// First edge of d at or after nw.
		k := (nw - d.next + d.period - 1) / d.period
		if fw := d.next + k*d.period; fw < work {
			work = fw
		}
	}
	if work == Never && limit <= 0 {
		// Every domain is idle awaiting a wake that cannot come and there is
		// no limit to run into: mirror the edge-by-edge loop (which would
		// spin forever) rather than overflow the window arithmetic.
		return false
	}
	if limit > 0 && work > limit {
		// First edge at or past the limit, and its owning domain under
		// step()'s registration-order tie-break.
		var lim *Domain
		edge := Never
		for _, d := range e.domains {
			fe := d.next
			if fe < limit {
				k := (limit - d.next + d.period - 1) / d.period
				fe = d.next + k*d.period
			}
			if fe < edge {
				edge, lim = fe, d
			}
		}
		if edge < work {
			n := uint64(0)
			for _, d := range e.domains {
				n += e.elide(d, edge)
			}
			lim.ticks++
			lim.next += lim.period
			lim.nw.SkipTicks(1)
			e.now = edge
			e.skippedEdges += n + 1
			e.skipWindows++
			return true
		}
	}
	n := uint64(0)
	for _, d := range e.domains {
		n += e.elide(d, work)
	}
	if n > 0 {
		e.skippedEdges += n
		e.skipWindows++
	}
	return false
}

// Run advances the simulation until done returns true (checked after every
// dispatched edge), Stop is called, or the time limit is exceeded. It
// returns the final simulated time and an error if the limit was hit.
func (e *Engine) Run(limit Time, done func() bool) (Time, error) {
	if done == nil {
		done = func() bool { return false }
	}
	if len(e.domains) == 2 {
		return e.run2(limit, done)
	}
	for !done() && !e.stopped {
		if limit > 0 && e.now >= limit {
			return e.now, fmt.Errorf("sim: time limit %d ps exceeded at t=%d", limit, e.now)
		}
		if e.skip && e.trySkip(limit) {
			continue // fast-forwarded into the limit; the check above fires
		}
		if !e.step() {
			break
		}
	}
	return e.now, nil
}

// run2 is Run specialized for the ubiquitous two-domain (memory + compute)
// configuration: instead of re-scanning the domain slice per edge it picks
// between the two pointers directly. The tie-break is identical to step()'s
// scan — the first-registered domain wins on equal edge times — and no model
// registers domains mid-run, so hoisting the pair is safe.
func (e *Engine) run2(limit Time, done func() bool) (Time, error) {
	d0, d1 := e.domains[0], e.domains[1]
	skip := e.skip && d0.nw != nil && d1.nw != nil
	for !done() && !e.stopped {
		if limit > 0 && e.now >= limit {
			return e.now, fmt.Errorf("sim: time limit %d ps exceeded at t=%d", limit, e.now)
		}
		// Inline the cached-busy guard: while either domain is known busy
		// at its next edge no window can open, so the trySkip call (and
		// its slice walk) is pure per-edge overhead.
		if skip && !d0.busy && !d1.busy {
			if e.probeRest > 0 {
				e.probeRest--
			} else if e.trySkip(limit) {
				e.probeBackoff = 0
				continue
			} else {
				if e.probeBackoff < probeRestMax {
					e.probeBackoff = 2*e.probeBackoff + 1
				}
				e.probeRest = e.probeBackoff
			}
		}
		min := d0
		if d1.next < d0.next {
			min = d1
		}
		e.now = min.next
		min.ticks++
		min.busy = false
		min.ticker.Tick(e.now)
		min.next = e.now + min.period
	}
	return e.now, nil
}

// RunTicks advances the simulation by exactly n dispatched edges (across all
// domains), mainly for tests. It never skips: "n edges" means n Tick calls.
func (e *Engine) RunTicks(n int) Time {
	for i := 0; i < n; i++ {
		if !e.step() {
			break
		}
	}
	return e.now
}
