package sim

import "sync"

// Pool is a fixed set of workers for barrier-batched intra-cycle
// parallelism. A simulation's per-cycle work is split into Workers() shards;
// Run dispatches one function invocation per shard and returns only when
// every shard has finished, forming the batch barrier at which cross-shard
// effects are applied serially in canonical order.
//
// The pool is created once per simulation and reused every cycle: Run
// allocates nothing, so the steady-state cycle loop stays allocation-free.
// Shard 0 always executes on the calling goroutine; shards 1..n-1 run on
// dedicated goroutines that live until Close. After Close (or on a 1-worker
// pool, which spawns no goroutines), Run executes every shard inline on the
// caller — the shard schedule is position-based, so results are identical.
type Pool struct {
	n       int
	work    []chan func(int) // one channel per background worker (shard 1..n-1)
	wg      sync.WaitGroup
	closed  bool
	closeMu sync.Mutex
}

// NewPool returns a pool of n workers (n < 1 is treated as 1).
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{n: n}
	p.work = make([]chan func(int), n-1)
	for i := range p.work {
		ch := make(chan func(int))
		p.work[i] = ch
		shard := i + 1
		go func() {
			for f := range ch {
				f(shard)
				p.wg.Done()
			}
		}()
	}
	return p
}

// Workers returns the shard count Run dispatches.
func (p *Pool) Workers() int { return p.n }

// Run invokes f(shard) for every shard in [0, Workers()) and returns after
// all invocations complete. f must confine its writes to state owned by its
// shard; the return of Run is the barrier after which the caller may apply
// cross-shard effects. The same f value should be passed every cycle (e.g. a
// bound method) so the dispatch allocates nothing.
func (p *Pool) Run(f func(shard int)) {
	if p.closed || p.n == 1 {
		for s := 0; s < p.n; s++ {
			f(s)
		}
		return
	}
	p.wg.Add(p.n - 1)
	for _, ch := range p.work {
		ch <- f
	}
	f(0)
	p.wg.Wait()
}

// Close terminates the background workers. Subsequent Run calls execute all
// shards inline on the caller, which produces identical results. Close is
// idempotent and safe to call while no Run is in flight.
func (p *Pool) Close() {
	p.closeMu.Lock()
	defer p.closeMu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	for _, ch := range p.work {
		close(ch)
	}
}
