package sim

import (
	"testing"
	"testing/quick"
)

func TestPeriodFromHz(t *testing.T) {
	cases := []struct {
		hz   float64
		want Time
	}{
		{1e9, 1000},        // 1 GHz -> 1000 ps
		{700e6, 1429},      // 700 MHz -> 1428.57 ps rounded
		{1.2e9, 833},       // 1.2 GHz -> 833.33 ps rounded
		{3.6e9, 278},       // 3.6 GHz
		{0, 0},             // invalid
		{-5, 0},            // invalid
		{2e9, 500},         // 2 GHz
		{1, Time(Second)},  // 1 Hz
		{1e12, Picosecond}, // 1 THz
	}
	for _, c := range cases {
		if got := PeriodFromHz(c.hz); got != c.want {
			t.Errorf("PeriodFromHz(%v) = %d, want %d", c.hz, got, c.want)
		}
	}
}

func TestHzFromPeriodRoundTrip(t *testing.T) {
	f := func(raw uint16) bool {
		p := Time(raw%10000) + 1 // 1..10000 ps
		hz := HzFromPeriod(p)
		return PeriodFromHz(hz) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHzFromPeriodInvalid(t *testing.T) {
	if HzFromPeriod(0) != 0 || HzFromPeriod(-3) != 0 {
		t.Error("HzFromPeriod should return 0 for non-positive periods")
	}
}

func TestAddDomainValidation(t *testing.T) {
	e := NewEngine()
	tick := TickFunc(func(Time) {})
	if _, err := e.AddDomain("a", 0, tick); err == nil {
		t.Error("expected error for zero period")
	}
	if _, err := e.AddDomain("a", 100, nil); err == nil {
		t.Error("expected error for nil ticker")
	}
	if _, err := e.AddDomain("a", 100, tick); err != nil {
		t.Fatalf("valid AddDomain failed: %v", err)
	}
	if _, err := e.AddDomain("a", 200, tick); err == nil {
		t.Error("expected error for duplicate name")
	}
}

func TestSingleDomainTickTimes(t *testing.T) {
	e := NewEngine()
	var times []Time
	d, err := e.AddDomain("cpu", 1000, TickFunc(func(now Time) {
		times = append(times, now)
	}))
	if err != nil {
		t.Fatal(err)
	}
	e.RunTicks(4)
	want := []Time{1000, 2000, 3000, 4000}
	if len(times) != len(want) {
		t.Fatalf("got %d ticks, want %d", len(times), len(want))
	}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("tick %d at %d, want %d", i, times[i], want[i])
		}
	}
	if d.Ticks() != 4 {
		t.Errorf("Ticks() = %d, want 4", d.Ticks())
	}
}

func TestTwoDomainInterleaving(t *testing.T) {
	// A 1000 ps domain and a 400 ps domain must interleave in global time
	// order with ties broken by registration order.
	e := NewEngine()
	var order []string
	_, _ = e.AddDomain("slow", 1000, TickFunc(func(now Time) { order = append(order, "s") }))
	_, _ = e.AddDomain("fast", 400, TickFunc(func(now Time) { order = append(order, "f") }))
	e.RunTicks(7)
	// Edges: f@400, f@800, s@1000, f@1200, f@1600, s@2000, f@2000 -> s wins tie (registered first).
	want := "ffsffsf"
	got := ""
	for _, s := range order {
		got += s
	}
	if got != want {
		t.Errorf("interleaving = %q, want %q", got, want)
	}
}

func TestSetPeriodTakesEffect(t *testing.T) {
	e := NewEngine()
	var times []Time
	var d *Domain
	var err error
	d, err = e.AddDomain("cpu", 1000, TickFunc(func(now Time) {
		times = append(times, now)
		if len(times) == 2 {
			if err := d.SetPeriod(500); err != nil {
				t.Fatalf("SetPeriod: %v", err)
			}
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	e.RunTicks(4)
	want := []Time{1000, 2000, 2500, 3000}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("tick %d at %d, want %d (times=%v)", i, times[i], want[i], times)
		}
	}
}

func TestSetPeriodRejectsNonPositive(t *testing.T) {
	e := NewEngine()
	d, _ := e.AddDomain("cpu", 1000, TickFunc(func(Time) {}))
	if err := d.SetPeriod(0); err == nil {
		t.Error("expected error for zero period")
	}
	if err := d.SetPeriod(-1); err == nil {
		t.Error("expected error for negative period")
	}
	if d.Period() != 1000 {
		t.Errorf("period changed by invalid SetPeriod: %d", d.Period())
	}
}

func TestRunDoneAndStop(t *testing.T) {
	e := NewEngine()
	n := 0
	_, _ = e.AddDomain("cpu", 10, TickFunc(func(Time) { n++ }))
	if _, err := e.Run(0, func() bool { return n >= 5 }); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Errorf("ran %d ticks, want 5", n)
	}

	e2 := NewEngine()
	m := 0
	_, _ = e2.AddDomain("cpu", 10, TickFunc(func(Time) {
		m++
		if m == 3 {
			e2.Stop()
		}
	}))
	if _, err := e2.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	if m != 3 {
		t.Errorf("Stop did not halt run: %d ticks", m)
	}
	if !e2.Stopped() {
		t.Error("Stopped() = false after Stop")
	}
}

func TestRunTimeLimit(t *testing.T) {
	e := NewEngine()
	_, _ = e.AddDomain("cpu", 10, TickFunc(func(Time) {}))
	if _, err := e.Run(100, nil); err == nil {
		t.Error("expected time-limit error")
	}
	if e.Now() < 100 {
		t.Errorf("engine stopped early at %d", e.Now())
	}
}

func TestRunEmptyEngine(t *testing.T) {
	e := NewEngine()
	now, err := e.Run(0, nil)
	if err != nil || now != 0 {
		t.Errorf("empty engine Run = (%d, %v), want (0, nil)", now, err)
	}
}

// Property: for any pair of periods, edges are dispatched in non-decreasing
// global time and each domain ticks floor(T/period) times by time T.
func TestPropertyEdgeCounts(t *testing.T) {
	f := func(p1u, p2u uint8) bool {
		p1 := Time(p1u%97) + 3
		p2 := Time(p2u%89) + 5
		e := NewEngine()
		var last Time
		monotone := true
		check := func(now Time) {
			if now < last {
				monotone = false
			}
			last = now
		}
		d1, _ := e.AddDomain("a", p1, TickFunc(check))
		d2, _ := e.AddDomain("b", p2, TickFunc(check))
		horizon := Time(5000)
		for e.Now() < horizon {
			if e.RunTicks(1) == e.Now() && e.Now() == 0 {
				break
			}
		}
		// After crossing the horizon, each domain has ticked either
		// floor(now/p) or that ±1 depending on which edge crossed last.
		okCount := func(d *Domain, p Time) bool {
			exact := uint64(e.Now() / p)
			return d.Ticks() >= exact-1 && d.Ticks() <= exact+1
		}
		return monotone && okCount(d1, p1) && okCount(d2, p2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPeriodRangeEnforced checks the documented [1 ps, 1 s] period range:
// sub-1-Hz clocks (periods above one second) are rejected both at domain
// registration and on a later retune.
func TestPeriodRangeEnforced(t *testing.T) {
	e := NewEngine()
	tick := TickFunc(func(Time) {})
	if _, err := e.AddDomain("slow", Second+1, tick); err == nil {
		t.Error("AddDomain accepted a period above 1 s")
	}
	d, err := e.AddDomain("ok", Second, tick)
	if err != nil {
		t.Fatalf("AddDomain rejected a 1 s period: %v", err)
	}
	if err := d.SetPeriod(Second + 1); err == nil {
		t.Error("SetPeriod accepted a period above 1 s")
	}
	if err := d.SetPeriod(1); err != nil {
		t.Errorf("SetPeriod rejected a 1 ps period: %v", err)
	}
}

// TestPeriodFromHzRange spot-checks the conversion at the documented edges:
// frequencies below 1 Hz produce periods AddDomain rejects, and frequencies
// far above 1 THz round to a zero (rejected) period.
func TestPeriodFromHzRange(t *testing.T) {
	if p := PeriodFromHz(0.5); p <= Second {
		t.Errorf("PeriodFromHz(0.5) = %d, want > 1 s (rejected on registration)", p)
	}
	if p := PeriodFromHz(3e12); p != 0 {
		t.Errorf("PeriodFromHz(3e12) = %d, want 0 (rounds below 1 ps)", p)
	}
	if p := PeriodFromHz(1e9); p != Millisecond/1e6 {
		t.Errorf("PeriodFromHz(1 GHz) = %d ps, want 1000", p)
	}
}
