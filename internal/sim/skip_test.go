package sim

import (
	"fmt"
	"sort"
	"testing"
	"testing/quick"
)

// scripted is a NextWorker test double: it does "work" only at the tick
// indices listed in work (1-based, matching Domain.Ticks after the edge),
// tallies every other tick as dead bookkeeping, and optionally calls
// Engine.Stop at stopAt. Its NextWork answer is derived purely from the work
// script, so skip-on and skip-off runs must observe identical logs.
type scripted struct {
	d      *Domain
	eng    *Engine
	ticks  int64
	work   []int64 // sorted work-tick indices
	log    []int64 // work ticks actually dispatched
	dead   int64   // dead-tick bookkeeping tally
	stopAt int64   // 0 = never
}

func (s *scripted) isWork(i int64) bool {
	j := sort.Search(len(s.work), func(j int) bool { return s.work[j] >= i })
	return j < len(s.work) && s.work[j] == i
}

func (s *scripted) Tick(now Time) {
	s.ticks++
	if s.isWork(s.ticks) {
		s.log = append(s.log, s.ticks)
	} else {
		s.dead++
	}
	if s.stopAt != 0 && s.ticks == s.stopAt {
		s.eng.Stop()
	}
}

func (s *scripted) NextWork(now Time) Time {
	next := int64(0)
	for _, w := range s.work {
		if w > s.ticks {
			next = w
			break
		}
	}
	if s.stopAt > s.ticks && (next == 0 || s.stopAt < next) {
		next = s.stopAt // stopping is a state change
	}
	if next == 0 {
		return Never
	}
	return s.d.TimeOfTick(uint64(next))
}

func (s *scripted) SkipTicks(n int64) {
	s.ticks += n
	s.dead += n
}

// runScripted builds a two-domain engine from work scripts and runs it until
// both scripts are exhausted (or stopped), returning the scripted tickers.
func runScripted(t *testing.T, skip bool, p1, p2 Time, w1, w2 []int64, stop1 int64, limit Time) (*scripted, *scripted, Time, error) {
	t.Helper()
	e := NewEngine()
	e.SetSkip(skip)
	s1 := &scripted{eng: e, work: w1, stopAt: stop1}
	s2 := &scripted{eng: e, work: w2}
	var err error
	s1.d, err = e.AddDomain("a", p1, s1)
	if err != nil {
		t.Fatal(err)
	}
	s2.d, err = e.AddDomain("b", p2, s2)
	if err != nil {
		t.Fatal(err)
	}
	done := func() bool {
		// Empty scripts model "idle forever": run until Stop or the limit.
		return len(w1)+len(w2) > 0 && s1.stopAt == 0 &&
			len(s1.log) == len(w1) && len(s2.log) == len(w2)
	}
	now, rerr := e.Run(limit, done)
	return s1, s2, now, rerr
}

func sameOutcome(t *testing.T, name string, on, off *scripted) {
	t.Helper()
	if on.ticks != off.ticks || on.dead != off.dead {
		t.Errorf("%s: ticks/dead = %d/%d with skip, %d/%d without",
			name, on.ticks, on.dead, off.ticks, off.dead)
	}
	if fmt.Sprint(on.log) != fmt.Sprint(off.log) {
		t.Errorf("%s: work log %v with skip, %v without", name, on.log, off.log)
	}
	if on.d.Ticks() != off.d.Ticks() {
		t.Errorf("%s: domain ticks %d with skip, %d without", name, on.d.Ticks(), off.d.Ticks())
	}
}

// TestSkipCoprimePeriods drives two domains with coprime periods through
// sparse work scripts: the fast-forwarded run must replay exactly the
// edge-by-edge tick totals, dead-tick tallies, and work order, and must
// actually skip something.
func TestSkipCoprimePeriods(t *testing.T) {
	p1, p2 := Time(7), Time(11)
	w1 := []int64{1, 2, 300, 301, 900}
	w2 := []int64{5, 200, 571}
	a1, b1, now1, err1 := runScripted(t, true, p1, p2, w1, w2, 0, 0)
	a0, b0, now0, err0 := runScripted(t, false, p1, p2, w1, w2, 0, 0)
	if err1 != nil || err0 != nil {
		t.Fatalf("unexpected errors: %v, %v", err1, err0)
	}
	if now1 != now0 {
		t.Errorf("final time %d with skip, %d without", now1, now0)
	}
	sameOutcome(t, "a", a1, a0)
	sameOutcome(t, "b", b1, b0)
	if a1.eng.SkippedEdges() == 0 || a1.eng.SkipWindows() == 0 {
		t.Error("skip-enabled run elided nothing")
	}
	// The window math itself: after the run every domain's phase must be
	// exactly next = now + k*period from its last dispatched edge.
	for _, s := range []*scripted{a1, b1} {
		if got := s.d.TimeOfTick(s.d.Ticks() + 1); got != s.d.next {
			t.Errorf("TimeOfTick disagrees with schedule: %d vs %d", got, s.d.next)
		}
	}
}

// TestSkipStopMidWindow has domain a call Stop at a work tick that
// terminates a long quiescent stretch: the skip-enabled run must halt at the
// identical tick and time, having skipped the window but dispatched the
// stopping edge live.
func TestSkipStopMidWindow(t *testing.T) {
	p1, p2 := Time(13), Time(17)
	w1 := []int64{2, 500}
	w2 := []int64{3}
	a1, b1, now1, _ := runScripted(t, true, p1, p2, w1, w2, 500, 0)
	a0, b0, now0, _ := runScripted(t, false, p1, p2, w1, w2, 500, 0)
	if now1 != now0 {
		t.Errorf("stop time %d with skip, %d without", now1, now0)
	}
	if a1.ticks != 500 {
		t.Errorf("stopped at tick %d, want 500", a1.ticks)
	}
	if !a1.eng.Stopped() {
		t.Error("engine not stopped")
	}
	sameOutcome(t, "a", a1, a0)
	sameOutcome(t, "b", b1, b0)
	if a1.eng.SkippedEdges() == 0 {
		t.Error("expected the pre-stop window to be skipped")
	}
}

// TestSkipLimitExactError pins the regression the limit clamp exists for:
// when every domain goes quiescent forever under a time limit, the
// fast-forward must produce the identical error, at the identical time, as
// dispatching every dead edge — the limit-crossing edge itself is charged to
// the registration-order tie-break winner.
func TestSkipLimitExactError(t *testing.T) {
	// Periods 10 and 25, limit 100: edges at 10..90,100 (a) and 25,50,75,100
	// (b). The first edge at or past the limit is t=100, a tie between the
	// domains that domain a wins by registration order; the loop then errors
	// with now=100, having dispatched a's tenth edge but never b's fourth.
	const wantErr = "sim: time limit 100 ps exceeded at t=100"
	for _, skip := range []bool{true, false} {
		a, b, now, err := runScripted(t, skip, 10, 25, nil, nil, 0, 100)
		if err == nil || err.Error() != wantErr {
			t.Fatalf("skip=%v: error %v, want %q", skip, err, wantErr)
		}
		if now != 100 {
			t.Errorf("skip=%v: now = %d, want 100", skip, now)
		}
		if a.ticks != 10 || b.ticks != 3 {
			t.Errorf("skip=%v: ticks a=%d b=%d, want 10/3", skip, a.ticks, b.ticks)
		}
		// All 13 dispatched-then-errored edges were elided: a's 10, b's 3.
		if skip && a.eng.SkippedEdges() != 13 {
			t.Errorf("skipped %d edges, want all 13", a.eng.SkippedEdges())
		}
	}
}

// TestSkipDeadlockNoLimit checks the overflow guard: all-Never domains with
// no limit must not fast-forward (the edge-by-edge loop would spin; the
// models always terminate via done(), so mirror that contract instead of
// overflowing the window arithmetic).
func TestSkipDeadlockNoLimit(t *testing.T) {
	e := NewEngine()
	s := &scripted{eng: e}
	var err error
	s.d, err = e.AddDomain("a", 10, s)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	now, err := e.Run(0, func() bool { n++; return n > 3 })
	if err != nil {
		t.Fatal(err)
	}
	if now != 30 || s.ticks != 3 {
		t.Errorf("ran to t=%d after %d ticks, want 30/3", now, s.ticks)
	}
	if e.SkippedEdges() != 0 {
		t.Errorf("deadlocked engine skipped %d edges", e.SkippedEdges())
	}
}

// TestSkipPropertyRandomScripts is the quiescence analogue of
// TestPropertyEdgeCounts: for random coprime-ish periods, random sparse work
// scripts, and a random limit, the skip-on and skip-off runs agree on every
// observable — final time, error presence, tick totals, dead tallies, and
// the work log.
func TestSkipPropertyRandomScripts(t *testing.T) {
	f := func(p1u, p2u uint8, seed uint16, limu uint8) bool {
		p1 := Time(p1u%97) + 3
		p2 := Time(p2u%89) + 5
		// Derive a deterministic sparse script from seed.
		x := uint64(seed)*2654435761 + 12345
		var w1, w2 []int64
		next := int64(0)
		for i := 0; i < 6; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			next += 1 + int64(x%200)
			w1 = append(w1, next)
			x = x*6364136223846793005 + 1442695040888963407
			w2 = append(w2, next+int64(x%37))
		}
		sort.Slice(w2, func(i, j int) bool { return w2[i] < w2[j] })
		// Deduplicate: a tick index can only be visited once, and done()
		// counts one log entry per script item.
		uniq := w2[:1]
		for _, w := range w2[1:] {
			if w != uniq[len(uniq)-1] {
				uniq = append(uniq, w)
			}
		}
		w2 = uniq
		var limit Time
		if limu%3 == 0 {
			limit = Time(limu)*50 + 500
		}
		a1, b1, now1, err1 := runScripted(t, true, p1, p2, w1, w2, 0, limit)
		a0, b0, now0, err0 := runScripted(t, false, p1, p2, w1, w2, 0, limit)
		if (err1 == nil) != (err0 == nil) {
			return false
		}
		if err1 != nil && err1.Error() != err0.Error() {
			return false
		}
		return now1 == now0 &&
			a1.ticks == a0.ticks && b1.ticks == b0.ticks &&
			a1.dead == a0.dead && b1.dead == b0.dead &&
			fmt.Sprint(a1.log) == fmt.Sprint(a0.log) &&
			fmt.Sprint(b1.log) == fmt.Sprint(b0.log)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
