package workloads

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/kernels"
	"repro/internal/layout"
	"repro/internal/ssmc"
)

func testParams() arch.Params {
	p := arch.Default()
	p.Corelets = 8
	p.Contexts = 2
	p.PrefetchEntries = 8
	return p
}

func testRecords(b *Benchmark) int {
	if b.K.RecordWords >= 8 {
		return 12
	}
	return 48
}

func launchFor(t *testing.T, b *Benchmark, p arch.Params, il layout.Interleave, records int) (core.Launch, layout.Layout, kernels.StateLayout, [][]uint32) {
	t.Helper()
	streams := b.Streams(p.Threads(), records, 42)
	lay := layout.Layout{
		RowBytes: p.DRAM.RowBytes, Corelets: p.Corelets, Contexts: p.Contexts,
		Interleave: il, StreamWords: b.StreamWords(records),
	}
	if err := lay.Validate(); err != nil {
		t.Fatal(err)
	}
	sl, err := kernels.LocalState(b.K, p.LocalBytes, p.Contexts)
	if err != nil {
		t.Fatal(err)
	}
	args := kernels.ArgsAndConsts(b.K, lay.Walk(), sl, records)
	return core.Launch{Prog: b.K.Prog, Interleave: il, Streams: streams, Args: args}, lay, sl, streams
}

func compareStates(t *testing.T, b *Benchmark, got, want [][]uint32) {
	t.Helper()
	for th := range want {
		for i := range want[th] {
			if got[th][i] != want[th][i] {
				t.Fatalf("%s: thread %d state[%d] = %#x, want %#x",
					b.Name(), th, i, got[th][i], want[th][i])
				return
			}
		}
	}
}

func TestAllBenchmarksOnMillipede(t *testing.T) {
	p := testParams()
	for _, b := range All() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			records := testRecords(b)
			l, lay, sl, streams := launchFor(t, b, p, layout.Slab, records)
			pr, err := core.NewProcessor(p, energy.Default(), l)
			if err != nil {
				t.Fatal(err)
			}
			res, err := pr.Run(0)
			if err != nil {
				t.Fatal(err)
			}
			got := ExtractStates(b, sl, lay, pr.ReadState)
			compareStates(t, b, got, b.GoldenStates(streams, records))
			if res.Prefetch.PrematureEvicts != 0 {
				t.Errorf("flow control violated on %s", b.Name())
			}
			if res.Cores.CondBranches == 0 {
				t.Errorf("%s executed no branches", b.Name())
			}
		})
	}
}

func TestAllBenchmarksOnSSMC(t *testing.T) {
	p := testParams()
	for _, b := range All() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			records := testRecords(b)
			l, lay, sl, streams := launchFor(t, b, p, layout.Split, records)
			pr, err := ssmc.NewProcessor(p, energy.Default(), l)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := pr.Run(0); err != nil {
				t.Fatal(err)
			}
			got := ExtractStates(b, sl, lay, pr.ReadState)
			compareStates(t, b, got, b.GoldenStates(streams, records))
		})
	}
}

func TestMillipedeNoFlowControlStillCorrect(t *testing.T) {
	p := testParams()
	p.FlowControl = false
	b := NBayesBench()
	records := testRecords(b)
	l, lay, sl, streams := launchFor(t, b, p, layout.Slab, records)
	pr, err := core.NewProcessor(p, energy.Default(), l)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pr.Run(0); err != nil {
		t.Fatal(err)
	}
	got := ExtractStates(b, sl, lay, pr.ReadState)
	compareStates(t, b, got, b.GoldenStates(streams, records))
}

func TestGoldenDeterminism(t *testing.T) {
	for _, b := range All() {
		s1 := b.Streams(4, 8, 7)
		s2 := b.Streams(4, 8, 7)
		for th := range s1 {
			for i := range s1[th] {
				if s1[th][i] != s2[th][i] {
					t.Fatalf("%s: streams not deterministic", b.Name())
				}
			}
		}
		g1 := b.GoldenStates(s1, 8)
		g2 := b.GoldenStates(s2, 8)
		for th := range g1 {
			for i := range g1[th] {
				if g1[th][i] != g2[th][i] {
					t.Fatalf("%s: golden not deterministic", b.Name())
				}
			}
		}
	}
}

func TestStreamsIndependentOfThreadCount(t *testing.T) {
	// Thread t's stream must not change when more threads are added, so
	// goldens are portable across processor geometries.
	b := CountBench()
	a := b.Streams(4, 16, 9)
	c := b.Streams(8, 16, 9)
	for th := range a {
		for i := range a[th] {
			if a[th][i] != c[th][i] {
				t.Fatal("stream changed with thread count")
			}
		}
	}
}

func TestReduceSpecsCoverState(t *testing.T) {
	for _, b := range All() {
		if len(b.ReduceSpec) != b.K.StateWords {
			t.Errorf("%s: spec covers %d of %d state words", b.Name(), len(b.ReduceSpec), b.K.StateWords)
		}
	}
}

func TestReduceMatchesWholeInput(t *testing.T) {
	// For count: reducing per-thread goldens must equal a single-threaded
	// golden over the concatenated input.
	b := CountBench()
	streams := b.Streams(4, 32, 5)
	states := b.GoldenStates(streams, 32)
	red := b.Reduce(states)
	var whole []uint32
	for _, s := range streams {
		whole = append(whole, s...)
	}
	single := b.GoldenThread(whole, 4*32)
	for i := range single {
		if red[i] != single[i] {
			t.Errorf("reduce[%d] = %d, want %d", i, red[i], single[i])
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("kmeans"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestInstsPerWordOrderingOnMillipede(t *testing.T) {
	// Table IV's defining trend: dynamic instructions per input word rise
	// from the aggregation benchmarks to the compute-heavier learners.
	// The fixed stream-walk overhead compresses ratios relative to the
	// paper, so only the coarse ordering is asserted: count is lightest,
	// pca and gda are heaviest, classify/kmeans sit above nbayes.
	p := testParams()
	per := map[string]float64{}
	for _, b := range All() {
		records := testRecords(b)
		l, _, _, _ := launchFor(t, b, p, layout.Slab, records)
		pr, err := core.NewProcessor(p, energy.Default(), l)
		if err != nil {
			t.Fatal(err)
		}
		res, err := pr.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		words := float64(p.Threads() * b.StreamWords(records))
		per[b.Name()] = float64(res.Cores.Instructions) / words
	}
	// count vs nbayes may invert slightly: the per-word walk overhead is
	// amortized over nbayes's 9-word records but not count's single-word
	// records (see EXPERIMENTS.md).
	if !(per["count"] < per["sample"] && per["count"] < per["variance"]) {
		t.Errorf("count not lightest of the rating benchmarks: %v", per)
	}
	if !(per["classify"] > per["nbayes"] && per["kmeans"] > per["nbayes"]) {
		t.Errorf("classify/kmeans not above nbayes: %v", per)
	}
	if !(per["pca"] > per["kmeans"] && per["gda"] > per["kmeans"]) {
		t.Errorf("pca/gda not heaviest: %v", per)
	}
	t.Logf("insts/word: %v", per)
}

// TestFaultInjectionJitter runs benchmarks with heavy DRAM completion
// jitter: results must stay bit-exact and the flow-control safety invariant
// must hold regardless of memory service times.
func TestFaultInjectionJitter(t *testing.T) {
	p := testParams()
	for _, b := range []*Benchmark{CountBench(), NBayesBench()} {
		records := testRecords(b)
		l, lay, sl, streams := launchFor(t, b, p, layout.Slab, records)
		pr, err := core.NewProcessor(p, energy.Default(), l)
		if err != nil {
			t.Fatal(err)
		}
		pr.InjectMemoryJitter(300, 99)
		res, err := pr.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		got := ExtractStates(b, sl, lay, pr.ReadState)
		compareStates(t, b, got, b.GoldenStates(streams, records))
		if res.Prefetch.PrematureEvicts != 0 {
			t.Errorf("%s: flow control violated under jitter", b.Name())
		}
	}
}

// TestFaultInjectionSlowsRuntime sanity-checks that injected jitter is
// actually observed by the timing model.
func TestFaultInjectionSlowsRuntime(t *testing.T) {
	p := testParams()
	p.ChannelHz = 200e6 // memory-bound so added latency shows
	b := CountBench()
	records := testRecords(b)
	l, _, _, _ := launchFor(t, b, p, layout.Slab, records)
	base, err := core.NewProcessor(p, energy.Default(), l)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := base.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	jit, err := core.NewProcessor(p, energy.Default(), l)
	if err != nil {
		t.Fatal(err)
	}
	jit.InjectMemoryJitter(500, 7)
	rj, err := jit.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if rj.Time <= rb.Time {
		t.Errorf("jitter did not slow the run: %d vs %d", rj.Time, rb.Time)
	}
}
