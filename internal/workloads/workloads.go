// Package workloads is the benchmark registry: for each of the paper's
// eight BMLAs (Table II) it bundles the simulated kernel, a deterministic
// dataset generator, a bit-exact golden reference (the same Map + partial
// Reduce executed in Go, in the same order and float32 precision as the
// kernel), and the host-side final Reduce (Section IV-D).
//
// The golden reference is the repository's ground truth: every architecture
// model must produce identical per-thread live state for identical streams,
// which the integration tests assert word-for-word.
package workloads

import (
	"fmt"

	"repro/internal/datagen"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/layout"
)

// Kind classifies a state word for the host Reduce.
type Kind uint8

const (
	KindInt  Kind = iota // merge by integer addition
	KindF32              // merge by float32 addition
	KindKeep             // per-thread only (sample rings, scratch): zero in the reduce
)

// Benchmark is one BMLA workload.
type Benchmark struct {
	K *kernels.Kernel
	// DefaultRecords is the per-thread record count used by the paper-
	// scale harness runs.
	DefaultRecords int
	// Gen produces one thread's packed record stream.
	Gen func(rng *datagen.RNG, records int) []uint32
	// GoldenThread executes the Map + partial Reduce over one stream in
	// Go, mirroring the kernel bit-for-bit. It returns StateWords words.
	GoldenThread func(stream []uint32, records int) []uint32
	// ReduceSpec classifies each state word for Reduce.
	ReduceSpec []Kind
}

// Name returns the benchmark name.
func (b *Benchmark) Name() string { return b.K.Name }

// StreamWords returns the per-thread stream length for records records.
func (b *Benchmark) StreamWords(records int) int { return records * b.K.RecordWords }

// Streams generates per-thread streams; thread t's stream depends only on
// (seed, t), so golden state is independent of how threads map to hardware.
func (b *Benchmark) Streams(threads, records int, seed uint64) [][]uint32 {
	out := make([][]uint32, threads)
	for t := range out {
		rng := datagen.NewRNG(seed*0x10001 + uint64(t)*0x9E3779B97F4A7C15 + 1)
		out[t] = b.Gen(rng, records)
		if len(out[t]) != b.StreamWords(records) {
			panic(fmt.Sprintf("workloads: %s generator produced %d words, want %d",
				b.Name(), len(out[t]), b.StreamWords(records)))
		}
	}
	return out
}

// GoldenStates runs the golden reference over every stream.
func (b *Benchmark) GoldenStates(streams [][]uint32, records int) [][]uint32 {
	out := make([][]uint32, len(streams))
	for t, s := range streams {
		out[t] = b.GoldenThread(s, records)
		if len(out[t]) != b.K.StateWords {
			panic(fmt.Sprintf("workloads: %s golden produced %d state words, want %d",
				b.Name(), len(out[t]), b.K.StateWords))
		}
	}
	return out
}

// Reduce performs the host-side final Reduce over per-thread states,
// merging words according to the ReduceSpec.
func (b *Benchmark) Reduce(states [][]uint32) []uint32 {
	out := make([]uint32, b.K.StateWords)
	for _, s := range states {
		for i, v := range s {
			switch b.ReduceSpec[i] {
			case KindInt:
				out[i] += v
			case KindF32:
				out[i] = isa.Bits(isa.F32(out[i]) + isa.F32(v))
			}
		}
	}
	return out
}

// StateReader abstracts post-run access to a corelet's local (or an SM's
// shared) memory.
type StateReader func(corelet int, addr uint32) uint32

// ExtractStates drains per-thread live state from the simulated memories
// after a run, indexed by the layout's thread id.
func ExtractStates(b *Benchmark, sl kernels.StateLayout, lay layout.Layout, read StateReader) [][]uint32 {
	out := make([][]uint32, lay.Threads())
	for c := 0; c < lay.Corelets; c++ {
		for ctx := 0; ctx < lay.Contexts; ctx++ {
			base := sl.Base0 + uint32(c)*sl.CoreletMult + uint32(ctx)*sl.ContextMult
			st := make([]uint32, b.K.StateWords)
			for i := range st {
				st[i] = read(c, base+uint32(i<<sl.Shift))
			}
			out[lay.ThreadID(c, ctx)] = st
		}
	}
	return out
}

// reduceSpec builds a spec from segment descriptions.
func reduceSpec(segs ...struct {
	k Kind
	n int
}) []Kind {
	var out []Kind
	for _, s := range segs {
		for i := 0; i < s.n; i++ {
			out = append(out, s.k)
		}
	}
	return out
}

func seg(k Kind, n int) struct {
	k Kind
	n int
} {
	return struct {
		k Kind
		n int
	}{k, n}
}

// centroidSeed fixes the constant centroids shared by the kernel constants,
// the generators, and the golden references.
const centroidSeed = 77

// ClassifyCentroids returns the fixed centroid set used by classify.
func ClassifyCentroids() [][]float32 {
	return datagen.Centers(datagen.NewRNG(centroidSeed), kernels.ClassifyK, kernels.ClassifyDims)
}

// KMeansCentroids returns the fixed centroid set used by kmeans.
func KMeansCentroids() [][]float32 {
	return datagen.Centers(datagen.NewRNG(centroidSeed+1), kernels.KMeansK, kernels.KMeansDims)
}

// All returns the eight benchmarks in the paper's Table IV order (ascending
// instructions per input word).
func All() []*Benchmark {
	return []*Benchmark{
		CountBench(), SampleBench(), VarianceBench(), NBayesBench(),
		ClassifyBench(), KMeansBench(), PCABench(), GDABench(),
	}
}

// ByName returns the named benchmark or an error.
func ByName(name string) (*Benchmark, error) {
	for _, b := range All() {
		if b.Name() == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown benchmark %q", name)
}

// --- count -----------------------------------------------------------------

// CountBench bins ratings above a threshold.
func CountBench() *Benchmark {
	k := kernels.Count()
	return &Benchmark{
		K:              k,
		DefaultRecords: 4096,
		Gen: func(rng *datagen.RNG, records int) []uint32 {
			return datagen.Ratings(rng, records, kernels.RatingMax)
		},
		GoldenThread: func(stream []uint32, records int) []uint32 {
			st := make([]uint32, k.StateWords)
			for i := 0; i < records; i++ {
				r := stream[i]
				if int32(r) < int32(kernels.CountThresh) {
					st[kernels.CountBins+(r>>4)]++
					st[2*kernels.CountBins] += r
				} else {
					st[r>>4]++
				}
			}
			return st
		},
		ReduceSpec: reduceSpec(seg(KindInt, 2*kernels.CountBins+1)),
	}
}

// --- sample ----------------------------------------------------------------

// SampleBench keeps cold-band ratings in per-bin rings and counts the rest.
func SampleBench() *Benchmark {
	k := kernels.Sample()
	return &Benchmark{
		K:              k,
		DefaultRecords: 4096,
		Gen: func(rng *datagen.RNG, records int) []uint32 {
			return datagen.Ratings(rng, records, kernels.RatingMax)
		},
		GoldenThread: func(stream []uint32, records int) []uint32 {
			st := make([]uint32, k.StateWords)
			for i := 0; i < records; i++ {
				r := stream[i]
				if int32(r) >= int32(kernels.CountThresh) {
					st[kernels.CountBins*(1+kernels.SampleRing)+(r>>4)]++
					continue
				}
				bin := r >> 4
				base := bin * (1 + kernels.SampleRing)
				st[base]++
				slot := (st[base] - 1) % kernels.SampleRing
				st[base+1+slot] = r
			}
			return st
		},
		ReduceSpec: func() []Kind {
			var spec []Kind
			for b := 0; b < kernels.CountBins; b++ {
				spec = append(spec, KindInt)
				for s := 0; s < kernels.SampleRing; s++ {
					spec = append(spec, KindKeep)
				}
			}
			return append(spec, reduceSpec(seg(KindInt, kernels.CountBins))...)
		}(),
	}
}

// --- variance ----------------------------------------------------------------

// VarianceBench accumulates per-bin count, sum, and sum of squares.
func VarianceBench() *Benchmark {
	k := kernels.Variance()
	return &Benchmark{
		K:              k,
		DefaultRecords: 4096,
		Gen: func(rng *datagen.RNG, records int) []uint32 {
			return datagen.Ratings(rng, records, kernels.RatingMax)
		},
		GoldenThread: func(stream []uint32, records int) []uint32 {
			st := make([]uint32, k.StateWords)
			for i := 0; i < records; i++ {
				r := stream[i]
				b := (r >> 4) * 3
				st[b]++
				st[b+1] += r
				st[b+2] += r * r
			}
			return st
		},
		ReduceSpec: reduceSpec(seg(KindInt, kernels.CountBins*3)),
	}
}

// --- nbayes ----------------------------------------------------------------

// NBayesBench is Table I's Naive Bayes: conditional probability counting
// with a data-dependent class branch and indirect state accesses.
func NBayesBench() *Benchmark {
	k := kernels.NBayes()
	dims, vals, classes := kernels.NBDims, kernels.NBValues, kernels.NBClasses
	return &Benchmark{
		K:              k,
		DefaultRecords: 512,
		Gen: func(rng *datagen.RNG, records int) []uint32 {
			out := make([]uint32, 0, records*(1+dims))
			for i := 0; i < records; i++ {
				var year uint32
				if rng.Bernoulli(0.7) {
					year = uint32(kernels.NBYearMin + rng.Intn(kernels.NBYearThresh-kernels.NBYearMin))
				} else {
					year = uint32(kernels.NBYearThresh + 1 + rng.Intn(kernels.NBYearMax-kernels.NBYearThresh))
				}
				out = append(out, year)
				for d := 0; d < dims; d++ {
					out = append(out, uint32(rng.Intn(vals)))
				}
			}
			return out
		},
		GoldenThread: func(stream []uint32, records int) []uint32 {
			st := make([]uint32, k.StateWords)
			p := 0
			for i := 0; i < records; i++ {
				year := stream[p]
				p++
				class := uint32(0)
				if int32(year) > int32(kernels.NBYearThresh) {
					class = 1
				}
				for d := 0; d < dims; d++ {
					x := stream[p]
					p++
					st[uint32(d*vals*classes)+x*2+class]++
				}
				st[uint32(dims*vals*classes)+class]++
			}
			return st
		},
		ReduceSpec: reduceSpec(seg(KindInt, dims*vals*classes+classes)),
	}
}

// --- classify ----------------------------------------------------------------

func nearest(x []float32, centroids [][]float32) int {
	best, bestDist := 0, float32(3.0e38)
	for c := range centroids {
		var dist float32
		for d := range x {
			diff := x[d] - centroids[c][d]
			diff = diff * diff
			dist = dist + diff
		}
		if dist < bestDist {
			bestDist = dist
			best = c
		}
	}
	return best
}

func floatPointGen(dims int, centers [][]float32) func(*datagen.RNG, int) []uint32 {
	return func(rng *datagen.RNG, records int) []uint32 {
		return datagen.FloatPoints(rng, records, dims, centers, 1.5)
	}
}

// ClassifyBench assigns points to the nearest constant centroid.
func ClassifyBench() *Benchmark {
	cents := ClassifyCentroids()
	k := kernels.Classify(cents)
	dims := kernels.ClassifyDims
	return &Benchmark{
		K:              k,
		DefaultRecords: 512,
		Gen:            floatPointGen(dims, cents),
		GoldenThread: func(stream []uint32, records int) []uint32 {
			st := make([]uint32, k.StateWords)
			x := make([]float32, dims)
			for i := 0; i < records; i++ {
				for d := 0; d < dims; d++ {
					x[d] = isa.F32(stream[i*dims+d])
				}
				st[nearest(x, cents)]++
			}
			return st
		},
		ReduceSpec: reduceSpec(seg(KindInt, kernels.ClassifyK)),
	}
}

// --- kmeans ----------------------------------------------------------------

// KMeansBench performs one k-means iteration: nearest centroid plus
// per-centroid coordinate sums.
func KMeansBench() *Benchmark { return KMeansBenchWith(KMeansCentroids()) }

// KMeansBenchWith is KMeansBench with caller-supplied centroids — the
// handle for iterative k-means, where each MapReduction's reduced output
// (per-centroid counts and coordinate sums) parameterizes the next
// iteration's kernel over the same resident dataset (Section IV-E's reuse).
// The data distribution stays anchored to the fixed generator centers so
// iterations converge toward them.
func KMeansBenchWith(cents [][]float32) *Benchmark {
	k := kernels.KMeans(cents)
	dims, kk := kernels.KMeansDims, kernels.KMeansK
	gen := floatPointGen(dims, KMeansCentroids())
	return &Benchmark{
		K:              k,
		DefaultRecords: 512,
		Gen:            gen,
		GoldenThread: func(stream []uint32, records int) []uint32 {
			st := make([]uint32, k.StateWords)
			x := make([]float32, dims)
			for i := 0; i < records; i++ {
				for d := 0; d < dims; d++ {
					x[d] = isa.F32(stream[i*dims+d])
				}
				best := nearest(x, cents)
				st[best]++
				for d := 0; d < dims; d++ {
					idx := kk + best*dims + d
					st[idx] = isa.Bits(isa.F32(st[idx]) + x[d])
				}
			}
			return st
		},
		ReduceSpec: reduceSpec(seg(KindInt, kk), seg(KindF32, kk*dims)),
	}
}

// --- pca -------------------------------------------------------------------

// PCABench accumulates the mean vector and second-moment matrix.
func PCABench() *Benchmark {
	k := kernels.PCA()
	dims := kernels.PCADims
	cents := datagen.Centers(datagen.NewRNG(centroidSeed+2), 4, dims)
	return &Benchmark{
		K:              k,
		DefaultRecords: 256,
		Gen:            floatPointGen(dims, cents),
		GoldenThread: func(stream []uint32, records int) []uint32 {
			st := make([]uint32, k.StateWords)
			covBase := dims
			scratch := dims + dims*dims
			for i := 0; i < records; i++ {
				for d := 0; d < dims; d++ {
					x := isa.F32(stream[i*dims+d])
					st[d] = isa.Bits(isa.F32(st[d]) + x)
					st[scratch+d] = stream[i*dims+d]
				}
				for a := 0; a < dims; a++ {
					xi := isa.F32(st[scratch+a])
					for b := 0; b < dims; b++ {
						xj := isa.F32(st[scratch+b])
						idx := covBase + a*dims + b
						st[idx] = isa.Bits(isa.F32(st[idx]) + xj*xi)
					}
				}
			}
			return st
		},
		ReduceSpec: reduceSpec(seg(KindF32, dims+dims*dims), seg(KindKeep, dims)),
	}
}

// --- gda -------------------------------------------------------------------

// GDABench accumulates per-class counts and mean-sums plus a pooled
// covariance of running-mean-centered coordinates.
func GDABench() *Benchmark {
	k := kernels.GDA()
	dims, classes := kernels.GDADims, kernels.GDAClasses
	return &Benchmark{
		K:              k,
		DefaultRecords: 256,
		Gen: func(rng *datagen.RNG, records int) []uint32 {
			return datagen.BurstyLabeledFloatPoints(rng, records, dims, classes, 0.7, 1.5)
		},
		GoldenThread: func(stream []uint32, records int) []uint32 {
			st := make([]uint32, k.StateWords)
			meanBase := classes
			covBase := meanBase + classes*dims
			scratch := covBase + dims*dims
			p := 0
			for i := 0; i < records; i++ {
				label := stream[p]
				p++
				st[label]++
				count := float32(int32(st[label]))
				for d := 0; d < dims; d++ {
					x := isa.F32(stream[p])
					p++
					mi := meanBase + int(label)*dims + d
					sum := isa.F32(st[mi]) + x
					st[mi] = isa.Bits(sum)
					mean := sum / count
					st[scratch+d] = isa.Bits(x - mean)
				}
				for a := 0; a < dims; a++ {
					xi := isa.F32(st[scratch+a])
					for b := 0; b < dims; b++ {
						xj := isa.F32(st[scratch+b])
						idx := covBase + a*dims + b
						st[idx] = isa.Bits(isa.F32(st[idx]) + xj*xi)
					}
				}
			}
			return st
		},
		ReduceSpec: reduceSpec(seg(KindInt, classes), seg(KindF32, classes*dims+dims*dims), seg(KindKeep, dims)),
	}
}
