// Package workloads is the benchmark registry: for each of the paper's
// eight BMLAs (Table II) it bundles the simulated kernel, a deterministic
// streaming dataset Source, a bit-exact golden reference (the same Map +
// partial Reduce executed in Go, in the same order and float32 precision as
// the kernel), and the host-side final Reduce (Section IV-D).
//
// The golden reference is the repository's ground truth: every architecture
// model must produce identical per-thread live state for identical streams,
// which the integration tests assert word-for-word. Both the datasets and
// the golden executor are streaming — per-record Fold over bounded chunks —
// so record counts can reach the paper's big-data scales without ever
// holding a dataset in memory.
package workloads

import (
	"fmt"
	"sync"

	"repro/internal/datagen"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/layout"
	"repro/internal/mapreduce"
)

// Kind classifies a state word for the host Reduce.
type Kind uint8

const (
	KindInt  Kind = iota // merge by integer addition
	KindF32              // merge by float32 addition
	KindKeep             // per-thread only (sample rings, scratch): zero in the reduce
)

// GoldenChunkWords is the bounded buffer size (in words) the streaming
// golden executor draws records through; 16 KB regardless of record count.
const GoldenChunkWords = 4096

// Benchmark is one BMLA workload.
type Benchmark struct {
	K *kernels.Kernel
	// DefaultRecords is the per-thread record count used by the paper-
	// scale harness runs.
	DefaultRecords int
	// Gen returns one thread's record stream as a resumable Source; the
	// caller's RNG state is snapshotted, not advanced.
	Gen func(rng *datagen.RNG, records int) *datagen.Source
	// Fold executes the Map + partial Reduce for one record (K.RecordWords
	// words) into st (K.StateWords words), mirroring the kernel
	// bit-for-bit. It must not retain rec and must not share mutable state
	// across calls, so golden threads can fold concurrently.
	Fold func(st, rec []uint32)
	// ReduceSpec classifies each state word for Reduce.
	ReduceSpec []Kind
}

// Name returns the benchmark name.
func (b *Benchmark) Name() string { return b.K.Name }

// StreamWords returns the per-thread stream length for records records.
func (b *Benchmark) StreamWords(records int) int { return records * b.K.RecordWords }

// Source returns thread's record Source for a run seed: the stream depends
// only on (seed, thread) via datagen.ThreadSeed, so golden state is
// independent of how threads map to hardware.
func (b *Benchmark) Source(seed uint64, thread, records int) *datagen.Source {
	src := b.Gen(datagen.NewRNG(datagen.ThreadSeed(seed, thread)), records)
	if src.RecordWords() != b.K.RecordWords || src.Records() != records {
		panic(fmt.Sprintf("workloads: %s generator shape %dx%d, want %dx%d",
			b.Name(), src.Records(), src.RecordWords(), records, b.K.RecordWords))
	}
	return src
}

// Sources returns one Source per thread for a run seed.
func (b *Benchmark) Sources(threads, records int, seed uint64) []*datagen.Source {
	out := make([]*datagen.Source, threads)
	for t := range out {
		out[t] = b.Source(seed, t, records)
	}
	return out
}

// Streams materializes per-thread streams — the legacy one-slice-per-thread
// shape, still used by tests and small fixed-scale runs.
func (b *Benchmark) Streams(threads, records int, seed uint64) [][]uint32 {
	out := make([][]uint32, threads)
	for t, src := range b.Sources(threads, records, seed) {
		out[t] = src.Materialize()
	}
	return out
}

// GoldenThread executes the golden reference over one materialized stream.
func (b *Benchmark) GoldenThread(stream []uint32, records int) []uint32 {
	st := make([]uint32, b.K.StateWords)
	rw := b.K.RecordWords
	for i := 0; i < records; i++ {
		b.Fold(st, stream[i*rw:(i+1)*rw])
	}
	return st
}

// GoldenSource executes the golden reference over a Source through a
// bounded chunk buffer: constant memory in the record count.
func (b *Benchmark) GoldenSource(src *datagen.Source) []uint32 {
	st := make([]uint32, b.K.StateWords)
	rw := src.RecordWords()
	buf := make([]uint32, chunkWordsFor(rw))
	for {
		n := src.Next(buf)
		if n == 0 {
			return st
		}
		for w := 0; w < n; w += rw {
			b.Fold(st, buf[w:w+rw])
		}
	}
}

// chunkWordsFor rounds GoldenChunkWords down to a whole-record multiple,
// never below one record.
func chunkWordsFor(recordWords int) int {
	if recordWords >= GoldenChunkWords {
		return recordWords
	}
	return GoldenChunkWords - GoldenChunkWords%recordWords
}

// GoldenStates runs the golden reference over every stream.
func (b *Benchmark) GoldenStates(streams [][]uint32, records int) [][]uint32 {
	out := make([][]uint32, len(streams))
	for t, s := range streams {
		out[t] = b.GoldenThread(s, records)
	}
	return out
}

// goldenKey identifies one deterministic golden computation; identical keys
// always yield identical states, so results are safe to memoize.
type goldenKey struct {
	name             string
	threads, records int
	seed             uint64
}

var goldenMemo struct {
	sync.Mutex
	m map[goldenKey][][]uint32
}

// GoldenStatesStreamed computes per-thread golden states directly from the
// seeded Sources without materializing any stream. The result is memoized:
// a benchmark suite verifies several architectures against the same
// (threads, records, seed) reference, and the golden fold is deterministic,
// so recomputing it per run is pure waste. Callers receive a fresh copy and
// may mutate it freely.
func (b *Benchmark) GoldenStatesStreamed(threads, records int, seed uint64) [][]uint32 {
	k := goldenKey{name: b.Name(), threads: threads, records: records, seed: seed}
	goldenMemo.Lock()
	cached, ok := goldenMemo.m[k]
	goldenMemo.Unlock()
	if !ok {
		cached = make([][]uint32, threads)
		for t := range cached {
			cached[t] = b.GoldenSource(b.Source(seed, t, records))
		}
		goldenMemo.Lock()
		if goldenMemo.m == nil {
			goldenMemo.m = make(map[goldenKey][][]uint32)
		}
		goldenMemo.m[k] = cached
		goldenMemo.Unlock()
	}
	out := make([][]uint32, threads)
	for t := range out {
		out[t] = append([]uint32(nil), cached[t]...)
	}
	return out
}

// Job exposes the benchmark as a mapreduce.Job: Map is the per-record Fold
// and Merge applies the ReduceSpec — the exact host-Reduce semantics, now
// usable by the generic framework (per-node and tree Reduce in the cluster
// experiment).
func (b *Benchmark) Job() mapreduce.Job[[]uint32, []uint32] {
	return mapreduce.Job[[]uint32, []uint32]{
		NewState: func() []uint32 { return make([]uint32, b.K.StateWords) },
		Map:      func(st []uint32, rec []uint32) { b.Fold(st, rec) },
		Merge: func(dst, src []uint32) {
			for i, v := range src {
				switch b.ReduceSpec[i] {
				case KindInt:
					dst[i] += v
				case KindF32:
					dst[i] = isa.Bits(isa.F32(dst[i]) + isa.F32(v))
				}
			}
		},
	}
}

// Reduce performs the host-side final Reduce over per-thread states,
// merging words left to right according to the ReduceSpec.
func (b *Benchmark) Reduce(states [][]uint32) []uint32 {
	final, err := mapreduce.ReduceStates(b.Job(), states)
	if err != nil {
		panic(err) // Job is fully populated by construction
	}
	return final
}

// StateReader abstracts post-run access to a corelet's local (or an SM's
// shared) memory.
type StateReader func(corelet int, addr uint32) uint32

// ExtractStates drains per-thread live state from the simulated memories
// after a run, indexed by the layout's thread id.
func ExtractStates(b *Benchmark, sl kernels.StateLayout, lay layout.Layout, read StateReader) [][]uint32 {
	out := make([][]uint32, lay.Threads())
	for c := 0; c < lay.Corelets; c++ {
		for ctx := 0; ctx < lay.Contexts; ctx++ {
			base := sl.Base0 + uint32(c)*sl.CoreletMult + uint32(ctx)*sl.ContextMult
			st := make([]uint32, b.K.StateWords)
			for i := range st {
				st[i] = read(c, base+uint32(i<<sl.Shift))
			}
			out[lay.ThreadID(c, ctx)] = st
		}
	}
	return out
}

// reduceSpec builds a spec from segment descriptions.
func reduceSpec(segs ...struct {
	k Kind
	n int
}) []Kind {
	var out []Kind
	for _, s := range segs {
		for i := 0; i < s.n; i++ {
			out = append(out, s.k)
		}
	}
	return out
}

func seg(k Kind, n int) struct {
	k Kind
	n int
} {
	return struct {
		k Kind
		n int
	}{k, n}
}

// centroidSeed fixes the constant centroids shared by the kernel constants,
// the generators, and the golden references.
const centroidSeed = 77

// ClassifyCentroids returns the fixed centroid set used by classify.
func ClassifyCentroids() [][]float32 {
	return datagen.Centers(datagen.NewRNG(centroidSeed), kernels.ClassifyK, kernels.ClassifyDims)
}

// KMeansCentroids returns the fixed centroid set used by kmeans.
func KMeansCentroids() [][]float32 {
	return datagen.Centers(datagen.NewRNG(centroidSeed+1), kernels.KMeansK, kernels.KMeansDims)
}

// All returns the eight benchmarks in the paper's Table IV order (ascending
// instructions per input word).
func All() []*Benchmark {
	return []*Benchmark{
		CountBench(), SampleBench(), VarianceBench(), NBayesBench(),
		ClassifyBench(), KMeansBench(), PCABench(), GDABench(),
	}
}

// ByName returns the named benchmark or an error.
func ByName(name string) (*Benchmark, error) {
	for _, b := range All() {
		if b.Name() == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown benchmark %q", name)
}

// --- count -----------------------------------------------------------------

// CountBench bins ratings above a threshold.
func CountBench() *Benchmark {
	k := kernels.Count()
	return &Benchmark{
		K:              k,
		DefaultRecords: 4096,
		Gen: func(rng *datagen.RNG, records int) *datagen.Source {
			return datagen.RatingsSource(rng, records, kernels.RatingMax)
		},
		Fold: func(st, rec []uint32) {
			r := rec[0]
			if int32(r) < int32(kernels.CountThresh) {
				st[kernels.CountBins+(r>>4)]++
				st[2*kernels.CountBins] += r
			} else {
				st[r>>4]++
			}
		},
		ReduceSpec: reduceSpec(seg(KindInt, 2*kernels.CountBins+1)),
	}
}

// --- sample ----------------------------------------------------------------

// SampleBench keeps cold-band ratings in per-bin rings and counts the rest.
func SampleBench() *Benchmark {
	k := kernels.Sample()
	return &Benchmark{
		K:              k,
		DefaultRecords: 4096,
		Gen: func(rng *datagen.RNG, records int) *datagen.Source {
			return datagen.RatingsSource(rng, records, kernels.RatingMax)
		},
		Fold: func(st, rec []uint32) {
			r := rec[0]
			if int32(r) >= int32(kernels.CountThresh) {
				st[kernels.CountBins*(1+kernels.SampleRing)+(r>>4)]++
				return
			}
			bin := r >> 4
			base := bin * (1 + kernels.SampleRing)
			st[base]++
			slot := (st[base] - 1) % kernels.SampleRing
			st[base+1+slot] = r
		},
		ReduceSpec: func() []Kind {
			var spec []Kind
			for b := 0; b < kernels.CountBins; b++ {
				spec = append(spec, KindInt)
				for s := 0; s < kernels.SampleRing; s++ {
					spec = append(spec, KindKeep)
				}
			}
			return append(spec, reduceSpec(seg(KindInt, kernels.CountBins))...)
		}(),
	}
}

// --- variance ----------------------------------------------------------------

// VarianceBench accumulates per-bin count, sum, and sum of squares.
func VarianceBench() *Benchmark {
	k := kernels.Variance()
	return &Benchmark{
		K:              k,
		DefaultRecords: 4096,
		Gen: func(rng *datagen.RNG, records int) *datagen.Source {
			return datagen.RatingsSource(rng, records, kernels.RatingMax)
		},
		Fold: func(st, rec []uint32) {
			r := rec[0]
			b := (r >> 4) * 3
			st[b]++
			st[b+1] += r
			st[b+2] += r * r
		},
		ReduceSpec: reduceSpec(seg(KindInt, kernels.CountBins*3)),
	}
}

// --- nbayes ----------------------------------------------------------------

// NBayesBench is Table I's Naive Bayes: conditional probability counting
// with a data-dependent class branch and indirect state accesses.
func NBayesBench() *Benchmark {
	k := kernels.NBayes()
	dims, vals, classes := kernels.NBDims, kernels.NBValues, kernels.NBClasses
	return &Benchmark{
		K:              k,
		DefaultRecords: 512,
		Gen: func(rng *datagen.RNG, records int) *datagen.Source {
			return datagen.NewSource(1+dims, records, rng, func(r *datagen.RNG) func(rec []uint32) {
				return func(rec []uint32) {
					if r.Bernoulli(0.7) {
						rec[0] = uint32(kernels.NBYearMin + r.Intn(kernels.NBYearThresh-kernels.NBYearMin))
					} else {
						rec[0] = uint32(kernels.NBYearThresh + 1 + r.Intn(kernels.NBYearMax-kernels.NBYearThresh))
					}
					for d := 0; d < dims; d++ {
						rec[1+d] = uint32(r.Intn(vals))
					}
				}
			})
		},
		Fold: func(st, rec []uint32) {
			year := rec[0]
			class := uint32(0)
			if int32(year) > int32(kernels.NBYearThresh) {
				class = 1
			}
			for d := 0; d < dims; d++ {
				st[uint32(d*vals*classes)+rec[1+d]*2+class]++
			}
			st[uint32(dims*vals*classes)+class]++
		},
		ReduceSpec: reduceSpec(seg(KindInt, dims*vals*classes+classes)),
	}
}

// --- classify ----------------------------------------------------------------

// nearestRec returns the index of the centroid closest to the packed
// float32 record, accumulating distances in the kernel's float32 order.
func nearestRec(rec []uint32, centroids [][]float32) int {
	best, bestDist := 0, float32(3.0e38)
	for c := range centroids {
		var dist float32
		for d := range rec {
			diff := isa.F32(rec[d]) - centroids[c][d]
			diff = diff * diff
			dist = dist + diff
		}
		if dist < bestDist {
			bestDist = dist
			best = c
		}
	}
	return best
}

func floatPointGen(dims int, centers [][]float32) func(*datagen.RNG, int) *datagen.Source {
	return func(rng *datagen.RNG, records int) *datagen.Source {
		return datagen.FloatPointsSource(rng, records, dims, centers, 1.5)
	}
}

// ClassifyBench assigns points to the nearest constant centroid.
func ClassifyBench() *Benchmark {
	cents := ClassifyCentroids()
	k := kernels.Classify(cents)
	return &Benchmark{
		K:              k,
		DefaultRecords: 512,
		Gen:            floatPointGen(kernels.ClassifyDims, cents),
		Fold: func(st, rec []uint32) {
			st[nearestRec(rec, cents)]++
		},
		ReduceSpec: reduceSpec(seg(KindInt, kernels.ClassifyK)),
	}
}

// --- kmeans ----------------------------------------------------------------

// KMeansBench performs one k-means iteration: nearest centroid plus
// per-centroid coordinate sums.
func KMeansBench() *Benchmark { return KMeansBenchWith(KMeansCentroids()) }

// KMeansBenchWith is KMeansBench with caller-supplied centroids — the
// handle for iterative k-means, where each MapReduction's reduced output
// (per-centroid counts and coordinate sums) parameterizes the next
// iteration's kernel over the same resident dataset (Section IV-E's reuse).
// The data distribution stays anchored to the fixed generator centers so
// iterations converge toward them.
func KMeansBenchWith(cents [][]float32) *Benchmark {
	k := kernels.KMeans(cents)
	dims, kk := kernels.KMeansDims, kernels.KMeansK
	return &Benchmark{
		K:              k,
		DefaultRecords: 512,
		Gen:            floatPointGen(dims, KMeansCentroids()),
		Fold: func(st, rec []uint32) {
			best := nearestRec(rec, cents)
			st[best]++
			for d := 0; d < dims; d++ {
				idx := kk + best*dims + d
				st[idx] = isa.Bits(isa.F32(st[idx]) + isa.F32(rec[d]))
			}
		},
		ReduceSpec: reduceSpec(seg(KindInt, kk), seg(KindF32, kk*dims)),
	}
}

// --- pca -------------------------------------------------------------------

// PCABench accumulates the mean vector and second-moment matrix.
func PCABench() *Benchmark {
	k := kernels.PCA()
	dims := kernels.PCADims
	cents := datagen.Centers(datagen.NewRNG(centroidSeed+2), 4, dims)
	covBase := dims
	scratch := dims + dims*dims
	return &Benchmark{
		K:              k,
		DefaultRecords: 256,
		Gen:            floatPointGen(dims, cents),
		Fold: func(st, rec []uint32) {
			for d := 0; d < dims; d++ {
				x := isa.F32(rec[d])
				st[d] = isa.Bits(isa.F32(st[d]) + x)
				st[scratch+d] = rec[d]
			}
			for a := 0; a < dims; a++ {
				xi := isa.F32(st[scratch+a])
				for b := 0; b < dims; b++ {
					xj := isa.F32(st[scratch+b])
					idx := covBase + a*dims + b
					st[idx] = isa.Bits(isa.F32(st[idx]) + xj*xi)
				}
			}
		},
		ReduceSpec: reduceSpec(seg(KindF32, dims+dims*dims), seg(KindKeep, dims)),
	}
}

// --- gda -------------------------------------------------------------------

// GDABench accumulates per-class counts and mean-sums plus a pooled
// covariance of running-mean-centered coordinates.
func GDABench() *Benchmark {
	k := kernels.GDA()
	dims, classes := kernels.GDADims, kernels.GDAClasses
	meanBase := classes
	covBase := meanBase + classes*dims
	scratch := covBase + dims*dims
	return &Benchmark{
		K:              k,
		DefaultRecords: 256,
		Gen: func(rng *datagen.RNG, records int) *datagen.Source {
			return datagen.BurstyLabeledFloatPointsSource(rng, records, dims, classes, 0.7, 1.5)
		},
		Fold: func(st, rec []uint32) {
			label := rec[0]
			st[label]++
			count := float32(int32(st[label]))
			for d := 0; d < dims; d++ {
				x := isa.F32(rec[1+d])
				mi := meanBase + int(label)*dims + d
				sum := isa.F32(st[mi]) + x
				st[mi] = isa.Bits(sum)
				mean := sum / count
				st[scratch+d] = isa.Bits(x - mean)
			}
			for a := 0; a < dims; a++ {
				xi := isa.F32(st[scratch+a])
				for b := 0; b < dims; b++ {
					xj := isa.F32(st[scratch+b])
					idx := covBase + a*dims + b
					st[idx] = isa.Bits(isa.F32(st[idx]) + xj*xi)
				}
			}
		},
		ReduceSpec: reduceSpec(seg(KindInt, classes), seg(KindF32, classes*dims+dims*dims), seg(KindKeep, dims)),
	}
}
