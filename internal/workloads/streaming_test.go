package workloads

import (
	"runtime"
	"runtime/debug"
	"testing"

	"repro/internal/datagen"
	"repro/internal/kernels"
)

// legacySplitStreams is a pinned copy of datagen.SplitStreams as it shipped
// before the streaming API: contiguous whole-record slices, remainder
// records dropped. The live shim must reproduce it byte for byte.
func legacySplitStreams(words []uint32, recordWords, threads int) [][]uint32 {
	records := len(words) / recordWords
	per := records / threads
	out := make([][]uint32, threads)
	for t := 0; t < threads; t++ {
		start := t * per * recordWords
		out[t] = words[start : start+per*recordWords]
	}
	return out
}

// TestSplitStreamsMatchesLegacy checks the deprecated SplitStreams shim
// against the pinned legacy implementation on every kernel's real generated
// data, including a remainder that must be dropped.
func TestSplitStreamsMatchesLegacy(t *testing.T) {
	const threads = 4
	for _, b := range All() {
		rw := b.K.RecordWords
		records := threads*testRecords(b) + 3 // +3: remainder exercises the drop
		words := b.Gen(datagen.NewRNG(1234), records).Materialize()
		got := datagen.SplitStreams(words, rw, threads)
		want := legacySplitStreams(words, rw, threads)
		if len(got) != len(want) {
			t.Fatalf("%s: %d streams, want %d", b.Name(), len(got), len(want))
		}
		for th := range want {
			if len(got[th]) != len(want[th]) {
				t.Fatalf("%s: stream %d has %d words, want %d", b.Name(), th, len(got[th]), len(want[th]))
			}
			for i := range want[th] {
				if got[th][i] != want[th][i] {
					t.Fatalf("%s: stream %d diverges from the legacy split at word %d", b.Name(), th, i)
				}
			}
		}
	}
}

// TestStreamingConstantMemory is the constant-memory guarantee, enforced: it
// folds a dataset ~800x the default per-thread input (about 13 MB per
// thread, 52 MB across threads if materialized) through bounded chunk
// buffers under a GOMEMLIMIT ceiling far below the materialized size, and
// asserts the measured heap growth stays under 8 MB — then checks the folded
// result is complete (every record landed in a count bin).
func TestStreamingConstantMemory(t *testing.T) {
	b, err := ByName("count")
	if err != nil {
		t.Fatal(err)
	}
	const threads = 4
	records := b.DefaultRecords * 800

	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	base := ms.HeapAlloc
	prev := debug.SetMemoryLimit(int64(base) + 32<<20)
	defer debug.SetMemoryLimit(prev)

	var peak uint64
	var total uint64
	rw := b.K.RecordWords
	job := b.Job()
	buf := make([]uint32, GoldenChunkWords)
	for th := 0; th < threads; th++ {
		st := job.NewState()
		src := b.Source(77, th, records)
		for chunk := 0; ; chunk++ {
			n := src.Next(buf)
			if n == 0 {
				break
			}
			for i := 0; i < n; i += rw {
				b.Fold(st, buf[i:i+rw])
			}
			if chunk%64 == 0 {
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak {
					peak = ms.HeapAlloc
				}
			}
		}
		for bin := 0; bin < 2*kernels.CountBins; bin++ {
			total += uint64(st[bin])
		}
	}

	if total != uint64(threads)*uint64(records) {
		t.Errorf("folded %d records, want %d: the stream lost or duplicated data", total, threads*records)
	}
	if grown := int64(peak) - int64(base); grown > 8<<20 {
		t.Errorf("heap grew %d bytes while streaming (limit 8 MiB): generation is not constant-memory", grown)
	}
}
