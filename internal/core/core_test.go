package core

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/asm"
	"repro/internal/energy"
	"repro/internal/layout"
	"repro/internal/sim"
)

// sumKernel walks the thread's stream and accumulates a checksum, storing
// it to local[64 + ctx*4]. Args: 0=base 1=coreletMult 2=contextMult
// 3=stride 4=rowStep 5=chunkWords 6=wordsPerThread.
const sumKernelSrc = `
	.name sum
	lw   r1, 0(r0)
	csrr r2, coreletid
	lw   r3, 4(r0)
	mul  r2, r2, r3
	add  r1, r1, r2
	csrr r2, contextid
	lw   r3, 8(r0)
	mul  r2, r2, r3
	add  r1, r1, r2      ; r1 = first word address
	lw   r4, 12(r0)      ; stride
	lw   r5, 16(r0)      ; row step
	lw   r6, 20(r0)      ; chunk words
	lw   r7, 24(r0)      ; words per thread
	mv   r8, r6
	li   r9, 0
loop:
	ldg  r10, 0(r1)
	add  r9, r9, r10
	addi r7, r7, -1
	beqz r7, done
	addi r8, r8, -1
	bnez r8, samerow
	add  r1, r1, r5
	mv   r8, r6
	j    loop
samerow:
	add  r1, r1, r4
	j    loop
done:
	csrr r2, contextid
	slli r2, r2, 2
	addi r2, r2, 64
	sw   r9, 0(r2)
	halt
`

// testParams shrinks Table III to a fast test size: 8 corelets, 2 contexts.
func testParams() arch.Params {
	p := arch.Default()
	p.Corelets = 8
	p.Contexts = 2
	p.PrefetchEntries = 4
	return p
}

func sumLaunch(t *testing.T, p arch.Params, il layout.Interleave, wordsPerThread int) (Launch, [][]uint32) {
	t.Helper()
	prog, err := asm.Assemble("sum", sumKernelSrc)
	if err != nil {
		t.Fatal(err)
	}
	lay := layout.Layout{RowBytes: p.DRAM.RowBytes, Corelets: p.Corelets, Contexts: p.Contexts, Interleave: il}
	streams := make([][]uint32, lay.Threads())
	for th := range streams {
		streams[th] = make([]uint32, wordsPerThread)
		for i := range streams[th] {
			streams[th][i] = uint32(th*100003 + i*7919)
		}
	}
	w := lay.Walk()
	args := []uint32{
		0,
		uint32(w.CoreletMult),
		uint32(w.ContextMult),
		uint32(w.Stride),
		uint32(w.RowStep),
		uint32(w.ChunkWords),
		uint32(wordsPerThread),
	}
	return Launch{Prog: prog, Interleave: il, Streams: streams, Args: args}, streams
}

func runSum(t *testing.T, p arch.Params, il layout.Interleave, words int) (*Processor, Result, [][]uint32) {
	t.Helper()
	l, streams := sumLaunch(t, p, il, words)
	pr, err := NewProcessor(p, energy.Default(), l)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pr.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	return pr, res, streams
}

func checkSums(t *testing.T, pr *Processor, p arch.Params, il layout.Interleave, streams [][]uint32) {
	t.Helper()
	lay := layout.Layout{RowBytes: p.DRAM.RowBytes, Corelets: p.Corelets, Contexts: p.Contexts, Interleave: il}
	for c := 0; c < p.Corelets; c++ {
		for ctx := 0; ctx < p.Contexts; ctx++ {
			var want uint32
			for _, v := range streams[lay.ThreadID(c, ctx)] {
				want += v
			}
			got := pr.ReadState(c, uint32(64+ctx*4))
			if got != want {
				t.Errorf("corelet %d ctx %d sum = %d, want %d", c, ctx, got, want)
			}
		}
	}
}

func TestMillipedeChecksumSlab(t *testing.T) {
	p := testParams()
	pr, res, streams := runSum(t, p, layout.Slab, 256)
	checkSums(t, pr, p, layout.Slab, streams)
	if res.Time <= 0 || res.ComputeCycles == 0 {
		t.Error("no simulated time elapsed")
	}
	if res.Prefetch.PrematureEvicts != 0 || res.Prefetch.DemandRowFetches != 0 {
		t.Errorf("flow control violated: %+v", res.Prefetch)
	}
	// Every input row must be prefetched exactly once.
	lay := pr.Layout()
	rows := uint64(lay.RegionBytes(256) / p.DRAM.RowBytes)
	if res.Prefetch.Prefetches != rows {
		t.Errorf("prefetches = %d, want %d", res.Prefetch.Prefetches, rows)
	}
	if res.DRAM.BytesRead != rows*uint64(p.DRAM.RowBytes) {
		t.Errorf("DRAM bytes = %d, want %d", res.DRAM.BytesRead, rows*2048)
	}
	if res.Energy.TotalPJ() <= 0 {
		t.Error("no energy accounted")
	}
}

func TestMillipedeChecksumWordInterleave(t *testing.T) {
	p := testParams()
	pr, _, streams := runSum(t, p, layout.Word, 128)
	checkSums(t, pr, p, layout.Word, streams)
}

func TestMillipedeNoFlowControlStillCorrect(t *testing.T) {
	p := testParams()
	p.FlowControl = false
	pr, _, streams := runSum(t, p, layout.Slab, 256)
	checkSums(t, pr, p, layout.Slab, streams)
}

func TestMillipedeRateMatchingConverges(t *testing.T) {
	// Throttle the channel so the stream is genuinely bandwidth-bound:
	// the controller must step the clock down from nominal and stay
	// within bounds (Section IV-F).
	p := testParams()
	p.RateMatch = true
	p.DFSIntervalCycles = 64
	p.ChannelHz = 150e6
	pr, res, streams := runSum(t, p, layout.Slab, 4096)
	checkSums(t, pr, p, layout.Slab, streams)
	if res.FinalHz >= p.ComputeHz {
		t.Errorf("rate matching never lowered the clock on a memory-bound stream (%.0f Hz)", res.FinalHz)
	}
	if res.FinalHz < p.DFSMinHz || res.FinalHz > p.DFSMaxHz {
		t.Errorf("final clock %.0f outside bounds", res.FinalHz)
	}
}

func TestMillipedeRateMatchingHoldsNominalWhenComputeBound(t *testing.T) {
	p := testParams()
	p.RateMatch = true
	p.DFSIntervalCycles = 64
	pr, res, streams := runSum(t, p, layout.Slab, 2048)
	checkSums(t, pr, p, layout.Slab, streams)
	if res.FinalHz > p.DFSMaxHz {
		t.Errorf("clock exceeded nominal: %.0f", res.FinalHz)
	}
}

func TestMillipedeMemoryBoundRuntime(t *testing.T) {
	// The checksum kernel is compute-light: runtime must be within a small
	// factor of the pure DRAM streaming time.
	p := testParams()
	_, res, _ := runSum(t, p, layout.Slab, 1024)
	rows := res.Prefetch.Prefetches
	streamCycles := float64(rows) * 128 // 2 KB / 16 B per channel cycle
	streamTime := streamCycles / p.ChannelHz * 1e12
	if float64(res.Time) > 8*streamTime {
		t.Errorf("runtime %d ps far above streaming bound %.0f ps", res.Time, streamTime)
	}
}

func TestMillipedeSteadyState(t *testing.T) {
	// Per-word cost must be stable as input grows (the paper's argument for
	// the 128 MB truncation).
	p := testParams()
	_, r1, _ := runSum(t, p, layout.Slab, 1024)
	_, r2, _ := runSum(t, p, layout.Slab, 2048)
	perWord1 := float64(r1.Time) / 1024
	perWord2 := float64(r2.Time) / 2048
	ratio := perWord2 / perWord1
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("per-word time not steady: %.3f vs %.3f (ratio %.2f)", perWord1, perWord2, ratio)
	}
}

func TestMillipedeTableIIIDefaultGeometry(t *testing.T) {
	p := arch.Default()
	l, _ := sumLaunch(t, p, layout.Slab, 64)
	pr, err := NewProcessor(p, energy.Default(), l)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pr.Run(sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cores.Instructions == 0 {
		t.Error("no instructions executed")
	}
}

func TestNewProcessorValidation(t *testing.T) {
	p := testParams()
	l, _ := sumLaunch(t, p, layout.Slab, 16)
	if _, err := NewProcessor(p, energy.Default(), Launch{Prog: nil, Streams: l.Streams}); err == nil {
		t.Error("nil program accepted")
	}
	bad := p
	bad.Corelets = 0
	if _, err := NewProcessor(bad, energy.Default(), l); err == nil {
		t.Error("bad params accepted")
	}
	if _, err := NewProcessor(p, energy.Params{}, l); err == nil {
		t.Error("bad energy params accepted")
	}
	short := l
	short.Streams = l.Streams[:3]
	if _, err := NewProcessor(p, energy.Default(), short); err == nil {
		t.Error("wrong stream count accepted")
	}
}
