// Package core assembles the Millipede processor — the paper's primary
// contribution (Section IV). A processor is 32 simple MIMD corelets sharing
// one row-oriented, flow-controlled prefetch buffer in front of a
// die-stacked DRAM channel, with optional coarse-grain compute-memory
// rate-matching driving the compute clock.
//
// The processor also doubles as the ablation points the paper evaluates:
// constructing it with FlowControl disabled yields Millipede-no-flow-control
// and RateMatch toggles the Section IV-F DFS controller. The plain SSMC
// baseline (cache-block prefetch into per-core L1 D-caches) lives in
// internal/ssmc.
package core

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/corelet"
	"repro/internal/datagen"
	"repro/internal/dfs"
	"repro/internal/energy"
	"repro/internal/isa"
	"repro/internal/layout"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/trace"
)

// Launch describes one kernel execution.
type Launch struct {
	Prog *isa.Program
	// Interleave selects the intra-row layout; Millipede uses slab
	// interleaving by default (wider columns, Section IV-C).
	Interleave layout.Interleave
	// Streams are the per-thread packed record streams (len == threads),
	// fully materialized. Leave nil and set Sources for streamed input.
	Streams [][]uint32
	// Sources are per-thread streaming generators (len == threads), used
	// when Streams is nil: the DRAM image is packed chunk-by-chunk through
	// a bounded buffer, so launch memory stays constant in the per-thread
	// record count.
	Sources []*datagen.Source
	// Args is the kernel argument block written to every corelet's local
	// memory at address 0 (the workload layer appends layout walk
	// parameters and constants).
	Args []uint32
	// Table is an optional second input operand placed after the streamed
	// region. It models the paper's Section III-D non-compact case (e.g.,
	// join's second table): accesses to it bypass the row prefetch buffer
	// and pay demand DRAM fetches, because the corelets can be near only
	// one large operand.
	Table []uint32
}

// StreamLen returns the per-thread input stream length in words, from
// whichever of Streams/Sources is set. It errors on an empty or ragged
// input, so the architecture models share one validation.
func (l Launch) StreamLen() (int, error) {
	if len(l.Streams) > 0 {
		n := len(l.Streams[0])
		for t, s := range l.Streams {
			if len(s) != n {
				return 0, fmt.Errorf("stream %d has %d words, stream 0 has %d", t, len(s), n)
			}
		}
		if n == 0 {
			return 0, fmt.Errorf("empty streams")
		}
		return n, nil
	}
	if len(l.Sources) == 0 {
		return 0, fmt.Errorf("launch has neither streams nor sources")
	}
	n := l.Sources[0].Words()
	for t, s := range l.Sources {
		if s.Words() != n {
			return 0, fmt.Errorf("source %d has %d words, source 0 has %d", t, s.Words(), n)
		}
	}
	if n == 0 {
		return 0, fmt.Errorf("empty sources")
	}
	return n, nil
}

// PackInput builds the flat DRAM image of the launch input for lay:
// materialized streams go through lay.Pack, Sources through lay.PackFrom's
// bounded-buffer path. Both produce identical bytes for identical data.
func (l Launch) PackInput(lay layout.Layout) ([]uint32, error) {
	if len(l.Streams) > 0 {
		return lay.Pack(l.Streams)
	}
	n, err := l.StreamLen()
	if err != nil {
		return nil, err
	}
	if len(l.Sources) != lay.Threads() {
		return nil, fmt.Errorf("layout: %d sources for %d threads", len(l.Sources), lay.Threads())
	}
	return lay.PackFrom(n, func(t int, buf []uint32) int { return l.Sources[t].Next(buf) })
}

// Result aggregates one run.
type Result struct {
	Time          sim.Time
	ComputeCycles uint64
	Cores         corelet.Stats
	Prefetch      prefetch.Stats
	DRAM          DRAMStats
	Mem           MemStats
	// Stack is the die-stacked capacity backend's counter block; zero (Mode
	// "") when the node runs the paper's pass-through machine.
	Stack   stack.Stats
	FinalHz float64
	Energy  energy.Breakdown
	// Metrics is the uniform registry snapshot taken at run end; it carries
	// every counter above plus per-channel and DFS detail under stable names.
	Metrics metrics.Snapshot
	// Timeline holds the cycle-sampled gauge series when EnableTimeline was
	// called before Run; nil otherwise.
	Timeline *metrics.Timeline
	// Allocs and AllocBytes count heap allocations made inside the run's
	// cycle loop (zero in steady state by design; see benchreport).
	Allocs     uint64
	AllocBytes uint64
	// SkippedEdges and SkipWindows report the quiescence fast-forward's
	// informational counters (results are bit-identical with skipping off).
	SkippedEdges uint64
	SkipWindows  uint64
}

// DRAMStats is re-exported memory-side stats (avoids leaking the dram
// package through the public facade).
type DRAMStats struct {
	RowHits, RowMisses uint64
	BytesRead          uint64
	Requests           uint64
}

// MemStats is re-exported memory-controller stats, aggregated across
// channels (MaxOccupancy is the max over channels).
type MemStats struct {
	StallCycles  uint64
	MaxOccupancy int
	Rejected     uint64
}

// RowMissRate returns misses / (hits + misses).
func (d DRAMStats) RowMissRate() float64 {
	t := d.RowHits + d.RowMisses
	if t == 0 {
		return 0
	}
	return float64(d.RowMisses) / float64(t)
}

// Processor is one Millipede processor plus its memory side.
type Processor struct {
	P       arch.Params
	EP      energy.Params
	node    *arch.Node
	lay     layout.Layout
	ownerOf func(addr uint32) (corelet, slot int)
	// cluster holds every corelet's hot state in one structure-of-arrays
	// image; its Tick sweeps live corelets in registration order, which keeps
	// shared-buffer access order — and therefore timing — identical to the
	// per-corelet object model.
	cluster   *corelet.Cluster
	buf       *prefetch.Buffer
	rate      *dfs.Controller
	tableBase uint32 // start of the optional non-compact table region
	ticks     uint64
	// lastStarved is DFS sampling state.
	lastStarved uint64
	// Software-barrier coordination (Section IV-C ablation).
	barWaiters []func()
	barTarget  int
	// dfsTrace records (cycle, Hz) at every controller decision when rate
	// matching is enabled, for convergence analysis.
	dfsTrace []DFSSample
	// reg holds lazy getter closures over the component stats; it is only
	// evaluated at result() time, never on the cycle path.
	reg      *metrics.Registry
	timeline *metrics.Timeline
	traceLog *trace.Log
}

// NewProcessor builds and loads a Millipede processor for one launch.
func NewProcessor(p arch.Params, ep energy.Params, l Launch) (*Processor, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := ep.Validate(); err != nil {
		return nil, err
	}
	if l.Prog == nil {
		return nil, fmt.Errorf("core: nil program")
	}
	if l.Interleave == layout.Split {
		return nil, fmt.Errorf("core: Millipede requires a row-shared interleaving (Slab or Word)")
	}
	lay := layout.Layout{
		Base:       0,
		RowBytes:   p.DRAM.RowBytes,
		Corelets:   p.Corelets,
		Contexts:   p.Contexts,
		Interleave: l.Interleave,
	}
	if err := lay.Validate(); err != nil {
		return nil, err
	}
	flat, err := l.PackInput(lay)
	if err != nil {
		return nil, err
	}
	tableBase := len(flat) * 4
	capacity := tableBase + (len(l.Table)*4/p.DRAM.RowBytes+1)*p.DRAM.RowBytes
	node, err := arch.NewNode(p, capacity)
	if err != nil {
		return nil, err
	}
	node.DRAM.LoadWords(0, flat)
	pr := &Processor{P: p, EP: ep, node: node, lay: lay, ownerOf: lay.OwnerFunc()}
	if len(l.Table) > 0 {
		node.DRAM.LoadWords(uint32(tableBase), l.Table)
		pr.tableBase = uint32(tableBase)
	}

	bcfg := prefetch.Config{
		Entries:     p.PrefetchEntries,
		Corelets:    p.Corelets,
		RowBytes:    p.DRAM.RowBytes,
		FlowControl: p.FlowControl,
		MaxWaiters:  p.Corelets * p.Contexts,
	}
	pr.buf, err = prefetch.New(bcfg, node.Port)
	if err != nil {
		return nil, err
	}

	read := func(addr uint32) uint32 { return node.DRAM.ReadWord(addr) }
	code, err := corelet.Decode(l.Prog, p.Latencies)
	if err != nil {
		return nil, err
	}
	ports := make([]corelet.GlobalPort, p.Corelets)
	for c := 0; c < p.Corelets; c++ {
		ports[c] = &port{pr: pr, corelet: c}
	}
	ccfg := corelet.Config{
		Corelets:   p.Corelets,
		Contexts:   p.Contexts,
		LocalBytes: p.LocalBytes,
		Latencies:  p.Latencies,
	}
	if node.Pool != nil {
		ccfg.Shards = node.Pool.Workers()
	}
	pr.cluster, err = corelet.NewCluster(ccfg, code, ports, read)
	if err != nil {
		return nil, err
	}
	if node.Pool != nil {
		pr.cluster.SetWorkers(node.Pool)
	}
	for c := 0; c < p.Corelets; c++ {
		for i, w := range l.Args {
			pr.cluster.WriteLocal(c, uint32(i*4), w)
		}
	}

	pr.barTarget = p.Corelets * p.Contexts
	pr.cluster.SetBarrier(pr.barrierArrive)

	if p.RateMatch {
		pr.rate, err = dfs.New(p.ComputeHz, p.DFSStepPct, p.DFSMinHz, p.DFSMaxHz)
		// Pre-size the decision trace so recording clock steps does not
		// allocate inside the cycle loop (it only grows past this for
		// pathologically oscillating runs).
		pr.dfsTrace = make([]DFSSample, 0, 64)
		if err != nil {
			return nil, err
		}
	}

	pr.reg = metrics.NewRegistry()
	pr.reg.Counter("core.cycles", func() uint64 { return pr.ticks })
	corelet.RegisterStats(pr.reg, "corelet", pr.coreStats)
	pr.buf.RegisterMetrics(pr.reg, "prefetch")
	node.Mem.RegisterMetrics(pr.reg)
	if node.Stack != nil {
		stack.RegisterMetrics(pr.reg, node.Stack)
	}
	if pr.rate != nil {
		pr.rate.RegisterMetrics(pr.reg, "dfs")
	}

	if err := node.AttachCompute(pr); err != nil {
		return nil, err
	}
	if err := pr.buf.Start(0, len(flat)*4); err != nil {
		return nil, err
	}
	return pr, nil
}

// port adapts the shared prefetch buffer to one corelet's GlobalPort,
// translating addresses into (corelet, slab-slot) pairs via the layout and
// asserting the kernel only touches its own slab.
type port struct {
	pr      *Processor
	corelet int
	// tableBlock is a one-line stream latch for the table region: demand
	// fetches are 64 B, and sequential scans reuse the latched block.
	tableBlock uint32
	tableValid bool
}

func (pt *port) Read(ctx int, addr uint32, ready func()) corelet.Status {
	if pt.pr.tableBase > 0 && addr >= pt.pr.tableBase {
		// Second-operand access (Section III-D's non-compact case): no row
		// prefetch, just a one-block stream latch in front of demand 64 B
		// DRAM fetches. The table is re-streamed on every pass — the
		// bandwidth cost no PNM architecture can hide.
		blk := addr &^ 63
		if pt.tableValid && pt.tableBlock == blk {
			return corelet.Done
		}
		ok := pt.pr.node.Port.Enqueue(mem.Request{Addr: blk, Bytes: 64,
			Done: func(int64, bool) {
				pt.tableBlock = blk
				pt.tableValid = true
				ready()
			}})
		if !ok {
			return corelet.Retry
		}
		return corelet.Pending
	}
	c, slot := pt.pr.ownerOf(addr)
	if c != pt.corelet {
		panic(fmt.Sprintf("core: corelet %d touched corelet %d's slab at %#x (kernel addressing bug)", pt.corelet, c, addr))
	}
	if pt.pr.buf.Access(c, slot, addr, ready) == prefetch.Ready {
		return corelet.Done
	}
	return corelet.Pending
}

// Tick advances every live corelet one compute cycle and runs the DFS
// controller at its sampling interval.
func (pr *Processor) Tick(now sim.Time) {
	pr.ticks++
	pr.cluster.Tick()
	pr.buf.Pump()
	if pr.rate != nil && pr.P.DFSIntervalCycles > 0 && pr.ticks%uint64(pr.P.DFSIntervalCycles) == 0 {
		// Section IV-F: the controller reacts to the leading corelet
		// finding the buffers empty (no filled-but-unconsumed rows: the
		// processor outruns memory, step the clock down) or full (memory
		// outruns the processor, step up toward nominal).
		occ := pr.buf.Occupancy()
		bs := pr.buf.Stats()
		starvedDelta := bs.Starved - pr.lastStarved
		pr.lastStarved = bs.Starved
		var starved, full uint64
		switch {
		case occ == 0 && starvedDelta > 0:
			// Buffers empty while corelets wait on fills: memory-bound.
			starved = 1
		case occ >= pr.P.PrefetchEntries-1:
			full = 1
		}
		hz := pr.rate.Update(starved, full)
		if n := len(pr.dfsTrace); n == 0 || pr.dfsTrace[n-1].Hz != hz {
			pr.dfsTrace = append(pr.dfsTrace, DFSSample{Cycle: pr.ticks, Hz: hz})
			if pr.traceLog != nil {
				pr.traceLog.Add(trace.Event{Cycle: pr.ticks, Corelet: -1, Context: -1,
					Kind: trace.DFSStep, Detail: fmt.Sprintf("%.0f MHz", hz/1e6)})
			}
		}
		if err := pr.node.Compute.SetPeriod(sim.PeriodFromHz(hz)); err != nil {
			panic(err) // unreachable: DFS bounds guarantee a valid period
		}
	}
	if pr.timeline != nil {
		pr.timeline.Tick(pr.ticks)
	}
}

// NextWork implements sim.NextWorker: the earliest future compute edge at
// which Tick could change state. The cluster's issue bound supplies the
// base; windows are clamped to the next DFS sampling tick and the next
// timeline sample so those observers run live (the DFS may retune the
// clock; the sampler records gauge values), keeping every skipped tick a
// provable no-op.
func (pr *Processor) NextWork(sim.Time) sim.Time {
	t := int64(pr.ticks)
	if pr.buf.PumpPending() > 0 && !pr.buf.PumpStalled() {
		// A bounced fetch may get through on the very next pump. When every
		// pending fetch faces a still-full channel queue the retries are
		// provable no-ops until the next channel work tick (which ends any
		// window), so a stalled pump does not pin the clock.
		return pr.node.Compute.TimeOfTick(uint64(t + 1))
	}
	w := int64(1<<63 - 1)
	if n := pr.cluster.NextWorkTicks(); n != corelet.NeverTicks {
		if n <= 1 {
			return pr.node.Compute.TimeOfTick(uint64(t + 1))
		}
		w = t + n
	}
	if pr.rate != nil && pr.P.DFSIntervalCycles > 0 {
		iv := int64(pr.P.DFSIntervalCycles)
		if next := t - t%iv + iv; next < w {
			w = next
		}
	}
	if pr.timeline != nil {
		ev := int64(pr.timeline.Every())
		if next := t - t%ev + ev; next < w {
			w = next
		}
	}
	if w == 1<<63-1 {
		return sim.Never
	}
	return pr.node.Compute.TimeOfTick(uint64(w))
}

// SkipTicks implements sim.NextWorker: replays n dead compute ticks —
// cycle counters, idle tallies, and the stalled pump's per-cycle reject
// bookkeeping (NextWork guarantees the DFS sample and timeline sample
// paths stay untouched in the window, and that a pump with a reachable
// queue pins the clock instead of skipping).
func (pr *Processor) SkipTicks(n int64) {
	pr.ticks += uint64(n)
	pr.cluster.SkipTicks(n)
	pr.buf.SkipPumpTicks(n)
}

// barrierArrive collects BAR arrivals and releases everyone when the last
// context arrives (kernels only barrier while all threads are live).
func (pr *Processor) barrierArrive(release func()) {
	pr.barWaiters = append(pr.barWaiters, release)
	if len(pr.barWaiters) >= pr.barTarget {
		ws := pr.barWaiters
		pr.barWaiters = nil
		for _, w := range ws {
			w()
		}
	}
}

// Halted reports whether every corelet has finished.
func (pr *Processor) Halted() bool { return pr.cluster.Halted() }

// Run executes to completion and returns aggregated results.
func (pr *Processor) Run(limit sim.Time) (Result, error) {
	t, err := pr.node.Run(limit)
	if err != nil {
		return Result{}, err
	}
	return pr.result(t), nil
}

// coreStats is the registry's getter for the "corelet.*" metrics and
// result()'s source for Cores.
func (pr *Processor) coreStats() corelet.Stats { return pr.cluster.Stats() }

func (pr *Processor) result(t sim.Time) Result {
	r := Result{Time: t, ComputeCycles: pr.ticks, Prefetch: pr.buf.Stats()}
	r.Cores = pr.coreStats()
	ds := pr.node.Mem.DRAMStats()
	r.DRAM = DRAMStats{RowHits: ds.RowHits, RowMisses: ds.RowMisses, BytesRead: ds.BytesRead, Requests: ds.Requests}
	cs := pr.node.Mem.CtlStats()
	r.Mem = MemStats{StallCycles: cs.StallCycles, MaxOccupancy: cs.MaxOccupancy, Rejected: cs.Rejected}
	if pr.node.Stack != nil {
		r.Stack = pr.node.Stack.Stats()
	}
	r.FinalHz = pr.P.ComputeHz
	if pr.rate != nil {
		r.FinalHz = pr.rate.Hz()
	}
	r.Energy = pr.energy(r, t)
	r.Metrics = pr.reg.Snapshot()
	r.Timeline = pr.timeline
	r.Allocs, r.AllocBytes = pr.node.RunAllocs, pr.node.RunBytes
	r.SkippedEdges, r.SkipWindows = pr.node.RunSkippedEdges, pr.node.RunSkipWindows
	return r
}

// energy converts the run's event counts into the Figure 4 breakdown.
// Millipede core energy: per-instruction execute + per-core instruction
// fetch (MIMD pays fetch per corelet), local-memory words, prefetch-buffer
// slice reads, and idle dynamic from imperfect clock gating.
func (pr *Processor) energy(r Result, t sim.Time) energy.Breakdown {
	ep := pr.EP
	var b energy.Breakdown
	b.CorePJ = float64(r.Cores.Instructions)*(ep.InstPJ+ep.IFetchMIMDPJ) +
		float64(r.Cores.LocalAccess)*ep.LocalPJ +
		float64(r.Cores.GlobalReads)*ep.LocalPJ +
		float64(r.Cores.IdleCycles)*ep.IdlePJ
	ds := pr.node.Mem.DRAMStats()
	b.DRAMPJ = ep.DRAM(ds.RowMisses, ds.BytesRead)
	b.LeakPJ = ep.Leakage(pr.P.Corelets, float64(t)/1e12)
	return b
}

// InjectMemoryJitter enables deterministic DRAM completion jitter (fault
// injection). Call before Run.
func (pr *Processor) InjectMemoryJitter(max int64, seed uint64) {
	pr.node.InjectMemoryJitter(max, seed)
}

// ReadState reads a word of a corelet's local memory after the run — the
// host-side access the final Reduce uses (Section IV-D).
func (pr *Processor) ReadState(coreletID int, addr uint32) uint32 {
	return pr.cluster.ReadLocal(coreletID, addr)
}

// PrefetchBuffer exposes the shared row buffer, so invariant tests can check
// its flow-control state directly after a run.
func (pr *Processor) PrefetchBuffer() *prefetch.Buffer { return pr.buf }

// Layout returns the layout used for the input region.
func (pr *Processor) Layout() layout.Layout { return pr.lay }

// TableBase returns the byte address of the optional table region.
func (pr *Processor) TableBase() uint32 { return pr.tableBase }

// DFSSample is one rate-matching controller decision.
type DFSSample struct {
	Cycle uint64
	Hz    float64
}

// DFSTrace returns the controller's clock trajectory (only frequency
// changes are recorded). Empty unless RateMatch was enabled.
func (pr *Processor) DFSTrace() []DFSSample { return pr.dfsTrace }

// EnableTimeline samples observability gauges every everyCycles compute
// cycles into a timeline returned in Result.Timeline. Call before Run. The
// sampler reads state the cycle loop already maintains, so it does not
// perturb timing.
func (pr *Processor) EnableTimeline(everyCycles uint64) {
	t := metrics.NewTimeline(everyCycles)
	t.Probe("prefetch-occupancy", func() float64 { return float64(pr.buf.Occupancy()) })
	t.Probe("row-hit-rate", func() float64 {
		ds := pr.node.Mem.DRAMStats()
		total := ds.RowHits + ds.RowMisses
		if total == 0 {
			return 0
		}
		return float64(ds.RowHits) / float64(total)
	})
	t.Probe("queue-depth", func() float64 { return float64(pr.node.Mem.Pending()) })
	t.Probe("clock-mhz", func() float64 {
		if pr.rate != nil {
			return pr.rate.Hz() / 1e6
		}
		return pr.P.ComputeHz / 1e6
	})
	pr.timeline = t
}

// EnableTrace records the instruction stream of one corelet and the shared
// prefetch buffer's events into l. Call before Run.
func (pr *Processor) EnableTrace(l *trace.Log, coreletID int) {
	// A traced run replays every edge: the fabric tracer fires on rejected
	// enqueues, which the quiescence fast-forward tallies without events.
	pr.node.Engine.SetSkip(false)
	pr.traceLog = l
	if coreletID < 0 || coreletID >= pr.cluster.Corelets() {
		coreletID = 0
	}
	pr.cluster.SetTracer(coreletID, func(cycle int64, ctx, pc int, in isa.Inst) {
		l.Add(trace.Event{Cycle: uint64(cycle), Corelet: coreletID, Context: ctx,
			Kind: trace.Exec, PC: pc, Detail: in.String()})
	})
	kinds := map[string]trace.Kind{
		"prefetch": trace.Prefetch, "flow-block": trace.FlowBlock,
		"starve": trace.Starve, "evict": trace.Evict,
	}
	pr.buf.SetTracer(func(kind string, row int64) {
		l.Add(trace.Event{Cycle: pr.ticks, Corelet: -1, Context: -1,
			Kind: kinds[kind], Detail: fmt.Sprintf("row %d", row)})
	})
	memKinds := [...]trace.Kind{
		mem.TraceIssue: trace.MemIssue, mem.TraceReject: trace.MemReject,
		mem.TraceRowOpen: trace.RowOpen, mem.TraceRowClose: trace.RowClose,
	}
	pr.node.Mem.SetTracer(func(ch int, ev mem.TraceEvent, addr uint32, bank int, row int64) {
		var detail string
		switch ev {
		case mem.TraceIssue, mem.TraceReject:
			detail = fmt.Sprintf("ch %d addr %#x", ch, addr)
		default:
			detail = fmt.Sprintf("ch %d bank %d row %d", ch, bank, row)
		}
		l.Add(trace.Event{Cycle: pr.ticks, Corelet: -1, Context: -1,
			Kind: memKinds[ev], Detail: detail})
	})
}
