// Package kernels contains the eight BMLA benchmark kernels of Table II,
// written in the repository's assembly dialect, plus the launch conventions
// (argument block, state addressing) that make one kernel binary run
// unchanged on every architecture model.
//
// Layout portability: a kernel never hard-codes the data layout. The host
// passes the stream-walk parameters (layout.Walk) and the live-state
// addressing parameters in the argument block; the same code then walks
// slab-interleaved rows on Millipede, contiguous splits on SSMC and the
// multicore, and word-interleaved rows on the GPGPU, and addresses its
// per-thread state in corelet-local SRAM (stride 4) or in banked shared
// memory (stride 128, so lane i stays in bank i — Section III-E).
//
// The kernels are generated Go strings: fixed-dimension loops are unrolled
// exactly as a tuned CUDA kernel would be, which is what gives each
// benchmark its Table IV character (instructions per input word, branch
// frequency, data-dependent divergence).
package kernels

import (
	"fmt"
	"strings"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/layout"
)

// Argument-block word indices (local/shared memory address = index*4).
const (
	ArgStreamBase  = 0  // byte address of the input region
	ArgCoreletMult = 1  // walk: corelet contribution to the first-word address
	ArgContextMult = 2  // walk: context contribution
	ArgStride      = 3  // walk: byte step between stream words
	ArgRowFix      = 4  // walk: extra byte step at chunk boundaries (RowStep - Stride)
	ArgChunkWords  = 5  // walk: words per chunk
	ArgRecords     = 6  // records per thread
	ArgStateShift  = 7  // log2 of the state element stride in bytes (2 local, 7 shared)
	ArgStateCMult  = 8  // state: corelet contribution to the state base
	ArgStateXMult  = 9  // state: context contribution
	ArgStateBase   = 10 // state: byte address of thread-state partitions
	ArgConstBase   = 11 // byte address of the read-only constants area
	ArgK0          = 12 // kernel-specific scalars
	ArgK1          = 13
	ArgK2          = 14
	ArgK3          = 15
	ArgWords       = 16
)

// Register conventions established by the prologue. Kernels may use
// r11..r23 freely.
//
//	r1  current stream word address     r8  records remaining
//	r4  stride                          r9  thread state base (bytes)
//	r5  row fixup (RowStep - Stride)    r10 constants base (bytes)
//	r6  chunk words                     r24 state element stride (1<<shift)
//	r7  chunk countdown                 r25 state shift
//	r26..r28 K0..K2                     r2, r3 prologue scratch
type conventions struct{} // documentation anchor

// Prologue returns the common kernel entry: it computes the thread's first
// stream address and state base from the argument block and CSRs, and jumps
// to "theend" (which every kernel must define before halt) when the thread
// has no records.
func Prologue() string {
	return `
	lw   r1, 0(r0)          ; stream base
	csrr r2, coreletid
	lw   r3, 4(r0)
	mul  r2, r2, r3
	add  r1, r1, r2
	csrr r2, contextid
	lw   r3, 8(r0)
	mul  r2, r2, r3
	add  r1, r1, r2
	lw   r4, 12(r0)         ; stride
	lw   r5, 16(r0)         ; row fixup
	lw   r6, 20(r0)         ; chunk words
	mv   r7, r6
	lw   r8, 24(r0)         ; records per thread
	lw   r25, 28(r0)        ; state shift
	lw   r9, 40(r0)         ; state base0
	csrr r2, coreletid
	lw   r3, 32(r0)
	mul  r2, r2, r3
	add  r9, r9, r2
	csrr r2, contextid
	lw   r3, 36(r0)
	mul  r2, r2, r3
	add  r9, r9, r2
	lw   r10, 44(r0)        ; const base
	li   r2, 1
	sll  r24, r2, r25       ; state element stride
	lw   r26, 48(r0)        ; K0
	lw   r27, 52(r0)        ; K1
	lw   r28, 56(r0)        ; K2
	beqz r8, theend
`
}

// NextWord emits the stream load: the lds instruction reads the next input
// word and advances the hardware stream walker (address += stride, with the
// row fixup at chunk boundaries) in the load unit, so streaming costs one
// instruction per word on every architecture.
func NextWord(dst string) string {
	return fmt.Sprintf("\tlds  %s\n", dst)
}

// Kernel bundles a benchmark's code and its state/constant geometry.
type Kernel struct {
	Name        string
	Source      string
	Prog        *isa.Program
	RecordWords int
	StateWords  int      // per-thread live state words
	Consts      []uint32 // read-only constants placed at ArgConstBase
	// K0..K3 scalar arguments.
	K [4]uint32
}

func build(name, body string, recordWords, stateWords int, consts []uint32, k [4]uint32) *Kernel {
	src := Prologue() + body
	return &Kernel{
		Name:        name,
		Source:      src,
		Prog:        asm.MustAssemble(name, src),
		RecordWords: recordWords,
		StateWords:  stateWords,
		Consts:      consts,
		K:           k,
	}
}

// StateLayout describes where thread state lives in local/shared memory.
type StateLayout struct {
	Shift       int    // log2 element stride in bytes
	CoreletMult uint32 // byte contribution of the corelet/lane index
	ContextMult uint32 // byte contribution of the context/warp index
	Base0       uint32 // byte address of the first partition
	ConstBase   uint32 // byte address of constants
}

// LocalState lays out args + constants + per-context state partitions in a
// corelet's private local memory (Millipede, SSMC, multicore): element
// stride 4, contexts side by side, corelets independent.
func LocalState(k *Kernel, localBytes, contexts int) (StateLayout, error) {
	constBase := ArgWords * 4
	base0 := constBase + len(k.Consts)*4
	need := base0 + contexts*k.StateWords*4
	if need > localBytes {
		return StateLayout{}, fmt.Errorf("kernels: %s needs %d B local state, have %d", k.Name, need, localBytes)
	}
	return StateLayout{
		Shift:       2,
		CoreletMult: 0,
		ContextMult: uint32(k.StateWords * 4),
		Base0:       uint32(base0),
		ConstBase:   uint32(constBase),
	}, nil
}

// SharedState lays out args + constants + per-thread state in a GPGPU SM's
// banked shared memory: the element stride is one full lane row (lanes x
// 4 B; 128 bytes for the Table III SM) so that lane i's state always lives
// in bank i mod 32, giving conflict-free irregular access (Section III-E).
// Base0 is rounded to the lane-row boundary to keep the lane->bank
// identity. The lane count must be a power of two so the stride is a shift.
func SharedState(k *Kernel, sharedBytes, lanes, warps int) (StateLayout, error) {
	if lanes <= 0 || lanes&(lanes-1) != 0 {
		return StateLayout{}, fmt.Errorf("kernels: lane count %d not a power of two", lanes)
	}
	elem := lanes * 4
	shift := 0
	for 1<<shift < elem {
		shift++
	}
	constBase := ArgWords * 4
	base0 := constBase + len(k.Consts)*4
	if r := base0 % elem; r != 0 {
		base0 += elem - r
	}
	need := base0 + warps*k.StateWords*elem
	if need > sharedBytes {
		return StateLayout{}, fmt.Errorf("kernels: %s needs %d B shared state, have %d", k.Name, need, sharedBytes)
	}
	return StateLayout{
		Shift:       shift,
		CoreletMult: 4, // lane i -> bank i mod 32
		ContextMult: uint32(k.StateWords * elem),
		Base0:       uint32(base0),
		ConstBase:   uint32(constBase),
	}, nil
}

// Args assembles the full argument block for one launch.
func Args(k *Kernel, w layout.Walk, sl StateLayout, recordsPerThread int) []uint32 {
	a := make([]uint32, ArgWords)
	a[ArgStreamBase] = 0
	a[ArgCoreletMult] = uint32(w.CoreletMult)
	a[ArgContextMult] = uint32(w.ContextMult)
	a[ArgStride] = uint32(w.Stride)
	a[ArgRowFix] = uint32(w.RowStep - w.Stride)
	a[ArgChunkWords] = uint32(w.ChunkWords)
	a[ArgRecords] = uint32(recordsPerThread)
	a[ArgStateShift] = uint32(sl.Shift)
	a[ArgStateCMult] = sl.CoreletMult
	a[ArgStateXMult] = sl.ContextMult
	a[ArgStateBase] = sl.Base0
	a[ArgConstBase] = sl.ConstBase
	a[ArgK0] = k.K[0]
	a[ArgK1] = k.K[1]
	a[ArgK2] = k.K[2]
	return a
}

// ArgsAndConsts returns the argument block followed by the constants, i.e.
// the full image to write at local/shared address 0 before launch.
func ArgsAndConsts(k *Kernel, w layout.Walk, sl StateLayout, recordsPerThread int) []uint32 {
	a := Args(k, w, sl, recordsPerThread)
	return append(a, k.Consts...)
}

// --- Benchmark kernels ----------------------------------------------------

// Geometry shared with the workload generators.
const (
	CountBins    = 16 // rating>>4 over [0,256)
	RatingMax    = 256
	CountThresh  = 128 // data-dependent filter: the paper's ~70/30 split
	SampleProb16 = 6   // sample if 4-bit hash < 6 (~37%)
	SampleRing   = 4   // ring slots per bin
	NBDims       = 8
	NBValues     = 8 // per-dimension value range
	NBClasses    = 2
	NBYearThresh = 2000
	NBYearMax    = 2010
	NBYearMin    = 1980
	ClassifyDims = 8
	ClassifyK    = 8
	KMeansDims   = 8
	KMeansK      = 8
	PCADims      = 12
	GDADims      = 14
	GDAClasses   = 2
	hashConst    = 0x9E3779B1
)

// Count is Table II's aggregation "Count": ratings are split by a
// data-dependent threshold (the paper's ~70/30 branch) into two separate
// histograms — the two-sided divergence that makes SIMD/SIMT execution
// inefficient on BMLAs (Section III). State: 2 x CountBins counters.
func Count() *Kernel {
	body := `
loop:
` + NextWord("r11") + `
	srli r12, r11, 4        ; bin
	blt  r11, r26, lowband  ; data-dependent two-sided branch (~70/30)
	sll  r12, r12, r25
	add  r12, r12, r9
	lw   r13, 0(r12)
	addi r13, r13, 1
	sw   r13, 0(r12)
	j    next
lowband:
	; the cold band additionally tracks the running value sum, so the two
	; paths do different amounts of work -- the record-processing
	; variability that makes MIMD cores stray (Section IV-C)
	addi r12, r12, 16       ; low-band histogram region
	sll  r12, r12, r25
	add  r12, r12, r9
	lw   r13, 0(r12)
	addi r13, r13, 1
	sw   r13, 0(r12)
	addi r12, r12, 0
	li   r14, 32
	sll  r14, r14, r25
	add  r14, r14, r9       ; low-band sum cell (index 32)
	lw   r13, 0(r14)
	add  r13, r13, r11
	sw   r13, 0(r14)
next:
	addi r8, r8, -1
	bnez r8, loop
theend:
	halt
`
	return build("count", body, 1, 2*CountBins+1, nil, [4]uint32{CountThresh})
}

// CountBarrier is Count with a software barrier every interval records —
// the paper's Section IV-C ablation: record-granularity barriers push MIMD
// toward SIMD-like lockstep (interval 1), while coarse Map-task-granularity
// barriers are too infrequent to prevent premature evictions (large
// intervals behave like Millipede-no-flow-control). K1 carries the
// interval; the live state and results are identical to Count.
func CountBarrier(interval int) *Kernel {
	if interval <= 0 {
		panic("kernels: barrier interval must be positive")
	}
	body := `
	mv   r29, r27           ; barrier countdown (K1)
loop:
` + NextWord("r11") + `
	srli r12, r11, 4        ; bin
	blt  r11, r26, lowband
	sll  r12, r12, r25
	add  r12, r12, r9
	lw   r13, 0(r12)
	addi r13, r13, 1
	sw   r13, 0(r12)
	j    next
lowband:
	addi r12, r12, 16
	sll  r12, r12, r25
	add  r12, r12, r9
	lw   r13, 0(r12)
	addi r13, r13, 1
	sw   r13, 0(r12)
	li   r14, 32
	sll  r14, r14, r25
	add  r14, r14, r9
	lw   r13, 0(r14)
	add  r13, r13, r11
	sw   r13, 0(r14)
next:
	addi r29, r29, -1
	bnez r29, nobar
	bar
	mv   r29, r27
nobar:
	addi r8, r8, -1
	bnez r8, loop
theend:
	halt
`
	k := build("count-barrier", body, 1, 2*CountBins+1, nil,
		[4]uint32{CountThresh, uint32(interval)})
	return k
}

// Sample is "Sample Selection": rare (cold-band) ratings are kept in small
// per-bin rings while popular ones are only counted — the keep-the-tail
// sampling common in analytics pipelines. The band branch is data-dependent
// and two-sided with asymmetric work. State per bin: count + SampleRing
// elements, plus a hot-band count region.
func Sample() *Kernel {
	body := `
loop:
` + NextWord("r11") + `	blt  r11, r26, keep     ; cold band: keep (~30%, bursty)
	srli r13, r11, 4
	addi r13, r13, 80       ; hot-band count region
	sll  r13, r13, r25
	add  r13, r13, r9
	lw   r15, 0(r13)
	addi r15, r15, 1
	sw   r15, 0(r13)
	j    next
keep:
	srli r13, r11, 4        ; bin
	slli r14, r13, 2
	add  r14, r14, r13      ; bin * 5 (count + ring)
	sll  r14, r14, r25
	add  r14, r14, r9
	lw   r15, 0(r14)
	addi r15, r15, 1
	sw   r15, 0(r14)
	addi r16, r15, -1
	rem  r16, r16, r27      ; ring slot
	addi r16, r16, 1
	sll  r16, r16, r25
	add  r16, r16, r14
	sw   r11, 0(r16)
next:
	addi r8, r8, -1
	bnez r8, loop
theend:
	halt
`
	return build("sample", body, 1, CountBins*(1+SampleRing)+CountBins, nil,
		[4]uint32{CountThresh, SampleRing})
}

// Variance is "Statistics – variance": per-bin count, sum, sum of squares.
func Variance() *Kernel {
	body := `
loop:
` + NextWord("r11") + `
	srli r12, r11, 4
	slli r13, r12, 1
	add  r13, r13, r12      ; bin*3
	sll  r13, r13, r25
	add  r13, r13, r9
	lw   r14, 0(r13)
	addi r14, r14, 1
	sw   r14, 0(r13)        ; count++
	add  r13, r13, r24
	lw   r14, 0(r13)
	add  r14, r14, r11
	sw   r14, 0(r13)        ; sum += x
	add  r13, r13, r24
	lw   r14, 0(r13)
	mul  r15, r11, r11
	add  r14, r14, r15
	sw   r14, 0(r13)        ; sumsq += x*x
	addi r8, r8, -1
	bnez r8, loop
theend:
	halt
`
	return build("variance", body, 1, CountBins*3, nil, nil2())
}

func nil2() [4]uint32 { return [4]uint32{} }

// NBayes is Table I's Naive Bayes walk-through: a data-dependent class
// branch on the year, then per-dimension indirect conditional-probability
// increments. State: Cprob[NBDims][NBValues][NBClasses] ++ classCount[2].
func NBayes() *Kernel {
	var b strings.Builder
	b.WriteString("\nloop:\n")
	b.WriteString(NextWord("r11")) // year
	b.WriteString(fmt.Sprintf(`	li   r12, 0
	ble  r11, r26, cls0     ; class = year > threshold (data-dependent)
	li   r12, 1
cls0:
`))
	for d := 0; d < NBDims; d++ {
		b.WriteString(NextWord("r13"))
		b.WriteString(fmt.Sprintf(`	slli r14, r13, 1
	add  r14, r14, r12      ; x*2 + class
	addi r14, r14, %d
	sll  r14, r14, r25
	add  r14, r14, r9
	lw   r15, 0(r14)
	addi r15, r15, 1
	sw   r15, 0(r14)
`, d*NBValues*NBClasses))
	}
	b.WriteString(fmt.Sprintf(`	addi r14, r12, %d
	sll  r14, r14, r25
	add  r14, r14, r9
	lw   r15, 0(r14)
	addi r15, r15, 1
	sw   r15, 0(r14)        ; classCount[class]++
	addi r8, r8, -1
	bnez r8, loop
theend:
	halt
`, NBDims*NBValues*NBClasses))
	state := NBDims*NBValues*NBClasses + NBClasses
	return build("nbayes", b.String(), 1+NBDims, state, nil, [4]uint32{NBYearThresh})
}

// Classify is "supervised classification via Euclidean distance": assign
// each point to the nearest of K constant centroids and count assignments.
// The centroid coordinates are read-only constants; the per-centroid
// distance code is fully unrolled, leaving only the data-dependent
// best-so-far branches (the paper's low branch frequency, high insts/word).
func Classify(centroids [][]float32) *Kernel {
	if len(centroids) != ClassifyK || len(centroids[0]) != ClassifyDims {
		panic("kernels: classify centroids must be KxDims")
	}
	var b strings.Builder
	b.WriteString("\nloop:\n")
	for d := 0; d < ClassifyDims; d++ {
		b.WriteString(NextWord(fmt.Sprintf("r%d", 11+d))) // r11..r18
	}
	b.WriteString("	li   r19, 0\n	lif  r20, 3.0e38\n")
	for c := 0; c < ClassifyK; c++ {
		b.WriteString("	li   r21, 0\n")
		for d := 0; d < ClassifyDims; d++ {
			b.WriteString(fmt.Sprintf(`	lw   r22, %d(r10)
	fsub r22, r%d, r22
	fmul r22, r22, r22
	fadd r21, r21, r22
`, (c*ClassifyDims+d)*4, 11+d))
		}
		b.WriteString(fmt.Sprintf(`	flt  r22, r21, r20
	beqz r22, nb%d          ; data-dependent best-update
	mv   r20, r21
	li   r19, %d
nb%d:
`, c, c, c))
	}
	b.WriteString(`	sll  r14, r19, r25
	add  r14, r14, r9
	lw   r15, 0(r14)
	addi r15, r15, 1
	sw   r15, 0(r14)        ; count[best]++
	addi r8, r8, -1
	bnez r8, loop
theend:
	halt
`)
	return build("classify", b.String(), ClassifyDims, ClassifyK, packFloats(centroids), nil2())
}

// KMeans is one iteration of unsupervised k-means clustering: nearest
// centroid, then accumulate the point into that centroid's running sum.
// State: counts[K] then sums[K][Dims].
func KMeans(centroids [][]float32) *Kernel {
	if len(centroids) != KMeansK || len(centroids[0]) != KMeansDims {
		panic("kernels: kmeans centroids must be KxDims")
	}
	var b strings.Builder
	b.WriteString("\nloop:\n")
	for d := 0; d < KMeansDims; d++ {
		b.WriteString(NextWord(fmt.Sprintf("r%d", 11+d)))
	}
	b.WriteString("	li   r19, 0\n	lif  r20, 3.0e38\n")
	for c := 0; c < KMeansK; c++ {
		b.WriteString("	li   r21, 0\n")
		for d := 0; d < KMeansDims; d++ {
			b.WriteString(fmt.Sprintf(`	lw   r22, %d(r10)
	fsub r22, r%d, r22
	fmul r22, r22, r22
	fadd r21, r21, r22
`, (c*KMeansDims+d)*4, 11+d))
		}
		b.WriteString(fmt.Sprintf(`	flt  r22, r21, r20
	beqz r22, nb%d
	mv   r20, r21
	li   r19, %d
nb%d:
`, c, c, c))
	}
	// count[best]++, then sums[best][d] += x[d]. The walker uses r21/r22:
	// r11..r18 still hold the record's coordinates.
	b.WriteString(fmt.Sprintf(`	sll  r21, r19, r25
	add  r21, r21, r9
	lw   r22, 0(r21)
	addi r22, r22, 1
	sw   r22, 0(r21)
	slli r21, r19, 3        ; best * Dims
	addi r21, r21, %d       ; + counts area
	sll  r21, r21, r25
	add  r21, r21, r9
`, KMeansK))
	for d := 0; d < KMeansDims; d++ {
		b.WriteString(fmt.Sprintf(`	lw   r22, 0(r21)
	fadd r22, r22, r%d
	sw   r22, 0(r21)
	add  r21, r21, r24
`, 11+d))
	}
	b.WriteString(`	addi r8, r8, -1
	bnez r8, loop
theend:
	halt
`)
	return build("kmeans", b.String(), KMeansDims, KMeansK+KMeansK*KMeansDims,
		packFloats(centroids), nil2())
}

// PCA accumulates the mean vector and the full second-moment matrix of
// 12-dimensional points (dimensionality reduction's data pass). State:
// mean[D], cov[D][D], scratch[D] (the current record, kept in state so the
// inner product loop can re-read coordinates; after the run it holds the
// thread's last record, which the golden reference reproduces).
func PCA() *Kernel {
	d := PCADims
	covBase := d
	scratchBase := d + d*d
	var b strings.Builder
	b.WriteString(fmt.Sprintf(`
loop:
	mv   r14, r9            ; mean walker
	li   r2, %d
	sll  r2, r2, r25
	add  r15, r9, r2        ; scratch walker
	li   r13, %d
dl:
%s	lw   r16, 0(r14)
	fadd r16, r16, r11
	sw   r16, 0(r14)
	add  r14, r14, r24
	sw   r11, 0(r15)
	add  r15, r15, r24
	addi r13, r13, -1
	bnez r13, dl
	; second-moment accumulation: cov[i][j] += x[i]*x[j]
	li   r2, %d
	sll  r2, r2, r25
	add  r14, r9, r2        ; cov walker
	li   r2, %d
	sll  r2, r2, r25
	add  r17, r9, r2        ; xi walker
	li   r13, %d            ; i counter
il:
	lw   r16, 0(r17)        ; xi
	add  r17, r17, r24
	li   r2, %d
	sll  r2, r2, r25
	add  r18, r9, r2        ; xj walker
`, scratchBase, d, NextWord("r11"), covBase, scratchBase, d, scratchBase))
	for j := 0; j < d; j++ {
		b.WriteString(`	lw   r19, 0(r18)
	add  r18, r18, r24
	fmul r19, r19, r16
	lw   r20, 0(r14)
	fadd r20, r20, r19
	sw   r20, 0(r14)
	add  r14, r14, r24
`)
	}
	b.WriteString(`	addi r13, r13, -1
	bnez r13, il
	addi r8, r8, -1
	bnez r8, loop
theend:
	halt
`)
	return build("pca", b.String(), d, d+d*d+d, nil, nil2())
}

// GDA is supervised classification over continuous features (Gaussian
// discriminant analysis): per-class counts and running means, plus a pooled
// covariance of running-mean-centered coordinates. The per-class mean
// update is written as the natural if/else over the label — the
// "if-then-else constructs" alternative the paper discusses for Table I —
// which makes the class branch two-sided with a full per-dimension body on
// each side (and, with temporally clustered training labels, a source of
// cross-core work skew). State: counts[2], means[2][D], cov[D][D],
// scratch[D].
func GDA() *Kernel {
	d := GDADims
	meanBase := GDAClasses
	covBase := meanBase + GDAClasses*d
	scratchBase := covBase + d*d
	var b strings.Builder
	b.WriteString("\nloop:\n")
	b.WriteString(NextWord("r11")) // label
	b.WriteString(fmt.Sprintf(`	sll  r14, r11, r25
	add  r14, r14, r9
	lw   r15, 0(r14)
	addi r15, r15, 1
	sw   r15, 0(r14)        ; count[label]++
	cvtif r23, r15          ; new count as float
	li   r2, %d
	sll  r2, r2, r25
	add  r15, r9, r2        ; scratch walker
	bnez r11, class1        ; two-sided per-class mean update
	li   r12, %d
	sll  r12, r12, r25
	add  r12, r12, r9       ; class-0 mean walker
	li   r13, %d
d0:
%s	lw   r16, 0(r12)
	fadd r16, r16, r11
	sw   r16, 0(r12)
	fdiv r17, r16, r23
	fsub r17, r11, r17
	sw   r17, 0(r15)
	add  r12, r12, r24
	add  r15, r15, r24
	addi r13, r13, -1
	bnez r13, d0
	j    cov
class1:
	li   r12, %d
	sll  r12, r12, r25
	add  r12, r12, r9       ; class-1 mean walker
	li   r13, %d
d1:
%s	lw   r16, 0(r12)
	fadd r16, r16, r11
	sw   r16, 0(r12)
	fdiv r17, r16, r23
	fsub r17, r11, r17
	sw   r17, 0(r15)
	add  r12, r12, r24
	add  r15, r15, r24
	addi r13, r13, -1
	bnez r13, d1
cov:
	li   r2, %d
	sll  r2, r2, r25
	add  r14, r9, r2        ; cov walker
	li   r2, %d
	sll  r2, r2, r25
	add  r17, r9, r2        ; xi walker
	li   r13, %d
il:
	lw   r16, 0(r17)
	add  r17, r17, r24
	li   r2, %d
	sll  r2, r2, r25
	add  r18, r9, r2        ; xj walker
`, scratchBase, meanBase, d, NextWord("r11"), meanBase+d, d, NextWord("r11"),
		covBase, scratchBase, d, scratchBase))
	for j := 0; j < d; j++ {
		b.WriteString(`	lw   r19, 0(r18)
	add  r18, r18, r24
	fmul r19, r19, r16
	lw   r20, 0(r14)
	fadd r20, r20, r19
	sw   r20, 0(r14)
	add  r14, r14, r24
`)
	}
	b.WriteString(`	addi r13, r13, -1
	bnez r13, il
	addi r8, r8, -1
	bnez r8, loop
theend:
	halt
`)
	state := GDAClasses + GDAClasses*d + d*d + d
	return build("gda", b.String(), 1+d, state, nil, nil2())
}

// Join is the Section III-D anti-benchmark: an unindexed join of the input
// stream against a second table that exceeds the corelet-local memory. For
// every input key the kernel scans the whole table counting matches, so the
// second operand is re-read at high rate through demand fetches — the
// "not compact" case whose bandwidth cost no PNM architecture can hide.
// K0 = table words; K2 (via args) is unused; the table's byte address
// arrives in K1 at launch. State: match count + probe count.
func Join(tableWords int) *Kernel {
	if tableWords <= 0 {
		panic("kernels: table words must be positive")
	}
	body := `
loop:
` + NextWord("r11") + `
	lw   r12, 52(r0)        ; table base (K1, patched at launch)
	lw   r13, 48(r0)        ; table words (K0)
tl:
	ldg  r14, 0(r12)
	bne  r14, r11, nomatch
	lw   r15, 0(r9)
	addi r15, r15, 1
	sw   r15, 0(r9)         ; matches++
nomatch:
	addi r12, r12, 4
	addi r13, r13, -1
	bnez r13, tl
	add  r16, r9, r24       ; probes++ (state element 1)
	lw   r15, 0(r16)
	addi r15, r15, 1
	sw   r15, 0(r16)
	addi r8, r8, -1
	bnez r8, loop
theend:
	halt
`
	return build("join", body, 1, 2, nil, [4]uint32{uint32(tableWords)})
}

func packFloats(m [][]float32) []uint32 {
	var out []uint32
	for _, row := range m {
		for _, v := range row {
			out = append(out, isa.Bits(v))
		}
	}
	return out
}
