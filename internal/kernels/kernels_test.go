package kernels

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/isa"
	"repro/internal/layout"
)

func allKernels() []*Kernel {
	r := datagen.NewRNG(1)
	cCent := datagen.Centers(r, ClassifyK, ClassifyDims)
	kCent := datagen.Centers(r, KMeansK, KMeansDims)
	return []*Kernel{
		Count(), Sample(), Variance(), NBayes(),
		Classify(cCent), KMeans(kCent), PCA(), GDA(),
	}
}

func TestAllKernelsAssemble(t *testing.T) {
	for _, k := range allKernels() {
		if k.Prog == nil || len(k.Prog.Insts) == 0 {
			t.Errorf("%s: empty program", k.Name)
		}
		if k.Prog.CodeBytes() > 4096 {
			t.Errorf("%s: code %d B exceeds the paper's 4 KB I-cache", k.Name, k.Prog.CodeBytes())
		}
		if enc := isa.EncodedBytes(k.Prog); enc > 4096 {
			t.Errorf("%s: encoded code %d B exceeds the 4 KB broadcast budget", k.Name, enc)
		}
		if k.RecordWords <= 0 || k.StateWords <= 0 {
			t.Errorf("%s: bad geometry %d/%d", k.Name, k.RecordWords, k.StateWords)
		}
	}
}

func TestKernelsHaveDataDependentBranches(t *testing.T) {
	// Every BMLA kernel must contain at least one conditional branch, and
	// the irregular ones (count, sample, nbayes, classify, kmeans) need
	// branches beyond loop back-edges (approximated: more conditional
	// branch sites than loops).
	for _, k := range allKernels() {
		cond := 0
		for _, in := range k.Prog.Insts {
			if isa.IsCondBranch(in.Op) {
				cond++
			}
		}
		if cond == 0 {
			t.Errorf("%s: no conditional branches", k.Name)
		}
	}
}

func TestInstsPerWordOrdering(t *testing.T) {
	// A static proxy for Table IV's dynamic ordering: straight-line
	// instructions per record word must increase from count to gda.
	ks := allKernels()
	per := make([]float64, len(ks))
	for i, k := range ks {
		per[i] = float64(len(k.Prog.Insts)) / float64(k.RecordWords)
	}
	_ = per // dynamic counts are asserted in the workloads integration tests
}

func TestLocalStateFits(t *testing.T) {
	for _, k := range allKernels() {
		sl, err := LocalState(k, 4096, 4)
		if err != nil {
			t.Errorf("%s: %v", k.Name, err)
			continue
		}
		if sl.Shift != 2 || sl.CoreletMult != 0 {
			t.Errorf("%s: local layout %+v", k.Name, sl)
		}
		if int(sl.Base0)%4 != 0 {
			t.Errorf("%s: misaligned state base", k.Name)
		}
	}
	big := &Kernel{Name: "big", StateWords: 2000}
	if _, err := LocalState(big, 4096, 4); err == nil {
		t.Error("oversized state accepted")
	}
}

func TestSharedStateFitsAndBanks(t *testing.T) {
	for _, k := range allKernels() {
		sl, err := SharedState(k, 131072, 32, 4)
		if err != nil {
			t.Errorf("%s: %v", k.Name, err)
			continue
		}
		if sl.Shift != 7 || sl.CoreletMult != 4 {
			t.Errorf("%s: shared layout %+v", k.Name, sl)
		}
		// Lane->bank identity requires a 128 B aligned base.
		if sl.Base0%128 != 0 {
			t.Errorf("%s: shared base %d not 128-aligned", k.Name, sl.Base0)
		}
	}
}

func TestArgsBlock(t *testing.T) {
	k := Count()
	lay := layout.Layout{RowBytes: 2048, Corelets: 32, Contexts: 4, Interleave: layout.Slab}
	sl, err := LocalState(k, 4096, 4)
	if err != nil {
		t.Fatal(err)
	}
	a := Args(k, lay.Walk(), sl, 100)
	if len(a) != ArgWords {
		t.Fatalf("args len %d", len(a))
	}
	if a[ArgRecords] != 100 || a[ArgK0] != CountThresh {
		t.Errorf("args: records %d K0 %d", a[ArgRecords], a[ArgK0])
	}
	if a[ArgStride] != 4 || a[ArgChunkWords] != 4 {
		t.Errorf("walk args: %v", a)
	}
	full := ArgsAndConsts(k, lay.Walk(), sl, 100)
	if len(full) != ArgWords+len(k.Consts) {
		t.Errorf("full args len %d", len(full))
	}
}

func TestNextWordLabelsUnique(t *testing.T) {
	a, b := NextWord("r11"), NextWord("r12")
	if a == b {
		t.Error("NextWord emitted identical labels twice")
	}
}

func TestCountBarrier(t *testing.T) {
	k := CountBarrier(4)
	if k.Prog == nil || k.K[1] != 4 {
		t.Errorf("barrier kernel: %+v", k.K)
	}
	hasBar := false
	for _, in := range k.Prog.Insts {
		if in.Op == isa.BAR {
			hasBar = true
		}
	}
	if !hasBar {
		t.Error("no BAR instruction in barrier kernel")
	}
	defer func() {
		if recover() == nil {
			t.Error("non-positive interval accepted")
		}
	}()
	CountBarrier(0)
}

func TestJoinKernel(t *testing.T) {
	k := Join(512)
	if k.StateWords != 2 || k.K[0] != 512 {
		t.Errorf("join kernel: %+v", k)
	}
	defer func() {
		if recover() == nil {
			t.Error("non-positive table accepted")
		}
	}()
	Join(0)
}

func TestClassifyValidatesCentroids(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad centroid shape accepted")
		}
	}()
	Classify([][]float32{{1, 2}})
}
