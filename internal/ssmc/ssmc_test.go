package ssmc

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/layout"
)

// Same checksum kernel as the core tests (duplicated source keeps the
// packages independent).
const sumKernelSrc = `
	.name sum
	lw   r1, 0(r0)
	csrr r2, coreletid
	lw   r3, 4(r0)
	mul  r2, r2, r3
	add  r1, r1, r2
	csrr r2, contextid
	lw   r3, 8(r0)
	mul  r2, r2, r3
	add  r1, r1, r2
	lw   r4, 12(r0)
	lw   r5, 16(r0)
	lw   r6, 20(r0)
	lw   r7, 24(r0)
	mv   r8, r6
	li   r9, 0
loop:
	ldg  r10, 0(r1)
	add  r9, r9, r10
	addi r7, r7, -1
	beqz r7, done
	addi r8, r8, -1
	bnez r8, samerow
	add  r1, r1, r5
	mv   r8, r6
	j    loop
samerow:
	add  r1, r1, r4
	j    loop
done:
	csrr r2, contextid
	slli r2, r2, 2
	addi r2, r2, 64
	sw   r9, 0(r2)
	halt
`

func testParams() arch.Params {
	p := arch.Default()
	p.Corelets = 8
	p.Contexts = 2
	return p
}

func buildLaunch(t *testing.T, p arch.Params, words int) (core.Launch, [][]uint32, layout.Layout) {
	t.Helper()
	prog, err := asm.Assemble("sum", sumKernelSrc)
	if err != nil {
		t.Fatal(err)
	}
	lay := layout.Layout{RowBytes: p.DRAM.RowBytes, Corelets: p.Corelets, Contexts: p.Contexts, Interleave: layout.Split, StreamWords: words}
	streams := make([][]uint32, lay.Threads())
	for th := range streams {
		streams[th] = make([]uint32, words)
		for i := range streams[th] {
			streams[th][i] = uint32(th*131 + i*17)
		}
	}
	w := lay.Walk()
	args := []uint32{0, uint32(w.CoreletMult), uint32(w.ContextMult), uint32(w.Stride),
		uint32(w.RowStep), uint32(w.ChunkWords), uint32(words)}
	return core.Launch{Prog: prog, Interleave: layout.Split, Streams: streams, Args: args}, streams, lay
}

func TestSSMCChecksum(t *testing.T) {
	p := testParams()
	l, streams, lay := buildLaunch(t, p, 512)
	pr, err := NewProcessor(p, energy.Default(), l)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pr.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < p.Corelets; c++ {
		for ctx := 0; ctx < p.Contexts; ctx++ {
			var want uint32
			for _, v := range streams[lay.ThreadID(c, ctx)] {
				want += v
			}
			if got := pr.ReadState(c, uint32(64+ctx*4)); got != want {
				t.Errorf("core %d ctx %d = %d, want %d", c, ctx, got, want)
			}
		}
	}
	if res.Cache.Misses == 0 || res.Cache.PrefetchIssue == 0 {
		t.Errorf("cache stats empty: %+v", res.Cache)
	}
	if res.DRAM.BytesRead == 0 {
		t.Error("no DRAM traffic")
	}
	if res.Energy.TotalPJ() <= 0 {
		t.Error("no energy")
	}
}

func TestSSMCFetchesNoDuplicateData(t *testing.T) {
	// With layout-matched 64 B lines, SSMC must read each input byte about
	// once (prefetch may overshoot slightly at stream end).
	p := testParams()
	l, _, lay := buildLaunch(t, p, 512)
	pr, err := NewProcessor(p, energy.Default(), l)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pr.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	region := uint64(lay.RegionBytes(512))
	if res.DRAM.BytesRead > region+region/8 {
		t.Errorf("DRAM read %d bytes for a %d-byte region", res.DRAM.BytesRead, region)
	}
}

func TestSSMCSlowerThanMillipedeOnStreams(t *testing.T) {
	// Even on a uniform kernel, SSMC's block-granular, per-core-split
	// fetches cost more DRAM row activations than Millipede's row-granular
	// fetches; with the same compute, SSMC must not be faster.
	p := testParams()
	l, _, _ := buildLaunch(t, p, 1024)
	spr, err := NewProcessor(p, energy.Default(), l)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := spr.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	ml := l
	ml.Interleave = layout.Slab
	mlay := layout.Layout{RowBytes: p.DRAM.RowBytes, Corelets: p.Corelets, Contexts: p.Contexts, Interleave: layout.Slab}
	mw := mlay.Walk()
	ml.Args = []uint32{0, uint32(mw.CoreletMult), uint32(mw.ContextMult), uint32(mw.Stride),
		uint32(mw.RowStep), uint32(mw.ChunkWords), 1024}
	mpr, err := core.NewProcessor(p, energy.Default(), ml)
	if err != nil {
		t.Fatal(err)
	}
	mres, err := mpr.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if sres.Time < mres.Time*95/100 {
		t.Errorf("SSMC (%d ps) beat Millipede (%d ps)", sres.Time, mres.Time)
	}
	if sres.DRAM.RowMisses <= mres.DRAM.RowMisses {
		t.Errorf("SSMC row misses %d <= Millipede %d", sres.DRAM.RowMisses, mres.DRAM.RowMisses)
	}
}

func TestSSMCValidation(t *testing.T) {
	p := testParams()
	l, _, _ := buildLaunch(t, p, 16)
	if _, err := NewProcessor(p, energy.Default(), core.Launch{Streams: l.Streams}); err == nil {
		t.Error("nil program accepted")
	}
	bad := p
	bad.SSMCL1Bytes = 0
	if _, err := NewProcessor(bad, energy.Default(), l); err == nil {
		t.Error("bad params accepted")
	}
}
