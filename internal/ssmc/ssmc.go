// Package ssmc models the paper's plain "sea of simple MIMD cores"
// baseline: the same corelets as Millipede, but with each core's 5 KB L1
// D-cache and sequential cache-block prefetch in place of the shared
// row-oriented prefetch buffer (Section V: "SSMC representing previous
// multicores without row-orientedness").
//
// Because each core fetches cache blocks on its own schedule, cores that
// stray from each other interleave requests to different DRAM rows in the
// 16-deep FR-FCFS window, degrading row locality — the row-miss-rate column
// of Table IV and the bandwidth loss behind Figure 3's SSMC bars.
//
// Live state stays cache-resident (the paper stipulates BMLA state
// "completely fits"), so the L1 here filters only the streaming input; the
// corelet's local accesses are charged at L1 energy in the breakdown.
package ssmc

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/corelet"
	"repro/internal/energy"
	"repro/internal/layout"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/stack"
)

// Processor is one SSMC processor plus its memory side.
type Processor struct {
	P    arch.Params
	EP   energy.Params
	node *arch.Node
	lay  layout.Layout
	// cluster holds every core's hot state in one structure-of-arrays image;
	// its Tick sweeps live cores in registration order, preserving the
	// memory-access order of the per-core object model.
	cluster *corelet.Cluster
	caches  []*cache.Cache
	ticks   uint64
	reg     *metrics.Registry
}

// Result aliases the Millipede result shape with cache stats in place of
// prefetch stats.
type Result struct {
	Time          sim.Time
	ComputeCycles uint64
	Cores         corelet.Stats
	Cache         cache.Stats
	DRAM          core.DRAMStats
	Mem           core.MemStats
	Stack         stack.Stats
	Energy        energy.Breakdown
	Metrics       metrics.Snapshot
	// Allocs and AllocBytes count heap allocations made inside the run's
	// cycle loop (zero in steady state by design; see benchreport).
	Allocs     uint64
	AllocBytes uint64
	// SkippedEdges and SkipWindows report the quiescence fast-forward's
	// informational counters (results are bit-identical with skipping off).
	SkippedEdges uint64
	SkipWindows  uint64
}

// NewProcessor builds and loads an SSMC processor for one launch.
func NewProcessor(p arch.Params, ep energy.Params, l core.Launch) (*Processor, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := ep.Validate(); err != nil {
		return nil, err
	}
	if l.Prog == nil {
		return nil, fmt.Errorf("ssmc: nil program")
	}
	streamWords, err := l.StreamLen()
	if err != nil {
		return nil, fmt.Errorf("ssmc: %v", err)
	}
	lay := layout.Layout{
		Base:        0,
		RowBytes:    p.DRAM.RowBytes,
		Corelets:    p.Corelets,
		Contexts:    p.Contexts,
		Interleave:  l.Interleave,
		StreamWords: streamWords,
	}
	if err := lay.Validate(); err != nil {
		return nil, err
	}
	flat, err := l.PackInput(lay)
	if err != nil {
		return nil, err
	}
	node, err := arch.NewNode(p, len(flat)*4)
	if err != nil {
		return nil, err
	}
	node.DRAM.LoadWords(0, flat)

	pr := &Processor{P: p, EP: ep, node: node, lay: lay}
	backing := node.Port
	ccfg := cache.Config{
		SizeBytes:     p.SSMCL1Bytes,
		LineBytes:     p.SSMCLineBytes,
		Assoc:         p.CacheAssoc,
		PrefetchDepth: p.PrefetchDepth,
	}
	if l.Interleave != layout.Split {
		// Under a row-shared interleaving, a core's slab recurs once per
		// DRAM row: its stream prefetcher strides a whole row ahead, and
		// the set index is hashed so the strided stream uses all sets.
		ccfg.PrefetchStrideBlocks = p.DRAM.RowBytes / p.SSMCLineBytes
		ccfg.HashSets = true
	}
	read := func(addr uint32) uint32 { return node.DRAM.ReadWord(addr) }
	code, err := corelet.Decode(l.Prog, p.Latencies)
	if err != nil {
		return nil, err
	}
	pr.caches = make([]*cache.Cache, p.Corelets)
	ports := make([]corelet.GlobalPort, p.Corelets)
	for c := 0; c < p.Corelets; c++ {
		pr.caches[c], err = cache.New(ccfg, backing, 8)
		if err != nil {
			return nil, err
		}
		ports[c] = &port{cache: pr.caches[c]}
	}
	clcfg := corelet.Config{
		Corelets:   p.Corelets,
		Contexts:   p.Contexts,
		LocalBytes: p.LocalBytes,
		Latencies:  p.Latencies,
	}
	if node.Pool != nil {
		clcfg.Shards = node.Pool.Workers()
	}
	pr.cluster, err = corelet.NewCluster(clcfg, code, ports, read)
	if err != nil {
		return nil, err
	}
	if node.Pool != nil {
		pr.cluster.SetWorkers(node.Pool)
	}
	for c := 0; c < p.Corelets; c++ {
		for i, w := range l.Args {
			pr.cluster.WriteLocal(c, uint32(i*4), w)
		}
	}

	pr.reg = metrics.NewRegistry()
	pr.reg.Counter("core.cycles", func() uint64 { return pr.ticks })
	corelet.RegisterStats(pr.reg, "corelet", pr.coreStats)
	cache.RegisterStats(pr.reg, "cache", pr.cacheStats)
	node.Mem.RegisterMetrics(pr.reg)
	if node.Stack != nil {
		stack.RegisterMetrics(pr.reg, node.Stack)
	}

	if err := node.AttachCompute(pr); err != nil {
		return nil, err
	}
	return pr, nil
}

// coreStats supplies the aggregate execution counters for the registry and
// the Result.
func (pr *Processor) coreStats() corelet.Stats { return pr.cluster.Stats() }

// cacheStats aggregates the private L1 D-cache counters.
func (pr *Processor) cacheStats() cache.Stats {
	var agg cache.Stats
	for _, ch := range pr.caches {
		agg.Add(ch.Stats())
	}
	return agg
}

// port adapts a private L1 D-cache to the corelet's GlobalPort.
type port struct{ cache *cache.Cache }

func (pt *port) Read(ctx int, addr uint32, ready func()) corelet.Status {
	switch pt.cache.Access(addr, ready) {
	case cache.Hit:
		return corelet.Done
	case cache.Miss:
		return corelet.Pending
	default:
		return corelet.Retry
	}
}

// Tick advances every live core one compute cycle.
func (pr *Processor) Tick(now sim.Time) {
	pr.ticks++
	pr.cluster.Tick()
}

// Halted reports whether every core has finished.
func (pr *Processor) Halted() bool { return pr.cluster.Halted() }

// NextWork implements sim.NextWorker: the SSMC tick is the cluster sweep
// alone (the caches are event-driven), so the cluster's issue bound is the
// whole story.
func (pr *Processor) NextWork(sim.Time) sim.Time {
	n := pr.cluster.NextWorkTicks()
	if n == corelet.NeverTicks {
		return sim.Never
	}
	return pr.node.Compute.TimeOfTick(pr.ticks + uint64(n))
}

// SkipTicks implements sim.NextWorker.
func (pr *Processor) SkipTicks(n int64) {
	pr.ticks += uint64(n)
	pr.cluster.SkipTicks(n)
}

// Run executes to completion and returns aggregated results.
func (pr *Processor) Run(limit sim.Time) (Result, error) {
	t, err := pr.node.Run(limit)
	if err != nil {
		return Result{}, err
	}
	r := Result{Time: t, ComputeCycles: pr.ticks}
	r.Cores = pr.coreStats()
	r.Cache = pr.cacheStats()
	ds := pr.node.Mem.DRAMStats()
	r.DRAM = core.DRAMStats{RowHits: ds.RowHits, RowMisses: ds.RowMisses, BytesRead: ds.BytesRead, Requests: ds.Requests}
	cs := pr.node.Mem.CtlStats()
	r.Mem = core.MemStats{StallCycles: cs.StallCycles, MaxOccupancy: cs.MaxOccupancy, Rejected: cs.Rejected}
	if pr.node.Stack != nil {
		r.Stack = pr.node.Stack.Stats()
	}
	r.Allocs, r.AllocBytes = pr.node.RunAllocs, pr.node.RunBytes
	r.SkippedEdges, r.SkipWindows = pr.node.RunSkippedEdges, pr.node.RunSkipWindows
	r.Energy = pr.energy(r, t)
	r.Metrics = pr.reg.Snapshot()
	return r, nil
}

// energy: SSMC cores pay the same MIMD instruction costs as Millipede, but
// both the live state and the streaming input go through the 5 KB L1
// D-cache rather than a local SRAM + prefetch-buffer slice.
func (pr *Processor) energy(r Result, t sim.Time) energy.Breakdown {
	ep := pr.EP
	var b energy.Breakdown
	b.CorePJ = float64(r.Cores.Instructions)*(ep.InstPJ+ep.IFetchMIMDPJ) +
		float64(r.Cores.LocalAccess)*ep.L1SmallPJ +
		float64(r.Cores.GlobalReads)*ep.L1SmallPJ +
		float64(r.Cores.IdleCycles)*ep.IdlePJ
	ds := pr.node.Mem.DRAMStats()
	b.DRAMPJ = ep.DRAM(ds.RowMisses, ds.BytesRead)
	b.LeakPJ = ep.Leakage(pr.P.Corelets, float64(t)/1e12)
	return b
}

// InjectMemoryJitter enables deterministic DRAM completion jitter (fault
// injection). Call before Run.
func (pr *Processor) InjectMemoryJitter(max int64, seed uint64) {
	pr.node.InjectMemoryJitter(max, seed)
}

// ReadState reads a word of a core's local state after the run.
func (pr *Processor) ReadState(coreID int, addr uint32) uint32 {
	return pr.cluster.ReadLocal(coreID, addr)
}

// Layout returns the layout used for the input region.
func (pr *Processor) Layout() layout.Layout { return pr.lay }
