package metrics

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRegistrySnapshotSortedAndLazy(t *testing.T) {
	r := NewRegistry()
	var c uint64
	evals := 0
	r.Counter("b.count", func() uint64 { evals++; return c })
	r.Gauge("a.gauge", func() float64 { evals++; return 2.5 })
	r.Histogram("c.hist", func() []uint64 { evals++; return []uint64{1, 2, 3} })
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	if evals != 0 {
		t.Fatalf("registration evaluated getters %d times", evals)
	}
	c = 7
	s := r.Snapshot()
	if evals != 3 {
		t.Fatalf("snapshot evaluated %d getters, want 3", evals)
	}
	names := []string{}
	for _, sm := range s.Samples {
		names = append(names, sm.Name)
	}
	want := []string{"a.gauge", "b.count", "c.hist"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("sorted names = %v, want %v", names, want)
		}
	}
	if v := s.Value("b.count"); v != 7 {
		t.Errorf("b.count = %v (getter must see post-registration value)", v)
	}
	if sm, ok := s.Get("c.hist"); !ok || len(sm.Buckets) != 3 || sm.Buckets[1] != 2 {
		t.Errorf("c.hist = %+v, %v", sm, ok)
	}
	if _, ok := s.Get("nope"); ok {
		t.Error("Get of absent name succeeded")
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("x", func() uint64 { return 0 })
	r.Counter("x", func() uint64 { return 0 })
}

func TestSnapshotBucketsCopied(t *testing.T) {
	r := NewRegistry()
	h := []uint64{1, 2}
	r.Histogram("h", func() []uint64 { return h })
	s := r.Snapshot()
	h[0] = 99
	if sm, _ := s.Get("h"); sm.Buckets[0] != 1 {
		t.Error("snapshot aliases the live histogram slice")
	}
}

func TestSnapshotPut(t *testing.T) {
	r := NewRegistry()
	r.Counter("m.b", func() uint64 { return 1 })
	s := r.Snapshot()
	s.Put(Sample{Name: "m.a", Kind: Gauge, Value: 4})
	s.Put(Sample{Name: "m.z", Kind: Gauge, Value: 5})
	s.Put(Sample{Name: "m.b", Kind: Counter, Value: 9}) // replace
	if len(s.Samples) != 3 {
		t.Fatalf("len = %d", len(s.Samples))
	}
	for i, want := range []string{"m.a", "m.b", "m.z"} {
		if s.Samples[i].Name != want {
			t.Fatalf("order %v", s.Samples)
		}
	}
	if s.Value("m.b") != 9 {
		t.Errorf("replace failed: %v", s.Value("m.b"))
	}
}

func TestDiff(t *testing.T) {
	mk := func(c uint64, g float64, h []uint64) Snapshot {
		var s Snapshot
		s.Put(Sample{Name: "c", Kind: Counter, Value: float64(c)})
		s.Put(Sample{Name: "g", Kind: Gauge, Value: g})
		s.Put(Sample{Name: "h", Kind: Histogram, Buckets: h})
		return s
	}
	before := mk(10, 1.5, []uint64{1, 1})
	after := mk(25, 9.5, []uint64{4, 1})
	d := Diff(after, before)
	if d.Value("c") != 15 {
		t.Errorf("counter diff = %v", d.Value("c"))
	}
	if d.Value("g") != 9.5 {
		t.Errorf("gauge diff keeps after: %v", d.Value("g"))
	}
	hm, _ := d.Get("h")
	if hm.Buckets[0] != 3 || hm.Buckets[1] != 0 {
		t.Errorf("hist diff = %v", hm.Buckets)
	}
	// A diff must not mutate its inputs.
	if am, _ := after.Get("h"); am.Buckets[0] != 4 {
		t.Error("Diff mutated after")
	}
}

// TestPow2BucketPercentile: upper-edge estimates over the power-of-two-ms
// layout, nearest-rank rounded up.
func TestPow2BucketPercentile(t *testing.T) {
	cases := []struct {
		buckets []uint64
		q       float64
		want    float64
	}{
		{nil, 0.99, 0},                      // empty histogram
		{[]uint64{0, 0, 0}, 0.5, 0},         // all-zero histogram
		{[]uint64{5}, 0.5, 1},               // sub-ms observations report the 1 ms edge
		{[]uint64{0, 7}, 0.5, 2},            // bucket 1 = [1,2) ms -> upper edge 2
		{[]uint64{1, 0, 0, 1}, 0.5, 1},      // rank 1 of 2 -> first bucket
		{[]uint64{1, 0, 0, 1}, 0.99, 8},     // rank 2 of 2 -> bucket 3 -> 2^3
		{[]uint64{10, 10, 10, 10}, 0.25, 1}, // rank 10 -> bucket 0
		{[]uint64{10, 10, 10, 10}, 0.26, 2}, // rank 11 -> bucket 1
		{[]uint64{0, 0, 0, 0, 3}, 1.0, 16},  // everything in the overflow
		{[]uint64{2, 0}, 1.0, 1},            // trailing empty buckets ignored
	}
	for _, c := range cases {
		if got := Pow2BucketPercentile(c.buckets, c.q); got != c.want {
			t.Errorf("Pow2BucketPercentile(%v, %g) = %g, want %g", c.buckets, c.q, got, c.want)
		}
	}
}

func TestRenderStableAndJSONValid(t *testing.T) {
	r := NewRegistry()
	r.Counter("dram.requests", func() uint64 { return 42 })
	r.Gauge("dram.row_miss_rate", func() float64 { return 0.125 })
	r.Histogram("mem.queue_lat", func() []uint64 { return []uint64{5, 0, 1} })
	s1, s2 := r.Snapshot(), r.Snapshot()
	if s1.Render() != s2.Render() {
		t.Error("identical snapshots render differently")
	}
	if !strings.Contains(s1.Render(), "dram.requests") {
		t.Errorf("render:\n%s", s1.Render())
	}
	data, err := s1.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var out []map[string]interface{}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(out) != 3 {
		t.Fatalf("JSON entries = %d", len(out))
	}
	for _, e := range out {
		if e["name"] == "" || e["kind"] == "" {
			t.Errorf("entry missing name/kind: %v", e)
		}
	}
}

func TestTimelineSamplingAndMonotonic(t *testing.T) {
	tl := NewTimeline(4)
	x := 0.0
	tl.Probe("x", func() float64 { return x })
	for cycle := uint64(1); cycle <= 40; cycle++ {
		x = float64(cycle)
		tl.Tick(cycle)
	}
	if tl.Len() != 10 {
		t.Fatalf("len = %d, want 10", tl.Len())
	}
	pts := tl.Points()
	for i, p := range pts {
		if p.Cycle%tl.Every() != 0 {
			t.Errorf("sample %d at cycle %d not aligned to %d", i, p.Cycle, tl.Every())
		}
		if i > 0 && p.Cycle <= pts[i-1].Cycle {
			t.Errorf("cycles not strictly increasing at %d", i)
		}
		if p.Values[0] != float64(p.Cycle) {
			t.Errorf("sample at %d has value %v", p.Cycle, p.Values[0])
		}
	}
}

func TestTimelineDecimation(t *testing.T) {
	tl := NewTimeline(1)
	tl.max = 8 // small retention bound to force decimation
	tl.Probe("v", func() float64 { return 1 })
	for cycle := uint64(1); cycle <= 100; cycle++ {
		tl.Tick(cycle)
	}
	if tl.Len() >= 8 {
		t.Fatalf("retention bound not enforced: %d points", tl.Len())
	}
	if tl.Every() == 1 {
		t.Fatal("interval did not grow under decimation")
	}
	pts := tl.Points()
	for i, p := range pts {
		if p.Cycle%tl.Every() != 0 {
			t.Errorf("point %d at cycle %d misaligned to interval %d", i, p.Cycle, tl.Every())
		}
		if i > 0 && p.Cycle <= pts[i-1].Cycle {
			t.Errorf("cycles not strictly increasing after decimation")
		}
	}
	// Coverage must span the run, not just its head or tail.
	if last := pts[len(pts)-1].Cycle; last < 90 {
		t.Errorf("decimated timeline lost the tail: last cycle %d", last)
	}
}

func TestTimelineDownsample(t *testing.T) {
	tl := NewTimeline(1)
	tl.Probe("v", func() float64 { return 0 })
	for cycle := uint64(1); cycle <= 100; cycle++ {
		tl.Tick(cycle)
	}
	pts := tl.Downsample(10)
	if len(pts) > 11 { // stride rounding may add the final point
		t.Fatalf("downsample returned %d points", len(pts))
	}
	if pts[len(pts)-1].Cycle != 100 {
		t.Errorf("downsample dropped the last sample: %d", pts[len(pts)-1].Cycle)
	}
	if full := tl.Downsample(1000); len(full) != tl.Len() {
		t.Errorf("oversized budget should return everything: %d != %d", len(full), tl.Len())
	}
}

func TestTimelineRender(t *testing.T) {
	tl := NewTimeline(2)
	tl.Probe("occ", func() float64 { return 3 })
	tl.Tick(2)
	out := tl.Render()
	if !strings.Contains(out, "occ") || !strings.Contains(out, "3.000") {
		t.Errorf("render:\n%s", out)
	}
}
