// Package metrics is the simulator-wide observability layer: a registry of
// named counters, gauges, and histograms that every component model (DRAM,
// memory controller, caches, the prefetch buffer, corelets, the SIMT SM,
// the DFS controller, the energy model) publishes through, plus a
// cycle-domain timeline sampler for the paper's dynamic claims (prefetch
// occupancy driving flow control, the DFS clock trajectory).
//
// The design keeps the single-run hot path untouched: components increment
// their plain (atomic-free) stats fields exactly as before, and register
// closures that *read* those fields. Nothing is evaluated until Snapshot is
// taken — typically once, after the run — so enabling metrics cannot
// perturb simulated timing, and the BENCH determinism fields stay
// bit-identical with the registry attached.
//
// Snapshots render deterministically: samples are sorted by name, and both
// the text and JSON forms are byte-stable across identical runs.
package metrics

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind classifies a metric.
type Kind uint8

const (
	// Counter is a monotonically increasing event count.
	Counter Kind = iota
	// Gauge is an instantaneous or derived value (occupancy, a rate, Hz).
	Gauge
	// Histogram is a bucketized distribution (e.g. queue-latency buckets).
	Histogram
)

func (k Kind) String() string {
	switch k {
	case Counter:
		return "counter"
	case Gauge:
		return "gauge"
	case Histogram:
		return "histogram"
	}
	return "?"
}

// Sample is one named value in a Snapshot.
type Sample struct {
	Name    string
	Kind    Kind
	Value   float64  // counters and gauges
	Buckets []uint64 // histograms only
}

type probe struct {
	name    string
	kind    Kind
	scalar  func() float64
	buckets func() []uint64
}

// Registry collects named metrics from registered sources. Registration
// happens once at model construction; the getter closures are evaluated
// only when Snapshot is called.
type Registry struct {
	probes []probe
	names  map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{names: map[string]bool{}} }

func (r *Registry) add(p probe) {
	if r.names[p.name] {
		panic(fmt.Sprintf("metrics: duplicate metric %q", p.name))
	}
	r.names[p.name] = true
	r.probes = append(r.probes, p)
}

// Counter registers a monotonically increasing event count.
func (r *Registry) Counter(name string, get func() uint64) {
	r.add(probe{name: name, kind: Counter, scalar: func() float64 { return float64(get()) }})
}

// Gauge registers an instantaneous or derived value.
func (r *Registry) Gauge(name string, get func() float64) {
	r.add(probe{name: name, kind: Gauge, scalar: get})
}

// Histogram registers a bucketized distribution.
func (r *Registry) Histogram(name string, get func() []uint64) {
	r.add(probe{name: name, kind: Histogram, buckets: get})
}

// Len returns the number of registered metrics.
func (r *Registry) Len() int { return len(r.probes) }

// Snapshot evaluates every registered getter and returns the values sorted
// by name.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Samples: make([]Sample, 0, len(r.probes))}
	for _, p := range r.probes {
		sm := Sample{Name: p.name, Kind: p.kind}
		if p.kind == Histogram {
			sm.Buckets = append([]uint64(nil), p.buckets()...)
		} else {
			sm.Value = p.scalar()
		}
		s.Samples = append(s.Samples, sm)
	}
	s.sort()
	return s
}

// Snapshot is a point-in-time set of metric samples, sorted by name.
type Snapshot struct {
	Samples []Sample
}

func (s *Snapshot) sort() {
	sort.Slice(s.Samples, func(i, j int) bool { return s.Samples[i].Name < s.Samples[j].Name })
}

// Get returns the sample with the given name.
func (s Snapshot) Get(name string) (Sample, bool) {
	i := sort.Search(len(s.Samples), func(i int) bool { return s.Samples[i].Name >= name })
	if i < len(s.Samples) && s.Samples[i].Name == name {
		return s.Samples[i], true
	}
	return Sample{}, false
}

// Value returns the scalar value of the named counter or gauge (0 if
// absent — snapshots are assembled from fixed registries, so a missing name
// is a caller typo, not a runtime condition worth an error path).
func (s Snapshot) Value(name string) float64 {
	sm, _ := s.Get(name)
	return sm.Value
}

// Put inserts sm, replacing any existing sample of the same name and
// keeping the snapshot sorted. It is how run-level values (simulated time,
// energy breakdown) join the component snapshot.
func (s *Snapshot) Put(sm Sample) {
	i := sort.Search(len(s.Samples), func(i int) bool { return s.Samples[i].Name >= sm.Name })
	if i < len(s.Samples) && s.Samples[i].Name == sm.Name {
		s.Samples[i] = sm
		return
	}
	s.Samples = append(s.Samples, Sample{})
	copy(s.Samples[i+1:], s.Samples[i:])
	s.Samples[i] = sm
}

// Diff returns after minus before: counters and histograms are subtracted
// (names present only in after pass through unchanged), gauges keep after's
// value. Names present only in before are dropped.
func Diff(after, before Snapshot) Snapshot {
	var out Snapshot
	for _, a := range after.Samples {
		b, ok := before.Get(a.Name)
		if !ok || a.Kind == Gauge {
			out.Samples = append(out.Samples, a)
			continue
		}
		d := Sample{Name: a.Name, Kind: a.Kind}
		switch a.Kind {
		case Counter:
			d.Value = a.Value - b.Value
		case Histogram:
			d.Buckets = append([]uint64(nil), a.Buckets...)
			for i := range d.Buckets {
				if i < len(b.Buckets) {
					d.Buckets[i] -= b.Buckets[i]
				}
			}
		}
		out.Samples = append(out.Samples, d)
	}
	return out
}

// Pow2BucketPercentile estimates the q-quantile (0 < q <= 1) of a
// power-of-two-millisecond latency histogram laid out like the jobs pool
// and memory controller histograms: bucket 0 counts observations under
// 1 ms, bucket i counts [2^(i-1), 2^i) ms, and the last bucket is the
// overflow. The estimate is the containing bucket's upper edge in
// milliseconds — a deliberate over-estimate, which is the conservative
// side for an SLA report — so any nonempty histogram yields >= 1. An empty
// histogram returns 0.
func Pow2BucketPercentile(buckets []uint64, q float64) float64 {
	var total uint64
	for _, b := range buckets {
		total += b
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the quantile observation (nearest-rank,
	// rounded up — the conservative side, like the bucket upper edge).
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, b := range buckets {
		seen += b
		if seen >= rank {
			return float64(uint64(1) << i)
		}
	}
	return float64(uint64(1) << (len(buckets) - 1))
}

func formatValue(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Render returns the stable sorted text form: one "name kind value" line
// per sample. Identical runs produce byte-identical output.
func (s Snapshot) Render() string {
	var b strings.Builder
	for _, sm := range s.Samples {
		if sm.Kind == Histogram {
			fmt.Fprintf(&b, "%-44s %-9s %v\n", sm.Name, sm.Kind, sm.Buckets)
			continue
		}
		fmt.Fprintf(&b, "%-44s %-9s %s\n", sm.Name, sm.Kind, formatValue(sm.Value))
	}
	return b.String()
}

// jsonSample is the stable JSON wire form of one sample.
type jsonSample struct {
	Name    string   `json:"name"`
	Kind    string   `json:"kind"`
	Value   *float64 `json:"value,omitempty"`
	Buckets []uint64 `json:"buckets,omitempty"`
}

// JSON returns the snapshot as an indented, name-sorted JSON array.
func (s Snapshot) JSON() ([]byte, error) {
	out := make([]jsonSample, 0, len(s.Samples))
	for _, sm := range s.Samples {
		js := jsonSample{Name: sm.Name, Kind: sm.Kind.String()}
		if sm.Kind == Histogram {
			js.Buckets = sm.Buckets
		} else {
			v := sm.Value
			js.Value = &v
		}
		out = append(out, js)
	}
	return json.MarshalIndent(out, "", "  ")
}
