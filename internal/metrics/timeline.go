package metrics

import (
	"fmt"
	"strings"
)

// DefaultTimelineMax bounds the number of retained samples. When the bound
// is reached the timeline halves its resolution (keeps every other sample
// and doubles the interval), so arbitrarily long runs stay covered end to
// end at bounded memory instead of truncating the tail.
const DefaultTimelineMax = 1 << 14

// TimelinePoint is one sampled instant: the compute cycle and the probed
// gauge values, parallel to Timeline.Names.
type TimelinePoint struct {
	Cycle  uint64
	Values []float64
}

// Timeline samples registered gauges every Every simulated cycles. It is a
// pure observer: probes only read model state, so an attached timeline
// cannot perturb timing. Drive it with Tick from the model's cycle loop;
// when no timeline is attached the model pays one nil check per cycle.
type Timeline struct {
	every  uint64
	max    int
	names  []string
	probes []func() float64
	points []TimelinePoint
}

// NewTimeline returns a sampler with the given initial interval in cycles
// (minimum 1) and the default retention bound.
func NewTimeline(everyCycles uint64) *Timeline {
	if everyCycles == 0 {
		everyCycles = 1
	}
	return &Timeline{every: everyCycles, max: DefaultTimelineMax}
}

// Probe registers a named gauge to sample. Call before the run starts.
func (t *Timeline) Probe(name string, get func() float64) {
	t.names = append(t.names, name)
	t.probes = append(t.probes, get)
}

// Names returns the probe names in registration order.
func (t *Timeline) Names() []string { return t.names }

// Every returns the current sampling interval (it grows when the retention
// bound forces decimation).
func (t *Timeline) Every() uint64 { return t.every }

// Len returns the number of retained samples.
func (t *Timeline) Len() int { return len(t.points) }

// Points returns the retained samples in cycle order.
func (t *Timeline) Points() []TimelinePoint { return t.points }

// Tick samples when cycle is a multiple of the current interval.
func (t *Timeline) Tick(cycle uint64) {
	if cycle%t.every != 0 {
		return
	}
	vals := make([]float64, len(t.probes))
	for i, p := range t.probes {
		vals[i] = p()
	}
	t.points = append(t.points, TimelinePoint{Cycle: cycle, Values: vals})
	if len(t.points) >= t.max {
		t.decimate()
	}
}

// decimate halves resolution: keeps samples aligned to the doubled interval.
func (t *Timeline) decimate() {
	t.every *= 2
	kept := t.points[:0]
	for _, p := range t.points {
		if p.Cycle%t.every == 0 {
			kept = append(kept, p)
		}
	}
	t.points = kept
}

// Downsample returns at most maxPoints samples, evenly strided across the
// retained range (always including the last sample when any exist).
func (t *Timeline) Downsample(maxPoints int) []TimelinePoint {
	n := len(t.points)
	if maxPoints <= 0 || n <= maxPoints {
		return t.points
	}
	stride := (n + maxPoints - 1) / maxPoints
	var out []TimelinePoint
	for i := 0; i < n; i += stride {
		out = append(out, t.points[i])
	}
	if out[len(out)-1].Cycle != t.points[n-1].Cycle {
		out = append(out, t.points[n-1])
	}
	return out
}

// Render returns the timeline as an aligned text table: one row per sample.
func (t *Timeline) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s", "cycle")
	for _, n := range t.names {
		fmt.Fprintf(&b, " %18s", n)
	}
	b.WriteString("\n")
	for _, p := range t.points {
		fmt.Fprintf(&b, "%-12d", p.Cycle)
		for _, v := range p.Values {
			fmt.Fprintf(&b, " %18.3f", v)
		}
		b.WriteString("\n")
	}
	return b.String()
}
