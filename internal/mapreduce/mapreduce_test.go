package mapreduce

import (
	"testing"
	"testing/quick"
)

type hist = map[uint32]int

func histJob() Job[uint32, hist] {
	return Job[uint32, hist]{
		NewState: func() hist { return hist{} },
		Map:      func(s hist, r uint32) { s[r>>4]++ },
		Merge: func(dst, src hist) {
			for k, v := range src {
				dst[k] += v
			}
		},
	}
}

func TestValidate(t *testing.T) {
	if err := histJob().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := histJob()
	bad.Map = nil
	if err := bad.Validate(); err == nil {
		t.Error("nil Map accepted")
	}
	if _, err := Run(bad, nil); err == nil {
		t.Error("Run accepted invalid job")
	}
	if _, err := ReduceStates(bad, nil); err == nil {
		t.Error("ReduceStates accepted invalid job")
	}
}

func TestRunEqualsSequential(t *testing.T) {
	j := histJob()
	var all []uint32
	shards := make([][]uint32, 4)
	for s := range shards {
		for i := 0; i < 25; i++ {
			v := uint32(s*37 + i*13)
			shards[s] = append(shards[s], v)
			all = append(all, v)
		}
	}
	got, err := Run(j, shards)
	if err != nil {
		t.Fatal(err)
	}
	want := j.MapShard(all)
	if len(got) != len(want) {
		t.Fatalf("bins: %d vs %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("bin %d = %d, want %d", k, got[k], v)
		}
	}
}

func TestReduceStates(t *testing.T) {
	j := histJob()
	s1, s2 := hist{1: 2}, hist{1: 3, 2: 1}
	got, err := ReduceStates(j, []hist{s1, s2})
	if err != nil {
		t.Fatal(err)
	}
	if got[1] != 5 || got[2] != 1 {
		t.Errorf("reduce = %v", got)
	}
}

func TestRecords(t *testing.T) {
	recs := Records([]uint32{1, 2, 3, 4, 5, 6, 7}, 3)
	if len(recs) != 2 || recs[1][2] != 6 {
		t.Errorf("records = %v", recs)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for bad record size")
		}
	}()
	Records(nil, 0)
}

// Property: sharding never changes the result, for any partition.
func TestPropertyShardingInvariance(t *testing.T) {
	f := func(data []uint32, cut uint8) bool {
		j := histJob()
		if len(data) == 0 {
			return true
		}
		c := int(cut) % len(data)
		split, _ := Run(j, [][]uint32{data[:c], data[c:]})
		whole := j.MapShard(data)
		if len(split) != len(whole) {
			return false
		}
		for k, v := range whole {
			if split[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
