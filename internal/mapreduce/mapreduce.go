// Package mapreduce is the host-side MapReduce substrate the paper's
// programming model assumes (Section III-A): BMLAs are written as
// MapReductions whose Map tasks sequentially process records and partially
// reduce them into small per-task live state; the host then performs the
// per-node Reduce over the corelets' partial states (Section IV-D).
//
// In this repository the framework serves three roles: it is the reference
// ("golden") execution used to verify every simulated architecture's kernel
// results bit-for-bit, it implements the final host Reduce over simulated
// corelet state, and it is a plain, usable library for the examples.
package mapreduce

import "fmt"

// Job describes one MapReduction over records of type R with per-task
// partial state S.
type Job[R, S any] struct {
	// NewState allocates an empty partial-reduction state.
	NewState func() S
	// Map folds one record into the task's state (Map + combine).
	Map func(state S, rec R)
	// Merge folds src into dst — the Reduce step. It must be associative
	// over task order for the result to be well-defined.
	Merge func(dst, src S)
}

// Validate reports a configuration error, if any.
func (j Job[R, S]) Validate() error {
	if j.NewState == nil || j.Map == nil || j.Merge == nil {
		return fmt.Errorf("mapreduce: job needs NewState, Map, and Merge")
	}
	return nil
}

// MapShard runs the Map phase over one shard and returns its partial state.
func (j Job[R, S]) MapShard(shard []R) S {
	s := j.NewState()
	for _, r := range shard {
		j.Map(s, r)
	}
	return s
}

// Run executes the full MapReduction: one Map task per shard, then a
// left-to-right Reduce over the partial states (matching the deterministic
// order the simulation harness uses for the host Reduce). It returns the
// final state.
func Run[R, S any](j Job[R, S], shards [][]R) (S, error) {
	var zero S
	if err := j.Validate(); err != nil {
		return zero, err
	}
	final := j.NewState()
	for _, shard := range shards {
		j.Merge(final, j.MapShard(shard))
	}
	return final, nil
}

// ReduceStates merges pre-computed partial states left to right — the host
// Reduce applied to state drained from simulated corelet local memories.
func ReduceStates[R, S any](j Job[R, S], states []S) (S, error) {
	var zero S
	if err := j.Validate(); err != nil {
		return zero, err
	}
	final := j.NewState()
	for _, s := range states {
		j.Merge(final, s)
	}
	return final, nil
}

// Records splits a packed word stream into records of recordWords words,
// dropping any trailing partial record.
func Records(stream []uint32, recordWords int) [][]uint32 {
	if recordWords <= 0 {
		panic("mapreduce: non-positive record size")
	}
	n := len(stream) / recordWords
	out := make([][]uint32, n)
	for i := range out {
		out[i] = stream[i*recordWords : (i+1)*recordWords]
	}
	return out
}
