package dfs

import "repro/internal/metrics"

// RegisterMetrics publishes the controller's step counters and current
// clock under prefix (e.g. "dfs").
func (c *Controller) RegisterMetrics(r *metrics.Registry, prefix string) {
	r.Counter(prefix+".steps_up", func() uint64 { return c.ups })
	r.Counter(prefix+".steps_down", func() uint64 { return c.downs })
	r.Gauge(prefix+".clock_hz", func() float64 { return c.hz })
}
