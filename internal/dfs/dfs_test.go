package dfs

import "testing"

func TestNewValidation(t *testing.T) {
	cases := []struct{ start, step, min, max float64 }{
		{0, 0.05, 100, 1000},
		{500, 0, 100, 1000},
		{500, 1, 100, 1000},
		{500, 0.05, 1000, 100},
		{50, 0.05, 100, 1000},   // below min
		{5000, 0.05, 100, 1000}, // above max
	}
	for i, c := range cases {
		if _, err := New(c.start, c.step, c.min, c.max); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := New(700e6, 0.05, 100e6, 1400e6); err != nil {
		t.Fatal(err)
	}
}

func TestStepsDownWhenStarved(t *testing.T) {
	c, _ := New(700e6, 0.05, 100e6, 1400e6)
	hz := c.Update(100, 0)
	if hz >= 700e6 {
		t.Errorf("starved update did not lower clock: %g", hz)
	}
	if hz != 700e6*0.95 {
		t.Errorf("step size wrong: %g", hz)
	}
	_, downs := c.Steps()
	if downs != 1 {
		t.Errorf("downs = %d", downs)
	}
}

func TestStepsUpWhenFull(t *testing.T) {
	c, _ := New(700e6, 0.05, 100e6, 1400e6)
	if hz := c.Update(0, 50); hz != 700e6*1.05 {
		t.Errorf("full update: %g", hz)
	}
}

func TestQuietIntervalHolds(t *testing.T) {
	c, _ := New(700e6, 0.05, 100e6, 1400e6)
	if hz := c.Update(0, 0); hz != 700e6 {
		t.Errorf("quiet update moved clock: %g", hz)
	}
	if hz := c.Update(5, 5); hz != 700e6 {
		t.Errorf("balanced update moved clock: %g", hz)
	}
}

func TestClamping(t *testing.T) {
	c, _ := New(110e6, 0.5, 100e6, 1400e6)
	if hz := c.Update(10, 0); hz != 100e6 {
		t.Errorf("not clamped to min: %g", hz)
	}
	c2, _ := New(1300e6, 0.5, 100e6, 1400e6)
	if hz := c2.Update(0, 10); hz != 1400e6 {
		t.Errorf("not clamped to max: %g", hz)
	}
}

func TestConvergenceToRate(t *testing.T) {
	// Simulate a memory-bound plant: starvation occurs whenever the clock
	// is above the balance point; fullness when below. The controller must
	// converge to within one step band of the balance point.
	c, _ := New(700e6, 0.05, 100e6, 1400e6)
	const balance = 560e6
	for i := 0; i < 200; i++ {
		if c.Hz() > balance {
			c.Update(10, 0)
		} else {
			c.Update(0, 10)
		}
	}
	hz := c.Hz()
	if hz < balance*0.94 || hz > balance*1.06 {
		t.Errorf("converged to %g, want within 6%% of %g", hz, balance)
	}
}
