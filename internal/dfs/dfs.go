// Package dfs implements the paper's coarse-grain compute–memory
// rate-matching controller (Section IV-F): a one-dimensional hill climber
// that nudges the processor clock in small steps (5%) based on the prefetch
// buffer's occupancy signals. When the corelets find the buffers empty
// (demand accesses starve waiting on DRAM), the application is
// memory-bandwidth-bound and the clock steps down; when flow control keeps
// blocking triggers because buffered rows are not being consumed fast
// enough (buffers full), the application is compute-bound and the clock
// steps up. The paper observes that because BMLA behavior is uniform over
// billions of records, the controller needs to converge only once, so small
// steps suffice and oscillation stays within one step band.
package dfs

import "fmt"

// Controller adjusts one frequency by hill climbing.
type Controller struct {
	stepPct    float64
	minHz      float64
	maxHz      float64
	hz         float64
	ups, downs uint64
}

// New returns a controller starting at startHz. stepPct is the fractional
// step (0.05 for the paper's 5%).
func New(startHz, stepPct, minHz, maxHz float64) (*Controller, error) {
	switch {
	case startHz <= 0 || minHz <= 0 || maxHz < minHz:
		return nil, fmt.Errorf("dfs: bad frequency range [%g, %g] start %g", minHz, maxHz, startHz)
	case stepPct <= 0 || stepPct >= 1:
		return nil, fmt.Errorf("dfs: bad step %g", stepPct)
	case startHz < minHz || startHz > maxHz:
		return nil, fmt.Errorf("dfs: start %g outside [%g, %g]", startHz, minHz, maxHz)
	}
	return &Controller{stepPct: stepPct, minHz: minHz, maxHz: maxHz, hz: startHz}, nil
}

// Hz returns the current frequency.
func (c *Controller) Hz() float64 { return c.hz }

// Steps returns how many up and down steps the controller has taken.
func (c *Controller) Steps() (ups, downs uint64) { return c.ups, c.downs }

// Update consumes the occupancy signal deltas observed since the previous
// update and returns the (possibly unchanged) frequency. starved counts
// demand accesses that waited on memory ("buffers empty"); full counts
// flow-control trigger deferrals ("buffers full"). The dominant signal
// decides the direction; a quiet interval leaves the clock alone.
func (c *Controller) Update(starved, full uint64) float64 {
	switch {
	case starved == 0 && full == 0:
		return c.hz
	case starved > full:
		c.hz *= 1 - c.stepPct
		c.downs++
		if c.hz < c.minHz {
			c.hz = c.minHz
		}
	case full > starved:
		c.hz *= 1 + c.stepPct
		c.ups++
		if c.hz > c.maxHz {
			c.hz = c.maxHz
		}
	}
	return c.hz
}
