package simt

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/kernels"
	"repro/internal/layout"
	"repro/internal/workloads"
)

func testParams() arch.Params {
	p := arch.Default()
	p.Corelets = 8
	p.Contexts = 2
	p.VWSWarpWidth = 4
	p.PrefetchEntries = 8
	return p
}

func launchFor(t *testing.T, b *workloads.Benchmark, p arch.Params, records int) (core.Launch, layout.Layout, kernels.StateLayout, [][]uint32) {
	t.Helper()
	streams := b.Streams(p.Threads(), records, 42)
	lay := layout.Layout{
		RowBytes: p.DRAM.RowBytes, Corelets: p.Corelets, Contexts: p.Contexts,
		Interleave: layout.Word,
	}
	if err := lay.Validate(); err != nil {
		t.Fatal(err)
	}
	sl, err := kernels.SharedState(b.K, p.SharedMemBytes, p.Corelets, p.Contexts)
	if err != nil {
		t.Fatal(err)
	}
	args := kernels.ArgsAndConsts(b.K, lay.Walk(), sl, records)
	return core.Launch{Prog: b.K.Prog, Interleave: layout.Word, Streams: streams, Args: args}, lay, sl, streams
}

func records(b *workloads.Benchmark) int {
	if b.K.RecordWords >= 8 {
		return 12
	}
	return 48
}

func runVariant(t *testing.T, v Variant, b *workloads.Benchmark) (*SM, Result, [][]uint32, layout.Layout, kernels.StateLayout) {
	t.Helper()
	p := testParams()
	n := records(b)
	l, lay, sl, streams := launchFor(t, b, p, n)
	m, err := NewSM(p, energy.Default(), v, l)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	got := workloads.ExtractStates(b, sl, lay, m.ReadShared)
	want := b.GoldenStates(streams, n)
	for th := range want {
		for i := range want[th] {
			if got[th][i] != want[th][i] {
				t.Fatalf("%s/%s: thread %d state[%d] = %#x, want %#x",
					v, b.Name(), th, i, got[th][i], want[th][i])
			}
		}
	}
	return m, res, streams, lay, sl
}

func TestAllBenchmarksOnGPGPU(t *testing.T) {
	for _, b := range workloads.All() {
		b := b
		t.Run(b.Name(), func(t *testing.T) { runVariant(t, GPGPU, b) })
	}
}

func TestAllBenchmarksOnVWS(t *testing.T) {
	for _, b := range workloads.All() {
		b := b
		t.Run(b.Name(), func(t *testing.T) { runVariant(t, VWS, b) })
	}
}

func TestAllBenchmarksOnVWSRow(t *testing.T) {
	for _, b := range workloads.All() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			m, res, _, _, _ := runVariant(t, VWSRow, b)
			if res.Prefetch.Prefetches == 0 {
				t.Error("VWS-row issued no row prefetches")
			}
			if res.Prefetch.PrematureEvicts != 0 {
				t.Error("VWS-row flow control violated")
			}
			_ = m
		})
	}
}

func TestDivergenceOccursOnBranchyKernels(t *testing.T) {
	_, res, _, _, _ := runVariant(t, GPGPU, workloads.CountBench())
	if res.SM.Divergences == 0 {
		t.Error("count's data-dependent filter caused no warp divergence")
	}
	// Divergence wastes lanes: thread instructions per warp instruction
	// must be measurably below full width.
	util := float64(res.SM.ThreadInsts) / float64(res.SM.WarpInsts) / 8.0
	if util > 0.98 {
		t.Errorf("lane utilization %.3f despite divergence", util)
	}
}

func TestVWSNarrowWarpsLoseLessOnBranches(t *testing.T) {
	b := workloads.CountBench()
	_, g, _, _, _ := runVariant(t, GPGPU, b)
	_, v, _, _, _ := runVariant(t, VWS, b)
	gUtil := float64(g.SM.ThreadInsts) / (float64(g.SM.WarpInsts) * 8)
	vUtil := float64(v.SM.ThreadInsts) / (float64(v.SM.WarpInsts) * 4)
	if vUtil <= gUtil {
		t.Errorf("VWS lane utilization %.3f not above GPGPU %.3f", vUtil, gUtil)
	}
}

func TestCoalescingKeepsTransactionsLow(t *testing.T) {
	// Word-interleaved loads from a full-width warp coalesce: transactions
	// per global read must be far below one per lane.
	_, res, _, _, _ := runVariant(t, GPGPU, workloads.VarianceBench())
	loads := float64(res.SM.ThreadInsts) // upper bound proxy; use DRAM reads instead
	_ = loads
	words := uint64(testParams().Threads() * 48)
	if res.SM.Transactions >= uint64(words) {
		t.Errorf("transactions %d not coalesced for %d loaded words", res.SM.Transactions, words)
	}
}

func TestSharedMemoryConflictFree(t *testing.T) {
	// The banked state layout keeps lane i in bank i: indirect accesses
	// must not serialize (Section III-E).
	_, res, _, _, _ := runVariant(t, GPGPU, workloads.CountBench())
	if res.SM.BankConflict > res.SM.WarpInsts/100 {
		t.Errorf("bank conflicts %d on a conflict-free layout", res.SM.BankConflict)
	}
}

func TestGPGPURowLocalityGood(t *testing.T) {
	// Lockstep warps stream rows in order: the DRAM row miss rate of the
	// block stream must stay near the sequential bound.
	_, res, _, _, _ := runVariant(t, GPGPU, workloads.VarianceBench())
	if rate := res.DRAM.RowMissRate(); rate > 0.25 {
		t.Errorf("GPGPU row miss rate %.3f; warps not streaming in lockstep", rate)
	}
}

func TestNewSMValidation(t *testing.T) {
	p := testParams()
	b := workloads.CountBench()
	l, _, _, _ := launchFor(t, b, p, 8)
	bad := l
	bad.Interleave = layout.Slab
	if _, err := NewSM(p, energy.Default(), GPGPU, bad); err == nil {
		t.Error("non-Word layout accepted")
	}
	if _, err := NewSM(p, energy.Default(), GPGPU, core.Launch{Streams: l.Streams, Interleave: layout.Word}); err == nil {
		t.Error("nil program accepted")
	}
	pb := p
	pb.VWSWarpWidth = 3
	if _, err := NewSM(pb, energy.Default(), VWS, l); err == nil {
		t.Error("bad warp width accepted")
	}
}

func TestVariantString(t *testing.T) {
	if GPGPU.String() != "gpgpu" || VWS.String() != "vws" || VWSRow.String() != "vws-row" {
		t.Error("Variant.String wrong")
	}
}

// TestNestedDivergence executes a kernel with a divergent branch inside a
// divergent region and checks per-lane results against a scalar evaluation
// of the same logic.
func TestNestedDivergence(t *testing.T) {
	src := `
	lw   r1, 0(r0)          ; stream base
	csrr r2, coreletid
	lw   r3, 4(r0)
	mul  r2, r2, r3
	add  r1, r1, r2
	csrr r2, contextid
	lw   r3, 8(r0)
	mul  r2, r2, r3
	add  r1, r1, r2
	lw   r4, 12(r0)
	lw   r5, 16(r0)
	lw   r6, 20(r0)
	mv   r7, r6
	lw   r8, 24(r0)
	li   r11, 0             ; accumulator
loop:
	lds  r12
	li   r13, 100
	blt  r12, r13, small
	; big values: nested split on parity
	andi r14, r12, 1
	beqz r14, bigeven
	add  r11, r11, r12      ; big odd: add value
	j    next
bigeven:
	slli r14, r12, 1
	add  r11, r11, r14      ; big even: add 2x value
	j    next
small:
	addi r11, r11, 1        ; small: count
next:
	addi r8, r8, -1
	bnez r8, loop
	; state addr = 2048 + corelet*4 + context*1024
	csrr r2, coreletid
	slli r2, r2, 2
	addi r9, r2, 2048
	csrr r2, contextid
	slli r2, r2, 10
	add  r9, r9, r2
	sw   r11, 0(r9)
	halt
`
	p := testParams()
	prog, err := asm.Assemble("nested", src)
	if err != nil {
		t.Fatal(err)
	}
	lay := layout.Layout{RowBytes: p.DRAM.RowBytes, Corelets: p.Corelets, Contexts: p.Contexts, Interleave: layout.Word}
	const words = 32
	streams := make([][]uint32, lay.Threads())
	for th := range streams {
		streams[th] = make([]uint32, words)
		for i := range streams[th] {
			streams[th][i] = uint32((th*37 + i*53) % 200)
		}
	}
	w := lay.Walk()
	args := []uint32{0, uint32(w.CoreletMult), uint32(w.ContextMult), uint32(w.Stride),
		uint32(w.RowStep - w.Stride), uint32(w.ChunkWords), words}
	m, err := NewSM(p, energy.Default(), GPGPU, core.Launch{Prog: prog, Interleave: layout.Word, Streams: streams, Args: args})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.SM.Divergences == 0 {
		t.Error("no divergences recorded")
	}
	for c := 0; c < p.Corelets; c++ {
		for ctx := 0; ctx < p.Contexts; ctx++ {
			var want uint32
			for _, v := range streams[lay.ThreadID(c, ctx)] {
				switch {
				case v < 100:
					want++
				case v%2 == 1:
					want += v
				default:
					want += 2 * v
				}
			}
			got := m.ReadShared(0, uint32(2048+c*4+ctx*1024))
			if got != want {
				t.Errorf("lane %d warp %d = %d, want %d", c, ctx, got, want)
			}
		}
	}
}

// TestLDSAdvancesPerLane checks the hardware stream walker keeps per-lane
// state: lanes at different addresses advance independently.
func TestLDSAdvancesPerLane(t *testing.T) {
	_, res, _, _, _ := runVariant(t, GPGPU, workloads.VarianceBench())
	if res.SM.ThreadInsts == 0 {
		t.Fatal("no instructions")
	}
	// Functional equality was already verified by runVariant; this test
	// exists to pin LDS under SIMT with the Word layout.
}

// TestJitterRobustness: results stay bit-exact under DRAM completion jitter
// on all three SIMT variants.
func TestJitterRobustness(t *testing.T) {
	for _, v := range []Variant{GPGPU, VWS, VWSRow} {
		b := workloads.CountBench()
		p := testParams()
		n := records(b)
		l, lay, sl, streams := launchFor(t, b, p, n)
		m, err := NewSM(p, energy.Default(), v, l)
		if err != nil {
			t.Fatal(err)
		}
		m.InjectMemoryJitter(200, 5)
		if _, err := m.Run(0); err != nil {
			t.Fatal(err)
		}
		got := workloads.ExtractStates(b, sl, lay, m.ReadShared)
		want := b.GoldenStates(streams, n)
		for th := range want {
			for i := range want[th] {
				if got[th][i] != want[th][i] {
					t.Fatalf("%v: mismatch under jitter", v)
				}
			}
		}
	}
}
