// Package simt models the GPGPU-style PNM baselines of Section V: a 32-lane
// SM with 4-way warp multithreading (GPGPU), the Variable Warp Sizing
// configuration the paper reports always picks 4-wide warps for BMLAs
// (VWS: 8 independent 4-lane slices), and VWS-row — VWS augmented with
// Millipede's row-oriented, flow-controlled prefetch (the paper's
// generality experiment).
//
// Divergence is modeled with the classic immediate-post-dominator
// reconvergence stack, using the reconvergence PCs the assembler computes
// from the kernel CFG. Memory accesses by a warp's lanes coalesce into
// 128-byte transactions against the SM's L1 D-cache (with sequential
// cache-block prefetch); the live state lives in 32-bank word-interleaved
// shared memory with broadcast and bank-conflict serialization — exactly
// the mapping Section III-E prescribes for BMLAs on GPGPUs.
package simt

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/isa"
	"repro/internal/layout"
	"repro/internal/metrics"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/stack"
)

// Variant selects the SM organization.
type Variant int

const (
	// GPGPU: 32-wide warps, L1D cache-block prefetch.
	GPGPU Variant = iota
	// VWS: 4-wide warps in independent slices, L1D cache-block prefetch.
	VWS
	// VWSRow: 4-wide warps with Millipede's row prefetch + flow control.
	VWSRow
)

func (v Variant) String() string {
	switch v {
	case VWS:
		return "vws"
	case VWSRow:
		return "vws-row"
	}
	return "gpgpu"
}

// sdinst is one predecoded instruction: the hot fields of isa.Inst plus the
// class latency resolved at construction, so the warp-issue path performs no
// table lookups. Register indices are pre-masked to the register-file size,
// which lets the lane loops index without bounds checks.
type sdinst struct {
	op           isa.Op
	rd, rs1, rs2 uint8
	lat          int16
	imm          int32
}

// Stats aggregates SM execution counters.
type Stats struct {
	WarpInsts    uint64 // issue slots used (instruction fetch/decode events)
	ThreadInsts  uint64 // per-lane executed instructions
	CondBranches uint64 // per-lane conditional branches
	Divergences  uint64 // warp splits
	SharedAcc    uint64 // shared-memory bank accesses
	BankConflict uint64 // extra cycles from bank conflicts
	Transactions uint64 // coalesced global transactions (cache accesses)
	LaneIdle     uint64 // lane-cycles without work (divergence + stalls)
	Cycles       uint64
}

type stackEntry struct {
	rpc  int
	pc   int
	mask uint64
}

type warp struct {
	id      int // index into SM.warps / SM.gate
	slice   int // lane group: lanes [slice*width, (slice+1)*width)
	context int
	pc      int
	rpc     int
	mask    uint64 // relative to the slice's lanes (bit i = lane slice*width+i)
	stack   []stackEntry
	regs    [][isa.NumRegs]uint32 // per lane in slice
	readyAt int64
	// Outstanding memory state.
	outstanding int
	pendingBlk  []uint32 // coalesced transactions awaiting cache acceptance
	done        bool
	// memDone decrements outstanding; built once at construction so memory
	// accesses don't allocate a closure per transaction.
	memDone func()
}

func (w *warp) fullMask(width int) uint64 { return (uint64(1) << uint(width)) - 1 }

// SM is one streaming multiprocessor plus its memory side.
type SM struct {
	P       arch.Params
	EP      energy.Params
	V       Variant
	node    *arch.Node
	lay     layout.Layout
	ownerOf func(addr uint32) (corelet, slot int)
	prog    *isa.Program
	ops     []sdinst // predecoded prog.Insts
	width   int
	slices  int
	warps   []*warp
	shared  []uint32
	l1      *cache.Cache
	buf     *prefetch.Buffer
	rr      []int // per-slice round-robin pointer
	// maskAll is the all-lanes-active mask for this warp width; execute's
	// hot arms drop the per-lane mask test when a warp is not diverged.
	maskAll uint64
	// latTab maps isa.Class to issue latency (built at NewSM), so the
	// per-instruction latency pick is one indexed load.
	latTab [10]int64
	// slicePending counts warps per slice with coalesced transactions
	// bounced off a full L1 queue, so the per-tick retry scan is skipped
	// entirely in the common case of no structural stalls.
	slicePending []int
	// sliceNext[s] caches the earliest tick at which any warp gate in slice
	// s can open, recorded when an issue scan comes up empty; until then
	// the scan is skipped outright. Gate writes outside the scan (memory
	// wakes, retry drains) reset it to zero, which means "must rescan".
	sliceNext []int64
	ticks     uint64
	stats     Stats
	reg       *metrics.Registry
	running   int
	// liveSlices holds the indices of slices with at least one non-done
	// warp, in ascending order (warps never un-halt, so Tick compacts the
	// list in place); sliceLive counts non-done warps per slice.
	liveSlices []int
	sliceLive  []int
	// progress records whether the last tick issued any lanes: while it
	// holds, NextWork answers "busy" without scanning gates or probing the
	// L1, so the quiescence machinery costs O(1) on non-stalled ticks.
	progress bool
	// busyUntil memoizes a full stall scan that concluded "busy": until
	// this tick NextWork answers "busy" without rescanning. Claiming busy
	// is always safe — at worst a window opening inside the horizon is
	// entered a few edges late — so no invalidation is needed.
	busyUntil int64
	// Scratch buffers reused across memory accesses (hot path).
	scratchBlocks []uint32
	// seen stamps shared-memory words with the epoch of the access that last
	// touched them, giving O(lanes) distinct-address detection per banked
	// access instead of a quadratic scan.
	seen      []uint64
	seenEpoch uint64
	// gate[i] is the earliest tick warp i can issue, or gateBlocked while the
	// warp is done or waiting on memory (outstanding transactions or bounced
	// coalesced blocks). The per-slice issue scan reads this flat array
	// instead of chasing warp pointers; every transition that affects
	// issueability refreshes the entry.
	gate []int64
}

// gateBlocked marks a warp that cannot issue until a memory event (or never,
// once done); completions rewrite the gate with the warp's readyAt.
const gateBlocked = int64(math.MaxInt64)

// busyMemoTicks bounds how long a "busy" stall-scan verdict is reused before
// rescanning: a window opening inside the horizon is entered at most this
// many edges late, in exchange for an 8x cut in scan cost on stalled ticks.
const busyMemoTicks = 8

// NewSM builds and loads an SM for one launch. The launch's interleave must
// be Word (the coalesceable layout the paper says GPGPUs require).
func NewSM(p arch.Params, ep energy.Params, v Variant, l core.Launch) (*SM, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := ep.Validate(); err != nil {
		return nil, err
	}
	if l.Prog == nil {
		return nil, fmt.Errorf("simt: nil program")
	}
	if l.Interleave != layout.Word {
		return nil, fmt.Errorf("simt: SIMT models require the word-interleaved layout")
	}
	width := p.Corelets
	if v != GPGPU {
		width = p.VWSWarpWidth
	}
	if width <= 0 || width > 64 || p.Corelets%width != 0 {
		return nil, fmt.Errorf("simt: bad warp width %d for %d lanes", width, p.Corelets)
	}
	lay := layout.Layout{
		Base:       0,
		RowBytes:   p.DRAM.RowBytes,
		Corelets:   p.Corelets,
		Contexts:   p.Contexts,
		Interleave: layout.Word,
	}
	if err := lay.Validate(); err != nil {
		return nil, err
	}
	flat, err := l.PackInput(lay)
	if err != nil {
		return nil, err
	}
	node, err := arch.NewNode(p, len(flat)*4)
	if err != nil {
		return nil, err
	}
	node.DRAM.LoadWords(0, flat)

	m := &SM{
		P: p, EP: ep, V: v, node: node, lay: lay, ownerOf: lay.OwnerFunc(), prog: l.Prog,
		width:  width,
		slices: p.Corelets / width,
		shared: make([]uint32, p.SharedMemBytes/4),
	}
	m.maskAll = (&warp{}).fullMask(width)
	m.rr = make([]int, m.slices)
	m.slicePending = make([]int, m.slices)
	m.sliceNext = make([]int64, m.slices)
	m.seen = make([]uint64, len(m.shared))
	for cl := range m.latTab {
		m.latTab[cl] = int64(m.latencyOf(isa.Class(cl)))
	}
	m.ops = make([]sdinst, len(l.Prog.Insts))
	for i, in := range l.Prog.Insts {
		m.ops[i] = sdinst{
			op:  in.Op,
			rd:  in.Rd & (isa.NumRegs - 1),
			rs1: in.Rs1 & (isa.NumRegs - 1),
			rs2: in.Rs2 & (isa.NumRegs - 1),
			lat: int16(m.latTab[isa.Classify(in.Op)]),
			imm: in.Imm,
		}
	}
	for i, w := range l.Args {
		m.shared[i] = w
	}
	switch v {
	case VWSRow:
		bcfg := prefetch.Config{
			Entries:     p.PrefetchEntries,
			Corelets:    p.Corelets,
			RowBytes:    p.DRAM.RowBytes,
			FlowControl: p.FlowControl,
			MaxWaiters:  p.Corelets * p.Contexts,
		}
		m.buf, err = prefetch.New(bcfg, node.Port)
		if err != nil {
			return nil, err
		}
		if err := m.buf.Start(0, len(flat)*4); err != nil {
			return nil, err
		}
	default:
		ccfg := cache.Config{
			SizeBytes:     p.GPGPUL1Bytes,
			LineBytes:     p.CacheLineBytes,
			Assoc:         p.CacheAssoc,
			PrefetchDepth: p.PrefetchDepth,
		}
		m.l1, err = cache.New(ccfg, node.Port, 16)
		if err != nil {
			return nil, err
		}
	}
	for s := 0; s < m.slices; s++ {
		for c := 0; c < p.Contexts; c++ {
			w := &warp{id: len(m.warps), slice: s, context: c, rpc: len(l.Prog.Insts)}
			w.mask = w.fullMask(width)
			w.regs = make([][isa.NumRegs]uint32, width)
			// Pre-size the hot per-warp lists so the cycle loop never grows
			// them: a warp can hold at most one distinct block per lane, and
			// the divergence stack is bounded by nesting depth (generously,
			// the program length).
			w.pendingBlk = make([]uint32, 0, 2*width)
			w.stack = make([]stackEntry, 0, 16)
			w.memDone = func() {
				w.outstanding--
				if w.outstanding == 0 && len(w.pendingBlk) == 0 {
					m.gate[w.id] = w.readyAt
					m.sliceNext[w.slice] = 0
				}
			}
			m.warps = append(m.warps, w)
		}
	}
	m.gate = make([]int64, len(m.warps))
	m.scratchBlocks = make([]uint32, 0, 2*width)
	m.running = len(m.warps)
	m.liveSlices = make([]int, m.slices)
	m.sliceLive = make([]int, m.slices)
	for s := 0; s < m.slices; s++ {
		m.liveSlices[s] = s
		m.sliceLive[s] = p.Contexts
	}
	m.reg = metrics.NewRegistry()
	m.reg.Counter("core.cycles", func() uint64 { return m.ticks })
	RegisterStats(m.reg, "simt", func() Stats { return m.stats })
	if m.l1 != nil {
		cache.RegisterStats(m.reg, "cache", m.l1.Stats)
	}
	if m.buf != nil {
		m.buf.RegisterMetrics(m.reg, "prefetch")
	}
	node.Mem.RegisterMetrics(m.reg)
	if node.Stack != nil {
		stack.RegisterMetrics(m.reg, node.Stack)
	}

	if err := node.AttachCompute(m); err != nil {
		return nil, err
	}
	return m, nil
}

// laneID returns the global lane (corelet) index of bit i in warp w.
func (m *SM) laneID(w *warp, i int) int { return w.slice*m.width + i }

func (m *SM) csr(w *warp, lane int, n int32) uint32 {
	gl := m.laneID(w, lane)
	switch n {
	case isa.CSRCoreletID:
		return uint32(gl)
	case isa.CSRContextID:
		return uint32(w.context)
	case isa.CSRNumCorelet:
		return uint32(m.P.Corelets)
	case isa.CSRNumContext:
		return uint32(m.P.Contexts)
	case isa.CSRThreadID:
		return uint32(gl*m.P.Contexts + w.context)
	case isa.CSRNumThreads:
		return uint32(m.P.Corelets * m.P.Contexts)
	}
	panic(fmt.Sprintf("simt: unknown CSR %d", n))
}

// Halted reports whether every warp has finished.
func (m *SM) Halted() bool { return m.running == 0 }

// Tick advances the SM one compute cycle: each slice retries pending memory
// and issues at most one warp instruction.
func (m *SM) Tick(now sim.Time) {
	m.ticks++
	m.stats.Cycles++
	if m.buf != nil {
		m.buf.Pump()
	}
	issuedLanes := 0
	live := m.liveSlices
	k := 0
	for i, s := range live {
		issuedLanes += m.tickSlice(s)
		if m.sliceLive[s] > 0 {
			if k != i {
				live[k] = s
			}
			k++
		}
	}
	m.liveSlices = live[:k]
	m.stats.LaneIdle += uint64(m.P.Corelets - issuedLanes)
	m.progress = issuedLanes > 0
}

// NextWork implements sim.NextWorker: the earliest future tick at which any
// live slice could retry a bounced transaction (next tick, when pending) or
// issue a warp (its gate value; gateBlocked warps wait on memory events,
// which only arrive from memory-domain work ticks that end the window).
func (m *SM) NextWork(sim.Time) sim.Time {
	t := int64(m.ticks)
	if m.progress {
		// An SM that issued lanes last tick is busy; the full stall scan
		// below runs only on dead ticks, where a window might open.
		// (Conservative is always safe: claiming busy just skips less.)
		return m.node.Compute.TimeOfTick(uint64(t + 1))
	}
	if t < m.busyUntil {
		// A recent full scan already proved the SM busy; re-answer busy
		// until the horizon without paying the gate/L1 sweeps again.
		return m.node.Compute.TimeOfTick(uint64(t + 1))
	}
	if m.buf != nil && m.buf.PumpPending() > 0 && !m.buf.PumpStalled() {
		// Stalled pumps (every pending fetch facing a full channel queue)
		// are provable no-ops until the next channel work tick; SkipTicks
		// replays their reject bookkeeping.
		m.busyUntil = t + busyMemoTicks
		return m.node.Compute.TimeOfTick(uint64(t + 1))
	}
	w := gateBlocked
	for _, s := range m.liveSlices {
		if m.slicePending[s] > 0 && !m.sliceRetriesStalled(s) {
			m.busyUntil = t + busyMemoTicks
			return m.node.Compute.TimeOfTick(uint64(t + 1))
		}
		base := s * m.P.Contexts
		for _, g := range m.gate[base : base+m.P.Contexts] {
			if g == gateBlocked {
				continue
			}
			if g <= t+1 {
				m.busyUntil = t + busyMemoTicks
				return m.node.Compute.TimeOfTick(uint64(t + 1))
			}
			if g < w {
				w = g
			}
		}
	}
	if w == gateBlocked {
		return sim.Never
	}
	return m.node.Compute.TimeOfTick(uint64(w))
}

// SkipTicks implements sim.NextWorker: a dead SM tick touches only the
// cycle counters and the all-lanes-idle tally (no slice issues, so the
// live-slice list and round-robin pointers are untouched).
func (m *SM) SkipTicks(n int64) {
	m.ticks += uint64(n)
	m.stats.Cycles += uint64(n)
	m.stats.LaneIdle += uint64(n) * uint64(m.P.Corelets)
	if m.buf != nil {
		m.buf.SkipPumpTicks(n)
	}
	for _, s := range m.liveSlices {
		if m.slicePending[s] == 0 {
			continue
		}
		// Each elided tick re-attempted every bounced transaction once
		// (tickSlice's retry sweep); replay the per-attempt bookkeeping.
		base := s * m.P.Contexts
		for _, w := range m.warps[base : base+m.P.Contexts] {
			for _, b := range w.pendingBlk {
				m.l1.TallyRetries(b, uint64(n))
			}
		}
	}
}

// sliceRetriesStalled reports whether every transaction bounced off the L1
// by slice s would provably bounce again: the cache's answer can change
// only on a fill completion or another warp's access, and blocked warps
// (the only state under which a window forms) produce neither.
func (m *SM) sliceRetriesStalled(s int) bool {
	if m.l1 == nil {
		return false
	}
	base := s * m.P.Contexts
	for _, w := range m.warps[base : base+m.P.Contexts] {
		for _, b := range w.pendingBlk {
			if !m.l1.WouldRetry(b) {
				return false
			}
		}
	}
	return true
}

func (m *SM) tickSlice(s int) int {
	n := m.P.Contexts
	base := s * n
	warps := m.warps[base : base+n]
	// Retry transactions bounced off full queues.
	if m.slicePending[s] > 0 {
		for _, w := range warps {
			if len(w.pendingBlk) > 0 {
				m.retryBlocks(w)
				if len(w.pendingBlk) == 0 {
					m.slicePending[s]--
					if w.outstanding == 0 {
						m.gate[w.id] = w.readyAt
						m.sliceNext[s] = 0
					}
				}
			}
		}
	}
	now := int64(m.ticks)
	if m.sliceNext[s] > now {
		// A previous empty scan proved no gate can open before sliceNext,
		// and every gate write since would have reset it.
		return 0
	}
	// The issue scan reads only the flat gate array; warp state is touched
	// just for the warp that actually issues.
	gates := m.gate[base : base+n]
	idx := m.rr[s] + 1
	low := int64(gateBlocked)
	for i := 0; i < n; i++ {
		if idx >= n {
			idx -= n
		}
		if g := gates[idx]; g > now {
			if g < low {
				low = g
			}
			idx++
			continue
		}
		m.rr[s] = idx
		w := warps[idx]
		act := m.execute(w)
		g := w.readyAt
		if w.done || w.outstanding > 0 || len(w.pendingBlk) > 0 {
			g = gateBlocked
		}
		gates[idx] = g
		return act
	}
	m.sliceNext[s] = low
	return 0
}

// reconverge pops the divergence stack while the warp sits at a
// reconvergence point.
func (w *warp) reconverge() {
	for len(w.stack) > 0 && w.pc == w.rpc {
		top := w.stack[len(w.stack)-1]
		w.stack = w.stack[:len(w.stack)-1]
		w.pc, w.mask, w.rpc = top.pc, top.mask, top.rpc
	}
}

// branchTaken builds the taken-lane mask for a conditional branch. The
// condition switch sits outside the lane loop, so each branch op runs a
// tight predictable loop over its active lanes.
func branchTaken(op isa.Op, regs [][isa.NumRegs]uint32, mask uint64, rs1, rs2 uint8) uint64 {
	var taken uint64
	switch op {
	case isa.BEQ:
		for l := range regs {
			if mask>>uint(l)&1 != 0 && regs[l][rs1&31] == regs[l][rs2&31] {
				taken |= 1 << uint(l)
			}
		}
	case isa.BNE:
		for l := range regs {
			if mask>>uint(l)&1 != 0 && regs[l][rs1&31] != regs[l][rs2&31] {
				taken |= 1 << uint(l)
			}
		}
	case isa.BLT:
		for l := range regs {
			if mask>>uint(l)&1 != 0 && int32(regs[l][rs1&31]) < int32(regs[l][rs2&31]) {
				taken |= 1 << uint(l)
			}
		}
	case isa.BGE:
		for l := range regs {
			if mask>>uint(l)&1 != 0 && int32(regs[l][rs1&31]) >= int32(regs[l][rs2&31]) {
				taken |= 1 << uint(l)
			}
		}
	case isa.BLTU:
		for l := range regs {
			if mask>>uint(l)&1 != 0 && regs[l][rs1&31] < regs[l][rs2&31] {
				taken |= 1 << uint(l)
			}
		}
	default: // BGEU
		for l := range regs {
			if mask>>uint(l)&1 != 0 && regs[l][rs1&31] >= regs[l][rs2&31] {
				taken |= 1 << uint(l)
			}
		}
	}
	return taken
}

// execute runs one warp instruction and returns the number of active lanes.
// The opcode dispatch happens once per warp instruction; every arm runs its
// own inline loop over the active lanes, so the per-lane work is a few
// straight-line operations with no calls and no table lookups.
func (m *SM) execute(w *warp) int {
	w.reconverge()
	in := &m.ops[w.pc]
	active := bits.OnesCount64(w.mask)
	m.stats.WarpInsts++
	m.stats.ThreadInsts += uint64(active)
	lat := int64(in.lat)
	regs := w.regs
	mask := w.mask
	rd, rs1, rs2 := in.rd, in.rs1, in.rs2

	switch in.op {
	case isa.HALT:
		if len(w.stack) != 0 {
			panic("simt: HALT under divergence (kernel reconvergence bug)")
		}
		w.done = true
		m.running--
		m.sliceLive[w.slice]--
		return active
	case isa.NOP:
		w.pc++
	case isa.CSRR:
		for l := range regs {
			if mask>>uint(l)&1 != 0 && rd != 0 {
				regs[l][rd&31] = m.csr(w, l, in.imm)
			}
		}
		w.pc++
	case isa.LW:
		lat += int64(m.sharedAccess(w, in, false))
		w.pc++
	case isa.SW:
		lat += int64(m.sharedAccess(w, in, true))
		w.pc++
	case isa.LDG, isa.LDS:
		lat += int64(m.globalLoad(w, in))
		w.pc++
	case isa.STG:
		panic("simt: STG not supported by the PNM kernels")
	case isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLTU, isa.BGEU:
		m.stats.CondBranches += uint64(active)
		taken := branchTaken(in.op, regs, mask, rs1, rs2)
		lat = int64(m.P.Latencies.TakenBranch)
		switch {
		case taken == 0:
			w.pc++
		case taken == mask:
			w.pc = int(in.imm)
		default:
			m.stats.Divergences++
			r := m.prog.ReconvPC[w.pc]
			// Continuation at the reconvergence point, then the taken
			// path; execution proceeds on the fall-through path.
			w.stack = append(w.stack,
				stackEntry{rpc: w.rpc, pc: r, mask: mask},
				stackEntry{rpc: r, pc: int(in.imm), mask: taken},
			)
			w.mask &^= taken
			w.rpc = r
			w.pc++
		}
	case isa.J:
		w.pc = int(in.imm)
		lat = int64(m.P.Latencies.TakenBranch)
	case isa.JAL:
		if rd != 0 {
			link := uint32(w.pc + 1)
			for l := range regs {
				if mask>>uint(l)&1 != 0 {
					regs[l][rd&31] = link
				}
			}
		}
		w.pc = int(in.imm)
		lat = int64(m.P.Latencies.TakenBranch)
	case isa.JR:
		var target uint32
		first := true
		for l := range regs {
			if mask>>uint(l)&1 == 0 {
				continue
			}
			v := regs[l][rs1&31]
			if first {
				target, first = v, false
			} else if v != target {
				panic("simt: divergent JR targets unsupported")
			}
		}
		w.pc = int(target)
		lat = int64(m.P.Latencies.TakenBranch)
	// Hot ALU arms: the rd==0 (discard) test is loop-invariant and hoisted,
	// and an undiverged warp (mask == maskAll, the overwhelmingly common
	// case) runs a straight-line lane loop with no per-lane mask test.
	case isa.ADD:
		if rd != 0 {
			if mask == m.maskAll {
				for l := range regs {
					r := &regs[l]
					r[rd&31] = r[rs1&31] + r[rs2&31]
				}
			} else {
				for l := range regs {
					if mask>>uint(l)&1 != 0 {
						r := &regs[l]
						r[rd&31] = r[rs1&31] + r[rs2&31]
					}
				}
			}
		}
		w.pc++
	case isa.SUB:
		if rd != 0 {
			if mask == m.maskAll {
				for l := range regs {
					r := &regs[l]
					r[rd&31] = r[rs1&31] - r[rs2&31]
				}
			} else {
				for l := range regs {
					if mask>>uint(l)&1 != 0 {
						r := &regs[l]
						r[rd&31] = r[rs1&31] - r[rs2&31]
					}
				}
			}
		}
		w.pc++
	case isa.MUL:
		if rd != 0 {
			if mask == m.maskAll {
				for l := range regs {
					r := &regs[l]
					r[rd&31] = uint32(int32(r[rs1&31]) * int32(r[rs2&31]))
				}
			} else {
				for l := range regs {
					if mask>>uint(l)&1 != 0 {
						r := &regs[l]
						r[rd&31] = uint32(int32(r[rs1&31]) * int32(r[rs2&31]))
					}
				}
			}
		}
		w.pc++
	case isa.ADDI:
		if rd != 0 {
			if mask == m.maskAll {
				for l := range regs {
					r := &regs[l]
					r[rd&31] = uint32(int32(r[rs1&31]) + in.imm)
				}
			} else {
				for l := range regs {
					if mask>>uint(l)&1 != 0 {
						r := &regs[l]
						r[rd&31] = uint32(int32(r[rs1&31]) + in.imm)
					}
				}
			}
		}
		w.pc++
	case isa.SLLI:
		sh := uint32(in.imm) & 31
		if rd != 0 {
			if mask == m.maskAll {
				for l := range regs {
					r := &regs[l]
					r[rd&31] = r[rs1&31] << sh
				}
			} else {
				for l := range regs {
					if mask>>uint(l)&1 != 0 {
						r := &regs[l]
						r[rd&31] = r[rs1&31] << sh
					}
				}
			}
		}
		w.pc++
	case isa.SRLI:
		sh := uint32(in.imm) & 31
		if rd != 0 {
			if mask == m.maskAll {
				for l := range regs {
					r := &regs[l]
					r[rd&31] = r[rs1&31] >> sh
				}
			} else {
				for l := range regs {
					if mask>>uint(l)&1 != 0 {
						r := &regs[l]
						r[rd&31] = r[rs1&31] >> sh
					}
				}
			}
		}
		w.pc++
	case isa.FADD:
		if rd != 0 {
			if mask == m.maskAll {
				for l := range regs {
					r := &regs[l]
					r[rd&31] = isa.Bits(isa.F32(r[rs1&31]) + isa.F32(r[rs2&31]))
				}
			} else {
				for l := range regs {
					if mask>>uint(l)&1 != 0 {
						r := &regs[l]
						r[rd&31] = isa.Bits(isa.F32(r[rs1&31]) + isa.F32(r[rs2&31]))
					}
				}
			}
		}
		w.pc++
	case isa.FSUB:
		if rd != 0 {
			if mask == m.maskAll {
				for l := range regs {
					r := &regs[l]
					r[rd&31] = isa.Bits(isa.F32(r[rs1&31]) - isa.F32(r[rs2&31]))
				}
			} else {
				for l := range regs {
					if mask>>uint(l)&1 != 0 {
						r := &regs[l]
						r[rd&31] = isa.Bits(isa.F32(r[rs1&31]) - isa.F32(r[rs2&31]))
					}
				}
			}
		}
		w.pc++
	case isa.FMUL:
		if rd != 0 {
			if mask == m.maskAll {
				for l := range regs {
					r := &regs[l]
					r[rd&31] = isa.Bits(isa.F32(r[rs1&31]) * isa.F32(r[rs2&31]))
				}
			} else {
				for l := range regs {
					if mask>>uint(l)&1 != 0 {
						r := &regs[l]
						r[rd&31] = isa.Bits(isa.F32(r[rs1&31]) * isa.F32(r[rs2&31]))
					}
				}
			}
		}
		w.pc++
	case isa.FLT:
		if rd != 0 {
			for l := range regs {
				if mask>>uint(l)&1 != 0 {
					r := &regs[l]
					var v uint32
					if isa.F32(r[rs1&31]) < isa.F32(r[rs2&31]) {
						v = 1
					}
					r[rd&31] = v
				}
			}
		}
		w.pc++
	default:
		// Rare ops fall back to the shared scalar evaluator; the warp-wide
		// dispatch already happened, so this is one predictable call per
		// lane with the op fixed across the loop.
		for l := range regs {
			if mask>>uint(l)&1 == 0 {
				continue
			}
			r := &regs[l]
			v, ok := isa.EvalALUOp(in.op, in.imm, r[rs1&31], r[rs2&31])
			if !ok {
				panic(fmt.Sprintf("simt: unhandled op %v", in.op))
			}
			if rd != 0 {
				r[rd&31] = v
			}
		}
		w.pc++
	}
	w.readyAt = int64(m.ticks) + lat
	return active
}

func (m *SM) latencyOf(c isa.Class) int {
	l := m.P.Latencies
	switch c {
	case isa.ClassMul:
		return l.Mul
	case isa.ClassDiv:
		return l.Div
	case isa.ClassFPU:
		return l.FPU
	case isa.ClassFDiv:
		return l.FDiv
	case isa.ClassLocalMem:
		return l.Local
	case isa.ClassGlobalMem:
		return l.GlobalHit
	default:
		return l.ALU
	}
}

func (m *SM) forEachLane(w *warp, f func(lane int)) {
	for l := 0; l < m.width; l++ {
		if w.mask&(1<<uint(l)) != 0 {
			f(l)
		}
	}
}

func (m *SM) setReg(w *warp, lane int, rd uint8, v uint32) {
	if rd != 0 {
		w.regs[lane][rd] = v
	}
}

// sharedAccess performs a banked shared-memory access for all active lanes
// and returns the extra serialization cycles (conflict degree - 1). Lanes
// reading the same word broadcast for free. Distinct-word detection stamps
// an epoch per shared word — O(lanes) per access with no clearing pass,
// replacing the previous O(lanes^2) scratch-buffer scan.
func (m *SM) sharedAccess(w *warp, in *sdinst, store bool) int {
	epoch := m.seenEpoch + 1
	m.seenEpoch = epoch
	regs := w.regs
	mask := w.mask
	rd, rs1, rs2, imm := in.rd, in.rs1, in.rs2, in.imm
	var perBank [32]uint8
	distinct := 0
	worst := 1
	for l := range regs {
		if mask>>uint(l)&1 == 0 {
			continue
		}
		r := &regs[l]
		addr := uint32(int32(r[rs1&31]) + imm)
		if addr%4 != 0 {
			panic(fmt.Sprintf("simt: unaligned shared access %#x", addr))
		}
		word := int(addr / 4)
		if word >= len(m.shared) {
			panic(fmt.Sprintf("simt: shared access %#x beyond %d B shared memory", addr, len(m.shared)*4))
		}
		if store {
			m.shared[word] = r[rs2&31]
		} else if rd != 0 {
			r[rd&31] = m.shared[word]
		}
		if m.seen[word] != epoch {
			m.seen[word] = epoch
			distinct++
			b := word & 31
			perBank[b]++
			if int(perBank[b]) > worst {
				worst = int(perBank[b])
			}
		}
	}
	m.stats.SharedAcc += uint64(distinct)
	if worst > 1 {
		m.stats.BankConflict += uint64(worst - 1)
	}
	return worst - 1
}

// globalLoad performs the lanes' loads functionally, then models the timing:
// coalesce into cache-block transactions (GPGPU/VWS) or per-word prefetch
// buffer accesses (VWS-row). It returns the extra issue-slot cycles consumed
// by transactions beyond the first.
func (m *SM) globalLoad(w *warp, in *sdinst) int {
	regs := w.regs
	mask := w.mask
	rd, rs1, imm := in.rd, in.rs1, in.imm
	stream := in.op == isa.LDS
	if m.buf != nil {
		base := w.slice * m.width
		for l := range regs {
			if mask>>uint(l)&1 == 0 {
				continue
			}
			r := &regs[l]
			var addr uint32
			if stream {
				addr = r[isa.StreamAddr]
				advanceStream(r)
			} else {
				addr = uint32(int32(r[rs1&31]) + imm)
			}
			if rd != 0 {
				r[rd&31] = m.node.DRAM.ReadWord(addr)
			}
			c, slot := m.ownerOf(addr)
			if c != base+l {
				panic("simt: lane touched another lane's slab")
			}
			if m.buf.Access(c, slot, addr, w.memDone) == prefetch.Waiting {
				w.outstanding++
			}
		}
		m.stats.Transactions += uint64(bits.OnesCount64(mask))
		return 0
	}
	blocks := m.scratchBlocks[:0]
	lb := int64(m.P.CacheLineBytes)
	for l := range regs {
		if mask>>uint(l)&1 == 0 {
			continue
		}
		r := &regs[l]
		var addr uint32
		if stream {
			addr = r[isa.StreamAddr]
			advanceStream(r)
		} else {
			addr = uint32(int32(r[rs1&31]) + imm)
		}
		if rd != 0 {
			r[rd&31] = m.node.DRAM.ReadWord(addr)
		}
		blk := uint32(int64(addr) / lb * lb)
		dup := false
		for _, b := range blocks {
			if b == blk {
				dup = true
				break
			}
		}
		if !dup {
			blocks = append(blocks, blk)
		}
	}
	w.pendingBlk = append(w.pendingBlk, blocks...)
	n := len(blocks)
	m.scratchBlocks = blocks[:0]
	m.retryBlocks(w)
	if len(w.pendingBlk) > 0 {
		m.slicePending[w.slice]++
	}
	return n - 1
}

// retryBlocks issues as many pending coalesced transactions as the L1 will
// accept this cycle.
func (m *SM) retryBlocks(w *warp) {
	rest := w.pendingBlk[:0]
	for _, b := range w.pendingBlk {
		switch m.l1.Access(b, w.memDone) {
		case cache.Hit:
			m.stats.Transactions++
		case cache.Miss:
			m.stats.Transactions++
			w.outstanding++
		default: // Retry
			rest = append(rest, b)
		}
	}
	w.pendingBlk = rest
}

// Run executes to completion and returns aggregated results.
func (m *SM) Run(limit sim.Time) (Result, error) {
	t, err := m.node.Run(limit)
	if err != nil {
		return Result{}, err
	}
	r := Result{Time: t, ComputeCycles: m.ticks, SM: m.stats}
	ds := m.node.Mem.DRAMStats()
	r.DRAM = core.DRAMStats{RowHits: ds.RowHits, RowMisses: ds.RowMisses, BytesRead: ds.BytesRead, Requests: ds.Requests}
	cs := m.node.Mem.CtlStats()
	r.Mem = core.MemStats{StallCycles: cs.StallCycles, MaxOccupancy: cs.MaxOccupancy, Rejected: cs.Rejected}
	if m.node.Stack != nil {
		r.Stack = m.node.Stack.Stats()
	}
	if m.l1 != nil {
		r.Cache = m.l1.Stats()
	}
	if m.buf != nil {
		r.Prefetch = m.buf.Stats()
	}
	r.Energy = m.energy(t)
	r.Metrics = m.reg.Snapshot()
	r.Allocs, r.AllocBytes = m.node.RunAllocs, m.node.RunBytes
	r.SkippedEdges, r.SkipWindows = m.node.RunSkippedEdges, m.node.RunSkipWindows
	return r, nil
}

// Result aggregates one SM run.
type Result struct {
	Time          sim.Time
	ComputeCycles uint64
	SM            Stats
	Cache         cache.Stats
	Prefetch      prefetch.Stats
	DRAM          core.DRAMStats
	Mem           core.MemStats
	Stack         stack.Stats
	Energy        energy.Breakdown
	Metrics       metrics.Snapshot
	// Allocs and AllocBytes count heap allocations made inside the run's
	// cycle loop (zero in steady state by design; see benchreport).
	Allocs     uint64
	AllocBytes uint64
	// SkippedEdges and SkipWindows report the quiescence fast-forward's
	// informational counters (results are bit-identical with skipping off).
	SkippedEdges uint64
	SkipWindows  uint64
}

// energy: SIMT amortizes instruction fetch over the warp but pays the
// shared-memory crossbar on every live-state access and idles lanes on
// divergence (Section VI-B's explanation of Figure 4).
func (m *SM) energy(t sim.Time) energy.Breakdown {
	ep := m.EP
	var b energy.Breakdown
	b.CorePJ = float64(m.stats.WarpInsts)*ep.IFetchWarpPJ +
		float64(m.stats.ThreadInsts)*ep.InstPJ +
		float64(m.stats.SharedAcc)*ep.SharedMemPJ +
		float64(m.stats.LaneIdle)*ep.IdlePJ
	if m.buf != nil {
		b.CorePJ += float64(m.stats.Transactions) * ep.LocalPJ
	} else {
		b.CorePJ += float64(m.stats.Transactions) * ep.L1LargePJ
	}
	ds := m.node.Mem.DRAMStats()
	b.DRAMPJ = ep.DRAM(ds.RowMisses, ds.BytesRead)
	b.LeakPJ = ep.Leakage(m.P.Corelets, float64(t)/1e12)
	return b
}

// advanceStream steps a lane's hardware stream walker (isa.LDS semantics).
func advanceStream(regs *[isa.NumRegs]uint32) {
	regs[isa.StreamAddr] += regs[isa.StreamStride]
	regs[isa.StreamCount]--
	if regs[isa.StreamCount] == 0 {
		regs[isa.StreamAddr] += regs[isa.StreamFix]
		regs[isa.StreamCount] = regs[isa.StreamChunk]
	}
}

// InjectMemoryJitter enables deterministic DRAM completion jitter (fault
// injection). Call before Run.
func (m *SM) InjectMemoryJitter(max int64, seed uint64) { m.node.InjectMemoryJitter(max, seed) }

// ReadShared reads a word of SM shared memory after the run (host Reduce).
// The corelet argument is ignored: shared memory is SM-wide.
func (m *SM) ReadShared(_ int, addr uint32) uint32 { return m.shared[addr/4] }

// Layout returns the input layout.
func (m *SM) Layout() layout.Layout { return m.lay }
