package simt

import "repro/internal/metrics"

// RegisterStats publishes the SIMT execution counters of the Stats returned
// by get under prefix (e.g. "simt"). get is evaluated only at snapshot time.
func RegisterStats(r *metrics.Registry, prefix string, get func() Stats) {
	r.Counter(prefix+".warp_insts", func() uint64 { return get().WarpInsts })
	r.Counter(prefix+".thread_insts", func() uint64 { return get().ThreadInsts })
	r.Counter(prefix+".cond_branches", func() uint64 { return get().CondBranches })
	r.Counter(prefix+".divergences", func() uint64 { return get().Divergences })
	r.Counter(prefix+".shared_acc", func() uint64 { return get().SharedAcc })
	r.Counter(prefix+".bank_conflict", func() uint64 { return get().BankConflict })
	r.Counter(prefix+".transactions", func() uint64 { return get().Transactions })
	r.Counter(prefix+".lane_idle", func() uint64 { return get().LaneIdle })
	r.Counter(prefix+".cycles", func() uint64 { return get().Cycles })
	r.Gauge(prefix+".divergence_rate", func() float64 {
		s := get()
		if s.CondBranches == 0 {
			return 0
		}
		return float64(s.Divergences) / float64(s.CondBranches)
	})
}
