package energy

import (
	"math"
	"testing"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Default()
	bad.InstPJ = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero constant accepted")
	}
}

func TestStreamingCostNearSixPJPerBit(t *testing.T) {
	// The paper's Table III cites 6 pJ/bit for die-stacked DRAM access;
	// the split constants must reproduce it for perfect row streaming
	// (one activation per 2 KB row).
	p := Default()
	const rows = 100
	pj := p.DRAM(rows, rows*2048)
	perBit := pj / (rows * 2048 * 8)
	if math.Abs(perBit-6.0) > 0.25 {
		t.Errorf("streaming cost = %.2f pJ/bit, want ~6", perBit)
	}
}

func TestRowMissesRaiseDRAMEnergy(t *testing.T) {
	p := Default()
	bytes := uint64(1 << 20)
	good := p.DRAM(bytes/2048, bytes) // one activate per row
	bad := p.DRAM(bytes/128/2, bytes) // an activate every other cache block
	if bad <= good*1.1 {
		t.Errorf("poor locality energy %e not clearly above streaming %e", bad, good)
	}
}

func TestOffChipPremium(t *testing.T) {
	p := Default()
	bytes := uint64(1 << 20)
	onStack := p.DRAM(bytes/2048, bytes)
	off := p.OffChip(bytes)
	if off < 5*onStack {
		t.Errorf("off-chip %e should dwarf die-stacked %e (70 vs ~6 pJ/bit)", off, onStack)
	}
}

func TestLeakageScales(t *testing.T) {
	p := Default()
	one := p.Leakage(32, 1e-3)
	two := p.Leakage(32, 2e-3)
	if math.Abs(two-2*one) > 1 {
		t.Error("leakage not linear in time")
	}
	if p.Leakage(64, 1e-3) <= one {
		t.Error("leakage not increasing in cores")
	}
}

func TestBreakdown(t *testing.T) {
	b := Breakdown{CorePJ: 1, DRAMPJ: 2, LeakPJ: 3}
	if b.TotalPJ() != 6 {
		t.Errorf("total = %v", b.TotalPJ())
	}
	if math.Abs(b.TotalJ()-6e-12) > 1e-20 {
		t.Errorf("joules = %v", b.TotalJ())
	}
	b.Add(Breakdown{CorePJ: 1, DRAMPJ: 1, LeakPJ: 1})
	if b.CorePJ != 2 || b.DRAMPJ != 3 || b.LeakPJ != 4 {
		t.Errorf("after add: %+v", b)
	}
}
