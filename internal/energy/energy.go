// Package energy is the GPUWattch-analog event-energy model (Section V).
// Each architecture run produces event counts (instructions, SRAM accesses,
// DRAM activates and bits, idle cycles, runtime); this package converts
// them into the paper's Figure 4 breakdown — core dynamic energy, DRAM
// energy, and static leakage — using per-event constants.
//
// The constants are calibrated, not measured: like GPUWattch itself they
// matter only through the ratios the paper's Figure 4 exercises — the
// shared-memory crossbar premium over private local SRAM, the SIMT
// amortization of instruction fetch when warps stay converged, the DRAM
// activate-vs-transfer split that makes row misses expensive (6 pJ/bit
// streaming reference from the paper's Table III), and imperfect clock
// gating that charges idle cycles. EXPERIMENTS.md records the resulting
// paper-vs-measured comparisons.
package energy

import "fmt"

// Params are the per-event energies (picojoules) and leakage power.
type Params struct {
	// Core dynamic.
	InstPJ       float64 // execute + register file, per instruction per thread/lane
	IFetchMIMDPJ float64 // I-cache fetch + decode per instruction per core (MIMD pays per core)
	IFetchWarpPJ float64 // I-cache fetch + decode per warp instruction (SIMT amortizes over lanes)
	LocalPJ      float64 // 4 KB corelet-local SRAM, per word access
	L1SmallPJ    float64 // 5 KB SSMC L1D, per access
	L1LargePJ    float64 // 32 KB GPGPU L1D, per access
	SharedMemPJ  float64 // 128 KB shared memory incl. 32x32 crossbar, per bank access
	IdlePJ       float64 // imperfect clock gating, per corelet idle cycle
	L2PJ         float64 // conventional multicore 1 MB L2, per access

	// DRAM.
	DRAMBitPJ    float64 // per bit transferred (die-stacked)
	DRAMActPJ    float64 // per row activation (die-stacked)
	OffChipBitPJ float64 // per bit, conventional off-chip channel (70 pJ/bit, [44])

	// Static.
	LeakMWPerCore float64 // leakage power per simple core/corelet/lane, milliwatts
	LeakMWBase    float64 // per-processor uncore leakage, milliwatts
}

// Default returns the calibrated 22 nm constants. The die-stacked DRAM pair
// is chosen so that perfect full-row streaming costs ~6 pJ/bit
// (5.9 pJ/bit transfer + 1.8 nJ/activation amortized over a 2 KB row),
// matching Table III's reference.
func Default() Params {
	return Params{
		InstPJ:        3.0,
		IFetchMIMDPJ:  2.2,
		IFetchWarpPJ:  9.0,
		LocalPJ:       1.2,
		L1SmallPJ:     2.4,
		L1LargePJ:     9.5,
		SharedMemPJ:   16.0,
		IdlePJ:        1.1,
		L2PJ:          28.0,
		DRAMBitPJ:     5.9,
		DRAMActPJ:     1800.0,
		OffChipBitPJ:  70.0,
		LeakMWPerCore: 0.9,
		LeakMWBase:    6.0,
	}
}

// Validate rejects non-positive constants.
func (p Params) Validate() error {
	vals := []float64{p.InstPJ, p.IFetchMIMDPJ, p.IFetchWarpPJ, p.LocalPJ,
		p.L1SmallPJ, p.L1LargePJ, p.SharedMemPJ, p.IdlePJ, p.L2PJ,
		p.DRAMBitPJ, p.DRAMActPJ, p.OffChipBitPJ, p.LeakMWPerCore, p.LeakMWBase}
	for i, v := range vals {
		if v <= 0 {
			return fmt.Errorf("energy: constant %d non-positive", i)
		}
	}
	return nil
}

// Breakdown is the Figure 4 stacked-bar decomposition, in picojoules.
type Breakdown struct {
	CorePJ float64 // pipelines, I-caches, local/L1/shared SRAM, idle dynamic
	DRAMPJ float64
	LeakPJ float64
}

// TotalPJ returns the sum of all components.
func (b Breakdown) TotalPJ() float64 { return b.CorePJ + b.DRAMPJ + b.LeakPJ }

// TotalJ returns the total in joules.
func (b Breakdown) TotalJ() float64 { return b.TotalPJ() * 1e-12 }

// Add accumulates another breakdown.
func (b *Breakdown) Add(o Breakdown) {
	b.CorePJ += o.CorePJ
	b.DRAMPJ += o.DRAMPJ
	b.LeakPJ += o.LeakPJ
}

// DRAM returns the die-stacked DRAM energy for the given activity.
func (p Params) DRAM(activates, bytes uint64) float64 {
	return float64(activates)*p.DRAMActPJ + float64(bytes)*8*p.DRAMBitPJ
}

// OffChip returns conventional off-chip memory energy (Figure 5 baseline).
func (p Params) OffChip(bytes uint64) float64 {
	return float64(bytes) * 8 * p.OffChipBitPJ
}

// Leakage returns static energy for n cores running for seconds of wall
// time (the paper notes static power is comparable across architectures so
// static energy tracks runtime).
func (p Params) Leakage(cores int, seconds float64) float64 {
	mw := p.LeakMWPerCore*float64(cores) + p.LeakMWBase
	return mw * 1e-3 * seconds * 1e12 // W*s -> pJ
}
