package trace

import (
	"encoding/json"
	"fmt"
)

// chromeEvent is one record of the Chrome trace-event format (JSON object
// form), loadable in Perfetto and chrome://tracing.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TsUS  float64        `json:"ts"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Cat   string         `json:"cat,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// tid lanes of the exported trace: corelet events go to tid corelet+1, so
// tid 0 carries the processor-wide memory-system events.
const memSystemTID = 0

func (k Kind) category() string {
	switch k {
	case Exec:
		return "exec"
	case Prefetch, FlowBlock, Starve, Evict:
		return "prefetch"
	case MemIssue, MemReject, RowOpen, RowClose:
		return "mem"
	case DFSStep:
		return "dfs"
	}
	return "other"
}

// ChromeJSON serializes the captured events in the Chrome trace-event JSON
// format. psPerCycle converts the events' compute-clock cycle stamps to
// wall trace time (1e12/computeHz picoseconds per cycle). The output is
// deterministic: events keep log order and metadata precedes them.
func (l *Log) ChromeJSON(psPerCycle float64) ([]byte, error) {
	if psPerCycle <= 0 {
		return nil, fmt.Errorf("trace: non-positive picoseconds per cycle %g", psPerCycle)
	}
	t := chromeTrace{DisplayTimeUnit: "ns"}
	t.TraceEvents = append(t.TraceEvents, chromeEvent{
		Name: "process_name", Phase: "M", PID: 0, TID: memSystemTID,
		Args: map[string]any{"name": "millipede-processor"},
	})
	named := map[int]bool{}
	threadName := func(tid int, name string) {
		if named[tid] {
			return
		}
		named[tid] = true
		t.TraceEvents = append(t.TraceEvents, chromeEvent{
			Name: "thread_name", Phase: "M", PID: 0, TID: tid,
			Args: map[string]any{"name": name},
		})
	}
	threadName(memSystemTID, "memory-system")
	for _, e := range l.Events() {
		tid := memSystemTID
		if e.Corelet >= 0 {
			tid = e.Corelet + 1
			threadName(tid, fmt.Sprintf("corelet %d", e.Corelet))
		}
		ce := chromeEvent{
			Name:  e.Kind.String(),
			Phase: "i",
			Scope: "t",
			TsUS:  float64(e.Cycle) * psPerCycle / 1e6,
			PID:   0,
			TID:   tid,
			Cat:   e.Kind.category(),
			Args:  map[string]any{"cycle": e.Cycle, "detail": e.Detail},
		}
		if e.Kind == Exec {
			ce.Args["pc"] = e.PC
			if e.Context >= 0 {
				ce.Args["context"] = e.Context
			}
		}
		t.TraceEvents = append(t.TraceEvents, ce)
	}
	return json.MarshalIndent(t, "", " ")
}
