// Package trace provides the lightweight execution tracing used for kernel
// debugging and model inspection: a bounded log of per-instruction and
// memory-system events that cmd/millisim can print. Tracing is opt-in and
// costs one nil-check per event source when disabled.
package trace

import (
	"fmt"
	"strings"
)

// Kind classifies an event.
type Kind uint8

const (
	// Exec: one instruction issued (Detail = disassembly).
	Exec Kind = iota
	// Prefetch: a sequential row prefetch was issued.
	Prefetch
	// FlowBlock: flow control deferred a prefetch trigger.
	FlowBlock
	// Starve: a demand access waited on DRAM.
	Starve
	// Evict: a prefetch-buffer entry was re-allocated prematurely.
	Evict
	// MemIssue: a memory channel's controller dispatched a request to DRAM.
	MemIssue
	// MemReject: an enqueue attempt found a channel's queue full.
	MemReject
	// RowOpen: a DRAM bank activated a row.
	RowOpen
	// RowClose: a DRAM bank precharged its open row.
	RowClose
	// DFSStep: the rate-matching controller changed the compute clock.
	DFSStep
)

func (k Kind) String() string {
	switch k {
	case Exec:
		return "exec"
	case Prefetch:
		return "prefetch"
	case FlowBlock:
		return "flow-block"
	case Starve:
		return "starve"
	case Evict:
		return "evict"
	case MemIssue:
		return "mem-issue"
	case MemReject:
		return "mem-reject"
	case RowOpen:
		return "row-open"
	case RowClose:
		return "row-close"
	case DFSStep:
		return "dfs-step"
	}
	return "?"
}

// Event is one trace record.
type Event struct {
	Cycle   uint64
	Corelet int // -1 for processor-wide events
	Context int // -1 when not applicable
	Kind    Kind
	PC      int
	Detail  string
}

// String renders one event line.
func (e Event) String() string {
	who := "proc"
	if e.Corelet >= 0 {
		who = fmt.Sprintf("c%02d", e.Corelet)
		if e.Context >= 0 {
			who += fmt.Sprintf(".%d", e.Context)
		}
	}
	if e.Kind == Exec {
		return fmt.Sprintf("%10d %-6s %-10s pc=%-4d %s", e.Cycle, who, e.Kind, e.PC, e.Detail)
	}
	return fmt.Sprintf("%10d %-6s %-10s %s", e.Cycle, who, e.Kind, e.Detail)
}

// Log is a bounded event log: recording stops (silently) once Max events
// have been captured, so tracing long runs stays cheap and the interesting
// part — the beginning — is preserved.
type Log struct {
	Max    int
	events []Event
	drops  uint64
}

// NewLog returns a log capturing at most max events.
func NewLog(max int) *Log {
	if max <= 0 {
		max = 1000
	}
	return &Log{Max: max}
}

// Add records one event if capacity remains.
func (l *Log) Add(e Event) {
	if len(l.events) >= l.Max {
		l.drops++
		return
	}
	l.events = append(l.events, e)
}

// Full reports whether the log has stopped recording.
func (l *Log) Full() bool { return len(l.events) >= l.Max }

// Events returns the captured events.
func (l *Log) Events() []Event { return l.events }

// Dropped returns how many events arrived after the log filled.
func (l *Log) Dropped() uint64 { return l.drops }

// Render formats the whole log.
func (l *Log) Render() string {
	var b strings.Builder
	for _, e := range l.events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	if l.drops > 0 {
		fmt.Fprintf(&b, "... %d further events not captured (log limit %d)\n", l.drops, l.Max)
	}
	return b.String()
}
