package trace

import (
	"strings"
	"testing"
)

func TestLogBounds(t *testing.T) {
	l := NewLog(2)
	for i := 0; i < 5; i++ {
		l.Add(Event{Cycle: uint64(i), Kind: Exec})
	}
	if len(l.Events()) != 2 || !l.Full() || l.Dropped() != 3 {
		t.Errorf("events=%d full=%v dropped=%d", len(l.Events()), l.Full(), l.Dropped())
	}
	if !strings.Contains(l.Render(), "3 further events") {
		t.Error("render missing drop note")
	}
}

func TestNewLogDefault(t *testing.T) {
	if NewLog(0).Max != 1000 {
		t.Error("default max")
	}
}

func TestEventString(t *testing.T) {
	e := Event{Cycle: 7, Corelet: 3, Context: 1, Kind: Exec, PC: 12, Detail: "add r1, r2, r3"}
	s := e.String()
	for _, want := range []string{"c03.1", "exec", "pc=12", "add r1"} {
		if !strings.Contains(s, want) {
			t.Errorf("event %q missing %q", s, want)
		}
	}
	p := Event{Cycle: 9, Corelet: -1, Context: -1, Kind: Prefetch, Detail: "row 5"}
	if !strings.Contains(p.String(), "proc") || !strings.Contains(p.String(), "prefetch") {
		t.Errorf("processor event %q", p.String())
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{Exec: "exec", Prefetch: "prefetch",
		FlowBlock: "flow-block", Starve: "starve", Evict: "evict", Kind(99): "?"} {
		if k.String() != want {
			t.Errorf("%d = %q, want %q", k, k.String(), want)
		}
	}
}
