package trace

import (
	"encoding/json"
	"testing"
)

func TestChromeJSONSchema(t *testing.T) {
	l := NewLog(16)
	l.Add(Event{Cycle: 10, Corelet: 0, Context: 2, Kind: Exec, PC: 5, Detail: "add r1, r2"})
	l.Add(Event{Cycle: 20, Corelet: -1, Context: -1, Kind: MemIssue, Detail: "ch0 row 3"})
	l.Add(Event{Cycle: 30, Corelet: 1, Context: -1, Kind: Prefetch, Detail: "row 4"})
	l.Add(Event{Cycle: 40, Corelet: -1, Context: -1, Kind: DFSStep, Detail: "800 MHz"})

	data, err := l.ChromeJSON(1000) // 1 ns/cycle
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TsUS  float64        `json:"ts"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			Scope string         `json:"s"`
			Cat   string         `json:"cat"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	var meta, instants int
	names := map[string]bool{}
	cats := map[string]bool{}
	for _, e := range doc.TraceEvents {
		switch e.Phase {
		case "M":
			meta++
			if e.Name != "process_name" && e.Name != "thread_name" {
				t.Errorf("unexpected metadata event %q", e.Name)
			}
		case "i":
			instants++
			if e.Scope != "t" {
				t.Errorf("instant %q has scope %q, want t", e.Name, e.Scope)
			}
			if e.Args["cycle"] == nil {
				t.Errorf("instant %q missing cycle arg", e.Name)
			}
			names[e.Name] = true
			cats[e.Cat] = true
		default:
			t.Errorf("unexpected phase %q", e.Phase)
		}
	}
	if instants != 4 {
		t.Errorf("instants = %d, want 4", instants)
	}
	// process_name + thread names for memory-system, corelet 0, corelet 1.
	if meta != 4 {
		t.Errorf("metadata events = %d, want 4", meta)
	}
	for _, want := range []string{"exec", "mem-issue", "prefetch", "dfs-step"} {
		if !names[want] {
			t.Errorf("missing event name %q (have %v)", want, names)
		}
	}
	for _, want := range []string{"exec", "mem", "prefetch", "dfs"} {
		if !cats[want] {
			t.Errorf("missing category %q (have %v)", want, cats)
		}
	}
}

func TestChromeJSONTimebaseAndLanes(t *testing.T) {
	l := NewLog(4)
	l.Add(Event{Cycle: 1_000_000, Corelet: 3, Context: -1, Kind: Exec, PC: 0, Detail: "halt"})
	l.Add(Event{Cycle: 8, Corelet: -1, Context: -1, Kind: RowOpen, Detail: "bank 0"})
	data, err := l.ChromeJSON(1000) // 1000 ps/cycle -> 1e6 cycles = 1000 us
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Phase string  `json:"ph"`
			TsUS  float64 `json:"ts"`
			TID   int     `json:"tid"`
			Name  string  `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	for _, e := range doc.TraceEvents {
		if e.Phase != "i" {
			continue
		}
		switch e.Name {
		case "exec":
			if e.TsUS != 1000 {
				t.Errorf("exec ts = %v us, want 1000", e.TsUS)
			}
			if e.TID != 4 { // corelet 3 -> tid 4
				t.Errorf("exec tid = %d, want 4", e.TID)
			}
		case "row-open":
			if e.TID != 0 { // processor-wide events share the tid-0 lane
				t.Errorf("row-open tid = %d, want 0", e.TID)
			}
		}
	}
}

func TestChromeJSONRejectsBadTimebase(t *testing.T) {
	l := NewLog(1)
	if _, err := l.ChromeJSON(0); err == nil {
		t.Error("psPerCycle 0 accepted")
	}
	if _, err := l.ChromeJSON(-1); err == nil {
		t.Error("negative psPerCycle accepted")
	}
}
