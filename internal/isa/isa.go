// Package isa defines the instruction set executed by every simulated
// processing-near-memory core in this repository: Millipede corelets, SSMC
// cores, GPGPU/VWS lanes, and the conventional-multicore model all interpret
// the same small RISC-style ISA, so differences between architectures come
// only from their pipeline, memory-system, and scheduling models — exactly
// the controlled comparison the paper performs (Section V).
//
// The ISA is word-oriented: registers are 32 bits wide, holding either a
// two's-complement integer or the bit pattern of a float32. Each hardware
// thread context has 32 general-purpose registers; r0 is hardwired to zero.
// Memory is split into two address spaces selected by the opcode, mirroring
// the paper's corelet organization: LW/SW access the corelet-local SRAM that
// holds kernel arguments and the partially-reduced live state, while LDG/STG
// access the die-stacked DRAM that holds the input dataset.
package isa

import (
	"fmt"
	"math"
)

// NumRegs is the architectural register count per hardware thread context
// (Table III: 32 registers per corelet/lane/core).
const NumRegs = 32

// WordBytes is the architectural word size in bytes.
const WordBytes = 4

// Op enumerates the instruction opcodes.
type Op uint8

const (
	NOP Op = iota
	HALT

	// Integer register-register.
	ADD
	SUB
	MUL
	DIV
	REM
	AND
	OR
	XOR
	SLL
	SRL
	SRA
	SLT
	SLTU
	MIN
	MAX

	// Integer register-immediate.
	ADDI
	ANDI
	ORI
	XORI
	SLLI
	SRLI
	SRAI
	SLTI
	LUI

	// Float32 (operands and results are float32 bit patterns in registers).
	FADD
	FSUB
	FMUL
	FDIV
	FSQRT
	FMIN
	FMAX
	FLT
	FLE
	FEQ
	CVTIF // int32 -> float32
	CVTFI // float32 -> int32 (truncating)

	// Memory. Effective address is rs1 + imm (bytes, word-aligned).
	LW  // rd <- local[rs1+imm]
	SW  // local[rs1+imm] <- rs2
	LDG // rd <- global[rs1+imm]
	LDS // rd <- global[r1] via the hardware stream walker (see below)
	STG // global[rs1+imm] <- rs2

	// Control. Branch/jump targets are absolute instruction indices,
	// resolved by the assembler.
	BEQ
	BNE
	BLT
	BGE
	BLTU
	BGEU
	J
	JAL
	JR

	// CSRR reads a special register (corelet ID, thread ID, ...).
	CSRR

	// BAR is a processor-wide software barrier: the context blocks until
	// every context of every corelet has reached a BAR (used by the
	// paper's software-barrier ablation, Section IV-C).
	BAR

	numOps // sentinel
)

// Stream-walker register convention for LDS. Every pipeline implements the
// "load stream" instruction: rd <- global[rAddr]; then the walker advances:
// rAddr += rStride; if --rCount == 0 { rAddr += rFix; rCount = rChunk }.
// The walker registers are ordinary GPRs initialized by the kernel prologue
// from the layout walk arguments, so one kernel binary streams any layout.
const (
	StreamAddr   = 1 // current word address
	StreamStride = 4
	StreamFix    = 5 // extra step at chunk boundaries (RowStep - Stride)
	StreamChunk  = 6 // chunk length in words
	StreamCount  = 7 // words left in the current chunk
)

// CSR numbers readable via CSRR. These are the launch-time identifiers a
// kernel needs to find its slice of the interleaved input layout.
const (
	CSRCoreletID  = 0 // corelet/lane/core index within the processor
	CSRContextID  = 1 // hardware thread context within the corelet
	CSRNumCorelet = 2 // corelets per processor
	CSRNumContext = 3 // contexts per corelet
	CSRThreadID   = 4 // global thread index: coreletID*numContexts + contextID
	CSRNumThreads = 5 // total threads: numCorelets * numContexts
)

var opNames = [numOps]string{
	NOP: "nop", HALT: "halt",
	ADD: "add", SUB: "sub", MUL: "mul", DIV: "div", REM: "rem",
	AND: "and", OR: "or", XOR: "xor", SLL: "sll", SRL: "srl", SRA: "sra",
	SLT: "slt", SLTU: "sltu", MIN: "min", MAX: "max",
	ADDI: "addi", ANDI: "andi", ORI: "ori", XORI: "xori",
	SLLI: "slli", SRLI: "srli", SRAI: "srai", SLTI: "slti", LUI: "lui",
	FADD: "fadd", FSUB: "fsub", FMUL: "fmul", FDIV: "fdiv", FSQRT: "fsqrt",
	FMIN: "fmin", FMAX: "fmax", FLT: "flt", FLE: "fle", FEQ: "feq",
	CVTIF: "cvtif", CVTFI: "cvtfi",
	LW: "lw", SW: "sw", LDG: "ldg", LDS: "lds", STG: "stg",
	BEQ: "beq", BNE: "bne", BLT: "blt", BGE: "bge", BLTU: "bltu", BGEU: "bgeu",
	J: "j", JAL: "jal", JR: "jr",
	CSRR: "csrr", BAR: "bar",
}

// String returns the assembler mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return o < numOps && (o == NOP || opNames[o] != "") }

// Inst is one decoded instruction. Programs are slices of Inst; the PC is an
// index into that slice. (Binary encoding is unnecessary for simulation; the
// I-cache models charge size NumBytes per instruction.)
type Inst struct {
	Op       Op
	Rd       uint8 // destination register
	Rs1, Rs2 uint8 // source registers
	Imm      int32 // immediate / offset / branch target (instruction index)
	Sym      string
}

// InstBytes is the modeled encoded size of one instruction, used by I-cache
// and code-footprint accounting.
const InstBytes = 4

// Class partitions opcodes by the pipeline resources they use; the timing
// models key execution latency and energy off the class.
type Class uint8

const (
	ClassNop       Class = iota
	ClassALU             // 1-cycle integer
	ClassMul             // integer multiply
	ClassDiv             // integer divide / remainder
	ClassFPU             // float add/sub/mul/compare/convert
	ClassFDiv            // float divide / sqrt
	ClassLocalMem        // LW/SW
	ClassGlobalMem       // LDG/STG
	ClassBranch          // conditional branches and jumps
	ClassHalt
)

// opClass is the opcode-to-class lookup table behind Classify. Sized to the
// full uint8 range so the lookup needs no bounds check; undefined opcodes
// default to ClassALU, matching the old switch's default arm.
var opClass = func() [256]Class {
	var t [256]Class
	for i := range t {
		t[i] = ClassALU
	}
	for op, c := range map[Op]Class{
		NOP: ClassNop, CSRR: ClassNop, BAR: ClassNop,
		HALT: ClassHalt,
		MUL:  ClassMul,
		DIV:  ClassDiv, REM: ClassDiv,
		FADD: ClassFPU, FSUB: ClassFPU, FMUL: ClassFPU, FMIN: ClassFPU,
		FMAX: ClassFPU, FLT: ClassFPU, FLE: ClassFPU, FEQ: ClassFPU,
		CVTIF: ClassFPU, CVTFI: ClassFPU,
		FDIV: ClassFDiv, FSQRT: ClassFDiv,
		LW: ClassLocalMem, SW: ClassLocalMem,
		LDG: ClassGlobalMem, LDS: ClassGlobalMem, STG: ClassGlobalMem,
		BEQ: ClassBranch, BNE: ClassBranch, BLT: ClassBranch, BGE: ClassBranch,
		BLTU: ClassBranch, BGEU: ClassBranch,
		J: ClassBranch, JAL: ClassBranch, JR: ClassBranch,
	} {
		t[op] = c
	}
	return t
}()

// Classify returns the instruction class of op.
func Classify(op Op) Class { return opClass[op] }

// IsCondBranch reports whether op is a conditional branch (the only source
// of SIMT divergence and the quantity reported as "branches per instruction"
// in Table IV of the paper).
func IsCondBranch(op Op) bool {
	switch op {
	case BEQ, BNE, BLT, BGE, BLTU, BGEU:
		return true
	}
	return false
}

// IsBranch reports whether op may redirect the PC.
func IsBranch(op Op) bool { return Classify(op) == ClassBranch }

// IsMem reports whether op accesses any memory.
func IsMem(op Op) bool {
	c := Classify(op)
	return c == ClassLocalMem || c == ClassGlobalMem
}

// IsGlobal reports whether op accesses the die-stacked global memory.
func IsGlobal(op Op) bool { return op == LDG || op == LDS || op == STG }

// IsStore reports whether op writes memory.
func IsStore(op Op) bool { return op == SW || op == STG }

// WritesRd reports whether the instruction produces a register result.
func WritesRd(op Op) bool {
	switch Classify(op) {
	case ClassHalt, ClassBranch:
		return op == JAL
	case ClassLocalMem, ClassGlobalMem:
		return op == LW || op == LDG || op == LDS
	case ClassNop:
		return op == CSRR
	}
	return true
}

// F32 converts a register bit pattern to float32.
func F32(bits uint32) float32 { return math.Float32frombits(bits) }

// Bits converts a float32 to its register bit pattern.
func Bits(f float32) uint32 { return math.Float32bits(f) }

// EvalALU computes the result of a non-memory, non-branch instruction given
// its source operand values (a = rs1, b = rs2 or immediate as appropriate).
// It is the single source of truth for datapath semantics shared by every
// pipeline model. The boolean result is false for opcodes EvalALU does not
// handle (memory, branches, HALT, CSRR).
func EvalALU(in Inst, a, b uint32) (uint32, bool) {
	return EvalALUOp(in.Op, in.Imm, a, b)
}

// EvalALUOp is EvalALU with the opcode and immediate passed directly, for
// pipelines that have already fetched the instruction fields — it avoids
// copying a whole Inst per executed instruction on the hot interpret path.
func EvalALUOp(op Op, imm int32, a, b uint32) (uint32, bool) {
	ia, ib := int32(a), int32(b)
	switch op {
	case NOP:
		return 0, true
	case ADD:
		return uint32(ia + ib), true
	case ADDI:
		return uint32(ia + imm), true
	case SUB:
		return uint32(ia - ib), true
	case MUL:
		return uint32(ia * ib), true
	case DIV:
		if ib == 0 {
			return ^uint32(0), true // RISC-V semantics: -1 on divide by zero
		}
		if ia == math.MinInt32 && ib == -1 {
			return uint32(ia), true // overflow: result = dividend
		}
		return uint32(ia / ib), true
	case REM:
		if ib == 0 {
			return a, true
		}
		if ia == math.MinInt32 && ib == -1 {
			return 0, true
		}
		return uint32(ia % ib), true
	case AND:
		return a & b, true
	case ANDI:
		return a & uint32(imm), true
	case OR:
		return a | b, true
	case ORI:
		return a | uint32(imm), true
	case XOR:
		return a ^ b, true
	case XORI:
		return a ^ uint32(imm), true
	case SLL:
		return a << (b & 31), true
	case SLLI:
		return a << (uint32(imm) & 31), true
	case SRL:
		return a >> (b & 31), true
	case SRLI:
		return a >> (uint32(imm) & 31), true
	case SRA:
		return uint32(ia >> (b & 31)), true
	case SRAI:
		return uint32(ia >> (uint32(imm) & 31)), true
	case SLT:
		if ia < ib {
			return 1, true
		}
		return 0, true
	case SLTI:
		if ia < imm {
			return 1, true
		}
		return 0, true
	case SLTU:
		if a < b {
			return 1, true
		}
		return 0, true
	case MIN:
		if ia < ib {
			return a, true
		}
		return b, true
	case MAX:
		if ia > ib {
			return a, true
		}
		return b, true
	case LUI:
		return uint32(imm) << 12, true
	case FADD:
		return Bits(F32(a) + F32(b)), true
	case FSUB:
		return Bits(F32(a) - F32(b)), true
	case FMUL:
		return Bits(F32(a) * F32(b)), true
	case FDIV:
		return Bits(F32(a) / F32(b)), true
	case FSQRT:
		return Bits(float32(math.Sqrt(float64(F32(a))))), true
	case FMIN:
		return Bits(float32(math.Min(float64(F32(a)), float64(F32(b))))), true
	case FMAX:
		return Bits(float32(math.Max(float64(F32(a)), float64(F32(b))))), true
	case FLT:
		if F32(a) < F32(b) {
			return 1, true
		}
		return 0, true
	case FLE:
		if F32(a) <= F32(b) {
			return 1, true
		}
		return 0, true
	case FEQ:
		if F32(a) == F32(b) {
			return 1, true
		}
		return 0, true
	case CVTIF:
		return Bits(float32(ia)), true
	case CVTFI:
		return uint32(int32(F32(a))), true
	}
	return 0, false
}

// EvalBranch evaluates a conditional branch's condition given its source
// operands. It returns false for non-conditional-branch opcodes' taken flag
// and ok=false.
func EvalBranch(op Op, a, b uint32) (taken, ok bool) {
	ia, ib := int32(a), int32(b)
	switch op {
	case BEQ:
		return a == b, true
	case BNE:
		return a != b, true
	case BLT:
		return ia < ib, true
	case BGE:
		return ia >= ib, true
	case BLTU:
		return a < b, true
	case BGEU:
		return a >= b, true
	}
	return false, false
}

// String renders the instruction in assembler syntax.
func (in Inst) String() string {
	target := func() string {
		if in.Sym != "" {
			return in.Sym
		}
		return fmt.Sprintf("%d", in.Imm)
	}
	switch in.Op {
	case NOP, HALT, BAR:
		return in.Op.String()
	case ADDI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, SLTI:
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Rd, in.Rs1, in.Imm)
	case LUI:
		return fmt.Sprintf("lui r%d, %d", in.Rd, in.Imm)
	case LW, LDG:
		return fmt.Sprintf("%s r%d, %d(r%d)", in.Op, in.Rd, in.Imm, in.Rs1)
	case LDS:
		return fmt.Sprintf("lds r%d", in.Rd)
	case SW, STG:
		return fmt.Sprintf("%s r%d, %d(r%d)", in.Op, in.Rs2, in.Imm, in.Rs1)
	case BEQ, BNE, BLT, BGE, BLTU, BGEU:
		return fmt.Sprintf("%s r%d, r%d, %s", in.Op, in.Rs1, in.Rs2, target())
	case J:
		return fmt.Sprintf("j %s", target())
	case JAL:
		return fmt.Sprintf("jal r%d, %s", in.Rd, target())
	case JR:
		return fmt.Sprintf("jr r%d", in.Rs1)
	case CSRR:
		return fmt.Sprintf("csrr r%d, %d", in.Rd, in.Imm)
	case FSQRT, CVTIF, CVTFI:
		return fmt.Sprintf("%s r%d, r%d", in.Op, in.Rd, in.Rs1)
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Rd, in.Rs1, in.Rs2)
	}
}

// Program is a fully assembled kernel.
type Program struct {
	Name   string
	Insts  []Inst
	Labels map[string]int // label -> instruction index
	// ReconvPC[i] is the reconvergence point (immediate post-dominator
	// instruction index) for the conditional branch at index i, used by the
	// SIMT models. len(Insts) acts as the virtual exit node.
	ReconvPC map[int]int
}

// CodeBytes returns the modeled code footprint. The paper notes BMLA kernels
// are under 4 KB and are broadcast to the corelets once at launch.
func (p *Program) CodeBytes() int { return len(p.Insts) * InstBytes }

// Disassemble renders the whole program with labels, for debugging and the
// nbayes walk-through example.
func (p *Program) Disassemble() string {
	byIdx := make(map[int][]string)
	for name, idx := range p.Labels {
		byIdx[idx] = append(byIdx[idx], name)
	}
	s := ""
	for i, in := range p.Insts {
		for _, l := range byIdx[i] {
			s += l + ":\n"
		}
		s += fmt.Sprintf("%4d:  %s\n", i, in.String())
	}
	return s
}
