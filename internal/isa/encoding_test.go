package isa

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Inst{
		{Op: NOP},
		{Op: HALT},
		{Op: ADD, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: ADDI, Rd: 31, Rs1: 30, Imm: 255},
		{Op: ADDI, Rd: 1, Rs1: 0, Imm: -255},
		{Op: ADDI, Rd: 1, Rs1: 0, Imm: 1 << 20}, // extended
		{Op: LUI, Rd: 5, Imm: -1 << 19},         // extended negative
		{Op: LW, Rd: 9, Rs1: 2, Imm: 64},
		{Op: LDS, Rd: 11},
		{Op: BAR},
		{Op: BNE, Rs1: 8, Rs2: 0, Imm: 12},
		{Op: CSRR, Rd: 4, Imm: CSRThreadID},
		{Op: FSQRT, Rd: 2, Rs1: 3},
	}
	for _, in := range cases {
		b := Encode(nil, in)
		got, n, err := Decode(b)
		if err != nil {
			t.Fatalf("%v: %v", in, err)
		}
		if n != len(b) {
			t.Errorf("%v: consumed %d of %d bytes", in, n, len(b))
		}
		if got != in {
			t.Errorf("round trip: %+v -> %+v", in, got)
		}
		if EncodedSize(in) != len(b) {
			t.Errorf("%v: EncodedSize %d, encoded %d", in, EncodedSize(in), len(b))
		}
	}
}

func TestEncodeShortImmediateBoundary(t *testing.T) {
	// Short immediates span (extMarker, immMax]; the marker itself and
	// anything outside must take the extended form.
	for _, imm := range []int32{immMax, immMax + 1, int32(extMarker), int32(extMarker) + 1, 0} {
		in := Inst{Op: ADDI, Rd: 1, Imm: imm}
		b := Encode(nil, in)
		got, _, err := Decode(b)
		if err != nil {
			t.Fatal(err)
		}
		if got.Imm != imm {
			t.Errorf("imm %d decoded as %d", imm, got.Imm)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, _, err := Decode([]byte{0xFF, 0, 0, 0xFF}); err == nil {
		t.Error("invalid opcode accepted")
	}
	// Extension word promised but missing.
	b := Encode(nil, Inst{Op: ADDI, Imm: 1 << 20})
	if _, _, err := Decode(b[:4]); err == nil {
		t.Error("truncated extension accepted")
	}
}

func TestEncodeInvalidOpcodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Encode(nil, Inst{Op: Op(250)})
}

func TestProgramRoundTrip(t *testing.T) {
	p := &Program{Name: "rt", Insts: []Inst{
		{Op: ADDI, Rd: 1, Imm: 100000},
		{Op: ADD, Rd: 2, Rs1: 1, Rs2: 1},
		{Op: BNE, Rs1: 2, Rs2: 0, Imm: 0},
		{Op: HALT},
	}}
	enc := EncodeProgram(p)
	if len(enc) != EncodedBytes(p) {
		t.Errorf("EncodedBytes %d, actual %d", EncodedBytes(p), len(enc))
	}
	back, err := DecodeProgram("rt", enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Insts) != len(p.Insts) {
		t.Fatalf("decoded %d insts", len(back.Insts))
	}
	for i := range p.Insts {
		if back.Insts[i] != p.Insts[i] {
			t.Errorf("inst %d: %+v vs %+v", i, back.Insts[i], p.Insts[i])
		}
	}
}

// Property: any well-formed instruction round-trips.
func TestPropertyEncodeDecode(t *testing.T) {
	f := func(opRaw uint8, rd, rs1, rs2 uint8, imm int32) bool {
		op := Op(opRaw % uint8(numOps))
		if !op.Valid() {
			return true
		}
		in := Inst{Op: op, Rd: rd % 32, Rs1: rs1 % 32, Rs2: rs2 % 32, Imm: imm}
		got, n, err := Decode(Encode(nil, in))
		return err == nil && n == EncodedSize(in) && got == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
