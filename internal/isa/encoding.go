package isa

import (
	"encoding/binary"
	"fmt"
)

// Binary instruction encoding. Each instruction occupies InstBytes (4)
// bytes, which is what the I-cache models and the paper's "code broadcast
// once at launch, under 4 KB" assumption charge. The fixed 32-bit format
// is:
//
//	[31:24] opcode
//	[23:19] rd
//	[18:14] rs1
//	[13:9]  rs2
//	[8:0]   short immediate (signed 9-bit)
//
// Immediates that do not fit 9 bits are encoded as an extended pair: the
// instruction word carries the extMarker immediate and is followed by one
// full 32-bit immediate word (8-byte instruction). This keeps the common
// case at 4 bytes — kernels are dominated by register ops and small
// offsets — while still round-tripping every representable instruction.
// Labels (Sym) are presentation-only and are not preserved by encoding.
const (
	immBits   = 9
	immMax    = 1<<(immBits-1) - 1
	immMin    = -(1 << (immBits - 1))
	extMarker = immMin // reserved short-imm value flagging an extension word
)

// EncodedSize returns the encoded byte size of in (4 or 8).
func EncodedSize(in Inst) int {
	if fitsShort(in.Imm) {
		return InstBytes
	}
	return 2 * InstBytes
}

func fitsShort(imm int32) bool { return imm > extMarker && imm <= immMax }

// Encode appends the binary encoding of in to dst and returns the extended
// slice.
func Encode(dst []byte, in Inst) []byte {
	if !in.Op.Valid() {
		panic(fmt.Sprintf("isa: encoding invalid opcode %d", uint8(in.Op)))
	}
	word := uint32(in.Op)<<24 | uint32(in.Rd&31)<<19 | uint32(in.Rs1&31)<<14 | uint32(in.Rs2&31)<<9
	if fitsShort(in.Imm) {
		word |= uint32(in.Imm) & (1<<immBits - 1)
		return binary.LittleEndian.AppendUint32(dst, word)
	}
	m := int32(extMarker)
	word |= uint32(m) & (1<<immBits - 1)
	dst = binary.LittleEndian.AppendUint32(dst, word)
	return binary.LittleEndian.AppendUint32(dst, uint32(in.Imm))
}

// Decode reads one instruction from b, returning it and the number of bytes
// consumed.
func Decode(b []byte) (Inst, int, error) {
	if len(b) < InstBytes {
		return Inst{}, 0, fmt.Errorf("isa: truncated instruction (%d bytes)", len(b))
	}
	word := binary.LittleEndian.Uint32(b)
	in := Inst{
		Op:  Op(word >> 24),
		Rd:  uint8(word >> 19 & 31),
		Rs1: uint8(word >> 14 & 31),
		Rs2: uint8(word >> 9 & 31),
	}
	if !in.Op.Valid() {
		return Inst{}, 0, fmt.Errorf("isa: invalid opcode %d", word>>24)
	}
	raw := word & (1<<immBits - 1)
	// Sign-extend the short immediate.
	imm := int32(raw<<(32-immBits)) >> (32 - immBits)
	if imm != extMarker {
		in.Imm = imm
		return in, InstBytes, nil
	}
	if len(b) < 2*InstBytes {
		return Inst{}, 0, fmt.Errorf("isa: truncated extended immediate")
	}
	in.Imm = int32(binary.LittleEndian.Uint32(b[InstBytes:]))
	return in, 2 * InstBytes, nil
}

// EncodeProgram serializes a whole program (without labels).
func EncodeProgram(p *Program) []byte {
	var out []byte
	for _, in := range p.Insts {
		out = append(out, Encode(nil, in)...)
	}
	return out
}

// DecodeProgram parses a serialized program.
func DecodeProgram(name string, b []byte) (*Program, error) {
	p := &Program{Name: name, Labels: map[string]int{}}
	for len(b) > 0 {
		in, n, err := Decode(b)
		if err != nil {
			return nil, err
		}
		p.Insts = append(p.Insts, in)
		b = b[n:]
	}
	return p, nil
}

// EncodedBytes returns the exact encoded code footprint of p, the number
// the paper's 4 KB code-broadcast budget constrains.
func EncodedBytes(p *Program) int {
	n := 0
	for _, in := range p.Insts {
		n += EncodedSize(in)
	}
	return n
}
