package isa

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEvalALUInteger(t *testing.T) {
	cases := []struct {
		in   Inst
		a, b uint32
		want uint32
	}{
		{Inst{Op: ADD}, 3, 4, 7},
		{Inst{Op: ADD}, 0xFFFFFFFF, 1, 0}, // wraparound
		{Inst{Op: ADDI, Imm: -1}, 5, 0, 4},
		{Inst{Op: SUB}, 3, 4, 0xFFFFFFFF},
		{Inst{Op: MUL}, 6, 7, 42},
		{Inst{Op: DIV}, 42, 6, 7},
		{Inst{Op: DIV}, 7, 0, 0xFFFFFFFF},                   // div by zero -> -1
		{Inst{Op: DIV}, 0x80000000, 0xFFFFFFFF, 0x80000000}, // overflow
		{Inst{Op: REM}, 43, 6, 1},
		{Inst{Op: REM}, 43, 0, 43},
		{Inst{Op: REM}, 0x80000000, 0xFFFFFFFF, 0},
		{Inst{Op: AND}, 0b1100, 0b1010, 0b1000},
		{Inst{Op: ANDI, Imm: 0b1010}, 0b1100, 0, 0b1000},
		{Inst{Op: OR}, 0b1100, 0b1010, 0b1110},
		{Inst{Op: ORI, Imm: 1}, 4, 0, 5},
		{Inst{Op: XOR}, 0b1100, 0b1010, 0b0110},
		{Inst{Op: XORI, Imm: -1}, 0, 0, 0xFFFFFFFF},
		{Inst{Op: SLL}, 1, 4, 16},
		{Inst{Op: SLL}, 1, 33, 2}, // shift amount mod 32
		{Inst{Op: SLLI, Imm: 3}, 2, 0, 16},
		{Inst{Op: SRL}, 0x80000000, 31, 1},
		{Inst{Op: SRLI, Imm: 1}, 0x80000000, 0, 0x40000000},
		{Inst{Op: SRA}, 0x80000000, 31, 0xFFFFFFFF},
		{Inst{Op: SRAI, Imm: 4}, 0xFFFFFF00, 0, 0xFFFFFFF0},
		{Inst{Op: SLT}, 0xFFFFFFFF, 0, 1}, // -1 < 0 signed
		{Inst{Op: SLTU}, 0xFFFFFFFF, 0, 0},
		{Inst{Op: SLTI, Imm: 5}, 3, 0, 1},
		{Inst{Op: MIN}, 0xFFFFFFFF, 1, 0xFFFFFFFF}, // signed min(-1,1) = -1
		{Inst{Op: MAX}, 0xFFFFFFFF, 1, 1},
		{Inst{Op: LUI, Imm: 5}, 0, 0, 5 << 12},
		{Inst{Op: NOP}, 9, 9, 0},
	}
	for _, c := range cases {
		got, ok := EvalALU(c.in, c.a, c.b)
		if !ok {
			t.Errorf("%v: EvalALU not ok", c.in.Op)
			continue
		}
		if got != c.want {
			t.Errorf("%v(%#x,%#x,imm=%d) = %#x, want %#x", c.in.Op, c.a, c.b, c.in.Imm, got, c.want)
		}
	}
}

func TestEvalALUFloat(t *testing.T) {
	f := func(x, y float32) (float32, float32) { return x, y }
	a, b := f(3.5, -1.25)
	cases := []struct {
		op   Op
		want float32
	}{
		{FADD, a + b},
		{FSUB, a - b},
		{FMUL, a * b},
		{FDIV, a / b},
		{FMIN, b},
		{FMAX, a},
	}
	for _, c := range cases {
		got, ok := EvalALU(Inst{Op: c.op}, Bits(a), Bits(b))
		if !ok || F32(got) != c.want {
			t.Errorf("%v = %v, want %v", c.op, F32(got), c.want)
		}
	}
	got, _ := EvalALU(Inst{Op: FSQRT}, Bits(16), 0)
	if F32(got) != 4 {
		t.Errorf("fsqrt(16) = %v", F32(got))
	}
	got, _ = EvalALU(Inst{Op: FLT}, Bits(1), Bits(2))
	if got != 1 {
		t.Error("flt(1,2) should be 1")
	}
	got, _ = EvalALU(Inst{Op: FLE}, Bits(2), Bits(2))
	if got != 1 {
		t.Error("fle(2,2) should be 1")
	}
	got, _ = EvalALU(Inst{Op: FEQ}, Bits(2), Bits(3))
	if got != 0 {
		t.Error("feq(2,3) should be 0")
	}
	got, _ = EvalALU(Inst{Op: CVTIF}, uint32(0xFFFFFFFF), 0)
	if F32(got) != -1 {
		t.Errorf("cvtif(-1) = %v", F32(got))
	}
	got, _ = EvalALU(Inst{Op: CVTFI}, Bits(-2.9), 0)
	if int32(got) != -2 {
		t.Errorf("cvtfi(-2.9) = %d, want -2 (truncation)", int32(got))
	}
}

func TestEvalALURejectsNonALU(t *testing.T) {
	for _, op := range []Op{LW, SW, LDG, STG, BEQ, J, JAL, JR, HALT, CSRR} {
		if _, ok := EvalALU(Inst{Op: op}, 0, 0); ok {
			t.Errorf("EvalALU accepted %v", op)
		}
	}
}

func TestEvalBranch(t *testing.T) {
	cases := []struct {
		op    Op
		a, b  uint32
		taken bool
	}{
		{BEQ, 5, 5, true},
		{BEQ, 5, 6, false},
		{BNE, 5, 6, true},
		{BLT, 0xFFFFFFFF, 0, true}, // -1 < 0 signed
		{BLTU, 0xFFFFFFFF, 0, false},
		{BGE, 0, 0, true},
		{BGEU, 0, 1, false},
	}
	for _, c := range cases {
		taken, ok := EvalBranch(c.op, c.a, c.b)
		if !ok || taken != c.taken {
			t.Errorf("EvalBranch(%v, %#x, %#x) = (%v,%v), want (%v,true)", c.op, c.a, c.b, taken, ok, c.taken)
		}
	}
	if _, ok := EvalBranch(ADD, 0, 0); ok {
		t.Error("EvalBranch accepted ADD")
	}
	if _, ok := EvalBranch(J, 0, 0); ok {
		t.Error("EvalBranch accepted unconditional J")
	}
}

func TestClassify(t *testing.T) {
	cases := map[Op]Class{
		NOP: ClassNop, CSRR: ClassNop, HALT: ClassHalt,
		ADD: ClassALU, ADDI: ClassALU, LUI: ClassALU, SLT: ClassALU,
		MUL: ClassMul, DIV: ClassDiv, REM: ClassDiv,
		FADD: ClassFPU, FLT: ClassFPU, CVTIF: ClassFPU,
		FDIV: ClassFDiv, FSQRT: ClassFDiv,
		LW: ClassLocalMem, SW: ClassLocalMem,
		LDG: ClassGlobalMem, STG: ClassGlobalMem,
		BEQ: ClassBranch, J: ClassBranch, JAL: ClassBranch, JR: ClassBranch,
	}
	for op, want := range cases {
		if got := Classify(op); got != want {
			t.Errorf("Classify(%v) = %v, want %v", op, got, want)
		}
	}
}

func TestPredicates(t *testing.T) {
	if !IsCondBranch(BNE) || IsCondBranch(J) || IsCondBranch(ADD) {
		t.Error("IsCondBranch wrong")
	}
	if !IsBranch(J) || !IsBranch(JR) || IsBranch(ADD) {
		t.Error("IsBranch wrong")
	}
	if !IsMem(LW) || !IsMem(STG) || IsMem(ADD) {
		t.Error("IsMem wrong")
	}
	if !IsGlobal(LDG) || IsGlobal(LW) {
		t.Error("IsGlobal wrong")
	}
	if !IsStore(SW) || !IsStore(STG) || IsStore(LW) || IsStore(LDG) {
		t.Error("IsStore wrong")
	}
	if !WritesRd(ADD) || !WritesRd(LW) || !WritesRd(LDG) || !WritesRd(JAL) || !WritesRd(CSRR) {
		t.Error("WritesRd false negatives")
	}
	if WritesRd(SW) || WritesRd(BEQ) || WritesRd(J) || WritesRd(HALT) {
		t.Error("WritesRd false positives")
	}
}

func TestFloatBitsRoundTrip(t *testing.T) {
	f := func(x float32) bool {
		if math.IsNaN(float64(x)) {
			return true
		}
		return F32(Bits(x)) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: integer ADD/SUB invert each other mod 2^32.
func TestAddSubInverse(t *testing.T) {
	f := func(a, b uint32) bool {
		sum, _ := EvalALU(Inst{Op: ADD}, a, b)
		back, _ := EvalALU(Inst{Op: SUB}, sum, b)
		return back == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: DIV/REM satisfy a = q*b + r when defined.
func TestDivRemIdentity(t *testing.T) {
	f := func(a, b int32) bool {
		if b == 0 || (a == math.MinInt32 && b == -1) {
			return true
		}
		q, _ := EvalALU(Inst{Op: DIV}, uint32(a), uint32(b))
		r, _ := EvalALU(Inst{Op: REM}, uint32(a), uint32(b))
		return int32(q)*b+int32(r) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: ADD, Rd: 1, Rs1: 2, Rs2: 3}, "add r1, r2, r3"},
		{Inst{Op: ADDI, Rd: 1, Rs1: 2, Imm: -4}, "addi r1, r2, -4"},
		{Inst{Op: LW, Rd: 5, Rs1: 2, Imm: 8}, "lw r5, 8(r2)"},
		{Inst{Op: SW, Rs2: 5, Rs1: 2, Imm: 8}, "sw r5, 8(r2)"},
		{Inst{Op: LDG, Rd: 7, Rs1: 3, Imm: 0}, "ldg r7, 0(r3)"},
		{Inst{Op: BNE, Rs1: 1, Rs2: 0, Imm: 12, Sym: "loop"}, "bne r1, r0, loop"},
		{Inst{Op: J, Imm: 3}, "j 3"},
		{Inst{Op: JR, Rs1: 31}, "jr r31"},
		{Inst{Op: CSRR, Rd: 4, Imm: CSRThreadID}, "csrr r4, 4"},
		{Inst{Op: HALT}, "halt"},
		{Inst{Op: FSQRT, Rd: 2, Rs1: 3}, "fsqrt r2, r3"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestOpStringAndValid(t *testing.T) {
	if ADD.String() != "add" || HALT.String() != "halt" {
		t.Error("Op.String wrong")
	}
	if !ADD.Valid() || !NOP.Valid() {
		t.Error("Valid false negative")
	}
	if Op(200).Valid() {
		t.Error("Valid false positive")
	}
}

func TestProgramHelpers(t *testing.T) {
	p := &Program{
		Name:   "t",
		Insts:  []Inst{{Op: ADDI, Rd: 1, Imm: 1}, {Op: HALT}},
		Labels: map[string]int{"start": 0},
	}
	if p.CodeBytes() != 8 {
		t.Errorf("CodeBytes = %d", p.CodeBytes())
	}
	d := p.Disassemble()
	if d == "" || d[:6] != "start:" {
		t.Errorf("Disassemble = %q", d)
	}
}
