package asm

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func mustAsm(t *testing.T, src string) *isa.Program {
	t.Helper()
	p, err := Assemble("test", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

func TestAssembleBasic(t *testing.T) {
	p := mustAsm(t, `
		; a tiny kernel
		.name tiny
		.equ  BASE 0x100
		.equ  N    4
		start:
			li   r1, BASE + N*8     # 0x120
			addi r2, r1, -1
			lw   r3, 8(r1)
			sw   r3, N*4(r2)
			ldg  r4, (r1)
			bne  r3, r0, start
			halt
	`)
	if p.Name != "tiny" {
		t.Errorf("name = %q", p.Name)
	}
	want := []isa.Inst{
		{Op: isa.ADDI, Rd: 1, Rs1: 0, Imm: 0x120},
		{Op: isa.ADDI, Rd: 2, Rs1: 1, Imm: -1},
		{Op: isa.LW, Rd: 3, Rs1: 1, Imm: 8},
		{Op: isa.SW, Rs2: 3, Rs1: 2, Imm: 16},
		{Op: isa.LDG, Rd: 4, Rs1: 1, Imm: 0},
		{Op: isa.BNE, Rs1: 3, Rs2: 0, Imm: 0, Sym: "start"},
		{Op: isa.HALT},
	}
	if len(p.Insts) != len(want) {
		t.Fatalf("got %d insts, want %d:\n%s", len(p.Insts), len(want), p.Disassemble())
	}
	for i, w := range want {
		if p.Insts[i] != w {
			t.Errorf("inst %d = %+v, want %+v", i, p.Insts[i], w)
		}
	}
	if p.Labels["start"] != 0 {
		t.Errorf("label start = %d", p.Labels["start"])
	}
}

func TestAssemblePseudos(t *testing.T) {
	p := mustAsm(t, `
		mv   r1, r2
		lif  r3, 1.5
		beqz r1, done
		bnez r1, done
		ble  r1, r2, done
		bgt  r1, r2, done
		bleu r1, r2, done
		bgtu r1, r2, done
		call sub
		done: halt
		sub: ret
	`)
	ins := p.Insts
	if ins[0] != (isa.Inst{Op: isa.ADDI, Rd: 1, Rs1: 2, Imm: 0}) {
		t.Errorf("mv = %+v", ins[0])
	}
	if ins[1].Op != isa.ADDI || isa.F32(uint32(ins[1].Imm)) != 1.5 {
		t.Errorf("lif = %+v", ins[1])
	}
	if ins[2].Op != isa.BEQ || ins[2].Rs1 != 1 || ins[2].Rs2 != 0 {
		t.Errorf("beqz = %+v", ins[2])
	}
	if ins[3].Op != isa.BNE {
		t.Errorf("bnez = %+v", ins[3])
	}
	// ble r1,r2 -> bge r2,r1
	if ins[4].Op != isa.BGE || ins[4].Rs1 != 2 || ins[4].Rs2 != 1 {
		t.Errorf("ble = %+v", ins[4])
	}
	if ins[5].Op != isa.BLT || ins[5].Rs1 != 2 || ins[5].Rs2 != 1 {
		t.Errorf("bgt = %+v", ins[5])
	}
	if ins[6].Op != isa.BGEU || ins[7].Op != isa.BLTU {
		t.Errorf("bleu/bgtu = %+v / %+v", ins[6], ins[7])
	}
	if ins[8].Op != isa.JAL || ins[8].Rd != 31 || ins[8].Imm != 10 {
		t.Errorf("call = %+v", ins[8])
	}
	if ins[10].Op != isa.JR || ins[10].Rs1 != 31 {
		t.Errorf("ret = %+v", ins[10])
	}
}

func TestAssembleCSRNames(t *testing.T) {
	p := mustAsm(t, `
		csrr r1, coreletid
		csrr r2, contextid
		csrr r3, ncorelets
		csrr r4, ncontexts
		csrr r5, tid
		csrr r6, nthreads
		csrr r7, 3
		halt
	`)
	wantCSR := []int32{isa.CSRCoreletID, isa.CSRContextID, isa.CSRNumCorelet,
		isa.CSRNumContext, isa.CSRThreadID, isa.CSRNumThreads, 3}
	for i, w := range wantCSR {
		if p.Insts[i].Op != isa.CSRR || p.Insts[i].Imm != w {
			t.Errorf("csrr %d = %+v, want imm %d", i, p.Insts[i], w)
		}
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		src, wantSub string
	}{
		{"", "empty program"},
		{"bogus r1, r2\nhalt", "unknown mnemonic"},
		{"add r1, r2\nhalt", "wants 3 operands"},
		{"add r1, r2, r99\nhalt", "bad register"},
		{"add r1, r2, x3\nhalt", "expected register"},
		{"j nowhere\nhalt", "undefined label"},
		{"x: x: halt", "duplicate label"},
		{"1bad: halt", "bad label"},
		{".equ A 1\n.equ A 2\nhalt", "duplicate .equ"},
		{".equ 9x 1\nhalt", "bad .equ symbol"},
		{".equ A\nhalt", ".equ wants"},
		{".weird\nhalt", "unknown directive"},
		{".name\nhalt", ".name wants"},
		{"li r1, NOPE\nhalt", "undefined symbol"},
		{"lw r1, 4[r2]\nhalt", "expected offset(reg)"},
		{"csrr r1, fancy\nhalt", "unknown CSR"},
		{"lif r1, abc\nhalt", "bad float"},
		{"add r1, r2, r3", "fall off the end"},
		{"li r1, 0x1FFFFFFFF\nhalt", "out of 32-bit range"},
	}
	for _, c := range cases {
		_, err := Assemble("t", c.src)
		if err == nil {
			t.Errorf("Assemble(%q) succeeded, want error containing %q", c.src, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Assemble(%q) error = %q, want substring %q", c.src, err, c.wantSub)
		}
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble did not panic on bad source")
		}
	}()
	MustAssemble("bad", "not an instruction")
}

func TestEvalExpr(t *testing.T) {
	syms := map[string]int64{"A": 10, "B_2": 3, "row.size": 2048}
	cases := []struct {
		expr string
		want int64
	}{
		{"42", 42},
		{"-7", -7},
		{"0x10", 16},
		{"0XFF", 255},
		{"1+2*3", 7},
		{"(1+2)*3", 9},
		{"A*B_2", 30},
		{"A-B_2-1", 6},
		{"100/7", 14},
		{"100%7", 2},
		{"1<<10", 1024},
		{"row.size>>1", 1024},
		{"1<<4+1", 17}, // Go-style precedence: (1<<4)+1
		{"-(A+2)", -12},
		{" 2 * ( A + 1 ) ", 22},
	}
	for _, c := range cases {
		got, err := evalExpr(c.expr, syms)
		if err != nil {
			t.Errorf("evalExpr(%q): %v", c.expr, err)
			continue
		}
		if got != c.want {
			t.Errorf("evalExpr(%q) = %d, want %d", c.expr, got, c.want)
		}
	}
}

func TestEvalExprErrors(t *testing.T) {
	for _, e := range []string{"", "1/0", "1%0", "(1", "1)", "X", "1 <<64", "@", "1 2"} {
		if _, err := evalExpr(e, nil); err == nil {
			t.Errorf("evalExpr(%q) succeeded", e)
		}
	}
}

const diamondSrc = `
	; if/else diamond
	li   r1, 1
	beq  r1, r0, elseb
	addi r2, r0, 1
	j    join
elseb:
	addi r2, r0, 2
join:
	addi r3, r2, 0
	halt
`

func TestCFGDiamond(t *testing.T) {
	p := mustAsm(t, diamondSrc)
	g := BuildCFG(p)
	// Blocks: [0,2) entry; [2,4) then; [4,5) else; [5,7) join.
	if len(g.Blocks) != 4 {
		t.Fatalf("got %d blocks: %+v", len(g.Blocks), g.Blocks)
	}
	if g.BlockOf(0) != 0 || g.BlockOf(3) != 1 || g.BlockOf(4) != 2 || g.BlockOf(6) != 3 {
		t.Errorf("blockOf wrong: %+v", g.blockOf)
	}
	wantSuccs := [][]int{{1, 2}, {3}, {3}, {4}}
	for i, w := range wantSuccs {
		if len(g.Blocks[i].Succs) != len(w) {
			t.Fatalf("block %d succs = %v, want %v", i, g.Blocks[i].Succs, w)
		}
		for j := range w {
			if g.Blocks[i].Succs[j] != w[j] {
				t.Errorf("block %d succs = %v, want %v", i, g.Blocks[i].Succs, w)
			}
		}
	}
}

func TestReconvergenceDiamond(t *testing.T) {
	p := mustAsm(t, diamondSrc)
	// The branch at inst 1 must reconverge at the join block (inst 5).
	if got := p.ReconvPC[1]; got != 5 {
		t.Errorf("reconv of diamond branch = %d, want 5", got)
	}
}

func TestReconvergenceLoop(t *testing.T) {
	p := mustAsm(t, `
		li r1, 10
	loop:
		addi r1, r1, -1
		bne  r1, r0, loop
		halt
	`)
	// Loop back-edge branch at inst 2: paths are loop (inst 1) and halt
	// (inst 3); they reconverge at the loop exit, inst 3.
	if got := p.ReconvPC[2]; got != 3 {
		t.Errorf("reconv of loop branch = %d, want 3", got)
	}
}

func TestReconvergenceNested(t *testing.T) {
	p := mustAsm(t, `
		li r1, 4
	outer:
		li r2, 4
	inner:
		addi r2, r2, -1
		beq  r2, r0, innerdone  ; diverging exit check
		j    inner
	innerdone:
		addi r1, r1, -1
		bne  r1, r0, outer
		halt
	`)
	// inner exit branch (inst 3): reconverges at innerdone (inst 5).
	if got := p.ReconvPC[3]; got != 5 {
		t.Errorf("inner reconv = %d, want 5", got)
	}
	// outer back edge (inst 6): reconverges at halt (inst 7).
	if got := p.ReconvPC[6]; got != 7 {
		t.Errorf("outer reconv = %d, want 7", got)
	}
}

func TestReconvergenceBranchToExit(t *testing.T) {
	p := mustAsm(t, `
		li r1, 1
		beq r1, r0, end
		addi r2, r0, 5
	end:
		halt
	`)
	if got := p.ReconvPC[1]; got != 3 {
		t.Errorf("reconv = %d, want 3 (halt)", got)
	}
}

func TestPostDominatorsChain(t *testing.T) {
	p := mustAsm(t, `
		addi r1, r0, 1
		addi r2, r0, 2
		halt
	`)
	g := BuildCFG(p)
	if len(g.Blocks) != 1 {
		t.Fatalf("straight-line code should be one block, got %d", len(g.Blocks))
	}
	ipdom := PostDominators(g)
	if ipdom[0] != g.Exit() {
		t.Errorf("ipdom of only block = %d, want exit %d", ipdom[0], g.Exit())
	}
}

func TestCFGNoCondBranches(t *testing.T) {
	p := mustAsm(t, "addi r1, r0, 1\nhalt")
	if len(p.ReconvPC) != 0 {
		t.Errorf("straight-line program has reconv entries: %v", p.ReconvPC)
	}
}

func TestLabelOnOwnLineAndShared(t *testing.T) {
	p := mustAsm(t, `
a:
b:	addi r1, r0, 1
c:	halt
	`)
	if p.Labels["a"] != 0 || p.Labels["b"] != 0 || p.Labels["c"] != 1 {
		t.Errorf("labels = %v", p.Labels)
	}
}

func TestAssembleStreamAndBarrierOps(t *testing.T) {
	p := mustAsm(t, `
		lds r11
		bar
		halt
	`)
	if p.Insts[0].Op != isa.LDS || p.Insts[0].Rd != 11 {
		t.Errorf("lds = %+v", p.Insts[0])
	}
	if p.Insts[1].Op != isa.BAR {
		t.Errorf("bar = %+v", p.Insts[1])
	}
	if _, err := Assemble("t", "lds r11, r12\nhalt"); err == nil {
		t.Error("lds with two operands accepted")
	}
	if _, err := Assemble("t", "bar r1\nhalt"); err == nil {
		t.Error("bar with operand accepted")
	}
}
