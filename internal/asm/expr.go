package asm

import (
	"fmt"
	"strconv"
	"strings"
)

// evalExpr evaluates an assemble-time integer expression. Supported: decimal
// and 0x hex literals, .equ symbols, unary minus, + - * / % << >>, and
// parentheses, with conventional precedence. Arithmetic is performed in
// int64 so that intermediate overflow in address math is caught by the
// 32-bit range check at the call site.
func evalExpr(s string, syms map[string]int64) (int64, error) {
	p := &exprParser{src: s, syms: syms}
	v, err := p.parseAdd()
	if err != nil {
		return 0, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return 0, fmt.Errorf("trailing junk in expression %q at %d", s, p.pos)
	}
	return v, nil
}

type exprParser struct {
	src  string
	pos  int
	syms map[string]int64
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *exprParser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

// parseAdd handles + and - (lowest precedence; shifts bind tighter, as in Go).
func (p *exprParser) parseAdd() (int64, error) {
	v, err := p.parseShift()
	if err != nil {
		return 0, err
	}
	for {
		switch p.peek() {
		case '+':
			p.pos++
			r, err := p.parseShift()
			if err != nil {
				return 0, err
			}
			v += r
		case '-':
			p.pos++
			r, err := p.parseShift()
			if err != nil {
				return 0, err
			}
			v -= r
		default:
			return v, nil
		}
	}
}

func (p *exprParser) parseShift() (int64, error) {
	v, err := p.parseMul()
	if err != nil {
		return 0, err
	}
	for {
		p.skipSpace()
		if strings.HasPrefix(p.src[p.pos:], "<<") {
			p.pos += 2
			r, err := p.parseMul()
			if err != nil {
				return 0, err
			}
			if r < 0 || r > 63 {
				return 0, fmt.Errorf("shift amount %d out of range", r)
			}
			v <<= uint(r)
		} else if strings.HasPrefix(p.src[p.pos:], ">>") {
			p.pos += 2
			r, err := p.parseMul()
			if err != nil {
				return 0, err
			}
			if r < 0 || r > 63 {
				return 0, fmt.Errorf("shift amount %d out of range", r)
			}
			v >>= uint(r)
		} else {
			return v, nil
		}
	}
}

func (p *exprParser) parseMul() (int64, error) {
	v, err := p.parseUnary()
	if err != nil {
		return 0, err
	}
	for {
		switch p.peek() {
		case '*':
			p.pos++
			r, err := p.parseUnary()
			if err != nil {
				return 0, err
			}
			v *= r
		case '/':
			p.pos++
			r, err := p.parseUnary()
			if err != nil {
				return 0, err
			}
			if r == 0 {
				return 0, fmt.Errorf("division by zero in expression")
			}
			v /= r
		case '%':
			p.pos++
			r, err := p.parseUnary()
			if err != nil {
				return 0, err
			}
			if r == 0 {
				return 0, fmt.Errorf("modulo by zero in expression")
			}
			v %= r
		default:
			return v, nil
		}
	}
}

func (p *exprParser) parseUnary() (int64, error) {
	if p.peek() == '-' {
		p.pos++
		v, err := p.parseUnary()
		return -v, err
	}
	return p.parsePrimary()
}

func (p *exprParser) parsePrimary() (int64, error) {
	c := p.peek()
	switch {
	case c == '(':
		p.pos++
		v, err := p.parseAdd()
		if err != nil {
			return 0, err
		}
		if p.peek() != ')' {
			return 0, fmt.Errorf("missing ) in expression %q", p.src)
		}
		p.pos++
		return v, nil
	case c >= '0' && c <= '9':
		start := p.pos
		if strings.HasPrefix(p.src[p.pos:], "0x") || strings.HasPrefix(p.src[p.pos:], "0X") {
			p.pos += 2
			for p.pos < len(p.src) && isHexDigit(p.src[p.pos]) {
				p.pos++
			}
			v, err := strconv.ParseUint(p.src[start+2:p.pos], 16, 64)
			return int64(v), err
		}
		for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
			p.pos++
		}
		return strconv.ParseInt(p.src[start:p.pos], 10, 64)
	case isIdentByte(c):
		start := p.pos
		for p.pos < len(p.src) && (isIdentByte(p.src[p.pos]) || (p.src[p.pos] >= '0' && p.src[p.pos] <= '9')) {
			p.pos++
		}
		name := p.src[start:p.pos]
		v, ok := p.syms[name]
		if !ok {
			return 0, fmt.Errorf("undefined symbol %q", name)
		}
		return v, nil
	}
	return 0, fmt.Errorf("unexpected character %q in expression %q", string(c), p.src)
}

func isHexDigit(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

func isIdentByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == '.'
}
