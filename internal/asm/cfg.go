package asm

import (
	"sort"

	"repro/internal/isa"
)

// Block is a basic block: instructions [Start, End) with CFG successor block
// indices. A successor equal to len(blocks) denotes the virtual exit node.
type Block struct {
	Start, End int
	Succs      []int
}

// CFG is the control-flow graph of a program at basic-block granularity.
type CFG struct {
	Blocks []Block
	// blockOf[i] is the block index containing instruction i.
	blockOf []int
}

// BlockOf returns the index of the block containing instruction pc.
func (g *CFG) BlockOf(pc int) int { return g.blockOf[pc] }

// Exit returns the virtual exit node index.
func (g *CFG) Exit() int { return len(g.Blocks) }

// BuildCFG constructs the basic-block control-flow graph of p. JAL is
// treated as an unconditional jump (the BMLA kernels are leaf kernels; the
// SIMT models only need reconvergence points for conditional branches, and
// none of the kernels place conditional branches across call boundaries).
// JR and HALT edge to the virtual exit.
func BuildCFG(p *isa.Program) *CFG {
	n := len(p.Insts)
	leader := make([]bool, n+1)
	leader[0] = true
	for i, in := range p.Insts {
		switch {
		case isa.IsCondBranch(in.Op):
			leader[in.Imm] = true
			if i+1 <= n {
				leader[i+1] = true
			}
		case in.Op == isa.J || in.Op == isa.JAL:
			leader[in.Imm] = true
			if i+1 <= n {
				leader[i+1] = true
			}
		case in.Op == isa.JR || in.Op == isa.HALT:
			if i+1 <= n {
				leader[i+1] = true
			}
		}
	}
	var starts []int
	for i := 0; i < n; i++ {
		if leader[i] {
			starts = append(starts, i)
		}
	}
	g := &CFG{blockOf: make([]int, n)}
	startToBlock := make(map[int]int, len(starts))
	for bi, s := range starts {
		end := n
		if bi+1 < len(starts) {
			end = starts[bi+1]
		}
		g.Blocks = append(g.Blocks, Block{Start: s, End: end})
		startToBlock[s] = bi
		for i := s; i < end; i++ {
			g.blockOf[i] = bi
		}
	}
	exit := g.Exit()
	for bi := range g.Blocks {
		b := &g.Blocks[bi]
		last := p.Insts[b.End-1]
		addSucc := func(pc int) {
			if pc >= n {
				b.Succs = append(b.Succs, exit)
				return
			}
			b.Succs = append(b.Succs, startToBlock[pc])
		}
		switch {
		case isa.IsCondBranch(last.Op):
			addSucc(b.End)         // not taken
			addSucc(int(last.Imm)) // taken
		case last.Op == isa.J, last.Op == isa.JAL:
			addSucc(int(last.Imm))
		case last.Op == isa.JR, last.Op == isa.HALT:
			b.Succs = append(b.Succs, exit)
		default:
			addSucc(b.End)
		}
		// Deduplicate (branch to fall-through target).
		sort.Ints(b.Succs)
		b.Succs = dedupe(b.Succs)
	}
	return g
}

func dedupe(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// PostDominators computes the immediate post-dominator of every block using
// the Cooper–Harvey–Kennedy iterative algorithm on the reversed CFG, rooted
// at the virtual exit node. The result maps block index -> immediate
// post-dominator block index (the exit post-dominates itself). Blocks from
// which the exit is unreachable (which validate rejects for kernels, but
// hand-built programs may contain) get -1.
func PostDominators(g *CFG) []int {
	nb := len(g.Blocks)
	exit := g.Exit()
	total := nb + 1

	// In the reversed graph an edge runs s -> b for every CFG edge b -> s,
	// so node v's reversed-graph predecessors are exactly its CFG successors.
	revPreds := make([][]int, total)
	for bi, b := range g.Blocks {
		revPreds[bi] = b.Succs
	}

	// Reverse postorder of the reversed graph from exit. The reversed
	// graph's successors of node v are the CFG predecessors of v.
	cfgPreds := make([][]int, total)
	for bi, b := range g.Blocks {
		for _, s := range b.Succs {
			cfgPreds[s] = append(cfgPreds[s], bi)
		}
	}
	var rpo []int
	visited := make([]bool, total)
	var dfs func(v int)
	dfs = func(v int) {
		visited[v] = true
		for _, w := range cfgPreds[v] {
			if !visited[w] {
				dfs(w)
			}
		}
		rpo = append(rpo, v)
	}
	dfs(exit)
	// rpo currently holds postorder; reverse it.
	for i, j := 0, len(rpo)-1; i < j; i, j = i+1, j-1 {
		rpo[i], rpo[j] = rpo[j], rpo[i]
	}
	order := make([]int, total) // node -> RPO index
	for i := range order {
		order[i] = -1
	}
	for i, v := range rpo {
		order[v] = i
	}

	ipdom := make([]int, total)
	for i := range ipdom {
		ipdom[i] = -1
	}
	ipdom[exit] = exit

	intersect := func(a, b int) int {
		for a != b {
			for order[a] > order[b] {
				a = ipdom[a]
			}
			for order[b] > order[a] {
				b = ipdom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, v := range rpo {
			if v == exit {
				continue
			}
			newIdom := -1
			for _, p := range revPreds[v] {
				if ipdom[p] == -1 || order[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != -1 && ipdom[v] != newIdom {
				ipdom[v] = newIdom
				changed = true
			}
		}
	}
	return ipdom[:nb+1]
}

// Reconvergence returns, for every conditional branch instruction in p, the
// reconvergence PC used by the SIMT divergence stack: the start instruction
// of the branch block's immediate post-dominator. A value of len(p.Insts)
// means the paths only reconverge at thread exit.
func Reconvergence(p *isa.Program) map[int]int {
	g := BuildCFG(p)
	ipdom := PostDominators(g)
	out := make(map[int]int)
	exit := g.Exit()
	for i, in := range p.Insts {
		if !isa.IsCondBranch(in.Op) {
			continue
		}
		b := g.BlockOf(i)
		d := ipdom[b]
		if d == -1 || d == exit {
			out[i] = len(p.Insts)
			continue
		}
		out[i] = g.Blocks[d].Start
	}
	return out
}
