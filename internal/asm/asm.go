// Package asm assembles kernel source text into isa.Programs.
//
// The BMLA kernels in internal/kernels are written in a small assembly
// dialect so that the paper's application characteristics — instructions per
// input word, branch frequency, indirect local-memory accesses (Table IV) —
// emerge from real instruction streams rather than being injected as
// synthetic statistics.
//
// Syntax, one statement per line:
//
//	; comment            # comment also accepted
//	.name kernelname     program name
//	.equ  SYM expr       assemble-time constant
//	label:               (may share a line with an instruction)
//	add  r1, r2, r3      register-register
//	addi r1, r2, expr    register-immediate; expr may use .equ symbols, + - * / ( )
//	lw   r1, expr(r2)    loads/stores
//	bne  r1, r2, label   branches name labels
//	csrr r1, coreletid   named CSRs: coreletid contextid ncorelets ncontexts tid nthreads
//	lds  r1              stream load via the hardware walker (isa.Stream* registers)
//	bar                  processor-wide software barrier
//
// Pseudo-instructions: li rd, expr · lif rd, float · mv rd, rs · beqz/bnez
// rs, label · ble/bgt rs1, rs2, label (operand swap of bge/blt) · call label
// (jal r31) · ret (jr r31).
//
// Assemble also builds the control-flow graph and computes each conditional
// branch's reconvergence PC (the immediate post-dominator), which the SIMT
// pipeline models (internal/simt) use for their divergence stacks.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
)

// Error describes an assembly failure with source position.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

var csrNames = map[string]int32{
	"coreletid": isa.CSRCoreletID,
	"contextid": isa.CSRContextID,
	"ncorelets": isa.CSRNumCorelet,
	"ncontexts": isa.CSRNumContext,
	"tid":       isa.CSRThreadID,
	"nthreads":  isa.CSRNumThreads,
}

type fixup struct {
	inst  int    // instruction index whose Imm needs the label address
	label string // target label
	line  int
}

type assembler struct {
	name   string
	insts  []isa.Inst
	labels map[string]int
	equs   map[string]int64
	fixups []fixup
}

// Assemble translates source into a validated program with reconvergence
// metadata. The name argument is used if the source has no .name directive.
func Assemble(name, src string) (*isa.Program, error) {
	a := &assembler{
		name:   name,
		labels: make(map[string]int),
		equs:   make(map[string]int64),
	}
	for i, raw := range strings.Split(src, "\n") {
		if err := a.line(i+1, raw); err != nil {
			return nil, err
		}
	}
	for _, f := range a.fixups {
		idx, ok := a.labels[f.label]
		if !ok {
			return nil, &Error{f.line, fmt.Sprintf("undefined label %q", f.label)}
		}
		a.insts[f.inst].Imm = int32(idx)
		a.insts[f.inst].Sym = f.label
	}
	if len(a.insts) == 0 {
		return nil, &Error{0, "empty program"}
	}
	p := &isa.Program{Name: a.name, Insts: a.insts, Labels: a.labels}
	if err := validate(p); err != nil {
		return nil, err
	}
	p.ReconvPC = Reconvergence(p)
	return p, nil
}

// MustAssemble is Assemble for statically known-good sources (the built-in
// kernels); it panics on error.
func MustAssemble(name, src string) *isa.Program {
	p, err := Assemble(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

func (a *assembler) line(n int, raw string) error {
	// Strip comments.
	if i := strings.IndexAny(raw, ";#"); i >= 0 {
		raw = raw[:i]
	}
	s := strings.TrimSpace(raw)
	if s == "" {
		return nil
	}
	// Labels (possibly several, possibly followed by an instruction).
	for {
		i := strings.Index(s, ":")
		if i < 0 {
			break
		}
		label := strings.TrimSpace(s[:i])
		if !isIdent(label) {
			return &Error{n, fmt.Sprintf("bad label %q", label)}
		}
		if _, dup := a.labels[label]; dup {
			return &Error{n, fmt.Sprintf("duplicate label %q", label)}
		}
		a.labels[label] = len(a.insts)
		s = strings.TrimSpace(s[i+1:])
	}
	if s == "" {
		return nil
	}
	// Directives.
	if strings.HasPrefix(s, ".") {
		return a.directive(n, s)
	}
	return a.instruction(n, s)
}

func (a *assembler) directive(n int, s string) error {
	fields := strings.Fields(s)
	switch fields[0] {
	case ".name":
		if len(fields) != 2 {
			return &Error{n, ".name wants one argument"}
		}
		a.name = fields[1]
		return nil
	case ".equ":
		if len(fields) < 3 {
			return &Error{n, ".equ wants a symbol and an expression"}
		}
		sym := fields[1]
		if !isIdent(sym) {
			return &Error{n, fmt.Sprintf("bad .equ symbol %q", sym)}
		}
		if _, dup := a.equs[sym]; dup {
			return &Error{n, fmt.Sprintf("duplicate .equ %q", sym)}
		}
		v, err := evalExpr(strings.Join(fields[2:], ""), a.equs)
		if err != nil {
			return &Error{n, err.Error()}
		}
		a.equs[sym] = v
		return nil
	}
	return &Error{n, fmt.Sprintf("unknown directive %q", fields[0])}
}

// operand splitting: "add r1, r2, r3" -> mnemonic "add", ops ["r1","r2","r3"].
func splitOperands(s string) (string, []string) {
	i := strings.IndexAny(s, " \t")
	if i < 0 {
		return strings.ToLower(s), nil
	}
	mn := strings.ToLower(s[:i])
	rest := strings.TrimSpace(s[i:])
	if rest == "" {
		return mn, nil
	}
	parts := strings.Split(rest, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return mn, parts
}

func (a *assembler) reg(n int, s string) (uint8, error) {
	if len(s) < 2 || (s[0] != 'r' && s[0] != 'R') {
		return 0, &Error{n, fmt.Sprintf("expected register, got %q", s)}
	}
	v, err := strconv.Atoi(s[1:])
	if err != nil || v < 0 || v >= isa.NumRegs {
		return 0, &Error{n, fmt.Sprintf("bad register %q", s)}
	}
	return uint8(v), nil
}

func (a *assembler) imm(n int, s string) (int32, error) {
	v, err := evalExpr(s, a.equs)
	if err != nil {
		return 0, &Error{n, err.Error()}
	}
	if v > 0xFFFFFFFF || v < -0x80000000 {
		return 0, &Error{n, fmt.Sprintf("immediate %d out of 32-bit range", v)}
	}
	return int32(uint32(v)), nil
}

// memOperand parses "expr(rN)".
func (a *assembler) memOperand(n int, s string) (int32, uint8, error) {
	open := strings.LastIndex(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, &Error{n, fmt.Sprintf("expected offset(reg), got %q", s)}
	}
	base, err := a.reg(n, strings.TrimSpace(s[open+1:len(s)-1]))
	if err != nil {
		return 0, 0, err
	}
	offStr := strings.TrimSpace(s[:open])
	if offStr == "" {
		offStr = "0"
	}
	off, err := a.imm(n, offStr)
	if err != nil {
		return 0, 0, err
	}
	return off, base, nil
}

func (a *assembler) emit(in isa.Inst) { a.insts = append(a.insts, in) }

func (a *assembler) branchTarget(n int, inst int, label string) {
	a.fixups = append(a.fixups, fixup{inst: inst, label: label, line: n})
}

var regRegOps = map[string]isa.Op{
	"add": isa.ADD, "sub": isa.SUB, "mul": isa.MUL, "div": isa.DIV, "rem": isa.REM,
	"and": isa.AND, "or": isa.OR, "xor": isa.XOR, "sll": isa.SLL, "srl": isa.SRL,
	"sra": isa.SRA, "slt": isa.SLT, "sltu": isa.SLTU, "min": isa.MIN, "max": isa.MAX,
	"fadd": isa.FADD, "fsub": isa.FSUB, "fmul": isa.FMUL, "fdiv": isa.FDIV,
	"fmin": isa.FMIN, "fmax": isa.FMAX, "flt": isa.FLT, "fle": isa.FLE, "feq": isa.FEQ,
}

var regImmOps = map[string]isa.Op{
	"addi": isa.ADDI, "andi": isa.ANDI, "ori": isa.ORI, "xori": isa.XORI,
	"slli": isa.SLLI, "srli": isa.SRLI, "srai": isa.SRAI, "slti": isa.SLTI,
}

var branchOps = map[string]isa.Op{
	"beq": isa.BEQ, "bne": isa.BNE, "blt": isa.BLT, "bge": isa.BGE,
	"bltu": isa.BLTU, "bgeu": isa.BGEU,
}

// swapped-operand branch pseudos: ble a,b == bge b,a ; bgt a,b == blt b,a.
var branchSwapOps = map[string]isa.Op{
	"ble": isa.BGE, "bgt": isa.BLT, "bleu": isa.BGEU, "bgtu": isa.BLTU,
}

var unaryOps = map[string]isa.Op{
	"fsqrt": isa.FSQRT, "cvtif": isa.CVTIF, "cvtfi": isa.CVTFI,
}

func (a *assembler) instruction(n int, s string) error {
	mn, ops := splitOperands(s)
	want := func(k int) error {
		if len(ops) != k {
			return &Error{n, fmt.Sprintf("%s wants %d operands, got %d", mn, k, len(ops))}
		}
		return nil
	}
	switch {
	case mn == "nop":
		if err := want(0); err != nil {
			return err
		}
		a.emit(isa.Inst{Op: isa.NOP})
	case mn == "halt":
		if err := want(0); err != nil {
			return err
		}
		a.emit(isa.Inst{Op: isa.HALT})
	case mn == "bar":
		if err := want(0); err != nil {
			return err
		}
		a.emit(isa.Inst{Op: isa.BAR})
	case regRegOps[mn] != 0:
		if err := want(3); err != nil {
			return err
		}
		rd, err := a.reg(n, ops[0])
		if err != nil {
			return err
		}
		rs1, err := a.reg(n, ops[1])
		if err != nil {
			return err
		}
		rs2, err := a.reg(n, ops[2])
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: regRegOps[mn], Rd: rd, Rs1: rs1, Rs2: rs2})
	case regImmOps[mn] != 0:
		if err := want(3); err != nil {
			return err
		}
		rd, err := a.reg(n, ops[0])
		if err != nil {
			return err
		}
		rs1, err := a.reg(n, ops[1])
		if err != nil {
			return err
		}
		imm, err := a.imm(n, ops[2])
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: regImmOps[mn], Rd: rd, Rs1: rs1, Imm: imm})
	case unaryOps[mn] != 0:
		if err := want(2); err != nil {
			return err
		}
		rd, err := a.reg(n, ops[0])
		if err != nil {
			return err
		}
		rs1, err := a.reg(n, ops[1])
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: unaryOps[mn], Rd: rd, Rs1: rs1})
	case mn == "lui":
		if err := want(2); err != nil {
			return err
		}
		rd, err := a.reg(n, ops[0])
		if err != nil {
			return err
		}
		imm, err := a.imm(n, ops[1])
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: isa.LUI, Rd: rd, Imm: imm})
	case mn == "lds":
		if err := want(1); err != nil {
			return err
		}
		rd, err := a.reg(n, ops[0])
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: isa.LDS, Rd: rd})
	case mn == "lw" || mn == "ldg":
		if err := want(2); err != nil {
			return err
		}
		rd, err := a.reg(n, ops[0])
		if err != nil {
			return err
		}
		off, base, err := a.memOperand(n, ops[1])
		if err != nil {
			return err
		}
		op := isa.LW
		if mn == "ldg" {
			op = isa.LDG
		}
		a.emit(isa.Inst{Op: op, Rd: rd, Rs1: base, Imm: off})
	case mn == "sw" || mn == "stg":
		if err := want(2); err != nil {
			return err
		}
		rs2, err := a.reg(n, ops[0])
		if err != nil {
			return err
		}
		off, base, err := a.memOperand(n, ops[1])
		if err != nil {
			return err
		}
		op := isa.SW
		if mn == "stg" {
			op = isa.STG
		}
		a.emit(isa.Inst{Op: op, Rs2: rs2, Rs1: base, Imm: off})
	case branchOps[mn] != 0 || branchSwapOps[mn] != 0:
		if err := want(3); err != nil {
			return err
		}
		i, j := 0, 1
		op := branchOps[mn]
		if op == 0 {
			op = branchSwapOps[mn]
			i, j = 1, 0 // swap sources
		}
		rs1, err := a.reg(n, ops[i])
		if err != nil {
			return err
		}
		rs2, err := a.reg(n, ops[j])
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: op, Rs1: rs1, Rs2: rs2})
		a.branchTarget(n, len(a.insts)-1, ops[2])
	case mn == "beqz" || mn == "bnez":
		if err := want(2); err != nil {
			return err
		}
		rs1, err := a.reg(n, ops[0])
		if err != nil {
			return err
		}
		op := isa.BEQ
		if mn == "bnez" {
			op = isa.BNE
		}
		a.emit(isa.Inst{Op: op, Rs1: rs1, Rs2: 0})
		a.branchTarget(n, len(a.insts)-1, ops[1])
	case mn == "j":
		if err := want(1); err != nil {
			return err
		}
		a.emit(isa.Inst{Op: isa.J})
		a.branchTarget(n, len(a.insts)-1, ops[0])
	case mn == "jal":
		if err := want(2); err != nil {
			return err
		}
		rd, err := a.reg(n, ops[0])
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: isa.JAL, Rd: rd})
		a.branchTarget(n, len(a.insts)-1, ops[1])
	case mn == "call":
		if err := want(1); err != nil {
			return err
		}
		a.emit(isa.Inst{Op: isa.JAL, Rd: 31})
		a.branchTarget(n, len(a.insts)-1, ops[0])
	case mn == "jr":
		if err := want(1); err != nil {
			return err
		}
		rs1, err := a.reg(n, ops[0])
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: isa.JR, Rs1: rs1})
	case mn == "ret":
		if err := want(0); err != nil {
			return err
		}
		a.emit(isa.Inst{Op: isa.JR, Rs1: 31})
	case mn == "csrr":
		if err := want(2); err != nil {
			return err
		}
		rd, err := a.reg(n, ops[0])
		if err != nil {
			return err
		}
		csr, ok := csrNames[strings.ToLower(ops[1])]
		if !ok {
			imm, err := a.imm(n, ops[1])
			if err != nil {
				return &Error{n, fmt.Sprintf("unknown CSR %q", ops[1])}
			}
			csr = imm
		}
		a.emit(isa.Inst{Op: isa.CSRR, Rd: rd, Imm: csr})
	case mn == "li":
		if err := want(2); err != nil {
			return err
		}
		rd, err := a.reg(n, ops[0])
		if err != nil {
			return err
		}
		imm, err := a.imm(n, ops[1])
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: isa.ADDI, Rd: rd, Rs1: 0, Imm: imm})
	case mn == "lif":
		if err := want(2); err != nil {
			return err
		}
		rd, err := a.reg(n, ops[0])
		if err != nil {
			return err
		}
		f, err := strconv.ParseFloat(ops[1], 32)
		if err != nil {
			return &Error{n, fmt.Sprintf("bad float %q", ops[1])}
		}
		a.emit(isa.Inst{Op: isa.ADDI, Rd: rd, Rs1: 0, Imm: int32(isa.Bits(float32(f)))})
	case mn == "mv":
		if err := want(2); err != nil {
			return err
		}
		rd, err := a.reg(n, ops[0])
		if err != nil {
			return err
		}
		rs1, err := a.reg(n, ops[1])
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: isa.ADDI, Rd: rd, Rs1: rs1, Imm: 0})
	default:
		return &Error{n, fmt.Sprintf("unknown mnemonic %q", mn)}
	}
	return nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// validate performs whole-program checks: branch targets in range and every
// path reaches HALT or a backward jump (i.e., no fall-off-the-end).
func validate(p *isa.Program) error {
	nInst := len(p.Insts)
	for i, in := range p.Insts {
		if isa.IsBranch(in.Op) && in.Op != isa.JR {
			if in.Imm < 0 || int(in.Imm) > nInst {
				return &Error{0, fmt.Sprintf("inst %d: branch target %d out of range", i, in.Imm)}
			}
		}
	}
	last := p.Insts[nInst-1]
	switch {
	case last.Op == isa.HALT, last.Op == isa.J, last.Op == isa.JR:
	default:
		return &Error{0, fmt.Sprintf("program %q can fall off the end (last inst %s)", p.Name, last)}
	}
	return nil
}
