package rescache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestKeyDeterministic: same request value, same digest; different values,
// different digests.
func TestKeyDeterministic(t *testing.T) {
	type req struct {
		Experiment string  `json:"experiment"`
		Scale      float64 `json:"scale"`
		Seed       uint64  `json:"seed"`
	}
	a1, err := Key(req{"fig3", 1, 42})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Key(req{"fig3", 1, 42})
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatalf("identical requests hashed differently: %s vs %s", a1, a2)
	}
	if len(a1) != 64 {
		t.Fatalf("key %q is not a SHA-256 hex digest", a1)
	}
	b, err := Key(req{"fig3", 2, 42})
	if err != nil {
		t.Fatal(err)
	}
	if a1 == b {
		t.Fatal("different requests collided")
	}
}

// TestLRUEviction: the cache holds at most max entries and evicts least
// recently used first.
func TestLRUEviction(t *testing.T) {
	c := New(2)
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	if _, ok := c.Get("a"); !ok { // refresh a; b becomes LRU
		t.Fatal("a missing")
	}
	c.Put("c", []byte("C")) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a (recently used) was evicted")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c missing")
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 entries and 1 eviction", st)
	}
}

// TestDoSingleflight: N concurrent Do calls for one key run fn exactly once
// and all see the same bytes.
func TestDoSingleflight(t *testing.T) {
	c := New(8)
	var calls atomic.Int64
	gate := make(chan struct{})
	const n = 16
	results := make([][]byte, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			defer wg.Done()
			v, _, err := c.Do("k", func() ([]byte, error) {
				calls.Add(1)
				<-gate // hold the leader so the others pile up in-flight
				return []byte("result"), nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}()
	}
	// Let the leader start and the followers enqueue; the gate guarantees
	// nobody can finish before all Do calls are issued.
	for c.Stats().Misses == 0 {
	}
	close(gate)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	for i, v := range results {
		if string(v) != "result" {
			t.Fatalf("caller %d saw %q", i, v)
		}
	}
	if st := c.Stats(); st.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (leader only)", st.Misses)
	}
}

// TestDoErrorNotCached: a failing computation is retried by the next Do.
func TestDoErrorNotCached(t *testing.T) {
	c := New(8)
	boom := errors.New("boom")
	_, _, err := c.Do("k", func() ([]byte, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	v, cached, err := c.Do("k", func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || cached || string(v) != "ok" {
		t.Fatalf("retry: v=%q cached=%v err=%v", v, cached, err)
	}
	if _, cached, _ := c.Do("k", nil); !cached {
		t.Fatal("successful result was not cached")
	}
}

// TestDoCachedHit: a completed Do satisfies later calls from the cache
// without invoking fn.
func TestDoCachedHit(t *testing.T) {
	c := New(8)
	if _, _, err := c.Do("k", func() ([]byte, error) { return []byte("v"), nil }); err != nil {
		t.Fatal(err)
	}
	v, cached, err := c.Do("k", func() ([]byte, error) {
		t.Fatal("fn ran despite cached entry")
		return nil, nil
	})
	if err != nil || !cached || string(v) != "v" {
		t.Fatalf("v=%q cached=%v err=%v", v, cached, err)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
	if got := st.HitRate(); got != 0.5 {
		t.Fatalf("hit rate = %g, want 0.5", got)
	}
}

// TestManyKeys exercises eviction and lookups across a larger key space.
func TestManyKeys(t *testing.T) {
	c := New(16)
	for i := 0; i < 64; i++ {
		k, err := Key(struct{ I int }{i})
		if err != nil {
			t.Fatal(err)
		}
		c.Put(k, []byte(fmt.Sprint(i)))
	}
	if st := c.Stats(); st.Entries != 16 || st.Evictions != 48 {
		t.Fatalf("stats = %+v, want 16 entries / 48 evictions", st)
	}
}
