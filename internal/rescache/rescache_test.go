package rescache

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestKeyDeterministic: same request value, same digest; different values,
// different digests.
func TestKeyDeterministic(t *testing.T) {
	type req struct {
		Experiment string  `json:"experiment"`
		Scale      float64 `json:"scale"`
		Seed       uint64  `json:"seed"`
	}
	a1, err := Key(req{"fig3", 1, 42})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Key(req{"fig3", 1, 42})
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatalf("identical requests hashed differently: %s vs %s", a1, a2)
	}
	if len(a1) != 64 {
		t.Fatalf("key %q is not a SHA-256 hex digest", a1)
	}
	b, err := Key(req{"fig3", 2, 42})
	if err != nil {
		t.Fatal(err)
	}
	if a1 == b {
		t.Fatal("different requests collided")
	}
}

// TestLRUEviction: the cache holds at most max entries and evicts least
// recently used first.
func TestLRUEviction(t *testing.T) {
	c := New(2)
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	if _, ok := c.Get("a"); !ok { // refresh a; b becomes LRU
		t.Fatal("a missing")
	}
	c.Put("c", []byte("C")) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a (recently used) was evicted")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c missing")
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 entries and 1 eviction", st)
	}
}

// TestDoSingleflight: N concurrent Do calls for one key run fn exactly once
// and all see the same bytes.
func TestDoSingleflight(t *testing.T) {
	c := New(8)
	var calls atomic.Int64
	gate := make(chan struct{})
	const n = 16
	results := make([][]byte, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			defer wg.Done()
			v, _, err := c.Do("k", func() ([]byte, error) {
				calls.Add(1)
				<-gate // hold the leader so the others pile up in-flight
				return []byte("result"), nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}()
	}
	// Let the leader start and the followers enqueue; the gate guarantees
	// nobody can finish before all Do calls are issued. (Stats settle at
	// leader completion, so the observable for "the leader is leading" is
	// fn having been entered.)
	for calls.Load() == 0 {
		runtime.Gosched()
	}
	close(gate)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	for i, v := range results {
		if string(v) != "result" {
			t.Fatalf("caller %d saw %q", i, v)
		}
	}
	if st := c.Stats(); st.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (leader only)", st.Misses)
	}
}

// TestDoErrorNotCached: a failing computation is retried by the next Do.
func TestDoErrorNotCached(t *testing.T) {
	c := New(8)
	boom := errors.New("boom")
	_, _, err := c.Do("k", func() ([]byte, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	v, cached, err := c.Do("k", func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || cached || string(v) != "ok" {
		t.Fatalf("retry: v=%q cached=%v err=%v", v, cached, err)
	}
	if _, cached, _ := c.Do("k", nil); !cached {
		t.Fatal("successful result was not cached")
	}
}

// TestDoCachedHit: a completed Do satisfies later calls from the cache
// without invoking fn.
func TestDoCachedHit(t *testing.T) {
	c := New(8)
	if _, _, err := c.Do("k", func() ([]byte, error) { return []byte("v"), nil }); err != nil {
		t.Fatal(err)
	}
	v, cached, err := c.Do("k", func() ([]byte, error) {
		t.Fatal("fn ran despite cached entry")
		return nil, nil
	})
	if err != nil || !cached || string(v) != "v" {
		t.Fatalf("v=%q cached=%v err=%v", v, cached, err)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
	if got := st.HitRate(); got != 0.5 {
		t.Fatalf("hit rate = %g, want 0.5", got)
	}
}

// joinCount reads the in-flight join counter for key (white-box: the tests
// need to know a follower has actually parked before acting on it).
func joinCount(c *Cache, key string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cl, ok := c.inflight[key]; ok {
		return cl.joins
	}
	return 0
}

// TestDoContextCancelledJoin: a joiner whose context ends detaches with
// ctx.Err() while the leader keeps computing and still caches the result.
func TestDoContextCancelledJoin(t *testing.T) {
	c := New(8)
	gate := make(chan struct{})
	var calls atomic.Int64
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		v, _, err := c.Do("k", func() ([]byte, error) {
			calls.Add(1)
			<-gate
			return []byte("v"), nil
		})
		if err != nil || string(v) != "v" {
			t.Errorf("leader: v=%q err=%v", v, err)
		}
	}()
	for calls.Load() == 0 {
		runtime.Gosched()
	}

	ctx, cancel := context.WithCancel(context.Background())
	joinErr := make(chan error, 1)
	go func() {
		_, _, err := c.DoContext(ctx, "k", func() ([]byte, error) {
			t.Error("joiner ran fn despite in-flight leader")
			return nil, nil
		})
		joinErr <- err
	}()
	for joinCount(c, "k") == 0 { // the joiner is parked in its select
		runtime.Gosched()
	}
	cancel()
	if err := <-joinErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled join: got %v, want context.Canceled", err)
	}

	close(gate)
	<-leaderDone
	if calls.Load() != 1 {
		t.Fatalf("fn ran %d times, want 1", calls.Load())
	}
	if _, cached, _ := c.Do("k", nil); !cached {
		t.Fatal("leader's result did not land in the cache")
	}
	// The detached join is settled on the leader's success: 1 join-hit plus
	// the final Get hit; the leader itself is the one miss.
	if st := c.Stats(); st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 2 hits / 1 miss", st)
	}
}

// TestDoFailedLeaderJoinStats: joins of a failing leader share its error and
// are accounted as misses, not hits.
func TestDoFailedLeaderJoinStats(t *testing.T) {
	c := New(8)
	gate := make(chan struct{})
	boom := errors.New("boom")
	var calls atomic.Int64
	leaderErr := make(chan error, 1)
	go func() {
		_, _, err := c.Do("k", func() ([]byte, error) {
			calls.Add(1)
			<-gate
			return nil, boom
		})
		leaderErr <- err
	}()
	for calls.Load() == 0 {
		runtime.Gosched()
	}
	joinRes := make(chan error, 1)
	go func() {
		_, _, err := c.Do("k", nil) // fn is never consulted by a joiner
		joinRes <- err
	}()
	for joinCount(c, "k") == 0 {
		runtime.Gosched()
	}
	close(gate)
	if err := <-leaderErr; !errors.Is(err, boom) {
		t.Fatalf("leader: got %v, want boom", err)
	}
	if err := <-joinRes; !errors.Is(err, boom) {
		t.Fatalf("join: got %v, want boom", err)
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 0 hits / 2 misses (leader + failed join)", st)
	}
}

// fakeTier is a scriptable SharedTier for two-tier unit tests.
type fakeTier struct {
	mu     sync.Mutex
	values map[string][]byte
	lease  string // granted on every miss
	gets   int
	puts   map[string]string // key -> lease the Put presented
}

func newFakeTier(lease string) *fakeTier {
	return &fakeTier{values: map[string][]byte{}, lease: lease, puts: map[string]string{}}
}

func (f *fakeTier) Get(ctx context.Context, key string) ([]byte, string, bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.gets++
	if v, ok := f.values[key]; ok {
		return v, "", true, nil
	}
	return nil, f.lease, false, nil
}

func (f *fakeTier) Put(ctx context.Context, key string, value []byte, lease string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.values[key] = value
	f.puts[key] = lease
	return nil
}

// TestTwoTierSharedHit: a local miss that the shared tier satisfies counts
// as a SharedHit, caches locally, and never invokes fn.
func TestTwoTierSharedHit(t *testing.T) {
	tier := newFakeTier("L")
	tier.values["k"] = []byte("remote")
	c := New(8)
	c.SetShared(tier)
	v, cached, err := c.Do("k", func() ([]byte, error) {
		t.Fatal("fn ran despite shared-tier hit")
		return nil, nil
	})
	if err != nil || !cached || string(v) != "remote" {
		t.Fatalf("v=%q cached=%v err=%v", v, cached, err)
	}
	if st := c.Stats(); st.SharedHits != 1 || st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("stats = %+v, want exactly 1 shared hit", st)
	}
	// The value is now in the local LRU: the next Do is a plain local hit.
	if _, cached, _ := c.Do("k", nil); !cached {
		t.Fatal("shared-tier result was not cached locally")
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 local hit after tier fill", st)
	}
}

// TestTwoTierMissComputesAndPublishes: a cluster-wide miss computes locally
// and publishes the result back under the granted lease.
func TestTwoTierMissComputesAndPublishes(t *testing.T) {
	tier := newFakeTier("L1")
	c := New(8)
	c.SetShared(tier)
	v, cached, err := c.Do("k", func() ([]byte, error) { return []byte("computed"), nil })
	if err != nil || cached || string(v) != "computed" {
		t.Fatalf("v=%q cached=%v err=%v", v, cached, err)
	}
	tier.mu.Lock()
	stored, lease := string(tier.values["k"]), tier.puts["k"]
	tier.mu.Unlock()
	if stored != "computed" || lease != "L1" {
		t.Fatalf("tier got %q under lease %q, want computed under L1", stored, lease)
	}
	if st := c.Stats(); st.Misses != 1 || st.SharedHits != 0 {
		t.Fatalf("stats = %+v, want 1 miss", st)
	}
}

// TestTwoTierLeaseWait: with the fill lease held elsewhere, the leader backs
// off and picks up the value the other node publishes instead of recomputing.
func TestTwoTierLeaseWait(t *testing.T) {
	tier := newFakeTier("") // empty lease = fill in flight elsewhere
	c := New(8)
	c.SetShared(tier)
	go func() {
		// "The other node" publishes during the leader's grace window.
		time.Sleep(leaseWaitStep / 2)
		tier.Put(context.Background(), "k", []byte("theirs"), "")
	}()
	v, cached, err := c.Do("k", func() ([]byte, error) {
		t.Error("fn ran: the leader should have waited out the lease")
		return nil, nil
	})
	if err != nil || !cached || string(v) != "theirs" {
		t.Fatalf("v=%q cached=%v err=%v", v, cached, err)
	}
	if st := c.Stats(); st.SharedHits != 1 {
		t.Fatalf("stats = %+v, want 1 shared hit", st)
	}
}

// TestManyKeys exercises eviction and lookups across a larger key space.
func TestManyKeys(t *testing.T) {
	c := New(16)
	for i := 0; i < 64; i++ {
		k, err := Key(struct{ I int }{i})
		if err != nil {
			t.Fatal(err)
		}
		c.Put(k, []byte(fmt.Sprint(i)))
	}
	if st := c.Stats(); st.Entries != 16 || st.Evictions != 48 {
		t.Fatalf("stats = %+v, want 16 entries / 48 evictions", st)
	}
}
