// Tests for the shared result tier: the native lease protocol, the HTTP
// wire form (via HTTPTier against a real listener), and the cluster-wide
// guarantee — two independent caches mounting one store simulate once.
package rescache

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestStoreLeaseProtocol: the first misser is granted the fill lease, later
// missers are told the fill is in flight, a fresh-lease Put fills and a
// stale-lease Put is dropped.
func TestStoreLeaseProtocol(t *testing.T) {
	st := NewStore(16, time.Minute)
	ctx := context.Background()

	_, lease, ok, err := st.Get(ctx, "k")
	if err != nil || ok || lease == "" {
		t.Fatalf("first miss: lease=%q ok=%v err=%v, want a granted lease", lease, ok, err)
	}
	_, lease2, ok, err := st.Get(ctx, "k")
	if err != nil || ok || lease2 != "" {
		t.Fatalf("second miss: lease=%q ok=%v err=%v, want held-elsewhere (empty lease)", lease2, ok, err)
	}

	// A stale token must not fill; the holder's token must.
	if st.putWithLease("k", []byte("stale"), "bogus") {
		t.Fatal("stale-lease Put was stored")
	}
	if !st.putWithLease("k", []byte("good"), lease) {
		t.Fatal("holder's Put was rejected")
	}
	v, _, ok, err := st.Get(ctx, "k")
	if err != nil || !ok || string(v) != "good" {
		t.Fatalf("after fill: v=%q ok=%v err=%v", v, ok, err)
	}
	if got := st.stalePuts.Load(); got != 1 {
		t.Fatalf("stalePuts = %d, want 1", got)
	}
}

// TestStoreLeaseExpiry: an expired lease is re-granted to the next misser,
// so a crashed filler cannot wedge a key.
func TestStoreLeaseExpiry(t *testing.T) {
	st := NewStore(16, 10*time.Millisecond)
	ctx := context.Background()
	_, lease, _, _ := st.Get(ctx, "k")
	if lease == "" {
		t.Fatal("first miss granted no lease")
	}
	time.Sleep(20 * time.Millisecond)
	_, lease2, _, _ := st.Get(ctx, "k")
	if lease2 == "" || lease2 == lease {
		t.Fatalf("after expiry: lease=%q (previous %q), want a fresh grant", lease2, lease)
	}
}

// TestStoreWireForm: the HTTP handler and HTTPTier round-trip the protocol —
// 404+lease on first miss, 404+Retry-After while held, 204 fill, 409 stale.
func TestStoreWireForm(t *testing.T) {
	st := NewStore(16, time.Minute)
	ts := httptest.NewServer(st.Handler())
	defer ts.Close()
	tier := NewHTTPTier(ts.URL, nil)
	ctx := context.Background()

	_, lease, ok, err := tier.Get(ctx, "k")
	if err != nil || ok || lease == "" {
		t.Fatalf("first miss over HTTP: lease=%q ok=%v err=%v", lease, ok, err)
	}
	// While the lease is held, the wire form is 404 + Retry-After, which the
	// tier reports as a leaseless miss.
	resp, err := http.Get(ts.URL + "/store/v1/items/k")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("held-lease GET: HTTP %d Retry-After=%q, want 404 with Retry-After", resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	if err := tier.Put(ctx, "k", []byte(`{"r":1}`), lease); err != nil {
		t.Fatalf("fill Put: %v", err)
	}
	v, _, ok, err := tier.Get(ctx, "k")
	if err != nil || !ok || string(v) != `{"r":1}` {
		t.Fatalf("after fill: v=%q ok=%v err=%v", v, ok, err)
	}
	// A stale-lease Put answers 409, which the tier treats as success (the
	// key was filled — with deterministic results that is just as good) and
	// the stored value must be unchanged.
	if err := tier.Put(ctx, "k", []byte("junk"), "bogus"); err != nil {
		t.Fatalf("stale Put should not error through the tier: %v", err)
	}
	if v, _, _, _ := tier.Get(ctx, "k"); string(v) != `{"r":1}` {
		t.Fatalf("stale Put overwrote the value: %q", v)
	}
	if got := st.stalePuts.Load(); got != 1 {
		t.Fatalf("stalePuts = %d, want 1", got)
	}
}

// TestClusterWideHit: two caches (two "nodes") mounting one store compute a
// key once — the second node's Do is a shared-tier hit, fn untouched.
func TestClusterWideHit(t *testing.T) {
	st := NewStore(16, time.Minute)
	nodeA, nodeB := New(8), New(8)
	nodeA.SetShared(st)
	nodeB.SetShared(st)

	v, cached, err := nodeA.Do("k", func() ([]byte, error) { return []byte("once"), nil })
	if err != nil || cached || string(v) != "once" {
		t.Fatalf("node A: v=%q cached=%v err=%v", v, cached, err)
	}
	v, cached, err = nodeB.Do("k", func() ([]byte, error) {
		t.Fatal("node B recomputed a cluster-cached result")
		return nil, nil
	})
	if err != nil || !cached || string(v) != "once" {
		t.Fatalf("node B: v=%q cached=%v err=%v", v, cached, err)
	}
	if st := nodeB.Stats(); st.SharedHits != 1 || st.Misses != 0 {
		t.Fatalf("node B stats = %+v, want 1 shared hit / 0 misses", st)
	}
}
