// The shared result tier: a memcache-style in-memory store that any number
// of millid worker nodes mount behind their local LRU (Cache.SetShared), so
// a simulation computed on one node is a cluster-wide hit and a restarted
// node does not cold-start. The store speaks a three-verb protocol —
// GET / PUT / LEASE — where the lease rides on GET misses: the first node
// to miss a key is granted a fill lease (it should compute and PUT), later
// missers are told the fill is in flight and back off briefly instead of
// stampeding the same simulation (the classic memcached lease mechanism).
//
// Wire form (Store.Handler):
//
//	GET /store/v1/items/{key}   200 body                      hit
//	                            404 + X-Millistore-Lease: t   miss, lease granted
//	                            404 + Retry-After: 1          miss, fill in flight
//	PUT /store/v1/items/{key}   204                           stored (lease cleared)
//	    X-Millistore-Lease: t   409                           stale lease, ignored
//	GET /healthz, /metrics      liveness + store counters
//
// Store also implements SharedTier natively, so in-process topologies (the
// SLA experiment, tests) mount it without HTTP; HTTPTier is the client-side
// SharedTier over the wire form.
package rescache

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// maxItemBytes bounds one stored result body (and the PUT request body).
const maxItemBytes = 16 << 20

// Store is the shared result tier. Create with NewStore; mount in-process
// via SharedTier or over HTTP via Handler + HTTPTier.
type Store struct {
	cache    *Cache
	leaseTTL time.Duration

	mu     sync.Mutex
	leases map[string]storeLease
	seq    uint64 // lease token generator

	puts, stalePuts, leaseGrants, leaseHeld atomic.Uint64
}

type storeLease struct {
	token   string
	expires time.Time
}

// NewStore returns a store bounded to maxEntries results (<= 0 defaults to
// 4096) whose fill leases expire after leaseTTL (<= 0 defaults to 30s — a
// lease must outlive one queued small simulation, not a worst-case sweep;
// an expired lease just lets another node fill).
func NewStore(maxEntries int, leaseTTL time.Duration) *Store {
	if maxEntries <= 0 {
		maxEntries = 4096
	}
	if leaseTTL <= 0 {
		leaseTTL = 30 * time.Second
	}
	return &Store{
		cache:    New(maxEntries),
		leaseTTL: leaseTTL,
		leases:   make(map[string]storeLease),
	}
}

// Get implements SharedTier in-process: on a miss the caller may be granted
// the fill lease (non-empty lease return).
func (st *Store) Get(ctx context.Context, key string) (value []byte, lease string, ok bool, err error) {
	if v, hit := st.cache.Get(key); hit {
		return v, "", true, nil
	}
	return nil, st.leaseFor(key), false, nil
}

// Put implements SharedTier in-process. An empty lease stores
// unconditionally; a stale lease is dropped (the key was already filled or
// re-leased — with deterministic results the stored value is equivalent).
func (st *Store) Put(ctx context.Context, key string, value []byte, lease string) error {
	if st.putWithLease(key, value, lease) {
		return nil
	}
	return nil // stale lease: dropped by design, not an error for the filler
}

// leaseFor grants the fill lease for a missing key if none is live, else
// returns "" (fill in flight elsewhere).
func (st *Store) leaseFor(key string) string {
	now := time.Now()
	st.mu.Lock()
	defer st.mu.Unlock()
	if l, ok := st.leases[key]; ok && now.Before(l.expires) {
		st.leaseHeld.Add(1)
		return ""
	}
	st.seq++
	token := fmt.Sprintf("l%x", st.seq)
	st.leases[key] = storeLease{token: token, expires: now.Add(st.leaseTTL)}
	st.leaseGrants.Add(1)
	return token
}

// putWithLease stores value and clears the key's lease. An empty token
// stores unconditionally (a filler whose lease-wait expired); a non-empty
// token must match the outstanding lease — a mismatched or already-consumed
// token is stale and the Put is dropped. Reports whether the value was
// stored.
func (st *Store) putWithLease(key string, value []byte, token string) bool {
	st.mu.Lock()
	if token != "" {
		if l, ok := st.leases[key]; !ok || token != l.token {
			st.mu.Unlock()
			st.stalePuts.Add(1)
			return false
		}
	}
	delete(st.leases, key)
	st.mu.Unlock()
	st.cache.Put(key, value)
	st.puts.Add(1)
	return true
}

// Stats returns the underlying cache counters (GET hits/misses, entries,
// evictions).
func (st *Store) Stats() Stats { return st.cache.Stats() }

// Registry returns a metrics registry exposing the store's counters; the
// store daemon serves its snapshot at /metrics.
func (st *Store) Registry() *metrics.Registry {
	r := metrics.NewRegistry()
	r.Counter("store.hits", func() uint64 { return st.cache.Stats().Hits })
	r.Counter("store.misses", func() uint64 { return st.cache.Stats().Misses })
	r.Counter("store.evictions", func() uint64 { return st.cache.Stats().Evictions })
	r.Gauge("store.entries", func() float64 { return float64(st.cache.Stats().Entries) })
	r.Gauge("store.hit_rate", func() float64 { return st.cache.Stats().HitRate() })
	r.Counter("store.puts", st.puts.Load)
	r.Counter("store.stale_puts", st.stalePuts.Load)
	r.Counter("store.lease_grants", st.leaseGrants.Load)
	r.Counter("store.lease_held", st.leaseHeld.Load)
	return r
}

// Handler returns the store's HTTP surface (the wire form above).
func (st *Store) Handler() http.Handler {
	reg := st.Registry()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /store/v1/items/{key}", func(w http.ResponseWriter, r *http.Request) {
		key := r.PathValue("key")
		if v, ok := st.cache.Get(key); ok {
			w.Header().Set("Content-Type", "application/json")
			w.Write(v)
			return
		}
		if lease := st.leaseFor(key); lease != "" {
			w.Header().Set(leaseHeader, lease)
		} else {
			w.Header().Set("Retry-After", "1")
		}
		w.WriteHeader(http.StatusNotFound)
	})
	mux.HandleFunc("PUT /store/v1/items/{key}", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxItemBytes))
		if err != nil {
			http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
			return
		}
		if !st.putWithLease(r.PathValue("key"), body, r.Header.Get(leaseHeader)) {
			w.WriteHeader(http.StatusConflict)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("{\"status\":\"ok\"}\n"))
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		data, err := reg.Snapshot().JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(data, '\n'))
	})
	return mux
}

// leaseHeader carries the fill-lease token on GET misses and PUT fills.
const leaseHeader = "X-Millistore-Lease"

// Note: the store's GET double-checks under separate locks (cache then
// lease table); two racing missers can therefore both observe a miss, but
// only one wins the lease — the invariant the protocol needs.

// HTTPTier is the client-side SharedTier speaking the store wire form.
type HTTPTier struct {
	base   string // e.g. http://store-host:8178
	client *http.Client
}

// NewHTTPTier returns a tier talking to the store daemon at baseURL.
// client nil uses a dedicated client with a short timeout — the shared
// tier is an optimization, so a slow store must not stall job execution
// for longer than a retry would cost.
func NewHTTPTier(baseURL string, client *http.Client) *HTTPTier {
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	return &HTTPTier{base: baseURL, client: client}
}

func (t *HTTPTier) url(key string) string { return t.base + "/store/v1/items/" + key }

// Get implements SharedTier over HTTP.
func (t *HTTPTier) Get(ctx context.Context, key string) (value []byte, lease string, ok bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.url(key), nil)
	if err != nil {
		return nil, "", false, err
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return nil, "", false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		v, err := io.ReadAll(io.LimitReader(resp.Body, maxItemBytes))
		if err != nil {
			return nil, "", false, err
		}
		return v, "", true, nil
	case http.StatusNotFound:
		return nil, resp.Header.Get(leaseHeader), false, nil
	default:
		return nil, "", false, fmt.Errorf("rescache: store GET %s: %s", key, resp.Status)
	}
}

// Put implements SharedTier over HTTP. A stale-lease 409 is not an error —
// the key was filled by someone else, which for deterministic results is
// exactly as good.
func (t *HTTPTier) Put(ctx context.Context, key string, value []byte, lease string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, t.url(key), bytes.NewReader(value))
	if err != nil {
		return err
	}
	req.ContentLength = int64(len(value))
	if lease != "" {
		req.Header.Set(leaseHeader, lease)
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent || resp.StatusCode == http.StatusConflict {
		return nil
	}
	return fmt.Errorf("rescache: store PUT %s: %s", key, resp.Status)
}
