// Package rescache is the content-addressed result cache of the millid
// simulation service. Every simulation in this repository is deterministic —
// the harness verifies each run against a golden reference and the BENCH
// determinism gate pins its cycle counts bit-for-bit — so a result is fully
// determined by its request: experiment name, architecture parameters,
// input scale, and dataset seed. That makes results perfectly cacheable:
// the cache keys entries by the SHA-256 of the canonical JSON encoding of
// the request and stores the rendered result bytes in a bounded LRU.
//
// Concurrent identical requests are deduplicated singleflight-style: the
// first Do for a key runs the computation, later callers for the same key
// block and share the one result, so an in-flight simulation never runs
// twice no matter how many clients ask for it.
package rescache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
)

// Key returns the content address of a request: the SHA-256 hex digest of
// its canonical JSON encoding. Canonical means the request must marshal
// deterministically — encoding/json emits struct fields in declaration
// order, so any fixed struct (not a map) qualifies.
func Key(req any) (string, error) {
	data, err := json.Marshal(req)
	if err != nil {
		return "", fmt.Errorf("rescache: marshal request: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

type entry struct {
	key   string
	value []byte
}

type call struct {
	done  chan struct{}
	value []byte
	err   error
}

// Cache is a bounded LRU of computed results with singleflight deduplication
// of in-flight computations. The zero value is not usable; call New.
type Cache struct {
	mu       sync.Mutex
	max      int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	inflight map[string]*call

	hits, misses, evictions uint64
}

// New returns a cache bounded to max entries (max <= 0 defaults to 128).
func New(max int) *Cache {
	if max <= 0 {
		max = 128
	}
	return &Cache{
		max:      max,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		inflight: make(map[string]*call),
	}
}

// Get returns the cached bytes for key, marking the entry most recently
// used. The returned slice is shared — callers must not mutate it.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*entry).value, true
	}
	c.misses++
	return nil, false
}

// put inserts under c.mu.
func (c *Cache) put(key string, value []byte) {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*entry).value = value
		return
	}
	c.items[key] = c.ll.PushFront(&entry{key: key, value: value})
	for c.ll.Len() > c.max {
		old := c.ll.Back()
		c.ll.Remove(old)
		delete(c.items, old.Value.(*entry).key)
		c.evictions++
	}
}

// Put stores value under key, evicting the least recently used entries
// beyond the bound.
func (c *Cache) Put(key string, value []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.put(key, value)
}

// Do returns the cached bytes for key, or computes them with fn. Identical
// concurrent Do calls run fn exactly once — the rest block on the leader and
// share its outcome (dedup counts as a hit). Errors are not cached: a failed
// computation releases the key so a later Do may retry.
func (c *Cache) Do(key string, fn func() ([]byte, error)) (value []byte, cached bool, err error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		v := el.Value.(*entry).value
		c.mu.Unlock()
		return v, true, nil
	}
	if cl, ok := c.inflight[key]; ok {
		// Dedup against the in-flight leader: the simulation runs once.
		c.hits++
		c.mu.Unlock()
		<-cl.done
		return cl.value, true, cl.err
	}
	c.misses++
	cl := &call{done: make(chan struct{})}
	c.inflight[key] = cl
	c.mu.Unlock()

	cl.value, cl.err = fn()

	c.mu.Lock()
	delete(c.inflight, key)
	if cl.err == nil {
		c.put(key, cl.value)
	}
	c.mu.Unlock()
	close(cl.done)
	return cl.value, false, cl.err
}

// Stats is a point-in-time view of the cache's counters.
type Stats struct {
	Entries   int
	Hits      uint64 // includes singleflight dedup joins
	Misses    uint64
	Evictions uint64
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats returns the current counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Entries: c.ll.Len(), Hits: c.hits, Misses: c.misses, Evictions: c.evictions}
}
