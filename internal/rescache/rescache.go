// Package rescache is the content-addressed result cache of the millid
// simulation service. Every simulation in this repository is deterministic —
// the harness verifies each run against a golden reference and the BENCH
// determinism gate pins its cycle counts bit-for-bit — so a result is fully
// determined by its request: experiment name, architecture parameters,
// input scale, and dataset seed. That makes results perfectly cacheable:
// the cache keys entries by the SHA-256 of the canonical JSON encoding of
// the request and stores the rendered result bytes in a bounded LRU.
//
// Concurrent identical requests are deduplicated singleflight-style: the
// first Do for a key runs the computation, later callers for the same key
// block and share the one result, so an in-flight simulation never runs
// twice no matter how many clients ask for it. DoContext lets a joining
// caller detach when its context ends (the leader keeps computing).
//
// The cache is optionally two-tier: behind the in-process LRU sits a
// SharedTier — the cluster-wide memcache-style result store (see Store and
// HTTPTier) — so a result computed on any millid node is a hit everywhere
// and a node restart does not cold-start the cache.
package rescache

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// Key returns the content address of a request: the SHA-256 hex digest of
// its canonical JSON encoding. Canonical means the request must marshal
// deterministically — encoding/json emits struct fields in declaration
// order, so any fixed struct (not a map) qualifies.
func Key(req any) (string, error) {
	data, err := json.Marshal(req)
	if err != nil {
		return "", fmt.Errorf("rescache: marshal request: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// SharedTier is the cluster-wide result store behind the local LRU. Get
// returns the stored bytes, or on a miss may grant a fill lease: a token
// the caller presents with Put so the store can tell the designated filler
// from stragglers (memcache-style leases). An empty lease on a miss means
// another node already holds the fill lease.
type SharedTier interface {
	Get(ctx context.Context, key string) (value []byte, lease string, ok bool, err error)
	Put(ctx context.Context, key string, value []byte, lease string) error
}

type entry struct {
	key   string
	value []byte
}

type call struct {
	done  chan struct{}
	joins uint64 // followers that joined; accounted on the leader's outcome
	value []byte
	err   error
}

// Cache is a bounded LRU of computed results with singleflight deduplication
// of in-flight computations and an optional shared second tier. The zero
// value is not usable; call New.
type Cache struct {
	mu       sync.Mutex
	max      int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	inflight map[string]*call
	shared   SharedTier

	hits, sharedHits, misses, evictions uint64
}

// New returns a cache bounded to max entries (max <= 0 defaults to 128).
func New(max int) *Cache {
	if max <= 0 {
		max = 128
	}
	return &Cache{
		max:      max,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		inflight: make(map[string]*call),
	}
}

// SetShared attaches the cluster-wide second tier. Call before serving; the
// tier is consulted by cache-missing Do leaders and filled after successful
// computations.
func (c *Cache) SetShared(t SharedTier) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.shared = t
}

// Get returns the locally cached bytes for key, marking the entry most
// recently used. The returned slice is shared — callers must not mutate it.
// Get never consults the shared tier (that is Do's job, under singleflight).
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*entry).value, true
	}
	c.misses++
	return nil, false
}

// put inserts under c.mu.
func (c *Cache) put(key string, value []byte) {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*entry).value = value
		return
	}
	c.items[key] = c.ll.PushFront(&entry{key: key, value: value})
	for c.ll.Len() > c.max {
		old := c.ll.Back()
		c.ll.Remove(old)
		delete(c.items, old.Value.(*entry).key)
		c.evictions++
	}
}

// Put stores value under key, evicting the least recently used entries
// beyond the bound.
func (c *Cache) Put(key string, value []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.put(key, value)
}

// Do is DoContext with a background context: joiners block until the leader
// finishes.
func (c *Cache) Do(key string, fn func() ([]byte, error)) (value []byte, cached bool, err error) {
	return c.DoContext(context.Background(), key, fn)
}

// DoContext returns the cached bytes for key, or computes them with fn.
// Identical concurrent calls run fn exactly once — the rest join the leader
// and share its outcome. A joining caller whose ctx ends before the leader
// finishes detaches and returns ctx.Err(); the leader keeps computing, so
// the result still lands in the cache for everyone else.
//
// With a shared tier attached, a cache-missing leader first consults the
// tier (a hit there counts as cached) and publishes successful computations
// back to it, so identical requests hit cluster-wide.
//
// Stats: joins are accounted when the leader finishes — a join shares a hit
// only if the leader actually produced a result; a failed leader counts its
// joins as misses. Errors are not cached: a failed computation releases the
// key so a later call may retry.
func (c *Cache) DoContext(ctx context.Context, key string, fn func() ([]byte, error)) (value []byte, cached bool, err error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		v := el.Value.(*entry).value
		c.mu.Unlock()
		return v, true, nil
	}
	if cl, ok := c.inflight[key]; ok {
		// Join the in-flight leader: the simulation runs once. The join is
		// accounted as hit or miss by the leader's completion.
		cl.joins++
		c.mu.Unlock()
		select {
		case <-cl.done:
			return cl.value, true, cl.err
		case <-ctx.Done():
			// Detach: the leader keeps running and will cache the result.
			return nil, false, ctx.Err()
		}
	}
	cl := &call{done: make(chan struct{})}
	c.inflight[key] = cl
	c.mu.Unlock()
	return c.lead(ctx, key, cl, fn)
}

// errPanicked is what followers of a panicking leader observe. The panic
// itself propagates out of the leader's DoContext after cleanup.
var errPanicked = fmt.Errorf("rescache: computation panicked")

// lead runs the singleflight leader: shared-tier lookup, the computation,
// publication, and stats settlement. Completion is deferred so a panicking
// fn still releases the key and unblocks joiners (with errPanicked) before
// the panic propagates.
func (c *Cache) lead(ctx context.Context, key string, cl *call, fn func() ([]byte, error)) (value []byte, cached bool, err error) {
	completed := false
	sharedHit := false
	defer func() {
		if !completed {
			cl.value, cl.err = nil, errPanicked
		}
		c.mu.Lock()
		delete(c.inflight, key)
		if cl.err == nil {
			c.put(key, cl.value)
			c.hits += cl.joins // joins shared the leader's result
		} else {
			c.misses += cl.joins // joins shared the leader's failure
		}
		// The leader itself: a shared-tier hit, or a miss that computed.
		if sharedHit {
			c.sharedHits++
		} else {
			c.misses++
		}
		c.mu.Unlock()
		close(cl.done)
	}()

	var lease string
	if c.shared != nil {
		var v []byte
		var ok bool
		v, lease, ok, _ = c.shared.Get(ctx, key) // tier errors degrade to a miss
		if ok {
			cl.value, cl.err = v, nil
			completed, sharedHit = true, true
			return v, true, nil
		}
		if lease == "" {
			// Another node holds the fill lease: give it a bounded chance to
			// publish before simulating the same thing here. Duplicated work
			// is only wasted cycles — results are deterministic — so after
			// the grace window we compute anyway.
			for i := 0; i < leaseWaitRetries; i++ {
				select {
				case <-ctx.Done():
					cl.err = ctx.Err()
					completed = true
					return nil, false, cl.err
				case <-time.After(leaseWaitStep):
				}
				v, lease, ok, _ = c.shared.Get(ctx, key)
				if ok {
					cl.value, cl.err = v, nil
					completed, sharedHit = true, true
					return v, true, nil
				}
				if lease != "" {
					break
				}
			}
		}
	}

	cl.value, cl.err = fn()
	completed = true
	if cl.err == nil && c.shared != nil {
		// Best-effort publish: a store outage must not fail the job.
		_ = c.shared.Put(ctx, key, cl.value, lease)
	}
	return cl.value, false, cl.err
}

// Lease-wait tuning: how long a leader waits on another node's fill lease
// before duplicating the computation locally.
const (
	leaseWaitRetries = 3
	leaseWaitStep    = 50 * time.Millisecond
)

// Stats is a point-in-time view of the cache's counters.
type Stats struct {
	Entries int
	// Hits counts local LRU hits plus singleflight joins whose leader
	// succeeded.
	Hits uint64
	// SharedHits counts results served from the shared tier (cluster-wide
	// hits that missed the local LRU).
	SharedHits uint64
	// Misses counts lookups that found nothing anywhere: computing leaders
	// (successful or not) and joins whose leader failed.
	Misses    uint64
	Evictions uint64
}

// HitRate returns the fraction of lookups satisfied by either tier, or 0
// before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.SharedHits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.SharedHits) / float64(total)
}

// Stats returns the current counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Entries:    c.ll.Len(),
		Hits:       c.hits,
		SharedHits: c.sharedHits,
		Misses:     c.misses,
		Evictions:  c.evictions,
	}
}
