package layout

import (
	"testing"
	"testing/quick"
)

func std(i Interleave) Layout {
	return Layout{Base: 0, RowBytes: 2048, Corelets: 32, Contexts: 4, Interleave: i}
}

func TestValidate(t *testing.T) {
	for _, i := range []Interleave{Slab, Word} {
		if err := std(i).Validate(); err != nil {
			t.Fatal(err)
		}
	}
	bad := []Layout{
		{RowBytes: 0, Corelets: 32, Contexts: 4},
		{RowBytes: 2046, Corelets: 32, Contexts: 4},
		{RowBytes: 2048, Corelets: 0, Contexts: 4},
		{RowBytes: 2048, Corelets: 32, Contexts: 0},
		{RowBytes: 2048, Corelets: 33, Contexts: 4}, // 512 % 132 != 0
		{Base: 4, RowBytes: 2048, Corelets: 32, Contexts: 4},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, l)
		}
	}
}

func TestGeometry(t *testing.T) {
	l := std(Slab)
	if l.Threads() != 128 || l.RowWords() != 512 || l.ChunkWords() != 4 {
		t.Errorf("geometry: threads=%d rowWords=%d chunk=%d", l.Threads(), l.RowWords(), l.ChunkWords())
	}
}

func TestPaperWalkthroughNumbers(t *testing.T) {
	// Section IV-C: 2 KB rows, 32 corelets, 4-way multithreading, 4-byte
	// words => 512 records per row and 4 records per thread per row for
	// single-word records.
	l := std(Word)
	if got := l.RowWords(); got != 512 {
		t.Errorf("records per row = %d, want 512", got)
	}
	if got := l.ChunkWords(); got != 4 {
		t.Errorf("records per thread per row = %d, want 4", got)
	}
}

func TestSlabAddressing(t *testing.T) {
	l := std(Slab)
	// Thread 0 (corelet 0, ctx 0): words 0..3 of row 0, then row 1.
	if l.Addr(0, 0) != 0 || l.Addr(0, 3) != 12 || l.Addr(0, 4) != 2048 {
		t.Errorf("thread 0 addrs: %d %d %d", l.Addr(0, 0), l.Addr(0, 3), l.Addr(0, 4))
	}
	// Thread 5 (corelet 1, ctx 1): base word 5*4 = 20 -> byte 80.
	if l.Addr(5, 0) != 80 {
		t.Errorf("thread 5 base = %d, want 80", l.Addr(5, 0))
	}
	// A corelet's 16 words (4 ctx x 4 words) are contiguous: corelet 1
	// owns bytes [64, 128) of each row.
	for ctx := 0; ctx < 4; ctx++ {
		tid := l.ThreadID(1, ctx)
		for k := 0; k < 4; k++ {
			a := l.Addr(tid, k)
			if a < 64 || a >= 128 {
				t.Errorf("corelet 1 ctx %d word %d at %d, outside slab", ctx, k, a)
			}
		}
	}
}

func TestWordAddressingCoalesces(t *testing.T) {
	l := std(Word)
	// Same-context (warp) lanes at equal position touch 32 consecutive
	// words = one 128 B block.
	for ctx := 0; ctx < 4; ctx++ {
		base := l.Addr(l.ThreadID(0, ctx), 0)
		for lane := 0; lane < 32; lane++ {
			a := l.Addr(l.ThreadID(lane, ctx), 0)
			if a != base+uint32(lane*4) {
				t.Fatalf("ctx %d lane %d addr %d, want %d", ctx, lane, a, base+uint32(lane*4))
			}
		}
		if base/128 != (base+31*4)/128 {
			t.Errorf("ctx %d warp access spans blocks", ctx)
		}
	}
}

func TestWalkMatchesAddr(t *testing.T) {
	for _, il := range []Interleave{Slab, Word, Split} {
		l := std(il)
		l.Base = 4096
		if il == Split {
			l.StreamWords = 40
		}
		w := l.Walk()
		for corelet := 0; corelet < l.Corelets; corelet += 7 {
			for ctx := 0; ctx < l.Contexts; ctx++ {
				tid := l.ThreadID(corelet, ctx)
				addr := int64(l.Base) + int64(corelet)*int64(w.CoreletMult) + int64(ctx)*int64(w.ContextMult)
				for p := 0; p < 40; p++ {
					want := l.Addr(tid, p)
					if uint32(addr) != want {
						t.Fatalf("%v corelet %d ctx %d p %d: walk %d, want %d", il, corelet, ctx, p, addr, want)
					}
					if (p+1)%int(w.ChunkWords) == 0 {
						addr += int64(w.RowStep)
					} else {
						addr += int64(w.Stride)
					}
				}
			}
		}
	}
}

func TestOwnerOfInverse(t *testing.T) {
	for _, il := range []Interleave{Slab, Word} {
		l := std(il)
		l.Base = 2048 * 3
		for corelet := 0; corelet < l.Corelets; corelet++ {
			for ctx := 0; ctx < l.Contexts; ctx++ {
				tid := l.ThreadID(corelet, ctx)
				for p := 0; p < 12; p++ {
					a := l.Addr(tid, p)
					c, slot := l.OwnerOf(a)
					if c != corelet {
						t.Fatalf("%v: OwnerOf(%d) corelet = %d, want %d", il, a, c, corelet)
					}
					wantSlot := ctx*l.ChunkWords() + p%l.ChunkWords()
					if slot != wantSlot {
						t.Fatalf("%v: OwnerOf(%d) slot = %d, want %d", il, a, slot, wantSlot)
					}
				}
			}
		}
	}
}

func TestOwnerSlotsCoverSlabExactly(t *testing.T) {
	// Across one row, each corelet must see each slot exactly once.
	for _, il := range []Interleave{Slab, Word} {
		l := std(il)
		seen := make(map[[2]int]int)
		for w := 0; w < l.RowWords(); w++ {
			c, s := l.OwnerOf(uint32(w * 4))
			seen[[2]int{c, s}]++
		}
		if len(seen) != l.Corelets*16 {
			t.Fatalf("%v: %d distinct (corelet,slot), want %d", il, len(seen), l.Corelets*16)
		}
		for k, n := range seen {
			if n != 1 {
				t.Fatalf("%v: slot %v seen %d times", il, k, n)
			}
		}
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	for _, il := range []Interleave{Slab, Word} {
		l := std(il)
		streams := make([][]uint32, l.Threads())
		for t2 := range streams {
			streams[t2] = make([]uint32, 10) // not a multiple of chunk: padding
			for p := range streams[t2] {
				streams[t2][p] = uint32(t2*1000 + p)
			}
		}
		flat, err := l.Pack(streams)
		if err != nil {
			t.Fatal(err)
		}
		if len(flat) != 3*l.RowWords() { // ceil(10/4) = 3 rows
			t.Fatalf("%v: flat len %d", il, len(flat))
		}
		back := l.Unpack(flat, 10)
		for t2 := range streams {
			for p := range streams[t2] {
				if back[t2][p] != streams[t2][p] {
					t.Fatalf("%v: roundtrip mismatch at (%d,%d)", il, t2, p)
				}
			}
		}
	}
}

func TestPackErrors(t *testing.T) {
	l := std(Slab)
	if _, err := l.Pack(make([][]uint32, 3)); err == nil {
		t.Error("wrong stream count accepted")
	}
	streams := make([][]uint32, l.Threads())
	for i := range streams {
		streams[i] = make([]uint32, 4)
	}
	streams[5] = make([]uint32, 5)
	if _, err := l.Pack(streams); err == nil {
		t.Error("ragged streams accepted")
	}
}

func TestRegionBytes(t *testing.T) {
	l := std(Slab)
	if l.RegionBytes(4) != 2048 || l.RegionBytes(5) != 4096 || l.RegionBytes(8) != 4096 {
		t.Errorf("RegionBytes: %d %d %d", l.RegionBytes(4), l.RegionBytes(5), l.RegionBytes(8))
	}
}

// Property: Pack places every stream word at the address Addr computes.
func TestPropertyPackMatchesAddr(t *testing.T) {
	f := func(seed uint8, wordSel bool) bool {
		il := Slab
		if wordSel {
			il = Word
		}
		l := std(il)
		n := int(seed%13) + 1
		streams := make([][]uint32, l.Threads())
		for t2 := range streams {
			streams[t2] = make([]uint32, n)
			for p := range streams[t2] {
				streams[t2][p] = uint32(t2)<<8 | uint32(p)
			}
		}
		flat, err := l.Pack(streams)
		if err != nil {
			return false
		}
		for t2 := range streams {
			for p := 0; p < n; p++ {
				if flat[l.Addr(t2, p)/4] != streams[t2][p] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestInterleaveString(t *testing.T) {
	if Slab.String() != "slab" || Word.String() != "word" || Split.String() != "split" {
		t.Error("Interleave.String wrong")
	}
}

func TestSplitLayout(t *testing.T) {
	l := std(Split)
	if err := l.Validate(); err == nil {
		t.Error("Split without StreamWords accepted")
	}
	l.StreamWords = 10
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	// Partitions are row-aligned and contiguous: thread t starts a whole
	// number of rows after thread t-1.
	part := l.Addr(1, 0) - l.Addr(0, 0)
	if part%uint32(l.RowBytes) != 0 {
		t.Errorf("partition stride %d not row-aligned", part)
	}
	if l.Addr(0, 1) != l.Addr(0, 0)+4 {
		t.Error("Split stream not contiguous")
	}
	streams := make([][]uint32, l.Threads())
	for t2 := range streams {
		streams[t2] = make([]uint32, 10)
		for p := range streams[t2] {
			streams[t2][p] = uint32(t2*100 + p)
		}
	}
	flat, err := l.Pack(streams)
	if err != nil {
		t.Fatal(err)
	}
	back := l.Unpack(flat, 10)
	for t2 := range streams {
		for p := range streams[t2] {
			if back[t2][p] != streams[t2][p] {
				t.Fatal("Split pack/unpack mismatch")
			}
		}
	}
	if l.RegionBytes(10) != l.Threads()*l.RowBytes {
		t.Errorf("RegionBytes = %d", l.RegionBytes(10))
	}
	defer func() {
		if recover() == nil {
			t.Error("OwnerOf on Split did not panic")
		}
	}()
	l.OwnerOf(0)
}
