// Package layout implements the paper's interleaved "array of structs of
// arrays" data layout (Section III-B): records are striped across DRAM rows
// so that parallel threads make row-dense, conflict-free accesses.
//
// The model: a processor runs T = corelets × contexts hardware threads. Each
// 2 KB row (512 words) is divided evenly, giving every thread W = 512/T
// words per row (W = 4 for the paper's 32×4 configuration). Thread t's
// *stream* is the concatenation of its per-row word groups across rows; the
// input dataset is 128 such streams, each a packed sequence of records. Two
// intra-row placements are supported:
//
//   - Slab interleaving: thread t's W words are contiguous
//     (wordIdx = t*W + k). A corelet's four contexts occupy one contiguous
//     64 B slab — Millipede's prefetch-buffer slicing, and the "n contiguous
//     words of a record" option of Section IV-C.
//
//   - Word interleaving: the k-th words of all threads are contiguous
//     (wordIdx = k*T + t). A GPGPU warp's 32 lanes at equal stream position
//     touch 32 consecutive words — one coalesced 128 B transaction — which
//     is why the paper says GPGPUs "must use word-size columns".
//
// Either placement gives each thread strictly row-ordered consumption, which
// is what makes Millipede's sequential row prefetch and flow control sound.
package layout

import "fmt"

// Interleave selects the intra-row placement.
type Interleave int

const (
	// Slab interleaving: n contiguous words of a record per thread.
	Slab Interleave = iota
	// Word interleaving: word-size columns (GPGPU-coalesceable).
	Word
	// Split assigns each thread a contiguous, row-aligned partition of the
	// region — the layout a MapReduce runtime hands to cache-based
	// multicores (SSMC, the conventional multicore): each core streams
	// sequentially through its own split, so next-block prefetch is exact,
	// and row-buffer conflicts arise from many concurrent streams sharing
	// few banks. Split layouts must set StreamWords.
	Split
)

func (i Interleave) String() string {
	switch i {
	case Word:
		return "word"
	case Split:
		return "split"
	}
	return "slab"
}

// Layout describes one input region's interleaved placement.
type Layout struct {
	Base       uint32 // byte address of the region's first row (row-aligned)
	RowBytes   int    // 2048
	Corelets   int    // 32
	Contexts   int    // 4
	Interleave Interleave
	// StreamWords is the per-thread stream length; required for Split
	// (it determines each thread's partition size), ignored otherwise.
	StreamWords int
}

// Validate checks geometric consistency.
func (l Layout) Validate() error {
	switch {
	case l.RowBytes <= 0 || l.RowBytes%4 != 0:
		return fmt.Errorf("layout: bad RowBytes %d", l.RowBytes)
	case l.Corelets <= 0 || l.Contexts <= 0:
		return fmt.Errorf("layout: bad thread geometry %dx%d", l.Corelets, l.Contexts)
	case l.RowWords()%l.Threads() != 0:
		return fmt.Errorf("layout: %d row words not divisible by %d threads", l.RowWords(), l.Threads())
	case int(l.Base)%l.RowBytes != 0:
		return fmt.Errorf("layout: base %#x not row-aligned", l.Base)
	case l.Interleave == Split && l.StreamWords <= 0:
		return fmt.Errorf("layout: Split requires StreamWords")
	}
	return nil
}

// partRows returns the row-aligned partition size per thread (Split only).
func (l Layout) partRows() int {
	return (l.StreamWords + l.RowWords() - 1) / l.RowWords()
}

// Threads returns the hardware thread count T.
func (l Layout) Threads() int { return l.Corelets * l.Contexts }

// RowWords returns words per row.
func (l Layout) RowWords() int { return l.RowBytes / 4 }

// ChunkWords returns W, the words each thread owns per row.
func (l Layout) ChunkWords() int { return l.RowWords() / l.Threads() }

// ThreadID maps (corelet, context) to the stream index t. Slab interleaving
// groups a corelet's contexts together; word interleaving groups same-
// context threads (a GPGPU warp) together so lanes coalesce.
func (l Layout) ThreadID(corelet, context int) int {
	if l.Interleave == Word {
		return context*l.Corelets + corelet
	}
	return corelet*l.Contexts + context
}

// wordIdx returns the word offset within a row of thread t's k-th word.
func (l Layout) wordIdx(t, k int) int {
	if l.Interleave == Word {
		return k*l.Threads() + t
	}
	return t*l.ChunkWords() + k
}

// Addr returns the byte address of stream position p of thread t.
func (l Layout) Addr(t, p int) uint32 {
	if l.Interleave == Split {
		return l.Base + uint32((t*l.partRows()*l.RowWords()+p)*4)
	}
	w := l.ChunkWords()
	row := p / w
	k := p % w
	return l.Base + uint32(row*l.RowBytes+l.wordIdx(t, k)*4)
}

// Kernel-visible addressing parameters. A kernel walks its stream with:
//
//	addr = Base + corelet*CoreletMult + context*ContextMult
//	per word: addr += Stride; every ChunkWords words: addr += RowStep instead
//
// which the assembly prologue implements in a handful of instructions.
type Walk struct {
	CoreletMult int32 // byte offset contribution of the corelet index
	ContextMult int32 // byte offset contribution of the context index
	Stride      int32 // byte step between consecutive stream words in a row
	RowStep     int32 // byte step from a chunk's last word to the next row's first
	ChunkWords  int32 // W
}

// Walk derives the kernel addressing parameters.
func (l Layout) Walk() Walk {
	if l.Interleave == Split {
		part := l.partRows() * l.RowBytes
		return Walk{
			CoreletMult: int32(l.Contexts * part),
			ContextMult: int32(part),
			Stride:      4,
			RowStep:     4, // contiguous stream: row crossings are free
			ChunkWords:  int32(l.RowWords()),
		}
	}
	w := l.ChunkWords()
	var stride, cm, xm int
	if l.Interleave == Word {
		stride = l.Threads() * 4
		cm = 4
		xm = l.Corelets * 4
	} else {
		stride = 4
		cm = l.Contexts * w * 4
		xm = w * 4
	}
	return Walk{
		CoreletMult: int32(cm),
		ContextMult: int32(xm),
		Stride:      int32(stride),
		RowStep:     int32(l.RowBytes - (w-1)*stride),
		ChunkWords:  int32(w),
	}
}

// OwnerOf maps a byte address within the region to the corelet that owns it
// and the word's slot within that corelet's prefetch-buffer slab
// (context*ChunkWords + k, 0..SlabWords-1). The corelet pipeline uses it for
// DF-counter consumption tracking and to assert that kernels only touch
// their own slabs.
func (l Layout) OwnerOf(addr uint32) (corelet, slot int) {
	if l.Interleave == Split {
		panic("layout: OwnerOf is only defined for row-shared interleavings (Slab/Word)")
	}
	off := int(addr-l.Base) % l.RowBytes / 4
	var t, k int
	if l.Interleave == Word {
		k = off / l.Threads()
		t = off % l.Threads()
		context := t / l.Corelets
		corelet = t % l.Corelets
		return corelet, context*l.ChunkWords() + k
	}
	w := l.ChunkWords()
	t = off / w
	k = off % w
	corelet = t / l.Contexts
	context := t % l.Contexts
	return corelet, context*w + k
}

// log2 returns log2(v) when v is a positive power of two, else -1.
func log2(v int) int {
	if v <= 0 || v&(v-1) != 0 {
		return -1
	}
	n := 0
	for 1<<uint(n) < v {
		n++
	}
	return n
}

// OwnerFunc returns a function equivalent to OwnerOf with the layout's
// geometry precomputed. When every dimension is a power of two — all the
// hardware configurations in Table III — the divisions become shifts and
// masks; otherwise it falls back to OwnerOf. Pipelines call the result once
// per global access, so they cache it instead of re-deriving it per call.
func (l Layout) OwnerFunc() func(addr uint32) (corelet, slot int) {
	rowSh := log2(l.RowBytes)
	w := l.ChunkWords()
	wSh, thrSh := log2(w), log2(l.Threads())
	ctxSh, corSh := log2(l.Contexts), log2(l.Corelets)
	if l.Interleave == Split || rowSh < 0 || wSh < 0 || thrSh < 0 || ctxSh < 0 || corSh < 0 {
		return func(addr uint32) (int, int) { return l.OwnerOf(addr) }
	}
	base := l.Base
	rowMask := uint32(l.RowBytes - 1)
	if l.Interleave == Word {
		thrMask := l.Threads() - 1
		corMask := l.Corelets - 1
		return func(addr uint32) (int, int) {
			off := int(((addr - base) & rowMask) >> 2)
			k := off >> uint(thrSh)
			t := off & thrMask
			return t & corMask, (t>>uint(corSh))<<uint(wSh) + k
		}
	}
	wMask := w - 1
	ctxMask := l.Contexts - 1
	return func(addr uint32) (int, int) {
		off := int(((addr - base) & rowMask) >> 2)
		t := off >> uint(wSh)
		k := off & wMask
		return t >> uint(ctxSh), (t&ctxMask)<<uint(wSh) + k
	}
}

// Pack places per-thread streams into a flat word array covering whole rows
// (zero-padded), ready to load into the DRAM backing store at Base. All
// streams must have equal length.
func (l Layout) Pack(streams [][]uint32) ([]uint32, error) {
	if len(streams) != l.Threads() {
		return nil, fmt.Errorf("layout: %d streams for %d threads", len(streams), l.Threads())
	}
	n := len(streams[0])
	for t, s := range streams {
		if len(s) != n {
			return nil, fmt.Errorf("layout: stream %d has %d words, stream 0 has %d", t, len(s), n)
		}
	}
	if l.Interleave == Split {
		if n != l.StreamWords {
			return nil, fmt.Errorf("layout: Split streams of %d words, StreamWords %d", n, l.StreamWords)
		}
		part := l.partRows() * l.RowWords()
		out := make([]uint32, len(streams)*part)
		for t, s := range streams {
			copy(out[t*part:], s)
		}
		return out, nil
	}
	w := l.ChunkWords()
	rows := (n + w - 1) / w
	out := make([]uint32, rows*l.RowWords())
	for t, s := range streams {
		for p, v := range s {
			row := p / w
			out[row*l.RowWords()+l.wordIdx(t, p%w)] = v
		}
	}
	return out, nil
}

// PackChunkWords is the size of the bounded reusable buffer PackFrom draws
// each thread's stream through (16 KB).
const PackChunkWords = 4096

// PackFrom is Pack for streamed inputs: it builds the same flat word array,
// but draws each thread's stream from fill(t, buf) in bounded chunks (buf
// is reused across calls), so no per-thread stream is ever materialized and
// packing memory is constant in the stream length. fill returns the number
// of words written (0 only at end of stream); thread t's calls must produce
// exactly streamWords words in order. The result is byte-identical to
// Pack over the materialized streams.
func (l Layout) PackFrom(streamWords int, fill func(t int, buf []uint32) int) ([]uint32, error) {
	if streamWords <= 0 {
		return nil, fmt.Errorf("layout: PackFrom with non-positive stream length")
	}
	if l.Interleave == Split && streamWords != l.StreamWords {
		return nil, fmt.Errorf("layout: Split streams of %d words, StreamWords %d", streamWords, l.StreamWords)
	}
	w := l.ChunkWords()
	part := 0
	var out []uint32
	if l.Interleave == Split {
		part = l.partRows() * l.RowWords()
		out = make([]uint32, l.Threads()*part)
	} else {
		rows := (streamWords + w - 1) / w
		out = make([]uint32, rows*l.RowWords())
	}
	buf := make([]uint32, PackChunkWords)
	for t := 0; t < l.Threads(); t++ {
		p := 0
		for p < streamWords {
			n := fill(t, buf)
			if n <= 0 {
				return nil, fmt.Errorf("layout: stream %d ended at %d of %d words", t, p, streamWords)
			}
			if p+n > streamWords {
				return nil, fmt.Errorf("layout: stream %d produced %d words, want %d", t, p+n, streamWords)
			}
			if l.Interleave == Split {
				copy(out[t*part+p:], buf[:n])
			} else {
				// Walk whole row-chunks: within a chunk, Slab targets are
				// contiguous (bulk copy) and Word targets are a fixed
				// Threads() stride, so the per-word div/mod disappears.
				rw, nt := l.RowWords(), l.Threads()
				for j := 0; j < n; {
					q := p + j
					row, k := q/w, q%w
					run := w - k
					if rem := n - j; run > rem {
						run = rem
					}
					if l.Interleave == Word {
						idx := row*rw + k*nt + t
						for i := 0; i < run; i++ {
							out[idx] = buf[j+i]
							idx += nt
						}
					} else {
						base := row*rw + t*w + k
						copy(out[base:base+run], buf[j:j+run])
					}
					j += run
				}
			}
			p += n
		}
	}
	return out, nil
}

// Unpack inverts Pack: it extracts per-thread streams of the given length
// from the flat word array.
func (l Layout) Unpack(flat []uint32, streamLen int) [][]uint32 {
	out := make([][]uint32, l.Threads())
	for t := range out {
		out[t] = make([]uint32, streamLen)
		for p := 0; p < streamLen; p++ {
			out[t][p] = flat[(l.Addr(t, p)-l.Base)/4]
		}
	}
	return out
}

// RegionBytes returns the padded region size for streams of streamLen words.
func (l Layout) RegionBytes(streamLen int) int {
	if l.Interleave == Split {
		return l.Threads() * l.partRows() * l.RowBytes
	}
	w := l.ChunkWords()
	rows := (streamLen + w - 1) / w
	return rows * l.RowBytes
}
