// Package datagen produces the deterministic synthetic datasets behind the
// eight BMLA benchmarks (Table II). The paper's inputs are proprietary-style
// analytics data (movie ratings, multi-dimensional training points); what
// the architecture actually observes is their value distributions — bin
// skew, the ~70/30 data-dependent branch split the paper cites for BMLA
// branches, cluster geometry — so the generators reproduce exactly those
// knobs from a seeded xorshift PRNG, making every simulation replayable.
package datagen

import "repro/internal/isa"

// RNG is a xorshift64* generator: tiny, fast, deterministic across
// platforms, and good enough for workload synthesis.
type RNG struct{ s uint64 }

// NewRNG seeds a generator; seed 0 is remapped to a fixed odd constant.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{s: seed}
}

// Uint64 returns the next raw 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// Intn returns a value in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("datagen: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float32 returns a value in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / float32(1<<24)
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return float64(r.Uint64()>>11)/float64(1<<53) < p
}

// Ratings generates n single-word rating records with values in [0, max).
// Real rating streams are bursty: values cluster in a band for long runs
// (users binge one catalogue, logs arrive partially sorted), so the
// generator is a two-state Markov chain whose stationary split is ~70%
// popular band / 30% cold band with mean dwell times of tens of records. The bursts give different Map tasks persistently different
// data-dependent work — the record-processing variability that makes MIMD
// cores stray from each other (Section IV-C).
func Ratings(r *RNG, n, max int) []uint32 {
	out := make([]uint32, n)
	cold := r.Bernoulli(0.3)
	for i := range out {
		if cold {
			out[i] = uint32(r.Intn(max / 4))
			if r.Bernoulli(1.0 / 28) {
				cold = false
			}
		} else {
			out[i] = uint32(max/2 + r.Intn(max/2))
			if r.Bernoulli(1.0 / 64) {
				cold = true
			}
		}
	}
	return out
}

// LabeledPoints generates n records of the form [label, x0..x(dims-1)] with
// integer coordinates in [0, k) and a label in [0, classes) chosen with
// probability pClass0 for class 0 — the paper's 70-/30+ data-dependent
// branch split when pClass0 = 0.7.
func LabeledPoints(r *RNG, n, dims, k, classes int, pClass0 float64) []uint32 {
	out := make([]uint32, 0, n*(dims+1))
	for i := 0; i < n; i++ {
		label := uint32(0)
		if !r.Bernoulli(pClass0) {
			label = uint32(1 + r.Intn(classes-1))
		}
		out = append(out, label)
		for d := 0; d < dims; d++ {
			out = append(out, uint32(r.Intn(k)))
		}
	}
	return out
}

// FloatPoints generates n records of dims float32 coordinates drawn from
// one of centers (cluster centroids) plus uniform noise in [-spread,
// +spread]. It returns the packed words. Cluster membership is skewed
// toward low-index clusters (Zipf-ish) so nearest-centroid branches are
// data-dependent rather than uniform.
func FloatPoints(r *RNG, n, dims int, centers [][]float32, spread float32) []uint32 {
	out := make([]uint32, 0, n*dims)
	k := len(centers)
	for i := 0; i < n; i++ {
		// Skewed cluster pick: half the mass on cluster 0, half uniform.
		c := 0
		if !r.Bernoulli(0.5) {
			c = r.Intn(k)
		}
		for d := 0; d < dims; d++ {
			v := centers[c][d] + (r.Float32()*2-1)*spread
			out = append(out, isa.Bits(v))
		}
	}
	return out
}

// Centers produces k well-separated centroids on a lattice in [0, 10)^dims.
func Centers(r *RNG, k, dims int) [][]float32 {
	out := make([][]float32, k)
	for c := range out {
		out[c] = make([]float32, dims)
		for d := range out[c] {
			out[c][d] = float32((c*7+d*3)%10) + r.Float32()*0.25
		}
	}
	return out
}

// LabeledFloatPoints generates n records [label, x0..x(dims-1)] where the
// coordinates are float32 drawn around per-class means (for GDA).
func LabeledFloatPoints(r *RNG, n, dims, classes int, pClass0 float64, spread float32) []uint32 {
	means := Centers(r, classes, dims)
	out := make([]uint32, 0, n*(dims+1))
	for i := 0; i < n; i++ {
		label := 0
		if !r.Bernoulli(pClass0) {
			label = 1 + r.Intn(classes-1)
		}
		out = append(out, uint32(label))
		for d := 0; d < dims; d++ {
			v := means[label][d] + (r.Float32()*2-1)*spread
			out = append(out, isa.Bits(v))
		}
	}
	return out
}

// BurstyLabeledFloatPoints is LabeledFloatPoints with temporally clustered
// labels (training sets are commonly grouped by class or collection time):
// a two-state Markov chain with ~pClass0 stationary mass on class 0 and
// dwell times of a few hundred records.
func BurstyLabeledFloatPoints(r *RNG, n, dims, classes int, pClass0 float64, spread float32) []uint32 {
	means := Centers(r, classes, dims)
	out := make([]uint32, 0, n*(dims+1))
	label := 0
	if !r.Bernoulli(pClass0) {
		label = 1 + r.Intn(classes-1)
	}
	for i := 0; i < n; i++ {
		out = append(out, uint32(label))
		for d := 0; d < dims; d++ {
			v := means[label][d] + (r.Float32()*2-1)*spread
			out = append(out, isa.Bits(v))
		}
		if label == 0 {
			if r.Bernoulli((1 - pClass0) / 256 * 2) {
				label = 1 + r.Intn(classes-1)
			}
		} else if r.Bernoulli(pClass0 / 256 * 2) {
			label = 0
		}
	}
	return out
}

// SplitStreams divides a packed record array (recordWords words per record)
// into threads streams of equal record counts, dropping any remainder
// records. Each stream is a packed word sequence.
func SplitStreams(words []uint32, recordWords, threads int) [][]uint32 {
	records := len(words) / recordWords
	per := records / threads
	out := make([][]uint32, threads)
	for t := 0; t < threads; t++ {
		start := t * per * recordWords
		out[t] = words[start : start+per*recordWords]
	}
	return out
}
