// Package datagen produces the deterministic synthetic datasets behind the
// eight BMLA benchmarks (Table II). The paper's inputs are proprietary-style
// analytics data (movie ratings, multi-dimensional training points); what
// the architecture actually observes is their value distributions — bin
// skew, the ~70/30 data-dependent branch split the paper cites for BMLA
// branches, cluster geometry — so the generators reproduce exactly those
// knobs from a seeded xorshift PRNG, making every simulation replayable.
//
// The paper's datasets are tens of millions of records per node (Section
// IV-D), far too large to materialize as one slice per thread. Every
// generator is therefore a Source: a resumable record stream that fills
// caller-owned buffers chunk by chunk, byte-identical to a one-shot
// materialization under any chunking. The legacy slice-returning functions
// remain as thin shims over the Sources.
package datagen

import "repro/internal/isa"

// RNG is a xorshift64* generator: tiny, fast, deterministic across
// platforms, and good enough for workload synthesis.
type RNG struct{ s uint64 }

// NewRNG seeds a generator; seed 0 is remapped to a fixed odd constant.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{s: seed}
}

// Uint64 returns the next raw 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// Intn returns a value in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("datagen: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float32 returns a value in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / float32(1<<24)
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return float64(r.Uint64()>>11)/float64(1<<53) < p
}

// ThreadSeed derives the per-thread RNG seed from a run seed: thread t's
// stream depends only on (seed, t), never on thread count or hardware
// placement. This is the single definition — the harness, the node model,
// and the cluster experiment must all shard datasets through it.
func ThreadSeed(seed uint64, thread int) uint64 {
	return seed*0x10001 + uint64(thread)*0x9E3779B97F4A7C15 + 1
}

// Source is a deterministic streaming record generator. Next fills a
// caller-owned buffer with whole records and returns the number of words
// written (0 at end of stream), so a consumer's memory stays constant in
// the record count. The generator state (PRNG plus any Markov burst state)
// is carried across calls, making every chunking — including one giant
// chunk — byte-identical to the rest.
type Source struct {
	rw   int // words per record
	n    int // total records
	done int // records emitted so far
	rng  RNG // live generator state
	rng0 RNG // state at construction, for Reset
	// start performs the generator's pre-stream draws (burst-state init,
	// centroid synthesis) against the live RNG and returns the per-record
	// emitter; rerun by Reset.
	start func(r *RNG) func(rec []uint32)
	emit  func(rec []uint32)
}

// NewSource builds a Source of n records of recordWords words each. It
// snapshots r's current state (the caller's RNG is not advanced), then runs
// start, which must perform the generator's pre-loop draws in order and
// return the per-record emitter.
func NewSource(recordWords, n int, r *RNG, start func(r *RNG) func(rec []uint32)) *Source {
	if recordWords <= 0 {
		panic("datagen: NewSource with non-positive record words")
	}
	if n < 0 {
		panic("datagen: NewSource with negative record count")
	}
	s := &Source{rw: recordWords, n: n, rng: *r, rng0: *r, start: start}
	s.emit = start(&s.rng)
	return s
}

// RecordWords returns the words per record.
func (s *Source) RecordWords() int { return s.rw }

// Records returns the total record count of the stream.
func (s *Source) Records() int { return s.n }

// Words returns the total stream length in words.
func (s *Source) Words() int { return s.n * s.rw }

// Remaining returns the record count not yet emitted.
func (s *Source) Remaining() int { return s.n - s.done }

// Next fills buf with as many whole records as fit (and remain) and returns
// the number of words written; 0 means end of stream. buf must hold at
// least one record.
func (s *Source) Next(buf []uint32) int {
	if s.done >= s.n {
		return 0
	}
	recs := len(buf) / s.rw
	if recs == 0 {
		panic("datagen: Next buffer smaller than one record")
	}
	if rem := s.n - s.done; recs > rem {
		recs = rem
	}
	for i := 0; i < recs; i++ {
		s.emit(buf[i*s.rw : (i+1)*s.rw])
	}
	s.done += recs
	return recs * s.rw
}

// Reset rewinds the stream to the beginning.
func (s *Source) Reset() {
	s.rng = s.rng0
	s.done = 0
	s.emit = s.start(&s.rng)
}

// Materialize drains the remaining records into one freshly allocated
// slice — the legacy one-shot shape.
func (s *Source) Materialize() []uint32 {
	out := make([]uint32, s.Remaining()*s.rw)
	if len(out) > 0 {
		s.Next(out)
	}
	return out
}

// SliceSource wraps an already-materialized packed record array as a
// Source, for callers bridging old slices into the streaming API.
func SliceSource(words []uint32, recordWords int) *Source {
	n := len(words) / recordWords
	pos := 0
	return NewSource(recordWords, n, NewRNG(1), func(*RNG) func(rec []uint32) {
		pos = 0
		return func(rec []uint32) {
			copy(rec, words[pos:pos+recordWords])
			pos += recordWords
		}
	})
}

// RatingsSource streams n single-word rating records with values in
// [0, max). Real rating streams are bursty: values cluster in a band for
// long runs (users binge one catalogue, logs arrive partially sorted), so
// the generator is a two-state Markov chain whose stationary split is ~70%
// popular band / 30% cold band with mean dwell times of tens of records.
// The bursts give different Map tasks persistently different
// data-dependent work — the record-processing variability that makes MIMD
// cores stray from each other (Section IV-C).
func RatingsSource(r *RNG, n, max int) *Source {
	return NewSource(1, n, r, func(r *RNG) func(rec []uint32) {
		cold := r.Bernoulli(0.3)
		return func(rec []uint32) {
			if cold {
				rec[0] = uint32(r.Intn(max / 4))
				if r.Bernoulli(1.0 / 28) {
					cold = false
				}
			} else {
				rec[0] = uint32(max/2 + r.Intn(max/2))
				if r.Bernoulli(1.0 / 64) {
					cold = true
				}
			}
		}
	})
}

// Ratings is the one-shot form of RatingsSource.
func Ratings(r *RNG, n, max int) []uint32 {
	return RatingsSource(r, n, max).Materialize()
}

// LabeledPointsSource streams n records of the form [label, x0..x(dims-1)]
// with integer coordinates in [0, k) and a label in [0, classes) chosen
// with probability pClass0 for class 0 — the paper's 70-/30+
// data-dependent branch split when pClass0 = 0.7.
func LabeledPointsSource(r *RNG, n, dims, k, classes int, pClass0 float64) *Source {
	return NewSource(1+dims, n, r, func(r *RNG) func(rec []uint32) {
		return func(rec []uint32) {
			label := uint32(0)
			if !r.Bernoulli(pClass0) {
				label = uint32(1 + r.Intn(classes-1))
			}
			rec[0] = label
			for d := 0; d < dims; d++ {
				rec[1+d] = uint32(r.Intn(k))
			}
		}
	})
}

// LabeledPoints is the one-shot form of LabeledPointsSource.
func LabeledPoints(r *RNG, n, dims, k, classes int, pClass0 float64) []uint32 {
	return LabeledPointsSource(r, n, dims, k, classes, pClass0).Materialize()
}

// FloatPointsSource streams n records of dims float32 coordinates drawn
// from one of centers (cluster centroids) plus uniform noise in [-spread,
// +spread], packed as words. Cluster membership is skewed toward low-index
// clusters (Zipf-ish) so nearest-centroid branches are data-dependent
// rather than uniform.
func FloatPointsSource(r *RNG, n, dims int, centers [][]float32, spread float32) *Source {
	return NewSource(dims, n, r, func(r *RNG) func(rec []uint32) {
		k := len(centers)
		return func(rec []uint32) {
			// Skewed cluster pick: half the mass on cluster 0, half uniform.
			c := 0
			if !r.Bernoulli(0.5) {
				c = r.Intn(k)
			}
			for d := 0; d < dims; d++ {
				v := centers[c][d] + (r.Float32()*2-1)*spread
				rec[d] = isa.Bits(v)
			}
		}
	})
}

// FloatPoints is the one-shot form of FloatPointsSource.
func FloatPoints(r *RNG, n, dims int, centers [][]float32, spread float32) []uint32 {
	return FloatPointsSource(r, n, dims, centers, spread).Materialize()
}

// Centers produces k well-separated centroids on a lattice in [0, 10)^dims.
func Centers(r *RNG, k, dims int) [][]float32 {
	out := make([][]float32, k)
	for c := range out {
		out[c] = make([]float32, dims)
		for d := range out[c] {
			out[c][d] = float32((c*7+d*3)%10) + r.Float32()*0.25
		}
	}
	return out
}

// LabeledFloatPointsSource streams n records [label, x0..x(dims-1)] where
// the coordinates are float32 drawn around per-class means (for GDA). The
// means are synthesized from the stream's own RNG before the first record,
// exactly as the one-shot generator always has.
func LabeledFloatPointsSource(r *RNG, n, dims, classes int, pClass0 float64, spread float32) *Source {
	return NewSource(1+dims, n, r, func(r *RNG) func(rec []uint32) {
		means := Centers(r, classes, dims)
		return func(rec []uint32) {
			label := 0
			if !r.Bernoulli(pClass0) {
				label = 1 + r.Intn(classes-1)
			}
			rec[0] = uint32(label)
			for d := 0; d < dims; d++ {
				v := means[label][d] + (r.Float32()*2-1)*spread
				rec[1+d] = isa.Bits(v)
			}
		}
	})
}

// LabeledFloatPoints is the one-shot form of LabeledFloatPointsSource.
func LabeledFloatPoints(r *RNG, n, dims, classes int, pClass0 float64, spread float32) []uint32 {
	return LabeledFloatPointsSource(r, n, dims, classes, pClass0, spread).Materialize()
}

// BurstyLabeledFloatPointsSource is LabeledFloatPointsSource with
// temporally clustered labels (training sets are commonly grouped by class
// or collection time): a two-state Markov chain with ~pClass0 stationary
// mass on class 0 and dwell times of a few hundred records. The label burst
// state rides inside the Source, so chunked and one-shot generation walk
// the same chain.
func BurstyLabeledFloatPointsSource(r *RNG, n, dims, classes int, pClass0 float64, spread float32) *Source {
	return NewSource(1+dims, n, r, func(r *RNG) func(rec []uint32) {
		means := Centers(r, classes, dims)
		label := 0
		if !r.Bernoulli(pClass0) {
			label = 1 + r.Intn(classes-1)
		}
		return func(rec []uint32) {
			rec[0] = uint32(label)
			for d := 0; d < dims; d++ {
				v := means[label][d] + (r.Float32()*2-1)*spread
				rec[1+d] = isa.Bits(v)
			}
			if label == 0 {
				if r.Bernoulli((1 - pClass0) / 256 * 2) {
					label = 1 + r.Intn(classes-1)
				}
			} else if r.Bernoulli(pClass0 / 256 * 2) {
				label = 0
			}
		}
	})
}

// BurstyLabeledFloatPoints is the one-shot form of
// BurstyLabeledFloatPointsSource.
func BurstyLabeledFloatPoints(r *RNG, n, dims, classes int, pClass0 float64, spread float32) []uint32 {
	return BurstyLabeledFloatPointsSource(r, n, dims, classes, pClass0, spread).Materialize()
}

// SplitStreams divides a packed record array (recordWords words per record)
// into threads streams of equal record counts, dropping any remainder
// records. Each stream is a packed word sequence.
//
// Deprecated: SplitStreams predates the streaming API and forces the whole
// dataset to be materialized up front. Build one Source per thread instead
// (seeded via ThreadSeed); SplitStreams survives as a shim that routes the
// slice back through SliceSource.
func SplitStreams(words []uint32, recordWords, threads int) [][]uint32 {
	records := len(words) / recordWords
	per := records / threads
	out := make([][]uint32, threads)
	for t := 0; t < threads; t++ {
		src := SliceSource(words[t*per*recordWords:], recordWords)
		src.n = per // cap the window at this thread's share
		out[t] = src.Materialize()
	}
	return out
}
