package datagen

import (
	"testing"

	"repro/internal/isa"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed produced zero stream")
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestFloat32Range(t *testing.T) {
	r := NewRNG(2)
	for i := 0; i < 1000; i++ {
		v := r.Float32()
		if v < 0 || v >= 1 {
			t.Fatalf("Float32() = %v", v)
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := NewRNG(3)
	n, hits := 20000, 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.7) {
			hits++
		}
	}
	rate := float64(hits) / float64(n)
	if rate < 0.67 || rate > 0.73 {
		t.Errorf("Bernoulli(0.7) rate = %.3f", rate)
	}
}

func TestRatings(t *testing.T) {
	r := NewRNG(4)
	rs := Ratings(r, 5000, 256)
	if len(rs) != 5000 {
		t.Fatalf("len = %d", len(rs))
	}
	lo, hi := 0, 0
	for _, v := range rs {
		if v >= 256 {
			t.Fatalf("rating %d out of range", v)
		}
		if v < 64 {
			lo++
		} else if v >= 128 {
			hi++
		}
	}
	if lo == 0 || hi == 0 {
		t.Error("distribution not bimodal")
	}
	if hi < lo {
		t.Error("popular band should dominate")
	}
}

func TestLabeledPoints(t *testing.T) {
	r := NewRNG(5)
	const n, dims, k = 3000, 8, 8
	ws := LabeledPoints(r, n, dims, k, 2, 0.7)
	if len(ws) != n*(dims+1) {
		t.Fatalf("len = %d", len(ws))
	}
	zeros := 0
	for i := 0; i < n; i++ {
		rec := ws[i*(dims+1):]
		if rec[0] > 1 {
			t.Fatalf("label %d out of range", rec[0])
		}
		if rec[0] == 0 {
			zeros++
		}
		for d := 1; d <= dims; d++ {
			if rec[d] >= k {
				t.Fatalf("coord %d out of range", rec[d])
			}
		}
	}
	rate := float64(zeros) / n
	if rate < 0.65 || rate > 0.75 {
		t.Errorf("class-0 rate = %.3f, want ~0.7 (paper's 70/30 split)", rate)
	}
}

func TestFloatPointsNearCenters(t *testing.T) {
	r := NewRNG(6)
	const n, dims, k = 2000, 8, 4
	centers := Centers(r, k, dims)
	ws := FloatPoints(r, n, dims, centers, 0.5)
	if len(ws) != n*dims {
		t.Fatalf("len = %d", len(ws))
	}
	// Every point must be within spread of some center in every dim.
	for i := 0; i < n; i++ {
		ok := false
		for c := 0; c < k; c++ {
			all := true
			for d := 0; d < dims; d++ {
				v := isa.F32(ws[i*dims+d])
				diff := v - centers[c][d]
				if diff < -0.51 || diff > 0.51 {
					all = false
					break
				}
			}
			if all {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("point %d not near any center", i)
		}
	}
}

func TestLabeledFloatPoints(t *testing.T) {
	r := NewRNG(7)
	const n, dims = 1000, 16
	ws := LabeledFloatPoints(r, n, dims, 2, 0.7, 0.5)
	if len(ws) != n*(dims+1) {
		t.Fatalf("len = %d", len(ws))
	}
	for i := 0; i < n; i++ {
		if ws[i*(dims+1)] > 1 {
			t.Fatalf("label out of range")
		}
	}
}

func TestSplitStreams(t *testing.T) {
	words := make([]uint32, 130*3) // 130 3-word records
	for i := range words {
		words[i] = uint32(i)
	}
	streams := SplitStreams(words, 3, 4) // 32 records per thread, 2 dropped
	if len(streams) != 4 {
		t.Fatalf("streams = %d", len(streams))
	}
	for t2, s := range streams {
		if len(s) != 32*3 {
			t.Fatalf("stream %d len = %d", t2, len(s))
		}
		if s[0] != uint32(t2*32*3) {
			t.Errorf("stream %d starts at %d", t2, s[0])
		}
	}
}
