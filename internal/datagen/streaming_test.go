package datagen

import (
	"testing"
	"testing/quick"
)

// TestThreadSeedPinned pins ThreadSeed's exact values. Every dataset in the
// BENCH determinism surface is derived through this function: a change here
// silently regenerates different inputs everywhere, so the constants below
// must never change.
func TestThreadSeedPinned(t *testing.T) {
	cases := []struct {
		seed   uint64
		thread int
		want   uint64
	}{
		{20180521, 0, 0x00000133EF5CEE2A},
		{20180521, 1, 0x9E377AED6EA76A3F},
		{20180521, 7, 0x538455466A6652BD},
		{20180521, 255, 0x994240F9BA8E8715},
		{0, 0, 0x0000000000000001},
		{1, 3, 0xDAA66D2C7DE07441},
		{3735928559, 31, 0x28B89C2507A1C57B},
	}
	for _, c := range cases {
		if got := ThreadSeed(c.seed, c.thread); got != c.want {
			t.Errorf("ThreadSeed(%d, %d) = %#016x, want %#016x", c.seed, c.thread, got, c.want)
		}
	}
	// Distinct threads must draw from distinct streams.
	seen := map[uint64]int{}
	for th := 0; th < 1024; th++ {
		s := ThreadSeed(20180521, th)
		if prev, dup := seen[s]; dup {
			t.Fatalf("ThreadSeed collision: threads %d and %d share seed %#x", prev, th, s)
		}
		seen[s] = th
	}
}

// generators is every streaming dataset generator, each built at a modest
// fixed shape so one property run stays cheap.
var generators = []struct {
	name  string
	build func(seed uint64) *Source
}{
	{"ratings", func(seed uint64) *Source {
		r := NewRNG(seed)
		return RatingsSource(r, 300, 256)
	}},
	{"labeled", func(seed uint64) *Source {
		r := NewRNG(seed)
		return LabeledPointsSource(r, 200, 8, 8, 2, 0.7)
	}},
	{"float", func(seed uint64) *Source {
		r := NewRNG(seed)
		centers := Centers(r, 4, 8)
		return FloatPointsSource(r, 200, 8, centers, 0.5)
	}},
	{"labeledfloat", func(seed uint64) *Source {
		r := NewRNG(seed)
		return LabeledFloatPointsSource(r, 200, 16, 2, 0.7, 0.5)
	}},
	{"bursty", func(seed uint64) *Source {
		r := NewRNG(seed)
		return BurstyLabeledFloatPointsSource(r, 200, 16, 2, 0.7, 0.5)
	}},
}

// TestStreamingEquivalentToOneShot is the streaming API's core contract,
// checked property-style: for every generator, any chunking of Next calls
// assembles the byte-identical dataset a one-shot materialization produces,
// for arbitrary seeds, thread derivations, and chunk-size sequences.
func TestStreamingEquivalentToOneShot(t *testing.T) {
	for _, g := range generators {
		g := g
		t.Run(g.name, func(t *testing.T) {
			prop := func(seed uint64, thread uint8, chunkSeed uint64) bool {
				s := ThreadSeed(seed, int(thread))
				want := g.build(s).Materialize()

				src := g.build(s)
				rw := src.RecordWords()
				chunks := NewRNG(chunkSeed)
				got := make([]uint32, 0, len(want))
				buf := make([]uint32, 7*rw)
				for {
					// 1..7 records per Next call, varying per call.
					n := src.Next(buf[:(1+chunks.Intn(7))*rw])
					if n == 0 {
						break
					}
					got = append(got, buf[:n]...)
				}
				if len(got) != len(want) {
					return false
				}
				for i := range want {
					if got[i] != want[i] {
						return false
					}
				}
				return true
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestSourceResume: a Source survives Reset and re-streams the identical
// sequence, and Remaining tracks the unconsumed record count.
func TestSourceResume(t *testing.T) {
	for _, g := range generators {
		src := g.build(99)
		first := g.build(99).Materialize()
		rw := src.RecordWords()
		buf := make([]uint32, 3*rw)
		if src.Remaining() != src.Records() {
			t.Fatalf("%s: fresh source Remaining() = %d, want %d", g.name, src.Remaining(), src.Records())
		}
		n := src.Next(buf)
		if n != 3*rw {
			t.Fatalf("%s: first Next returned %d words", g.name, n)
		}
		if src.Remaining() != src.Records()-3 {
			t.Fatalf("%s: Remaining() = %d after 3 records", g.name, src.Remaining())
		}
		src.Reset()
		again := src.Materialize()
		for i := range first {
			if again[i] != first[i] {
				t.Fatalf("%s: Reset did not restore the stream (word %d)", g.name, i)
			}
		}
	}
}
