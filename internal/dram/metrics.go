package dram

import "repro/internal/metrics"

// RegisterStats publishes the row-buffer and bandwidth counters of the
// Stats returned by get under prefix (e.g. "dram"). get is evaluated only
// at snapshot time, so it may aggregate across channels.
func RegisterStats(r *metrics.Registry, prefix string, get func() Stats) {
	r.Counter(prefix+".requests", func() uint64 { return get().Requests })
	r.Counter(prefix+".row_hits", func() uint64 { return get().RowHits })
	r.Counter(prefix+".row_misses", func() uint64 { return get().RowMisses })
	r.Counter(prefix+".precharges", func() uint64 { return get().Precharges })
	r.Counter(prefix+".bytes_read", func() uint64 { return get().BytesRead })
	r.Counter(prefix+".busy_cycles", func() uint64 { return get().BusyCycles })
	r.Counter(prefix+".open_cycles", func() uint64 { return get().OpenCycles })
	r.Gauge(prefix+".row_miss_rate", func() float64 { return get().RowMissRate() })
}
